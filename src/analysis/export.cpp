#include "analysis/export.hpp"

#include <cstdio>
#include <stdexcept>

namespace zh::analysis {
namespace {

std::string csv_escape(const std::string& cell) {
  // RFC 4180: bare CR needs quoting just like LF, or a \r\n-aware reader
  // splits the record.
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string ecdf_to_csv(const Ecdf& ecdf, const std::string& value_header) {
  std::string out = value_header + ",cumulative_fraction\n";
  for (const auto& [value, fraction] : ecdf.curve()) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%lld,%.6f\n",
                  static_cast<long long>(value), fraction);
    out += buf;
  }
  return out;
}

std::string freq_to_csv(const FreqTable& table,
                        const std::string& key_header) {
  std::string out = key_header + ",count,share\n";
  for (const auto& [key, count] : table.top(table.raw().size())) {
    char buf[64];
    std::snprintf(buf, sizeof buf, ",%llu,%.6f\n",
                  static_cast<unsigned long long>(count), table.share(key));
    out += csv_escape(key) + buf;
  }
  return out;
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument(
        "Table::add_row: " + std::to_string(cells.size()) + " cells for " +
        std::to_string(columns_.size()) + " columns");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_csv() const {
  std::string out;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i) out += ',';
    out += csv_escape(columns_[i]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out += ',';
      out += csv_escape(row[i]);
    }
    out += '\n';
  }
  return out;
}

std::string Table::to_json() const {
  std::string out = "[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += r ? ",\n {" : "\n {";
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (i) out += ", ";
      out += "\"" + json_escape(columns_[i]) + "\": \"" +
             json_escape(rows_[r][i]) + "\"";
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

bool write_file(const std::string& directory, const std::string& filename,
                const std::string& content) {
  const std::string path = directory + "/" + filename;
  // "wb", not "w": artefacts must be byte-identical across platforms, and
  // text mode would rewrite line endings where the distinction exists.
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (!file) return false;
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), file);
  const bool closed = std::fclose(file) == 0;
  return closed && written == content.size();
}

}  // namespace zh::analysis
