// Canonical binary codec for the mergeable analysis aggregates.
//
// Multi-process campaigns (scanner/process.hpp) ship per-shard statistics
// through files, so the encoding must be *canonical*: the same aggregate
// always serialises to the same bytes, on every platform. The format is
// little-endian, length-prefixed, and versioned; decoding is strict —
// truncated, tampered or version-bumped input yields a typed DecodeError,
// never UB (every read goes through the bounds-checked dns::ByteReader
// cursor) and never a silently wrong aggregate (decoders reject
// non-canonical shapes such as unsorted histogram keys or zero counts).
//
// Layering: Encoder/Decoder wrap the dns/io.hpp primitives (header-only,
// so zh_analysis gains no link dependency). scanner/serialize.hpp builds
// the campaign-level codecs and the shard-artefact envelope on top.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "dns/io.hpp"

namespace zh::analysis {

/// Why a decode failed. kNone means success.
enum class DecodeErrc {
  kNone = 0,
  kTruncated,      // input ended inside a field
  kBadMagic,       // not a zh artefact
  kBadVersion,     // format version this build does not speak
  kBadValue,       // a field failed validation (non-canonical input)
  kChecksum,       // payload checksum mismatch (bit corruption)
  kTrailingBytes,  // a well-formed value followed by extra bytes
};
const char* decode_errc_name(DecodeErrc code) noexcept;

/// Typed decode failure: a code plus a human-readable context string.
struct DecodeError {
  DecodeErrc code = DecodeErrc::kNone;
  std::string detail;
  explicit operator bool() const noexcept { return code != DecodeErrc::kNone; }
  std::string to_string() const;
};

/// FNV-1a 64-bit over a byte span — the artefact payload checksum. Every
/// single-bit flip changes the digest (xor-then-multiply-by-odd-prime is
/// a bijection per byte), so corrupted shard files fail typed, not silent.
std::uint64_t fnv1a64(std::span<const std::uint8_t> data) noexcept;

/// Little-endian append-only sink over dns::ByteWriter.
class Encoder {
 public:
  void u8(std::uint8_t v) { out_.u8(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// u32 length prefix + raw bytes.
  void str(const std::string& s);
  void bytes(std::span<const std::uint8_t> data) { out_.bytes(data); }

  std::size_t size() const noexcept { return out_.size(); }
  const std::vector<std::uint8_t>& data() const noexcept {
    return out_.data();
  }
  std::vector<std::uint8_t> take() { return out_.take(); }

 private:
  dns::ByteWriter out_;
};

/// Little-endian bounds-checked cursor over dns::ByteReader. Errors are
/// sticky: after the first failure every further read returns false and
/// error() explains the first one.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) noexcept
      : reader_(data) {}

  bool ok() const noexcept { return error_.code == DecodeErrc::kNone; }
  const DecodeError& error() const noexcept { return error_; }
  /// Records the first error; always returns false (for `return fail(...)`).
  bool fail(DecodeErrc code, std::string detail);

  bool u8(std::uint8_t& out);
  bool u16(std::uint16_t& out);
  bool u32(std::uint32_t& out);
  bool u64(std::uint64_t& out);
  bool i64(std::int64_t& out);
  bool str(std::string& out);
  /// Fails with kBadMagic unless the next 4 bytes equal `expect`.
  bool magic(const char* expect);
  /// Fails with kTrailingBytes unless the cursor consumed everything.
  bool expect_end();

  std::size_t remaining() const noexcept { return reader_.remaining(); }
  std::size_t position() const noexcept { return reader_.position(); }

 private:
  dns::ByteReader reader_;
  DecodeError error_;
};

/// Ecdf ⇄ bytes: u64 entry count, then (i64 value, u64 count) pairs in
/// strictly ascending value order with non-zero counts — the canonical
/// form encode emits and decode enforces.
void encode(Encoder& enc, const Ecdf& ecdf);
bool decode(Decoder& dec, Ecdf& out);

/// FreqTable ⇄ bytes: u64 entry count, then (string key, u64 count) pairs
/// in strictly ascending key order with non-zero counts.
void encode(Encoder& enc, const FreqTable& table);
bool decode(Decoder& dec, FreqTable& out);

/// Binary file I/O for shard artefacts ("wb"/"rb" — byte-exact on every
/// platform). read_bytes_file returns nullopt on any I/O failure.
bool write_bytes_file(const std::string& path,
                      std::span<const std::uint8_t> data);
std::optional<std::vector<std::uint8_t>> read_bytes_file(
    const std::string& path);

}  // namespace zh::analysis
