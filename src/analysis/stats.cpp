#include "analysis/stats.hpp"

#include <cstdio>

namespace zh::analysis {

std::string format_percent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f %%", decimals, fraction * 100.0);
  return buf;
}

std::string format_count(std::uint64_t count) {
  char buf[32];
  if (count >= 1000000000ull) {
    std::snprintf(buf, sizeof buf, "%.1f B",
                  static_cast<double>(count) / 1e9);
  } else if (count >= 1000000ull) {
    std::snprintf(buf, sizeof buf, "%.1f M",
                  static_cast<double>(count) / 1e6);
  } else if (count >= 1000ull) {
    std::snprintf(buf, sizeof buf, "%.1f K",
                  static_cast<double>(count) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(count));
  }
  return buf;
}

void print_comparison(const std::string& title,
                      const std::vector<ComparisonRow>& rows) {
  std::size_t metric_width = 6, paper_width = 5;
  for (const auto& row : rows) {
    metric_width = std::max(metric_width, row.metric.size());
    paper_width = std::max(paper_width, row.paper.size());
  }
  std::printf("\n%s\n", title.c_str());
  std::printf("%-*s | %-*s | %s\n", static_cast<int>(metric_width), "metric",
              static_cast<int>(paper_width), "paper", "measured");
  std::printf("%s\n",
              std::string(metric_width + paper_width + 14, '-').c_str());
  for (const auto& row : rows) {
    std::printf("%-*s | %-*s | %s\n", static_cast<int>(metric_width),
                row.metric.c_str(), static_cast<int>(paper_width),
                row.paper.c_str(), row.measured.c_str());
  }
}

void print_ascii_cdf(const std::string& title, const Ecdf& ecdf,
                     std::int64_t x_max, int width, int height) {
  std::printf("\n%s (n=%llu)\n", title.c_str(),
              static_cast<unsigned long long>(ecdf.total()));
  if (ecdf.empty()) {
    std::printf("  (empty)\n");
    return;
  }
  for (int row = height; row >= 1; --row) {
    const double level = static_cast<double>(row) / height;
    std::string line;
    for (int col = 0; col < width; ++col) {
      const std::int64_t x = x_max * col / (width - 1);
      line += (ecdf.fraction_at_most(x) >= level - 1e-12) ? '#' : ' ';
    }
    std::printf("%5.1f%% |%s\n", level * 100.0, line.c_str());
  }
  std::printf("       +%s\n", std::string(width, '-').c_str());
  std::printf("        0%*lld\n", width - 1,
              static_cast<long long>(x_max));
}

}  // namespace zh::analysis
