// Statistical primitives for the measurement analysis: empirical CDFs
// (Figures 1 and 2), frequency tables (Table 2), and percentage helpers.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace zh::analysis {

/// Empirical cumulative distribution over integer-valued observations.
class Ecdf {
 public:
  void add(std::int64_t value, std::uint64_t count = 1) {
    counts_[value] += count;
    total_ += count;
  }

  std::uint64_t total() const noexcept { return total_; }
  bool empty() const noexcept { return total_ == 0; }

  /// Folds another distribution in. Merging is commutative and associative:
  /// any partition of the observations, merged in any order, reproduces the
  /// unsplit aggregate exactly (counts are integers — no rounding drift).
  /// This is what makes sharded campaigns bit-identical for any shard count.
  void merge(const Ecdf& other) {
    for (const auto& [value, count] : other.counts_) counts_[value] += count;
    total_ += other.total_;
  }

  /// P(X <= value); 0 for an empty distribution.
  double fraction_at_most(std::int64_t value) const {
    if (total_ == 0) return 0.0;
    std::uint64_t acc = 0;
    for (const auto& [v, c] : counts_) {
      if (v > value) break;
      acc += c;
    }
    return static_cast<double>(acc) / static_cast<double>(total_);
  }

  /// Smallest value v with P(X <= v) >= p (nearest-rank; p in [0,1]).
  std::int64_t percentile(double p) const {
    // ceil(p·n) computed in doubles overshoots when p·n should be an exact
    // integer but rounds up (0.07·100 = 7.000000000000001 → rank 8, off by
    // one bucket). Shave a relative epsilon before the ceil so exact ranks
    // survive while genuinely fractional ones still round up.
    const double scaled = p * static_cast<double>(total_);
    std::uint64_t threshold =
        static_cast<std::uint64_t>(std::ceil(scaled - scaled * 1e-12));
    if (threshold == 0) threshold = 1;
    if (threshold > total_ && total_ > 0) threshold = total_;
    std::uint64_t acc = 0;
    for (const auto& [v, c] : counts_) {
      acc += c;
      if (acc >= threshold) return v;
    }
    return counts_.empty() ? 0 : counts_.rbegin()->first;
  }

  std::int64_t max() const {
    return counts_.empty() ? 0 : counts_.rbegin()->first;
  }
  std::int64_t min() const {
    return counts_.empty() ? 0 : counts_.begin()->first;
  }

  std::uint64_t count_of(std::int64_t value) const {
    const auto it = counts_.find(value);
    return it == counts_.end() ? 0 : it->second;
  }

  /// Observations strictly greater than `value`.
  std::uint64_t count_above(std::int64_t value) const {
    std::uint64_t acc = 0;
    for (auto it = counts_.upper_bound(value); it != counts_.end(); ++it)
      acc += it->second;
    return acc;
  }

  /// (value, cumulative fraction) points, one per distinct value.
  std::vector<std::pair<std::int64_t, double>> curve() const {
    std::vector<std::pair<std::int64_t, double>> out;
    std::uint64_t acc = 0;
    for (const auto& [v, c] : counts_) {
      acc += c;
      out.emplace_back(v,
                       static_cast<double>(acc) / static_cast<double>(total_));
    }
    return out;
  }

  const std::map<std::int64_t, std::uint64_t>& histogram() const noexcept {
    return counts_;
  }

 private:
  std::map<std::int64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Frequency table over string keys with share computation.
class FreqTable {
 public:
  void add(const std::string& key, std::uint64_t count = 1) {
    counts_[key] += count;
    total_ += count;
  }

  /// Folds another table in (same algebra as Ecdf::merge).
  void merge(const FreqTable& other) {
    for (const auto& [key, count] : other.counts_) counts_[key] += count;
    total_ += other.total_;
  }

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t count_of(const std::string& key) const {
    const auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }
  double share(const std::string& key) const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(count_of(key)) /
                             static_cast<double>(total_);
  }

  /// Top-n entries by count, descending (ties broken by key).
  std::vector<std::pair<std::string, std::uint64_t>> top(std::size_t n) const {
    std::vector<std::pair<std::string, std::uint64_t>> entries(
        counts_.begin(), counts_.end());
    std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    if (entries.size() > n) entries.resize(n);
    return entries;
  }

  const std::map<std::string, std::uint64_t>& raw() const noexcept {
    return counts_;
  }

 private:
  std::map<std::string, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// "87.8 %"-style formatting.
std::string format_percent(double fraction, int decimals = 1);

/// Human count: 15500000 → "15.5 M", 994000 → "994.0 K".
std::string format_count(std::uint64_t count);

/// One row of a paper-vs-measured comparison.
struct ComparisonRow {
  std::string metric;
  std::string paper;
  std::string measured;
};

/// Prints an aligned comparison table to stdout.
void print_comparison(const std::string& title,
                      const std::vector<ComparisonRow>& rows);

/// Renders an ASCII CDF plot (for figure benches).
void print_ascii_cdf(const std::string& title, const Ecdf& ecdf,
                     std::int64_t x_max, int width = 60, int height = 12);

}  // namespace zh::analysis
