// Result export: CSV and JSON writers for the campaign outputs, so the
// regenerated figures can be re-plotted outside this repository (gnuplot,
// matplotlib, R). Benches honour ZH_OUTPUT_DIR to drop these next to the
// console reports.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/stats.hpp"

namespace zh::analysis {

/// CDF points as CSV: "value,cumulative_fraction\n".
std::string ecdf_to_csv(const Ecdf& ecdf,
                        const std::string& value_header = "value");

/// Frequency table as CSV: "key,count,share\n", descending by count.
std::string freq_to_csv(const FreqTable& table,
                        const std::string& key_header = "key");

/// A generic columnar table serialisable to CSV and JSON.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  /// Appends a row; must match the column count.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }
  const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }

  /// RFC 4180-ish CSV (quotes cells containing commas/quotes/newlines).
  std::string to_csv() const;

  /// JSON array of objects keyed by the column names (values as strings).
  std::string to_json() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes `content` to `directory/filename`; returns false on I/O failure.
bool write_file(const std::string& directory, const std::string& filename,
                const std::string& content);

}  // namespace zh::analysis
