#include "analysis/serialize.hpp"

#include <cstdio>

namespace zh::analysis {

const char* decode_errc_name(DecodeErrc code) noexcept {
  switch (code) {
    case DecodeErrc::kNone: return "ok";
    case DecodeErrc::kTruncated: return "truncated";
    case DecodeErrc::kBadMagic: return "bad-magic";
    case DecodeErrc::kBadVersion: return "bad-version";
    case DecodeErrc::kBadValue: return "bad-value";
    case DecodeErrc::kChecksum: return "checksum-mismatch";
    case DecodeErrc::kTrailingBytes: return "trailing-bytes";
  }
  return "unknown";
}

std::string DecodeError::to_string() const {
  std::string out = decode_errc_name(code);
  if (!detail.empty()) out += ": " + detail;
  return out;
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> data) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const std::uint8_t byte : data) {
    hash ^= byte;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

void Encoder::u16(std::uint16_t v) {
  out_.u8(static_cast<std::uint8_t>(v));
  out_.u8(static_cast<std::uint8_t>(v >> 8));
}

void Encoder::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void Encoder::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void Encoder::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

bool Decoder::fail(DecodeErrc code, std::string detail) {
  if (error_.code == DecodeErrc::kNone) {
    error_.code = code;
    error_.detail = std::move(detail);
  }
  return false;
}

bool Decoder::u8(std::uint8_t& out) {
  if (!ok()) return false;
  const auto v = reader_.u8();
  if (!v) return fail(DecodeErrc::kTruncated, "u8");
  out = *v;
  return true;
}

bool Decoder::u16(std::uint16_t& out) {
  std::uint8_t lo = 0, hi = 0;
  if (!u8(lo) || !u8(hi)) return fail(DecodeErrc::kTruncated, "u16");
  out = static_cast<std::uint16_t>(lo | (std::uint16_t{hi} << 8));
  return true;
}

bool Decoder::u32(std::uint32_t& out) {
  std::uint16_t lo = 0, hi = 0;
  if (!u16(lo) || !u16(hi)) return fail(DecodeErrc::kTruncated, "u32");
  out = lo | (std::uint32_t{hi} << 16);
  return true;
}

bool Decoder::u64(std::uint64_t& out) {
  std::uint32_t lo = 0, hi = 0;
  if (!u32(lo) || !u32(hi)) return fail(DecodeErrc::kTruncated, "u64");
  out = lo | (std::uint64_t{hi} << 32);
  return true;
}

bool Decoder::i64(std::int64_t& out) {
  std::uint64_t raw = 0;
  if (!u64(raw)) return false;
  out = static_cast<std::int64_t>(raw);
  return true;
}

bool Decoder::str(std::string& out) {
  std::uint32_t length = 0;
  if (!u32(length)) return false;
  const auto view = reader_.view(length);
  if (!view) return fail(DecodeErrc::kTruncated, "string body");
  out.assign(reinterpret_cast<const char*>(view->data()), view->size());
  return true;
}

bool Decoder::magic(const char* expect) {
  if (!ok()) return false;
  const auto view = reader_.view(4);
  if (!view) return fail(DecodeErrc::kTruncated, "magic");
  for (std::size_t i = 0; i < 4; ++i) {
    if ((*view)[i] != static_cast<std::uint8_t>(expect[i]))
      return fail(DecodeErrc::kBadMagic, std::string("want ") + expect);
  }
  return true;
}

bool Decoder::expect_end() {
  if (!ok()) return false;
  if (reader_.remaining() != 0)
    return fail(DecodeErrc::kTrailingBytes,
                std::to_string(reader_.remaining()) + " bytes after value");
  return true;
}

void encode(Encoder& enc, const Ecdf& ecdf) {
  enc.u64(ecdf.histogram().size());
  for (const auto& [value, count] : ecdf.histogram()) {
    enc.i64(value);
    enc.u64(count);
  }
}

bool decode(Decoder& dec, Ecdf& out) {
  std::uint64_t entries = 0;
  if (!dec.u64(entries)) return false;
  bool first = true;
  std::int64_t previous = 0;
  for (std::uint64_t i = 0; i < entries; ++i) {
    std::int64_t value = 0;
    std::uint64_t count = 0;
    if (!dec.i64(value) || !dec.u64(count)) return false;
    if (!first && value <= previous)
      return dec.fail(DecodeErrc::kBadValue, "ecdf keys not ascending");
    if (count == 0) return dec.fail(DecodeErrc::kBadValue, "ecdf zero count");
    out.add(value, count);
    previous = value;
    first = false;
  }
  return true;
}

void encode(Encoder& enc, const FreqTable& table) {
  enc.u64(table.raw().size());
  for (const auto& [key, count] : table.raw()) {
    enc.str(key);
    enc.u64(count);
  }
}

bool decode(Decoder& dec, FreqTable& out) {
  std::uint64_t entries = 0;
  if (!dec.u64(entries)) return false;
  bool first = true;
  std::string previous;
  for (std::uint64_t i = 0; i < entries; ++i) {
    std::string key;
    std::uint64_t count = 0;
    if (!dec.str(key) || !dec.u64(count)) return false;
    if (!first && key <= previous)
      return dec.fail(DecodeErrc::kBadValue, "freq keys not ascending");
    if (count == 0) return dec.fail(DecodeErrc::kBadValue, "freq zero count");
    out.add(key, count);
    previous = std::move(key);
    first = false;
  }
  return true;
}

bool write_bytes_file(const std::string& path,
                      std::span<const std::uint8_t> data) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (!file) return false;
  const std::size_t written = std::fwrite(data.data(), 1, data.size(), file);
  const bool closed = std::fclose(file) == 0;
  return written == data.size() && closed;
}

std::optional<std::vector<std::uint8_t>> read_bytes_file(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (!file) return std::nullopt;
  std::vector<std::uint8_t> data;
  std::uint8_t buffer[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0)
    data.insert(data.end(), buffer, buffer + n);
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return std::nullopt;
  return data;
}

}  // namespace zh::analysis
