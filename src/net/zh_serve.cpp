// zh_serve — put the simulated Internet on real sockets.
//
//   ./zh_serve --port 0                 # ephemeral port, printed on stdout
//   dig @127.0.0.1 -p $PORT d0.com A +dnssec
//
// Builds the same world every bench uses (bench/bench_common.hpp: scale,
// seed and population from ZH_SCALE / ZH_SEED), binds a net::Frontend on
// --listen/--port, and answers each wire query by dispatching into the
// simulation over its reliable transport (send_tcp: full answers, no
// simulated loss), so the frontend alone decides UDP truncation from the
// client's real EDNS advertisement. The default endpoint is the
// measurement resolver at 1.1.1.1 (Cloudflare profile, as the paper's
// scans); --endpoint A.B.C.D targets any attached node — e.g. the shared
// hosting server — to serve authoritative answers instead.
//
// Everything runs on one thread: world build, event loop and dispatch,
// honouring the one-thread-per-Network contract (simnet/network.hpp).
// SIGINT/SIGTERM drain gracefully (close listeners, flush buffered
// responses); a second signal stops immediately.
#include <sys/epoll.h>
#include <sys/signalfd.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "bench/bench_common.hpp"
#include "net/event_loop.hpp"
#include "net/frontend.hpp"
#include "simnet/address.hpp"

namespace {

void print_usage() {
  std::printf(
      "usage: zh_serve [--listen A] [--port N] [--endpoint A.B.C.D]\n"
      "                [--tcp-idle-ms MS] [--pending-budget N]\n"
      "  --listen A          bind address (default 127.0.0.1)\n"
      "  --port N            UDP+TCP port (default 0 = ephemeral, printed)\n"
      "  --endpoint A.B.C.D  simulated node to serve (default 1.1.1.1, the\n"
      "                      measurement resolver)\n"
      "  --tcp-idle-ms MS    reap TCP connections idle longer than MS\n"
      "  --pending-budget N  shed (SERVFAIL + EDE 23) past N buffered\n"
      "                      responses\n"
      "  world shape: ZH_SCALE / ZH_SEED as for every bench\n");
}

std::optional<zh::simnet::IpAddress> parse_ipv4(const char* text) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char tail = 0;
  if (std::sscanf(text, "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4)
    return std::nullopt;
  if (a > 255 || b > 255 || c > 255 || d > 255) return std::nullopt;
  return zh::simnet::IpAddress::v4(
      static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
      static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zh;

  simnet::IpAddress endpoint = simnet::IpAddress::v4(1, 1, 1, 1);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      print_usage();
      return 0;
    }
    const char* value = nullptr;
    if (std::strncmp(argv[i], "--endpoint=", 11) == 0) {
      value = argv[i] + 11;
    } else if (std::strcmp(argv[i], "--endpoint") == 0 && i + 1 < argc) {
      value = argv[++i];
    }
    if (value) {
      const auto parsed = parse_ipv4(value);
      if (!parsed) {
        std::fprintf(stderr, "bad --endpoint '%s' (want dotted IPv4)\n", value);
        return 2;
      }
      endpoint = *parsed;
    }
  }
  const bench::BenchFlags flags = bench::parse_flags(argc, argv);

  bench::World world = bench::build_world();
  simnet::Network& network = world.internet->network();
  if (!network.is_attached(endpoint)) {
    std::fprintf(stderr, "endpoint %s is not an attached node\n",
                 endpoint.to_string().c_str());
    return 2;
  }
  // The frontend's clients share one source identity inside the simulation
  // (a TEST-NET-3 address no node occupies); server-side query logs
  // attribute all real-socket traffic to it.
  const simnet::IpAddress wire_client = simnet::IpAddress::v4(203, 0, 113, 53);

  net::EventLoop loop;
  if (!loop.valid()) {
    std::fprintf(stderr, "event loop setup failed (epoll/timerfd)\n");
    return 1;
  }

  net::FrontendConfig config;
  config.listen = flags.listen;
  config.port = static_cast<std::uint16_t>(flags.port);
  config.tcp_idle_ms = flags.tcp_idle_ms;
  config.pending_budget = flags.pending_budget;
  net::Frontend frontend(
      [&](const dns::Message& query) {
        return network.send_tcp(wire_client, endpoint, query);
      },
      config, &network.tracer());
  if (!frontend.start(loop)) {
    std::fprintf(stderr, "frontend start failed: %s\n",
                 frontend.error().c_str());
    return 1;
  }
  std::printf("# zh_serve: %s on %s port %u (udp+tcp), endpoint %s\n",
              flags.port == 0 ? "ephemeral" : "listening",
              flags.listen.c_str(), frontend.port(),
              endpoint.to_string().c_str());
  std::printf("PORT %u\n", frontend.port());
  std::fflush(stdout);

  // Signals become fd events: block them, read them off a signalfd on the
  // loop thread. First signal drains, second stops outright.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  sigprocmask(SIG_BLOCK, &mask, nullptr);
  const int signal_fd = signalfd(-1, &mask, SFD_NONBLOCK | SFD_CLOEXEC);
  bool draining = false;
  if (signal_fd >= 0) {
    loop.add(signal_fd, EPOLLIN, [&](std::uint32_t) {
      signalfd_siginfo info;
      while (::read(signal_fd, &info, sizeof info) == sizeof info) {
        if (draining) {
          loop.stop();
        } else {
          draining = true;
          std::fprintf(stderr, "# draining (again to stop now)\n");
          frontend.drain_and_stop();
        }
      }
    });
  }

  loop.run();

  const net::FrontendCounters& counters = frontend.counters();
  std::printf(
      "# served udp=%llu tcp=%llu responses=%llu truncated=%llu "
      "malformed=%llu shed=%llu dropped=%llu reaped=%llu rx=%llu tx=%llu\n",
      static_cast<unsigned long long>(counters.udp_queries),
      static_cast<unsigned long long>(counters.tcp_queries),
      static_cast<unsigned long long>(counters.responses),
      static_cast<unsigned long long>(counters.truncated),
      static_cast<unsigned long long>(counters.malformed),
      static_cast<unsigned long long>(counters.shed),
      static_cast<unsigned long long>(counters.dropped),
      static_cast<unsigned long long>(counters.tcp_reaped),
      static_cast<unsigned long long>(counters.rx_bytes),
      static_cast<unsigned long long>(counters.tx_bytes));
  if (signal_fd >= 0) ::close(signal_fd);
  return 0;
}
