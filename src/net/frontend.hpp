// zh::net::Frontend — the DNS front door that puts the simulated Internet
// on real ports.
//
// One Frontend binds a UDP socket and a TCP listener on the same
// (configurable or ephemeral) port and answers real wire queries — from
// `dig`, `dnsperf`, zdns, or the bundled WireClient — by dispatching the
// decoded message into a caller-supplied handler, normally a closure over
// testbed::Internet that delivers to a simulated node (the recursive
// resolver endpoint or any authoritative). The handler path is therefore
// exactly the one the in-sim engines use; the frontend only owns the
// transport realism:
//
//   * hardened decode — untrusted bytes go through dns::Message::decode;
//     malformed datagrams are counted and dropped, malformed TCP frames
//     close the stream (typed errors, never a crash: tests/test_frontend
//     fires the malformed corpus at a live frontend under ASan/UBSan);
//   * EDNS-honest UDP — responses larger than the client's advertised
//     payload size (clamped to ≥ 512, RFC 6891 §6.2.3) come back with TC
//     and empty sections, mirroring simnet::Network::send, so a UDP→TCP
//     retry yields bytes identical to a TCP-first ask;
//   * TCP framing — RFC 1035 §4.2.2 two-byte length prefixes, per
//     connection read/write buffering with partial-write continuation,
//     and idle-connection reaping on the event-loop timer;
//   * overload shedding — a bounded pending-response budget: when more
//     responses sit unflushed than the budget allows, new queries are
//     answered SERVFAIL + EDE 23 ("server overloaded"), the same shape a
//     simtime::ServiceQueue shed has on the virtual path.
//
// Threading: a Frontend lives on the event-loop thread, like the Network
// it fronts. Counters may be read from another thread only after the loop
// has been stopped and joined.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/message.hpp"
#include "trace/trace.hpp"

namespace zh::net {

class EventLoop;

/// Answers one decoded query; nullopt = drop (the client sees a timeout),
/// exactly like a simnet::MessageHandler.
using Dispatch =
    std::function<std::optional<dns::Message>(const dns::Message& query)>;

struct FrontendConfig {
  /// Listen address (dotted IPv4). 127.0.0.1 keeps the testbed loopback-
  /// only by default; 0.0.0.0 serves a LAN.
  std::string listen = "127.0.0.1";
  /// Port for both UDP and TCP; 0 picks an ephemeral port (read it back
  /// with port()).
  std::uint16_t port = 0;
  /// TCP connections idle longer than this are reaped. ≤0 disables.
  std::int64_t tcp_idle_ms = 10000;
  /// Max responses buffered-but-unflushed across all transports before new
  /// queries are shed with SERVFAIL + EDE 23.
  std::size_t pending_budget = 512;
  /// Cap applied on top of the client's advertised EDNS payload size
  /// (0 = honour the client fully). The advertised size is always clamped
  /// to ≥ 512 per RFC 6891.
  std::size_t max_udp_payload = 0;
  /// Test knob: SO_SNDBUF for accepted TCP sockets (0 = kernel default).
  /// Shrinking it makes write backpressure — and thus shedding —
  /// reproducible on loopback.
  int tcp_sndbuf = 0;
};

/// Plain counters for tests and the zh_serve exit report. The same events
/// tick `net.*` metrics on the attached tracer.
struct FrontendCounters {
  std::uint64_t udp_queries = 0;   // well-formed queries received over UDP
  std::uint64_t tcp_queries = 0;   // well-formed queries received over TCP
  std::uint64_t responses = 0;     // responses handed to the kernel or buffer
  std::uint64_t truncated = 0;     // UDP answers sent with TC set
  std::uint64_t malformed = 0;     // datagrams/frames Message::decode rejected
  std::uint64_t shed = 0;          // queries answered SERVFAIL over budget
  std::uint64_t dropped = 0;       // dispatch returned nullopt (no answer)
  std::uint64_t tcp_accepts = 0;
  std::uint64_t tcp_reaped = 0;    // connections closed by the idle reaper
  std::uint64_t rx_bytes = 0;      // payload bytes received (both transports)
  std::uint64_t tx_bytes = 0;      // payload bytes sent (both transports)
};

class Frontend {
 public:
  explicit Frontend(Dispatch dispatch, FrontendConfig config = {},
                    trace::Tracer* tracer = nullptr);
  ~Frontend();
  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /// Binds UDP+TCP and registers with the loop. False on failure — see
  /// error(). Call once.
  bool start(EventLoop& loop);

  /// The bound port (after start); the same for UDP and TCP.
  std::uint16_t port() const noexcept { return port_; }

  const std::string& error() const noexcept { return error_; }

  const FrontendCounters& counters() const noexcept { return counters_; }

  /// Open TCP connections right now (post-reap view).
  std::size_t open_connections() const noexcept { return connections_.size(); }

  /// Graceful drain for SIGINT/SIGTERM: closes the listeners (no new
  /// queries), flushes buffered responses, then stops the loop — after at
  /// most `grace_ms` even if some client never drains its socket.
  void drain_and_stop(std::int64_t grace_ms = 2000);

 private:
  struct Connection {
    int fd = -1;
    std::vector<std::uint8_t> in;   // unparsed stream bytes
    std::vector<std::uint8_t> out;  // unflushed framed responses
    std::size_t out_offset = 0;     // bytes of `out` already written
    std::size_t queued_responses = 0;
    std::int64_t last_active_ms = 0;
    bool want_write = false;
  };

  /// Outcome of serving one well-formed query that wants a reply.
  struct Served {
    dns::Message query;
    dns::Message response;
  };

  bool bind_pair();
  void on_udp_readable();
  void on_udp_writable();
  void on_accept();
  void on_connection(int fd, std::uint32_t events);
  void parse_frames(Connection& conn);
  /// Decode + budget check + dispatch; nullopt when nothing should be sent
  /// (malformed input or a dispatch drop).
  std::optional<Served> serve(std::span<const std::uint8_t> wire, bool tcp);
  /// Applies the RFC 6891 payload limit; returns the bytes to send.
  std::vector<std::uint8_t> udp_response_wire(const dns::Message& query,
                                              dns::Message response);
  void enqueue_tcp(Connection& conn, const std::vector<std::uint8_t>& wire);
  bool flush_tcp(Connection& conn);
  void close_connection(int fd, bool reaped);
  void schedule_reap();
  void maybe_finish_drain();
  void drain_tick();
  std::size_t pending_responses() const noexcept { return pending_; }
  void count(std::uint64_t FrontendCounters::* field, const char* metric,
             std::uint64_t n = 1);

  Dispatch dispatch_;
  FrontendConfig config_;
  trace::Tracer* tracer_ = nullptr;
  EventLoop* loop_ = nullptr;
  int udp_fd_ = -1;
  int tcp_fd_ = -1;
  std::uint16_t port_ = 0;
  std::string error_;
  FrontendCounters counters_;
  std::unordered_map<int, Connection> connections_;
  /// UDP responses the kernel would not take synchronously (EAGAIN).
  struct PendingDatagram {
    std::vector<std::uint8_t> wire;
    std::vector<std::uint8_t> peer;  // raw sockaddr bytes
  };
  std::deque<PendingDatagram> udp_out_;
  std::size_t pending_ = 0;  // unflushed responses across all transports
  std::uint64_t reap_timer_ = 0;
  bool draining_ = false;
  std::int64_t drain_deadline_ms_ = 0;
};

}  // namespace zh::net
