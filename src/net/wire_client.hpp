// Minimal blocking DNS wire client for tests and bench_frontend.
//
// Speaks exactly what the Frontend serves: UDP datagrams with RFC 6891
// EDNS payload advertisement and RFC 1035 §4.2.2 length-framed TCP, with
// the zdns-style UDP→TCP retry on a TC answer. Deliberately independent
// of simnet — its whole point is to exercise the real socket path, so
// loopback interop tests compare *independent* transports, not one
// implementation against itself.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dns/message.hpp"

namespace zh::net {

/// Outcome of one client exchange.
struct ClientResult {
  std::optional<dns::Message> message;  // decoded response
  std::vector<std::uint8_t> wire;       // raw response bytes (empty if none)
  bool tcp_fallback = false;            // a TC answer was refetched over TCP
  bool timed_out = false;
  std::string error;  // socket-level failure description ("" when clean)
};

class WireClient {
 public:
  WireClient(std::string host, std::uint16_t port)
      : host_(std::move(host)), port_(port) {}

  /// UDP query; on a TC response retries over TCP (when `retry_tcp`) —
  /// the end-to-end path a stub resolver takes.
  ClientResult query(const dns::Message& query, int timeout_ms = 2000,
                     bool retry_tcp = true) const;

  ClientResult query_udp(const dns::Message& query,
                         int timeout_ms = 2000) const;
  ClientResult query_tcp(const dns::Message& query,
                         int timeout_ms = 2000) const;

  /// Fires raw bytes as one UDP datagram (malformed-corpus ammunition);
  /// does not wait for an answer.
  bool send_raw_udp(std::span<const std::uint8_t> bytes) const;

 private:
  std::string host_;
  std::uint16_t port_;
};

/// A persistent framed TCP connection — for pipelining, idle-reap and
/// malformed-stream tests where one socket must outlive a single query.
class TcpSession {
 public:
  /// `rcvbuf` > 0 shrinks SO_RCVBUF before connecting (kernel clamps to
  /// its minimum) — backpressure tests use it to jam the server's writes
  /// with a bounded number of bytes in flight.
  TcpSession(const std::string& host, std::uint16_t port, int timeout_ms = 2000,
             int rcvbuf = 0);
  ~TcpSession();
  TcpSession(const TcpSession&) = delete;
  TcpSession& operator=(const TcpSession&) = delete;

  bool connected() const noexcept { return fd_ >= 0; }

  /// Sends one length-framed message; false on socket failure.
  bool send(const dns::Message& message);
  /// Sends arbitrary stream bytes (no framing added).
  bool send_raw(std::span<const std::uint8_t> bytes);

  /// Reads one length-framed response payload. nullopt on timeout or when
  /// the peer closed (check closed_by_peer() to tell them apart).
  std::optional<std::vector<std::uint8_t>> read_frame(int timeout_ms = 2000);

  bool closed_by_peer() const noexcept { return closed_; }

 private:
  bool fill(std::size_t need, int timeout_ms);

  int fd_ = -1;
  bool closed_ = false;
  std::vector<std::uint8_t> buffer_;
};

}  // namespace zh::net
