#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/timerfd.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <vector>

namespace zh::net {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || timer_fd_ < 0 || wake_fd_ < 0) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (timer_fd_ >= 0) ::close(timer_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    epoll_fd_ = timer_fd_ = wake_fd_ = -1;
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered: the loop drains them itself
  ev.data.fd = timer_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (timer_fd_ >= 0) ::close(timer_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

bool EventLoop::add(int fd, std::uint32_t events, FdCallback callback) {
  if (!valid() || fd < 0) return false;
  epoll_event ev{};
  ev.events = events | EPOLLET;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  fds_[fd] = std::make_shared<FdCallback>(std::move(callback));
  return true;
}

bool EventLoop::modify(int fd, std::uint32_t events) {
  if (!valid() || fds_.count(fd) == 0) return false;
  epoll_event ev{};
  ev.events = events | EPOLLET;
  ev.data.fd = fd;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::remove(int fd) {
  if (!valid()) return;
  if (fds_.erase(fd) > 0) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

std::int64_t EventLoop::now_ms() noexcept {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1000 + ts.tv_nsec / 1000000;
}

std::uint64_t EventLoop::add_timer(std::int64_t after_ms,
                                   TimerCallback callback) {
  const std::uint64_t id = next_timer_id_++;
  const std::int64_t deadline = now_ms() + (after_ms < 0 ? 0 : after_ms);
  timers_.emplace(deadline, Timer{id, std::move(callback)});
  timer_deadlines_[id] = deadline;
  arm_timerfd();
  return id;
}

void EventLoop::cancel_timer(std::uint64_t id) {
  const auto it = timer_deadlines_.find(id);
  if (it == timer_deadlines_.end()) return;
  const auto [begin, end] = timers_.equal_range(it->second);
  for (auto t = begin; t != end; ++t) {
    if (t->second.id == id) {
      timers_.erase(t);
      break;
    }
  }
  timer_deadlines_.erase(it);
  arm_timerfd();
}

void EventLoop::arm_timerfd() {
  if (!valid()) return;
  itimerspec spec{};  // all-zero disarms
  if (!timers_.empty()) {
    std::int64_t delta = timers_.begin()->first - now_ms();
    if (delta < 1) delta = 1;  // 0 would disarm; fire "immediately" instead
    spec.it_value.tv_sec = delta / 1000;
    spec.it_value.tv_nsec = (delta % 1000) * 1000000;
  }
  ::timerfd_settime(timer_fd_, 0, &spec, nullptr);
}

std::size_t EventLoop::fire_due_timers() {
  const std::int64_t now = now_ms();
  std::vector<Timer> due;
  while (!timers_.empty() && timers_.begin()->first <= now) {
    due.push_back(std::move(timers_.begin()->second));
    timer_deadlines_.erase(timers_.begin()->second.id);
    timers_.erase(timers_.begin());
  }
  arm_timerfd();
  for (Timer& timer : due)
    if (timer.callback) timer.callback();
  return due.size();
}

std::size_t EventLoop::poll(int timeout_ms) {
  if (!valid()) return 0;
  epoll_event events[64];
  int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  if (n < 0) {
    if (errno != EINTR) stop_.store(true, std::memory_order_relaxed);
    return 0;
  }
  std::size_t invoked = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_fd_) {
      std::uint64_t drain = 0;
      while (::read(wake_fd_, &drain, sizeof drain) > 0) {
      }
      continue;
    }
    if (fd == timer_fd_) {
      std::uint64_t expirations = 0;
      while (::read(timer_fd_, &expirations, sizeof expirations) > 0) {
      }
      invoked += fire_due_timers();
      continue;
    }
    // Look up at dispatch time: an earlier callback in this batch may have
    // removed the fd (e.g. closed the connection the event was for).
    const auto it = fds_.find(fd);
    if (it == fds_.end()) continue;
    const std::shared_ptr<FdCallback> callback = it->second;
    (*callback)(events[i].events);
    ++invoked;
  }
  return invoked;
}

void EventLoop::run() {
  while (valid() && !stop_.load(std::memory_order_relaxed)) poll(-1);
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
  }
}

}  // namespace zh::net
