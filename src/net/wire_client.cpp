#include "net/wire_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace zh::net {
namespace {

constexpr std::size_t kMaxTcpFrame = 65535;

bool make_addr(const std::string& host, std::uint16_t port, sockaddr_in* out) {
  std::memset(out, 0, sizeof *out);
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  return ::inet_pton(AF_INET, host.c_str(), &out->sin_addr) == 1;
}

/// Waits for readability/writability with a deadline; false on timeout.
bool wait_fd(int fd, short events, int timeout_ms) {
  pollfd pfd{fd, events, 0};
  for (;;) {
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n > 0) return true;
    if (n == 0) return false;
    if (errno != EINTR) return false;
  }
}

/// Writes all of `bytes` to a blocking socket.
bool write_all(int fd, const std::uint8_t* bytes, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::send(fd, bytes + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

std::vector<std::uint8_t> frame(const std::vector<std::uint8_t>& wire) {
  std::vector<std::uint8_t> framed;
  framed.reserve(wire.size() + 2);
  framed.push_back(static_cast<std::uint8_t>(wire.size() >> 8));
  framed.push_back(static_cast<std::uint8_t>(wire.size() & 0xff));
  framed.insert(framed.end(), wire.begin(), wire.end());
  return framed;
}

}  // namespace

ClientResult WireClient::query_udp(const dns::Message& query,
                                   int timeout_ms) const {
  ClientResult result;
  sockaddr_in addr{};
  if (!make_addr(host_, port_, &addr)) {
    result.error = "bad address " + host_;
    return result;
  }
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    result.error = "socket: " + std::string(std::strerror(errno));
    return result;
  }
  const std::vector<std::uint8_t> wire = query.to_wire();
  if (::sendto(fd, wire.data(), wire.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    result.error = "sendto: " + std::string(std::strerror(errno));
    ::close(fd);
    return result;
  }
  // Responses to a stale id (from a previous timed-out ask on a fresh
  // socket) cannot arrive here — the socket is per-query — so the first
  // datagram is the answer.
  if (!wait_fd(fd, POLLIN, timeout_ms)) {
    result.timed_out = true;
    ::close(fd);
    return result;
  }
  std::uint8_t buffer[65535];
  const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
  ::close(fd);
  if (n < 0) {
    result.error = "recv: " + std::string(std::strerror(errno));
    return result;
  }
  result.wire.assign(buffer, buffer + n);
  result.message = dns::Message::from_wire(result.wire);
  if (!result.message) result.error = "malformed response";
  return result;
}

ClientResult WireClient::query_tcp(const dns::Message& query,
                                   int timeout_ms) const {
  ClientResult result;
  TcpSession session(host_, port_, timeout_ms);
  if (!session.connected()) {
    result.error = "connect failed";
    return result;
  }
  if (!session.send(query)) {
    result.error = "send failed";
    return result;
  }
  const auto payload = session.read_frame(timeout_ms);
  if (!payload) {
    if (session.closed_by_peer())
      result.error = "connection closed";
    else
      result.timed_out = true;
    return result;
  }
  result.wire = *payload;
  result.message = dns::Message::from_wire(result.wire);
  if (!result.message) result.error = "malformed response";
  return result;
}

ClientResult WireClient::query(const dns::Message& query, int timeout_ms,
                               bool retry_tcp) const {
  ClientResult result = query_udp(query, timeout_ms);
  if (retry_tcp && result.message && result.message->header.tc) {
    result = query_tcp(query, timeout_ms);
    result.tcp_fallback = true;
  }
  return result;
}

bool WireClient::send_raw_udp(std::span<const std::uint8_t> bytes) const {
  sockaddr_in addr{};
  if (!make_addr(host_, port_, &addr)) return false;
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  const ssize_t n =
      ::sendto(fd, bytes.data(), bytes.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  ::close(fd);
  return n == static_cast<ssize_t>(bytes.size());
}

TcpSession::TcpSession(const std::string& host, std::uint16_t port,
                       int timeout_ms, int rcvbuf) {
  sockaddr_in addr{};
  if (!make_addr(host, port, &addr)) return;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return;
  if (rcvbuf > 0)
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
  // Blocking connect is fine on loopback (instant SYN/ACK or instant
  // ECONNREFUSED); timeout_ms only governs reads.
  (void)timeout_ms;
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    ::close(fd);
    return;
  }
  fd_ = fd;
}

TcpSession::~TcpSession() {
  if (fd_ >= 0) ::close(fd_);
}

bool TcpSession::send(const dns::Message& message) {
  const std::vector<std::uint8_t> framed = frame(message.to_wire());
  return send_raw(framed);
}

bool TcpSession::send_raw(std::span<const std::uint8_t> bytes) {
  if (fd_ < 0) return false;
  return write_all(fd_, bytes.data(), bytes.size());
}

bool TcpSession::fill(std::size_t need, int timeout_ms) {
  while (buffer_.size() < need) {
    if (!wait_fd(fd_, POLLIN, timeout_ms)) return false;
    std::uint8_t chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) {
      closed_ = true;
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      closed_ = true;
      return false;
    }
    buffer_.insert(buffer_.end(), chunk, chunk + n);
  }
  return true;
}

std::optional<std::vector<std::uint8_t>> TcpSession::read_frame(
    int timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  if (!fill(2, timeout_ms)) return std::nullopt;
  const std::size_t length =
      (static_cast<std::size_t>(buffer_[0]) << 8) | buffer_[1];
  if (length == 0 || length > kMaxTcpFrame) {
    closed_ = true;
    return std::nullopt;
  }
  if (!fill(2 + length, timeout_ms)) return std::nullopt;
  std::vector<std::uint8_t> payload(buffer_.begin() + 2,
                                    buffer_.begin() + 2 + length);
  buffer_.erase(buffer_.begin(), buffer_.begin() + 2 + length);
  return payload;
}

}  // namespace zh::net
