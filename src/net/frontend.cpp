#include "net/frontend.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "net/event_loop.hpp"

namespace zh::net {
namespace {

constexpr std::size_t kMaxTcpFrame = 65535;
constexpr std::size_t kReadChunk = 65536;

int make_socket(int type) {
  return ::socket(AF_INET, type | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
}

bool bind_to(int fd, const std::string& address, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) return false;
  return ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0;
}

std::uint16_t bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return 0;
  return ntohs(addr.sin_port);
}

}  // namespace

Frontend::Frontend(Dispatch dispatch, FrontendConfig config,
                   trace::Tracer* tracer)
    : dispatch_(std::move(dispatch)),
      config_(std::move(config)),
      tracer_(tracer) {}

Frontend::~Frontend() {
  for (auto& [fd, conn] : connections_) {
    if (loop_) loop_->remove(fd);
    ::close(fd);
  }
  connections_.clear();
  if (loop_) {
    if (udp_fd_ >= 0) loop_->remove(udp_fd_);
    if (tcp_fd_ >= 0) loop_->remove(tcp_fd_);
    if (reap_timer_ != 0) loop_->cancel_timer(reap_timer_);
  }
  if (udp_fd_ >= 0) ::close(udp_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
}

void Frontend::count(std::uint64_t FrontendCounters::* field,
                     const char* metric, std::uint64_t n) {
  counters_.*field += n;
  if (tracer_) tracer_->count(metric, n);
}

bool Frontend::bind_pair() {
  // TCP first: with port 0 the kernel picks one, then UDP binds the same
  // number. Another process may hold that UDP port — retry with a fresh
  // ephemeral pick a few times before giving up.
  const int attempts = config_.port == 0 ? 16 : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    tcp_fd_ = make_socket(SOCK_STREAM);
    if (tcp_fd_ < 0) break;
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (!bind_to(tcp_fd_, config_.listen, config_.port) ||
        ::listen(tcp_fd_, 128) != 0) {
      ::close(tcp_fd_);
      tcp_fd_ = -1;
      break;  // a fixed port that is taken will not free itself: fail now
    }
    const std::uint16_t port = bound_port(tcp_fd_);
    udp_fd_ = make_socket(SOCK_DGRAM);
    if (udp_fd_ >= 0 && bind_to(udp_fd_, config_.listen, port)) {
      port_ = port;
      return true;
    }
    if (udp_fd_ >= 0) ::close(udp_fd_);
    ::close(tcp_fd_);
    udp_fd_ = tcp_fd_ = -1;
    if (config_.port != 0) break;
  }
  error_ = "cannot bind udp+tcp on " + config_.listen + ":" +
           std::to_string(config_.port) + " (" + std::strerror(errno) + ")";
  return false;
}

bool Frontend::start(EventLoop& loop) {
  if (!loop.valid()) {
    error_ = "event loop invalid";
    return false;
  }
  if (!bind_pair()) return false;
  loop_ = &loop;
  loop.add(udp_fd_, EPOLLIN,
           [this](std::uint32_t events) {
             if (events & EPOLLOUT) on_udp_writable();
             if (events & EPOLLIN) on_udp_readable();
           });
  loop.add(tcp_fd_, EPOLLIN, [this](std::uint32_t) { on_accept(); });
  schedule_reap();
  return true;
}

void Frontend::schedule_reap() {
  if (config_.tcp_idle_ms <= 0 || loop_ == nullptr) return;
  const std::int64_t interval = std::max<std::int64_t>(
      1, std::min<std::int64_t>(config_.tcp_idle_ms / 4 + 1, 1000));
  reap_timer_ = loop_->add_timer(interval, [this] {
    const std::int64_t now = EventLoop::now_ms();
    std::vector<int> idle;
    for (const auto& [fd, conn] : connections_)
      if (now - conn.last_active_ms > config_.tcp_idle_ms) idle.push_back(fd);
    for (const int fd : idle) close_connection(fd, /*reaped=*/true);
    schedule_reap();
  });
}

std::optional<Frontend::Served> Frontend::serve(
    std::span<const std::uint8_t> wire, bool tcp) {
  count(&FrontendCounters::rx_bytes, "net.rx_bytes", wire.size());
  dns::DecodeResult decoded = dns::Message::decode(wire);
  if (!decoded.message) {
    count(&FrontendCounters::malformed, "net.malformed");
    if (tracer_ && tracer_->enabled())
      tracer_->instant("net", "malformed", dns::to_string(decoded.error));
    return std::nullopt;
  }
  dns::Message& query = *decoded.message;
  count(tcp ? &FrontendCounters::tcp_queries : &FrontendCounters::udp_queries,
        tcp ? "net.rx_tcp" : "net.rx_udp");
  if (pending_ >= config_.pending_budget) {
    // Same shape as a simtime::ServiceQueue shed on the virtual path.
    count(&FrontendCounters::shed, "net.shed");
    dns::Message shed = dns::Message::make_response(query);
    shed.header.rcode = dns::Rcode::kServFail;
    if (shed.edns)
      shed.edns->add_ede(dns::EdeCode::kNetworkError, "server overloaded");
    return Served{std::move(query), std::move(shed)};
  }
  trace::Span span;
  if (tracer_ && tracer_->enabled()) {
    const dns::Question* q = query.question();
    span = tracer_->span("net", tcp ? "serve.tcp" : "serve.udp",
                         q ? q->name.to_string() : std::string{});
  }
  std::optional<dns::Message> response = dispatch_(query);
  if (!response) {
    count(&FrontendCounters::dropped, "net.dropped");
    return std::nullopt;
  }
  return Served{std::move(query), *std::move(response)};
}

std::vector<std::uint8_t> Frontend::udp_response_wire(const dns::Message& query,
                                                      dns::Message response) {
  // RFC 6891 §6.2.3: advertised values below 512 are treated as 512; no
  // EDNS means the classic 512-byte limit. The optional server-side cap
  // models operators that clamp (e.g. to 1232) regardless of the client.
  std::size_t limit =
      query.edns ? std::max<std::size_t>(512, query.edns->udp_payload_size)
                 : 512;
  if (config_.max_udp_payload >= 512 && config_.max_udp_payload < limit)
    limit = config_.max_udp_payload;
  // wire_size() decides truncation without serializing, so exactly one
  // message is ever encoded on this path (the full response used to be
  // serialised even when it was about to be thrown away).
  if (response.wire_size() <= limit) return response.to_wire();
  // Mirror simnet::Network::send truncation: empty sections, TC set, rcode
  // and AA preserved — a UDP→TCP retry then fetches the identical answer.
  dns::Message truncated = dns::Message::make_response(query);
  truncated.header.rcode = response.header.rcode;
  truncated.header.aa = response.header.aa;
  truncated.header.tc = true;
  count(&FrontendCounters::truncated, "net.truncated");
  return truncated.to_wire();
}

void Frontend::on_udp_readable() {
  std::uint8_t buffer[kReadChunk];
  for (;;) {
    sockaddr_storage peer{};
    socklen_t peer_len = sizeof peer;
    const ssize_t n =
        ::recvfrom(udp_fd_, buffer, sizeof buffer, 0,
                   reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (n < 0) return;  // EAGAIN: drained (edge-triggered contract)
    if (n == 0) continue;
    auto served = serve({buffer, static_cast<std::size_t>(n)}, /*tcp=*/false);
    if (!served) continue;
    std::vector<std::uint8_t> wire =
        udp_response_wire(served->query, std::move(served->response));
    count(&FrontendCounters::responses, "net.responses");
    const ssize_t sent =
        ::sendto(udp_fd_, wire.data(), wire.size(), 0,
                 reinterpret_cast<const sockaddr*>(&peer), peer_len);
    if (sent >= 0) {
      count(&FrontendCounters::tx_bytes, "net.tx_bytes",
            static_cast<std::uint64_t>(sent));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      PendingDatagram pending;
      pending.wire = std::move(wire);
      pending.peer.assign(reinterpret_cast<const std::uint8_t*>(&peer),
                          reinterpret_cast<const std::uint8_t*>(&peer) +
                              peer_len);
      udp_out_.push_back(std::move(pending));
      ++pending_;
      loop_->modify(udp_fd_, EPOLLIN | EPOLLOUT);
    }
  }
}

void Frontend::on_udp_writable() {
  while (!udp_out_.empty()) {
    PendingDatagram& pending = udp_out_.front();
    const ssize_t sent = ::sendto(
        udp_fd_, pending.wire.data(), pending.wire.size(), 0,
        reinterpret_cast<const sockaddr*>(pending.peer.data()),
        static_cast<socklen_t>(pending.peer.size()));
    if (sent < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    } else {
      count(&FrontendCounters::tx_bytes, "net.tx_bytes",
            static_cast<std::uint64_t>(sent));
    }
    udp_out_.pop_front();
    --pending_;
  }
  loop_->modify(udp_fd_, EPOLLIN);
  maybe_finish_drain();
}

void Frontend::on_accept() {
  for (;;) {
    const int fd = ::accept4(tcp_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;
    if (config_.tcp_sndbuf > 0)
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.tcp_sndbuf,
                   sizeof config_.tcp_sndbuf);
    count(&FrontendCounters::tcp_accepts, "net.tcp_accept");
    Connection conn;
    conn.fd = fd;
    conn.last_active_ms = EventLoop::now_ms();
    connections_.emplace(fd, std::move(conn));
    loop_->add(fd, EPOLLIN,
               [this, fd](std::uint32_t events) { on_connection(fd, events); });
  }
}

void Frontend::on_connection(int fd, std::uint32_t events) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  conn.last_active_ms = EventLoop::now_ms();
  if (events & (EPOLLHUP | EPOLLERR)) {
    close_connection(fd, /*reaped=*/false);
    return;
  }
  if (events & EPOLLOUT) {
    if (!flush_tcp(conn)) {
      close_connection(fd, /*reaped=*/false);
      return;
    }
  }
  if (events & EPOLLIN) {
    std::uint8_t buffer[kReadChunk];
    for (;;) {
      const ssize_t n = ::read(fd, buffer, sizeof buffer);
      if (n == 0) {  // peer closed
        close_connection(fd, /*reaped=*/false);
        return;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_connection(fd, /*reaped=*/false);
        return;
      }
      conn.in.insert(conn.in.end(), buffer, buffer + n);
    }
    parse_frames(conn);
    if (conn.fd < 0) {  // parse_frames closed it (malformed frame)
      connections_.erase(fd);
      return;
    }
  }
  maybe_finish_drain();
}

void Frontend::parse_frames(Connection& conn) {
  std::size_t offset = 0;
  while (conn.in.size() - offset >= 2) {
    const std::size_t length = (static_cast<std::size_t>(conn.in[offset]) << 8)
                               | conn.in[offset + 1];
    if (length == 0 || length > kMaxTcpFrame) {
      // A zero-length frame cannot hold a DNS header: the stream is not
      // speaking RFC 1035 §4.2.2 — drop the connection.
      count(&FrontendCounters::malformed, "net.malformed");
      loop_->remove(conn.fd);
      ::close(conn.fd);
      pending_ -= conn.queued_responses;
      conn.fd = -1;
      return;
    }
    if (conn.in.size() - offset - 2 < length) break;  // partial frame
    const std::span<const std::uint8_t> frame(conn.in.data() + offset + 2,
                                              length);
    offset += 2 + length;
    auto served = serve(frame, /*tcp=*/true);
    if (!served) continue;  // malformed frames keep the stream: framing held
    count(&FrontendCounters::responses, "net.responses");
    enqueue_tcp(conn, served->response.to_wire());
  }
  conn.in.erase(conn.in.begin(),
                conn.in.begin() + static_cast<std::ptrdiff_t>(offset));
}

void Frontend::enqueue_tcp(Connection& conn,
                           const std::vector<std::uint8_t>& wire) {
  if (wire.size() > kMaxTcpFrame) return;  // cannot be framed; drop
  conn.out.push_back(static_cast<std::uint8_t>(wire.size() >> 8));
  conn.out.push_back(static_cast<std::uint8_t>(wire.size()));
  conn.out.insert(conn.out.end(), wire.begin(), wire.end());
  ++conn.queued_responses;
  ++pending_;
  flush_tcp(conn);
}

bool Frontend::flush_tcp(Connection& conn) {
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_offset,
                              conn.out.size() - conn.out_offset);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn.want_write) {
          conn.want_write = true;
          loop_->modify(conn.fd, EPOLLIN | EPOLLOUT);
        }
        return true;
      }
      return false;  // connection broken
    }
    conn.out_offset += static_cast<std::size_t>(n);
    count(&FrontendCounters::tx_bytes, "net.tx_bytes",
          static_cast<std::uint64_t>(n));
  }
  conn.out.clear();
  conn.out_offset = 0;
  pending_ -= conn.queued_responses;
  conn.queued_responses = 0;
  if (conn.want_write) {
    conn.want_write = false;
    loop_->modify(conn.fd, EPOLLIN);
  }
  return true;
}

void Frontend::close_connection(int fd, bool reaped) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  pending_ -= it->second.queued_responses;
  loop_->remove(fd);
  ::close(fd);
  connections_.erase(it);
  if (reaped) count(&FrontendCounters::tcp_reaped, "net.tcp_reap");
}

void Frontend::maybe_finish_drain() {
  if (!draining_ || loop_ == nullptr) return;
  const bool flushed = udp_out_.empty() &&
                       std::all_of(connections_.begin(), connections_.end(),
                                   [](const auto& entry) {
                                     return entry.second.out.empty();
                                   });
  if (flushed || EventLoop::now_ms() >= drain_deadline_ms_) loop_->stop();
}

void Frontend::drain_tick() {
  maybe_finish_drain();
  // Re-check on a short timer so a stalled client cannot hold the loop
  // past the grace window even if no fd event ever fires again.
  if (draining_ && !loop_->stopped())
    loop_->add_timer(20, [this] { drain_tick(); });
}

void Frontend::drain_and_stop(std::int64_t grace_ms) {
  if (loop_ == nullptr) return;
  if (tcp_fd_ >= 0) {
    loop_->remove(tcp_fd_);
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  draining_ = true;
  drain_deadline_ms_ =
      EventLoop::now_ms() + std::max<std::int64_t>(grace_ms, 0);
  drain_tick();
}

}  // namespace zh::net
