// zh::net — single-threaded epoll event loop for the real-socket frontend.
//
// The simulated Internet is strictly single-threaded (one Network per
// worker, simnet/network.hpp), so the natural real-socket server shape is
// one edge-triggered epoll loop on the thread that owns the testbed:
// socket readiness and timer expiry both arrive as fd events, handlers
// dispatch synchronously into the simulation, and nothing needs a lock.
//
// Timers are timerfd-driven: the loop keeps a deadline-ordered set of
// pending timers and arms one CLOCK_MONOTONIC timerfd to the earliest
// deadline, so expirations wake epoll_wait exactly like socket traffic.
// stop() is the only cross-thread entry point (an eventfd wakeup), which
// is what lets tests drive a client from the main thread while the loop
// serves from a worker.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include <atomic>

namespace zh::net {

/// Ready-event callback; `events` is the raw epoll event mask.
using FdCallback = std::function<void(std::uint32_t events)>;
using TimerCallback = std::function<void()>;

class EventLoop {
 public:
  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// False when construction failed (epoll/timerfd/eventfd unavailable).
  bool valid() const noexcept { return epoll_fd_ >= 0; }

  /// Registers `fd` edge-triggered for `events` (EPOLLIN/EPOLLOUT mask;
  /// EPOLLET is added internally). The callback owns no fd lifetime — the
  /// caller closes fds after remove().
  bool add(int fd, std::uint32_t events, FdCallback callback);

  /// Changes the interest mask of a registered fd.
  bool modify(int fd, std::uint32_t events);

  /// Unregisters an fd (safe mid-dispatch: pending readiness for it in the
  /// current batch is discarded). Does not close the fd.
  void remove(int fd);

  /// Arms a one-shot timer `after_ms` from now; returns its id. Callbacks
  /// may re-arm themselves (periodic timers) or add/cancel other timers.
  std::uint64_t add_timer(std::int64_t after_ms, TimerCallback callback);
  void cancel_timer(std::uint64_t id);

  /// Milliseconds on the loop's CLOCK_MONOTONIC timebase.
  static std::int64_t now_ms() noexcept;

  /// Serves events until stop(). Re-entrant per-iteration: handlers may
  /// add/remove fds and timers freely.
  void run();

  /// Serves at most one epoll_wait round (≤ `timeout_ms` of blocking);
  /// returns the number of fd/timer callbacks invoked. For tests and
  /// drain loops.
  std::size_t poll(int timeout_ms);

  /// Thread-safe: makes run() return after the current iteration and
  /// wakes the loop if it is blocked in epoll_wait.
  void stop();

  bool stopped() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }

 private:
  struct Timer {
    std::uint64_t id = 0;
    TimerCallback callback;
  };

  void arm_timerfd();
  std::size_t fire_due_timers();

  int epoll_fd_ = -1;
  int timer_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  // shared_ptr so a callback that removes its own (or another) fd while a
  // readiness batch is being dispatched never frees a running callable.
  std::unordered_map<int, std::shared_ptr<FdCallback>> fds_;
  std::multimap<std::int64_t, Timer> timers_;             // deadline_ms → timer
  std::unordered_map<std::uint64_t, std::int64_t> timer_deadlines_;
  std::uint64_t next_timer_id_ = 1;
};

}  // namespace zh::net
