#include "testbed/internet.hpp"

#include <algorithm>
#include <cassert>

namespace zh::testbed {
namespace {

using dns::Name;
using dns::ResourceRecord;
using dns::RrType;
using simnet::IpAddress;
using zone::Zone;

constexpr std::uint32_t kExpiredDelta = 86400;  // expired zones: 1 day past

}  // namespace

Internet::Internet() {
  root_server_addresses_ = {IpAddress::v4(198, 41, 0, 4),
                            IpAddress::v6({0x2001, 0x503, 0xba3e, 0, 0, 0, 2,
                                           0x30})};
  shared_host_v4_ = IpAddress::v4(192, 0, 2, 2);
  shared_host_v6_ = IpAddress::v6({0x2001, 0xdb8, 0xcafe, 0, 0, 0, 0, 2});
}

void Internet::add_tld(const std::string& label, const TldConfig& config) {
  for (const auto& tld : tlds_)
    if (tld.label == label) return;  // idempotent
  tlds_.push_back(TldDecl{label, config});
}

void Internet::add_domain(DomainConfig config) {
  domains_.push_back(std::move(config));
}

std::size_t Internet::add_operator(const std::string& name) {
  OperatorHandle handle;
  handle.name = name;
  handle.address_v4 = IpAddress::from_index(false, next_address_index_);
  handle.address_v6 = IpAddress::from_index(true, next_address_index_);
  ++next_address_index_;

  add_tld("net", TldConfig{});
  const Name apex = Name::must_parse(name + ".net");
  handle.ns_names = {*apex.prepended("ns1"), *apex.prepended("ns2")};

  DomainConfig own;
  own.apex = apex;
  own.dnssec = true;
  own.nsec3 = {.iterations = 0, .salt = {}, .opt_out = false};
  own.host = handle.address_v4;
  own.ns_names = handle.ns_names;  // self-hosted
  // ns1/ns2 address records inside the operator's own zone must resolve to
  // the operator's server: glueless delegations depend on them.
  for (const auto& ns : handle.ns_names) {
    dns::ARdata a;
    std::copy_n(handle.address_v4.raw().begin(), 4, a.address.begin());
    own.extra_records.push_back(ResourceRecord::make(ns, RrType::kA, 3600, a));
  }
  add_domain(own);

  auto server = std::make_unique<server::AuthoritativeServer>(name);
  handle.server = server.get();
  servers_.push_back(std::move(server));
  operators_.push_back(handle);
  return operators_.size() - 1;
}

void Internet::add_lazy_delegation(LazyDelegation delegation) {
  lazy_.push_back(std::move(delegation));
}

std::shared_ptr<const Zone> Internet::materialise_zone(
    const DomainConfig& config, const IpAddress& host) {
  auto zone = std::make_shared<Zone>(config.apex);
  const Name apex = config.apex;

  std::vector<Name> ns_names = config.ns_names;
  if (ns_names.empty()) ns_names.push_back(*apex.prepended("ns1"));

  zone->add(dns::make_soa(apex, 3600, ns_names.front(), 2024031501));
  for (const auto& ns : ns_names)
    zone->add(dns::make_ns(apex, 3600, ns));
  // In-bailiwick name servers get address records pointing at the host, so
  // glueless referrals resolve back to the right server.
  for (const auto& ns : ns_names) {
    if (!ns.is_subdomain_of(apex) || host.is_v6()) continue;
    dns::ARdata a;
    std::copy_n(host.raw().begin(), 4, a.address.begin());
    zone->add(ResourceRecord::make(ns, RrType::kA, 3600, a));
  }

  if (config.standard_records) {
    zone->add(dns::make_a(apex, 300, 192, 0, 2, 10));
    zone->add(dns::make_a(*apex.prepended("www"), 300, 192, 0, 2, 11));
    // Wildcard branch: *.wc.<apex> (kept off the apex so that probes under
    // a sibling branch still yield NXDOMAIN — DESIGN.md §4).
    const auto wc = apex.prepended("wc");
    zone->add(dns::make_a(wc->wildcard_child(), 300, 192, 0, 2, 12));
  }
  for (const auto& rr : config.extra_records) zone->add(rr);

  if (config.dnssec) {
    zone::SignerConfig signer;
    signer.denial = config.denial;
    signer.nsec3 = config.nsec3;
    if (config.rrsig_expiration) signer.expiration = *config.rrsig_expiration;
    signer.nsec3_rrsig_expiration = config.nsec3_rrsig_expiration;
    zone::sign_zone(*zone, signer);
  }
  return zone;
}

void Internet::build() {
  assert(!built_);
  built_ = true;

  // --- Unsigned skeletons for root + TLDs ---
  auto root_zone = std::make_shared<Zone>(Name::root());
  const Name root_ns = Name::must_parse("a.root-servers");
  root_zone->add(dns::make_soa(Name::root(), 86400, root_ns, 2024031501));
  root_zone->add(dns::make_ns(Name::root(), 86400, root_ns));
  root_zone->add(dns::make_a(root_ns, 86400, 198, 41, 0, 4));

  struct TldBuild {
    TldDecl decl;
    Name apex;
    std::shared_ptr<Zone> zone;
    IpAddress address_v4;
    IpAddress address_v6;
  };
  std::vector<TldBuild> tld_builds;
  for (const auto& decl : tlds_) {
    TldBuild build;
    build.decl = decl;
    build.apex = Name::must_parse(decl.label);
    build.zone = std::make_shared<Zone>(build.apex);
    build.address_v4 = IpAddress::from_index(false, next_address_index_);
    build.address_v6 = IpAddress::from_index(true, next_address_index_);
    ++next_address_index_;
    const Name tld_ns = *build.apex.prepended("ns1");
    build.zone->add(dns::make_soa(build.apex, 86400, tld_ns, 2024031501));
    build.zone->add(dns::make_ns(build.apex, 86400, tld_ns));
    {
      dns::ARdata a;
      a.address = {10, 0, 0, 53};
      build.zone->add(ResourceRecord::make(tld_ns, RrType::kA, 86400, a));
    }
    tld_builds.push_back(std::move(build));
  }

  const auto tld_for = [&](const Name& name) -> TldBuild* {
    for (auto& tld : tld_builds)
      if (name.is_subdomain_of(tld.apex) && !name.equals(tld.apex))
        return &tld;
    return nullptr;
  };

  // --- Delegation wiring ---
  // Parents must exist before children: process eager domains shallow-first.
  std::stable_sort(domains_.begin(), domains_.end(),
                   [](const DomainConfig& a, const DomainConfig& b) {
                     return a.apex.label_count() < b.apex.label_count();
                   });

  // Unsigned skeletons for eager domains (children need to be delegated
  // from parents before signing).
  std::vector<std::shared_ptr<Zone>> domain_zones;
  for (std::size_t i = 0; i < domains_.size(); ++i) {
    const DomainConfig& config = domains_[i];
    const IpAddress host = config.host.value_or(shared_host_v4_);
    // Build unsigned first; sign after children are known.
    DomainConfig unsigned_config = config;
    unsigned_config.dnssec = false;
    domain_zones.push_back(
        std::const_pointer_cast<Zone>(materialise_zone(unsigned_config, host)));
  }

  // Finds the enclosing parent zone of `apex`: deepest eager domain, else
  // the TLD, else the root.
  const auto parent_zone_of = [&](const Name& apex) -> Zone* {
    Zone* best = root_zone.get();
    std::size_t best_labels = 0;
    for (std::size_t i = 0; i < domains_.size(); ++i) {
      const Name& candidate = domains_[i].apex;
      if (apex.is_subdomain_of(candidate) && !apex.equals(candidate) &&
          candidate.label_count() > best_labels) {
        best = domain_zones[i].get();
        best_labels = candidate.label_count();
      }
    }
    if (best_labels == 0) {
      if (TldBuild* tld = tld_for(apex)) return tld->zone.get();
    }
    return best;
  };

  const auto delegate = [&](Zone* parent, const Name& child_apex,
                            const std::vector<Name>& ns_names, bool dnssec,
                            const IpAddress& host,
                            std::optional<std::uint8_t> ds_algorithm = {}) {
    std::vector<Name> names = ns_names;
    if (names.empty()) names.push_back(*child_apex.prepended("ns1"));
    for (const auto& ns : names) {
      parent->add(dns::make_ns(child_apex, 86400, ns));
      if (ns.is_subdomain_of(child_apex) && !host.is_v6()) {
        // In-bailiwick: parent needs glue. Its address is the child's host.
        dns::ARdata a;
        std::copy_n(host.raw().begin(), 4, a.address.begin());
        parent->add(ResourceRecord::make(ns, RrType::kA, 86400, a));
      }
    }
    if (dnssec) {
      const auto ksk = zone::derive_dnskey(child_apex.to_string(), true);
      dns::DsRdata ds = dns::make_ds(child_apex, ksk);
      if (ds_algorithm) ds.algorithm = *ds_algorithm;
      parent->add(ResourceRecord::make(child_apex, RrType::kDs, 86400, ds));
    }
  };

  // Eager domains into their parents.
  for (std::size_t i = 0; i < domains_.size(); ++i) {
    const DomainConfig& config = domains_[i];
    Zone* parent = parent_zone_of(config.apex);
    delegate(parent, config.apex, config.ns_names, config.dnssec,
             config.host.value_or(shared_host_v4_),
             config.ds_algorithm_override);
  }
  // Lazy delegations into their parents (always TLDs in practice).
  for (const auto& lazy : lazy_) {
    Zone* parent = parent_zone_of(lazy.apex);
    const OperatorHandle& op = operators_.at(lazy.operator_index);
    delegate(parent, lazy.apex, op.ns_names, lazy.dnssec, op.address_v4);
  }
  // TLDs into the root.
  for (const auto& tld : tld_builds) {
    root_zone->add(dns::make_ns(tld.apex, 86400, *tld.apex.prepended("ns1")));
    {
      dns::ARdata a;
      std::copy_n(tld.address_v4.raw().begin(), 4, a.address.begin());
      root_zone->add(ResourceRecord::make(*tld.apex.prepended("ns1"),
                                          RrType::kA, 86400, a));
    }
    if (tld.decl.config.dnssec) {
      const auto ksk = zone::derive_dnskey(tld.apex.to_string(), true);
      root_zone->add(ResourceRecord::make(tld.apex, RrType::kDs, 86400,
                                          dns::make_ds(tld.apex, ksk)));
    }
  }

  // --- Sign bottom-up (order does not matter: DS is derived from seeds) ---
  for (std::size_t i = 0; i < domains_.size(); ++i) {
    const DomainConfig& config = domains_[i];
    if (!config.dnssec) continue;
    zone::SignerConfig signer;
    signer.denial = config.denial;
    signer.nsec3 = config.nsec3;
    if (config.rrsig_expiration) signer.expiration = *config.rrsig_expiration;
    signer.nsec3_rrsig_expiration = config.nsec3_rrsig_expiration;
    zone::sign_zone(*domain_zones[i], signer);
  }
  for (auto& tld : tld_builds) {
    if (!tld.decl.config.dnssec) continue;
    zone::SignerConfig signer;
    signer.denial = tld.decl.config.denial;
    signer.nsec3 = tld.decl.config.nsec3;
    zone::sign_zone(*tld.zone, signer);
  }
  {
    zone::SignerConfig signer;
    signer.denial = zone::DenialMode::kNsec;  // the real root uses NSEC
    const auto result = zone::sign_zone(*root_zone, signer);
    trust_anchor_.root_ds = result.ds;
  }

  // --- Hosting ---
  auto root_server = std::make_unique<server::AuthoritativeServer>("root");
  root_server->add_zone(root_zone);
  built_zones_[Name::root()] = root_zone;
  for (const auto& addr : root_server_addresses_) {
    server::AuthoritativeServer* srv = root_server.get();
    network_.attach(addr, [srv](const dns::Message& query,
                                const IpAddress& source) {
      return std::optional<dns::Message>(srv->handle(query, source));
    });
  }
  servers_.push_back(std::move(root_server));

  for (auto& tld : tld_builds) {
    auto srv = std::make_unique<server::AuthoritativeServer>("tld-" +
                                                             tld.decl.label);
    srv->add_zone(tld.zone);
    built_zones_[tld.apex] = tld.zone;
    server::AuthoritativeServer* raw = srv.get();
    const auto handler = [raw](const dns::Message& query,
                               const IpAddress& source) {
      return std::optional<dns::Message>(raw->handle(query, source));
    };
    network_.attach(tld.address_v4, handler);
    network_.attach(tld.address_v6, handler);
    servers_.push_back(std::move(srv));
  }

  // Shared hosting server + per-operator servers.
  auto shared = std::make_unique<server::AuthoritativeServer>("shared-host");
  server::AuthoritativeServer* shared_raw = shared.get();
  servers_.push_back(std::move(shared));

  std::unordered_map<IpAddress, server::AuthoritativeServer*,
                     simnet::IpAddressHash>
      by_address;
  by_address[shared_host_v4_] = shared_raw;
  by_address[shared_host_v6_] = shared_raw;
  for (auto& op : operators_) {
    by_address[op.address_v4] = op.server;
    by_address[op.address_v6] = op.server;
  }

  for (std::size_t i = 0; i < domains_.size(); ++i) {
    const IpAddress host = domains_[i].host.value_or(shared_host_v4_);
    auto it = by_address.find(host);
    if (it == by_address.end()) {
      // A dedicated hosting server the caller addressed by IP only.
      auto srv = std::make_unique<server::AuthoritativeServer>(
          "host-" + host.to_string());
      it = by_address.emplace(host, srv.get()).first;
      servers_.push_back(std::move(srv));
    }
    it->second->add_zone(domain_zones[i]);
    built_zones_[domains_[i].apex] = domain_zones[i];
  }

  for (const auto& [addr, srv] : by_address) {
    server::AuthoritativeServer* raw = srv;
    network_.attach(addr, [raw](const dns::Message& query,
                                const IpAddress& source) {
      return std::optional<dns::Message>(raw->handle(query, source));
    });
  }
  // The shared host answers on v6 via the same node handler already.

  // Every authoritative server reports into the network's tracer (zone-LRU
  // metrics + materialisation spans).
  for (const auto& srv : servers_) srv->set_tracer(&network_.tracer());

  // Operator PoPs with their own queue profile (set before build()).
  for (const auto& op : operators_) {
    if (!op.queue) continue;
    network_.set_queue(op.address_v4, *op.queue);
    network_.set_queue(op.address_v6, *op.queue);
  }
}

void Internet::set_operator_queue(std::size_t index,
                                  simtime::QueueModel model) {
  OperatorHandle& op = operators_.at(index);
  op.queue = model;
  if (built_) {
    network_.set_queue(op.address_v4, model);
    network_.set_queue(op.address_v6, model);
  }
}

std::shared_ptr<const Zone> Internet::zone(const Name& apex) const {
  const auto it = built_zones_.find(apex);
  return it == built_zones_.end() ? nullptr : it->second;
}

std::unique_ptr<resolver::RecursiveResolver> Internet::make_resolver(
    const resolver::ResolverProfile& profile, const IpAddress& address) {
  resolver::RecursiveResolver::Config config;
  config.address = address;
  config.profile = profile;
  config.trust_anchor = trust_anchor_;
  auto r = std::make_unique<resolver::RecursiveResolver>(
      network_, std::move(config), root_server_addresses_);
  r->attach();
  if (profile.queue) network_.set_queue(address, *profile.queue);
  return r;
}

std::vector<ProbeZone> probe_zone_specs() {
  std::vector<ProbeZone> specs;
  const Name parent = Name::must_parse("rfc9276-in-the-wild.com");
  const auto add = [&](std::string label, std::uint16_t iterations,
                       bool expired, bool nsec3_expired) {
    ProbeZone spec;
    spec.label = label;
    spec.apex = *parent.prepended(label);
    spec.iterations = iterations;
    spec.expired = expired;
    spec.nsec3_expired = nsec3_expired;
    specs.push_back(std::move(spec));
  };

  add("valid", 0, false, false);
  add("expired", 0, true, false);
  for (std::uint16_t n = 1; n <= 25; ++n)
    add("it-" + std::to_string(n), n, false, false);
  for (std::uint16_t n = 50; n <= 500; n = static_cast<std::uint16_t>(n + 25))
    add("it-" + std::to_string(n), n, false, false);
  for (const int n : {51, 101, 151})
    add("it-" + std::to_string(n), static_cast<std::uint16_t>(n), false,
        false);
  add("it-2501-expired", 2501, false, true);
  return specs;
}

std::vector<ProbeZone> add_probe_infrastructure(Internet& internet) {
  internet.add_tld("com", TldConfig{});

  DomainConfig parent;
  parent.apex = Name::must_parse("rfc9276-in-the-wild.com");
  parent.nsec3 = {.iterations = 0, .salt = {}, .opt_out = false};
  internet.add_domain(parent);

  // Subzones live on their own server so the delegation from the parent is
  // exercised — a resolver must descend the chain of trust into each it-N
  // zone exactly as it did on the real rfc9276-in-the-wild.com.
  const IpAddress probe_host = IpAddress::v4(192, 0, 2, 3);

  const auto specs = probe_zone_specs();
  for (const auto& spec : specs) {
    DomainConfig config;
    config.apex = spec.apex;
    config.host = probe_host;
    config.nsec3 = {.iterations = spec.iterations, .salt = {},
                    .opt_out = false};
    if (spec.expired)
      config.rrsig_expiration = zone::kSimNow - kExpiredDelta;
    if (spec.nsec3_expired)
      config.nsec3_rrsig_expiration = zone::kSimNow - kExpiredDelta;
    internet.add_domain(config);
  }
  return specs;
}

}  // namespace zh::testbed
