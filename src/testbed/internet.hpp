// Assembly of the simulated Internet: root zone, TLDs, hosting operators,
// registered-domain zones (eager or lazily materialised), and the paper's
// rfc9276-in-the-wild.com probe infrastructure (§4.2).
//
// Usage: declare TLDs / operators / domains, call build(), then attach
// resolvers and run measurements. Everything is deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "resolver/resolver.hpp"
#include "server/auth_server.hpp"
#include "simnet/network.hpp"
#include "zone/signer.hpp"
#include "zone/zone.hpp"

namespace zh::testbed {

/// Declarative TLD configuration.
struct TldConfig {
  zone::DenialMode denial = zone::DenialMode::kNsec3;
  zone::Nsec3Params nsec3 = {.iterations = 0, .salt = {}, .opt_out = true};
  bool dnssec = true;
};

/// Declarative registered-domain (or deeper) zone configuration.
struct DomainConfig {
  dns::Name apex;
  zone::DenialMode denial = zone::DenialMode::kNsec3;
  zone::Nsec3Params nsec3;
  bool dnssec = true;

  /// Adds `www` + apex A records and a `*.wc` wildcard A record.
  bool standard_records = true;

  /// Extra records beyond the standard set.
  std::vector<dns::ResourceRecord> extra_records;

  /// NS names for the delegation; empty → ns1.<apex> with glue.
  std::vector<dns::Name> ns_names;

  /// Signature validity overrides (the `expired` / `it-2501-expired` zones).
  std::optional<std::uint32_t> rrsig_expiration;
  std::optional<std::uint32_t> nsec3_rrsig_expiration;

  /// Overrides the algorithm number in the parent-side DS record — models a
  /// zone signed with an algorithm the resolver does not implement
  /// (RFC 4035 §5.2: such zones are treated as insecure, not bogus).
  std::optional<std::uint8_t> ds_algorithm_override;

  /// Server hosting this zone; unset → the shared hosting server.
  std::optional<simnet::IpAddress> host;
};

/// A hosting operator (Table 2 row): an authoritative server with its own
/// name-server names, capable of lazy zone materialisation.
struct OperatorHandle {
  std::string name;
  simnet::IpAddress address_v4;
  simnet::IpAddress address_v6;
  std::vector<dns::Name> ns_names;
  server::AuthoritativeServer* server = nullptr;  // owned by Internet
  /// Service-queue profile of this operator's PoP (both addresses). Unset →
  /// the network default; resolver profiles carry the analogous override.
  std::optional<simtime::QueueModel> queue;
};

/// Lazily-hosted delegation: appears in its TLD, materialises on query.
struct LazyDelegation {
  dns::Name apex;
  bool dnssec = true;
  std::size_t operator_index = 0;  // into Internet's operator list
};

class Internet {
 public:
  Internet();

  simnet::Network& network() noexcept { return network_; }
  const std::vector<simnet::IpAddress>& root_servers() const noexcept {
    return root_server_addresses_;
  }
  resolver::TrustAnchor trust_anchor() const { return trust_anchor_; }

  /// Declares a TLD (before build()).
  void add_tld(const std::string& label, const TldConfig& config);

  /// Declares an eagerly built zone (before build()).
  void add_domain(DomainConfig config);

  /// Creates a hosting operator; its lazy provider may be installed on the
  /// returned server. Returns the operator index.
  std::size_t add_operator(const std::string& name);
  OperatorHandle& hosting_operator(std::size_t index) {
    return operators_[index];
  }
  std::size_t operator_count() const noexcept { return operators_.size(); }

  /// Declares a lazily-hosted delegation (before build()).
  void add_lazy_delegation(LazyDelegation delegation);

  /// Gives one operator's PoP its own service-queue profile (see
  /// simtime/queue.hpp). Usable before build() — applied during build — or
  /// after, taking effect immediately; this is the authoritative-side
  /// counterpart of ResolverProfile::queue.
  void set_operator_queue(std::size_t index, simtime::QueueModel model);

  /// Builds and signs everything bottom-up and attaches all servers.
  void build();

  /// Access to a built eager zone (nullptr before build / unknown apex).
  std::shared_ptr<const zone::Zone> zone(const dns::Name& apex) const;

  /// Creates (and attaches) a resolver with the given profile.
  std::unique_ptr<resolver::RecursiveResolver> make_resolver(
      const resolver::ResolverProfile& profile,
      const simnet::IpAddress& address);

  /// The shared hosting server for eager domains.
  const simnet::IpAddress& shared_host_v4() const noexcept {
    return shared_host_v4_;
  }

  /// Builds a ready-to-serve signed zone from a DomainConfig — also used by
  /// lazy providers so lazily materialised zones are identical to eager
  /// ones. `host` decides which address the default ns glue points at.
  static std::shared_ptr<const zone::Zone> materialise_zone(
      const DomainConfig& config, const simnet::IpAddress& host);

 private:
  struct TldDecl {
    std::string label;
    TldConfig config;
  };

  simnet::Network network_;
  std::vector<simnet::IpAddress> root_server_addresses_;
  resolver::TrustAnchor trust_anchor_;

  std::vector<TldDecl> tlds_;
  std::vector<DomainConfig> domains_;
  std::vector<OperatorHandle> operators_;
  std::vector<std::unique_ptr<server::AuthoritativeServer>> servers_;
  std::vector<LazyDelegation> lazy_;

  std::unordered_map<dns::Name, std::shared_ptr<const zone::Zone>,
                     dns::NameHash>
      built_zones_;

  simnet::IpAddress shared_host_v4_;
  simnet::IpAddress shared_host_v6_;
  bool built_ = false;
  std::uint32_t next_address_index_ = 100;
};

// --- Probe infrastructure (§4.2) ---

/// One of the 50 probe subzones under rfc9276-in-the-wild.com.
struct ProbeZone {
  std::string label;            // "valid", "expired", "it-N", ...
  dns::Name apex;
  std::uint16_t iterations = 0;
  bool expired = false;         // all signatures expired
  bool nsec3_expired = false;   // only NSEC3 signatures expired (Item 7 probe)
};

/// The paper's probe set: valid, expired, it-1..it-25, it-50..it-500 step 25,
/// it-51, it-101, it-151 (49 zones) plus it-2501-expired.
std::vector<ProbeZone> probe_zone_specs();

/// Declares com, rfc9276-in-the-wild.com and all probe subzones on an
/// Internet under construction. Call before build().
std::vector<ProbeZone> add_probe_infrastructure(Internet& internet);

}  // namespace zh::testbed
