#include "simtime/queue.hpp"

#include <algorithm>

namespace zh::simtime {

ServiceQueue::ServiceQueue(const QueueModel& model)
    : model_(model),
      busy_until_(model.active() ? model.workers : 1, Duration{}) {}

void ServiceQueue::set_tracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer != nullptr) {
    admitted_metric_ = tracer->metrics().counter("queue.admitted");
    shed_metric_ = tracer->metrics().counter("queue.shed");
  } else {
    admitted_metric_ = nullptr;
    shed_metric_ = nullptr;
  }
}

QueueAdmission ServiceQueue::admit(Duration arrival) {
  QueueAdmission admission;

  // Earliest-free worker slot (FIFO: every queued request ahead of us will
  // occupy exactly the slots that free up before ours).
  const auto slot_it = std::min_element(busy_until_.begin(), busy_until_.end());
  const Duration free_at = *slot_it;
  const Duration start = std::max(arrival, free_at);

  if (start > arrival) {
    // We would wait — count the admissions already waiting at this arrival
    // (their service starts after it) to enforce the backlog bound.
    std::size_t waiting = 0;
    for (const Duration s : starts_) {
      if (s > arrival) ++waiting;
    }
    if (waiting >= model_.backlog) {
      ++counters_.dropped;
      if (shed_metric_ != nullptr) ++*shed_metric_;
      if (tracer_ != nullptr && tracer_->enabled()) {
        trace::Event event;
        event.phase = trace::Event::Phase::kInstant;
        event.category = "queue";
        event.name = "shed";
        event.ts_ns = arrival.nanos();
        tracer_->emit(std::move(event));
      }
      return admission;  // shed
    }
    ++counters_.delayed;
    counters_.wait_ns +=
        static_cast<std::uint64_t>((start - arrival).nanos());
    if (waiting + 1 > counters_.max_backlog)
      counters_.max_backlog = waiting + 1;
  }

  ++counters_.admitted;
  starts_.push_back(start);
  admission.admitted = true;
  admission.wait = start - arrival;
  admission.start = start;
  admission.slot = static_cast<std::size_t>(slot_it - busy_until_.begin());
  // Claim the slot from the service start; complete() extends the claim to
  // the true completion once the handler's service time is known.
  *slot_it = start;
  if (tracer_ != nullptr) {
    if (admitted_metric_ != nullptr) ++*admitted_metric_;
    tracer_->add_stage(trace::Stage::kQueueWait, admission.wait.nanos());
    if (tracer_->enabled()) {
      // The enqueue span covers the backlog wait: ts = arrival, dur = wait
      // (pre-stamped — "now" has already advanced past the arrival).
      trace::Event event;
      event.phase = trace::Event::Phase::kSpan;
      event.category = "queue";
      event.name = "enqueue";
      event.ts_ns = arrival.nanos();
      event.dur_ns = admission.wait.nanos();
      tracer_->emit(std::move(event));
    }
  }
  return admission;
}

void ServiceQueue::complete(const QueueAdmission& admission,
                            Duration completion) {
  if (!admission.admitted || admission.slot >= busy_until_.size()) return;
  if (completion < admission.start) completion = admission.start;
  busy_until_[admission.slot] = completion;
  counters_.busy_ns +=
      static_cast<std::uint64_t>((completion - admission.start).nanos());
  if (tracer_ != nullptr && tracer_->enabled()) {
    // Dequeue = service end: the slot frees here.
    trace::Event event;
    event.phase = trace::Event::Phase::kInstant;
    event.category = "queue";
    event.name = "dequeue";
    event.ts_ns = completion.nanos();
    tracer_->emit(std::move(event));
  }
}

}  // namespace zh::simtime
