// Deterministic virtual time for the simulated Internet.
//
// The paper's measurement pipeline is time-shaped end to end: zdns enforces
// per-query timeouts with retransmission, §5.2 observes resolvers that stop
// answering (a client-side *timeout*, not an RCODE) above their iteration
// limit, and CVE-2023-50868's hash cost reaches clients as latency. This
// layer supplies the primitives: a discrete-event clock owned by each
// simnet::Network, a Duration value type, a service-time model converting
// CostMeter SHA-1 block deltas into processing delay, and the zdns-style
// RetryPolicy (attempts x exponential per-attempt timeouts, UDP→TCP on
// truncation).
//
// Determinism contract: virtual time never reads wall clocks or shared RNG
// state. The clock advances only on network deliveries (RTT sample +
// service time) and on client-side timeout waits, and every latency sample
// is a pure function of (seed, link, flow, sequence) — see latency.hpp —
// so a fixed configuration replays bit-identically.
#pragma once

#include <cstdint>
#include <string_view>

namespace zh::simtime {

/// splitmix64 output function — the same mixer the workload generator and
/// shard_seed use, so every derived stream in the system shares one idiom.
inline constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) from 64 mixed bits (53-bit mantissa fill).
inline constexpr double unit_double(std::uint64_t bits) noexcept {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// FNV-1a over a string — the flow-key digest campaigns use to label
/// traffic by item identity (apex, probe token) instead of scan order.
/// Process-independent, unlike std::hash.
inline constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  return h;
}

/// A span of virtual time. Signed nanoseconds in 64 bits (~292 years),
/// integer-exact so merged aggregates cannot drift.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration from_ns(std::int64_t ns) noexcept {
    Duration d;
    d.ns_ = ns;
    return d;
  }
  static constexpr Duration from_us(std::int64_t us) noexcept {
    return from_ns(us * 1000);
  }
  static constexpr Duration from_ms(std::int64_t ms) noexcept {
    return from_ns(ms * 1000000);
  }
  static constexpr Duration from_seconds(std::int64_t s) noexcept {
    return from_ns(s * 1000000000);
  }

  constexpr std::int64_t nanos() const noexcept { return ns_; }
  constexpr std::int64_t micros() const noexcept { return ns_ / 1000; }
  constexpr std::int64_t millis() const noexcept { return ns_ / 1000000; }
  constexpr bool zero() const noexcept { return ns_ == 0; }

  constexpr Duration operator+(Duration other) const noexcept {
    return from_ns(ns_ + other.ns_);
  }
  constexpr Duration operator-(Duration other) const noexcept {
    return from_ns(ns_ - other.ns_);
  }
  constexpr Duration operator*(std::int64_t factor) const noexcept {
    return from_ns(ns_ * factor);
  }
  constexpr Duration& operator+=(Duration other) noexcept {
    ns_ += other.ns_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const noexcept = default;

 private:
  std::int64_t ns_ = 0;
};

/// The discrete-event clock. One per simnet::Network (same threading
/// contract): time only moves when something explicitly advances it.
class Clock {
 public:
  constexpr Duration now() const noexcept { return now_; }
  constexpr void advance(Duration by) noexcept { now_ += by; }
  constexpr void reset() noexcept { now_ = Duration{}; }

  /// Moves the clock to an absolute instant — including backwards. Only
  /// for drivers that multiplex several logical client timelines over one
  /// network (simnet::concurrent_exchange rewinds to the batch epoch
  /// between clients); everything else should advance().
  constexpr void set(Duration to) noexcept { now_ = to; }

 private:
  Duration now_;
};

/// Converts a receiving handler's CostMeter SHA-1 block delta into virtual
/// processing delay, so a 500-iteration NSEC3 proof is visibly *slower*,
/// not just costlier. Zero per-block cost (the default) disables the model.
struct ServiceModel {
  Duration per_sha1_block;

  constexpr bool active() const noexcept { return per_sha1_block.nanos() > 0; }
  constexpr Duration cost(std::uint64_t sha1_blocks) const noexcept {
    if (!active()) return {};
    return Duration::from_ns(per_sha1_block.nanos() *
                             static_cast<std::int64_t>(sha1_blocks));
  }
};

/// zdns-style client retransmission policy: N attempts with exponentially
/// backed-off per-attempt timeouts, falling back to TCP when a UDP answer
/// comes back truncated. The defaults mirror zdns (3 attempts, 2 s, x2).
struct RetryPolicy {
  /// Total wire attempts over UDP (>= 1; 0 is treated as 1).
  unsigned attempts = 3;
  /// First attempt's timeout; attempt k waits timeout * multiplier^k.
  Duration timeout = Duration::from_ms(2000);
  unsigned backoff_multiplier = 2;
  /// Backoff ceiling, so long retry ladders stay bounded.
  Duration max_timeout = Duration::from_seconds(16);
  /// Retry a truncated UDP response over TCP (RFC 7766).
  bool tcp_on_truncation = true;

  constexpr Duration attempt_timeout(unsigned attempt) const noexcept {
    Duration t = timeout;
    for (unsigned i = 0; i < attempt; ++i) {
      t = Duration::from_ns(t.nanos() *
                            static_cast<std::int64_t>(backoff_multiplier));
      if (t >= max_timeout) return max_timeout;
    }
    return t < max_timeout ? t : max_timeout;
  }
};

}  // namespace zh::simtime
