// Seeded per-link latency model: base RTT + uniform jitter, with optional
// per-address / per-prefix overrides (longest prefix on the destination
// wins). Samples are a pure function of (seed, destination, flow, sequence)
// — the shard_seed-style splitmix idiom — so identical configurations
// replay bit-identically and, because flow/sequence are item-local rather
// than scan-order-local (and the client address is deliberately not part of
// the key), samples are invariant under campaign sharding.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/address.hpp"
#include "simtime/simtime.hpp"

namespace zh::simtime {

class LatencyModel {
 public:
  /// Inactive: every sample is zero (virtual time stands still).
  LatencyModel() = default;

  LatencyModel(Duration base_rtt, Duration jitter, std::uint64_t seed)
      : base_(base_rtt), jitter_(jitter), seed_(seed) {}

  /// Overrides the default for destinations under `prefix`/`prefix_bits`.
  /// More-specific rules win; among equal lengths the last added wins.
  void add_rule(const simnet::IpAddress& prefix, unsigned prefix_bits,
                Duration base_rtt, Duration jitter);

  /// Convenience: a host route (/32 or /128) for one destination address.
  void add_address(const simnet::IpAddress& address, Duration base_rtt,
                   Duration jitter) {
    add_rule(address, address.is_v6() ? 128u : 32u, base_rtt, jitter);
  }

  bool active() const noexcept {
    return base_.nanos() > 0 || jitter_.nanos() > 0 || !rules_.empty();
  }

  /// RTT for the `seq`-th transmission of `flow` towards `to`. `from` is
  /// accepted for call-site symmetry but never keys the draw: a worker's
  /// private source address must not change the sample.
  Duration sample(const simnet::IpAddress& from, const simnet::IpAddress& to,
                  std::uint64_t flow, std::uint64_t seq) const;

 private:
  struct Rule {
    simnet::IpAddress prefix;
    unsigned bits = 0;
    Duration base;
    Duration jitter;
  };

  Duration base_;
  Duration jitter_;
  std::uint64_t seed_ = 0;
  std::vector<Rule> rules_;
};

}  // namespace zh::simtime
