#include "simtime/timer_wheel.hpp"

#include <algorithm>

namespace zh::simtime {
namespace {

/// Ticks one level spans: 64^level.
constexpr std::int64_t level_span(std::size_t level) noexcept {
  std::int64_t span = 1;
  for (std::size_t i = 0; i < level; ++i) span *= TimerWheel::kSlots;
  return span;
}

}  // namespace

TimerWheel::TimerWheel(Duration tick)
    : tick_ns_(tick.nanos() > 0 ? tick.nanos() : 1) {
  levels_.resize(kLevels);
  for (auto& level : levels_) level.resize(kSlots);
}

void TimerWheel::place(Entry entry) {
  // Already-due deadlines clamp to the current tick, so they land in the
  // slot the very next advance() visits instead of a slot the wheel
  // already passed (which would not come around again for a full lap).
  const std::int64_t deadline_tick =
      std::max(tick_of(entry.deadline_ns), current_tick_);
  const std::int64_t delta = deadline_tick - current_tick_;
  std::size_t level = 0;
  std::int64_t span = 1;
  while (level + 1 < kLevels && delta >= span * static_cast<std::int64_t>(
                                            kSlots)) {
    span *= static_cast<std::int64_t>(kSlots);
    ++level;
  }
  const std::size_t slot =
      static_cast<std::size_t>((deadline_tick / span) %
                               static_cast<std::int64_t>(kSlots));
  levels_[level][slot].push_back(entry);
}

TimerWheel::TimerId TimerWheel::arm(Duration deadline, std::uint64_t payload) {
  const TimerId id = next_id_++;
  Entry entry;
  entry.id = id;
  entry.payload = payload;
  entry.deadline_ns = deadline.nanos();
  live_.emplace(id, entry.deadline_ns);
  place(entry);
  return id;
}

bool TimerWheel::cancel(TimerId id) { return live_.erase(id) > 0; }

void TimerWheel::cascade(std::size_t level, std::size_t slot) {
  Slot entries = std::move(levels_[level][slot]);
  levels_[level][slot].clear();
  for (Entry& entry : entries) {
    if (live_.count(entry.id) == 0) continue;  // lazily dropped cancel
    place(entry);
  }
}

std::vector<TimerWheel::Expiry> TimerWheel::advance(Duration now) {
  std::vector<Expiry> fired;
  const std::int64_t now_ns = now.nanos();
  if (now_ns > now_.nanos()) now_ = now;
  const std::int64_t target_tick = tick_of(now_.nanos());

  const auto drain_slot = [&](Slot& slot_entries, bool partial) {
    if (slot_entries.empty()) return;
    Slot keep;
    for (Entry& entry : slot_entries) {
      const auto it = live_.find(entry.id);
      if (it == live_.end()) continue;  // cancelled: drop lazily
      if (!partial || entry.deadline_ns <= now_.nanos()) {
        fired.push_back(Expiry{entry.id, entry.payload,
                               Duration::from_ns(entry.deadline_ns)});
        live_.erase(it);
      } else {
        keep.push_back(entry);
      }
    }
    slot_entries = std::move(keep);
  };

  while (current_tick_ < target_tick) {
    // Fire the departing tick's level-0 slot completely: every live entry
    // there has deadline within this tick, which now lies behind `now`.
    drain_slot(
        levels_[0][static_cast<std::size_t>(
            current_tick_ % static_cast<std::int64_t>(kSlots))],
        /*partial=*/false);
    ++current_tick_;
    // On wheel wrap, pull the next higher-level slot down one level — the
    // classic cascade. A wrap at level L coincides with wraps at every
    // level below it, so walk upward while the modulus stays zero.
    std::int64_t span = static_cast<std::int64_t>(kSlots);
    for (std::size_t level = 1;
         level < kLevels && current_tick_ % span == 0; ++level) {
      const std::size_t slot = static_cast<std::size_t>(
          (current_tick_ / span) % static_cast<std::int64_t>(kSlots));
      cascade(level, slot);
      span *= static_cast<std::int64_t>(kSlots);
    }
  }
  // The tick containing `now` itself: fire only what is already due.
  drain_slot(levels_[0][static_cast<std::size_t>(
                 current_tick_ % static_cast<std::int64_t>(kSlots))],
             /*partial=*/true);
  // Entries armed in the past (deadline <= wheel time at arm) may sit in
  // higher levels only if armed before a big jump; the loop above cascaded
  // every crossed window, so level 0 is authoritative here.

  std::sort(fired.begin(), fired.end(), [](const Expiry& a, const Expiry& b) {
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    return a.id < b.id;
  });
  return fired;
}

std::optional<Duration> TimerWheel::next_deadline() const {
  if (live_.empty()) return std::nullopt;
  std::optional<std::int64_t> best;
  for (std::size_t level = 0; level < kLevels; ++level) {
    const std::int64_t span = level_span(level);
    const std::int64_t pos = current_tick_ / span;
    // Scan this level's slots in time order starting at the current
    // position; the first slot holding a live entry bounds this level's
    // candidate (later slots of the same level are strictly later windows).
    for (std::size_t step = 0; step < kSlots; ++step) {
      const std::size_t slot = static_cast<std::size_t>(
          (pos + static_cast<std::int64_t>(step)) %
          static_cast<std::int64_t>(kSlots));
      const Slot& entries = levels_[level][slot];
      std::optional<std::int64_t> slot_min;
      for (const Entry& entry : entries) {
        if (live_.count(entry.id) == 0) continue;
        if (!slot_min || entry.deadline_ns < *slot_min)
          slot_min = entry.deadline_ns;
      }
      if (slot_min) {
        if (!best || *slot_min < *best) best = *slot_min;
        break;  // this level cannot do better in a later window
      }
    }
  }
  if (!best) return std::nullopt;
  return Duration::from_ns(*best);
}

}  // namespace zh::simtime
