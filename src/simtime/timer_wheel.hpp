// Hierarchical timer wheel over virtual time.
//
// The async scan engine (scanner/async_engine.hpp) keeps thousands of
// per-query state machines in flight at once; each one needs a wake-up —
// a retransmission timeout, or the virtual instant its response completes.
// A sorted map of deadlines would cost O(log n) per arm/cancel with n in
// the thousands; the classic alternative (Varghese & Lauck, and the Linux
// kernel's timer subsystem) is a hierarchy of fixed-size wheels: O(1)
// arm/cancel, and expiry processing that touches only the slots virtual
// time actually crosses.
//
// Layout: kLevels wheels of kSlots slots each. Level 0 resolves single
// ticks (default 1 ms of virtual time); each higher level covers kSlots
// times the span of the one below. A timer lands in the lowest level whose
// span still contains its delay, and cascades down one level each time the
// wheel beneath it wraps — until it sits in a level-0 slot and fires.
//
// Determinism contract: expiries are delivered ordered by (deadline,
// arm sequence) — two timers armed for the same instant fire in the order
// they were armed, on every platform, regardless of how they were
// distributed across levels. Cancellation is lazy (an id set), so cancel()
// is O(1) and never perturbs slot order. Virtual time only moves through
// advance(), which the caller drives from its simtime::Clock; the wheel
// itself never reads a clock, so it inherits the simulation's replay
// guarantees.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "simtime/simtime.hpp"

namespace zh::simtime {

class TimerWheel {
 public:
  /// Opaque timer handle; also the deterministic same-deadline tiebreaker
  /// (ids increase in arm order).
  using TimerId = std::uint64_t;

  struct Expiry {
    TimerId id = 0;
    std::uint64_t payload = 0;
    /// The exact armed deadline (not rounded to tick granularity).
    Duration deadline;
  };

  static constexpr std::size_t kSlots = 64;
  static constexpr std::size_t kLevels = 6;  // 64^6 ticks ≈ 2177 years @1ms

  explicit TimerWheel(Duration tick = Duration::from_ms(1));

  /// Arms a timer for the absolute virtual instant `deadline` (instants at
  /// or before the current wheel time fire on the next advance()). The
  /// payload is returned verbatim with the expiry.
  TimerId arm(Duration deadline, std::uint64_t payload);

  /// Cancels a live timer. False when the id already fired or was
  /// cancelled. O(1): the slot entry is dropped lazily when visited.
  bool cancel(TimerId id);

  /// Moves the wheel to `now` and returns every live timer with
  /// deadline <= now, ordered by (deadline, arm sequence).
  std::vector<Expiry> advance(Duration now);

  /// Earliest live deadline, or nullopt when nothing is armed. Exact (the
  /// armed instant, not its tick).
  std::optional<Duration> next_deadline() const;

  std::size_t armed() const noexcept { return live_.size(); }
  bool empty() const noexcept { return live_.empty(); }
  Duration now() const noexcept { return now_; }

 private:
  struct Entry {
    TimerId id = 0;
    std::uint64_t payload = 0;
    std::int64_t deadline_ns = 0;
  };
  using Slot = std::vector<Entry>;

  std::int64_t tick_of(std::int64_t ns) const noexcept {
    // floor division for non-negative instants (virtual time starts at 0;
    // negative instants clamp to tick 0 so they still fire immediately).
    return ns <= 0 ? 0 : ns / tick_ns_;
  }

  /// Files an entry into the lowest level whose span covers its delay from
  /// the current tick. Called on arm and on cascade.
  void place(Entry entry);

  /// Re-files every entry of one higher-level slot after the level below
  /// wrapped past it.
  void cascade(std::size_t level, std::size_t slot);

  std::int64_t tick_ns_;
  std::int64_t current_tick_ = 0;
  Duration now_;
  TimerId next_id_ = 1;
  /// Live timers: id → exact deadline. Cancel erases here; slot entries of
  /// dead ids are skipped (and dropped) when their slot is visited.
  std::unordered_map<TimerId, std::int64_t> live_;
  std::vector<std::vector<Slot>> levels_;  // [level][slot]
};

}  // namespace zh::simtime
