// Authoritative-side (and resolver-side) service queueing: the missing half
// of the CVE-2023-50868 DoS story.
//
// The service model alone charges each probe its own hash cost in
// isolation; a real authoritative server or validating resolver has a
// bounded worker pool, so concurrent requests *contend* — waiting time
// grows with the backlog, and a saturated server sheds load (drops the
// query or answers SERVFAIL). That contention is what turns high NSEC3
// iteration counts into a CPU-amplification DoS vector (§2.3, §6 of the
// paper; KeyTrap-adjacent): the attacker's cheap queries occupy expensive
// service slots and every bystander behind them pays the queueing delay.
//
// QueueModel is the configuration (N worker slots, FIFO backlog depth
// bound, shed policy); ServiceQueue is the per-destination discrete-event
// state a simnet::Network keeps while the model is active. Service time
// itself still comes from the existing ServiceModel (SHA-1 block deltas):
// the queue only decides *when* service starts and what happens when no
// slot or backlog position is free.
//
// Determinism contract (see docs/DETERMINISM.md): admissions are a pure
// function of the request's virtual arrival time and the queue's prior
// admissions within the current epoch. Queues are per-Network (strictly
// single-threaded), and Network::set_flow() starts a fresh queue epoch, so
// contention is scoped to one campaign item — per-item observations never
// depend on worker interleaving and sharded campaigns stay bit-identical
// for any --jobs value. Deliberately concurrent clients (the DoS benches)
// join one epoch via simnet::concurrent_exchange.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simtime/simtime.hpp"
#include "trace/trace.hpp"

namespace zh::simtime {

/// Configuration of one service queue. The default (0 workers) is
/// inactive: no queue state is kept and delivery behaviour is byte-
/// identical to the queueless network.
struct QueueModel {
  /// What a saturated queue does with a request it cannot hold.
  enum class Shed {
    /// Silently drop it — the client observes a timeout, exactly like a
    /// lost UDP datagram (the common authoritative-server overload mode).
    kDrop,
    /// Answer SERVFAIL immediately, marked transient with RFC 8914 EDE 23
    /// (Network Error) when the query carried EDNS — the resolver-vendor
    /// overload mode; clients may retry.
    kServfail,
  };

  /// Parallel service slots (0 disables the model entirely).
  unsigned workers = 0;
  /// FIFO backlog bound: a request that would have to wait while `backlog`
  /// earlier admissions are already waiting is shed instead.
  std::size_t backlog = 64;
  Shed shed = Shed::kDrop;

  constexpr bool active() const noexcept { return workers > 0; }
};

/// Outcome of asking a queue to admit one request.
struct QueueAdmission {
  bool admitted = false;
  /// Virtual time the request spends in the backlog before service begins.
  Duration wait;
  /// When service begins (arrival + wait).
  Duration start;
  /// The worker slot that will serve it (valid when admitted).
  std::size_t slot = 0;
};

/// Monotone counters a queue (or a Network, summed over queues) exposes
/// for the campaign/sweep statistics and the DoS benches.
struct QueueCounters {
  std::uint64_t admitted = 0;       // requests that entered service
  std::uint64_t delayed = 0;        // admitted with a non-zero wait
  std::uint64_t dropped = 0;        // shed (either policy)
  std::uint64_t wait_ns = 0;        // total backlog waiting time
  std::uint64_t busy_ns = 0;        // total slot-occupied service time
  std::uint64_t max_backlog = 0;    // deepest simultaneous backlog observed

  void merge(const QueueCounters& other) noexcept {
    admitted += other.admitted;
    delayed += other.delayed;
    dropped += other.dropped;
    wait_ns += other.wait_ns;
    busy_ns += other.busy_ns;
    if (other.max_backlog > max_backlog) max_backlog = other.max_backlog;
  }

  /// Fraction of slot capacity consumed over `span` with `workers` slots.
  double utilisation(Duration span, unsigned workers) const noexcept {
    if (span.nanos() <= 0 || workers == 0) return 0.0;
    return static_cast<double>(busy_ns) /
           (static_cast<double>(span.nanos()) * workers);
  }
};

/// The discrete-event queue state for one destination. One instance per
/// (Network, destination, epoch); Network::set_flow() discards the state,
/// which is what scopes contention to a campaign item.
class ServiceQueue {
 public:
  explicit ServiceQueue(const QueueModel& model);

  /// Decides the fate of a request arriving at virtual time `arrival`:
  /// admitted (possibly after a FIFO wait for the earliest-free slot) or
  /// shed because `backlog` earlier admissions are already waiting. Pure
  /// function of (arrival, prior admissions this epoch).
  QueueAdmission admit(Duration arrival);

  /// Releases the admission's slot at `completion` (service end) and
  /// accounts the busy time. Must be the matching admit()'s result.
  void complete(const QueueAdmission& admission, Duration completion);

  const QueueCounters& counters() const noexcept { return counters_; }
  const QueueModel& model() const noexcept { return model_; }

  /// Attaches the owning Network's tracer: admissions/sheds tick the
  /// `queue.admitted`/`queue.shed` metrics and (when event tracing is on)
  /// emit enqueue/dequeue/shed events; backlog waits accumulate into the
  /// kQueueWait stage.
  void set_tracer(trace::Tracer* tracer);

 private:
  QueueModel model_;
  trace::Tracer* tracer_ = nullptr;
  trace::Metrics::Counter admitted_metric_ = nullptr;
  trace::Metrics::Counter shed_metric_ = nullptr;
  /// Per-slot time the worker becomes free (service start until complete()
  /// overwrites it with the true completion).
  std::vector<Duration> busy_until_;
  /// Service-start times of every admission this epoch, in admission
  /// order; the backlog at an arrival is the count of starts after it.
  std::vector<Duration> starts_;
  QueueCounters counters_;
};

}  // namespace zh::simtime
