#include "simtime/latency.hpp"

namespace zh::simtime {
namespace {

/// True when `address` lies under `prefix`/`bits` (same family).
bool prefix_matches(const simnet::IpAddress& address,
                    const simnet::IpAddress& prefix, unsigned bits) {
  if (address.is_v6() != prefix.is_v6()) return false;
  const unsigned max_bits = address.is_v6() ? 128 : 32;
  if (bits > max_bits) bits = max_bits;
  const auto& a = address.raw();
  const auto& p = prefix.raw();
  const unsigned whole = bits / 8;
  for (unsigned i = 0; i < whole; ++i)
    if (a[i] != p[i]) return false;
  const unsigned rest = bits % 8;
  if (rest == 0) return true;
  const std::uint8_t mask = static_cast<std::uint8_t>(0xff << (8 - rest));
  return (a[whole] & mask) == (p[whole] & mask);
}

/// Stable 64-bit digest of the link's *server* endpoint. Deliberately not
/// keyed on the client: sharded campaigns give every worker a distinct
/// source address (scanner::shard_source), and folding it in would make
/// jitter draws — and therefore latency ECDFs — depend on the worker count.
/// The loss model makes the same choice (no link component at all).
std::uint64_t link_key(const simnet::IpAddress& to) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  h = (h ^ (to.is_v6() ? 0x6f : 0x34)) * 1099511628211ull;
  for (const std::uint8_t b : to.raw()) h = (h ^ b) * 1099511628211ull;
  return h;
}

}  // namespace

void LatencyModel::add_rule(const simnet::IpAddress& prefix,
                            unsigned prefix_bits, Duration base_rtt,
                            Duration jitter) {
  rules_.push_back(Rule{prefix, prefix_bits, base_rtt, jitter});
}

Duration LatencyModel::sample(const simnet::IpAddress& /*from*/,
                              const simnet::IpAddress& to, std::uint64_t flow,
                              std::uint64_t seq) const {
  Duration base = base_;
  Duration jitter = jitter_;
  unsigned best_bits = 0;
  bool overridden = false;
  for (const Rule& rule : rules_) {
    if (!prefix_matches(to, rule.prefix, rule.bits)) continue;
    if (!overridden || rule.bits >= best_bits) {
      base = rule.base;
      jitter = rule.jitter;
      best_bits = rule.bits;
      overridden = true;
    }
  }
  if (jitter.nanos() <= 0) return base;
  // One splitmix draw keyed on (seed, destination, flow, seq): no sequential
  // RNG state, so the sample for a given transmission does not depend on
  // what other flows did before it — or on who sent it (see link_key).
  const std::uint64_t bits =
      mix64(seed_ + mix64(link_key(to) + mix64(flow + mix64(seq))));
  const auto spread = static_cast<std::int64_t>(
      unit_double(bits) * static_cast<double>(jitter.nanos() + 1));
  return base + Duration::from_ns(spread);
}

}  // namespace zh::simtime
