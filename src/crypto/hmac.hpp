// HMAC (RFC 2104) over any zh::crypto digest type.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace zh::crypto {

/// Keyed-hash MAC generic over the underlying digest `H`.
///
/// `H` must expose kDigestSize, kBlockSize, update(), finalize(), reset()
/// and a Digest array type, as Sha1/Sha256/... in this library do.
template <typename H>
class Hmac {
 public:
  using Digest = typename H::Digest;

  explicit Hmac(std::span<const std::uint8_t> key) noexcept {
    std::array<std::uint8_t, H::kBlockSize> k{};
    if (key.size() > H::kBlockSize) {
      H pre;
      pre.update(key);
      const auto d = pre.finalize();
      std::copy(d.begin(), d.end(), k.begin());
    } else {
      std::copy(key.begin(), key.end(), k.begin());
    }
    std::array<std::uint8_t, H::kBlockSize> ipad;
    for (std::size_t i = 0; i < H::kBlockSize; ++i) {
      ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
      opad_[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
    }
    inner_.update(std::span<const std::uint8_t>(ipad.data(), ipad.size()));
  }

  void update(std::span<const std::uint8_t> data) noexcept {
    inner_.update(data);
  }
  void update(std::string_view data) noexcept {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
  }

  Digest finalize() noexcept {
    const auto inner_digest = inner_.finalize();
    H outer;
    outer.update(std::span<const std::uint8_t>(opad_.data(), opad_.size()));
    outer.update(std::span<const std::uint8_t>(inner_digest.data(),
                                               inner_digest.size()));
    return outer.finalize();
  }

  /// One-shot MAC.
  static Digest mac(std::span<const std::uint8_t> key,
                    std::span<const std::uint8_t> data) noexcept {
    Hmac<H> h(key);
    h.update(data);
    return h.finalize();
  }

 private:
  H inner_;
  std::array<std::uint8_t, H::kBlockSize> opad_{};
};

}  // namespace zh::crypto
