#include "crypto/sha1.hpp"

#include <bit>
#include <cstring>

#include "crypto/cost_meter.hpp"

namespace zh::crypto {
namespace {

inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

void sha1_compress_scalar(std::uint32_t state[5],
                          const std::uint8_t* block) noexcept {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (int i = 16; i < 80; ++i)
    w[i] = std::rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3],
                e = state[4];

  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = std::rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = std::rotl(b, 30);
    b = a;
    a = tmp;
  }

  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
}

void Sha1::reset() noexcept {
  state_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  total_len_ = 0;
  buffer_len_ = 0;
}

void Sha1::compress(const std::uint8_t* block) noexcept {
  CostMeter::add_sha1_blocks(1);
  CostMeter::add_sha1_physical(1);
  sha1_compress_scalar(state_.data(), block);
}

void Sha1::update(std::span<const std::uint8_t> data) noexcept {
  total_len_ += data.size();
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();

  if (buffer_len_ > 0 && n > 0) {
    const std::size_t take = std::min(n, kBlockSize - buffer_len_);
    // An empty span has a null data(); memcpy's pointer args must be
    // non-null even for size 0, so the n > 0 guard above is load-bearing.
    std::memcpy(buffer_.data() + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    n -= take;
    if (buffer_len_ == kBlockSize) {
      compress(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (n >= kBlockSize) {
    compress(p);
    p += kBlockSize;
    n -= kBlockSize;
  }
  if (n > 0) {
    std::memcpy(buffer_.data(), p, n);
    buffer_len_ = n;
  }
}

Sha1::Digest Sha1::finalize() noexcept {
  const std::uint64_t bit_len = total_len_ * 8;

  // Padding: 0x80, zeros, then 64-bit big-endian bit length.
  const std::uint8_t pad_byte = 0x80;
  update(std::span<const std::uint8_t>(&pad_byte, 1));
  static constexpr std::uint8_t kZeros[kBlockSize] = {};
  while (buffer_len_ != kBlockSize - 8) {
    const std::size_t room =
        buffer_len_ < kBlockSize - 8 ? (kBlockSize - 8 - buffer_len_)
                                     : (kBlockSize - buffer_len_);
    update(std::span<const std::uint8_t>(kZeros, room));
  }
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i)
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  update(std::span<const std::uint8_t>(len_bytes, 8));

  Digest out;
  for (int i = 0; i < 5; ++i) store_be32(out.data() + 4 * i, state_[i]);
  return out;
}

Sha1::Digest Sha1::hash(std::span<const std::uint8_t> data) noexcept {
  Sha1 h;
  h.update(data);
  return h.finalize();
}

Sha1::Digest Sha1::hash(std::string_view data) noexcept {
  Sha1 h;
  h.update(data);
  return h.finalize();
}

}  // namespace zh::crypto
