// The NSEC3 hash (RFC 5155 §5) — the object of study of the paper.
//
//   IH(salt, x, 0) = H(x || salt)
//   IH(salt, x, k) = H(IH(salt, x, k-1) || salt)   for k > 0
//   hash(name)     = IH(salt, canonical-wire-form(name), iterations)
//
// `iterations` is the count of *additional* iterations: 0 means one
// application of H. RFC 9276 §3.1 REQUIRES iterations == 0 for new zones;
// CVE-2023-50868 abuses large values to exhaust resolver CPU. The salt, per
// RFC 9276, SHOULD NOT be used at all.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace zh::crypto {

/// NSEC3 hash algorithm identifiers (IANA "DNSSEC NSEC3 Hash Algorithms").
/// Only SHA-1 (1) has ever been assigned.
enum class Nsec3HashAlgorithm : std::uint8_t {
  kSha1 = 1,
};

/// SHA-1 NSEC3 digest: always 20 bytes.
using Nsec3Digest = std::array<std::uint8_t, 20>;

/// Computes the RFC 5155 §5 iterated hash.
///
/// \param owner_wire  The *canonical* wire form of the owner name
///                    (lowercased, uncompressed) — see zh::dns::Name.
/// \param salt        The salt appended at every iteration (may be empty).
/// \param iterations  Number of additional iterations (0 = hash once).
///
/// Performs exactly `iterations + 1` SHA-1 message computations and ticks
/// CostMeter accordingly; salt lengths and name lengths determine how many
/// compression blocks each computation needs.
Nsec3Digest nsec3_hash(std::span<const std::uint8_t> owner_wire,
                       std::span<const std::uint8_t> salt,
                       std::uint16_t iterations) noexcept;

/// Batched nsec3_hash: hashes `owners.size()` independent owner names under
/// one (salt, iterations) parameter set, writing digest i into `out[i]`.
///
/// Dispatches to the multi-buffer SHA-1 kernel (sha1_mb.hpp): the ragged
/// first hashes H(owner || salt) refill SIMD lanes as they drain, and the
/// `iterations` fixed-length re-hashes run in perfect lockstep. Digests and
/// CostMeter *logical* accounting (sha1 blocks, nsec3 hashes) are
/// bit-identical to calling nsec3_hash once per owner, for every
/// implementation ZH_SHA1_IMPL can select — this is what keeps campaign
/// artefacts and CVE amplification figures byte-identical while the zone
/// signer hashes whole NSEC3 chains lane-parallel.
void nsec3_hash_batch(std::span<const std::span<const std::uint8_t>> owners,
                      std::span<const std::uint8_t> salt,
                      std::uint16_t iterations, Nsec3Digest* out);

/// Upper bounds from RFC 5155 §10.3: a validator MAY treat higher iteration
/// counts as insecure, depending on the zone signing key size.
/// (RFC 9276 obsoletes these in favour of a flat 0.)
struct Rfc5155IterationLimits {
  static constexpr std::uint16_t kFor1024BitKeys = 150;
  static constexpr std::uint16_t kFor2048BitKeys = 500;
  static constexpr std::uint16_t kFor4096BitKeys = 2500;
};

}  // namespace zh::crypto
