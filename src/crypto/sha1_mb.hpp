// Multi-buffer SHA-1: hashes batches of *independent* messages in parallel
// SIMD lanes (SSSE3 4-wide, AVX2 8-wide, scalar fallback), selected once per
// process by CPUID — overridable with ZH_SHA1_IMPL / set_sha1_impl() so the
// forced-implementation test matrix can run every kernel on one host.
//
// The contract that makes a faster physical kernel safe in this
// reproduction: *logical* hash-work accounting (CostMeter::sha1_blocks, the
// currency of CVE-2023-50868 amplification figures and of simtime service
// costs) is byte-identical across implementations. Every batch ticks exactly
// the compression-block count a message-at-a-time scalar Sha1 would have
// ticked; only CostMeter::sha1_physical_blocks() reflects how the work was
// actually executed. See docs/PERFORMANCE.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "crypto/sha1.hpp"

namespace zh::crypto {

/// Available SHA-1 batch kernel implementations, narrowest first.
enum class Sha1Impl : std::uint8_t {
  kScalar = 0,  // one message at a time (always available)
  kSsse3 = 1,   // 4 lanes of 32-bit words in XMM registers
  kAvx2 = 2,    // 8 lanes of 32-bit words in YMM registers
};

/// "scalar" / "ssse3" / "avx2".
const char* sha1_impl_name(Sha1Impl impl) noexcept;

/// Inverse of sha1_impl_name; nullopt for anything else.
std::optional<Sha1Impl> parse_sha1_impl(std::string_view name) noexcept;

/// True if `impl` was compiled in AND the CPU advertises the ISA.
bool sha1_impl_supported(Sha1Impl impl) noexcept;

/// The widest supported implementation on this host.
Sha1Impl sha1_best_impl() noexcept;

/// SIMD lanes `impl` advances per compression step (1, 4 or 8).
std::size_t sha1_impl_lanes(Sha1Impl impl) noexcept;

/// The implementation batch hashing currently dispatches to. First use reads
/// ZH_SHA1_IMPL; an unknown or unsupported value is rejected with a stderr
/// diagnostic and the best supported implementation is used instead.
Sha1Impl sha1_impl() noexcept;

/// Forces the dispatch target (tests / bench grids). Unsupported requests
/// are clamped to sha1_best_impl(). Returns the implementation in effect.
Sha1Impl set_sha1_impl(Sha1Impl impl) noexcept;

/// Hashes `messages.size()` independent messages, writing digest i for
/// message i into `out[i]`. Digests are bit-identical to Sha1::hash() for
/// every implementation; ragged batches (lanes of unequal length) refill
/// finished lanes so utilisation stays high. Ticks CostMeter logical and
/// physical SHA-1 blocks by the same amount — the batch changes *when* work
/// happens, never how much is accounted.
void sha1_multi_hash(std::span<const std::span<const std::uint8_t>> messages,
                     Sha1::Digest* out);

/// Applies `digest = SHA-1(digest || suffix)` to every digest `iterations`
/// times, lane-parallel. This is exactly the RFC 5155 §5 re-hash step (the
/// CVE-2023-50868 cost multiplier): after the first hash of a name, every
/// further iteration is a fixed-length message, so all lanes stay in perfect
/// lockstep with no re-packing. Cost accounting as sha1_multi_hash.
void sha1_multi_iterate(std::span<Sha1::Digest> digests,
                        std::span<const std::uint8_t> suffix,
                        std::uint16_t iterations);

/// Thread-local physical batching telemetry (the trace-layer `sha1_batch`
/// metric): how many batch calls ran and how many messages they covered.
/// Purely observational — never part of the determinism contract's logical
/// cost surface.
struct Sha1BatchMeter {
  static std::uint64_t batches() noexcept { return tls().batches; }
  static std::uint64_t messages() noexcept { return tls().messages; }
  static void add_batch(std::uint64_t message_count) noexcept {
    ++tls().batches;
    tls().messages += message_count;
  }
  static void reset() noexcept { tls() = Counters{}; }

 private:
  struct Counters {
    std::uint64_t batches = 0;
    std::uint64_t messages = 0;
  };
  static Counters& tls() noexcept {
    thread_local Counters counters;
    return counters;
  }
};

namespace detail {

/// Lane-parallel compression kernels. State is struct-of-arrays:
/// `state[word][lane]`; `blocks[lane]` points at that lane's 64-byte block
/// and must be non-null for every lane the kernel covers (feed inactive
/// lanes a dummy block and discard their state).
inline constexpr std::size_t kMaxLanes = 8;
using LaneState = std::uint32_t[5][kMaxLanes];

void sha1_compress_lane_scalar(LaneState state, const std::uint8_t* block,
                               std::size_t lane) noexcept;
#if defined(ZH_HAVE_SHA1_SSSE3)
void sha1_compress_x4_ssse3(LaneState state,
                            const std::uint8_t* const blocks[4]) noexcept;
#endif
#if defined(ZH_HAVE_SHA1_AVX2)
void sha1_compress_x8_avx2(LaneState state,
                           const std::uint8_t* const blocks[8]) noexcept;
#endif

}  // namespace detail

}  // namespace zh::crypto
