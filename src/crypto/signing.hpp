// Simulated DNSSEC signature primitive.
//
// The paper's measurements do not depend on which public-key algorithm signs
// RRsets — they depend on chain-of-trust *structure* (DS → DNSKEY → RRSIG),
// signature validity windows, and NSEC3 hashing cost. We therefore use the
// RFC 4034 private-use algorithm number 253 with a deterministic
// HMAC-SHA-256 construction keyed by the *public* key:
//
//   signature = HMAC-SHA-256(public_key, signed_data)
//
// Inside the closed simulation this gives exactly what validation needs:
// any bit flip in the signed data or a wrong key yields a verification
// failure, and expired/bogus/valid states are all expressible. It is NOT
// unforgeable against an adversary who knows the public key; DESIGN.md §1
// documents this substitution.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace zh::crypto {

/// DNSSEC algorithm numbers (subset; IANA "DNS Security Algorithm Numbers").
enum class DnssecAlgorithm : std::uint8_t {
  kRsaSha1 = 5,          // recognised, not implemented (real-world decoding)
  kRsaSha256 = 8,        // recognised, not implemented
  kEcdsaP256Sha256 = 13, // recognised, not implemented
  kSimHmacSha256 = 253,  // PRIVATEDNS: the simulation's signing algorithm
};

constexpr std::size_t kSimSignatureSize = 32;
constexpr std::size_t kSimPublicKeySize = 32;

using SimSignature = std::array<std::uint8_t, kSimSignatureSize>;
using SimPublicKey = std::array<std::uint8_t, kSimPublicKeySize>;

/// Key material for the simulated algorithm.
///
/// Keys are derived deterministically from a seed string (typically
/// "<zone>/ksk" or "<zone>/zsk") so that rebuilding the same synthetic
/// ecosystem yields byte-identical zones.
class SimKey {
 public:
  /// Derives a key from an arbitrary seed.
  static SimKey derive(std::string_view seed);

  const SimPublicKey& public_key() const noexcept { return public_key_; }

  /// Signs `data`; deterministic for a given (key, data).
  SimSignature sign(std::span<const std::uint8_t> data) const noexcept;

 private:
  SimPublicKey public_key_{};
};

/// Verifies a signature against a public key — all a validator holds.
bool sim_verify(const SimPublicKey& public_key,
                std::span<const std::uint8_t> data,
                std::span<const std::uint8_t> signature) noexcept;

}  // namespace zh::crypto
