// Instrumentation for hash-work accounting.
//
// CVE-2023-50868 ("NSEC3 closest encloser proof can exhaust CPU") inflates
// the number of hash compression-function invocations a validating resolver
// performs. Gruza et al. (WOOT'24) quantified the impact in CPU instruction
// counts; instruction count is proportional to compression invocations on
// every real implementation, so this meter is the simulation-side equivalent
// used by bench_cve_cost and by the resolver's per-query cost reports.
#pragma once

#include <cstdint>

namespace zh::crypto {

/// Thread-local counters of primitive hash work performed.
///
/// The counters are monotonically increasing; measure a region by taking a
/// snapshot before and after. All hash primitives in zh::crypto tick these.
struct CostMeter {
  /// Number of *logical* SHA-1 compression-function invocations (64-byte
  /// blocks): what a message-at-a-time implementation would have executed.
  /// This is the currency of every amplification figure and of simtime
  /// service costs, and it is invariant across batch kernels (sha1_mb.hpp)
  /// and NSEC3 chain memoisation (zone/chain_memo.hpp) — both credit the
  /// logical count even when they skip or restructure the physical work.
  static std::uint64_t sha1_blocks() noexcept { return tls().sha1; }
  /// Number of SHA-1 compression blocks *actually executed* on this thread.
  /// Equal to sha1_blocks() unless memoisation skipped a chain rebuild.
  static std::uint64_t sha1_physical_blocks() noexcept {
    return tls().sha1_physical;
  }
  /// Number of SHA-256-family compression invocations (64/128-byte blocks).
  static std::uint64_t sha2_blocks() noexcept { return tls().sha2; }
  /// Number of complete NSEC3 hash computations (one per hashed name).
  static std::uint64_t nsec3_hashes() noexcept { return tls().nsec3; }

  static void add_sha1_blocks(std::uint64_t n) noexcept { tls().sha1 += n; }
  static void add_sha1_physical(std::uint64_t n) noexcept {
    tls().sha1_physical += n;
  }
  static void add_sha2_blocks(std::uint64_t n) noexcept { tls().sha2 += n; }
  static void add_nsec3_hash() noexcept { ++tls().nsec3; }
  /// Bulk credit — used by the parallel campaign engine to attribute its
  /// workers' (thread-local) hash work back to the calling thread, and by
  /// the chain memo to credit logical work it did not physically redo.
  static void add_nsec3_hashes(std::uint64_t n) noexcept { tls().nsec3 += n; }

  /// Resets all counters on the calling thread (test/bench convenience).
  static void reset() noexcept { tls() = Counters{}; }

 private:
  struct Counters {
    std::uint64_t sha1 = 0;
    std::uint64_t sha1_physical = 0;
    std::uint64_t sha2 = 0;
    std::uint64_t nsec3 = 0;
  };
  static Counters& tls() noexcept {
    thread_local Counters counters;
    return counters;
  }
};

/// RAII snapshot: measures SHA-1 block work across a scope.
class Sha1WorkScope {
 public:
  Sha1WorkScope() noexcept : start_(CostMeter::sha1_blocks()) {}
  /// Blocks hashed since construction.
  std::uint64_t elapsed() const noexcept {
    return CostMeter::sha1_blocks() - start_;
  }

 private:
  std::uint64_t start_;
};

}  // namespace zh::crypto
