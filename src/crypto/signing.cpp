#include "crypto/signing.hpp"

#include <algorithm>

#include "crypto/hmac.hpp"
#include "crypto/sha2.hpp"

namespace zh::crypto {

SimKey SimKey::derive(std::string_view seed) {
  SimKey key;
  Sha256 h;
  h.update(std::string_view{"zh-simkey-v1|"});
  h.update(seed);
  const auto digest = h.finalize();
  std::copy(digest.begin(), digest.end(), key.public_key_.begin());
  return key;
}

SimSignature SimKey::sign(std::span<const std::uint8_t> data) const noexcept {
  return Hmac<Sha256>::mac(
      std::span<const std::uint8_t>(public_key_.data(), public_key_.size()),
      data);
}

bool sim_verify(const SimPublicKey& public_key,
                std::span<const std::uint8_t> data,
                std::span<const std::uint8_t> signature) noexcept {
  if (signature.size() != kSimSignatureSize) return false;
  const SimSignature expected = Hmac<Sha256>::mac(
      std::span<const std::uint8_t>(public_key.data(), public_key.size()),
      data);
  // Constant-time comparison; good hygiene even in a simulation.
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < kSimSignatureSize; ++i)
    diff = static_cast<std::uint8_t>(diff | (expected[i] ^ signature[i]));
  return diff == 0;
}

}  // namespace zh::crypto
