#include "crypto/sha1_mb.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "crypto/cost_meter.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define ZH_SHA1_X86 1
#endif

namespace zh::crypto {
namespace {

constexpr std::uint32_t kIv[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu,
                                  0x10325476u, 0xC3D2E1F0u};

bool cpu_has(Sha1Impl impl) noexcept {
#if defined(ZH_SHA1_X86)
  switch (impl) {
    case Sha1Impl::kScalar:
      return true;
    case Sha1Impl::kSsse3:
      return __builtin_cpu_supports("ssse3");
    case Sha1Impl::kAvx2:
      return __builtin_cpu_supports("avx2");
  }
#endif
  return impl == Sha1Impl::kScalar;
}

bool compiled_in(Sha1Impl impl) noexcept {
  switch (impl) {
    case Sha1Impl::kScalar:
      return true;
    case Sha1Impl::kSsse3:
#if defined(ZH_HAVE_SHA1_SSSE3)
      return true;
#else
      return false;
#endif
    case Sha1Impl::kAvx2:
#if defined(ZH_HAVE_SHA1_AVX2)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Sha1Impl impl_from_env() noexcept {
  const Sha1Impl best = sha1_best_impl();
  const char* env = std::getenv("ZH_SHA1_IMPL");
  if (env == nullptr || *env == '\0') return best;
  const auto parsed = parse_sha1_impl(env);
  if (!parsed) {
    std::fprintf(stderr,
                 "# ZH_SHA1_IMPL='%s' is not one of scalar|ssse3|avx2; "
                 "using %s\n",
                 env, sha1_impl_name(best));
    return best;
  }
  if (!sha1_impl_supported(*parsed)) {
    std::fprintf(stderr,
                 "# ZH_SHA1_IMPL=%s is not supported by this host/build; "
                 "using %s\n",
                 env, sha1_impl_name(best));
    return best;
  }
  return *parsed;
}

std::atomic<std::uint8_t>& active_impl() noexcept {
  static std::atomic<std::uint8_t> impl{
      static_cast<std::uint8_t>(impl_from_env())};
  return impl;
}

/// One message being fed through a lane: full 64-byte blocks come straight
/// from the caller's buffer; the final (padded) 1–2 blocks from `tail`.
struct LaneFeed {
  const std::uint8_t* data = nullptr;
  std::size_t direct_blocks = 0;  // whole blocks readable from `data`
  std::size_t total_blocks = 0;   // direct + padded tail blocks
  std::size_t block = 0;          // cursor
  std::size_t out_index = 0;      // digest slot
  std::uint8_t tail[2 * Sha1::kBlockSize];

  void load(std::span<const std::uint8_t> message, std::size_t index) {
    data = message.data();
    out_index = index;
    block = 0;
    const std::size_t len = message.size();
    direct_blocks = len / Sha1::kBlockSize;
    const std::size_t rem = len % Sha1::kBlockSize;
    // Merkle–Damgård padding: 0x80, zeros, 64-bit big-endian bit length.
    const std::size_t tail_blocks =
        rem < Sha1::kBlockSize - 8 ? 1 : 2;
    total_blocks = direct_blocks + tail_blocks;
    std::memset(tail, 0, sizeof(tail));
    if (rem > 0)
      std::memcpy(tail, data + direct_blocks * Sha1::kBlockSize, rem);
    tail[rem] = 0x80;
    const std::uint64_t bit_len = static_cast<std::uint64_t>(len) * 8;
    std::uint8_t* p = tail + tail_blocks * Sha1::kBlockSize - 8;
    for (int i = 0; i < 8; ++i)
      p[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }

  const std::uint8_t* next_block() const noexcept {
    return block < direct_blocks
               ? data + block * Sha1::kBlockSize
               : tail + (block - direct_blocks) * Sha1::kBlockSize;
  }

  bool done() const noexcept { return block == total_blocks; }
};

void store_digest(const detail::LaneState state, std::size_t lane,
                  Sha1::Digest& out) noexcept {
  for (int word = 0; word < 5; ++word) {
    const std::uint32_t v = state[word][lane];
    out[4 * word + 0] = static_cast<std::uint8_t>(v >> 24);
    out[4 * word + 1] = static_cast<std::uint8_t>(v >> 16);
    out[4 * word + 2] = static_cast<std::uint8_t>(v >> 8);
    out[4 * word + 3] = static_cast<std::uint8_t>(v);
  }
}

void reset_lane(detail::LaneState state, std::size_t lane) noexcept {
  for (int word = 0; word < 5; ++word) state[word][lane] = kIv[word];
}

/// Advances every active lane by one block with the selected kernel.
/// Inactive lanes chew a dummy block whose result is discarded.
void compress_step(Sha1Impl impl, detail::LaneState state,
                   const std::uint8_t* const blocks[detail::kMaxLanes],
                   std::size_t lanes, const bool active[detail::kMaxLanes]) {
  switch (impl) {
#if defined(ZH_HAVE_SHA1_AVX2)
    case Sha1Impl::kAvx2:
      detail::sha1_compress_x8_avx2(state, blocks);
      return;
#endif
#if defined(ZH_HAVE_SHA1_SSSE3)
    case Sha1Impl::kSsse3:
      detail::sha1_compress_x4_ssse3(state, blocks);
      return;
#endif
    default:
      for (std::size_t lane = 0; lane < lanes; ++lane)
        if (active[lane])
          detail::sha1_compress_lane_scalar(state, blocks[lane], lane);
      return;
  }
}

}  // namespace

const char* sha1_impl_name(Sha1Impl impl) noexcept {
  switch (impl) {
    case Sha1Impl::kScalar:
      return "scalar";
    case Sha1Impl::kSsse3:
      return "ssse3";
    case Sha1Impl::kAvx2:
      return "avx2";
  }
  return "scalar";
}

std::optional<Sha1Impl> parse_sha1_impl(std::string_view name) noexcept {
  if (name == "scalar") return Sha1Impl::kScalar;
  if (name == "ssse3") return Sha1Impl::kSsse3;
  if (name == "avx2") return Sha1Impl::kAvx2;
  return std::nullopt;
}

bool sha1_impl_supported(Sha1Impl impl) noexcept {
  return compiled_in(impl) && cpu_has(impl);
}

Sha1Impl sha1_best_impl() noexcept {
  if (sha1_impl_supported(Sha1Impl::kAvx2)) return Sha1Impl::kAvx2;
  if (sha1_impl_supported(Sha1Impl::kSsse3)) return Sha1Impl::kSsse3;
  return Sha1Impl::kScalar;
}

std::size_t sha1_impl_lanes(Sha1Impl impl) noexcept {
  switch (impl) {
    case Sha1Impl::kScalar:
      return 1;
    case Sha1Impl::kSsse3:
      return 4;
    case Sha1Impl::kAvx2:
      return 8;
  }
  return 1;
}

Sha1Impl sha1_impl() noexcept {
  return static_cast<Sha1Impl>(active_impl().load(std::memory_order_relaxed));
}

Sha1Impl set_sha1_impl(Sha1Impl impl) noexcept {
  if (!sha1_impl_supported(impl)) impl = sha1_best_impl();
  active_impl().store(static_cast<std::uint8_t>(impl),
                      std::memory_order_relaxed);
  return impl;
}

namespace detail {

void sha1_compress_lane_scalar(LaneState state, const std::uint8_t* block,
                               std::size_t lane) noexcept {
  std::uint32_t h[5];
  for (int word = 0; word < 5; ++word) h[word] = state[word][lane];
  sha1_compress_scalar(h, block);
  for (int word = 0; word < 5; ++word) state[word][lane] = h[word];
}

}  // namespace detail

void sha1_multi_hash(std::span<const std::span<const std::uint8_t>> messages,
                     Sha1::Digest* out) {
  const std::size_t count = messages.size();
  if (count == 0) return;
  Sha1BatchMeter::add_batch(count);

  const Sha1Impl impl = sha1_impl();
  const std::size_t lanes = sha1_impl_lanes(impl);

  static constexpr std::uint8_t kDummyBlock[Sha1::kBlockSize] = {};
  detail::LaneState state;
  LaneFeed feeds[detail::kMaxLanes];
  bool active[detail::kMaxLanes] = {};
  const std::uint8_t* blocks[detail::kMaxLanes];
  for (std::size_t lane = 0; lane < detail::kMaxLanes; ++lane)
    blocks[lane] = kDummyBlock;

  std::uint64_t logical_blocks = 0;
  std::size_t next = 0;  // next message to feed into a freed lane
  std::size_t live = 0;

  const auto refill = [&](std::size_t lane) {
    if (next < count) {
      feeds[lane].load(messages[next], next);
      logical_blocks += feeds[lane].total_blocks;
      reset_lane(state, lane);
      active[lane] = true;
      ++next;
      ++live;
    } else {
      active[lane] = false;
      blocks[lane] = kDummyBlock;
    }
  };

  for (std::size_t lane = 0; lane < lanes; ++lane) refill(lane);

  std::uint64_t physical_blocks = 0;
  while (live > 0) {
    for (std::size_t lane = 0; lane < lanes; ++lane)
      if (active[lane]) blocks[lane] = feeds[lane].next_block();
    compress_step(impl, state, blocks, lanes, active);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (!active[lane]) continue;
      ++physical_blocks;
      ++feeds[lane].block;
      if (feeds[lane].done()) {
        store_digest(state, lane, out[feeds[lane].out_index]);
        --live;
        refill(lane);
      }
    }
  }

  // Logical accounting is what a scalar message-at-a-time run would tick;
  // because every lane-block above belonged to a real message, physical
  // equals logical here (memoisation, not batching, is what divides them).
  CostMeter::add_sha1_blocks(logical_blocks);
  CostMeter::add_sha1_physical(physical_blocks);
}

void sha1_multi_iterate(std::span<Sha1::Digest> digests,
                        std::span<const std::uint8_t> suffix,
                        std::uint16_t iterations) {
  const std::size_t count = digests.size();
  if (count == 0 || iterations == 0) return;

  const std::size_t msg_len = Sha1::kDigestSize + suffix.size();
  // One padded message per lane. NSEC3 salts are at most 255 bytes, so five
  // blocks always suffice; anything longer takes the plain scalar path.
  constexpr std::size_t kMaxBuf = 5 * Sha1::kBlockSize;
  const std::size_t nblocks = (msg_len + 8) / Sha1::kBlockSize + 1;
  if (nblocks * Sha1::kBlockSize > kMaxBuf) {
    for (Sha1::Digest& digest : digests) {
      for (std::uint16_t i = 0; i < iterations; ++i) {
        Sha1 h;  // Sha1::compress ticks logical + physical itself
        h.update(std::span<const std::uint8_t>(digest.data(), digest.size()));
        h.update(suffix);
        digest = h.finalize();
      }
    }
    return;
  }

  const Sha1Impl impl = sha1_impl();
  const std::size_t lanes = sha1_impl_lanes(impl);

  // Constant part of every lane's message: suffix, padding, bit length.
  std::uint8_t buffers[detail::kMaxLanes][kMaxBuf];
  const std::uint64_t bit_len = static_cast<std::uint64_t>(msg_len) * 8;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    std::uint8_t* buf = buffers[lane];
    std::memset(buf, 0, nblocks * Sha1::kBlockSize);
    if (!suffix.empty())
      std::memcpy(buf + Sha1::kDigestSize, suffix.data(), suffix.size());
    buf[msg_len] = 0x80;
    std::uint8_t* p = buf + nblocks * Sha1::kBlockSize - 8;
    for (int i = 0; i < 8; ++i)
      p[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }

  detail::LaneState state;
  bool active[detail::kMaxLanes] = {};
  const std::uint8_t* blocks[detail::kMaxLanes];
  for (std::size_t lane = 0; lane < detail::kMaxLanes; ++lane)
    blocks[lane] = buffers[0];

  std::uint64_t processed = 0;
  for (std::size_t group = 0; group < count; group += lanes) {
    const std::size_t nlanes = std::min(lanes, count - group);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      active[lane] = lane < nlanes;
      // Seed the message buffer with the incoming digest (idle lanes chew
      // whatever their buffer holds; their state is never read).
      if (active[lane])
        std::memcpy(buffers[lane], digests[group + lane].data(),
                    Sha1::kDigestSize);
    }
    for (std::uint16_t it = 0; it < iterations; ++it) {
      for (std::size_t lane = 0; lane < nlanes; ++lane)
        reset_lane(state, lane);
      for (std::size_t block = 0; block < nblocks; ++block) {
        for (std::size_t lane = 0; lane < lanes; ++lane)
          blocks[lane] = buffers[lane] + block * Sha1::kBlockSize;
        compress_step(impl, state, blocks, lanes, active);
      }
      // Feed the fresh digest into the next round's message.
      for (std::size_t lane = 0; lane < nlanes; ++lane) {
        Sha1::Digest digest;
        store_digest(state, lane, digest);
        std::memcpy(buffers[lane], digest.data(), Sha1::kDigestSize);
      }
      processed += nlanes * nblocks;
    }
    for (std::size_t lane = 0; lane < nlanes; ++lane)
      std::memcpy(digests[group + lane].data(), buffers[lane],
                  Sha1::kDigestSize);
  }

  CostMeter::add_sha1_blocks(processed);
  CostMeter::add_sha1_physical(processed);
}

}  // namespace zh::crypto
