// 4-wide SHA-1 compression: four independent messages, one per 32-bit lane
// of an XMM register. Compiled with -mssse3 (see src/crypto/CMakeLists.txt);
// the dispatcher in sha1_mb.cpp only calls in here after a CPUID check.
#include "crypto/sha1_mb.hpp"

#if defined(ZH_HAVE_SHA1_SSSE3)

#include <immintrin.h>

namespace zh::crypto::detail {
namespace {

inline __m128i rotl(__m128i v, int n) noexcept {
  return _mm_or_si128(_mm_slli_epi32(v, n), _mm_srli_epi32(v, 32 - n));
}

inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

/// Word t of each lane's block, gathered into one register (lane 0 in the
/// lowest element).
inline __m128i gather_word(const std::uint8_t* const blocks[4],
                           int t) noexcept {
  return _mm_set_epi32(
      static_cast<int>(load_be32(blocks[3] + 4 * t)),
      static_cast<int>(load_be32(blocks[2] + 4 * t)),
      static_cast<int>(load_be32(blocks[1] + 4 * t)),
      static_cast<int>(load_be32(blocks[0] + 4 * t)));
}

}  // namespace

void sha1_compress_x4_ssse3(LaneState state,
                            const std::uint8_t* const blocks[4]) noexcept {
  __m128i w[80];
  for (int t = 0; t < 16; ++t) w[t] = gather_word(blocks, t);
  for (int t = 16; t < 80; ++t)
    w[t] = rotl(_mm_xor_si128(_mm_xor_si128(w[t - 3], w[t - 8]),
                              _mm_xor_si128(w[t - 14], w[t - 16])),
                1);

  __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state[0]));
  __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state[1]));
  __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state[2]));
  __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state[3]));
  __m128i e = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state[4]));
  const __m128i a0 = a, b0 = b, c0 = c, d0 = d, e0 = e;

  for (int t = 0; t < 80; ++t) {
    __m128i f, k;
    if (t < 20) {
      // Ch(b,c,d) = d ^ (b & (c ^ d))
      f = _mm_xor_si128(d, _mm_and_si128(b, _mm_xor_si128(c, d)));
      k = _mm_set1_epi32(0x5A827999);
    } else if (t < 40) {
      f = _mm_xor_si128(_mm_xor_si128(b, c), d);
      k = _mm_set1_epi32(0x6ED9EBA1);
    } else if (t < 60) {
      // Maj(b,c,d) = (b & c) | (d & (b | c))
      f = _mm_or_si128(_mm_and_si128(b, c),
                       _mm_and_si128(d, _mm_or_si128(b, c)));
      k = _mm_set1_epi32(static_cast<int>(0x8F1BBCDCu));
    } else {
      f = _mm_xor_si128(_mm_xor_si128(b, c), d);
      k = _mm_set1_epi32(static_cast<int>(0xCA62C1D6u));
    }
    const __m128i tmp = _mm_add_epi32(
        _mm_add_epi32(_mm_add_epi32(rotl(a, 5), f),
                      _mm_add_epi32(e, k)),
        w[t]);
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }

  _mm_storeu_si128(reinterpret_cast<__m128i*>(state[0]),
                   _mm_add_epi32(a0, a));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state[1]),
                   _mm_add_epi32(b0, b));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state[2]),
                   _mm_add_epi32(c0, c));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state[3]),
                   _mm_add_epi32(d0, d));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state[4]),
                   _mm_add_epi32(e0, e));
}

}  // namespace zh::crypto::detail

#endif  // ZH_HAVE_SHA1_SSSE3
