#include "crypto/nsec3_hash.hpp"

#include "crypto/cost_meter.hpp"
#include "crypto/sha1.hpp"

namespace zh::crypto {

Nsec3Digest nsec3_hash(std::span<const std::uint8_t> owner_wire,
                       std::span<const std::uint8_t> salt,
                       std::uint16_t iterations) noexcept {
  CostMeter::add_nsec3_hash();

  Sha1 h;
  h.update(owner_wire);
  h.update(salt);
  Nsec3Digest digest = h.finalize();

  for (std::uint16_t i = 0; i < iterations; ++i) {
    h.reset();
    h.update(std::span<const std::uint8_t>(digest.data(), digest.size()));
    h.update(salt);
    digest = h.finalize();
  }
  return digest;
}

}  // namespace zh::crypto
