#include "crypto/nsec3_hash.hpp"

#include <vector>

#include "crypto/cost_meter.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha1_mb.hpp"

namespace zh::crypto {

Nsec3Digest nsec3_hash(std::span<const std::uint8_t> owner_wire,
                       std::span<const std::uint8_t> salt,
                       std::uint16_t iterations) noexcept {
  CostMeter::add_nsec3_hash();

  Sha1 h;
  h.update(owner_wire);
  h.update(salt);
  Nsec3Digest digest = h.finalize();

  for (std::uint16_t i = 0; i < iterations; ++i) {
    h.reset();
    h.update(std::span<const std::uint8_t>(digest.data(), digest.size()));
    h.update(salt);
    digest = h.finalize();
  }
  return digest;
}

void nsec3_hash_batch(std::span<const std::span<const std::uint8_t>> owners,
                      std::span<const std::uint8_t> salt,
                      std::uint16_t iterations, Nsec3Digest* out) {
  const std::size_t count = owners.size();
  if (count == 0) return;
  CostMeter::add_nsec3_hashes(count);

  // Stage 1 — H(owner || salt), ragged lengths. The messages live in one
  // arena so lane refills touch contiguous memory.
  std::size_t arena_size = 0;
  for (const auto& owner : owners) arena_size += owner.size() + salt.size();
  std::vector<std::uint8_t> arena;
  arena.reserve(arena_size);
  std::vector<std::span<const std::uint8_t>> messages;
  messages.reserve(count);
  for (const auto& owner : owners) {
    const std::size_t offset = arena.size();
    arena.insert(arena.end(), owner.begin(), owner.end());
    arena.insert(arena.end(), salt.begin(), salt.end());
    messages.emplace_back(arena.data() + offset, owner.size() + salt.size());
  }
  sha1_multi_hash(
      std::span<const std::span<const std::uint8_t>>(messages.data(),
                                                     messages.size()),
      out);

  // Stage 2 — the iterated re-hash IH(salt, x, k): fixed-length messages,
  // all lanes in lockstep.
  sha1_multi_iterate(std::span<Sha1::Digest>(out, count), salt, iterations);
}

}  // namespace zh::crypto
