// SHA-1 (FIPS 180-4), implemented from scratch.
//
// SHA-1 is cryptographically broken for collision resistance but is the only
// hash algorithm ever assigned for NSEC3 (RFC 5155 §11: algorithm 1), so a
// faithful NSEC3 reproduction requires it. Do not use it for anything else.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace zh::crypto {

/// One unmetered compression round: folds the 64-byte `block` into `state`.
/// Shared by the incremental hasher below and the multi-buffer kernels
/// (sha1_mb.hpp) so there is exactly one scalar round implementation.
void sha1_compress_scalar(std::uint32_t state[5],
                          const std::uint8_t* block) noexcept;

/// Incremental SHA-1 hasher.
///
/// Usage: construct, call update() any number of times, then finalize()
/// exactly once. Reuse after finalize() requires reset().
class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha1() noexcept { reset(); }

  void reset() noexcept;
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view data) noexcept {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
  }
  /// Completes the hash. The object must be reset() before reuse.
  Digest finalize() noexcept;

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data) noexcept;
  static Digest hash(std::string_view data) noexcept;

 private:
  void compress(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 5> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::uint64_t total_len_ = 0;  // bytes fed so far
  std::size_t buffer_len_ = 0;
};

}  // namespace zh::crypto
