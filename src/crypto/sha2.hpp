// SHA-2 family (FIPS 180-4): SHA-224, SHA-256, SHA-384, SHA-512.
//
// SHA-256 backs the simulated DNSSEC signing algorithm and DS digests
// (digest type 2); SHA-384 backs DS digest type 4. Implemented from scratch.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace zh::crypto {

namespace detail {

/// 32-bit-word SHA-2 core (SHA-224 / SHA-256).
class Sha256Core {
 public:
  static constexpr std::size_t kBlockSize = 64;

  void init(bool is224) noexcept;
  void update(std::span<const std::uint8_t> data) noexcept;
  /// Writes the first `out_len` digest bytes into `out`.
  void finalize(std::uint8_t* out, std::size_t out_len) noexcept;

 private:
  void compress(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

/// 64-bit-word SHA-2 core (SHA-384 / SHA-512).
class Sha512Core {
 public:
  static constexpr std::size_t kBlockSize = 128;

  void init(bool is384) noexcept;
  void update(std::span<const std::uint8_t> data) noexcept;
  void finalize(std::uint8_t* out, std::size_t out_len) noexcept;

 private:
  void compress(const std::uint8_t* block) noexcept;

  std::array<std::uint64_t, 8> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

}  // namespace detail

/// Incremental SHA-256.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() noexcept { core_.init(/*is224=*/false); }
  void reset() noexcept { core_.init(false); }
  void update(std::span<const std::uint8_t> data) noexcept {
    core_.update(data);
  }
  void update(std::string_view data) noexcept {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
  }
  Digest finalize() noexcept {
    Digest out;
    core_.finalize(out.data(), out.size());
    return out;
  }
  static Digest hash(std::span<const std::uint8_t> data) noexcept {
    Sha256 h;
    h.update(data);
    return h.finalize();
  }
  static Digest hash(std::string_view data) noexcept {
    Sha256 h;
    h.update(data);
    return h.finalize();
  }

 private:
  detail::Sha256Core core_;
};

/// Incremental SHA-224.
class Sha224 {
 public:
  static constexpr std::size_t kDigestSize = 28;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha224() noexcept { core_.init(/*is224=*/true); }
  void reset() noexcept { core_.init(true); }
  void update(std::span<const std::uint8_t> data) noexcept {
    core_.update(data);
  }
  Digest finalize() noexcept {
    Digest out;
    core_.finalize(out.data(), out.size());
    return out;
  }
  static Digest hash(std::span<const std::uint8_t> data) noexcept {
    Sha224 h;
    h.update(data);
    return h.finalize();
  }

 private:
  detail::Sha256Core core_;
};

/// Incremental SHA-512.
class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  static constexpr std::size_t kBlockSize = 128;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha512() noexcept { core_.init(/*is384=*/false); }
  void reset() noexcept { core_.init(false); }
  void update(std::span<const std::uint8_t> data) noexcept {
    core_.update(data);
  }
  Digest finalize() noexcept {
    Digest out;
    core_.finalize(out.data(), out.size());
    return out;
  }
  static Digest hash(std::span<const std::uint8_t> data) noexcept {
    Sha512 h;
    h.update(data);
    return h.finalize();
  }

 private:
  detail::Sha512Core core_;
};

/// Incremental SHA-384.
class Sha384 {
 public:
  static constexpr std::size_t kDigestSize = 48;
  static constexpr std::size_t kBlockSize = 128;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha384() noexcept { core_.init(/*is384=*/true); }
  void reset() noexcept { core_.init(true); }
  void update(std::span<const std::uint8_t> data) noexcept {
    core_.update(data);
  }
  Digest finalize() noexcept {
    Digest out;
    core_.finalize(out.data(), out.size());
    return out;
  }
  static Digest hash(std::span<const std::uint8_t> data) noexcept {
    Sha384 h;
    h.update(data);
    return h.finalize();
  }

 private:
  detail::Sha512Core core_;
};

}  // namespace zh::crypto
