#include "scanner/async_engine.hpp"

namespace zh::scanner {

void QueryTask::begin(const FlowQuery& query, simtime::Duration now,
                      std::uint16_t& next_id) {
  query_ = query;
  round_ = 0;
  logical_attempts_ = 0;
  logical_start_ = now;
  wire_ready_ = false;
  arena_.reset();
  begin_exchange(next_id);
  state_ = State::kSend;
}

void QueryTask::begin_exchange(std::uint16_t& next_id) {
  const std::uint16_t id = next_id++;
  if (wire_ready_) {
    // Transient-SERVFAIL re-ask: same question, fresh id. Rewriting the
    // header in place keeps the bytes identical to a fresh make_query and
    // reuses all of the message's storage.
    wire_.header.id = id;
  } else {
    // First round: rebuild in place, field by field, so the question vector
    // and EDNS storage persisting in wire_ are reused across logical
    // queries instead of reallocated. Byte-identical to
    // make_query(id, qname, type) + cd.
    wire_.header = dns::Header{};
    wire_.header.id = id;
    wire_.header.rd = true;
    wire_.header.cd = query_.cd;
    wire_.questions.resize(1);
    dns::Question& q = wire_.questions.front();
    q.name = query_.qname;
    q.type = query_.type;
    q.klass = dns::RrClass::kIn;
    wire_.answers.clear();
    wire_.authorities.clear();
    wire_.additionals.clear();
    if (!wire_.edns) wire_.edns.emplace();
    wire_.edns->udp_payload_size = 1232;
    wire_.edns->version = 0;
    wire_.edns->do_bit = true;
    wire_.edns->options.clear();
    wire_ready_ = true;
  }
  attempt_ = 0;
  exchange_attempts_ = 0;
}

QueryTask::Step QueryTask::drive(simnet::Network& network,
                                 const simnet::IpAddress& source,
                                 const simnet::IpAddress& destination,
                                 const simtime::RetryPolicy& retry,
                                 std::uint64_t token, std::uint16_t& next_id,
                                 std::uint64_t& queries,
                                 simtime::Duration now) {
  for (;;) {
    switch (state_) {
      case State::kSend: {
        ++exchange_attempts_;
        // A retry is a retransmission — count it, as simnet::exchange does.
        if (attempt_ > 0) network.tracer().count("client.retransmit");
        network.send_async(source, destination, wire_, token);
        simnet::CompletionEvent event = network.pop_completion();
        if (!event.response) {
          if (!network.is_attached(destination)) {
            // Unreachable: retransmitting cannot help; the exchange settles
            // on the spot with one attempt spent and no timeout accounted.
            response_.reset();
            if (settle(retry, next_id, queries, /*timed_out=*/false, now))
              continue;
            return Step{false, now};
          }
          // No answer: park until this attempt's timeout — the async form
          // of the blocking engine's clock advance by attempt_timeout().
          // The timeout counts from completed_at, not the send instant: a
          // handler-level drop (the "stop answering" cohort) still runs the
          // delivery — RTT plus service time — before yielding nothing, and
          // the blocking exchange starts its wait from that advanced clock.
          // For a plain network loss completed_at == the send instant.
          state_ = State::kRetryBackoff;
          return Step{true,
                      event.completed_at + retry.attempt_timeout(attempt_)};
        }
        // Delivered: the network already ran the exchange on this task's
        // timeline; park until the response's arrival instant.
        response_ = std::move(event.response);
        state_ = State::kAwaitResponse;
        return Step{true, event.completed_at};
      }
      case State::kAwaitResponse: {
        if (response_->header.tc && retry.tcp_on_truncation) {
          ++exchange_attempts_;
          // TCP is loss-exempt in the simulation (see simnet::exchange);
          // keep the truncated answer if it ever failed.
          if (auto tcp = network.send_tcp(source, destination, wire_))
            response_ = std::move(tcp);
          now = network.clock().now();
        }
        if (settle(retry, next_id, queries, /*timed_out=*/false, now))
          continue;
        return Step{false, now};
      }
      case State::kRetryBackoff: {
        ++attempt_;
        if (attempt_ < std::max(1u, retry.attempts)) {
          state_ = State::kSend;
          continue;
        }
        response_.reset();
        if (settle(retry, next_id, queries, /*timed_out=*/true, now))
          continue;
        return Step{false, now};
      }
      case State::kIdle:
      case State::kDone:
        return Step{false, now};
    }
  }
}

bool QueryTask::settle(const simtime::RetryPolicy& retry,
                       std::uint16_t& next_id, std::uint64_t& queries,
                       bool timed_out, simtime::Duration now) {
  queries += exchange_attempts_;
  logical_attempts_ += exchange_attempts_;
  // Transient SERVFAILs (RFC 8914 EDE 22/23) re-ask up to the retry budget,
  // exactly like execute_logical_query's round loop.
  const unsigned rounds = std::max(1u, retry.attempts);
  if (response_ && simnet::transient_servfail(*response_) &&
      round_ + 1 < rounds) {
    ++round_;
    begin_exchange(next_id);
    state_ = State::kSend;
    return true;
  }
  outcome_ = FlowOutcome{};
  outcome_.response = std::move(response_);
  response_.reset();
  outcome_.timed_out = timed_out;
  outcome_.attempts = logical_attempts_;
  outcome_.latency = now - logical_start_;
  state_ = State::kDone;
  return false;
}

}  // namespace zh::scanner
