#include "scanner/resolver_prober.hpp"

#include "scanner/scan_flow.hpp"

namespace zh::scanner {

ResolverProber::ResolverProber(simnet::Network& network,
                               simnet::IpAddress source,
                               std::vector<testbed::ProbeZone> specs,
                               simtime::RetryPolicy retry)
    : network_(network),
      source_(source),
      specs_(std::move(specs)),
      retry_(retry) {}

ResolverProbeResult ResolverProber::probe(const simnet::IpAddress& resolver,
                                          const std::string& token) {
  // Flow-key the probe on its (unique) token, so this resolver's loss and
  // jitter draws are independent of the rest of the population sweep.
  network_.set_flow(simtime::fnv1a(token));
  const simtime::Duration start = network_.clock().now();
  const simtime::QueueCounters queue_before = network_.queue_counters();
  ProbeFlow flow(&specs_, token);
  while (const FlowQuery* q = flow.pending()) {
    flow.feed(execute_logical_query(network_, source_, resolver, *q, retry_,
                                    next_id_, queries_));
  }
  ResolverProbeResult result = flow.take_result();
  result.timeouts = flow.timeouts();
  result.elapsed = network_.clock().now() - start;
  const simtime::QueueCounters& queue_after = network_.queue_counters();
  result.queue_wait = simtime::Duration::from_ns(
      static_cast<std::int64_t>(queue_after.wait_ns - queue_before.wait_ns));
  result.queue_drops = queue_after.dropped - queue_before.dropped;
  return result;
}

}  // namespace zh::scanner
