#include "scanner/resolver_prober.hpp"

#include <algorithm>

#include "simnet/exchange.hpp"

namespace zh::scanner {
namespace {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::RrType;

}  // namespace

ResolverProber::ResolverProber(simnet::Network& network,
                               simnet::IpAddress source,
                               std::vector<testbed::ProbeZone> specs,
                               simtime::RetryPolicy retry)
    : network_(network),
      source_(source),
      specs_(std::move(specs)),
      retry_(retry) {}

ZoneObservation ResolverProber::ask(const simnet::IpAddress& resolver,
                                    const Name& qname) {
  ZoneObservation observation;
  // Re-ask on transient SERVFAILs (RFC 8914 EDE 22/23) just like the
  // domain scanner: a lost upstream packet must not masquerade as the
  // probed resolver's Item-8 policy. Deterministic SERVFAILs come back
  // unchanged on every round and are recorded after the first.
  const unsigned rounds = std::max(1u, retry_.attempts);
  const simtime::Duration start = network_.clock().now();
  simnet::ExchangeOutcome ex;
  unsigned attempts = 0;
  for (unsigned round = 0; round < rounds; ++round) {
    Message query = Message::make_query(next_id_++, qname, RrType::kA,
                                        /*dnssec_ok=*/true);
    ex = simnet::exchange(network_, source_, resolver, query, retry_);
    queries_ += ex.attempts;
    attempts += ex.attempts;
    if (!ex.response || !simnet::transient_servfail(*ex.response)) break;
  }
  observation.attempts = attempts;
  observation.latency = network_.clock().now() - start;
  observation.timed_out = ex.timed_out;
  if (ex.timed_out) ++probe_timeouts_;
  const auto& response = ex.response;
  if (!response) return observation;
  observation.responsive = true;
  observation.rcode = response->header.rcode;
  observation.ad = response->header.ad;
  observation.ra = response->header.ra;
  if (response->edns) {
    if (const auto ede = response->edns->ede()) {
      observation.ede = ede->info_code;
      observation.ede_text = ede->extra_text;
    }
  }
  return observation;
}

ResolverProbeResult ResolverProber::probe(const simnet::IpAddress& resolver,
                                          const std::string& token) {
  ResolverProbeResult result;
  // Flow-key the probe on its (unique) token, so this resolver's loss and
  // jitter draws are independent of the rest of the population sweep.
  network_.set_flow(simtime::fnv1a(token));
  probe_timeouts_ = 0;
  const simtime::Duration start = network_.clock().now();
  const simtime::QueueCounters queue_before = network_.queue_counters();
  const auto finish = [&] {
    result.timeouts = probe_timeouts_;
    result.elapsed = network_.clock().now() - start;
    const simtime::QueueCounters& queue_after = network_.queue_counters();
    result.queue_wait = simtime::Duration::from_ns(
        static_cast<std::int64_t>(queue_after.wait_ns - queue_before.wait_ns));
    result.queue_drops = queue_after.dropped - queue_before.dropped;
  };

  const auto name_in = [&](const testbed::ProbeZone& spec,
                           bool wildcard) -> Name {
    // <token>.wc.<zone> hits the wildcard (NOERROR path);
    // <token>.nx.<zone> elicits NXDOMAIN (DESIGN.md §4).
    const auto branch = spec.apex.prepended(wildcard ? "wc" : "nx");
    return *branch->prepended(token);
  };

  const testbed::ProbeZone* valid = nullptr;
  const testbed::ProbeZone* expired = nullptr;
  const testbed::ProbeZone* item7 = nullptr;
  std::vector<const testbed::ProbeZone*> its;
  for (const auto& spec : specs_) {
    if (spec.label == "valid") valid = &spec;
    else if (spec.label == "expired") expired = &spec;
    else if (spec.label == "it-2501-expired") item7 = &spec;
    else its.push_back(&spec);
  }

  // Validator detection (§4.2): NOERROR+AD for valid, SERVFAIL for expired.
  if (valid) result.valid_zone = ask(resolver, name_in(*valid, true));
  if (expired) result.expired_zone = ask(resolver, name_in(*expired, true));
  result.responsive = result.valid_zone.responsive;
  result.timed_out = result.valid_zone.timed_out;
  result.validator = result.valid_zone.responsive &&
                     result.valid_zone.rcode == Rcode::kNoError &&
                     result.valid_zone.ad &&
                     result.expired_zone.rcode == Rcode::kServFail;
  if (!result.validator) {
    finish();
    return result;
  }

  // The it-N sweep.
  std::sort(its.begin(), its.end(),
            [](const testbed::ProbeZone* a, const testbed::ProbeZone* b) {
              return a->iterations < b->iterations;
            });
  for (const auto* spec : its) {
    const ZoneObservation observation =
        ask(resolver, name_in(*spec, false));
    result.sweep.emplace(spec->iterations, observation);

    if (!observation.responsive) {
      // No answer is not an RCODE: record the "stop answering" onset
      // instead of letting the default SERVFAIL pollute the inference.
      if (observation.timed_out && !result.first_timeout)
        result.first_timeout = spec->iterations;
      continue;
    }
    if (observation.rcode == Rcode::kServFail) {
      if (!result.first_servfail) {
        result.first_servfail = spec->iterations;
        if (observation.ede) result.limit_ede = observation.ede;
      }
    } else if (observation.rcode == Rcode::kNxDomain) {
      if (observation.ad) {
        result.last_secure = spec->iterations;
      } else if (!result.first_insecure) {
        result.first_insecure = spec->iterations;
        if (observation.ede && !result.limit_ede)
          result.limit_ede = observation.ede;
      }
    }
  }

  // Inference. The probed grid is dense enough (§4.2) that the value just
  // below the onset is the enforced limit.
  const auto probed_below = [&](std::uint16_t onset) -> std::uint16_t {
    std::uint16_t below = 0;
    for (const auto& [n, obs] : result.sweep) {
      if (n < onset) below = n;
    }
    return below;
  };
  if (result.first_servfail) {
    result.implements_item8 = true;
    result.servfail_limit = probed_below(*result.first_servfail);
  }
  if (result.first_insecure &&
      (!result.first_servfail ||
       *result.first_insecure < *result.first_servfail)) {
    result.implements_item6 = true;
    result.insecure_limit = probed_below(*result.first_insecure);
  }
  result.item12_gap = result.implements_item6 && result.implements_item8 &&
                      *result.first_insecure < *result.first_servfail;

  // Item 7: a validator that returns insecure responses above a limit must
  // still SERVFAIL it-2501-expired (expired NSEC3 signatures).
  if (result.implements_item6 && item7) {
    result.item7_zone = ask(resolver, name_in(*item7, false));
    result.item7_violation =
        result.item7_zone.rcode == Rcode::kNxDomain;
  }
  finish();
  return result;
}

}  // namespace zh::scanner
