#include "scanner/scan_flow.hpp"

#include <cstdio>

namespace zh::scanner {
namespace {

using dns::Name;
using dns::Rcode;
using dns::RrType;

}  // namespace

DomainScanFlow::DomainScanFlow(Name apex, ProbeTokenSource token_source)
    : apex_(std::move(apex)), token_source_(std::move(token_source)) {
  result_.apex = apex_;
  done_ = false;
  step_ = Step::kDnskey;
  pending_ = FlowQuery{apex_, RrType::kDnskey, /*cd=*/true};
}

void DomainScanFlow::feed(const FlowOutcome& outcome) {
  if (outcome.timed_out) ++timeouts_;
  switch (step_) {
    case Step::kDnskey: {
      // 1. DNSKEY.
      if (!outcome.response) {
        result_.timed_out = outcome.timed_out;
        finish();  // kUnresponsive
        return;
      }
      result_.dnskey =
          !outcome.response->answers_with(RrType::kDnskey).empty();
      if (!result_.dnskey) {
        result_.classification = DomainScanResult::Class::kNoDnssec;
        finish();
        return;
      }
      step_ = Step::kNsec3Param;
      pending_ = FlowQuery{apex_, RrType::kNsec3Param, /*cd=*/true};
      return;
    }
    case Step::kNsec3Param: {
      // 2. NSEC3PARAM + NS.
      if (outcome.response) {
        const auto params =
            outcome.response->answers_with(RrType::kNsec3Param);
        result_.nsec3param_count = params.size();
        if (result_.nsec3param_count == 1) {
          result_.nsec3param = params.front().as<dns::Nsec3ParamRdata>();
        }
      }
      step_ = Step::kNs;
      pending_ = FlowQuery{apex_, RrType::kNs, /*cd=*/true};
      return;
    }
    case Step::kNs: {
      if (outcome.response) {
        for (const auto& rr :
             outcome.response->answers_with(RrType::kNs)) {
          if (const auto ns = rr.as<dns::NsRdata>())
            result_.ns_names.push_back(ns->nsdname);
        }
      }
      // 3. Negative probe: a random subdomain triggers either an NXDOMAIN
      //    or a wildcard expansion — both carry NSEC3 records when the zone
      //    has them. Fixed-width token: NSEC3 hashing cost depends on the
      //    name's length, so a padded counter keeps per-scan service time
      //    independent of how many scans ran before (a worker-count and
      //    engine invariance requirement).
      char token[24];
      std::snprintf(token, sizeof token, "zz-scan-%08llu",
                    static_cast<unsigned long long>(token_source_()));
      step_ = Step::kNegativeProbe;
      pending_ = FlowQuery{*apex_.prepended(token), RrType::kA, /*cd=*/true};
      return;
    }
    case Step::kNegativeProbe: {
      if (outcome.response) {
        const auto& negative = *outcome.response;
        Nsec3Observation observation;
        bool first = true;
        std::size_t nsec3_records = 0;
        for (const auto& section : {negative.authorities, negative.answers}) {
          for (const auto& rr : section) {
            if (rr.type == RrType::kNsec) result_.nsec_seen = true;
            if (rr.type != RrType::kNsec3) continue;
            const auto rdata = rr.as<dns::Nsec3Rdata>();
            if (!rdata) continue;
            ++nsec3_records;
            if (first) {
              observation.iterations = rdata->iterations;
              observation.salt = rdata->salt;
              first = false;
            } else if (rdata->iterations != observation.iterations ||
                       rdata->salt != observation.salt) {
              observation.records_consistent = false;  // RFC 5155 violation
            }
            if (rdata->opt_out()) observation.opt_out = true;
          }
        }
        if (nsec3_records > 0) {
          if (result_.nsec3param) {
            observation.matches_nsec3param =
                result_.nsec3param->iterations == observation.iterations &&
                result_.nsec3param->salt == observation.salt;
          }
          result_.nsec3 = std::move(observation);
        }
      }

      // 4. Classification per §4.1.
      if (result_.nsec3param_count > 1) {
        result_.classification = DomainScanResult::Class::kExcluded;
      } else if (result_.nsec3param_count == 1 && result_.nsec3 &&
                 result_.nsec3->records_consistent &&
                 result_.nsec3->matches_nsec3param) {
        result_.classification = DomainScanResult::Class::kNsec3Enabled;
      } else if (result_.nsec3param_count == 1 || result_.nsec3) {
        // NSEC3 machinery present but inconsistent / half-visible.
        result_.classification = DomainScanResult::Class::kExcluded;
      } else {
        result_.classification = DomainScanResult::Class::kDnssecNoNsec3;
      }
      finish();
      return;
    }
  }
}

ProbeFlow::ProbeFlow(const std::vector<testbed::ProbeZone>* specs,
                     std::string token)
    : token_(std::move(token)) {
  for (const auto& spec : *specs) {
    if (spec.label == "valid") valid_ = &spec;
    else if (spec.label == "expired") expired_ = &spec;
    else if (spec.label == "it-2501-expired") item7_ = &spec;
    else its_.push_back(&spec);
  }
  std::sort(its_.begin(), its_.end(),
            [](const testbed::ProbeZone* a, const testbed::ProbeZone* b) {
              return a->iterations < b->iterations;
            });
  done_ = false;
  enter_valid();
}

Name ProbeFlow::name_in(const testbed::ProbeZone& spec, bool wildcard) const {
  // <token>.wc.<zone> hits the wildcard (NOERROR path);
  // <token>.nx.<zone> elicits NXDOMAIN (DESIGN.md §4).
  const auto branch = spec.apex.prepended(wildcard ? "wc" : "nx");
  return *branch->prepended(token_);
}

ZoneObservation ProbeFlow::to_observation(const FlowOutcome& outcome) {
  ZoneObservation observation;
  observation.attempts = outcome.attempts;
  observation.latency = outcome.latency;
  observation.timed_out = outcome.timed_out;
  const auto& response = outcome.response;
  if (!response) return observation;
  observation.responsive = true;
  observation.rcode = response->header.rcode;
  observation.ad = response->header.ad;
  observation.ra = response->header.ra;
  if (response->edns) {
    if (const auto ede = response->edns->ede()) {
      observation.ede = ede->info_code;
      observation.ede_text = ede->extra_text;
    }
  }
  return observation;
}

void ProbeFlow::feed(const FlowOutcome& outcome) {
  if (outcome.timed_out) ++timeouts_;
  const ZoneObservation observation = to_observation(outcome);
  switch (stage_) {
    case Stage::kValid:
      result_.valid_zone = observation;
      enter_expired();
      return;
    case Stage::kExpired:
      result_.expired_zone = observation;
      enter_sweep();
      return;
    case Stage::kSweep:
      record_sweep(*its_[sweep_index_], observation);
      ++sweep_index_;
      enter_sweep_step();
      return;
    case Stage::kItem7:
      // Item 7: a validator that returns insecure responses above a limit
      // must still SERVFAIL it-2501-expired (expired NSEC3 signatures).
      result_.item7_zone = observation;
      result_.item7_violation = observation.rcode == Rcode::kNxDomain;
      finish();
      return;
  }
}

void ProbeFlow::enter_valid() {
  stage_ = Stage::kValid;
  if (valid_) {
    pending_ = FlowQuery{name_in(*valid_, true), RrType::kA, /*cd=*/false};
    return;
  }
  enter_expired();
}

void ProbeFlow::enter_expired() {
  stage_ = Stage::kExpired;
  if (expired_) {
    pending_ = FlowQuery{name_in(*expired_, true), RrType::kA, /*cd=*/false};
    return;
  }
  enter_sweep();
}

void ProbeFlow::enter_sweep() {
  // Validator detection (§4.2): NOERROR+AD for valid, SERVFAIL for expired.
  result_.responsive = result_.valid_zone.responsive;
  result_.timed_out = result_.valid_zone.timed_out;
  result_.validator = result_.valid_zone.responsive &&
                      result_.valid_zone.rcode == Rcode::kNoError &&
                      result_.valid_zone.ad &&
                      result_.expired_zone.rcode == Rcode::kServFail;
  if (!result_.validator) {
    finish();
    return;
  }
  stage_ = Stage::kSweep;
  sweep_index_ = 0;
  enter_sweep_step();
}

void ProbeFlow::enter_sweep_step() {
  if (sweep_index_ < its_.size()) {
    pending_ = FlowQuery{name_in(*its_[sweep_index_], false), RrType::kA,
                         /*cd=*/false};
    return;
  }
  infer_limits();
  if (result_.implements_item6 && item7_) {
    stage_ = Stage::kItem7;
    pending_ = FlowQuery{name_in(*item7_, false), RrType::kA, /*cd=*/false};
    return;
  }
  finish();
}

void ProbeFlow::record_sweep(const testbed::ProbeZone& spec,
                             const ZoneObservation& observation) {
  result_.sweep.emplace(spec.iterations, observation);

  if (!observation.responsive) {
    // No answer is not an RCODE: record the "stop answering" onset
    // instead of letting the default SERVFAIL pollute the inference.
    if (observation.timed_out && !result_.first_timeout)
      result_.first_timeout = spec.iterations;
    return;
  }
  if (observation.rcode == Rcode::kServFail) {
    if (!result_.first_servfail) {
      result_.first_servfail = spec.iterations;
      if (observation.ede) result_.limit_ede = observation.ede;
    }
  } else if (observation.rcode == Rcode::kNxDomain) {
    if (observation.ad) {
      result_.last_secure = spec.iterations;
    } else if (!result_.first_insecure) {
      result_.first_insecure = spec.iterations;
      if (observation.ede && !result_.limit_ede)
        result_.limit_ede = observation.ede;
    }
  }
}

void ProbeFlow::infer_limits() {
  // Inference. The probed grid is dense enough (§4.2) that the value just
  // below the onset is the enforced limit.
  const auto probed_below = [&](std::uint16_t onset) -> std::uint16_t {
    std::uint16_t below = 0;
    for (const auto& [n, obs] : result_.sweep) {
      if (n < onset) below = n;
    }
    return below;
  };
  if (result_.first_servfail) {
    result_.implements_item8 = true;
    result_.servfail_limit = probed_below(*result_.first_servfail);
  }
  if (result_.first_insecure &&
      (!result_.first_servfail ||
       *result_.first_insecure < *result_.first_servfail)) {
    result_.implements_item6 = true;
    result_.insecure_limit = probed_below(*result_.first_insecure);
  }
  result_.item12_gap = result_.implements_item6 && result_.implements_item8 &&
                       *result_.first_insecure < *result_.first_servfail;
}

}  // namespace zh::scanner
