#include "scanner/process.hpp"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <map>

#include "crypto/cost_meter.hpp"
#include "scanner/serialize.hpp"

namespace zh::scanner {
namespace {

/// Loads + decodes one artefact file as kind T; returns 1 on tag/kind
/// mismatch ("skip"), 0 on success, -1 on failure (error set).
template <typename Artefact>
int load_artefact(const std::string& path, ArtefactKind want_kind,
                  const std::string& tag, Artefact& out, std::string& error) {
  const auto bytes = analysis::read_bytes_file(path);
  if (!bytes) {
    error = path + ": cannot read";
    return -1;
  }
  ArtefactKind kind;
  std::string file_tag;
  analysis::DecodeError decode_error;
  if (!peek_artefact(*bytes, kind, file_tag, decode_error)) {
    error = path + ": " + decode_error.to_string();
    return -1;
  }
  if (kind != want_kind || file_tag != tag) return 1;
  if (!decode_artefact(*bytes, out, decode_error)) {
    error = path + ": " + decode_error.to_string();
    return -1;
  }
  return 0;
}

/// Collects the matching artefacts into a complete, consistent shard set
/// keyed by shard id (every shard 0..of-1 exactly once, same of/jobs).
template <typename Artefact>
bool collect_shards(const std::vector<std::string>& paths,
                    ArtefactKind want_kind, const std::string& tag,
                    std::map<std::uint32_t, Artefact>& out,
                    std::string& error) {
  std::uint32_t of = 0, jobs = 0;
  for (const auto& path : paths) {
    Artefact artefact;
    const int status =
        load_artefact(path, want_kind, tag, artefact, error);
    if (status < 0) return false;
    if (status > 0) continue;  // foreign tag/kind — another call's shard
    if (out.empty()) {
      of = artefact.of;
      jobs = artefact.jobs;
    } else if (artefact.of != of || artefact.jobs != jobs) {
      error = path + ": inconsistent shard set (of=" +
              std::to_string(artefact.of) + "/" + std::to_string(artefact.jobs)
              + " jobs, expected " + std::to_string(of) + "/" +
              std::to_string(jobs) + ")";
      return false;
    }
    if (!out.emplace(artefact.shard, std::move(artefact)).second) {
      error = path + ": duplicate shard " + std::to_string(artefact.shard);
      return false;
    }
  }
  if (out.empty()) {
    error = "no shard artefact matches tag '" + tag + "'";
    return false;
  }
  if (out.size() != of) {
    error = "incomplete shard set for tag '" + tag + "': " +
            std::to_string(out.size()) + " of " + std::to_string(of);
    return false;
  }
  return true;
}

void accumulate(CostTally& into, const CostTally& from) {
  into.sha1_blocks += from.sha1_blocks;
  into.sha2_blocks += from.sha2_blocks;
  into.nsec3_hashes += from.nsec3_hashes;
}

/// Same contract as the in-process engine: the merged result credits the
/// workers' hash work to the calling thread's meter.
void credit_caller(const CostTally& cost) {
  crypto::CostMeter::add_sha1_blocks(cost.sha1_blocks);
  crypto::CostMeter::add_sha2_blocks(cost.sha2_blocks);
  crypto::CostMeter::add_nsec3_hashes(cost.nsec3_hashes);
}

}  // namespace

std::string make_shard_dir(std::string& error) {
  const char* tmpdir = std::getenv("TMPDIR");
  std::string pattern = (tmpdir && *tmpdir) ? tmpdir : "/tmp";
  pattern += "/zh-shards-XXXXXX";
  std::vector<char> buffer(pattern.begin(), pattern.end());
  buffer.push_back('\0');
  if (!mkdtemp(buffer.data())) {
    error = pattern + ": " + std::strerror(errno);
    return {};
  }
  return buffer.data();
}

bool spawn_shard_workers(const std::string& exe,
                         const std::vector<std::string>& args, unsigned procs,
                         const std::string& emit_base, std::string& error) {
  std::vector<pid_t> children;
  children.reserve(procs);
  bool ok = true;
  for (unsigned shard = 0; shard < procs && ok; ++shard) {
    const pid_t pid = fork();
    if (pid < 0) {
      error = std::string("fork: ") + std::strerror(errno);
      ok = false;
      break;
    }
    if (pid == 0) {
      // Worker: never recurse into another process fan-out, never race the
      // parent (or siblings) for a trace file, never print the partial
      // report onto the parent's stdout.
      unsetenv("ZH_PROCS");
      unsetenv("ZH_TRACE");
      const int devnull = open("/dev/null", O_WRONLY);
      if (devnull >= 0) {
        dup2(devnull, STDOUT_FILENO);
        close(devnull);
      }
      std::vector<std::string> worker_args;
      worker_args.push_back(exe);
      worker_args.insert(worker_args.end(), args.begin(), args.end());
      worker_args.push_back("--shard");
      worker_args.push_back(std::to_string(shard));
      worker_args.push_back("--of");
      worker_args.push_back(std::to_string(procs));
      worker_args.push_back("--emit-shard");
      worker_args.push_back(emit_base);
      std::vector<char*> argv;
      argv.reserve(worker_args.size() + 1);
      for (auto& arg : worker_args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      execv(exe.c_str(), argv.data());
      std::fprintf(stderr, "execv %s: %s\n", exe.c_str(),
                   std::strerror(errno));
      _exit(127);
    }
    children.push_back(pid);
  }
  for (std::size_t i = 0; i < children.size(); ++i) {
    int status = 0;
    if (waitpid(children[i], &status, 0) < 0) {
      error = std::string("waitpid: ") + std::strerror(errno);
      ok = false;
    } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      error = "worker " + std::to_string(i) + " " +
              (WIFEXITED(status)
                   ? "exited " + std::to_string(WEXITSTATUS(status))
                   : "died on signal " + std::to_string(WTERMSIG(status)));
      ok = false;
    }
  }
  return ok;
}

bool merge_domain_shards(const std::vector<std::string>& paths,
                         const std::string& tag, ParallelCampaignResult& out,
                         std::string& error) {
  std::map<std::uint32_t, DomainShardArtefact> shards;
  if (!collect_shards(paths, ArtefactKind::kDomainCampaign, tag, shards,
                      error))
    return false;
  out = {};
  for (auto& [shard, artefact] : shards) {
    out.stats.merge(artefact.stats);
    out.records.insert(out.records.end(), artefact.records.begin(),
                       artefact.records.end());
    out.queries_issued += artefact.queries_issued;
    accumulate(out.cost, artefact.cost);
    out.jobs = artefact.of * artefact.jobs;
  }
  // Shards interleave by position, exactly as the thread engine's do.
  std::sort(out.records.begin(), out.records.end(),
            [](const CompactDomainRecord& a, const CompactDomainRecord& b) {
              return a.index < b.index;
            });
  credit_caller(out.cost);
  return true;
}

bool merge_sweep_shards(const std::vector<std::string>& paths,
                        const std::string& tag, ParallelSweepResult& out,
                        std::string& error) {
  std::map<std::uint32_t, SweepShardArtefact> shards;
  if (!collect_shards(paths, ArtefactKind::kResolverSweep, tag, shards,
                      error))
    return false;
  out = {};
  for (auto& [shard, artefact] : shards) {
    out.stats.merge(artefact.stats);
    out.queries_issued += artefact.queries_issued;
    out.population += artefact.population;
    accumulate(out.cost, artefact.cost);
    out.jobs = artefact.of * artefact.jobs;
  }
  credit_caller(out.cost);
  return true;
}

}  // namespace zh::scanner
