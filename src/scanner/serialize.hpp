// Shard-artefact serialisation for multi-process campaigns.
//
// scanner/process.hpp scales the parallel engine past one process (and,
// via copied files, past one machine): each worker process runs shard
// s-of-K and writes its aggregates to a file; the parent decodes and
// merges them through the same merge algebra the in-process engine uses.
// This header defines the canonical byte layout of everything a shard
// must ship — campaign/sweep statistics, per-domain records, the hash-
// work tally — plus the versioned, checksummed artefact envelope.
//
// Format (all integers little-endian, see analysis/serialize.hpp):
//
//   magic "ZHSA" | u16 version | u8 kind (1 = domain, 2 = sweep)
//   | tag string | u32 shard | u32 of | u32 jobs | payload
//   | u64 FNV-1a checksum of every preceding byte
//
// The tag names the campaign within a bench run (benches issue several —
// e.g. one sweep per Figure 3 panel), so --merge-shards can be handed a
// mixed pile of files and pick the right ones. Decoding is strict: any
// truncation, bit flip, version bump or foreign magic yields a typed
// analysis::DecodeError; nothing is ever read out of bounds.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/serialize.hpp"
#include "scanner/campaign.hpp"
#include "scanner/parallel.hpp"
#include "trace/trace.hpp"

namespace zh::scanner {

/// Bumped whenever the byte layout changes; decoders reject other values.
/// v2: RFC 8198/9520 counters appended to both campaign stats payloads.
inline constexpr std::uint16_t kShardFormatVersion = 2;

enum class ArtefactKind : std::uint8_t {
  kDomainCampaign = 1,
  kResolverSweep = 2,
};

/// Everything one worker process contributes to a domain campaign.
struct DomainShardArtefact {
  std::string tag;
  std::uint32_t shard = 0;
  std::uint32_t of = 1;
  /// Worker threads *inside* the process (the artefact covers residues
  /// shard, shard+of, ... of the of×jobs-way global partition).
  std::uint32_t jobs = 1;
  DomainCampaignStats stats;
  std::vector<CompactDomainRecord> records;
  std::uint64_t queries_issued = 0;
  CostTally cost;
};

/// Everything one worker process contributes to a resolver sweep.
struct SweepShardArtefact {
  std::string tag;
  std::uint32_t shard = 0;
  std::uint32_t of = 1;
  std::uint32_t jobs = 1;
  ResolverSweepStats stats;
  std::uint64_t queries_issued = 0;
  std::size_t population = 0;
  CostTally cost;
};

// Per-type codecs (composable; the envelope functions below use them).
void encode(analysis::Encoder& enc, const trace::StageTotals& totals);
bool decode(analysis::Decoder& dec, trace::StageTotals& out);
void encode(analysis::Encoder& enc, const CostTally& cost);
bool decode(analysis::Decoder& dec, CostTally& out);
void encode(analysis::Encoder& enc, const CompactDomainRecord& record);
bool decode(analysis::Decoder& dec, CompactDomainRecord& out);
void encode(analysis::Encoder& enc,
            const std::vector<CompactDomainRecord>& records);
bool decode(analysis::Decoder& dec, std::vector<CompactDomainRecord>& out);
void encode(analysis::Encoder& enc, const DomainCampaignStats& stats);
bool decode(analysis::Decoder& dec, DomainCampaignStats& out);
void encode(analysis::Encoder& enc, const ResolverSweepStats& stats);
bool decode(analysis::Decoder& dec, ResolverSweepStats& out);

/// Serialises a whole artefact (envelope + payload + checksum).
std::vector<std::uint8_t> encode_artefact(const DomainShardArtefact& artefact);
std::vector<std::uint8_t> encode_artefact(const SweepShardArtefact& artefact);

/// Strict full-buffer decode; false ⇒ `error` holds the typed reason and
/// `out` must not be used.
bool decode_artefact(std::span<const std::uint8_t> data,
                     DomainShardArtefact& out, analysis::DecodeError& error);
bool decode_artefact(std::span<const std::uint8_t> data,
                     SweepShardArtefact& out, analysis::DecodeError& error);

/// Reads just the envelope head — enough to route a file to the right
/// decoder. false ⇒ not a (readable) shard artefact.
bool peek_artefact(std::span<const std::uint8_t> data, ArtefactKind& kind,
                   std::string& tag, analysis::DecodeError& error);

}  // namespace zh::scanner
