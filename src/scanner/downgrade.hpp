// The NSEC3 downgrade attack (RFC 5155 §12.1.1, the risk behind RFC 9276
// Items 7 and 12): an on-path attacker rewrites the NSEC3 records in a
// negative response to advertise a huge iteration count. A resolver that
// trusts the advertised count without verifying the records' RRSIGs
// (Item 7 violation) downgrades the response to insecure — DNSSEC is
// disabled and a follow-up spoof goes unnoticed. A compliant resolver
// verifies first, detects the forgery and fails closed (SERVFAIL).
#pragma once

#include <cstdint>

#include "dns/name.hpp"
#include "simnet/network.hpp"

namespace zh::scanner {

/// Builds a tamper hook that rewrites every NSEC3 record below `zone` to
/// claim `iterations` additional iterations (leaving the — now invalid —
/// signatures in place).
simnet::TamperHook make_downgrade_attacker(dns::Name zone,
                                           std::uint16_t iterations);

}  // namespace zh::scanner
