// Zone enumeration attacks — the threat NSEC3 was designed against (§2.2)
// and the reason RFC 9276 judges extra iterations pointless (§2.3):
//
//  * NsecWalker: classic zone walking. NSEC records link existing names in
//    canonical order, so querying just past each `next_domain` enumerates
//    the entire zone with one query per name.
//
//  * Nsec3DictionaryAttack: NSEC3 only hides names behind hashes. An
//    attacker harvests the NSEC3 chain (hashes of every existing name) via
//    random-subdomain queries, then hashes a dictionary of likely labels
//    offline. The attacker pays exactly the same per-guess cost the
//    iteration count imposes on validators — and most labels (www, mail,
//    api, …) fall to a small dictionary regardless, which is the paper's
//    argument for zero additional iterations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/message.hpp"
#include "simnet/network.hpp"

namespace zh::scanner {

/// Result of an NSEC zone walk.
struct NsecWalkResult {
  bool complete = false;           // chain closed back to the apex
  std::vector<dns::Name> names;    // enumerated owner names, in chain order
  std::uint64_t queries = 0;
};

/// Walks a zone's NSEC chain through a resolver (or directly at a server).
class NsecWalker {
 public:
  NsecWalker(simnet::Network& network, simnet::IpAddress source,
             simnet::IpAddress resolver);

  /// Enumerates `zone`; stops after `max_steps` to bound runaway chains.
  NsecWalkResult walk(const dns::Name& zone, std::size_t max_steps = 10000);

 private:
  simnet::Network& network_;
  simnet::IpAddress source_;
  simnet::IpAddress resolver_;
  std::uint16_t next_id_ = 1;
};

/// One recovered (hash → name) mapping.
struct CrackedName {
  dns::Name name;
  std::vector<std::uint8_t> hash;
};

/// Result of the NSEC3 harvest + offline dictionary attack.
struct Nsec3AttackResult {
  std::size_t chain_hashes = 0;    // distinct NSEC3 owners harvested
  std::vector<CrackedName> cracked;
  std::uint64_t online_queries = 0;
  std::uint64_t offline_hashes = 0;   // dictionary guesses hashed
  std::uint64_t offline_sha1_blocks = 0;  // attacker CPU spent
  std::uint16_t iterations = 0;    // zone's advertised iteration count
  std::vector<std::uint8_t> salt;
};

/// Harvests a zone's NSEC3 chain, then cracks it with a label dictionary.
class Nsec3DictionaryAttack {
 public:
  Nsec3DictionaryAttack(simnet::Network& network, simnet::IpAddress source,
                        simnet::IpAddress resolver);

  /// The classic "easily guessable subdomains" wordlist.
  static std::vector<std::string> default_dictionary();

  /// Runs the attack: `harvest_queries` random-subdomain probes to collect
  /// chain links, then offline hashing of `dictionary` labels (+ the apex).
  Nsec3AttackResult run(const dns::Name& zone,
                        const std::vector<std::string>& dictionary,
                        std::size_t harvest_queries = 64);

 private:
  simnet::Network& network_;
  simnet::IpAddress source_;
  simnet::IpAddress resolver_;
  std::uint16_t next_id_ = 1;
  std::uint64_t token_ = 0;
};

}  // namespace zh::scanner
