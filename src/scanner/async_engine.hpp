// ZDNS-class async scan engine: per-query state machines over a simtime
// timer wheel.
//
// The blocking engine interleaves nothing — each scan's waits (lost-packet
// timeouts, RTTs under a latency model) serialize behind every other
// scan's. This engine multiplexes thousands of resolutions over ONE worker
// thread: each item is a resumable task whose logical queries run as an
// explicit state machine (send → await-response → retry/backoff → validate
// → done/timeout); whenever a task must wait, it parks on the hierarchical
// timer wheel (simtime/timer_wheel.hpp) and the engine resumes whichever
// task's deadline comes first.
//
// Determinism and byte-equivalence with the blocking engine rest on three
// properties the simulation already guarantees:
//  * Per-task local timelines. The virtual clock is set() to the task's own
//    time at every resume (the multiplexing pattern Clock::set documents and
//    simnet::concurrent_exchange established), so a task's latencies are
//    what they would have been had it run alone.
//  * Flow-keyed transport. Loss, jitter and service draws are pure functions
//    of (seed, link, flow key, per-flow sequence); Network::FlowState
//    snapshots the sequence cursor so a resumed task continues its own draw
//    stream exactly where it left off, regardless of what other tasks sent
//    in between.
//  * Delta-based accounting. Queue counters and tracer stage totals are
//    snapshotted around each resume and the deltas accrued to the task, so
//    per-item aggregates equal the blocking engine's whole-item deltas.
// The campaign layers then fold per-item results in position order — the
// same order the blocking engine used — making the aggregation itself
// trivially identical. tests/test_async_engine.cpp pins all of this to the
// canonical byte codec.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "dns/arena.hpp"
#include "scanner/scan_flow.hpp"
#include "simnet/network.hpp"
#include "simtime/simtime.hpp"
#include "simtime/timer_wheel.hpp"
#include "trace/trace.hpp"

namespace zh::scanner {

struct AsyncOptions {
  /// Concurrent resolutions in flight (the ZDNS "goroutine count" analog).
  std::size_t max_inflight = 1024;
  /// Client retransmission policy (zdns defaults), same as the blocking
  /// engine's.
  simtime::RetryPolicy retry{};
  /// Timer-wheel tick granularity. Expiries fire at exact deadlines; the
  /// tick only bounds per-advance bucketing work.
  simtime::Duration wheel_tick = simtime::Duration::from_ms(1);
};

/// Per-item aggregates the engine accrues across resumes — exactly the
/// quantities the campaign layers measured around each blocking item.
struct TaskTotals {
  /// Task-local virtual time from admission to settlement.
  simtime::Duration elapsed;
  /// Wire attempts the item spent (== the blocking queries_issued share).
  std::uint64_t queries = 0;
  /// Logical queries whose final exchange exhausted every retransmission.
  std::uint64_t timeouts = 0;
  /// Service-queue waiting accrued during this item's deliveries.
  std::uint64_t queue_wait_ns = 0;
  /// Deliveries shed by a saturated queue during this item.
  std::uint64_t queue_drops = 0;
  /// Tracer stage-time deltas accrued during this item's deliveries.
  trace::StageTotals stages{};
};

/// One logical query as a resumable state machine: retransmission with
/// exponential backoff, UDP→TCP fallback on truncation, and the
/// transient-SERVFAIL re-ask loop — simnet::exchange plus the
/// execute_logical_query round loop, unrolled into park/resume form.
class QueryTask {
 public:
  enum class State : std::uint8_t {
    kIdle,           // no logical query in flight
    kSend,           // about to transmit the next wire attempt
    kAwaitResponse,  // delivered; parked until the response's arrival time
    kRetryBackoff,   // attempt lost; parked until its timeout expires
    kDone,           // settled; outcome ready for the flow
  };

  /// What drive() left behind: parked (resume at wake_at) or settled
  /// (wake_at is the settlement instant; take_outcome() is ready).
  struct Step {
    bool waiting = false;
    simtime::Duration wake_at;
  };

  /// Starts a logical query at `now`; consumes a wire id per round.
  void begin(const FlowQuery& query, simtime::Duration now,
             std::uint16_t& next_id);

  /// Runs the machine from `now` (the caller has already set the clock and
  /// resumed the task's network flow) until it parks or settles. `queries`
  /// advances by every wire attempt, matching the blocking counters.
  Step drive(simnet::Network& network, const simnet::IpAddress& source,
             const simnet::IpAddress& destination,
             const simtime::RetryPolicy& retry, std::uint64_t token,
             std::uint16_t& next_id, std::uint64_t& queries,
             simtime::Duration now);

  State state() const noexcept { return state_; }
  FlowOutcome take_outcome() {
    state_ = State::kIdle;
    return std::move(outcome_);
  }

  /// Per-query scratch for zero-copy parsing (dns::MessageView) on
  /// wire-bytes transports; reset at every begin(). Steady state it holds
  /// one slab, so the reset is a cursor rewind — no heap traffic.
  dns::MonotonicArena& arena() noexcept { return arena_; }

 private:
  void begin_exchange(std::uint16_t& next_id);
  /// Books the finished exchange; starts a transient-SERVFAIL re-ask round
  /// (returns true) or settles the logical query (returns false).
  bool settle(const simtime::RetryPolicy& retry, std::uint16_t& next_id,
              std::uint64_t& queries, bool timed_out, simtime::Duration now);

  State state_ = State::kIdle;
  FlowQuery query_;
  dns::Message wire_;  // current round's message (TCP fallback resends it)
  bool wire_ready_ = false;  // wire_ matches query_; re-asks rewrite the id
  dns::MonotonicArena arena_;
  unsigned round_ = 0;
  unsigned attempt_ = 0;
  unsigned exchange_attempts_ = 0;
  unsigned logical_attempts_ = 0;
  simtime::Duration logical_start_;
  std::optional<dns::Message> response_;
  FlowOutcome outcome_;
};

/// One unit of campaign work for the engine.
template <typename Flow>
struct AsyncItem {
  /// Caller-side identity (e.g. domain index); opaque to the engine.
  std::size_t index = 0;
  /// Network flow key (item identity), as the blocking engine's set_flow.
  std::uint64_t flow_key = 0;
  simnet::IpAddress destination;
  Flow flow;
};

/// Drives up to max_inflight flows concurrently over one network/thread.
/// Flow is a resumable flow (DomainScanFlow, ProbeFlow): pending()/feed().
template <typename Flow>
class AsyncEngine {
 public:
  using Item = AsyncItem<Flow>;
  using MakeItem = std::function<Item(std::size_t position)>;
  using OnComplete =
      std::function<void(std::size_t position, Flow& flow,
                         const TaskTotals& totals)>;

  AsyncEngine(simnet::Network& network, simnet::IpAddress source,
              AsyncOptions options)
      : network_(network),
        source_(std::move(source)),
        options_(options),
        wheel_(options.wheel_tick) {}

  /// Runs `count` items: `make` supplies item `position` when a window slot
  /// frees up; `on_complete` fires in (deterministic) completion order.
  /// Returns the makespan and leaves the clock at the last settlement, like
  /// a blocking sweep would.
  simtime::Duration run(std::size_t count, const MakeItem& make,
                        const OnComplete& on_complete) {
    const simtime::Duration epoch = network_.clock().now();
    wheel_ = simtime::TimerWheel(options_.wheel_tick);
    wheel_.advance(epoch);  // align wheel time with the virtual clock
    tasks_.clear();
    free_slots_.clear();
    next_position_ = 0;
    count_ = count;
    latest_ = epoch;
    if (count == 0) return simtime::Duration{};
    const std::size_t window = std::max<std::size_t>(1, options_.max_inflight);
    while (next_position_ < count && tasks_.size() < window)
      admit(make, epoch);
    // Every parked task holds exactly one armed timer and every admission
    // arms one, so the wheel runs dry exactly when all items settled.
    while (!wheel_.empty()) {
      const simtime::Duration deadline = *wheel_.next_deadline();
      for (const auto& expiry : wheel_.advance(deadline))
        resume(expiry.payload, expiry.deadline, make, on_complete);
    }
    network_.clock().set(latest_);
    return latest_ - epoch;
  }

  /// Wire attempts across all completed items.
  std::uint64_t queries_issued() const noexcept { return queries_; }

 private:
  struct Task {
    std::size_t slot = 0;
    std::size_t position = 0;
    simnet::IpAddress destination;
    Flow flow;
    simnet::FlowState net;
    QueryTask query;
    bool query_inflight = false;
    bool finished = false;
    simtime::Duration started;
    simtime::Duration finish_time;
    TaskTotals totals;
  };

  void admit(const MakeItem& make, simtime::Duration at) {
    Item item = make(next_position_);
    // Reuse a settled task's slot (and its Task allocation, query-message
    // buffers and arena slab) when one is free: the task table stays
    // O(window), not O(items admitted). Slot reuse cannot reorder anything —
    // wheel expiries are ordered by (deadline, arm sequence) and the payload
    // never participates, and a slot is only freed after its last timer
    // fired.
    std::size_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = tasks_.size();
      tasks_.push_back(std::make_unique<Task>());
    }
    Task& task = *tasks_[slot];
    task.slot = slot;
    task.position = next_position_++;
    task.destination = item.destination;
    task.flow = std::move(item.flow);
    task.net = simnet::FlowState{item.flow_key, 0};
    task.query_inflight = false;
    task.finished = false;
    task.started = at;
    task.finish_time = simtime::Duration{};
    task.totals = TaskTotals{};
    // The first resume goes through the wheel too, so admissions interleave
    // deterministically with same-instant completions.
    wheel_.arm(at, slot);
  }

  void resume(std::uint64_t slot, simtime::Duration at, const MakeItem& make,
              const OnComplete& on_complete) {
    Task& task = *tasks_[static_cast<std::size_t>(slot)];
    // Rejoin this task's private timeline and transport-draw stream.
    network_.clock().set(at);
    network_.resume_flow(task.net);
    const simtime::QueueCounters queue_before = network_.queue_counters();
    const trace::StageTotals stages_before = network_.tracer().stages();
    step(task, at);
    const simtime::QueueCounters& queue_after = network_.queue_counters();
    task.totals.queue_wait_ns += queue_after.wait_ns - queue_before.wait_ns;
    task.totals.queue_drops += queue_after.dropped - queue_before.dropped;
    const trace::StageTotals delta =
        trace::stage_delta(network_.tracer().stages(), stages_before);
    for (std::size_t i = 0; i < delta.size(); ++i)
      task.totals.stages[i] += delta[i];
    task.net = network_.flow_state();
    if (!task.finished) return;
    task.totals.elapsed = task.finish_time - task.started;
    if (task.finish_time.nanos() > latest_.nanos())
      latest_ = task.finish_time;
    on_complete(task.position, task.flow, task.totals);
    queries_ += task.totals.queries;
    const simtime::Duration finish_time = task.finish_time;
    free_slots_.push_back(static_cast<std::size_t>(slot));
    // A settled task frees a window slot: admit the next item at this very
    // instant — the async analog of the blocking engine's next iteration.
    if (next_position_ < count_) admit(make, finish_time);
  }

  /// Runs the task inline from `at` until its current logical query parks
  /// on the wheel or the flow settles.
  void step(Task& task, simtime::Duration at) {
    simtime::Duration now = at;
    for (;;) {
      if (!task.query_inflight) {
        const FlowQuery* q = task.flow.pending();
        if (q == nullptr) {
          task.finished = true;
          task.finish_time = now;
          return;
        }
        task.query.begin(*q, now, next_id_);
        task.query_inflight = true;
      }
      const QueryTask::Step s =
          task.query.drive(network_, source_, task.destination,
                           options_.retry, task.slot, next_id_,
                           task.totals.queries, now);
      if (s.waiting) {
        wheel_.arm(s.wake_at, task.slot);
        return;
      }
      now = s.wake_at;  // the instant the logical query settled
      task.query_inflight = false;
      const FlowOutcome outcome = task.query.take_outcome();
      if (outcome.timed_out) ++task.totals.timeouts;
      task.flow.feed(outcome);
    }
  }

  simnet::Network& network_;
  simnet::IpAddress source_;
  AsyncOptions options_;
  simtime::TimerWheel wheel_;
  std::vector<std::unique_ptr<Task>> tasks_;  // slot-indexed, stable ids
  std::vector<std::size_t> free_slots_;       // settled slots ready for reuse
  std::size_t next_position_ = 0;
  std::size_t count_ = 0;
  simtime::Duration latest_;
  std::uint16_t next_id_ = 1;
  std::uint64_t queries_ = 0;
};

}  // namespace zh::scanner
