#include "scanner/downgrade.hpp"

#include "dns/rdata.hpp"

namespace zh::scanner {

simnet::TamperHook make_downgrade_attacker(dns::Name zone,
                                           std::uint16_t iterations) {
  return [zone = std::move(zone), iterations](
             dns::Message& response, const simnet::IpAddress& /*from*/,
             const simnet::IpAddress& /*to*/) {
    bool touched = false;
    for (auto* section : {&response.authorities, &response.answers}) {
      for (auto& rr : *section) {
        if (rr.type != dns::RrType::kNsec3) continue;
        if (!rr.name.is_subdomain_of(zone)) continue;
        auto rdata = rr.as<dns::Nsec3Rdata>();
        if (!rdata || rdata->iterations >= iterations) continue;
        rdata->iterations = iterations;
        rr.rdata = rdata->encode();
        touched = true;
      }
    }
    return touched;
  };
}

}  // namespace zh::scanner
