#include "scanner/zone_walker.hpp"

#include <algorithm>
#include <set>

#include "crypto/cost_meter.hpp"
#include "dns/dnssec.hpp"

namespace zh::scanner {
namespace {

using dns::Message;
using dns::Name;
using dns::RrType;

/// Sends one CD query and returns the response.
std::optional<Message> ask(simnet::Network& network,
                           const simnet::IpAddress& source,
                           const simnet::IpAddress& resolver,
                           std::uint16_t id, const Name& qname, RrType type) {
  Message query = Message::make_query(id, qname, type, /*dnssec_ok=*/true);
  query.header.cd = true;  // attackers do not care about validation
  return network.send(source, resolver, query);
}

/// The name that sorts canonically *just after* `name`: append a label of
/// a single 0x00-ish byte ("\000" is awkward in labels, "-" sorts early
/// enough for our ASCII label universe).
Name just_after(const Name& name) {
  const auto child = name.prepended("-");
  return child ? *child : name;
}

}  // namespace

NsecWalker::NsecWalker(simnet::Network& network, simnet::IpAddress source,
                       simnet::IpAddress resolver)
    : network_(network), source_(source), resolver_(resolver) {}

NsecWalkResult NsecWalker::walk(const Name& zone, std::size_t max_steps) {
  NsecWalkResult result;
  std::set<std::string> seen;

  Name cursor = zone;
  for (std::size_t step = 0; step < max_steps; ++step) {
    // Query a name just past the cursor: the denial (or the NSEC at the
    // cursor itself) reveals the next existing name.
    const auto response = ask(network_, source_, resolver_, next_id_++,
                              just_after(cursor), RrType::kA);
    ++result.queries;
    if (!response) return result;

    // Find the NSEC whose owner is the cursor (or covering it).
    const Name* next = nullptr;
    dns::NsecRdata nsec;
    for (const auto& rr : response->authorities) {
      if (rr.type != RrType::kNsec) continue;
      const auto rdata = rr.as<dns::NsecRdata>();
      if (!rdata) continue;
      nsec = *rdata;
      next = &nsec.next_domain;
      // Prefer the record owned by our cursor (covering proof).
      if (rr.name.equals(cursor)) break;
    }
    if (!next) return result;

    const std::string key = next->canonical().to_string();
    if (!seen.insert(key).second) {
      // Chain closed (wrapped back to a name we already saw).
      result.complete = next->equals(zone) || !result.names.empty();
      return result;
    }
    result.names.push_back(*next);
    if (next->equals(zone)) {
      result.complete = true;  // wrapped to the apex
      return result;
    }
    cursor = *next;
  }
  return result;
}

Nsec3DictionaryAttack::Nsec3DictionaryAttack(simnet::Network& network,
                                             simnet::IpAddress source,
                                             simnet::IpAddress resolver)
    : network_(network), source_(source), resolver_(resolver) {}

std::vector<std::string> Nsec3DictionaryAttack::default_dictionary() {
  return {"www",   "mail",  "api",    "ftp",   "ns1",   "ns2",
          "smtp",  "imap",  "pop",    "web",   "dev",   "staging",
          "test",  "vpn",   "cdn",    "blog",  "shop",  "admin",
          "portal","app",   "m",      "wc",    "host",  "git",
          "db",    "mx",    "ns",     "docs",  "news",  "static"};
}

Nsec3AttackResult Nsec3DictionaryAttack::run(
    const Name& zone, const std::vector<std::string>& dictionary,
    std::size_t harvest_queries) {
  Nsec3AttackResult result;

  // Phase 1 — online: harvest NSEC3 chain links from denial responses.
  // Each NXDOMAIN leaks up to three (owner_hash, next_hash) links.
  std::set<std::vector<std::uint8_t>> hashes;
  bool have_params = false;
  for (std::size_t i = 0; i < harvest_queries; ++i) {
    const auto probe =
        zone.prepended("crack-" + std::to_string(token_++) + "x");
    if (!probe) break;
    const auto response = ask(network_, source_, resolver_, next_id_++,
                              *probe, RrType::kA);
    ++result.online_queries;
    if (!response) continue;
    for (const auto& rr : response->authorities) {
      if (rr.type != RrType::kNsec3) continue;
      const auto rdata = rr.as<dns::Nsec3Rdata>();
      const auto owner_hash = dns::nsec3_owner_hash(rr.name, zone);
      if (!rdata || !owner_hash) continue;
      if (!have_params) {
        result.iterations = rdata->iterations;
        result.salt = rdata->salt;
        have_params = true;
      }
      hashes.insert(*owner_hash);
      hashes.insert(rdata->next_hash);
    }
  }
  result.chain_hashes = hashes.size();
  if (!have_params) return result;

  // Phase 2 — offline: hash dictionary guesses and match against the chain.
  // This is where the attacker pays the per-guess iteration cost — the same
  // cost the zone imposes on every validator, which is why RFC 9276 judges
  // it a bad trade.
  const std::uint64_t blocks_before = crypto::CostMeter::sha1_blocks();
  const auto try_guess = [&](const Name& guess) {
    ++result.offline_hashes;
    const auto hash = dns::nsec3_hash_name(
        guess,
        std::span<const std::uint8_t>(result.salt.data(), result.salt.size()),
        result.iterations);
    if (hashes.count(hash) > 0) {
      result.cracked.push_back(CrackedName{guess, hash});
    }
  };
  try_guess(zone);  // the apex itself is always in the chain
  for (const auto& label : dictionary) {
    const auto guess = zone.prepended(label);
    if (guess) try_guess(*guess);
    // Two-level guesses for wildcard-style layouts (e.g. *.wc.<zone>).
    if (guess) {
      const auto deep = guess->prepended("*");
      if (deep) try_guess(*deep);
    }
  }
  result.offline_sha1_blocks =
      crypto::CostMeter::sha1_blocks() - blocks_before;
  return result;
}

}  // namespace zh::scanner
