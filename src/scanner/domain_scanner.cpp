#include "scanner/domain_scanner.hpp"

namespace zh::scanner {
namespace {

using dns::Message;
using dns::Name;
using dns::RrType;

}  // namespace

DomainScanner::DomainScanner(simnet::Network& network,
                             simnet::IpAddress source,
                             simnet::IpAddress resolver)
    : network_(network), source_(source), resolver_(resolver) {}

std::optional<Message> DomainScanner::query(const Name& qname, RrType type) {
  Message q = Message::make_query(next_id_++, qname, type,
                                  /*dnssec_ok=*/true);
  q.header.cd = true;  // measurement queries bypass upstream validation
  ++queries_;
  return network_.send(source_, resolver_, q);
}

DomainScanResult DomainScanner::scan(const Name& apex) {
  DomainScanResult result;
  result.apex = apex;

  // 1. DNSKEY.
  const auto dnskey_response = query(apex, RrType::kDnskey);
  if (!dnskey_response) return result;  // kUnresponsive
  result.dnskey =
      !dnskey_response->answers_of_type(RrType::kDnskey).empty();
  if (!result.dnskey) {
    result.classification = DomainScanResult::Class::kNoDnssec;
    return result;
  }

  // 2. NSEC3PARAM + NS.
  if (const auto response = query(apex, RrType::kNsec3Param)) {
    const auto params = response->answers_of_type(RrType::kNsec3Param);
    result.nsec3param_count = params.size();
    if (params.size() == 1) {
      result.nsec3param = params.front().as<dns::Nsec3ParamRdata>();
    }
  }
  if (const auto response = query(apex, RrType::kNs)) {
    for (const auto& rr : response->answers_of_type(RrType::kNs)) {
      if (const auto ns = rr.as<dns::NsRdata>())
        result.ns_names.push_back(ns->nsdname);
    }
  }

  // 3. Negative probe: a random subdomain triggers either an NXDOMAIN or a
  //    wildcard expansion — both carry NSEC3 records when the zone has them.
  const Name probe_name = *apex.prepended(
      "zz-scan-" + std::to_string(probe_token_++));
  const auto negative = query(probe_name, RrType::kA);
  if (negative) {
    Nsec3Observation observation;
    bool first = true;
    std::size_t nsec3_records = 0;
    for (const auto& section :
         {negative->authorities, negative->answers}) {
      for (const auto& rr : section) {
        if (rr.type == RrType::kNsec) result.nsec_seen = true;
        if (rr.type != RrType::kNsec3) continue;
        const auto rdata = rr.as<dns::Nsec3Rdata>();
        if (!rdata) continue;
        ++nsec3_records;
        if (first) {
          observation.iterations = rdata->iterations;
          observation.salt = rdata->salt;
          first = false;
        } else if (rdata->iterations != observation.iterations ||
                   rdata->salt != observation.salt) {
          observation.records_consistent = false;  // RFC 5155 violation
        }
        if (rdata->opt_out()) observation.opt_out = true;
      }
    }
    if (nsec3_records > 0) {
      if (result.nsec3param) {
        observation.matches_nsec3param =
            result.nsec3param->iterations == observation.iterations &&
            result.nsec3param->salt == observation.salt;
      }
      result.nsec3 = std::move(observation);
    }
  }

  // 4. Classification per §4.1.
  if (result.nsec3param_count > 1) {
    result.classification = DomainScanResult::Class::kExcluded;
  } else if (result.nsec3param_count == 1 && result.nsec3 &&
             result.nsec3->records_consistent &&
             result.nsec3->matches_nsec3param) {
    result.classification = DomainScanResult::Class::kNsec3Enabled;
  } else if (result.nsec3param_count == 1 || result.nsec3) {
    // NSEC3 machinery present but inconsistent / half-visible.
    result.classification = DomainScanResult::Class::kExcluded;
  } else {
    result.classification = DomainScanResult::Class::kDnssecNoNsec3;
  }
  return result;
}

}  // namespace zh::scanner
