#include "scanner/domain_scanner.hpp"

#include "scanner/scan_flow.hpp"

namespace zh::scanner {

DomainScanner::DomainScanner(simnet::Network& network,
                             simnet::IpAddress source,
                             simnet::IpAddress resolver,
                             simtime::RetryPolicy retry)
    : network_(network),
      source_(source),
      resolver_(resolver),
      retry_(retry) {}

DomainScanResult DomainScanner::scan(const dns::Name& apex) {
  // Flow-key the scan on the apex, so this domain's loss/jitter draws do
  // not depend on how many queries earlier scans issued — the property
  // that keeps sharded campaigns identical for any worker count.
  network_.set_flow(simtime::fnv1a(apex.canonical().to_string()));
  const simtime::Duration start = network_.clock().now();
  DomainScanFlow flow(apex, [this] { return probe_token_++; });
  while (const FlowQuery* q = flow.pending()) {
    flow.feed(execute_logical_query(network_, source_, resolver_, *q, retry_,
                                    next_id_, queries_));
  }
  DomainScanResult result = flow.take_result();
  result.elapsed = network_.clock().now() - start;
  result.timeouts = flow.timeouts();
  return result;
}

}  // namespace zh::scanner
