#include "scanner/domain_scanner.hpp"

#include <algorithm>
#include <cstdio>

#include "simnet/exchange.hpp"

namespace zh::scanner {
namespace {

using dns::Message;
using dns::Name;
using dns::RrType;

}  // namespace

DomainScanner::DomainScanner(simnet::Network& network,
                             simnet::IpAddress source,
                             simnet::IpAddress resolver,
                             simtime::RetryPolicy retry)
    : network_(network),
      source_(source),
      resolver_(resolver),
      retry_(retry) {}

std::optional<Message> DomainScanner::query(const Name& qname, RrType type) {
  // A transient SERVFAIL (upstream loss or resolver deadline, marked with
  // RFC 8914 EDE 22/23) is a transport fate, not a property of the domain:
  // re-ask up to the retry budget so moderate loss cannot flip a
  // classification. Deterministic SERVFAILs pass through on the first try.
  const unsigned rounds = std::max(1u, retry_.attempts);
  simnet::ExchangeOutcome ex;
  for (unsigned round = 0; round < rounds; ++round) {
    Message q = Message::make_query(next_id_++, qname, type,
                                    /*dnssec_ok=*/true);
    q.header.cd = true;  // measurement queries bypass upstream validation
    ex = simnet::exchange(network_, source_, resolver_, q, retry_);
    queries_ += ex.attempts;
    if (!ex.response || !simnet::transient_servfail(*ex.response)) break;
  }
  last_timed_out_ = ex.timed_out;
  if (ex.timed_out) ++scan_timeouts_;
  return ex.response;
}

DomainScanResult DomainScanner::scan(const Name& apex) {
  // Flow-key the scan on the apex, so this domain's loss/jitter draws do
  // not depend on how many queries earlier scans issued — the property
  // that keeps sharded campaigns identical for any worker count.
  network_.set_flow(simtime::fnv1a(apex.canonical().to_string()));
  scan_timeouts_ = 0;
  const simtime::Duration start = network_.clock().now();
  DomainScanResult result = scan_impl(apex);
  result.elapsed = network_.clock().now() - start;
  result.timeouts = scan_timeouts_;
  return result;
}

DomainScanResult DomainScanner::scan_impl(const Name& apex) {
  DomainScanResult result;
  result.apex = apex;

  // 1. DNSKEY.
  const auto dnskey_response = query(apex, RrType::kDnskey);
  if (!dnskey_response) {
    result.timed_out = last_timed_out_;
    return result;  // kUnresponsive
  }
  result.dnskey =
      !dnskey_response->answers_of_type(RrType::kDnskey).empty();
  if (!result.dnskey) {
    result.classification = DomainScanResult::Class::kNoDnssec;
    return result;
  }

  // 2. NSEC3PARAM + NS.
  if (const auto response = query(apex, RrType::kNsec3Param)) {
    const auto params = response->answers_of_type(RrType::kNsec3Param);
    result.nsec3param_count = params.size();
    if (params.size() == 1) {
      result.nsec3param = params.front().as<dns::Nsec3ParamRdata>();
    }
  }
  if (const auto response = query(apex, RrType::kNs)) {
    for (const auto& rr : response->answers_of_type(RrType::kNs)) {
      if (const auto ns = rr.as<dns::NsRdata>())
        result.ns_names.push_back(ns->nsdname);
    }
  }

  // 3. Negative probe: a random subdomain triggers either an NXDOMAIN or a
  //    wildcard expansion — both carry NSEC3 records when the zone has them.
  //    Fixed-width token: NSEC3 hashing cost depends on the name's length,
  //    so a padded counter keeps per-scan service time independent of how
  //    many scans ran before (another worker-count invariance requirement).
  char token[24];
  std::snprintf(token, sizeof token, "zz-scan-%08llu",
                static_cast<unsigned long long>(probe_token_++));
  const Name probe_name = *apex.prepended(token);
  const auto negative = query(probe_name, RrType::kA);
  if (negative) {
    Nsec3Observation observation;
    bool first = true;
    std::size_t nsec3_records = 0;
    for (const auto& section :
         {negative->authorities, negative->answers}) {
      for (const auto& rr : section) {
        if (rr.type == RrType::kNsec) result.nsec_seen = true;
        if (rr.type != RrType::kNsec3) continue;
        const auto rdata = rr.as<dns::Nsec3Rdata>();
        if (!rdata) continue;
        ++nsec3_records;
        if (first) {
          observation.iterations = rdata->iterations;
          observation.salt = rdata->salt;
          first = false;
        } else if (rdata->iterations != observation.iterations ||
                   rdata->salt != observation.salt) {
          observation.records_consistent = false;  // RFC 5155 violation
        }
        if (rdata->opt_out()) observation.opt_out = true;
      }
    }
    if (nsec3_records > 0) {
      if (result.nsec3param) {
        observation.matches_nsec3param =
            result.nsec3param->iterations == observation.iterations &&
            result.nsec3param->salt == observation.salt;
      }
      result.nsec3 = std::move(observation);
    }
  }

  // 4. Classification per §4.1.
  if (result.nsec3param_count > 1) {
    result.classification = DomainScanResult::Class::kExcluded;
  } else if (result.nsec3param_count == 1 && result.nsec3 &&
             result.nsec3->records_consistent &&
             result.nsec3->matches_nsec3param) {
    result.classification = DomainScanResult::Class::kNsec3Enabled;
  } else if (result.nsec3param_count == 1 || result.nsec3) {
    // NSEC3 machinery present but inconsistent / half-visible.
    result.classification = DomainScanResult::Class::kExcluded;
  } else {
    result.classification = DomainScanResult::Class::kDnssecNoNsec3;
  }
  return result;
}

}  // namespace zh::scanner
