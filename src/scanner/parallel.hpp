// Sharded parallel campaign engine.
//
// The paper's pipelines are embarrassingly parallel over their populations
// (ZDNS gets its throughput from exactly this shape: independent resolver
// pipelines feeding a mergeable aggregator), but zh::simnet::Network is
// strictly single-threaded. The engine therefore splits a campaign into K
// deterministic shards, gives each worker thread its *own*
// testbed::Internet (rebuilt from the same spec — construction is a pure
// function of the seed, so every worker sees a byte-identical world), runs
// the shards concurrently, and merges the per-shard aggregates.
//
// Determinism guarantees:
//  * Shard s of K covers the positions j ≡ s (mod K) of the serial visit
//    order, so the union of shards is exactly the serial work list.
//  * Every per-item observation is a pure function of the item (zones,
//    profiles and probe answers derive from (seed, index), never from scan
//    order), and merging is integer-count addition — commutative and
//    associative. Campaign statistics are therefore bit-identical for any
//    jobs value, including 1, and for any merge order.
//  * Simulated loss, latency jitter and service time are flow-keyed: every
//    draw is a pure function of (seed, link, flow key, per-flow sequence),
//    and campaigns key flows on item identity (apex, probe token). One
//    item's transport fate therefore never depends on other items' traffic,
//    and loss/latency-enabled campaigns stay bit-identical across K too.
//
// Cost accounting: crypto::CostMeter is thread-local. The engine snapshots
// each worker's counters and credits the totals back to the calling
// thread's meter, so a Sha1WorkScope around a parallel campaign reports the
// same hash work as the serial run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "scanner/campaign.hpp"
#include "simtime/latency.hpp"
#include "simtime/simtime.hpp"
#include "testbed/internet.hpp"
#include "trace/export.hpp"
#include "workload/resolver_population.hpp"
#include "workload/spec.hpp"

namespace zh::scanner {

/// Per-worker seed, derived splitmix64-style so that neighbouring shard ids
/// yield statistically independent streams.
std::uint64_t shard_seed(std::uint64_t base_seed, std::uint32_t shard_id);

/// `std::thread::hardware_concurrency()`, floored at 1.
unsigned default_jobs();

/// One worker's private world. Destroyed members in reverse order: the
/// resolver detaches before the internet (and its network) goes away.
struct ShardWorld {
  std::unique_ptr<testbed::Internet> internet;
  std::vector<testbed::ProbeZone> probe_zones;
  std::unique_ptr<resolver::RecursiveResolver> scan_resolver;
};

/// Builds one worker's world; invoked *inside* the worker thread so the
/// simnet owner-thread binding lands on the thread that will drive it.
using ShardWorldFactory = std::function<ShardWorld(unsigned shard,
                                                   unsigned jobs)>;

/// The standard factory: probe infrastructure + (optionally) the synthetic
/// domain ecosystem + a scan resolver at 1.1.1.1 — the same world
/// bench_common.hpp builds. The spec is shared read-only across workers and
/// must outlive the campaign. `scan_profile` overrides the scan resolver's
/// profile (default: the historical Cloudflare profile); the bench flags
/// use it to hand every worker an aggressive-cache-enabled resolver.
ShardWorldFactory default_world_factory(
    const workload::EcosystemSpec& spec, bool with_domains = true,
    resolver::ResolverProfile scan_profile =
        resolver::ResolverProfile::cloudflare());

/// Which scan engine drives each worker's shard.
enum class Engine {
  /// One resolution at a time per worker (the historical engine).
  kBlocking,
  /// Per-query state machines over a timer wheel, up to max_inflight
  /// resolutions per worker (scanner/async_engine.hpp). Campaign outputs
  /// are byte-identical to the blocking engine's for the same sharding.
  kAsync,
};

struct ParallelOptions {
  /// Worker count K. 0 means default_jobs().
  unsigned jobs = 1;
  /// Scan engine per worker (campaign outputs are engine-invariant).
  Engine engine = Engine::kBlocking;
  /// Concurrent resolutions per worker when engine == kAsync.
  std::size_t max_inflight = 1024;
  /// Process-level sub-sharding (scanner/process.hpp): this run covers
  /// only the campaign positions j ≡ shard_index (mod shard_count) of the
  /// serial visit order. Worker thread t then covers the global residue
  /// shard_index + shard_count·t of a shard_count·jobs-way partition, so
  /// K processes × J threads tile the work list exactly like one process
  /// at --jobs K·J — which is what keeps process-mode campaigns
  /// bit-identical to in-process ones. Default: the whole campaign.
  unsigned shard_index = 0;
  unsigned shard_count = 1;
  /// Forwarded to DomainCampaign::run_shard.
  std::size_t limit = static_cast<std::size_t>(-1);
  std::size_t stride = 1;
  /// Base seed for per-worker derived seeds (loss RNG).
  std::uint64_t base_seed = 42;
  /// Seed for resolver-population instantiation: deliberately *not* shard-
  /// derived, so every worker instantiates the identical population.
  std::uint64_t population_seed = 7;
  /// Simulated query loss inside each worker's network (0 disables). Loss
  /// draws are flow-keyed on item identity, so results — including which
  /// queries are lost — are bit-identical for any jobs value.
  double loss_probability = 0.0;
  /// Client retransmission policy for scanners and probers (zdns defaults).
  simtime::RetryPolicy retry{};
  /// Per-link latency model installed into each worker's network.
  simtime::LatencyModel latency{};
  /// SHA-1-block service-time model installed into each worker's network.
  simtime::ServiceModel service{};
  /// Default service-queue model installed into each worker's network
  /// (inactive by default). Queue epochs are flow-scoped — set_flow()
  /// resets the live queue state — so per-item observations stay
  /// bit-identical for any jobs value even with queueing on.
  simtime::QueueModel queue{};
  /// Event-tracing configuration applied to each worker's tracer (off by
  /// default — see trace/trace.hpp). Per-shard buffers merge in shard
  /// order into the result's Collector. Raw event streams are per-shard
  /// artefacts: byte-identical for the same (seed, jobs), while the
  /// *aggregated* quantities (stats, stage Ecdfs, per-item records) stay
  /// bit-identical for any jobs value.
  trace::Config trace{};
};

/// Hash work performed by the engine's workers (summed over shards).
struct CostTally {
  std::uint64_t sha1_blocks = 0;
  std::uint64_t sha2_blocks = 0;
  std::uint64_t nsec3_hashes = 0;
};

struct ParallelCampaignResult {
  DomainCampaignStats stats;
  /// All shards' records, re-sorted by domain index (== serial order).
  std::vector<CompactDomainRecord> records;
  std::uint64_t queries_issued = 0;
  CostTally cost;
  unsigned jobs = 1;
  /// Per-shard traces merged in shard order (empty unless options.trace
  /// enabled event tracing; metrics are collected regardless).
  trace::Collector trace;
};

/// Runs the §4.1 domain campaign sharded K ways. Statistics, records and
/// query counts are bit-identical for every K.
ParallelCampaignResult run_domain_campaign_parallel(
    const workload::EcosystemSpec& spec, const ShardWorldFactory& factory,
    const ParallelOptions& options);

struct ParallelSweepResult {
  ResolverSweepStats stats;
  std::uint64_t queries_issued = 0;
  std::size_t population = 0;  // members probed (validators + filtered)
  CostTally cost;
  unsigned jobs = 1;
  /// Per-shard traces merged in shard order (see ParallelCampaignResult).
  trace::Collector trace;
};

/// Runs the §4.2 resolver probing sweep over one Figure 3 panel sharded K
/// ways. Every worker instantiates the identical panel population in its
/// own world (instantiate_panel is deterministic) and probes the members
/// j ≡ shard (mod K); probe tokens are keyed by the member's global index,
/// so query names — and therefore every observation — are K-invariant.
ParallelSweepResult run_resolver_sweep_parallel(
    const workload::PanelSpec& panel, const ShardWorldFactory& factory,
    const std::string& token_prefix, std::uint32_t address_base,
    const ParallelOptions& options);

}  // namespace zh::scanner
