// Resumable measurement flows: the §4.1 domain-scan and §4.2 resolver-probe
// pipelines as explicit state machines over *logical queries*.
//
// Both engines drive the same flow objects:
//   * the blocking engine (DomainScanner::scan, ResolverProber::probe) runs
//     pending() → execute → feed() in a tight loop, exactly reproducing the
//     pre-refactor call sequence byte for byte;
//   * the async engine (scanner/async_engine.hpp) parks a flow whenever its
//     logical query waits on the network and resumes it from a timer-wheel
//     expiry, which is how one worker thread keeps thousands of scans in
//     flight.
// Because classification logic exists once — here — the two engines cannot
// drift apart; the equivalence suite (tests/test_async_engine.cpp) then
// pins the remaining engine-side arithmetic (retry accounting, latency
// deltas) to byte-identical campaign statistics.
//
// A *logical query* is one question with the full client policy applied:
// up to RetryPolicy::attempts wire transmissions with exponential timeouts,
// UDP→TCP fallback on truncation, and the transient-SERVFAIL re-ask loop
// (RFC 8914 EDE 22/23 marks transport fates, not domain properties). The
// flow only sees the settled outcome; how the attempts were scheduled —
// blocking waits or timer-wheel wake-ups — is the engine's business.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dns/message.hpp"
#include "scanner/domain_scanner.hpp"
#include "scanner/resolver_prober.hpp"
#include "simnet/exchange.hpp"
#include "simtime/simtime.hpp"

namespace zh::scanner {

/// The next logical query a flow wants answered.
struct FlowQuery {
  dns::Name qname;
  dns::RrType type = dns::RrType::kA;
  /// Checking-disabled bit (the domain scanner measures *through* the
  /// resolver with CD set; the resolver prober measures the resolver
  /// itself and leaves CD clear).
  bool cd = false;
};

/// The settled outcome of one logical query, fed back into the flow.
struct FlowOutcome {
  std::optional<dns::Message> response;
  /// The final exchange exhausted every retransmission.
  bool timed_out = false;
  /// Wire attempts across all re-ask rounds (TCP fallbacks included).
  unsigned attempts = 0;
  /// Virtual time from the first transmission of the first round to the
  /// settled outcome.
  simtime::Duration latency;
};

/// Executes one logical query synchronously: the blocking engines' driver.
/// Replicates the exchange + transient-SERVFAIL re-ask loop the scanner
/// and prober always used; `next_id` and `queries` are the caller's wire
/// counters (queries advances by every attempt, exactly as before).
inline FlowOutcome execute_logical_query(simnet::Network& network,
                                         const simnet::IpAddress& source,
                                         const simnet::IpAddress& destination,
                                         const FlowQuery& q,
                                         const simtime::RetryPolicy& retry,
                                         std::uint16_t& next_id,
                                         std::uint64_t& queries) {
  FlowOutcome out;
  const unsigned rounds = std::max(1u, retry.attempts);
  const simtime::Duration start = network.clock().now();
  simnet::ExchangeOutcome ex;
  for (unsigned round = 0; round < rounds; ++round) {
    dns::Message query = dns::Message::make_query(next_id++, q.qname, q.type,
                                                  /*dnssec_ok=*/true);
    if (q.cd) query.header.cd = true;
    ex = simnet::exchange(network, source, destination, query, retry);
    queries += ex.attempts;
    out.attempts += ex.attempts;
    if (!ex.response || !simnet::transient_servfail(*ex.response)) break;
  }
  out.response = std::move(ex.response);
  out.timed_out = ex.timed_out;
  out.latency = network.clock().now() - start;
  return out;
}

/// Supplies negative-probe tokens on demand. Passed as a callback so the
/// token counter advances only when a scan actually reaches the probe step
/// — preserving the blocking engine's historical consumption order, while
/// the async engine hands out tokens in (deterministic) completion order.
/// Token *values* influence no campaign statistic: the probe label is
/// fixed-width, so hashing cost is value-independent, and every NSEC3
/// record of a synthetic zone carries the same parameters.
using ProbeTokenSource = std::function<std::uint64_t()>;

/// The §4.1 domain pipeline (DNSKEY → NSEC3PARAM → NS → negative probe →
/// classification) as a resumable flow.
class DomainScanFlow {
 public:
  DomainScanFlow() = default;
  DomainScanFlow(dns::Name apex, ProbeTokenSource token_source);

  /// The next logical query, or nullptr when the scan settled.
  const FlowQuery* pending() const {
    return done_ ? nullptr : &pending_;
  }
  bool done() const noexcept { return done_; }

  /// Feeds the pending query's outcome and advances the pipeline.
  void feed(const FlowOutcome& outcome);

  /// Logical queries whose final exchange timed out, so far.
  unsigned timeouts() const noexcept { return timeouts_; }

  /// The scan result (classification, parameters, NS set). The caller owns
  /// the timeline: elapsed stays zero here.
  DomainScanResult take_result() { return std::move(result_); }

 private:
  enum class Step { kDnskey, kNsec3Param, kNs, kNegativeProbe };

  void finish() { done_ = true; }

  dns::Name apex_;
  ProbeTokenSource token_source_;
  Step step_ = Step::kDnskey;
  bool done_ = true;  // default-constructed flows are inert
  FlowQuery pending_;
  unsigned timeouts_ = 0;
  DomainScanResult result_;
};

/// The §4.2 resolver pipeline (validator detection → it-N sweep → limit
/// inference → Item 7 check) as a resumable flow.
class ProbeFlow {
 public:
  ProbeFlow() = default;
  /// `specs` must outlive the flow (the prober's zone list, shared across
  /// the whole sweep); `token` busts resolver caches per §4.2.
  ProbeFlow(const std::vector<testbed::ProbeZone>* specs, std::string token);

  const FlowQuery* pending() const {
    return done_ ? nullptr : &pending_;
  }
  bool done() const noexcept { return done_; }

  void feed(const FlowOutcome& outcome);

  /// Logical queries whose final exchange timed out, so far.
  std::uint64_t timeouts() const noexcept { return timeouts_; }

  /// The probe result. The caller owns the timeline and the queue-counter
  /// bookkeeping: elapsed / queue_wait / queue_drops / timeouts stay zero
  /// here (ResolverProber::probe and the async engine fill them).
  ResolverProbeResult take_result() { return std::move(result_); }

 private:
  enum class Stage { kValid, kExpired, kSweep, kItem7 };

  dns::Name name_in(const testbed::ProbeZone& spec, bool wildcard) const;
  static ZoneObservation to_observation(const FlowOutcome& outcome);
  void finish() { done_ = true; }
  // Stage transitions: each installs the stage's query, or skips onwards
  // when its zone spec is absent; enter_sweep runs validator detection and
  // enter_sweep_step runs limit inference once the sweep is exhausted.
  void enter_valid();
  void enter_expired();
  void enter_sweep();
  void enter_sweep_step();
  void record_sweep(const testbed::ProbeZone& spec,
                    const ZoneObservation& observation);
  void infer_limits();

  std::string token_;
  const testbed::ProbeZone* valid_ = nullptr;
  const testbed::ProbeZone* expired_ = nullptr;
  const testbed::ProbeZone* item7_ = nullptr;
  std::vector<const testbed::ProbeZone*> its_;
  Stage stage_ = Stage::kValid;
  std::size_t sweep_index_ = 0;
  bool done_ = true;  // default-constructed flows are inert
  FlowQuery pending_;
  std::uint64_t timeouts_ = 0;
  ResolverProbeResult result_;
};

}  // namespace zh::scanner
