#include "scanner/campaign.hpp"

#include <algorithm>
#include <vector>

#include "scanner/async_engine.hpp"
#include "simnet/exchange.hpp"

namespace zh::scanner {
namespace {

/// Registered domain ("operator identity") of a name-server name: its last
/// two labels — the paper aggregates NS records by registered domain even
/// across public suffixes.
std::string operator_identity(const dns::Name& ns_name) {
  if (ns_name.label_count() < 2) return ns_name.to_string();
  return ns_name.ancestor_with_labels(2).canonical().to_string();
}

/// The single operator exclusively serving a domain, or empty.
std::string exclusive_operator(const std::vector<dns::Name>& ns_names) {
  std::string identity;
  for (const auto& ns : ns_names) {
    const std::string op = operator_identity(ns);
    if (identity.empty()) {
      identity = op;
    } else if (identity != op) {
      return {};
    }
  }
  return identity;
}

}  // namespace

DomainCampaign::DomainCampaign(testbed::Internet& internet,
                               const workload::EcosystemSpec& spec,
                               simnet::IpAddress scan_resolver,
                               simnet::IpAddress source,
                               simtime::RetryPolicy retry)
    : internet_(internet),
      spec_(spec),
      scan_resolver_(scan_resolver),
      source_(source),
      retry_(retry),
      scanner_(internet.network(), source, scan_resolver, retry) {}

void DomainCampaign::run(std::size_t limit, std::size_t stride) {
  run_shard(0, 1, limit, stride);
}

void DomainCampaign::warm_tld_caches() {
  if (warmed_) return;
  warmed_ = true;
  simnet::Network& network = internet_.network();
  if (!network.time_models_active()) return;
  std::uint16_t id = 60000;
  for (const auto& tld : spec_.tlds()) {
    network.set_flow(simtime::fnv1a("warm." + tld.label));
    dns::Message query = dns::Message::make_query(
        id++, dns::Name::must_parse(tld.label), dns::RrType::kDnskey,
        /*dnssec_ok=*/true);
    query.header.cd = true;  // same cache partition the scanner uses
    (void)simnet::exchange(network, source_, scan_resolver_, query, retry_);
  }
  // Operator NS hosts too: customer delegations are glueless (the NS names
  // live under <operator>.net, out of bailiwick for the customer's TLD), so
  // the first same-operator domain a resolver sees pays a one-time
  // out-of-band NS address resolution that later domains reuse from the
  // zone cache. Which domain is "first" depends on the sharding — warming
  // the chain here makes every scan a warm-path scan instead.
  for (const auto& op : spec_.operators()) {
    network.set_flow(simtime::fnv1a("warm.op." + op.name));
    dns::Message query = dns::Message::make_query(
        id++, *dns::Name::must_parse(op.name + ".net").prepended("ns1"),
        dns::RrType::kA, /*dnssec_ok=*/true);
    query.header.cd = true;
    (void)simnet::exchange(network, source_, scan_resolver_, query, retry_);
  }
}

void DomainCampaign::run_shard(std::size_t shard, std::size_t shards,
                               std::size_t limit, std::size_t stride) {
  warm_tld_caches();
  // Snapshot the RFC 8198/9520 metrics *after* warming: the warm queries
  // are duplicated per shard, so only scan-attributable hits — which are
  // item-local and therefore shard-sum-invariant — enter the stats.
  trace::Metrics& metrics = internet_.network().tracer().metrics();
  const std::uint64_t synth_before = metrics.value("resolver.neg_synth_hit");
  const std::uint64_t failure_before =
      metrics.value("resolver.failure_cache_hit");
  const std::size_t count = std::min(limit, spec_.domain_count());
  for (std::size_t position = shard;; position += shards) {
    const std::size_t index = position * stride;
    if (index >= count || index / stride != position) break;  // overflow
    const workload::DomainProfile profile = spec_.domain(index);
    const simtime::QueueCounters queue_before =
        internet_.network().queue_counters();
    const trace::StageTotals stages_before =
        internet_.network().tracer().stages();
    const DomainScanResult result = scanner_.scan(profile.apex);
    const simtime::QueueCounters& queue_after =
        internet_.network().queue_counters();
    accumulate_scan(index, result,
                    queue_after.wait_ns - queue_before.wait_ns,
                    queue_after.dropped - queue_before.dropped,
                    trace::stage_delta(internet_.network().tracer().stages(),
                                       stages_before));
  }
  stats_.neg_synth_hits +=
      metrics.value("resolver.neg_synth_hit") - synth_before;
  stats_.failure_cache_hits +=
      metrics.value("resolver.failure_cache_hit") - failure_before;
}

void DomainCampaign::run_shard_async(std::size_t shard, std::size_t shards,
                                     std::size_t limit, std::size_t stride,
                                     std::size_t max_inflight) {
  warm_tld_caches();
  trace::Metrics& metrics = internet_.network().tracer().metrics();
  const std::uint64_t synth_before = metrics.value("resolver.neg_synth_hit");
  const std::uint64_t failure_before =
      metrics.value("resolver.failure_cache_hit");
  const std::size_t count = std::min(limit, spec_.domain_count());
  std::vector<std::size_t> indexes;
  for (std::size_t position = shard;; position += shards) {
    const std::size_t index = position * stride;
    if (index >= count || index / stride != position) break;  // overflow
    indexes.push_back(index);
  }

  AsyncOptions options;
  options.max_inflight = max_inflight;
  options.retry = retry_;
  AsyncEngine<DomainScanFlow> engine(internet_.network(), source_, options);
  struct FinishedScan {
    DomainScanResult result;
    TaskTotals totals;
  };
  std::vector<FinishedScan> finished(indexes.size());
  engine.run(
      indexes.size(),
      [&](std::size_t position) {
        const workload::DomainProfile profile =
            spec_.domain(indexes[position]);
        AsyncItem<DomainScanFlow> item;
        item.index = indexes[position];
        item.flow_key =
            simtime::fnv1a(profile.apex.canonical().to_string());
        item.destination = scan_resolver_;
        item.flow = DomainScanFlow(
            profile.apex, [this] { return async_probe_token_++; });
        return item;
      },
      [&](std::size_t position, DomainScanFlow& flow,
          const TaskTotals& totals) {
        finished[position] = FinishedScan{flow.take_result(), totals};
      });
  async_queries_ += engine.queries_issued();

  // Fold in position order — the blocking loop's order — so stats_ and
  // records_ accumulate through the identical operation sequence.
  for (std::size_t position = 0; position < indexes.size(); ++position) {
    FinishedScan& scan = finished[position];
    scan.result.elapsed = scan.totals.elapsed;
    scan.result.timeouts = static_cast<unsigned>(scan.totals.timeouts);
    accumulate_scan(indexes[position], scan.result,
                    scan.totals.queue_wait_ns, scan.totals.queue_drops,
                    scan.totals.stages);
  }
  stats_.neg_synth_hits +=
      metrics.value("resolver.neg_synth_hit") - synth_before;
  stats_.failure_cache_hits +=
      metrics.value("resolver.failure_cache_hit") - failure_before;
}

void DomainCampaign::accumulate_scan(std::size_t index,
                                     const DomainScanResult& result,
                                     std::uint64_t queue_wait_ns,
                                     std::uint64_t queue_drops,
                                     const trace::StageTotals&
                                         stage_delta_ns) {
  ++stats_.scanned;
  stats_.scan_latency_us.add(result.elapsed.micros());
  stats_.timeouts += result.timeouts;
  stats_.queue_delay_us.add(static_cast<std::int64_t>(queue_wait_ns / 1000));
  stats_.queue_drops += queue_drops;
  stats_.add_stages(stage_delta_ns);
  CompactDomainRecord record;
  record.index = static_cast<std::uint32_t>(index);
  record.classification = result.classification;

  if (result.dnskey) ++stats_.dnssec;
  if (result.classification == DomainScanResult::Class::kExcluded)
    ++stats_.excluded;

  if (result.classification == DomainScanResult::Class::kNsec3Enabled) {
    ++stats_.nsec3;
    const auto& nsec3 = *result.nsec3;
    record.iterations = nsec3.iterations;
    record.salt_len = static_cast<std::uint8_t>(
        std::min<std::size_t>(nsec3.salt.size(), 255));
    record.opt_out = nsec3.opt_out;

    stats_.iterations.add(nsec3.iterations);
    stats_.salt_len.add(static_cast<std::int64_t>(nsec3.salt.size()));
    if (nsec3.iterations == 0) ++stats_.zero_iterations;
    if (nsec3.salt.empty()) ++stats_.no_salt;
    if (nsec3.iterations == 0 && nsec3.salt.empty()) ++stats_.fully_compliant;
    if (nsec3.opt_out) ++stats_.opt_out;
    if (nsec3.iterations > 150) ++stats_.over_150_iterations;
    if (nsec3.iterations == 500) ++stats_.at_500_iterations;
    if (nsec3.salt.size() > 10) ++stats_.salt_over_10;
    if (nsec3.salt.size() > 45) ++stats_.salt_over_45;
    if (nsec3.salt.size() == 160) ++stats_.salt_at_160;

    const std::string op = exclusive_operator(result.ns_names);
    if (!op.empty()) {
      stats_.operators.add(op);
      stats_.operator_params[op].add(std::to_string(nsec3.iterations) + "/" +
                                     std::to_string(nsec3.salt.size()));
    }
  }
  by_index_[record.index] = records_.size();
  records_.push_back(record);
}

void DomainCampaignStats::merge(const DomainCampaignStats& other) {
  scanned += other.scanned;
  dnssec += other.dnssec;
  nsec3 += other.nsec3;
  excluded += other.excluded;
  iterations.merge(other.iterations);
  salt_len.merge(other.salt_len);
  zero_iterations += other.zero_iterations;
  no_salt += other.no_salt;
  fully_compliant += other.fully_compliant;
  opt_out += other.opt_out;
  over_150_iterations += other.over_150_iterations;
  at_500_iterations += other.at_500_iterations;
  salt_over_10 += other.salt_over_10;
  salt_over_45 += other.salt_over_45;
  salt_at_160 += other.salt_at_160;
  operators.merge(other.operators);
  for (const auto& [op, params] : other.operator_params)
    operator_params[op].merge(params);
  scan_latency_us.merge(other.scan_latency_us);
  timeouts += other.timeouts;
  queue_delay_us.merge(other.queue_delay_us);
  queue_drops += other.queue_drops;
  stage_resolve_us.merge(other.stage_resolve_us);
  stage_recurse_us.merge(other.stage_recurse_us);
  stage_validate_us.merge(other.stage_validate_us);
  stage_queue_wait_us.merge(other.stage_queue_wait_us);
  neg_synth_hits += other.neg_synth_hits;
  failure_cache_hits += other.failure_cache_hits;
}

void DomainCampaignStats::add_stages(const trace::StageTotals& delta_ns) {
  const auto us = [&delta_ns](trace::Stage stage) {
    return delta_ns[static_cast<std::size_t>(stage)] / 1000;
  };
  stage_resolve_us.add(us(trace::Stage::kResolve));
  stage_recurse_us.add(us(trace::Stage::kRecurse));
  stage_validate_us.add(us(trace::Stage::kValidate));
  stage_queue_wait_us.add(us(trace::Stage::kQueueWait));
}

const CompactDomainRecord* DomainCampaign::record_for(
    std::size_t index) const {
  const auto it = by_index_.find(static_cast<std::uint32_t>(index));
  return it == by_index_.end() ? nullptr : &records_[it->second];
}

TldCensusStats scan_tlds(testbed::Internet& internet,
                         const workload::EcosystemSpec& spec,
                         simnet::IpAddress scan_resolver) {
  TldCensusStats stats;
  DomainScanner scanner(internet.network(),
                        simnet::IpAddress::v4(203, 0, 113, 251),
                        scan_resolver);
  for (const auto& tld : spec.tlds()) {
    const DomainScanResult result =
        scanner.scan(dns::Name::must_parse(tld.label));
    ++stats.scanned;
    if (result.dnskey) ++stats.dnssec;
    if (result.classification != DomainScanResult::Class::kNsec3Enabled)
      continue;
    ++stats.nsec3;
    const auto& nsec3 = *result.nsec3;
    stats.iterations.add(nsec3.iterations);
    if (nsec3.iterations == 0) ++stats.zero_iterations;
    if (nsec3.iterations == 100) ++stats.at_100_iterations;
    if (nsec3.salt.empty()) ++stats.no_salt;
    if (nsec3.salt.size() == 8) ++stats.salt_8;
    if (nsec3.salt.size() == 10) ++stats.salt_10;
    if (nsec3.opt_out) ++stats.opt_out;
  }
  return stats;
}

void ResolverSweepStats::add(const ResolverProbeResult& result) {
  ++probed;
  probe_latency_us.add(result.elapsed.micros());
  timeouts += result.timeouts;
  queue_delay_us.add(result.queue_wait.micros());
  queue_drops += result.queue_drops;
  if (!result.validator) return;
  ++validators;
  if (result.first_timeout) ++stop_answering;

  for (const auto& [iterations, observation] : result.sweep) {
    RcodeShares& shares = by_iteration[iterations];
    ++shares.total;
    if (!observation.responsive) {
      if (observation.timed_out) ++shares.timeouts;
    } else if (observation.rcode == dns::Rcode::kNxDomain) {
      ++shares.nxdomain;
      if (observation.ad) ++shares.nxdomain_ad;
    } else if (observation.rcode == dns::Rcode::kServFail) {
      ++shares.servfail;
    }
  }
  if (result.implements_item6) {
    ++item6;
    if (result.insecure_limit) ++insecure_limits[*result.insecure_limit];
  }
  if (result.implements_item8) {
    ++item8;
    if (result.servfail_limit) ++servfail_limits[*result.servfail_limit];
  }
  if (result.item7_violation) ++item7_violations;
  if (result.item12_gap) ++item12_gaps;
  // The paper's Item 10 metric counts INFO-CODE 27 specifically (Google's
  // EDE 5 and OpenDNS's EDE 12 do not qualify).
  if (result.limit_ede &&
      *result.limit_ede == dns::EdeCode::kUnsupportedNsec3Iterations)
    ++ede_on_limit;
}

void ResolverSweepStats::merge(const ResolverSweepStats& other) {
  probed += other.probed;
  validators += other.validators;
  for (const auto& [iterations, shares] : other.by_iteration) {
    RcodeShares& mine = by_iteration[iterations];
    mine.nxdomain += shares.nxdomain;
    mine.nxdomain_ad += shares.nxdomain_ad;
    mine.servfail += shares.servfail;
    mine.timeouts += shares.timeouts;
    mine.total += shares.total;
  }
  item6 += other.item6;
  item8 += other.item8;
  item7_violations += other.item7_violations;
  item12_gaps += other.item12_gaps;
  ede_on_limit += other.ede_on_limit;
  for (const auto& [limit, count] : other.insecure_limits)
    insecure_limits[limit] += count;
  for (const auto& [limit, count] : other.servfail_limits)
    servfail_limits[limit] += count;
  probe_latency_us.merge(other.probe_latency_us);
  timeouts += other.timeouts;
  stop_answering += other.stop_answering;
  queue_delay_us.merge(other.queue_delay_us);
  queue_drops += other.queue_drops;
  stage_resolve_us.merge(other.stage_resolve_us);
  stage_recurse_us.merge(other.stage_recurse_us);
  stage_validate_us.merge(other.stage_validate_us);
  stage_queue_wait_us.merge(other.stage_queue_wait_us);
  neg_synth_hits += other.neg_synth_hits;
  failure_cache_hits += other.failure_cache_hits;
}

void ResolverSweepStats::add_stages(const trace::StageTotals& delta_ns) {
  const auto us = [&delta_ns](trace::Stage stage) {
    return delta_ns[static_cast<std::size_t>(stage)] / 1000;
  };
  stage_resolve_us.add(us(trace::Stage::kResolve));
  stage_recurse_us.add(us(trace::Stage::kRecurse));
  stage_validate_us.add(us(trace::Stage::kValidate));
  stage_queue_wait_us.add(us(trace::Stage::kQueueWait));
}

}  // namespace zh::scanner
