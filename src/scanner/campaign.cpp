#include "scanner/campaign.hpp"

#include <algorithm>

namespace zh::scanner {
namespace {

/// Registered domain ("operator identity") of a name-server name: its last
/// two labels — the paper aggregates NS records by registered domain even
/// across public suffixes.
std::string operator_identity(const dns::Name& ns_name) {
  if (ns_name.label_count() < 2) return ns_name.to_string();
  return ns_name.ancestor_with_labels(2).canonical().to_string();
}

/// The single operator exclusively serving a domain, or empty.
std::string exclusive_operator(const std::vector<dns::Name>& ns_names) {
  std::string identity;
  for (const auto& ns : ns_names) {
    const std::string op = operator_identity(ns);
    if (identity.empty()) {
      identity = op;
    } else if (identity != op) {
      return {};
    }
  }
  return identity;
}

}  // namespace

DomainCampaign::DomainCampaign(testbed::Internet& internet,
                               const workload::EcosystemSpec& spec,
                               simnet::IpAddress scan_resolver,
                               simnet::IpAddress source)
    : internet_(internet),
      spec_(spec),
      scanner_(internet.network(), source, scan_resolver) {}

void DomainCampaign::run(std::size_t limit, std::size_t stride) {
  run_shard(0, 1, limit, stride);
}

void DomainCampaign::run_shard(std::size_t shard, std::size_t shards,
                               std::size_t limit, std::size_t stride) {
  const std::size_t count = std::min(limit, spec_.domain_count());
  for (std::size_t position = shard;; position += shards) {
    const std::size_t index = position * stride;
    if (index >= count || index / stride != position) break;  // overflow
    const workload::DomainProfile profile = spec_.domain(index);
    const DomainScanResult result = scanner_.scan(profile.apex);

    ++stats_.scanned;
    CompactDomainRecord record;
    record.index = static_cast<std::uint32_t>(index);
    record.classification = result.classification;

    if (result.dnskey) ++stats_.dnssec;
    if (result.classification == DomainScanResult::Class::kExcluded)
      ++stats_.excluded;

    if (result.classification == DomainScanResult::Class::kNsec3Enabled) {
      ++stats_.nsec3;
      const auto& nsec3 = *result.nsec3;
      record.iterations = nsec3.iterations;
      record.salt_len = static_cast<std::uint8_t>(
          std::min<std::size_t>(nsec3.salt.size(), 255));
      record.opt_out = nsec3.opt_out;

      stats_.iterations.add(nsec3.iterations);
      stats_.salt_len.add(static_cast<std::int64_t>(nsec3.salt.size()));
      if (nsec3.iterations == 0) ++stats_.zero_iterations;
      if (nsec3.salt.empty()) ++stats_.no_salt;
      if (nsec3.iterations == 0 && nsec3.salt.empty())
        ++stats_.fully_compliant;
      if (nsec3.opt_out) ++stats_.opt_out;
      if (nsec3.iterations > 150) ++stats_.over_150_iterations;
      if (nsec3.iterations == 500) ++stats_.at_500_iterations;
      if (nsec3.salt.size() > 10) ++stats_.salt_over_10;
      if (nsec3.salt.size() > 45) ++stats_.salt_over_45;
      if (nsec3.salt.size() == 160) ++stats_.salt_at_160;

      const std::string op = exclusive_operator(result.ns_names);
      if (!op.empty()) {
        stats_.operators.add(op);
        stats_.operator_params[op].add(
            std::to_string(nsec3.iterations) + "/" +
            std::to_string(nsec3.salt.size()));
      }
    }
    by_index_[record.index] = records_.size();
    records_.push_back(record);
  }
}

void DomainCampaignStats::merge(const DomainCampaignStats& other) {
  scanned += other.scanned;
  dnssec += other.dnssec;
  nsec3 += other.nsec3;
  excluded += other.excluded;
  iterations.merge(other.iterations);
  salt_len.merge(other.salt_len);
  zero_iterations += other.zero_iterations;
  no_salt += other.no_salt;
  fully_compliant += other.fully_compliant;
  opt_out += other.opt_out;
  over_150_iterations += other.over_150_iterations;
  at_500_iterations += other.at_500_iterations;
  salt_over_10 += other.salt_over_10;
  salt_over_45 += other.salt_over_45;
  salt_at_160 += other.salt_at_160;
  operators.merge(other.operators);
  for (const auto& [op, params] : other.operator_params)
    operator_params[op].merge(params);
}

const CompactDomainRecord* DomainCampaign::record_for(
    std::size_t index) const {
  const auto it = by_index_.find(static_cast<std::uint32_t>(index));
  return it == by_index_.end() ? nullptr : &records_[it->second];
}

TldCensusStats scan_tlds(testbed::Internet& internet,
                         const workload::EcosystemSpec& spec,
                         simnet::IpAddress scan_resolver) {
  TldCensusStats stats;
  DomainScanner scanner(internet.network(),
                        simnet::IpAddress::v4(203, 0, 113, 251),
                        scan_resolver);
  for (const auto& tld : spec.tlds()) {
    const DomainScanResult result =
        scanner.scan(dns::Name::must_parse(tld.label));
    ++stats.scanned;
    if (result.dnskey) ++stats.dnssec;
    if (result.classification != DomainScanResult::Class::kNsec3Enabled)
      continue;
    ++stats.nsec3;
    const auto& nsec3 = *result.nsec3;
    stats.iterations.add(nsec3.iterations);
    if (nsec3.iterations == 0) ++stats.zero_iterations;
    if (nsec3.iterations == 100) ++stats.at_100_iterations;
    if (nsec3.salt.empty()) ++stats.no_salt;
    if (nsec3.salt.size() == 8) ++stats.salt_8;
    if (nsec3.salt.size() == 10) ++stats.salt_10;
    if (nsec3.opt_out) ++stats.opt_out;
  }
  return stats;
}

void ResolverSweepStats::add(const ResolverProbeResult& result) {
  ++probed;
  if (!result.validator) return;
  ++validators;

  for (const auto& [iterations, observation] : result.sweep) {
    RcodeShares& shares = by_iteration[iterations];
    ++shares.total;
    if (observation.rcode == dns::Rcode::kNxDomain) {
      ++shares.nxdomain;
      if (observation.ad) ++shares.nxdomain_ad;
    } else if (observation.rcode == dns::Rcode::kServFail) {
      ++shares.servfail;
    }
  }
  if (result.implements_item6) {
    ++item6;
    if (result.insecure_limit) ++insecure_limits[*result.insecure_limit];
  }
  if (result.implements_item8) {
    ++item8;
    if (result.servfail_limit) ++servfail_limits[*result.servfail_limit];
  }
  if (result.item7_violation) ++item7_violations;
  if (result.item12_gap) ++item12_gaps;
  // The paper's Item 10 metric counts INFO-CODE 27 specifically (Google's
  // EDE 5 and OpenDNS's EDE 12 do not qualify).
  if (result.limit_ede &&
      *result.limit_ede == dns::EdeCode::kUnsupportedNsec3Iterations)
    ++ede_on_limit;
}

void ResolverSweepStats::merge(const ResolverSweepStats& other) {
  probed += other.probed;
  validators += other.validators;
  for (const auto& [iterations, shares] : other.by_iteration) {
    RcodeShares& mine = by_iteration[iterations];
    mine.nxdomain += shares.nxdomain;
    mine.nxdomain_ad += shares.nxdomain_ad;
    mine.servfail += shares.servfail;
    mine.total += shares.total;
  }
  item6 += other.item6;
  item8 += other.item8;
  item7_violations += other.item7_violations;
  item12_gaps += other.item12_gaps;
  ede_on_limit += other.ede_on_limit;
  for (const auto& [limit, count] : other.insecure_limits)
    insecure_limits[limit] += count;
  for (const auto& [limit, count] : other.servfail_limits)
    servfail_limits[limit] += count;
}

}  // namespace zh::scanner
