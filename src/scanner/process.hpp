// Multi-process campaign scale-out.
//
// The in-process engine (scanner/parallel.hpp) tops out at one machine's
// thread count and one address space. This runner forks K worker
// *processes* of the current binary, hands each the sub-shard flags
// `--shard s --of K --emit-shard FILE`, and merges the shard artefacts
// (scanner/serialize.hpp) the workers write — through exactly the same
// merge algebra the thread engine uses, so the headline invariant
// extends one level up:
//
//     serial run ≡ --jobs K in-process ≡ K-process run,
//     byte-identical stats, records and query counts.
//
// Because the artefacts are plain files, the same merge path also scales
// across machines: run the workers anywhere, copy the files, merge with
// `--merge-shards A B C...`.
//
// The parent never parses worker stdout (workers are spawned with stdout
// redirected to /dev/null); the artefact file is the entire contract.
#pragma once

#include <string>
#include <vector>

#include "scanner/parallel.hpp"

namespace zh::scanner {

/// Creates a fresh private directory for shard artefacts (mkdtemp under
/// $TMPDIR or /tmp). Empty string + `error` on failure.
std::string make_shard_dir(std::string& error);

/// Forks `procs` copies of `exe`, each exec'd with
///   args... --shard <s> --of <procs> --emit-shard <emit_base>
/// stdout redirected to /dev/null (workers re-run the caller's whole main
/// — their console report is partial and must not pollute the parent's),
/// ZH_PROCS/ZH_TRACE scrubbed from the child environment, and waits for
/// all of them. False + `error` when any worker fails to spawn or exits
/// non-zero.
bool spawn_shard_workers(const std::string& exe,
                         const std::vector<std::string>& args, unsigned procs,
                         const std::string& emit_base, std::string& error);

/// Decodes the artefact files and merges every shard whose tag matches
/// `tag` into one campaign result (stats/records/queries/cost summed
/// through the merge algebra, records re-sorted into serial order, worker
/// hash work credited to the calling thread's CostMeter, jobs = of ×
/// per-worker jobs). Requires a complete, consistent shard set for the
/// tag: every shard 0..of-1 exactly once, all agreeing on `of`. Files
/// with foreign tags are skipped, so a mixed pile (e.g. all four Figure 3
/// panels) can be handed to every merge call. False + `error` on any
/// decode or consistency failure.
bool merge_domain_shards(const std::vector<std::string>& paths,
                         const std::string& tag, ParallelCampaignResult& out,
                         std::string& error);
bool merge_sweep_shards(const std::vector<std::string>& paths,
                        const std::string& tag, ParallelSweepResult& out,
                        std::string& error);

}  // namespace zh::scanner
