#include "scanner/serialize.hpp"

namespace zh::scanner {
namespace {

constexpr char kMagic[] = "ZHSA";

using analysis::DecodeErrc;
using analysis::Decoder;
using analysis::Encoder;

void encode_u16_u64_map(Encoder& enc,
                        const std::map<std::uint16_t, std::uint64_t>& map) {
  enc.u64(map.size());
  for (const auto& [key, value] : map) {
    enc.u16(key);
    enc.u64(value);
  }
}

bool decode_u16_u64_map(Decoder& dec,
                        std::map<std::uint16_t, std::uint64_t>& out) {
  std::uint64_t entries = 0;
  if (!dec.u64(entries)) return false;
  bool first = true;
  std::uint16_t previous = 0;
  for (std::uint64_t i = 0; i < entries; ++i) {
    std::uint16_t key = 0;
    std::uint64_t value = 0;
    if (!dec.u16(key) || !dec.u64(value)) return false;
    if (!first && key <= previous)
      return dec.fail(DecodeErrc::kBadValue, "map keys not ascending");
    out[key] = value;
    previous = key;
    first = false;
  }
  return true;
}

void encode_envelope_head(Encoder& enc, ArtefactKind kind,
                          const std::string& tag, std::uint32_t shard,
                          std::uint32_t of, std::uint32_t jobs) {
  enc.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kMagic), 4));
  enc.u16(kShardFormatVersion);
  enc.u8(static_cast<std::uint8_t>(kind));
  enc.str(tag);
  enc.u32(shard);
  enc.u32(of);
  enc.u32(jobs);
}

bool decode_envelope_head(Decoder& dec, ArtefactKind expect_kind,
                          std::string& tag, std::uint32_t& shard,
                          std::uint32_t& of, std::uint32_t& jobs) {
  if (!dec.magic(kMagic)) return false;
  std::uint16_t version = 0;
  if (!dec.u16(version)) return false;
  if (version != kShardFormatVersion)
    return dec.fail(DecodeErrc::kBadVersion,
                    "artefact version " + std::to_string(version) +
                        ", this build speaks " +
                        std::to_string(kShardFormatVersion));
  std::uint8_t kind = 0;
  if (!dec.u8(kind)) return false;
  if (kind != static_cast<std::uint8_t>(expect_kind))
    return dec.fail(DecodeErrc::kBadValue,
                    "artefact kind " + std::to_string(kind));
  if (!dec.str(tag) || !dec.u32(shard) || !dec.u32(of) || !dec.u32(jobs))
    return false;
  if (of == 0 || shard >= of)
    return dec.fail(DecodeErrc::kBadValue, "shard id outside 0..of-1");
  if (jobs == 0)
    return dec.fail(DecodeErrc::kBadValue, "zero worker jobs");
  return true;
}

/// Appends the checksum (over everything written so far) and returns the
/// finished buffer.
std::vector<std::uint8_t> seal(Encoder& enc) {
  const std::uint64_t digest = analysis::fnv1a64(enc.data());
  enc.u64(digest);
  return enc.take();
}

/// Verifies the trailing checksum and the consumed-everything invariant.
bool unseal(Decoder& dec, std::span<const std::uint8_t> data) {
  const std::size_t payload_end = dec.position();
  std::uint64_t stored = 0;
  if (!dec.u64(stored)) return false;
  if (!dec.expect_end()) return false;
  if (stored != analysis::fnv1a64(data.subspan(0, payload_end)))
    return dec.fail(DecodeErrc::kChecksum, "artefact payload corrupted");
  return true;
}

}  // namespace

void encode(Encoder& enc, const trace::StageTotals& totals) {
  for (const std::int64_t ns : totals) enc.i64(ns);
}

bool decode(Decoder& dec, trace::StageTotals& out) {
  for (std::size_t i = 0; i < trace::kStageCount; ++i)
    if (!dec.i64(out[i])) return false;
  return true;
}

void encode(Encoder& enc, const CostTally& cost) {
  enc.u64(cost.sha1_blocks);
  enc.u64(cost.sha2_blocks);
  enc.u64(cost.nsec3_hashes);
}

bool decode(Decoder& dec, CostTally& out) {
  return dec.u64(out.sha1_blocks) && dec.u64(out.sha2_blocks) &&
         dec.u64(out.nsec3_hashes);
}

void encode(Encoder& enc, const CompactDomainRecord& record) {
  enc.u32(record.index);
  enc.u8(static_cast<std::uint8_t>(record.classification));
  enc.u16(record.iterations);
  enc.u8(record.salt_len);
  enc.u8(record.opt_out ? 1 : 0);
}

bool decode(Decoder& dec, CompactDomainRecord& out) {
  std::uint8_t classification = 0, opt_out = 0;
  if (!dec.u32(out.index) || !dec.u8(classification) ||
      !dec.u16(out.iterations) || !dec.u8(out.salt_len) || !dec.u8(opt_out))
    return false;
  if (classification >
      static_cast<std::uint8_t>(DomainScanResult::Class::kExcluded))
    return dec.fail(DecodeErrc::kBadValue, "unknown classification");
  if (opt_out > 1)
    return dec.fail(DecodeErrc::kBadValue, "non-boolean opt_out");
  out.classification =
      static_cast<DomainScanResult::Class>(classification);
  out.opt_out = opt_out != 0;
  return true;
}

void encode(Encoder& enc, const std::vector<CompactDomainRecord>& records) {
  enc.u64(records.size());
  for (const auto& record : records) encode(enc, record);
}

bool decode(Decoder& dec, std::vector<CompactDomainRecord>& out) {
  std::uint64_t count = 0;
  if (!dec.u64(count)) return false;
  bool first = true;
  std::uint32_t previous = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    CompactDomainRecord record;
    if (!decode(dec, record)) return false;
    // A shard visits domain indexes in ascending order — enforce the
    // canonical shape rather than trusting a length field blindly.
    if (!first && record.index <= previous)
      return dec.fail(DecodeErrc::kBadValue, "record indexes not ascending");
    previous = record.index;
    first = false;
    out.push_back(record);
  }
  return true;
}

void encode(Encoder& enc, const DomainCampaignStats& stats) {
  enc.u64(stats.scanned);
  enc.u64(stats.dnssec);
  enc.u64(stats.nsec3);
  enc.u64(stats.excluded);
  encode(enc, stats.iterations);
  encode(enc, stats.salt_len);
  enc.u64(stats.zero_iterations);
  enc.u64(stats.no_salt);
  enc.u64(stats.fully_compliant);
  enc.u64(stats.opt_out);
  enc.u64(stats.over_150_iterations);
  enc.u64(stats.at_500_iterations);
  enc.u64(stats.salt_over_10);
  enc.u64(stats.salt_over_45);
  enc.u64(stats.salt_at_160);
  encode(enc, stats.operators);
  enc.u64(stats.operator_params.size());
  for (const auto& [op, params] : stats.operator_params) {
    enc.str(op);
    encode(enc, params);
  }
  encode(enc, stats.scan_latency_us);
  enc.u64(stats.timeouts);
  encode(enc, stats.queue_delay_us);
  enc.u64(stats.queue_drops);
  encode(enc, stats.stage_resolve_us);
  encode(enc, stats.stage_recurse_us);
  encode(enc, stats.stage_validate_us);
  encode(enc, stats.stage_queue_wait_us);
  enc.u64(stats.neg_synth_hits);
  enc.u64(stats.failure_cache_hits);
}

bool decode(Decoder& dec, DomainCampaignStats& out) {
  if (!dec.u64(out.scanned) || !dec.u64(out.dnssec) || !dec.u64(out.nsec3) ||
      !dec.u64(out.excluded))
    return false;
  if (!decode(dec, out.iterations) || !decode(dec, out.salt_len))
    return false;
  if (!dec.u64(out.zero_iterations) || !dec.u64(out.no_salt) ||
      !dec.u64(out.fully_compliant) || !dec.u64(out.opt_out) ||
      !dec.u64(out.over_150_iterations) || !dec.u64(out.at_500_iterations) ||
      !dec.u64(out.salt_over_10) || !dec.u64(out.salt_over_45) ||
      !dec.u64(out.salt_at_160))
    return false;
  if (!decode(dec, out.operators)) return false;
  std::uint64_t operators = 0;
  if (!dec.u64(operators)) return false;
  bool first = true;
  std::string previous;
  for (std::uint64_t i = 0; i < operators; ++i) {
    std::string op;
    if (!dec.str(op)) return false;
    if (!first && op <= previous)
      return dec.fail(DecodeErrc::kBadValue,
                      "operator_params keys not ascending");
    if (!decode(dec, out.operator_params[op])) return false;
    previous = std::move(op);
    first = false;
  }
  if (!decode(dec, out.scan_latency_us)) return false;
  if (!dec.u64(out.timeouts)) return false;
  if (!decode(dec, out.queue_delay_us)) return false;
  if (!dec.u64(out.queue_drops)) return false;
  return decode(dec, out.stage_resolve_us) &&
         decode(dec, out.stage_recurse_us) &&
         decode(dec, out.stage_validate_us) &&
         decode(dec, out.stage_queue_wait_us) &&
         dec.u64(out.neg_synth_hits) && dec.u64(out.failure_cache_hits);
}

void encode(Encoder& enc, const ResolverSweepStats& stats) {
  enc.u64(stats.probed);
  enc.u64(stats.validators);
  enc.u64(stats.by_iteration.size());
  for (const auto& [iterations, shares] : stats.by_iteration) {
    enc.u16(iterations);
    enc.u64(shares.nxdomain);
    enc.u64(shares.nxdomain_ad);
    enc.u64(shares.servfail);
    enc.u64(shares.timeouts);
    enc.u64(shares.total);
  }
  enc.u64(stats.item6);
  enc.u64(stats.item8);
  enc.u64(stats.item7_violations);
  enc.u64(stats.item12_gaps);
  enc.u64(stats.ede_on_limit);
  encode_u16_u64_map(enc, stats.insecure_limits);
  encode_u16_u64_map(enc, stats.servfail_limits);
  encode(enc, stats.probe_latency_us);
  enc.u64(stats.timeouts);
  encode(enc, stats.queue_delay_us);
  enc.u64(stats.queue_drops);
  enc.u64(stats.stop_answering);
  encode(enc, stats.stage_resolve_us);
  encode(enc, stats.stage_recurse_us);
  encode(enc, stats.stage_validate_us);
  encode(enc, stats.stage_queue_wait_us);
  enc.u64(stats.neg_synth_hits);
  enc.u64(stats.failure_cache_hits);
}

bool decode(Decoder& dec, ResolverSweepStats& out) {
  if (!dec.u64(out.probed) || !dec.u64(out.validators)) return false;
  std::uint64_t series = 0;
  if (!dec.u64(series)) return false;
  bool first = true;
  std::uint16_t previous = 0;
  for (std::uint64_t i = 0; i < series; ++i) {
    std::uint16_t iterations = 0;
    if (!dec.u16(iterations)) return false;
    if (!first && iterations <= previous)
      return dec.fail(DecodeErrc::kBadValue,
                      "by_iteration keys not ascending");
    ResolverSweepStats::RcodeShares& shares = out.by_iteration[iterations];
    if (!dec.u64(shares.nxdomain) || !dec.u64(shares.nxdomain_ad) ||
        !dec.u64(shares.servfail) || !dec.u64(shares.timeouts) ||
        !dec.u64(shares.total))
      return false;
    previous = iterations;
    first = false;
  }
  if (!dec.u64(out.item6) || !dec.u64(out.item8) ||
      !dec.u64(out.item7_violations) || !dec.u64(out.item12_gaps) ||
      !dec.u64(out.ede_on_limit))
    return false;
  if (!decode_u16_u64_map(dec, out.insecure_limits) ||
      !decode_u16_u64_map(dec, out.servfail_limits))
    return false;
  if (!decode(dec, out.probe_latency_us)) return false;
  if (!dec.u64(out.timeouts)) return false;
  if (!decode(dec, out.queue_delay_us)) return false;
  if (!dec.u64(out.queue_drops) || !dec.u64(out.stop_answering)) return false;
  return decode(dec, out.stage_resolve_us) &&
         decode(dec, out.stage_recurse_us) &&
         decode(dec, out.stage_validate_us) &&
         decode(dec, out.stage_queue_wait_us) &&
         dec.u64(out.neg_synth_hits) && dec.u64(out.failure_cache_hits);
}

std::vector<std::uint8_t> encode_artefact(const DomainShardArtefact& artefact) {
  Encoder enc;
  encode_envelope_head(enc, ArtefactKind::kDomainCampaign, artefact.tag,
                       artefact.shard, artefact.of, artefact.jobs);
  encode(enc, artefact.stats);
  encode(enc, artefact.records);
  enc.u64(artefact.queries_issued);
  encode(enc, artefact.cost);
  return seal(enc);
}

std::vector<std::uint8_t> encode_artefact(const SweepShardArtefact& artefact) {
  Encoder enc;
  encode_envelope_head(enc, ArtefactKind::kResolverSweep, artefact.tag,
                       artefact.shard, artefact.of, artefact.jobs);
  encode(enc, artefact.stats);
  enc.u64(artefact.queries_issued);
  enc.u64(artefact.population);
  encode(enc, artefact.cost);
  return seal(enc);
}

bool decode_artefact(std::span<const std::uint8_t> data,
                     DomainShardArtefact& out, analysis::DecodeError& error) {
  Decoder dec(data);
  const bool ok =
      decode_envelope_head(dec, ArtefactKind::kDomainCampaign, out.tag,
                           out.shard, out.of, out.jobs) &&
      decode(dec, out.stats) && decode(dec, out.records) &&
      dec.u64(out.queries_issued) && decode(dec, out.cost) &&
      unseal(dec, data);
  if (!ok) error = dec.error();
  return ok;
}

bool decode_artefact(std::span<const std::uint8_t> data,
                     SweepShardArtefact& out, analysis::DecodeError& error) {
  Decoder dec(data);
  std::uint64_t population = 0;
  const bool ok =
      decode_envelope_head(dec, ArtefactKind::kResolverSweep, out.tag,
                           out.shard, out.of, out.jobs) &&
      decode(dec, out.stats) && dec.u64(out.queries_issued) &&
      dec.u64(population) && decode(dec, out.cost) && unseal(dec, data);
  if (!ok) {
    error = dec.error();
    return false;
  }
  out.population = static_cast<std::size_t>(population);
  return true;
}

bool peek_artefact(std::span<const std::uint8_t> data, ArtefactKind& kind,
                   std::string& tag, analysis::DecodeError& error) {
  Decoder dec(data);
  if (!dec.magic(kMagic)) {
    error = dec.error();
    return false;
  }
  std::uint16_t version = 0;
  std::uint8_t raw_kind = 0;
  if (!dec.u16(version) || !dec.u8(raw_kind)) {
    error = dec.error();
    return false;
  }
  if (version != kShardFormatVersion) {
    error = {DecodeErrc::kBadVersion,
             "artefact version " + std::to_string(version)};
    return false;
  }
  if (!dec.str(tag)) {
    error = dec.error();
    return false;
  }
  if (raw_kind != static_cast<std::uint8_t>(ArtefactKind::kDomainCampaign) &&
      raw_kind != static_cast<std::uint8_t>(ArtefactKind::kResolverSweep)) {
    error = {DecodeErrc::kBadValue, "unknown artefact kind"};
    return false;
  }
  kind = static_cast<ArtefactKind>(raw_kind);
  return true;
}

}  // namespace zh::scanner
