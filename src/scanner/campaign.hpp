// Campaign drivers: run the domain scanner over the whole synthetic
// population (and the TLD census), and aggregate resolver probe results —
// producing exactly the quantities the paper's §5 reports.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "scanner/domain_scanner.hpp"
#include "scanner/resolver_prober.hpp"
#include "testbed/internet.hpp"
#include "trace/trace.hpp"
#include "workload/spec.hpp"

namespace zh::scanner {

/// Minimal per-domain record kept after scanning (for intersections).
struct CompactDomainRecord {
  std::uint32_t index = 0;
  DomainScanResult::Class classification =
      DomainScanResult::Class::kUnresponsive;
  std::uint16_t iterations = 0;
  std::uint8_t salt_len = 0;
  bool opt_out = false;
};

/// Aggregated §5.1 statistics of a domain scan campaign.
struct DomainCampaignStats {
  std::uint64_t scanned = 0;
  std::uint64_t dnssec = 0;
  std::uint64_t nsec3 = 0;
  std::uint64_t excluded = 0;

  analysis::Ecdf iterations;  // over NSEC3-enabled domains
  analysis::Ecdf salt_len;

  std::uint64_t zero_iterations = 0;
  std::uint64_t no_salt = 0;
  std::uint64_t fully_compliant = 0;  // Items 2 + 3
  std::uint64_t opt_out = 0;
  std::uint64_t over_150_iterations = 0;
  std::uint64_t at_500_iterations = 0;
  std::uint64_t salt_over_10 = 0;
  std::uint64_t salt_over_45 = 0;
  std::uint64_t salt_at_160 = 0;

  /// NSEC3-enabled domains exclusively served per operator (Table 2).
  analysis::FreqTable operators;
  /// Parameter mixes per operator ("iterations/salt-bytes" keys).
  std::map<std::string, analysis::FreqTable> operator_params;

  /// Virtual-time latency of whole-domain scans, in microseconds (all
  /// zeros unless the network runs a latency/service model).
  analysis::Ecdf scan_latency_us;
  /// Scanner queries that exhausted every retransmission.
  std::uint64_t timeouts = 0;
  /// Per-scan service-queue waiting time, in microseconds (all zeros
  /// unless a queue model is installed — see simtime/queue.hpp).
  analysis::Ecdf queue_delay_us;
  /// Deliveries shed by a saturated queue during the campaign.
  std::uint64_t queue_drops = 0;

  /// Per-scan virtual-time stage breakdown (see trace::Stage), in
  /// microseconds. Stages overlap (resolve spans the whole query while the
  /// others time its parts), so these are a breakdown, not a partition;
  /// all zeros unless a latency/service model moves the clock.
  analysis::Ecdf stage_resolve_us;
  analysis::Ecdf stage_recurse_us;
  analysis::Ecdf stage_validate_us;
  analysis::Ecdf stage_queue_wait_us;

  /// RFC 8198 / RFC 9520 activity of the scan resolver during this shard
  /// (per-shard metric deltas, so sums over shards equal the serial run —
  /// jobs/procs/engine-invariant). Zero unless the scan resolver's profile
  /// enables the respective cache.
  std::uint64_t neg_synth_hits = 0;
  std::uint64_t failure_cache_hits = 0;

  /// Folds another shard's aggregates in. Commutative and associative, so
  /// per-shard stats merged in any order equal the unsharded campaign.
  void merge(const DomainCampaignStats& other);

  /// Adds one scan's per-stage virtual-time deltas (nanoseconds).
  void add_stages(const trace::StageTotals& delta_ns);
};

/// Runs the §4.1 pipeline over the synthetic population through a recursive
/// resolver node already attached to the internet.
class DomainCampaign {
 public:
  /// `source` is the scanner's own address — shard engines give each worker
  /// a distinct one; no campaign statistic depends on it.
  DomainCampaign(testbed::Internet& internet,
                 const workload::EcosystemSpec& spec,
                 simnet::IpAddress scan_resolver,
                 simnet::IpAddress source = simnet::IpAddress::v4(203, 0, 113,
                                                                  250),
                 simtime::RetryPolicy retry = {});

  /// Scans domain indexes [0, limit) (stride for cheap smoke runs).
  void run(std::size_t limit = static_cast<std::size_t>(-1),
           std::size_t stride = 1);

  /// Scans shard `shard` of `shards`: the positions j ≡ shard (mod shards)
  /// of the index sequence run() would visit. The union over all shards is
  /// exactly run()'s visit set, for any shard count, so merging the
  /// per-shard stats reproduces the serial campaign bit-for-bit.
  void run_shard(std::size_t shard, std::size_t shards,
                 std::size_t limit = static_cast<std::size_t>(-1),
                 std::size_t stride = 1);

  /// run_shard over the async engine (scanner/async_engine.hpp): the same
  /// visit set driven as up to `max_inflight` concurrent per-query state
  /// machines on this thread. Stats, records and query counts are
  /// byte-identical to run_shard's — per-item observations are flow-keyed
  /// and time-local, and the aggregation folds finished scans in position
  /// order, exactly like the blocking loop.
  void run_shard_async(std::size_t shard, std::size_t shards,
                       std::size_t limit = static_cast<std::size_t>(-1),
                       std::size_t stride = 1,
                       std::size_t max_inflight = 1024);

  const DomainCampaignStats& stats() const noexcept { return stats_; }
  const std::vector<CompactDomainRecord>& records() const noexcept {
    return records_;
  }
  /// Record by domain index (records are appended in scan order).
  const CompactDomainRecord* record_for(std::size_t index) const;

  std::uint64_t queries_issued() const noexcept {
    return scanner_.queries_issued() + async_queries_;
  }

 private:
  /// Folds one finished scan into stats_/records_ — the shared aggregation
  /// tail of run_shard (blocking) and run_shard_async. The deltas are the
  /// item's own queue-counter and tracer-stage movements.
  void accumulate_scan(std::size_t index, const DomainScanResult& result,
                       std::uint64_t queue_wait_ns,
                       std::uint64_t queue_drops,
                       const trace::StageTotals& stage_delta_ns);
  /// With a time model active, resolves every census TLD's DNSKEY and every
  /// hosting operator's NS-host address once, so the scan resolver's
  /// root/TLD/operator caches are warm before the first scan. Shards then
  /// all start from the same resolver state, which keeps per-scan
  /// virtual-time latencies identical for any worker count. A no-op (and no
  /// queries) when time never moves.
  void warm_tld_caches();

  testbed::Internet& internet_;
  const workload::EcosystemSpec& spec_;
  simnet::IpAddress scan_resolver_;
  simnet::IpAddress source_;
  simtime::RetryPolicy retry_;
  DomainScanner scanner_;
  std::uint64_t async_queries_ = 0;      // run_shard_async's wire attempts
  std::uint64_t async_probe_token_ = 0;  // run_shard_async's token counter
  DomainCampaignStats stats_;
  std::vector<CompactDomainRecord> records_;
  std::map<std::uint32_t, std::size_t> by_index_;
  bool warmed_ = false;
};

/// §5.1 TLD census result.
struct TldCensusStats {
  std::uint64_t scanned = 0;
  std::uint64_t dnssec = 0;
  std::uint64_t nsec3 = 0;
  std::uint64_t zero_iterations = 0;
  std::uint64_t at_100_iterations = 0;
  std::uint64_t no_salt = 0;
  std::uint64_t salt_8 = 0;
  std::uint64_t salt_10 = 0;
  std::uint64_t opt_out = 0;
  analysis::Ecdf iterations;
};

/// Scans every TLD in the census through the same pipeline.
TldCensusStats scan_tlds(testbed::Internet& internet,
                         const workload::EcosystemSpec& spec,
                         simnet::IpAddress scan_resolver);

/// Aggregated §5.2 statistics over a probed resolver population.
struct ResolverSweepStats {
  std::uint64_t probed = 0;
  std::uint64_t validators = 0;

  struct RcodeShares {
    std::uint64_t nxdomain = 0;
    std::uint64_t nxdomain_ad = 0;  // subset of nxdomain
    std::uint64_t servfail = 0;
    /// Probes at this iteration count that timed out (no RCODE at all —
    /// the "stop answering" behaviour).
    std::uint64_t timeouts = 0;
    std::uint64_t total = 0;
  };
  /// Figure 3 series: per probed iteration count.
  std::map<std::uint16_t, RcodeShares> by_iteration;

  std::uint64_t item6 = 0;
  std::uint64_t item8 = 0;
  std::uint64_t item7_violations = 0;
  std::uint64_t item12_gaps = 0;
  std::uint64_t ede_on_limit = 0;
  std::map<std::uint16_t, std::uint64_t> insecure_limits;  // limit → count
  std::map<std::uint16_t, std::uint64_t> servfail_limits;

  /// Virtual-time latency of whole resolver probes, in microseconds.
  analysis::Ecdf probe_latency_us;
  /// Probe queries that exhausted every retransmission.
  std::uint64_t timeouts = 0;
  /// Per-probe service-queue waiting time, in microseconds.
  analysis::Ecdf queue_delay_us;
  /// Deliveries shed by a saturated queue during the sweep.
  std::uint64_t queue_drops = 0;
  /// Validators that answered below some it-N but stopped answering
  /// (timed out) above it — the paper's drop-above-limit cohort.
  std::uint64_t stop_answering = 0;

  /// Per-probe virtual-time stage breakdown, in microseconds (see
  /// DomainCampaignStats — same semantics, one sample per probed resolver).
  analysis::Ecdf stage_resolve_us;
  analysis::Ecdf stage_recurse_us;
  analysis::Ecdf stage_validate_us;
  analysis::Ecdf stage_queue_wait_us;

  /// RFC 8198 / RFC 9520 activity across the shard's probed panel members
  /// (per-shard metric deltas — see DomainCampaignStats). Nonzero only when
  /// the panel carries a synth-capable profile.
  std::uint64_t neg_synth_hits = 0;
  std::uint64_t failure_cache_hits = 0;

  void add(const ResolverProbeResult& result);

  /// Adds one probe's per-stage virtual-time deltas (nanoseconds).
  void add_stages(const trace::StageTotals& delta_ns);

  /// Folds another shard's sweep aggregates in (order-invariant).
  void merge(const ResolverSweepStats& other);
};

}  // namespace zh::scanner
