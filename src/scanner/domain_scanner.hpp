// Domain-side measurement pipeline (§4.1), zdns-style:
//   1. DNSKEY query → DNSSEC-enabled?
//   2. NSEC3PARAM + NS queries → advertised parameters + operator
//   3. random-subdomain negative probe → actual NSEC3 records
//   4. RFC 5155 consistency checks → NSEC3-enabled classification
//   5. RFC 9276 compliance evaluation (Items 2 + 3)
//
// All queries go through a recursive resolver (the paper used Cloudflare's
// 1.1.1.1) with CD set, so broken or limit-exceeding domains still yield
// their records.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/message.hpp"
#include "simnet/network.hpp"
#include "simtime/simtime.hpp"

namespace zh::scanner {

/// NSEC3 facts observed from the negative-response probe.
struct Nsec3Observation {
  std::uint16_t iterations = 0;
  std::vector<std::uint8_t> salt;
  bool opt_out = false;
  bool records_consistent = true;     // RFC 5155: same params on all NSEC3s
  bool matches_nsec3param = true;     // NSEC3 ≡ NSEC3PARAM
};

/// Everything the scanner learned about one domain.
struct DomainScanResult {
  enum class Class {
    kUnresponsive,
    kNoDnssec,        // no DNSKEY
    kDnssecNoNsec3,   // DNSKEY but no (single) NSEC3PARAM / no NSEC3 chain
    kNsec3Enabled,    // the study population
    kExcluded,        // multiple NSEC3PARAMs or inconsistent parameters
  };

  dns::Name apex;
  Class classification = Class::kUnresponsive;

  bool dnskey = false;
  std::size_t nsec3param_count = 0;
  std::optional<dns::Nsec3ParamRdata> nsec3param;
  std::vector<dns::Name> ns_names;
  std::optional<Nsec3Observation> nsec3;
  bool nsec_seen = false;

  /// Virtual time the whole scan consumed (zero when no time model runs).
  simtime::Duration elapsed;
  /// Queries within this scan that exhausted every retransmission.
  unsigned timeouts = 0;
  /// kUnresponsive because the initial probe *timed out* (lost packets),
  /// as opposed to an unreachable or non-answering destination.
  bool timed_out = false;

  /// RFC 9276 Item 2 (zero additional iterations).
  bool iterations_compliant() const {
    return nsec3 && nsec3->iterations == 0;
  }
  /// RFC 9276 Item 3 (no salt).
  bool salt_compliant() const { return nsec3 && nsec3->salt.empty(); }
  /// Items 2 + 3 both.
  bool rfc9276_compliant() const {
    return iterations_compliant() && salt_compliant();
  }
};

class DomainScanner {
 public:
  /// `resolver` is the recursive resolver the scan rides on; `source` is
  /// the scanner's own address. `retry` governs retransmission of lost
  /// queries (zdns defaults).
  DomainScanner(simnet::Network& network, simnet::IpAddress source,
                simnet::IpAddress resolver, simtime::RetryPolicy retry = {});

  /// Runs the full §4.1 sequence against one domain.
  DomainScanResult scan(const dns::Name& apex);

  std::uint64_t queries_issued() const noexcept { return queries_; }

 private:
  simnet::Network& network_;
  simnet::IpAddress source_;
  simnet::IpAddress resolver_;
  simtime::RetryPolicy retry_;
  std::uint16_t next_id_ = 1;
  std::uint64_t probe_token_ = 0;
  std::uint64_t queries_ = 0;
};

}  // namespace zh::scanner
