// Resolver-side measurement (§4.2): probes one resolver with unique names
// under every rfc9276-in-the-wild.com subzone, classifies it as a validator
// (valid → NOERROR+AD, expired → SERVFAIL), then sweeps it-1 … it-500 to
// infer its RFC 9276 behaviour: Item 6 insecure limit, Item 8 SERVFAIL
// limit, Item 7 violation (it-2501-expired), Item 12 gaps and EDE support.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dns/message.hpp"
#include "simnet/network.hpp"
#include "simtime/simtime.hpp"
#include "testbed/internet.hpp"

namespace zh::scanner {

/// What one it-N probe returned.
struct ZoneObservation {
  bool responsive = false;
  /// First-class Timeout: every retransmission was lost or dropped. Always
  /// false when `responsive` — and distinct from plain unresponsiveness
  /// (an unreachable address is not a timeout).
  bool timed_out = false;
  dns::Rcode rcode = dns::Rcode::kServFail;
  bool ad = false;
  bool ra = false;
  std::optional<dns::EdeCode> ede;
  std::string ede_text;
  /// Wire attempts the probe spent (1 with no loss or truncation).
  unsigned attempts = 0;
  /// Virtual time until the answer (or until retries were exhausted).
  simtime::Duration latency;
};

struct ResolverProbeResult {
  bool responsive = false;
  bool validator = false;
  /// The initial (valid-zone) probe timed out — the §5.2 signature of a
  /// resolver that stopped answering, not of a dead address.
  bool timed_out = false;
  /// Probes across the whole sweep that exhausted their retries.
  std::uint64_t timeouts = 0;
  /// Virtual time the whole probe consumed.
  simtime::Duration elapsed;
  /// Service-queue waiting time accrued during the probe (zero unless a
  /// queue model is installed — see simtime/queue.hpp).
  simtime::Duration queue_wait;
  /// Deliveries shed by a saturated queue during the probe.
  std::uint64_t queue_drops = 0;
  /// Smallest probed N whose it-N query timed out (drop-above-limit
  /// resolvers: the "stop answering" onset).
  std::optional<std::uint16_t> first_timeout;

  /// Keyed by iteration count (the it-N sweep only).
  std::map<std::uint16_t, ZoneObservation> sweep;
  ZoneObservation valid_zone;
  ZoneObservation expired_zone;
  ZoneObservation item7_zone;  // it-2501-expired

  /// Smallest probed N whose response was SERVFAIL (Item 8 onset).
  std::optional<std::uint16_t> first_servfail;
  /// Smallest probed N whose response was NXDOMAIN without AD (Item 6 onset).
  std::optional<std::uint16_t> first_insecure;
  /// Largest probed N answered NXDOMAIN with AD.
  std::optional<std::uint16_t> last_secure;

  /// Item 6: an insecure-response limit is enforced.
  bool implements_item6 = false;
  /// Item 8: a SERVFAIL limit is enforced.
  bool implements_item8 = false;
  /// Inferred limits (largest probed N still fully served).
  std::optional<std::uint16_t> insecure_limit;
  std::optional<std::uint16_t> servfail_limit;
  /// Item 7 violated: it-2501-expired answered NXDOMAIN instead of SERVFAIL.
  bool item7_violation = false;
  /// Item 12: insecure onset strictly below SERVFAIL onset (downgrade gap).
  bool item12_gap = false;
  /// Extended DNS Error on the first limited response.
  std::optional<dns::EdeCode> limit_ede;
};

class ResolverProber {
 public:
  ResolverProber(simnet::Network& network, simnet::IpAddress source,
                 std::vector<testbed::ProbeZone> specs,
                 simtime::RetryPolicy retry = {});

  /// Probes one resolver; `token` makes this resolver's query names unique
  /// (cache busting across a population sweep, §4.2 wildcard rationale).
  ResolverProbeResult probe(const simnet::IpAddress& resolver,
                            const std::string& token);

  std::uint64_t queries_issued() const noexcept { return queries_; }

 private:
  simnet::Network& network_;
  simnet::IpAddress source_;
  std::vector<testbed::ProbeZone> specs_;
  simtime::RetryPolicy retry_;
  std::uint16_t next_id_ = 1;
  std::uint64_t queries_ = 0;
};

}  // namespace zh::scanner
