#include "scanner/parallel.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "crypto/cost_meter.hpp"
#include "scanner/async_engine.hpp"
#include "scanner/resolver_prober.hpp"
#include "workload/install.hpp"

namespace zh::scanner {
namespace {

/// Worker-thread hash-work snapshot (the thread-local meters start at zero
/// on a fresh thread, so the final reading is the worker's total).
CostTally read_worker_cost() {
  CostTally cost;
  cost.sha1_blocks = crypto::CostMeter::sha1_blocks();
  cost.sha2_blocks = crypto::CostMeter::sha2_blocks();
  cost.nsec3_hashes = crypto::CostMeter::nsec3_hashes();
  return cost;
}

/// Credits summed worker hash-work to the calling thread's meter, so cost
/// scopes around a parallel campaign see the same totals as a serial run.
void credit_caller(const CostTally& cost) {
  crypto::CostMeter::add_sha1_blocks(cost.sha1_blocks);
  crypto::CostMeter::add_sha2_blocks(cost.sha2_blocks);
  crypto::CostMeter::add_nsec3_hashes(cost.nsec3_hashes);
}

void accumulate(CostTally& into, const CostTally& from) {
  into.sha1_blocks += from.sha1_blocks;
  into.sha2_blocks += from.sha2_blocks;
  into.nsec3_hashes += from.nsec3_hashes;
}

/// Distinct per-shard scanner source address (198.18.0.0/15, the
/// benchmarking range). No campaign statistic depends on it.
simnet::IpAddress shard_source(unsigned shard) {
  return simnet::IpAddress::v4(198, 18, static_cast<std::uint8_t>(shard >> 8),
                               static_cast<std::uint8_t>(shard & 0xff));
}

unsigned effective_jobs(const ParallelOptions& options) {
  return options.jobs == 0 ? default_jobs() : options.jobs;
}

/// Process-level sub-shard span (0 is normalised to "no sub-sharding").
unsigned shard_span(const ParallelOptions& options) {
  return options.shard_count == 0 ? 1 : options.shard_count;
}

/// Runs `body(shard)` on `jobs` worker threads and rethrows the first
/// worker failure (by shard order) after all workers joined.
void run_sharded(unsigned jobs,
                 const std::function<void(unsigned shard)>& body) {
  std::vector<std::exception_ptr> errors(jobs);
  std::vector<std::thread> workers;
  workers.reserve(jobs);
  for (unsigned shard = 0; shard < jobs; ++shard) {
    workers.emplace_back([shard, &body, &errors] {
      try {
        body(shard);
      } catch (...) {
        errors[shard] = std::current_exception();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  for (const auto& error : errors)
    if (error) std::rethrow_exception(error);
}

}  // namespace

std::uint64_t shard_seed(std::uint64_t base_seed, std::uint32_t shard_id) {
  // splitmix64 over the combined value — the same mixer the workload
  // generator uses for (seed, index) attribute streams.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (shard_id + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

unsigned default_jobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ShardWorldFactory default_world_factory(const workload::EcosystemSpec& spec,
                                        bool with_domains,
                                        resolver::ResolverProfile scan_profile) {
  const workload::EcosystemSpec* shared = &spec;
  return [shared, with_domains,
          scan_profile = std::move(scan_profile)](unsigned, unsigned) {
    ShardWorld world;
    world.internet = std::make_unique<testbed::Internet>();
    world.probe_zones = testbed::add_probe_infrastructure(*world.internet);
    if (with_domains) workload::install_ecosystem(*world.internet, *shared);
    world.internet->build();
    world.scan_resolver = world.internet->make_resolver(
        scan_profile, simnet::IpAddress::v4(1, 1, 1, 1));
    return world;
  };
}

ParallelCampaignResult run_domain_campaign_parallel(
    const workload::EcosystemSpec& spec, const ShardWorldFactory& factory,
    const ParallelOptions& options) {
  const unsigned jobs = effective_jobs(options);

  struct ShardOutcome {
    DomainCampaignStats stats;
    std::vector<CompactDomainRecord> records;
    std::uint64_t queries = 0;
    CostTally cost;
    trace::ShardTrace trace;
  };
  std::vector<ShardOutcome> outcomes(jobs);

  run_sharded(jobs, [&](unsigned shard) {
    ShardOutcome& out = outcomes[shard];
    ShardWorld world = factory(shard, jobs);
    // One shared seed, not shard_seed: loss and jitter draws are keyed on
    // (seed, link, flow, sequence), and flows are item-local, so the same
    // item sees the same fate in every sharding.
    if (options.loss_probability > 0.0) {
      world.internet->network().set_loss(options.loss_probability,
                                         options.base_seed);
    }
    world.internet->network().set_latency_model(options.latency);
    world.internet->network().set_service_model(options.service);
    world.internet->network().set_queue_model(options.queue);
    world.internet->network().tracer().configure(options.trace);
    DomainCampaign campaign(*world.internet, spec,
                            world.scan_resolver->address(),
                            shard_source(shard), options.retry);
    // Compose process-level and thread-level sharding: thread t of this
    // sub-shard covers the global residues shard_index + span·t (mod
    // span·jobs) — the union over processes and threads tiles the serial
    // visit order exactly (see ParallelOptions::shard_index).
    const unsigned span = shard_span(options);
    if (options.engine == Engine::kAsync) {
      campaign.run_shard_async(options.shard_index + span * shard,
                               static_cast<std::size_t>(span) * jobs,
                               options.limit, options.stride,
                               options.max_inflight);
    } else {
      campaign.run_shard(options.shard_index + span * shard,
                         static_cast<std::size_t>(span) * jobs, options.limit,
                         options.stride);
    }
    out.stats = campaign.stats();
    out.records = campaign.records();
    out.queries = campaign.queries_issued();
    out.trace = world.internet->network().tracer().take();
    out.cost = read_worker_cost();
  });

  ParallelCampaignResult result;
  result.jobs = jobs;
  for (unsigned shard = 0; shard < jobs; ++shard) {
    ShardOutcome& out = outcomes[shard];
    result.stats.merge(out.stats);
    result.records.insert(result.records.end(), out.records.begin(),
                          out.records.end());
    result.queries_issued += out.queries;
    accumulate(result.cost, out.cost);
    result.trace.add_shard(shard, std::move(out.trace));
  }
  // Shards interleave by position; re-sorting by domain index restores the
  // serial scan order, making the record list K-invariant too.
  std::sort(result.records.begin(), result.records.end(),
            [](const CompactDomainRecord& a, const CompactDomainRecord& b) {
              return a.index < b.index;
            });
  credit_caller(result.cost);
  return result;
}

ParallelSweepResult run_resolver_sweep_parallel(
    const workload::PanelSpec& panel, const ShardWorldFactory& factory,
    const std::string& token_prefix, std::uint32_t address_base,
    const ParallelOptions& options) {
  const unsigned jobs = effective_jobs(options);

  struct ShardOutcome {
    ResolverSweepStats stats;
    std::uint64_t queries = 0;
    std::size_t population = 0;
    CostTally cost;
    trace::ShardTrace trace;
  };
  std::vector<ShardOutcome> outcomes(jobs);

  run_sharded(jobs, [&](unsigned shard) {
    ShardOutcome& out = outcomes[shard];
    ShardWorld world = factory(shard, jobs);
    if (options.loss_probability > 0.0) {
      world.internet->network().set_loss(options.loss_probability,
                                         options.base_seed);
    }
    world.internet->network().set_latency_model(options.latency);
    world.internet->network().set_service_model(options.service);
    world.internet->network().set_queue_model(options.queue);
    world.internet->network().tracer().configure(options.trace);
    // Every worker instantiates the full (identical) population; it only
    // probes its own members. Instantiation is cheap next to probing.
    workload::BuiltPopulation population = workload::instantiate_panel(
        *world.internet, panel, address_base, options.population_seed);
    // Global residue of this worker thread within the span·jobs-way
    // partition (span = process-level sub-shards; see the campaign path).
    const unsigned span = shard_span(options);
    const std::size_t global_shard = options.shard_index + span * shard;
    const std::size_t global_jobs = static_cast<std::size_t>(span) * jobs;
    // Exactly one worker across all processes reports the population.
    if (global_shard == 0) out.population = population.members.size();
    std::vector<std::size_t> members;
    for (std::size_t j = global_shard; j < population.members.size();
         j += global_jobs)
      members.push_back(j);
    // RFC 8198/9520 hits across this shard's members: probe tokens are
    // member-keyed, so per-member deltas are sharding-invariant and the
    // shard sums reproduce the serial sweep exactly.
    trace::Metrics& sweep_metrics = world.internet->network().tracer().metrics();
    const std::uint64_t synth_before =
        sweep_metrics.value("resolver.neg_synth_hit");
    const std::uint64_t failure_before =
        sweep_metrics.value("resolver.failure_cache_hit");
    if (options.engine == Engine::kAsync) {
      AsyncOptions async_options;
      async_options.max_inflight = options.max_inflight;
      async_options.retry = options.retry;
      AsyncEngine<ProbeFlow> engine(world.internet->network(),
                                    shard_source(shard), async_options);
      struct FinishedProbe {
        ResolverProbeResult result;
        TaskTotals totals;
      };
      std::vector<FinishedProbe> finished(members.size());
      engine.run(
          members.size(),
          [&](std::size_t position) {
            const std::size_t j = members[position];
            const std::string token = token_prefix + std::to_string(j);
            AsyncItem<ProbeFlow> item;
            item.index = j;
            item.flow_key = simtime::fnv1a(token);
            item.destination = population.members[j].address;
            item.flow = ProbeFlow(&world.probe_zones, token);
            return item;
          },
          [&](std::size_t position, ProbeFlow& flow,
              const TaskTotals& totals) {
            finished[position] = FinishedProbe{flow.take_result(), totals};
          });
      // Fold in member order — the blocking loop's order.
      for (FinishedProbe& probe : finished) {
        probe.result.timeouts = probe.totals.timeouts;
        probe.result.elapsed = probe.totals.elapsed;
        probe.result.queue_wait = simtime::Duration::from_ns(
            static_cast<std::int64_t>(probe.totals.queue_wait_ns));
        probe.result.queue_drops = probe.totals.queue_drops;
        out.stats.add(probe.result);
        out.stats.add_stages(probe.totals.stages);
      }
      out.queries = engine.queries_issued();
    } else {
      ResolverProber prober(world.internet->network(), shard_source(shard),
                            world.probe_zones, options.retry);
      trace::Tracer& tracer = world.internet->network().tracer();
      for (const std::size_t j : members) {
        const trace::StageTotals stages_before = tracer.stages();
        out.stats.add(prober.probe(population.members[j].address,
                                   token_prefix + std::to_string(j)));
        out.stats.add_stages(
            trace::stage_delta(tracer.stages(), stages_before));
      }
      out.queries = prober.queries_issued();
    }
    out.stats.neg_synth_hits +=
        sweep_metrics.value("resolver.neg_synth_hit") - synth_before;
    out.stats.failure_cache_hits +=
        sweep_metrics.value("resolver.failure_cache_hit") - failure_before;
    out.trace = world.internet->network().tracer().take();
    out.cost = read_worker_cost();
  });

  ParallelSweepResult result;
  result.jobs = jobs;
  for (unsigned shard = 0; shard < jobs; ++shard) {
    ShardOutcome& out = outcomes[shard];
    result.stats.merge(out.stats);
    result.queries_issued += out.queries;
    result.population += out.population;
    accumulate(result.cost, out.cost);
    result.trace.add_shard(shard, std::move(out.trace));
  }
  credit_caller(result.cost);
  return result;
}

}  // namespace zh::scanner
