// Tranco-like popularity ranking (Figure 2). Calibrated to the paper's
// intersection numbers: in the 1 M list, 66.6 K domains are DNSSEC-enabled
// (6.66 %), 27.2 K of those NSEC3-enabled (40.8 %); of the NSEC3 group,
// 22.8 % use zero iterations, 23.6 % no salt, 12.7 % both — and compliance
// is uniform across ranks.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/spec.hpp"

namespace zh::workload {

struct RankedDomain {
  std::uint64_t rank = 0;  // 1-based
  std::size_t domain_index = 0;
};

class PopularityList {
 public:
  struct Options {
    /// List size; the paper's list has 1 M entries — scaled by default to
    /// 10 K so a 302 K-domain population can fill it.
    std::size_t size = 10000;
    std::uint64_t seed = 1234;
  };

  /// Builds the ranking by stratified sampling of the spec's population so
  /// the popular subpopulation matches the paper's compliance profile.
  PopularityList(const EcosystemSpec& spec, Options options);

  const std::vector<RankedDomain>& entries() const noexcept {
    return entries_;
  }
  std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::vector<RankedDomain> entries_;
};

}  // namespace zh::workload
