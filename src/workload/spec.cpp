#include "workload/spec.hpp"

#include <cmath>
#include <cstdio>

namespace zh::workload {
namespace {

/// splitmix64: deterministic per-index randomness.
std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [0,1) from a stream of draws.
class Draws {
 public:
  Draws(std::uint64_t seed, std::uint64_t index)
      : state_(splitmix(seed ^ splitmix(index + 1))) {}
  double uniform() {
    state_ = splitmix(state_);
    return static_cast<double>(state_ >> 11) / 9007199254740992.0;
  }
  std::uint64_t integer() {
    state_ = splitmix(state_);
    return state_;
  }

 private:
  std::uint64_t state_;
};

/// Deterministic salt bytes of a given length.
std::vector<std::uint8_t> make_salt(Draws& draws, std::uint8_t len) {
  std::vector<std::uint8_t> salt(len);
  for (auto& b : salt) b = static_cast<std::uint8_t>(draws.integer());
  return salt;
}

// Long-tail iteration specials (paper §5.1): 43 domains above 150, 12 of
// them at 500 — planted with absolute counts so the tail survives scaling.
constexpr std::size_t kIterTailCount = 43;
constexpr std::size_t kIterTailAt500 = 12;
// Salt specials: 170 domains with salt > 45 B, 9 at 160 B, one operator.
constexpr std::size_t kSaltTailCount = 170;
constexpr std::size_t kSaltTailAt160 = 9;

}  // namespace

EcosystemSpec::EcosystemSpec() : EcosystemSpec(Options{}) {}

EcosystemSpec::EcosystemSpec(Options options) : options_(options) {
  build_operators();
  build_tlds();
  specials_ = kIterTailCount + kSaltTailCount;
  domain_count_ = static_cast<std::size_t>(
                      static_cast<double>(kPaperDomains) * options_.scale) +
                  specials_;
}

void EcosystemSpec::build_operators() {
  // Table 2 (share of NSEC3-enabled domains; iterations/salt-length mixes).
  const auto add_nsec3 = [this](std::string name, double share,
                                std::vector<ParamChoice> mix) {
    operators_.push_back(OperatorModel{std::move(name), SigningStyle::kNsec3,
                                       share, std::move(mix)});
  };
  add_nsec3("squarespace", 0.394, {{1, 8, 1.0}});
  add_nsec3("one-com", 0.095,
            {{5, 5, 0.4}, {5, 4, 0.3}, {1, 2, 0.2}, {1, 4, 0.1}});
  add_nsec3("ovhcloud", 0.084, {{8, 8, 1.0}});
  add_nsec3("wix", 0.050, {{1, 8, 1.0}});
  // TransIP migrated customers from 100 to 0 additional iterations around
  // 2021; the paper still sees a 0.3 % residue of the old setting in 2024.
  switch (options_.snapshot) {
    case Snapshot::kSept2020:
    case Snapshot::kEarly2021:
      add_nsec3("transip", 0.042, {{100, 8, 1.0}});
      break;
    case Snapshot::kMarch2024:
      add_nsec3("transip", 0.042, {{0, 8, 0.997}, {100, 8, 0.003}});
      break;
    case Snapshot::kLate2024:
      add_nsec3("transip", 0.042, {{0, 8, 1.0}});
      break;
  }
  add_nsec3("loopia", 0.036, {{1, 1, 1.0}});
  add_nsec3("domainnameshop", 0.027, {{0, 0, 1.0}});
  add_nsec3("timeweb", 0.021, {{3, 0, 1.0}});
  add_nsec3("hostnet", 0.015, {{1, 4, 0.7}, {0, 0, 0.3}});
  add_nsec3("hostpoint", 0.013, {{1, 40, 1.0}});
  // Long tail, calibrated so that globally 12.2 % of NSEC3-enabled domains
  // use zero iterations, 8.6 % have no salt, 99.9 % stay ≤ 25 iterations
  // and 97.2 % of salts are ≤ 10 bytes (see spec.hpp header comment).
  // The tail is sharded into many distinct NS identities so that — as in
  // the paper — the top-10 operators cover 77.7 % and no synthetic tail
  // host outranks a Table 2 row.
  const auto add_sharded = [&](const std::string& base, double share,
                               std::vector<ParamChoice> mix, int shards) {
    for (int i = 0; i < shards; ++i) {
      char name[48];
      std::snprintf(name, sizeof name, "%s-%02d", base.c_str(), i);
      add_nsec3(name, share / shards, mix);
    }
  };
  add_sharded("lt-compliant", 0.030, {{0, 0, 1.0}}, 10);
  add_sharded("lt-zero-salted", 0.0186, {{0, 8, 1.0}}, 8);
  add_sharded("lt-nosalt-iter", 0.0035, {{2, 0, 1.0}}, 4);
  add_sharded("lt-bigsalt", 0.015,
              {{1, 16, 0.4}, {1, 24, 0.3}, {1, 32, 0.2}, {1, 45, 0.1}}, 6);
  add_sharded("lt-mid", 0.1551,
              {{1, 4, 0.30}, {1, 8, 0.10}, {2, 8, 0.12}, {3, 4, 0.10},
               {5, 8, 0.10}, {7, 10, 0.08}, {10, 8, 0.08}, {12, 4, 0.05},
               {15, 8, 0.04}, {20, 10, 0.02}, {25, 8, 0.01}},
              30);
  add_sharded("lt-hi", 0.0008,
              {{30, 8, 0.4}, {50, 8, 0.3}, {100, 8, 0.2}, {150, 8, 0.1}}, 2);

  // The operator exclusively serving the > 45 B salt tail (§5.1: "served by
  // a single name server operator").
  giant_salt_op_ = operators_.size();
  operators_.push_back(OperatorModel{"giant-salt-op", SigningStyle::kNsec3,
                                     0.0,
                                     {{1, 60, 0.6}, {1, 100, 0.2},
                                      {1, 120, 0.15}, {1, 160, 0.05}}});
  // The > 150-iteration tail lives across assorted hosts; give it one.
  special_tail_op_ = operators_.size();
  operators_.push_back(OperatorModel{"iteration-tail-op",
                                     SigningStyle::kNsec3, 0.0, {}});

  // DNSSEC-but-NSEC operators (41.7 % of DNSSEC-enabled domains).
  nsec_ops_.push_back(operators_.size());
  operators_.push_back(
      OperatorModel{"nsec-host-1", SigningStyle::kNsec, 0.6, {}});
  nsec_ops_.push_back(operators_.size());
  operators_.push_back(
      OperatorModel{"nsec-host-2", SigningStyle::kNsec, 0.4, {}});

  // Unsigned hosting (91.2 % of all registered domains).
  for (int i = 1; i <= 3; ++i) {
    unsigned_ops_.push_back(operators_.size());
    operators_.push_back(OperatorModel{"parked-" + std::to_string(i),
                                       SigningStyle::kUnsigned,
                                       i == 1 ? 0.5 : 0.25, {}});
  }

  // Cumulative weights over NSEC3 operators for O(log n) selection.
  double acc = 0.0;
  for (std::size_t i = 0; i < operators_.size(); ++i) {
    if (operators_[i].style != SigningStyle::kNsec3 ||
        operators_[i].share == 0.0)
      continue;
    acc += operators_[i].share;
    nsec3_op_cumulative_.push_back(acc);
    nsec3_op_index_.push_back(i);
  }
  // Normalise (defensive: shares sum to ~1.0 by construction).
  for (auto& v : nsec3_op_cumulative_) v /= acc;
}

void EcosystemSpec::build_tlds() {
  // 1,449 TLDs: 95 unsigned, 52 NSEC, 1,302 NSEC3 (numbers from §5.1).
  // NSEC3 parameters: 688 zero-iteration, 447 at 100 (Identity Digital),
  // 167 others; salts: 672 none, 558 8 B, 7 10 B, 65 4 B.
  constexpr std::size_t kTotal = 1449;
  constexpr std::size_t kUnsigned = 95;    // 1449 - 1354 DNSSEC-enabled
  constexpr std::size_t kNsecOnly = 52;    // 1354 - 1302 NSEC3-enabled
  constexpr std::size_t kZeroIter = 688;
  constexpr std::size_t kIdentityDigital = 447;

  tlds_.reserve(kTotal);
  const auto push = [this](TldProfile profile) {
    tlds_.push_back(std::move(profile));
  };

  // A few headline TLDs with real-world-like parameters and heavy weight.
  push({.label = "com", .dnssec = true, .nsec3 = true, .iterations = 0,
        .salt_len = 0, .opt_out = true, .identity_digital = false,
        .domain_weight = 0.40});
  push({.label = "net", .dnssec = true, .nsec3 = true, .iterations = 0,
        .salt_len = 0, .opt_out = true, .identity_digital = false,
        .domain_weight = 0.09});
  push({.label = "org", .dnssec = true, .nsec3 = true, .iterations = 0,
        .salt_len = 0, .opt_out = true, .identity_digital = false,
        .domain_weight = 0.07});
  push({.label = "de", .dnssec = true, .nsec3 = true, .iterations = 0,
        .salt_len = 8, .opt_out = true, .identity_digital = false,
        .domain_weight = 0.05});
  push({.label = "se", .dnssec = true, .nsec3 = false, .iterations = 0,
        .salt_len = 0, .opt_out = false, .identity_digital = false,
        .domain_weight = 0.02});
  push({.label = "ch", .dnssec = true, .nsec3 = true, .iterations = 0,
        .salt_len = 8, .opt_out = true, .identity_digital = false,
        .domain_weight = 0.02});

  // Synthetic remainder.
  std::size_t zero_left = kZeroIter - 5;  // com/net/org/de/ch used 5 zeros
  std::size_t identity_left = kIdentityDigital;
  std::size_t nsec_left = kNsecOnly - 1;  // se used one
  std::size_t unsigned_left = kUnsigned;
  std::size_t salt8_left = 558 - 2;       // de/ch used 8-byte salts
  std::size_t salt10_left = 7;
  std::size_t salt4_left = 65;

  std::size_t index = tlds_.size();
  const double tail_weight = (1.0 - 0.65) / static_cast<double>(kTotal - 6);
  while (tlds_.size() < kTotal) {
    char label[16];
    std::snprintf(label, sizeof label, "tld%04zu", index++);
    TldProfile profile;
    profile.label = label;
    profile.domain_weight = tail_weight;

    if (unsigned_left > 0) {
      --unsigned_left;
      profile.dnssec = false;
      profile.nsec3 = false;
    } else if (nsec_left > 0) {
      --nsec_left;
      profile.nsec3 = false;
      profile.opt_out = false;
    } else if (identity_left > 0) {
      --identity_left;
      profile.identity_digital = true;
      // 1 → 100 in September 2020 [75], 100 → 0 after the paper's
      // measurements, "as required by the best current practice" (§1).
      switch (options_.snapshot) {
        case Snapshot::kSept2020: profile.iterations = 1; break;
        case Snapshot::kEarly2021:
        case Snapshot::kMarch2024: profile.iterations = 100; break;
        case Snapshot::kLate2024: profile.iterations = 0; break;
      }
      profile.salt_len = 8;
      if (salt8_left > 0) --salt8_left;
    } else if (zero_left > 0) {
      --zero_left;
      profile.iterations = 0;
      // Salt census fill: prefer saltless, then 8 B, 10 B, 4 B.
      if (salt10_left > 0 && zero_left % 97 == 0) {
        --salt10_left;
        profile.salt_len = 10;
      } else if (salt8_left > 0 && zero_left % 2 == 0) {
        --salt8_left;
        profile.salt_len = 8;
      } else {
        profile.salt_len = 0;
      }
    } else {
      // 167 remaining NSEC3 TLDs with small nonzero iteration counts.
      const std::size_t slot = tlds_.size() % 3;
      profile.iterations = slot == 0 ? 1 : (slot == 1 ? 5 : 10);
      if (salt4_left > 0) {
        --salt4_left;
        profile.salt_len = 4;
      } else if (salt8_left > 0) {
        --salt8_left;
        profile.salt_len = 8;
      } else {
        profile.salt_len = 0;
      }
    }
    // 85.4 % of NSEC3 TLDs set opt-out.
    profile.opt_out = profile.nsec3 && (tlds_.size() % 7 != 0);
    push(std::move(profile));
  }

  double acc = 0.0;
  for (const auto& tld : tlds_) {
    acc += tld.domain_weight;
    tld_cumulative_.push_back(acc);
  }
  for (auto& v : tld_cumulative_) v /= acc;
}

DomainProfile EcosystemSpec::domain(std::size_t index) const {
  Draws draws(options_.seed, index);
  DomainProfile profile;

  // TLD selection.
  const double tld_draw = draws.uniform();
  std::size_t tld_index = 0;
  {
    const auto it = std::lower_bound(tld_cumulative_.begin(),
                                     tld_cumulative_.end(), tld_draw);
    tld_index = static_cast<std::size_t>(it - tld_cumulative_.begin());
    if (tld_index >= tlds_.size()) tld_index = tlds_.size() - 1;
  }
  const TldProfile& tld = tlds_[tld_index];
  profile.apex = dns::Name::must_parse("d" + std::to_string(index) + "." +
                                       tld.label);

  // Planted long-tail specials (absolute counts, DESIGN.md §1).
  if (index < kIterTailCount) {
    profile.dnssec = true;
    profile.denial = zone::DenialMode::kNsec3;
    profile.operator_index = special_tail_op_;
    profile.nsec3.iterations =
        index < kIterTailAt500
            ? 500
            : static_cast<std::uint16_t>(
                  151 + (index - kIterTailAt500) * 11);  // 151..481
    profile.nsec3.salt = make_salt(draws, 8);
    return profile;
  }
  if (index < kIterTailCount + kSaltTailCount) {
    const std::size_t salt_index = index - kIterTailCount;
    profile.dnssec = true;
    profile.denial = zone::DenialMode::kNsec3;
    profile.operator_index = giant_salt_op_;
    profile.nsec3.iterations = 1;
    const std::uint8_t salt_len =
        salt_index < kSaltTailAt160
            ? 160
            : static_cast<std::uint8_t>(46 + (salt_index % 80));
    profile.nsec3.salt = make_salt(draws, salt_len);
    return profile;
  }

  // Regular population.
  if (draws.uniform() >= kDnssecRate) {
    profile.dnssec = false;
    profile.denial = zone::DenialMode::kUnsigned;
    const double pick = draws.uniform();
    profile.operator_index =
        unsigned_ops_[pick < 0.5 ? 0 : (pick < 0.75 ? 1 : 2)];
    return profile;
  }
  profile.dnssec = true;
  if (draws.uniform() >= kNsec3RateGivenDnssec) {
    profile.denial = zone::DenialMode::kNsec;
    profile.operator_index = nsec_ops_[draws.uniform() < 0.6 ? 0 : 1];
    return profile;
  }

  profile.denial = zone::DenialMode::kNsec3;
  const double op_draw = draws.uniform();
  {
    const auto it = std::lower_bound(nsec3_op_cumulative_.begin(),
                                     nsec3_op_cumulative_.end(), op_draw);
    std::size_t slot = static_cast<std::size_t>(
        it - nsec3_op_cumulative_.begin());
    if (slot >= nsec3_op_index_.size()) slot = nsec3_op_index_.size() - 1;
    profile.operator_index = nsec3_op_index_[slot];
  }
  const OperatorModel& op = operators_[profile.operator_index];
  const double mix_draw = draws.uniform();
  double acc = 0.0;
  ParamChoice choice = op.mix.empty() ? ParamChoice{} : op.mix.back();
  for (const auto& candidate : op.mix) {
    acc += candidate.weight;
    if (mix_draw < acc) {
      choice = candidate;
      break;
    }
  }
  profile.nsec3.iterations = choice.iterations;
  profile.nsec3.salt = make_salt(draws, choice.salt_len);
  profile.nsec3.opt_out = draws.uniform() < kOptOutRate;  // §5.1: 6.4 %
  return profile;
}

std::optional<std::size_t> EcosystemSpec::index_of(
    const dns::Name& apex) const {
  if (apex.label_count() < 2) return std::nullopt;
  const std::string& label = apex.label(0);
  if (label.size() < 2 || label[0] != 'd') return std::nullopt;
  std::size_t index = 0;
  for (std::size_t i = 1; i < label.size(); ++i) {
    if (label[i] < '0' || label[i] > '9') return std::nullopt;
    index = index * 10 + static_cast<std::size_t>(label[i] - '0');
  }
  if (index >= domain_count_) return std::nullopt;
  // Cross-check: the TLD must match what the profile would generate.
  const DomainProfile profile = domain(index);
  if (!profile.apex.equals(apex)) return std::nullopt;
  return index;
}

}  // namespace zh::workload
