// Synthetic domain-ecosystem specification, calibrated to every population
// statistic the paper reports (§5.1):
//
//   302 M registered domains (scaled), 8.8 % DNSSEC-enabled, 58.3 % of those
//   NSEC3-enabled; Table 2 operator market shares and parameter mixes;
//   12.2 % zero additional iterations; 8.6 % saltless; 99.9 % ≤ 25
//   iterations; 43 domains > 150 (12 at 500); salt ≤ 10 B for 97.2 %,
//   170 domains > 45 B (9 at 160 B, one operator); 6.4 % opt-out;
//   TLD census: 1,449 TLDs / 1,354 DNSSEC / 1,302 NSEC3, 688 zero-iteration,
//   447 at 100 (one registry services provider), salt 672 none / 558 8 B /
//   7 10 B, 85.4 % opt-out.
//
// Everything is a pure deterministic function of (seed, index): the lazy
// zone provider recomputes a domain's profile on demand, so the 302 K-zone
// ecosystem never exists in memory at once.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/name.hpp"
#include "zone/zone.hpp"

namespace zh::workload {

/// One (iterations, salt length) choice with its weight inside an operator.
struct ParamChoice {
  std::uint16_t iterations = 0;
  std::uint8_t salt_len = 0;
  double weight = 1.0;
};

/// What a hosting operator signs its customers' zones with.
enum class SigningStyle {
  kNsec3,     // hashed denial — the study population
  kNsec,      // plain NSEC (DNSSEC-enabled but not NSEC3-enabled)
  kUnsigned,  // no DNSSEC
};

/// A hosting operator (Table 2 rows + calibrated long tail).
struct OperatorModel {
  std::string name;
  SigningStyle style = SigningStyle::kNsec3;
  /// Share within the operator's style population (NSEC3 shares follow
  /// Table 2: squarespace 39.4 %, one.com 9.5 %, ...).
  double share = 0.0;
  std::vector<ParamChoice> mix;  // unused for kNsec/kUnsigned
};

/// A TLD with its registry-chosen parameters.
struct TldProfile {
  std::string label;
  bool dnssec = true;
  bool nsec3 = true;  // false → NSEC when dnssec
  std::uint16_t iterations = 0;
  std::uint8_t salt_len = 0;
  bool opt_out = true;
  bool identity_digital = false;  // the 447-TLD registry services provider
  double domain_weight = 0.0;     // share of registered domains
};

/// The resolved profile of one registered domain.
struct DomainProfile {
  dns::Name apex;
  std::size_t operator_index = 0;  // into EcosystemSpec::operators()
  bool dnssec = false;
  zone::DenialMode denial = zone::DenialMode::kUnsigned;
  zone::Nsec3Params nsec3;  // meaningful when denial == kNsec3
};

/// Measurement epoch — the paper's future-work item (i): how parameters
/// evolved. Encodes the two documented registry transitions: Identity
/// Digital moved its 447 TLDs from 1 → 100 additional iterations in
/// September 2020 and from 100 → 0 after the paper's March 2024
/// measurement; TransIP moved customers from 100 → 0 around 2021.
enum class Snapshot {
  kSept2020,    // before the Identity Digital 1 → 100 roll
  kEarly2021,   // 100-iteration TLD era, TransIP still at 100
  kMarch2024,   // the paper's measurement window (default)
  kLate2024,    // after the RFC 9276 remediation (TLDs back to 0)
};

class EcosystemSpec {
 public:
  struct Options {
    /// Population scale: 1.0 = the paper's 302 M domains. Default 1:1000.
    double scale = 0.001;
    std::uint64_t seed = 42;
    /// Measurement epoch (affects Identity Digital TLDs and TransIP).
    Snapshot snapshot = Snapshot::kMarch2024;
  };

  EcosystemSpec();  // default Options
  explicit EcosystemSpec(Options options);

  const Options& options() const noexcept { return options_; }

  /// ≈ 302 M × scale, plus the fixed long-tail specials.
  std::size_t domain_count() const noexcept { return domain_count_; }

  const std::vector<TldProfile>& tlds() const noexcept { return tlds_; }
  const std::vector<OperatorModel>& operators() const noexcept {
    return operators_;
  }

  /// Deterministic profile of domain `index` (0 ≤ index < domain_count()).
  DomainProfile domain(std::size_t index) const;

  /// Parses "d<index>.<tld>" back to the index; nullopt for foreign names.
  std::optional<std::size_t> index_of(const dns::Name& apex) const;

  /// Paper-reported population constants (full-scale, for comparisons).
  static constexpr std::uint64_t kPaperDomains = 302'000'000;
  static constexpr double kDnssecRate = 0.088;        // 26.6 M / 302 M
  static constexpr double kNsec3RateGivenDnssec = 0.583;  // 15.5 / 26.6
  static constexpr double kOptOutRate = 0.064;        // 6.4 % of NSEC3

 private:
  void build_operators();
  void build_tlds();

  Options options_;
  std::size_t domain_count_ = 0;
  std::size_t specials_ = 0;  // count of planted long-tail domains
  std::vector<OperatorModel> operators_;
  std::vector<TldProfile> tlds_;
  std::vector<double> tld_cumulative_;       // domain_weight prefix sums
  std::vector<double> nsec3_op_cumulative_;  // NSEC3 operator prefix sums
  std::vector<std::size_t> nsec3_op_index_;  // map into operators_
  std::vector<std::size_t> nsec_ops_;        // NSEC-style operator indexes
  std::vector<std::size_t> unsigned_ops_;    // unsigned-style indexes
  std::size_t giant_salt_op_ = 0;            // the 160-byte-salt operator
  std::size_t special_tail_op_ = 0;          // serves the >150-iteration tail
};

}  // namespace zh::workload
