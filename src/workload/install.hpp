// Wires an EcosystemSpec into a testbed::Internet: declares the TLD census,
// creates the hosting operators with lazy zone providers, and registers the
// delegation for every synthetic registered domain.
#pragma once

#include <vector>

#include "testbed/internet.hpp"
#include "workload/spec.hpp"

namespace zh::workload {

struct InstalledEcosystem {
  /// operator model index → testbed operator index.
  std::vector<std::size_t> operator_map;
};

/// Declares everything on `internet` (call before internet.build()) and
/// installs lazy providers (effective immediately). The spec must outlive
/// the internet.
InstalledEcosystem install_ecosystem(testbed::Internet& internet,
                                     const EcosystemSpec& spec);

/// Builds the DomainConfig a profile corresponds to (shared by the lazy
/// provider and by tests that materialise zones directly).
testbed::DomainConfig domain_config_for(const DomainProfile& profile,
                                        const EcosystemSpec& spec);

}  // namespace zh::workload
