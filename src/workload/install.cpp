#include "workload/install.hpp"

#include <algorithm>

#include "zone/chain_memo.hpp"

namespace zh::workload {

testbed::DomainConfig domain_config_for(const DomainProfile& profile,
                                        const EcosystemSpec& spec) {
  testbed::DomainConfig config;
  config.apex = profile.apex;
  config.dnssec = profile.dnssec;
  config.denial = profile.denial;
  config.nsec3 = profile.nsec3;
  const OperatorModel& op = spec.operators()[profile.operator_index];
  // Customer zones are served under the operator's NS names.
  const dns::Name op_apex = dns::Name::must_parse(op.name + ".net");
  config.ns_names = {*op_apex.prepended("ns1"), *op_apex.prepended("ns2")};
  return config;
}

InstalledEcosystem install_ecosystem(testbed::Internet& internet,
                                     const EcosystemSpec& spec) {
  InstalledEcosystem installed;

  // Size the NSEC3 chain memo for this population: every evicted-and-revived
  // customer zone then re-signs from the memo instead of re-hashing its
  // chain. Campaign workers install on their own threads, so raising the
  // process default reaches each worker's thread-local memo. No-op when
  // ZH_CHAIN_MEMO pinned an explicit capacity.
  zone::Nsec3ChainMemo::reserve_default_for(spec.domain_count());

  // TLD census.
  for (const TldProfile& tld : spec.tlds()) {
    testbed::TldConfig config;
    if (!tld.dnssec) {
      config.dnssec = false;
    } else if (!tld.nsec3) {
      config.denial = zone::DenialMode::kNsec;
    } else {
      config.denial = zone::DenialMode::kNsec3;
      config.nsec3.iterations = tld.iterations;
      config.nsec3.opt_out = tld.opt_out;
      config.nsec3.salt.assign(tld.salt_len, 0x5a);
    }
    internet.add_tld(tld.label, config);
  }

  // Hosting operators with lazy providers.
  installed.operator_map.resize(spec.operators().size());
  for (std::size_t i = 0; i < spec.operators().size(); ++i) {
    const OperatorModel& model = spec.operators()[i];
    const std::size_t op_index = internet.add_operator(model.name);
    installed.operator_map[i] = op_index;
    testbed::OperatorHandle& handle = internet.hosting_operator(op_index);

    const simnet::IpAddress host = handle.address_v4;
    const std::size_t model_index = i;
    handle.server->set_lazy_provider(
        [&spec](const dns::Name& qname) -> std::optional<dns::Name> {
          // Synthetic domains are always <label>.<tld>: two labels.
          if (qname.label_count() < 2) return std::nullopt;
          const dns::Name apex = qname.ancestor_with_labels(2);
          if (!spec.index_of(apex)) return std::nullopt;
          return apex;
        },
        [&spec, model_index, host](const dns::Name& apex)
            -> std::shared_ptr<const zone::Zone> {
          const auto index = spec.index_of(apex);
          if (!index) return nullptr;
          const DomainProfile profile = spec.domain(*index);
          if (profile.operator_index != model_index)
            return nullptr;  // not our customer
          return testbed::Internet::materialise_zone(
              domain_config_for(profile, spec), host);
        },
        /*cache_capacity=*/256);
    // Size from the exported server.zone_* counters rather than the
    // hardcoded 256: re-sign pressure doubles the LRU up to the operator's
    // worst case — its entire customer base materialised at once. Small
    // ecosystems never grow; campaign-scale scans converge after a short
    // doubling ramp instead of re-signing every zone on every pass.
    handle.server->set_lazy_cache_adaptive(
        std::max<std::size_t>(256, spec.domain_count()));
  }

  // Delegations for the entire synthetic population.
  for (std::size_t index = 0; index < spec.domain_count(); ++index) {
    const DomainProfile profile = spec.domain(index);
    testbed::LazyDelegation delegation;
    delegation.apex = profile.apex;
    delegation.dnssec = profile.dnssec;
    delegation.operator_index =
        installed.operator_map[profile.operator_index];
    internet.add_lazy_delegation(std::move(delegation));
  }
  return installed;
}

}  // namespace zh::workload
