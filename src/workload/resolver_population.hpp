// Resolver populations for Figure 3 — four panels (open/closed × IPv4/IPv6)
// of DNSSEC validators whose behaviour mixture is calibrated to §5.2:
//
//   59.9 % implement Item 6 (insecure above a limit): thresholds mostly 150,
//   36.4 % of open-IPv4 validators behave like Google (limit 100), the
//   CVE-patched 50-limit group is 12.5× smaller than the 150 group;
//   18.4 % implement Item 8 (SERVFAIL), mostly at 150 — partly forwarders
//   to Cloudflare/OpenDNS; 418 strict-zero devices (SERVFAIL from it-1,
//   RA-copy quirk); 92 Technitium-like (SERVFAIL from it-101, EDE 27 +
//   EXTRA-TEXT); 0.2 % Item 7 violators; a small Item 12 gap group;
//   the rest validate with no RFC 9276 limit.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "resolver/resolver.hpp"
#include "testbed/internet.hpp"

namespace zh::workload {

enum class Panel { kOpenV4, kOpenV6, kClosedV4, kClosedV6 };

std::string to_string(Panel panel);

/// One behaviour stratum of a panel.
struct PopulationEntry {
  resolver::ResolverProfile profile;
  double weight = 0.0;
  /// If set, instances forward to a shared public-resolver instance with
  /// this profile name ("cloudflare-1.1.1.1", ...), mirroring the CPE
  /// forwarders the paper identifies via server-side logs.
  std::string forward_via;
};

struct PanelSpec {
  Panel panel = Panel::kOpenV4;
  std::size_t validator_count = 0;      // after scaling
  std::size_t non_validator_count = 0;  // excluded by the §4.2 filter
  std::vector<PopulationEntry> entries;
};

/// Paper populations: 105.2 K / 6.8 K open, 1,236 / 689 closed validators.
/// `resolver_scale` scales the open panels (closed panels are small enough
/// to instantiate fully).
PanelSpec figure3_panel(Panel panel, double resolver_scale = 0.01);

/// One instantiated resolver and its ground-truth stratum (the prober does
/// not see this; it is used to sanity-check inference in tests).
struct PopulationMember {
  simnet::IpAddress address;
  std::string stratum;
  bool validating = true;
};

struct BuiltPopulation {
  std::vector<std::unique_ptr<resolver::RecursiveResolver>> resolvers;
  std::vector<PopulationMember> members;
};

/// Instantiates a panel on the internet. Addresses are allocated from
/// `address_base` upward (v4/v6 chosen by the panel).
BuiltPopulation instantiate_panel(testbed::Internet& internet,
                                  const PanelSpec& spec,
                                  std::uint32_t address_base,
                                  std::uint64_t seed = 7);

}  // namespace zh::workload
