#include "workload/popularity.hpp"

#include <algorithm>

namespace zh::workload {
namespace {

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

enum class Category {
  kPlain,        // not DNSSEC-enabled
  kNsecOnly,     // DNSSEC but not NSEC3
  kBoth,         // NSEC3, zero iterations AND no salt
  kZeroOnly,     // NSEC3, zero iterations, salted
  kNoSaltOnly,   // NSEC3, iterations > 0, no salt
  kNeither,      // NSEC3, iterations > 0, salted
};

Category classify(const DomainProfile& profile) {
  if (!profile.dnssec) return Category::kPlain;
  if (profile.denial != zone::DenialMode::kNsec3) return Category::kNsecOnly;
  const bool zero = profile.nsec3.iterations == 0;
  const bool saltless = profile.nsec3.salt.empty();
  if (zero && saltless) return Category::kBoth;
  if (zero) return Category::kZeroOnly;
  if (saltless) return Category::kNoSaltOnly;
  return Category::kNeither;
}

}  // namespace

PopularityList::PopularityList(const EcosystemSpec& spec, Options options) {
  // Pools of domain indexes by category (one pass over the population).
  std::vector<std::size_t> pools[6];
  for (std::size_t i = 0; i < spec.domain_count(); ++i) {
    pools[static_cast<int>(classify(spec.domain(i)))].push_back(i);
  }

  // Per-rank category probabilities from the paper's intersections.
  constexpr double kDnssec = 0.0666;
  constexpr double kNsec3GivenDnssec = 0.408;
  const double nsec3 = kDnssec * kNsec3GivenDnssec;
  const double p_both = nsec3 * 0.127;
  const double p_zero_only = nsec3 * (0.228 - 0.127);
  const double p_nosalt_only = nsec3 * (0.236 - 0.127);
  const double p_neither = nsec3 - p_both - p_zero_only - p_nosalt_only;
  const double p_nsec_only = kDnssec - nsec3;

  std::size_t cursor[6] = {};
  const auto take = [&](Category category) -> std::optional<std::size_t> {
    auto& pool = pools[static_cast<int>(category)];
    auto& pos = cursor[static_cast<int>(category)];
    if (pos >= pool.size()) return std::nullopt;
    return pool[pos++];
  };

  entries_.reserve(options.size);
  for (std::uint64_t rank = 1; entries_.size() < options.size; ++rank) {
    if (rank > options.size * 4) break;  // population exhausted
    const double draw =
        static_cast<double>(splitmix(options.seed ^ rank) >> 11) /
        9007199254740992.0;
    Category category;
    double acc = p_both;
    if (draw < acc) {
      category = Category::kBoth;
    } else if (draw < (acc += p_zero_only)) {
      category = Category::kZeroOnly;
    } else if (draw < (acc += p_nosalt_only)) {
      category = Category::kNoSaltOnly;
    } else if (draw < (acc += p_neither)) {
      category = Category::kNeither;
    } else if (draw < (acc += p_nsec_only)) {
      category = Category::kNsecOnly;
    } else {
      category = Category::kPlain;
    }
    auto index = take(category);
    if (!index) index = take(Category::kPlain);  // graceful degradation
    if (!index) continue;
    entries_.push_back(
        RankedDomain{static_cast<std::uint64_t>(entries_.size() + 1),
                     *index});
  }
}

}  // namespace zh::workload
