#include "workload/resolver_population.hpp"

#include <algorithm>
#include <cmath>

namespace zh::workload {
namespace {

using resolver::RecursiveResolver;
using resolver::ResolverProfile;

/// splitmix64 for deterministic stratum assignment.
std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::vector<PopulationEntry> open_v4_entries() {
  std::vector<PopulationEntry> entries;
  const auto direct = [&](ResolverProfile profile, double weight) {
    entries.push_back(PopulationEntry{std::move(profile), weight, {}});
  };
  const auto forwarded = [&](ResolverProfile profile, double weight,
                             std::string via) {
    entries.push_back(
        PopulationEntry{std::move(profile), weight, std::move(via)});
  };

  // Item 6 @ 100: 36.4 % behave like Google Public DNS — a mix of direct
  // deployments and CPE forwarders (the paper's server logs show the
  // forwarding targets).
  direct(ResolverProfile::google_public_dns(), 0.20);
  forwarded(ResolverProfile::non_validating(), 0.164, "google-public-dns");
  // Item 6 @ 150: the 2021 open-source defaults.
  direct(ResolverProfile::bind9_2021(), 0.10);
  direct(ResolverProfile::unbound(), 0.06);
  direct(ResolverProfile::knot_2021(), 0.03);
  direct(ResolverProfile::powerdns_2021(), 0.024);
  direct(ResolverProfile::item7_violator(), 0.002);  // §5.2: 0.2 %
  // Item 6 @ 50: CVE-2023-50868-patched (12.5× fewer than the 150 group).
  direct(ResolverProfile::bind9_2023(), 0.012);
  direct(ResolverProfile::knot_2023(), 0.005);
  // Item 8 @ 150: Cloudflare/OpenDNS directly or via forwarders.
  forwarded(ResolverProfile::non_validating(), 0.06, "cloudflare-1.1.1.1");
  forwarded(ResolverProfile::non_validating(), 0.04, "cisco-opendns");
  direct(ResolverProfile::cloudflare(), 0.05);
  direct(ResolverProfile::opendns(), 0.028);
  // Item 8 oddballs.
  direct(ResolverProfile::technitium(), 0.0009);   // 92 of 105.2 K
  direct(ResolverProfile::strict_zero(), 0.004);   // 418 of 105.2 K
  // Item 12 gap (§5.2: 4.3 % show a gap, mostly flaky — modelled small).
  direct(ResolverProfile::item12_gap(), 0.01);
  // No RFC 9276 limit at all (the RFC 5155 ceiling still applies).
  direct(ResolverProfile::permissive(), 0.21);
  return entries;
}

std::vector<PopulationEntry> open_v6_entries() {
  std::vector<PopulationEntry> entries = open_v4_entries();
  // IPv6 responders skew towards modern deployments: fewer broken CPE
  // devices, more direct public-resolver anycast.
  for (auto& entry : entries) {
    if (entry.profile.name == "strict-zero") entry.weight = 0.0005;
    if (entry.profile.name == "permissive") entry.weight = 0.24;
  }
  return entries;
}

std::vector<PopulationEntry> closed_entries() {
  std::vector<PopulationEntry> entries = open_v4_entries();
  // RIPE Atlas probes sit behind ISP/enterprise resolvers: hardly any
  // strict-zero devices, fewer Google-behaviour forwarders.
  for (auto& entry : entries) {
    if (entry.profile.name == "strict-zero") entry.weight = 0.0;
    if (entry.profile.name == "technitium") entry.weight = 0.0;
    if (entry.profile.name == "google-public-dns") entry.weight = 0.16;
    if (entry.profile.name == "non-validating" &&
        entry.forward_via == "google-public-dns")
      entry.weight = 0.12;
    if (entry.profile.name == "bind9-9.16.16") entry.weight = 0.15;
    if (entry.profile.name == "unbound-1.13.2") entry.weight = 0.08;
    // Managed ISP/enterprise resolvers patched CVE-2023-50868 earlier than
    // the open population (keeps the paper's aggregate 12.5× ratio between
    // the 150- and 50-limit groups).
    if (entry.profile.name == "bind9-9.19.19") entry.weight = 0.021;
    if (entry.profile.name == "knot-resolver-5.7") entry.weight = 0.010;
    if (entry.profile.name == "permissive") entry.weight = 0.17;
  }
  return entries;
}

}  // namespace

std::string to_string(Panel panel) {
  switch (panel) {
    case Panel::kOpenV4: return "open-ipv4";
    case Panel::kOpenV6: return "open-ipv6";
    case Panel::kClosedV4: return "closed-ipv4";
    case Panel::kClosedV6: return "closed-ipv6";
  }
  return "?";
}

PanelSpec figure3_panel(Panel panel, double resolver_scale) {
  PanelSpec spec;
  spec.panel = panel;
  switch (panel) {
    case Panel::kOpenV4:
      spec.validator_count = static_cast<std::size_t>(105200 * resolver_scale);
      spec.entries = open_v4_entries();
      break;
    case Panel::kOpenV6:
      spec.validator_count = static_cast<std::size_t>(6800 * resolver_scale);
      spec.entries = open_v6_entries();
      break;
    case Panel::kClosedV4:
      spec.validator_count = 1236;  // small enough: no scaling
      spec.entries = closed_entries();
      break;
    case Panel::kClosedV6:
      spec.validator_count = 689;
      spec.entries = closed_entries();
      break;
  }
  spec.validator_count = std::max<std::size_t>(spec.validator_count, 50);
  // ~10 % extra plain resolvers that the validator filter must reject.
  spec.non_validator_count = spec.validator_count / 10;
  return spec;
}

BuiltPopulation instantiate_panel(testbed::Internet& internet,
                                  const PanelSpec& spec,
                                  std::uint32_t address_base,
                                  std::uint64_t seed) {
  BuiltPopulation built;
  const bool v6 =
      spec.panel == Panel::kOpenV6 || spec.panel == Panel::kClosedV6;

  // Shared public-resolver upstreams for the forwarder strata.
  std::unordered_map<std::string, simnet::IpAddress> upstreams;
  std::uint32_t next = address_base;
  // Skip any address already taken (TLD/operator servers live in the low
  // 10.0/16 range; colliding would silently replace an authoritative node).
  const auto fresh_address = [&] {
    for (;;) {
      const auto address = simnet::IpAddress::from_index(v6, next++);
      if (!internet.network().is_attached(address)) return address;
    }
  };
  const auto upstream_for = [&](const std::string& name) {
    const auto it = upstreams.find(name);
    if (it != upstreams.end()) return it->second;
    ResolverProfile profile;
    if (name == "google-public-dns")
      profile = ResolverProfile::google_public_dns();
    else if (name == "cloudflare-1.1.1.1")
      profile = ResolverProfile::cloudflare();
    else
      profile = ResolverProfile::opendns();
    const auto address = fresh_address();
    built.resolvers.push_back(internet.make_resolver(profile, address));
    upstreams.emplace(name, address);
    return address;
  };

  // Cumulative weights.
  std::vector<double> cumulative;
  double acc = 0.0;
  for (const auto& entry : spec.entries) {
    acc += entry.weight;
    cumulative.push_back(acc);
  }

  for (std::size_t i = 0; i < spec.validator_count; ++i) {
    const double draw =
        static_cast<double>(splitmix(seed ^ (i * 2 + 1)) >> 11) /
        9007199254740992.0 * acc;
    std::size_t slot = static_cast<std::size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), draw) -
        cumulative.begin());
    if (slot >= spec.entries.size()) slot = spec.entries.size() - 1;
    const PopulationEntry& entry = spec.entries[slot];

    const auto address = fresh_address();
    if (entry.forward_via.empty()) {
      built.resolvers.push_back(
          internet.make_resolver(entry.profile, address));
      built.members.push_back(
          PopulationMember{address, entry.profile.name, true});
    } else {
      RecursiveResolver::Config config;
      config.address = address;
      config.profile = entry.profile;
      config.forward = true;
      config.forward_target = upstream_for(entry.forward_via);
      config.trust_anchor = internet.trust_anchor();
      auto fwd = std::make_unique<RecursiveResolver>(
          internet.network(), std::move(config), internet.root_servers());
      fwd->attach();
      built.resolvers.push_back(std::move(fwd));
      built.members.push_back(PopulationMember{
          address, "forward:" + entry.forward_via, true});
    }
  }

  for (std::size_t i = 0; i < spec.non_validator_count; ++i) {
    const auto address = fresh_address();
    built.resolvers.push_back(
        internet.make_resolver(ResolverProfile::non_validating(), address));
    built.members.push_back(
        PopulationMember{address, "non-validating", false});
  }
  return built;
}

}  // namespace zh::workload
