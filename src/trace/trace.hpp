// zh::trace — deterministic per-query tracing & metrics.
//
// The paper's claims hinge on *where* a query spends its virtual time
// (recursion depth, NSEC3 proof validation, retransmits, queue waits), yet
// until this subsystem the repo only exposed end-to-end numbers through
// scattered counters. zh::trace is the observability backbone: span-based
// structured events stamped with **virtual-time** timestamps, a named
// counter registry, and per-stage latency accumulators — all deterministic
// (same seed ⇒ byte-identical trace output; no wall clock anywhere).
//
// Layering: this is a leaf library (it depends only on zh_crypto, for the
// CostMeter deltas spans capture). simtime::ServiceQueue, simnet::Network,
// the resolver and the authoritative server all sit *above* it; the
// virtual clock reaches the tracer through the tiny TimeSource interface
// (implemented by simnet::Network over its simtime::Clock).
//
// Concurrency: a Tracer is as single-threaded as the Network that owns it
// (one-network-per-worker contract, simnet/network.hpp). Sharded campaigns
// therefore trace lock-free into per-shard buffers and merge them in
// deterministic shard order afterwards (trace/export.hpp) — the same shape
// that keeps campaign statistics bit-identical for any --jobs value.
//
// Cost contract: tracing is compiled in but OFF by default. With the
// tracer disabled every event emission collapses to one branch, and
// nothing here ever touches the clock, the loss RNG or any query count —
// zero-config runs stay byte-identical to the goldens. Metrics counters
// and stage accumulators are always on (plain integer adds) because they
// produce no output unless something prints them.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace zh::trace {

/// Source of virtual-time timestamps. Implemented by simnet::Network over
/// its simtime::Clock; abstract so zh_trace stays below simtime.
class TimeSource {
 public:
  virtual ~TimeSource() = default;
  virtual std::int64_t now_ns() const = 0;
};

/// The per-query latency stages surfaced in campaign/sweep statistics.
/// Stages overlap deliberately (kResolve spans the whole query while
/// kRecurse/kValidate/kQueueWait time its components), so the four series
/// are a breakdown, not a partition.
enum class Stage : unsigned {
  kResolve = 0,   // whole resolver handle(), end to end
  kRecurse,       // upstream query_servers time (waits + nested deliveries)
  kValidate,      // DNSSEC validation (clock delta + projected hash cost)
  kQueueWait,     // backlog waiting time at bounded service queues
};
inline constexpr std::size_t kStageCount = 4;
const char* stage_name(Stage stage) noexcept;

/// Per-stage monotone virtual-time totals, in nanoseconds. Campaigns
/// snapshot these around each item and aggregate the deltas.
using StageTotals = std::array<std::int64_t, kStageCount>;

inline StageTotals stage_delta(const StageTotals& after,
                               const StageTotals& before) noexcept {
  StageTotals delta{};
  for (std::size_t i = 0; i < kStageCount; ++i)
    delta[i] = after[i] - before[i];
  return delta;
}

/// One structured trace event. `category`/`name` are static string
/// literals (no allocation on the hot path); `detail` carries the dynamic
/// payload (qname, apex, destination) and is only built when tracing is
/// enabled.
struct Event {
  enum class Phase : std::uint8_t {
    kSpan,     // has a duration (Chrome "X" complete event)
    kInstant,  // a point in virtual time (Chrome "i")
  };

  Phase phase = Phase::kInstant;
  const char* category = "";
  const char* name = "";
  std::string detail;
  std::int64_t ts_ns = 0;   // virtual time — deterministic by construction
  std::int64_t dur_ns = 0;  // 0 for instants
  std::uint64_t flow = 0;   // the owning Network's flow key at emission
  /// SHA-1 compression blocks spent inside the span (CostMeter delta) —
  /// the CVE-2023-50868 cost signal attached to the time axis.
  std::uint64_t sha1_blocks = 0;
  /// Span nesting depth at open (0 = top level).
  std::uint32_t depth = 0;
};

/// Named monotone counters (cache hits, LRU evictions, re-signs,
/// retransmits, queue sheds, ...) registered through one registry instead
/// of scattered struct fields. counter() returns a stable slot pointer —
/// hot call sites register once and increment through the pointer, which
/// is why the registry can stay always-on without measurable cost.
class Metrics {
 public:
  using Counter = std::uint64_t*;

  /// Registers (or finds) a counter; the returned pointer stays valid for
  /// the registry's lifetime (node-based map).
  Counter counter(const std::string& name) { return &counters_[name]; }

  /// Adds to a counter by name — for cold call sites without a handle.
  void add(const std::string& name, std::uint64_t n = 1) {
    counters_[name] += n;
  }

  /// Current value; 0 for never-registered names.
  std::uint64_t value(std::string_view name) const;

  /// Sorted (name, value) pairs — the deterministic export order.
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

  void merge(const Metrics& other);
  void clear() { counters_.clear(); }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

/// Trace serialisation formats (trace/export.hpp implements both).
enum class Format {
  kJsonl,
  kChrome,
};

/// Tracer configuration. Default: disabled, 64 Ki-event ring, JSONL.
struct Config {
  bool enabled = false;
  /// Bounded ring capacity per shard: once full, new events overwrite the
  /// oldest (the trace keeps the most recent window; `lost` counts the
  /// overwritten ones).
  std::size_t buffer_capacity = 1 << 16;
  /// Export format used when the configured trace is written out. Carried
  /// here so one options struct holds *everything* a flag parser hands
  /// over (bench --trace-format lands in the same Config as --trace).
  Format format = Format::kJsonl;
};

/// One shard's trace, detached from its Tracer for cross-thread merging.
struct ShardTrace {
  std::vector<Event> events;  // oldest → newest
  std::uint64_t emitted = 0;  // events offered to the ring
  std::uint64_t lost = 0;     // overwritten by ring wrap-around
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // sorted
  StageTotals stage_ns{};
};

class Tracer;

/// RAII span handle: opens at construction (virtual-time stamp + CostMeter
/// snapshot), emits one Event::kSpan on destruction. Default-constructed
/// spans are inert — the disabled-tracer path hands those out, so a span
/// on a hot path costs one branch when tracing is off.
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  ~Span() { close(); }

  bool active() const noexcept { return tracer_ != nullptr; }
  /// Emits the event now (idempotent; the destructor calls it too).
  void close() noexcept;

 private:
  friend class Tracer;
  Tracer* tracer_ = nullptr;
  const char* category_ = "";
  const char* name_ = "";
  std::string detail_;
  std::int64_t start_ns_ = 0;
  std::uint64_t sha1_start_ = 0;
  std::uint32_t depth_ = 0;
};

/// Scoped per-stage accumulation: adds the enclosed virtual-time delta to
/// the tracer's stage total. Always on (stage totals feed campaign stats
/// whether or not event tracing is enabled; they are all zero when no time
/// model moves the clock).
class StageTimer {
 public:
  StageTimer(Tracer& tracer, Stage stage);
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer();

 private:
  Tracer* tracer_;
  Stage stage_;
  std::int64_t start_ns_;
};

/// The per-Network event sink: a bounded ring of Events, the Metrics
/// registry, and the stage accumulators. Strictly single-threaded (owned
/// by a Network, which is bound to one worker thread).
class Tracer {
 public:
  explicit Tracer(const TimeSource* time) : time_(time) {}

  /// Applies a configuration; clears the event buffer (not the metrics).
  void configure(const Config& config);
  bool enabled() const noexcept { return enabled_; }

  std::int64_t now_ns() const { return time_ ? time_->now_ns() : 0; }

  /// Opens a span (inert when disabled — but note the `detail` argument is
  /// built by the caller, so call sites with a dynamic detail should guard
  /// on enabled() before constructing it).
  Span span(const char* category, const char* name, std::string detail = {});

  /// Emits a point event at the current virtual time. No-op when disabled.
  void instant(const char* category, const char* name,
               std::string detail = {});

  /// Emits a pre-stamped event (layers that know better timestamps than
  /// "now", e.g. a queue admission's arrival time). No-op when disabled.
  void emit(Event event);

  Metrics& metrics() noexcept { return metrics_; }
  const Metrics& metrics() const noexcept { return metrics_; }
  /// Cold-path convenience for call sites without a cached handle.
  void count(const char* name, std::uint64_t n = 1) { metrics_.add(name, n); }

  void add_stage(Stage stage, std::int64_t ns) noexcept {
    stage_ns_[static_cast<std::size_t>(stage)] += ns;
  }
  std::int64_t stage_ns(Stage stage) const noexcept {
    return stage_ns_[static_cast<std::size_t>(stage)];
  }
  StageTotals stages() const noexcept { return stage_ns_; }

  /// Flow key stamped onto subsequent events (set by Network::set_flow).
  void set_flow(std::uint64_t key) noexcept { flow_ = key; }

  std::uint64_t events_emitted() const noexcept { return emitted_; }
  std::uint64_t events_lost() const noexcept {
    return emitted_ > ring_.size() ? emitted_ - ring_.size() : 0;
  }

  /// Copies out this shard's trace (events unrolled oldest → newest).
  ShardTrace take() const;

  /// Drops buffered events, counters and stage totals (keeps the config).
  void clear();

 private:
  friend class Span;
  void close_span(Span& span);
  void push(Event&& event);

  const TimeSource* time_ = nullptr;
  bool enabled_ = false;
  std::size_t capacity_ = 1 << 16;
  std::vector<Event> ring_;
  std::size_t next_ = 0;      // ring write position once full
  std::uint64_t emitted_ = 0;
  std::uint32_t open_depth_ = 0;
  std::uint64_t flow_ = 0;
  Metrics metrics_;
  StageTotals stage_ns_{};
};

}  // namespace zh::trace
