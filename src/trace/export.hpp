// Trace export: deterministic merging of per-shard traces + serialisers.
//
// The Collector mirrors the campaign-stats merge contract
// (docs/DETERMINISM.md): shards are keyed by shard index and serialised in
// ascending shard order, so the merged output depends only on (seed,
// jobs), never on worker scheduling. Two formats:
//
//   * JSONL — one event object per line, fixed key order, integer-only
//     number formatting ⇒ byte-comparable across runs.
//   * Chrome trace_event — a `chrome://tracing` / Perfetto-loadable JSON
//     document ("X" complete events / "i" instants, ts+dur in µs, one tid
//     per shard).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/trace.hpp"

namespace zh::trace {

// Format itself lives in trace/trace.hpp (it is part of trace::Config);
// the parse/name helpers and serialisers stay here with the writers.

/// Parses "jsonl" / "chrome"; nullopt otherwise.
std::optional<Format> parse_format(std::string_view text) noexcept;
const char* format_name(Format format) noexcept;

/// Accumulates ShardTraces and serialises them in shard order.
class Collector {
 public:
  /// Adds (or replaces) one shard's trace. Workers fill ShardTraces
  /// privately; the merge loop calls this sequentially in shard order.
  void add_shard(unsigned shard, ShardTrace trace);

  std::size_t shard_count() const noexcept { return shards_.size(); }
  /// Buffered events across all shards (post ring-bound).
  std::uint64_t event_count() const noexcept;
  /// Events offered to the rings across all shards.
  std::uint64_t events_emitted() const noexcept;
  /// Events dropped by ring wrap-around across all shards.
  std::uint64_t events_lost() const noexcept;

  /// Summed counter value across shards (0 if never registered).
  std::uint64_t metric(std::string_view name) const;
  /// All counters summed across shards, sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> metrics() const;
  /// Summed per-stage virtual-time totals across shards.
  StageTotals stage_totals() const;

  std::string to_jsonl() const;
  std::string to_chrome() const;
  std::string serialise(Format format) const {
    return format == Format::kJsonl ? to_jsonl() : to_chrome();
  }

  /// Writes the serialised trace; returns false on I/O failure.
  bool write_file(const std::string& path, Format format) const;

 private:
  std::map<unsigned, ShardTrace> shards_;
};

}  // namespace zh::trace
