#include "trace/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace zh::trace {
namespace {

// Minimal JSON string escaping (quotes, backslash, control bytes). Trace
// details are DNS names and addresses, so the fast path copies verbatim.
void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

// Nanoseconds → microseconds with three decimals, integer math only (no
// floating point in the byte-identity path).
void append_us(std::string& out, std::int64_t ns) {
  const std::int64_t sign = ns < 0 ? -1 : 1;
  const std::int64_t abs_ns = ns * sign;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%s%" PRId64 ".%03" PRId64,
                sign < 0 ? "-" : "", abs_ns / 1000, abs_ns % 1000);
  out += buf;
}

}  // namespace

std::optional<Format> parse_format(std::string_view text) noexcept {
  if (text == "jsonl") return Format::kJsonl;
  if (text == "chrome") return Format::kChrome;
  return std::nullopt;
}

const char* format_name(Format format) noexcept {
  return format == Format::kJsonl ? "jsonl" : "chrome";
}

void Collector::add_shard(unsigned shard, ShardTrace trace) {
  shards_[shard] = std::move(trace);
}

std::uint64_t Collector::event_count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& [shard, trace] : shards_) n += trace.events.size();
  return n;
}

std::uint64_t Collector::events_emitted() const noexcept {
  std::uint64_t n = 0;
  for (const auto& [shard, trace] : shards_) n += trace.emitted;
  return n;
}

std::uint64_t Collector::events_lost() const noexcept {
  std::uint64_t n = 0;
  for (const auto& [shard, trace] : shards_) n += trace.lost;
  return n;
}

std::uint64_t Collector::metric(std::string_view name) const {
  std::uint64_t total = 0;
  for (const auto& [shard, trace] : shards_)
    for (const auto& [counter, value] : trace.counters)
      if (counter == name) total += value;
  return total;
}

std::vector<std::pair<std::string, std::uint64_t>> Collector::metrics() const {
  std::map<std::string, std::uint64_t> merged;
  for (const auto& [shard, trace] : shards_)
    for (const auto& [counter, value] : trace.counters)
      merged[counter] += value;
  return {merged.begin(), merged.end()};
}

StageTotals Collector::stage_totals() const {
  StageTotals totals{};
  for (const auto& [shard, trace] : shards_)
    for (std::size_t i = 0; i < kStageCount; ++i)
      totals[i] += trace.stage_ns[i];
  return totals;
}

std::string Collector::to_jsonl() const {
  std::string out;
  for (const auto& [shard, trace] : shards_) {
    for (const Event& e : trace.events) {
      out += "{\"shard\":";
      append_u64(out, shard);
      out += ",\"ph\":\"";
      out += e.phase == Event::Phase::kSpan ? 'X' : 'i';
      out += "\",\"cat\":\"";
      out += e.category;
      out += "\",\"name\":\"";
      out += e.name;
      out += "\",\"ts\":";
      append_i64(out, e.ts_ns);
      if (e.phase == Event::Phase::kSpan) {
        out += ",\"dur\":";
        append_i64(out, e.dur_ns);
      }
      if (e.flow != 0) {
        out += ",\"flow\":";
        append_u64(out, e.flow);
      }
      if (e.sha1_blocks != 0) {
        out += ",\"sha1\":";
        append_u64(out, e.sha1_blocks);
      }
      if (e.depth != 0) {
        out += ",\"depth\":";
        append_u64(out, e.depth);
      }
      if (!e.detail.empty()) {
        out += ",\"detail\":\"";
        append_escaped(out, e.detail);
        out += '"';
      }
      out += "}\n";
    }
    // One metadata line per shard so the stream is self-describing.
    out += "{\"shard\":";
    append_u64(out, shard);
    out += ",\"ph\":\"M\",\"name\":\"shard_summary\",\"emitted\":";
    append_u64(out, trace.emitted);
    out += ",\"lost\":";
    append_u64(out, trace.lost);
    for (std::size_t i = 0; i < kStageCount; ++i) {
      out += ",\"stage_";
      out += stage_name(static_cast<Stage>(i));
      out += "_ns\":";
      append_i64(out, trace.stage_ns[i]);
    }
    for (const auto& [counter, value] : trace.counters) {
      out += ",\"";
      append_escaped(out, counter);
      out += "\":";
      append_u64(out, value);
    }
    out += "}\n";
  }
  return out;
}

std::string Collector::to_chrome() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [shard, trace] : shards_) {
    for (const Event& e : trace.events) {
      if (!first) out += ',';
      first = false;
      out += "\n{\"pid\":1,\"tid\":";
      append_u64(out, shard + 1);
      out += ",\"ph\":\"";
      out += e.phase == Event::Phase::kSpan ? 'X' : 'i';
      out += "\",\"cat\":\"";
      out += e.category;
      out += "\",\"name\":\"";
      out += e.name;
      out += "\",\"ts\":";
      append_us(out, e.ts_ns);
      if (e.phase == Event::Phase::kSpan) {
        out += ",\"dur\":";
        append_us(out, e.dur_ns);
      } else {
        out += ",\"s\":\"t\"";  // instant scope: thread
      }
      out += ",\"args\":{\"flow\":";
      append_u64(out, e.flow);
      out += ",\"sha1_blocks\":";
      append_u64(out, e.sha1_blocks);
      out += ",\"depth\":";
      append_u64(out, e.depth);
      if (!e.detail.empty()) {
        out += ",\"detail\":\"";
        append_escaped(out, e.detail);
        out += '"';
      }
      out += "}}";
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool Collector::write_file(const std::string& path, Format format) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string body = serialise(format);
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = written == body.size() && std::fclose(f) == 0;
  if (!ok && written != body.size()) std::fclose(f);
  return ok;
}

}  // namespace zh::trace
