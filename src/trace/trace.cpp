#include "trace/trace.hpp"

#include <algorithm>

#include "crypto/cost_meter.hpp"

namespace zh::trace {

const char* stage_name(Stage stage) noexcept {
  switch (stage) {
    case Stage::kResolve:
      return "resolve";
    case Stage::kRecurse:
      return "recurse";
    case Stage::kValidate:
      return "validate";
    case Stage::kQueueWait:
      return "queue_wait";
  }
  return "?";
}

std::uint64_t Metrics::value(std::string_view name) const {
  const auto it = counters_.find(std::string(name));
  return it == counters_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> Metrics::snapshot() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, value] : counters_) out.emplace_back(name, value);
  return out;  // std::map iteration order — already sorted by name
}

void Metrics::merge(const Metrics& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    close();
    tracer_ = other.tracer_;
    category_ = other.category_;
    name_ = other.name_;
    detail_ = std::move(other.detail_);
    start_ns_ = other.start_ns_;
    sha1_start_ = other.sha1_start_;
    depth_ = other.depth_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::close() noexcept {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  tracer->close_span(*this);
}

StageTimer::StageTimer(Tracer& tracer, Stage stage)
    : tracer_(&tracer), stage_(stage), start_ns_(tracer.now_ns()) {}

StageTimer::~StageTimer() {
  tracer_->add_stage(stage_, tracer_->now_ns() - start_ns_);
}

void Tracer::configure(const Config& config) {
  enabled_ = config.enabled;
  capacity_ = std::max<std::size_t>(1, config.buffer_capacity);
  ring_.clear();
  ring_.shrink_to_fit();
  if (enabled_) ring_.reserve(std::min<std::size_t>(capacity_, 4096));
  next_ = 0;
  emitted_ = 0;
}

Span Tracer::span(const char* category, const char* name, std::string detail) {
  Span span;
  if (!enabled_) return span;
  span.tracer_ = this;
  span.category_ = category;
  span.name_ = name;
  span.detail_ = std::move(detail);
  span.start_ns_ = now_ns();
  span.sha1_start_ = crypto::CostMeter::sha1_blocks();
  span.depth_ = open_depth_++;
  return span;
}

void Tracer::instant(const char* category, const char* name,
                     std::string detail) {
  if (!enabled_) return;
  Event event;
  event.phase = Event::Phase::kInstant;
  event.category = category;
  event.name = name;
  event.detail = std::move(detail);
  event.ts_ns = now_ns();
  event.depth = open_depth_;
  push(std::move(event));
}

void Tracer::emit(Event event) {
  if (!enabled_) return;
  push(std::move(event));
}

void Tracer::close_span(Span& span) {
  if (open_depth_ > 0) --open_depth_;
  Event event;
  event.phase = Event::Phase::kSpan;
  event.category = span.category_;
  event.name = span.name_;
  event.detail = std::move(span.detail_);
  event.ts_ns = span.start_ns_;
  event.dur_ns = now_ns() - span.start_ns_;
  event.sha1_blocks = crypto::CostMeter::sha1_blocks() - span.sha1_start_;
  event.depth = span.depth_;
  push(std::move(event));
}

void Tracer::push(Event&& event) {
  event.flow = flow_;
  ++emitted_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  ring_[next_] = std::move(event);
  next_ = (next_ + 1) % capacity_;
}

ShardTrace Tracer::take() const {
  ShardTrace out;
  out.emitted = emitted_;
  out.lost = events_lost();
  out.counters = metrics_.snapshot();
  out.stage_ns = stage_ns_;
  out.events.reserve(ring_.size());
  // Unroll the ring oldest → newest: once it has wrapped, `next_` is the
  // oldest slot.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.events.push_back(ring_[(next_ + i) % ring_.size()]);
  return out;
}

void Tracer::clear() {
  ring_.clear();
  next_ = 0;
  emitted_ = 0;
  open_depth_ = 0;
  flow_ = 0;
  metrics_.clear();
  stage_ns_ = StageTotals{};
}

}  // namespace zh::trace
