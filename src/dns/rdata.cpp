#include "dns/rdata.hpp"

#include <cstdio>

#include "dns/io.hpp"

namespace zh::dns {
namespace {

void write_name(ByteWriter& w, const Name& name) {
  w.bytes(name.to_wire());
}

/// Reads an *uncompressed* wire name (rdata context; compression pointers
/// are normalised away before rdata is stored).
std::optional<Name> read_name(ByteReader& r) {
  std::vector<std::string> labels;
  std::size_t total = 1;
  for (;;) {
    const auto len = r.u8();
    if (!len) return std::nullopt;
    if (*len == 0) break;
    if (*len > Name::kMaxLabelLength) return std::nullopt;  // no pointers here
    const auto bytes = r.view(*len);
    if (!bytes) return std::nullopt;
    labels.emplace_back(reinterpret_cast<const char*>(bytes->data()),
                        bytes->size());
    total += 1 + *len;
    if (total > Name::kMaxWireLength) return std::nullopt;
  }
  return Name::from_labels(std::move(labels));
}

}  // namespace

RdataBytes ARdata::encode() const {
  return RdataBytes(address.begin(), address.end());
}

std::optional<ARdata> ARdata::decode(std::span<const std::uint8_t> rdata) {
  if (rdata.size() != 4) return std::nullopt;
  ARdata out;
  std::copy(rdata.begin(), rdata.end(), out.address.begin());
  return out;
}

std::string ARdata::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", address[0], address[1],
                address[2], address[3]);
  return buf;
}

RdataBytes AaaaRdata::encode() const {
  return RdataBytes(address.begin(), address.end());
}

std::optional<AaaaRdata> AaaaRdata::decode(
    std::span<const std::uint8_t> rdata) {
  if (rdata.size() != 16) return std::nullopt;
  AaaaRdata out;
  std::copy(rdata.begin(), rdata.end(), out.address.begin());
  return out;
}

std::string AaaaRdata::to_string() const {
  std::string out;
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    const std::uint16_t group = static_cast<std::uint16_t>(
        (address[static_cast<std::size_t>(2 * i)] << 8) |
        address[static_cast<std::size_t>(2 * i + 1)]);
    std::snprintf(buf, sizeof buf, "%x", group);
    if (i) out += ':';
    out += buf;
  }
  return out;
}

RdataBytes NsRdata::encode() const {
  ByteWriter w;
  write_name(w, nsdname);
  return w.take();
}

std::optional<NsRdata> NsRdata::decode(std::span<const std::uint8_t> rdata) {
  ByteReader r(rdata);
  auto name = read_name(r);
  if (!name || !r.at_end()) return std::nullopt;
  return NsRdata{*std::move(name)};
}

RdataBytes CnameRdata::encode() const {
  ByteWriter w;
  write_name(w, target);
  return w.take();
}

std::optional<CnameRdata> CnameRdata::decode(
    std::span<const std::uint8_t> rdata) {
  ByteReader r(rdata);
  auto name = read_name(r);
  if (!name || !r.at_end()) return std::nullopt;
  return CnameRdata{*std::move(name)};
}

RdataBytes MxRdata::encode() const {
  ByteWriter w;
  w.u16(preference);
  write_name(w, exchange);
  return w.take();
}

std::optional<MxRdata> MxRdata::decode(std::span<const std::uint8_t> rdata) {
  ByteReader r(rdata);
  const auto pref = r.u16();
  if (!pref) return std::nullopt;
  auto name = read_name(r);
  if (!name || !r.at_end()) return std::nullopt;
  return MxRdata{*pref, *std::move(name)};
}

RdataBytes TxtRdata::encode() const {
  ByteWriter w;
  for (const auto& s : strings) {
    const std::size_t len = std::min<std::size_t>(s.size(), 255);
    w.u8(static_cast<std::uint8_t>(len));
    w.bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), len));
  }
  return w.take();
}

std::optional<TxtRdata> TxtRdata::decode(std::span<const std::uint8_t> rdata) {
  TxtRdata out;
  ByteReader r(rdata);
  while (!r.at_end()) {
    const auto len = r.u8();
    if (!len) return std::nullopt;
    const auto bytes = r.view(*len);
    if (!bytes) return std::nullopt;
    out.strings.emplace_back(reinterpret_cast<const char*>(bytes->data()),
                             bytes->size());
  }
  return out;
}

RdataBytes SoaRdata::encode() const {
  ByteWriter w;
  write_name(w, mname);
  write_name(w, rname);
  w.u32(serial);
  w.u32(refresh);
  w.u32(retry);
  w.u32(expire);
  w.u32(minimum);
  return w.take();
}

std::optional<SoaRdata> SoaRdata::decode(std::span<const std::uint8_t> rdata) {
  ByteReader r(rdata);
  auto mname = read_name(r);
  if (!mname) return std::nullopt;
  auto rname = read_name(r);
  if (!rname) return std::nullopt;
  SoaRdata out;
  out.mname = *std::move(mname);
  out.rname = *std::move(rname);
  const auto serial = r.u32(), refresh = r.u32(), retry = r.u32(),
             expire = r.u32(), minimum = r.u32();
  if (!serial || !refresh || !retry || !expire || !minimum || !r.at_end())
    return std::nullopt;
  out.serial = *serial;
  out.refresh = *refresh;
  out.retry = *retry;
  out.expire = *expire;
  out.minimum = *minimum;
  return out;
}

std::uint16_t DnskeyRdata::key_tag() const {
  // RFC 4034 Appendix B: ones-complement-style checksum over the rdata.
  const RdataBytes wire = encode();
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < wire.size(); ++i)
    acc += (i & 1) ? wire[i] : (std::uint32_t{wire[i]} << 8);
  acc += (acc >> 16) & 0xffff;
  return static_cast<std::uint16_t>(acc & 0xffff);
}

RdataBytes DnskeyRdata::encode() const {
  ByteWriter w;
  w.u16(flags);
  w.u8(protocol);
  w.u8(algorithm);
  w.bytes(public_key);
  return w.take();
}

std::optional<DnskeyRdata> DnskeyRdata::decode(
    std::span<const std::uint8_t> rdata) {
  ByteReader r(rdata);
  const auto flags = r.u16();
  const auto protocol = r.u8();
  const auto algorithm = r.u8();
  if (!flags || !protocol || !algorithm) return std::nullopt;
  DnskeyRdata out;
  out.flags = *flags;
  out.protocol = *protocol;
  out.algorithm = *algorithm;
  const auto key = r.bytes(r.remaining());
  out.public_key = *key;
  return out;
}

RdataBytes RrsigRdata::encode() const {
  RdataBytes out = encode_presignature();
  out.insert(out.end(), signature.begin(), signature.end());
  return out;
}

RdataBytes RrsigRdata::encode_presignature() const {
  ByteWriter w;
  w.u16(type_covered);
  w.u8(algorithm);
  w.u8(labels);
  w.u32(original_ttl);
  w.u32(expiration);
  w.u32(inception);
  w.u16(key_tag);
  // Signer name is *not* compressed and is lowercased by convention in this
  // codebase (all generated names are lowercase).
  write_name(w, signer);
  return w.take();
}

std::optional<RrsigRdata> RrsigRdata::decode(
    std::span<const std::uint8_t> rdata) {
  ByteReader r(rdata);
  RrsigRdata out;
  const auto type_covered = r.u16();
  const auto algorithm = r.u8();
  const auto labels = r.u8();
  const auto original_ttl = r.u32();
  const auto expiration = r.u32();
  const auto inception = r.u32();
  const auto key_tag = r.u16();
  if (!type_covered || !algorithm || !labels || !original_ttl || !expiration ||
      !inception || !key_tag)
    return std::nullopt;
  auto signer = read_name(r);
  if (!signer) return std::nullopt;
  out.type_covered = *type_covered;
  out.algorithm = *algorithm;
  out.labels = *labels;
  out.original_ttl = *original_ttl;
  out.expiration = *expiration;
  out.inception = *inception;
  out.key_tag = *key_tag;
  out.signer = *std::move(signer);
  out.signature = *r.bytes(r.remaining());
  return out;
}

RdataBytes DsRdata::encode() const {
  ByteWriter w;
  w.u16(key_tag);
  w.u8(algorithm);
  w.u8(digest_type);
  w.bytes(digest);
  return w.take();
}

std::optional<DsRdata> DsRdata::decode(std::span<const std::uint8_t> rdata) {
  ByteReader r(rdata);
  const auto key_tag = r.u16();
  const auto algorithm = r.u8();
  const auto digest_type = r.u8();
  if (!key_tag || !algorithm || !digest_type) return std::nullopt;
  DsRdata out;
  out.key_tag = *key_tag;
  out.algorithm = *algorithm;
  out.digest_type = *digest_type;
  out.digest = *r.bytes(r.remaining());
  if (out.digest.empty()) return std::nullopt;
  return out;
}

RdataBytes NsecRdata::encode() const {
  ByteWriter w;
  write_name(w, next_domain);
  w.bytes(types.encode());
  return w.take();
}

std::optional<NsecRdata> NsecRdata::decode(
    std::span<const std::uint8_t> rdata) {
  ByteReader r(rdata);
  auto next = read_name(r);
  if (!next) return std::nullopt;
  const auto rest = r.view(r.remaining());
  auto types = TypeBitmap::decode(*rest);
  if (!types) return std::nullopt;
  return NsecRdata{*std::move(next), *std::move(types)};
}

RdataBytes Nsec3Rdata::encode() const {
  ByteWriter w;
  w.u8(hash_algorithm);
  w.u8(flags);
  w.u16(iterations);
  w.u8(static_cast<std::uint8_t>(salt.size()));
  w.bytes(salt);
  w.u8(static_cast<std::uint8_t>(next_hash.size()));
  w.bytes(next_hash);
  w.bytes(types.encode());
  return w.take();
}

std::optional<Nsec3Rdata> Nsec3Rdata::decode(
    std::span<const std::uint8_t> rdata) {
  ByteReader r(rdata);
  Nsec3Rdata out;
  const auto alg = r.u8();
  const auto flags = r.u8();
  const auto iterations = r.u16();
  const auto salt_len = r.u8();
  if (!alg || !flags || !iterations || !salt_len) return std::nullopt;
  const auto salt = r.bytes(*salt_len);
  if (!salt) return std::nullopt;
  const auto hash_len = r.u8();
  if (!hash_len || *hash_len == 0) return std::nullopt;
  const auto next_hash = r.bytes(*hash_len);
  if (!next_hash) return std::nullopt;
  const auto rest = r.view(r.remaining());
  auto types = TypeBitmap::decode(*rest);
  if (!types) return std::nullopt;
  out.hash_algorithm = *alg;
  out.flags = *flags;
  out.iterations = *iterations;
  out.salt = *salt;
  out.next_hash = *next_hash;
  out.types = *std::move(types);
  return out;
}

RdataBytes Nsec3ParamRdata::encode() const {
  ByteWriter w;
  w.u8(hash_algorithm);
  w.u8(flags);
  w.u16(iterations);
  w.u8(static_cast<std::uint8_t>(salt.size()));
  w.bytes(salt);
  return w.take();
}

std::optional<Nsec3ParamRdata> Nsec3ParamRdata::decode(
    std::span<const std::uint8_t> rdata) {
  ByteReader r(rdata);
  const auto alg = r.u8();
  const auto flags = r.u8();
  const auto iterations = r.u16();
  const auto salt_len = r.u8();
  if (!alg || !flags || !iterations || !salt_len) return std::nullopt;
  const auto salt = r.bytes(*salt_len);
  if (!salt || !r.at_end()) return std::nullopt;
  Nsec3ParamRdata out;
  out.hash_algorithm = *alg;
  out.flags = *flags;
  out.iterations = *iterations;
  out.salt = *salt;
  return out;
}

}  // namespace zh::dns
