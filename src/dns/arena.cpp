#include "dns/arena.hpp"

namespace zh::dns {

void* MonotonicArena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  for (;;) {
    if (current_ < slabs_.size()) {
      Slab& slab = slabs_[current_];
      const std::size_t aligned = (cursor_ + (align - 1)) & ~(align - 1);
      if (aligned + bytes <= slab.size) {
        cursor_ = aligned + bytes;
        // Used is the cursor high-point across slabs (padding included), so
        // the post-reset coalesced slab is always big enough.
        stats_.used = cursor_;
        for (std::size_t i = 0; i < current_; ++i)
          stats_.used += slabs_[i].size;
        if (stats_.used > stats_.high_water) stats_.high_water = stats_.used;
        return slab.data.get() + aligned;
      }
      // Current slab exhausted: move to the next (or grow).
      if (current_ + 1 < slabs_.size()) {
        ++current_;
        cursor_ = 0;
        continue;
      }
    }
    add_slab(bytes + align);
  }
}

void MonotonicArena::add_slab(std::size_t at_least) {
  std::size_t size = next_slab_bytes_;
  while (size < at_least) size *= 2;
  Slab slab;
  slab.data = std::make_unique<std::byte[]>(size);
  slab.size = size;
  slabs_.push_back(std::move(slab));
  ++stats_.slab_allocations;
  stats_.capacity += size;
  next_slab_bytes_ = size * 2;
  current_ = slabs_.size() - 1;
  cursor_ = 0;
}

void MonotonicArena::reset() noexcept {
  ++stats_.resets;
  if (slabs_.size() > 1) {
    // The cycle spilled: release everything and let the next allocation
    // grab one slab covering the whole high-water mark. next_slab_bytes_
    // already doubled past the combined size when the spill happened.
    stats_.capacity = 0;
    slabs_.clear();
  }
  current_ = 0;
  cursor_ = 0;
  stats_.used = 0;
}

}  // namespace zh::dns
