// Typed RDATA views (RFC 1035, 4034, 5155).
//
// Resource records carry their RDATA as raw *uncompressed* bytes
// (ResourceRecord::rdata); the structs here parse those bytes into typed
// form and serialize typed form back. Decode functions return nullopt on
// malformed input — the scanner treats such records exactly as a real
// measurement pipeline treats unparseable responses.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dns/name.hpp"
#include "dns/type_bitmap.hpp"
#include "dns/types.hpp"

namespace zh::dns {

using RdataBytes = std::vector<std::uint8_t>;

/// A (IPv4 address).
struct ARdata {
  std::array<std::uint8_t, 4> address{};

  RdataBytes encode() const;
  static std::optional<ARdata> decode(std::span<const std::uint8_t> rdata);
  std::string to_string() const;
};

/// AAAA (IPv6 address).
struct AaaaRdata {
  std::array<std::uint8_t, 16> address{};

  RdataBytes encode() const;
  static std::optional<AaaaRdata> decode(std::span<const std::uint8_t> rdata);
  std::string to_string() const;
};

/// NS (authoritative name server).
struct NsRdata {
  Name nsdname;

  RdataBytes encode() const;
  static std::optional<NsRdata> decode(std::span<const std::uint8_t> rdata);
};

/// CNAME.
struct CnameRdata {
  Name target;

  RdataBytes encode() const;
  static std::optional<CnameRdata> decode(std::span<const std::uint8_t> rdata);
};

/// MX.
struct MxRdata {
  std::uint16_t preference = 0;
  Name exchange;

  RdataBytes encode() const;
  static std::optional<MxRdata> decode(std::span<const std::uint8_t> rdata);
};

/// TXT (one or more character-strings).
struct TxtRdata {
  std::vector<std::string> strings;

  RdataBytes encode() const;
  static std::optional<TxtRdata> decode(std::span<const std::uint8_t> rdata);
};

/// SOA.
struct SoaRdata {
  Name mname;
  Name rname;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 7200;
  std::uint32_t retry = 3600;
  std::uint32_t expire = 1209600;
  std::uint32_t minimum = 3600;  // also the negative-caching TTL

  RdataBytes encode() const;
  static std::optional<SoaRdata> decode(std::span<const std::uint8_t> rdata);
};

/// DNSKEY (RFC 4034 §2).
struct DnskeyRdata {
  static constexpr std::uint16_t kFlagZoneKey = 0x0100;
  static constexpr std::uint16_t kFlagSep = 0x0001;  // KSK marker

  std::uint16_t flags = kFlagZoneKey;
  std::uint8_t protocol = 3;  // always 3 per RFC 4034
  std::uint8_t algorithm = 0;
  std::vector<std::uint8_t> public_key;

  bool is_zone_key() const noexcept { return flags & kFlagZoneKey; }
  bool is_sep() const noexcept { return flags & kFlagSep; }

  /// RFC 4034 Appendix B key tag over the wire rdata.
  std::uint16_t key_tag() const;

  RdataBytes encode() const;
  static std::optional<DnskeyRdata> decode(std::span<const std::uint8_t> rdata);
};

/// RRSIG (RFC 4034 §3).
struct RrsigRdata {
  std::uint16_t type_covered = 0;
  std::uint8_t algorithm = 0;
  std::uint8_t labels = 0;  // owner label count, wildcard excluded
  std::uint32_t original_ttl = 0;
  std::uint32_t expiration = 0;  // absolute seconds (simulation clock)
  std::uint32_t inception = 0;
  std::uint16_t key_tag = 0;
  Name signer;
  std::vector<std::uint8_t> signature;

  RrType covered() const noexcept { return static_cast<RrType>(type_covered); }

  RdataBytes encode() const;
  /// Wire form with the signature field left empty — the prefix that gets
  /// concatenated with the canonical RRset when computing signed data.
  RdataBytes encode_presignature() const;
  static std::optional<RrsigRdata> decode(std::span<const std::uint8_t> rdata);
};

/// DS (RFC 4034 §5).
struct DsRdata {
  static constexpr std::uint8_t kDigestSha1 = 1;
  static constexpr std::uint8_t kDigestSha256 = 2;

  std::uint16_t key_tag = 0;
  std::uint8_t algorithm = 0;
  std::uint8_t digest_type = kDigestSha256;
  std::vector<std::uint8_t> digest;

  RdataBytes encode() const;
  static std::optional<DsRdata> decode(std::span<const std::uint8_t> rdata);
};

/// NSEC (RFC 4034 §4).
struct NsecRdata {
  Name next_domain;
  TypeBitmap types;

  RdataBytes encode() const;
  static std::optional<NsecRdata> decode(std::span<const std::uint8_t> rdata);
};

/// NSEC3 (RFC 5155 §3). The record at the heart of the paper.
struct Nsec3Rdata {
  static constexpr std::uint8_t kFlagOptOut = 0x01;

  std::uint8_t hash_algorithm = 1;  // SHA-1, the only assigned value
  std::uint8_t flags = 0;
  std::uint16_t iterations = 0;  // *additional* iterations — RFC 9276: MUST be 0
  std::vector<std::uint8_t> salt;           // RFC 9276: SHOULD be empty
  std::vector<std::uint8_t> next_hash;      // 20 bytes for SHA-1
  TypeBitmap types;

  bool opt_out() const noexcept { return flags & kFlagOptOut; }

  RdataBytes encode() const;
  static std::optional<Nsec3Rdata> decode(std::span<const std::uint8_t> rdata);
};

/// NSEC3PARAM (RFC 5155 §4): the zone's advertised NSEC3 parameters.
struct Nsec3ParamRdata {
  std::uint8_t hash_algorithm = 1;
  std::uint8_t flags = 0;  // always 0 in NSEC3PARAM
  std::uint16_t iterations = 0;
  std::vector<std::uint8_t> salt;

  RdataBytes encode() const;
  static std::optional<Nsec3ParamRdata> decode(
      std::span<const std::uint8_t> rdata);
};

}  // namespace zh::dns
