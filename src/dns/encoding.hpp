// Textual codecs used by DNS presentation formats:
//   base16 (hex)      — NSEC3 salt, DS digests (RFC 4034)
//   base32hex         — NSEC3 owner names (RFC 4648 §7, no padding,
//                       lowercase, per RFC 5155 §8.1)
//   base64            — DNSKEY public keys, RRSIG signatures (RFC 4648 §4)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace zh::dns {

std::string base16_encode(std::span<const std::uint8_t> data);
/// Accepts upper- or lowercase hex; returns nullopt on bad length/characters.
std::optional<std::vector<std::uint8_t>> base16_decode(std::string_view text);

/// Extended-hex base32, lowercase, unpadded — the NSEC3 owner-label form.
std::string base32hex_encode(std::span<const std::uint8_t> data);
/// Accepts upper- or lowercase, with or without '=' padding.
std::optional<std::vector<std::uint8_t>> base32hex_decode(
    std::string_view text);

std::string base64_encode(std::span<const std::uint8_t> data);
std::optional<std::vector<std::uint8_t>> base64_decode(std::string_view text);

}  // namespace zh::dns
