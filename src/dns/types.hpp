// Core DNS protocol enumerations (RFC 1035, 4034, 5155, 6891, 8914).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace zh::dns {

/// Resource record types (subset used by the reproduction).
enum class RrType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kSoa = 6,
  kMx = 15,
  kTxt = 16,
  kAaaa = 28,
  kOpt = 41,
  kDs = 43,
  kRrsig = 46,
  kNsec = 47,
  kDnskey = 48,
  kNsec3 = 50,
  kNsec3Param = 51,
};

/// Resource record classes.
enum class RrClass : std::uint16_t {
  kIn = 1,
  kAny = 255,
};

/// Response codes (RFC 1035 §4.1.1 + RFC 6891 extended).
enum class Rcode : std::uint16_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

/// Query opcodes.
enum class Opcode : std::uint8_t {
  kQuery = 0,
  kNotify = 4,
  kUpdate = 5,
};

/// Extended DNS Error codes (RFC 8914) observed in the study.
enum class EdeCode : std::uint16_t {
  kOther = 0,
  kDnssecBogus = 6,
  kSignatureExpired = 7,
  kDnssecIndeterminate = 5,   // returned by Google Public DNS in the paper
  kNsecMissing = 12,          // returned by Cisco OpenDNS in the paper
  kNoReachableAuthority = 22,  // resolver hit its own query deadline
  kNetworkError = 23,          // upstream exchange lost every transmission
  kUnsupportedNsec3Iterations = 27,  // the RFC 9276 Item 10 code
};

std::string to_string(RrType type);
std::string to_string(RrClass klass);
std::string to_string(Rcode rcode);
std::string to_string(EdeCode code);

/// Inverse of to_string(RrType); accepts "TYPE<n>" for unknowns.
std::optional<RrType> rr_type_from_string(std::string_view text);

}  // namespace zh::dns
