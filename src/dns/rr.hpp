// Resource records and RRsets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/name.hpp"
#include "dns/rdata.hpp"
#include "dns/types.hpp"

namespace zh::dns {

/// A single resource record. RDATA is stored uncompressed.
struct ResourceRecord {
  Name name;
  RrType type = RrType::kA;
  RrClass klass = RrClass::kIn;
  std::uint32_t ttl = 3600;
  RdataBytes rdata;

  /// Typed decode convenience: `rr.as<Nsec3Rdata>()`.
  template <typename T>
  std::optional<T> as() const {
    return T::decode(std::span<const std::uint8_t>(rdata.data(), rdata.size()));
  }

  /// Builds a record from a typed rdata struct.
  template <typename T>
  static ResourceRecord make(Name name, RrType type, std::uint32_t ttl,
                             const T& typed) {
    return ResourceRecord{std::move(name), type, RrClass::kIn, ttl,
                          typed.encode()};
  }

  /// "name. ttl IN TYPE <rdata summary>" for logs and zone dumps.
  std::string to_string() const;

  bool operator==(const ResourceRecord& other) const {
    return name.equals(other.name) && type == other.type &&
           klass == other.klass && ttl == other.ttl && rdata == other.rdata;
  }
};

/// All records sharing (name, type, class): the unit DNSSEC signs.
struct RrSet {
  Name name;
  RrType type = RrType::kA;
  RrClass klass = RrClass::kIn;
  std::uint32_t ttl = 3600;
  std::vector<RdataBytes> rdatas;

  bool empty() const noexcept { return rdatas.empty(); }
  std::size_t size() const noexcept { return rdatas.size(); }

  /// Expands back into individual records.
  std::vector<ResourceRecord> to_records() const;

  /// Groups records into RRsets, preserving first-seen order. Records with
  /// the same (name, type, class) but different TTLs take the minimum TTL
  /// (RFC 2181 §5.2 behaviour).
  static std::vector<RrSet> group(const std::vector<ResourceRecord>& records);
};

/// Convenience constructors for the common record shapes the testbed needs.
ResourceRecord make_a(const Name& name, std::uint32_t ttl,
                      std::uint8_t a, std::uint8_t b, std::uint8_t c,
                      std::uint8_t d);
ResourceRecord make_ns(const Name& name, std::uint32_t ttl, const Name& nsd);
ResourceRecord make_txt(const Name& name, std::uint32_t ttl,
                        std::string text);
ResourceRecord make_soa(const Name& zone, std::uint32_t ttl,
                        const Name& primary_ns, std::uint32_t serial);

}  // namespace zh::dns
