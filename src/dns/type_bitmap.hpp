// NSEC/NSEC3 type bitmaps (RFC 4034 §4.1.2): the set of RR types present at
// a name, encoded as window blocks.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "dns/types.hpp"

namespace zh::dns {

/// An ordered set of RR types with the RFC 4034 window-block wire encoding.
class TypeBitmap {
 public:
  TypeBitmap() = default;
  explicit TypeBitmap(std::initializer_list<RrType> types) {
    for (const RrType t : types) insert(t);
  }

  void insert(RrType type) { types_.insert(static_cast<std::uint16_t>(type)); }
  bool contains(RrType type) const {
    return types_.count(static_cast<std::uint16_t>(type)) > 0;
  }
  bool empty() const noexcept { return types_.empty(); }
  std::size_t size() const noexcept { return types_.size(); }
  const std::set<std::uint16_t>& raw() const noexcept { return types_; }

  /// Window-block wire encoding.
  std::vector<std::uint8_t> encode() const;

  /// Parses window blocks; rejects out-of-order windows, zero-length or
  /// oversize bitmaps (RFC 4034 §4.1.2 constraints).
  static std::optional<TypeBitmap> decode(std::span<const std::uint8_t> wire);

  /// Space-separated mnemonics in numeric order ("A RRSIG NSEC3").
  std::string to_string() const;

  bool operator==(const TypeBitmap& other) const = default;

 private:
  std::set<std::uint16_t> types_;
};

}  // namespace zh::dns
