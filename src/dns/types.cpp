#include "dns/types.hpp"

namespace zh::dns {

std::string to_string(RrType type) {
  switch (type) {
    case RrType::kA: return "A";
    case RrType::kNs: return "NS";
    case RrType::kCname: return "CNAME";
    case RrType::kSoa: return "SOA";
    case RrType::kMx: return "MX";
    case RrType::kTxt: return "TXT";
    case RrType::kAaaa: return "AAAA";
    case RrType::kOpt: return "OPT";
    case RrType::kDs: return "DS";
    case RrType::kRrsig: return "RRSIG";
    case RrType::kNsec: return "NSEC";
    case RrType::kDnskey: return "DNSKEY";
    case RrType::kNsec3: return "NSEC3";
    case RrType::kNsec3Param: return "NSEC3PARAM";
  }
  return "TYPE" + std::to_string(static_cast<std::uint16_t>(type));
}

std::string to_string(RrClass klass) {
  switch (klass) {
    case RrClass::kIn: return "IN";
    case RrClass::kAny: return "ANY";
  }
  return "CLASS" + std::to_string(static_cast<std::uint16_t>(klass));
}

std::string to_string(Rcode rcode) {
  switch (rcode) {
    case Rcode::kNoError: return "NOERROR";
    case Rcode::kFormErr: return "FORMERR";
    case Rcode::kServFail: return "SERVFAIL";
    case Rcode::kNxDomain: return "NXDOMAIN";
    case Rcode::kNotImp: return "NOTIMP";
    case Rcode::kRefused: return "REFUSED";
  }
  return "RCODE" + std::to_string(static_cast<std::uint16_t>(rcode));
}

std::string to_string(EdeCode code) {
  switch (code) {
    case EdeCode::kOther: return "Other";
    case EdeCode::kDnssecBogus: return "DNSSEC Bogus";
    case EdeCode::kSignatureExpired: return "Signature Expired";
    case EdeCode::kDnssecIndeterminate: return "DNSSEC Indeterminate";
    case EdeCode::kNsecMissing: return "NSEC Missing";
    case EdeCode::kNoReachableAuthority: return "No Reachable Authority";
    case EdeCode::kNetworkError: return "Network Error";
    case EdeCode::kUnsupportedNsec3Iterations:
      return "Unsupported NSEC3 Iterations Value";
  }
  return "EDE" + std::to_string(static_cast<std::uint16_t>(code));
}

std::optional<RrType> rr_type_from_string(std::string_view text) {
  static const std::pair<std::string_view, RrType> kTypes[] = {
      {"A", RrType::kA},         {"NS", RrType::kNs},
      {"CNAME", RrType::kCname}, {"SOA", RrType::kSoa},
      {"MX", RrType::kMx},       {"TXT", RrType::kTxt},
      {"AAAA", RrType::kAaaa},   {"OPT", RrType::kOpt},
      {"DS", RrType::kDs},       {"RRSIG", RrType::kRrsig},
      {"NSEC", RrType::kNsec},   {"DNSKEY", RrType::kDnskey},
      {"NSEC3", RrType::kNsec3}, {"NSEC3PARAM", RrType::kNsec3Param},
  };
  for (const auto& [name, type] : kTypes)
    if (text == name) return type;
  if (text.size() > 4 && text.substr(0, 4) == "TYPE") {
    std::uint32_t value = 0;
    for (const char c : text.substr(4)) {
      if (c < '0' || c > '9') return std::nullopt;
      value = value * 10 + static_cast<std::uint32_t>(c - '0');
      if (value > 0xffff) return std::nullopt;
    }
    return static_cast<RrType>(value);
  }
  return std::nullopt;
}

}  // namespace zh::dns
