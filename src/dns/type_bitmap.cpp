#include "dns/type_bitmap.hpp"

#include <array>

namespace zh::dns {

std::vector<std::uint8_t> TypeBitmap::encode() const {
  std::vector<std::uint8_t> out;
  int current_window = -1;
  std::array<std::uint8_t, 32> bits{};
  int max_byte = -1;

  const auto flush = [&] {
    if (current_window < 0 || max_byte < 0) return;
    out.push_back(static_cast<std::uint8_t>(current_window));
    out.push_back(static_cast<std::uint8_t>(max_byte + 1));
    out.insert(out.end(), bits.begin(), bits.begin() + max_byte + 1);
  };

  for (const std::uint16_t type : types_) {
    const int window = type >> 8;
    if (window != current_window) {
      flush();
      current_window = window;
      bits.fill(0);
      max_byte = -1;
    }
    const int low = type & 0xff;
    const int byte_index = low >> 3;
    bits[static_cast<std::size_t>(byte_index)] |=
        static_cast<std::uint8_t>(0x80 >> (low & 7));
    if (byte_index > max_byte) max_byte = byte_index;
  }
  flush();
  return out;
}

std::optional<TypeBitmap> TypeBitmap::decode(
    std::span<const std::uint8_t> wire) {
  TypeBitmap out;
  std::size_t pos = 0;
  int previous_window = -1;
  while (pos < wire.size()) {
    if (wire.size() - pos < 2) return std::nullopt;
    const int window = wire[pos];
    const std::size_t len = wire[pos + 1];
    pos += 2;
    if (window <= previous_window) return std::nullopt;
    if (len == 0 || len > 32) return std::nullopt;
    if (wire.size() - pos < len) return std::nullopt;
    for (std::size_t i = 0; i < len; ++i) {
      const std::uint8_t byte = wire[pos + i];
      for (int bit = 0; bit < 8; ++bit) {
        if (byte & (0x80 >> bit)) {
          const std::uint16_t type = static_cast<std::uint16_t>(
              (window << 8) | (i * 8 + static_cast<std::size_t>(bit)));
          out.types_.insert(type);
        }
      }
    }
    pos += len;
    previous_window = window;
  }
  return out;
}

std::string TypeBitmap::to_string() const {
  std::string out;
  for (const std::uint16_t type : types_) {
    if (!out.empty()) out += ' ';
    out += zh::dns::to_string(static_cast<RrType>(type));
  }
  return out;
}

}  // namespace zh::dns
