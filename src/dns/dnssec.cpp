#include "dns/dnssec.hpp"

#include <algorithm>

#include "crypto/nsec3_hash.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha2.hpp"
#include "dns/encoding.hpp"
#include "dns/io.hpp"

namespace zh::dns {

bool canonical_rdata_less(const RdataBytes& a, const RdataBytes& b) noexcept {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

std::vector<std::uint8_t> build_signed_data(const RrsigRdata& presig,
                                            const RrSet& rrset) {
  ByteWriter w;
  w.bytes(presig.encode_presignature());

  std::vector<RdataBytes> sorted = rrset.rdatas;
  std::sort(sorted.begin(), sorted.end(), canonical_rdata_less);
  // Duplicate rdatas are not allowed in an RRset (RFC 2181 §5).
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  const std::vector<std::uint8_t> owner = rrset.name.to_canonical_wire();
  for (const auto& rdata : sorted) {
    w.bytes(owner);
    w.u16(static_cast<std::uint16_t>(rrset.type));
    w.u16(static_cast<std::uint16_t>(rrset.klass));
    w.u32(presig.original_ttl);
    w.u16(static_cast<std::uint16_t>(rdata.size()));
    w.bytes(rdata);
  }
  return w.take();
}

DsRdata make_ds(const Name& owner, const DnskeyRdata& key,
                std::uint8_t digest_type) {
  DsRdata ds;
  ds.key_tag = key.key_tag();
  ds.algorithm = key.algorithm;
  ds.digest_type = digest_type;

  ByteWriter w;
  w.bytes(owner.to_canonical_wire());
  w.bytes(key.encode());
  const auto& data = w.data();
  const std::span<const std::uint8_t> span(data.data(), data.size());

  if (digest_type == DsRdata::kDigestSha1) {
    const auto digest = crypto::Sha1::hash(span);
    ds.digest.assign(digest.begin(), digest.end());
  } else {
    const auto digest = crypto::Sha256::hash(span);
    ds.digest.assign(digest.begin(), digest.end());
  }
  return ds;
}

bool ds_matches_key(const DsRdata& ds, const Name& owner,
                    const DnskeyRdata& key) {
  if (ds.key_tag != key.key_tag() || ds.algorithm != key.algorithm)
    return false;
  const DsRdata expected = make_ds(owner, key, ds.digest_type);
  return expected.digest == ds.digest;
}

std::vector<std::uint8_t> nsec3_hash_name(const Name& name,
                                          std::span<const std::uint8_t> salt,
                                          std::uint16_t iterations) {
  const std::vector<std::uint8_t> wire = name.to_canonical_wire();
  const auto digest = crypto::nsec3_hash(
      std::span<const std::uint8_t>(wire.data(), wire.size()), salt,
      iterations);
  return std::vector<std::uint8_t>(digest.begin(), digest.end());
}

std::vector<std::vector<std::uint8_t>> nsec3_hash_names(
    std::span<const Name> names, std::span<const std::uint8_t> salt,
    std::uint16_t iterations) {
  std::vector<std::vector<std::uint8_t>> wires;
  wires.reserve(names.size());
  for (const Name& name : names) wires.push_back(name.to_canonical_wire());
  std::vector<std::span<const std::uint8_t>> owners;
  owners.reserve(wires.size());
  for (const auto& wire : wires) owners.emplace_back(wire.data(), wire.size());

  std::vector<crypto::Nsec3Digest> digests(names.size());
  crypto::nsec3_hash_batch(
      std::span<const std::span<const std::uint8_t>>(owners.data(),
                                                     owners.size()),
      salt, iterations, digests.data());

  std::vector<std::vector<std::uint8_t>> hashes;
  hashes.reserve(digests.size());
  for (const auto& digest : digests)
    hashes.emplace_back(digest.begin(), digest.end());
  return hashes;
}

Name nsec3_owner_name(const Name& name, const Name& zone,
                      std::span<const std::uint8_t> salt,
                      std::uint16_t iterations) {
  const auto hash = nsec3_hash_name(name, salt, iterations);
  const std::string label = base32hex_encode(
      std::span<const std::uint8_t>(hash.data(), hash.size()));
  const auto owner = zone.prepended(label);
  // A 32-char label always fits unless the zone name is near the limit,
  // which the workload generator never produces.
  return owner ? *owner : zone;
}

std::optional<std::vector<std::uint8_t>> nsec3_owner_hash(const Name& owner,
                                                          const Name& zone) {
  if (!owner.is_subdomain_of(zone) ||
      owner.label_count() != zone.label_count() + 1)
    return std::nullopt;
  return base32hex_decode(owner.label(0));
}

std::uint8_t rrsig_label_count(const Name& owner) noexcept {
  std::size_t count = owner.label_count();
  if (owner.is_wildcard() && count > 0) --count;
  return static_cast<std::uint8_t>(count);
}

bool nsec3_covers(std::span<const std::uint8_t> owner_hash,
                  std::span<const std::uint8_t> next_hash,
                  std::span<const std::uint8_t> hash) noexcept {
  const auto less = [](std::span<const std::uint8_t> a,
                       std::span<const std::uint8_t> b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  };
  const auto equal = [](std::span<const std::uint8_t> a,
                        std::span<const std::uint8_t> b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  };

  if (equal(owner_hash, hash) || equal(next_hash, hash)) return false;
  if (less(owner_hash, next_hash)) {
    // Normal interval.
    return less(owner_hash, hash) && less(hash, next_hash);
  }
  if (equal(owner_hash, next_hash)) {
    // Single-record chain covers everything except itself.
    return true;
  }
  // Wrap-around interval (last NSEC3 points back to the first).
  return less(owner_hash, hash) || less(hash, next_hash);
}

}  // namespace zh::dns
