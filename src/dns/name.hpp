// Domain names (RFC 1035 §3.1) with canonical form and ordering (RFC 4034
// §6). NSEC3 hashing operates on the canonical (lowercased, uncompressed)
// wire form, and NSEC3 chains are ordered by hash value — but the closest
// encloser search walks *name* ancestry, so both views live here.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace zh::dns {

struct NameSuffix;  // defined after Name

/// An absolute domain name, stored as a sequence of labels (root = none).
///
/// Invariants: each label is 1..63 octets; total wire length ≤ 255 octets.
/// Labels preserve the case they were constructed with; comparisons and
/// canonical forms are case-insensitive per RFC 1035 §2.3.3 / RFC 4034 §6.2.
class Name {
 public:
  static constexpr std::size_t kMaxLabelLength = 63;
  static constexpr std::size_t kMaxWireLength = 255;

  /// The root name ".".
  Name() = default;

  /// Parses presentation format ("www.example.com", trailing dot optional,
  /// "\\." escapes not supported — the study never needs them). Returns
  /// nullopt on empty labels, oversize labels or oversize names.
  static std::optional<Name> parse(std::string_view text);

  /// Like parse() but terminates on invalid input; for literals known good.
  static Name must_parse(std::string_view text);

  static Name root() { return Name{}; }

  /// Builds a name from raw labels (front = leftmost). Returns nullopt if
  /// any invariant is violated.
  static std::optional<Name> from_labels(std::vector<std::string> labels);

  bool is_root() const noexcept { return labels_.empty(); }
  std::size_t label_count() const noexcept { return labels_.size(); }
  const std::string& label(std::size_t i) const { return labels_[i]; }

  /// Number of octets in the uncompressed wire form (≥ 1 for the root).
  std::size_t wire_length() const noexcept;

  /// True if this name equals `other` ignoring case.
  bool equals(const Name& other) const noexcept;

  /// True if this name is `ancestor` or a descendant of it.
  bool is_subdomain_of(const Name& ancestor) const noexcept;

  /// Immediate parent; root's parent is root.
  Name parent() const;

  /// Strips `suffix_labels` labels from the right; returns root if asked to
  /// strip everything.
  Name ancestor_with_labels(std::size_t label_count) const;

  /// <child-label>.<this>; returns nullopt if invariants would break.
  std::optional<Name> prepended(std::string_view label) const;

  /// this + suffix concatenation (this must be relative-ish usage:
  /// result = labels(this) then labels(suffix)).
  std::optional<Name> appended(const Name& suffix) const;

  /// True if the leftmost label is "*".
  bool is_wildcard() const noexcept {
    return !labels_.empty() && labels_.front() == "*";
  }

  /// "*" prepended to this name.
  Name wildcard_child() const;

  /// Uncompressed wire form, case preserved.
  std::vector<std::uint8_t> to_wire() const;

  /// Uncompressed wire form with every label lowercased (RFC 4034 §6.2) —
  /// the exact input of the NSEC3 hash.
  std::vector<std::uint8_t> to_canonical_wire() const;

  /// Appends exactly the bytes of to_canonical_wire() to `out` without the
  /// temporary vector — for key builders on the hot path.
  void append_canonical_to(std::string& out) const;

  /// Lowercased copy.
  Name canonical() const;

  /// Presentation format with trailing dot ("." for the root).
  std::string to_string() const;

  /// RFC 4034 §6.1 canonical ordering: compare label sequences right to
  /// left; each label compared as lowercased octet strings.
  static std::strong_ordering canonical_compare(const Name& a,
                                                const Name& b) noexcept;

  /// canonical_compare(a, b.name->ancestor_with_labels(b.labels)) without
  /// materialising the ancestor.
  static std::strong_ordering canonical_compare_suffix(
      const Name& a, const NameSuffix& b) noexcept;

  bool operator==(const Name& other) const noexcept { return equals(other); }

  /// Hash for unordered containers (case-insensitive).
  std::size_t hash() const noexcept;

 private:
  std::vector<std::string> labels_;  // leftmost first
};

/// Functor for unordered_map<Name, ...>.
struct NameHash {
  std::size_t operator()(const Name& n) const noexcept { return n.hash(); }
};

/// A right-aligned suffix of an existing Name — the `labels` rightmost
/// labels of `*name` — for heterogeneous map lookups that would otherwise
/// materialise one Name per ancestry step (zone closest-encloser walks).
/// Orders exactly like Name::ancestor_with_labels(labels) would.
struct NameSuffix {
  const Name* name = nullptr;
  std::size_t labels = 0;

  std::size_t label_count() const noexcept {
    return labels < name->label_count() ? labels : name->label_count();
  }
  /// i-th label of the suffix, leftmost first.
  const std::string& label(std::size_t i) const {
    return name->label(name->label_count() - label_count() + i);
  }
};

/// Functor for ordered containers in canonical zone order. Transparent:
/// lookups accept NameSuffix without materialising the ancestor Name.
struct NameCanonicalLess {
  using is_transparent = void;

  bool operator()(const Name& a, const Name& b) const noexcept {
    return Name::canonical_compare(a, b) < 0;
  }
  bool operator()(const Name& a, const NameSuffix& b) const noexcept {
    return Name::canonical_compare_suffix(a, b) < 0;
  }
  bool operator()(const NameSuffix& a, const Name& b) const noexcept {
    return Name::canonical_compare_suffix(b, a) > 0;
  }
};

}  // namespace zh::dns
