// Minimal big-endian byte readers/writers shared by rdata and message
// codecs. Deliberately bounds-checked: the scanner parses responses from
// simulated-but-untrusted peers, and the property tests feed junk.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace zh::dns {

/// Append-only big-endian byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 24));
    out_.push_back(static_cast<std::uint8_t>(v >> 16));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }
  void bytes(const std::vector<std::uint8_t>& data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  /// Overwrites a previously written u16 at `offset` (for length patches).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    out_[offset] = static_cast<std::uint8_t>(v >> 8);
    out_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  std::size_t size() const noexcept { return out_.size(); }
  const std::vector<std::uint8_t>& data() const noexcept { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Bounds-checked big-endian cursor over a byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  std::size_t position() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool at_end() const noexcept { return pos_ == data_.size(); }

  bool seek(std::size_t pos) noexcept {
    if (pos > data_.size()) return false;
    pos_ = pos;
    return true;
  }

  std::optional<std::uint8_t> u8() noexcept {
    if (remaining() < 1) return std::nullopt;
    return data_[pos_++];
  }
  std::optional<std::uint16_t> u16() noexcept {
    if (remaining() < 2) return std::nullopt;
    const std::uint16_t v = static_cast<std::uint16_t>(
        (std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::optional<std::uint32_t> u32() noexcept {
    if (remaining() < 4) return std::nullopt;
    const std::uint32_t v =
        (std::uint32_t{data_[pos_]} << 24) |
        (std::uint32_t{data_[pos_ + 1]} << 16) |
        (std::uint32_t{data_[pos_ + 2]} << 8) | std::uint32_t{data_[pos_ + 3]};
    pos_ += 4;
    return v;
  }
  std::optional<std::vector<std::uint8_t>> bytes(std::size_t n) {
    if (remaining() < n) return std::nullopt;
    std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  std::optional<std::span<const std::uint8_t>> view(std::size_t n) noexcept {
    if (remaining() < n) return std::nullopt;
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::span<const std::uint8_t> whole() const noexcept { return data_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace zh::dns
