#include "dns/encoding.hpp"

#include <array>
#include <cstring>

namespace zh::dns {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";
constexpr char kBase32HexDigits[] = "0123456789abcdefghijklmnopqrstuv";
constexpr char kBase64Digits[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

int base32hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'v') return c - 'a' + 10;
  if (c >= 'A' && c <= 'V') return c - 'A' + 10;
  return -1;
}

int base64_value(char c) noexcept {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

}  // namespace

std::string base16_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (const std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> base16_decode(std::string_view text) {
  if (text.size() % 2 != 0) return std::nullopt;
  std::vector<std::uint8_t> out;
  out.reserve(text.size() / 2);
  for (std::size_t i = 0; i < text.size(); i += 2) {
    const int hi = hex_value(text[i]);
    const int lo = hex_value(text[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string base32hex_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve((data.size() * 8 + 4) / 5);
  std::uint32_t bits = 0;
  int nbits = 0;
  for (const std::uint8_t b : data) {
    bits = (bits << 8) | b;
    nbits += 8;
    while (nbits >= 5) {
      nbits -= 5;
      out.push_back(kBase32HexDigits[(bits >> nbits) & 0x1f]);
    }
  }
  if (nbits > 0) {
    out.push_back(kBase32HexDigits[(bits << (5 - nbits)) & 0x1f]);
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> base32hex_decode(
    std::string_view text) {
  // Strip trailing padding, if present.
  while (!text.empty() && text.back() == '=') text.remove_suffix(1);

  std::vector<std::uint8_t> out;
  out.reserve(text.size() * 5 / 8);
  std::uint32_t bits = 0;
  int nbits = 0;
  for (const char c : text) {
    const int v = base32hex_value(c);
    if (v < 0) return std::nullopt;
    bits = (bits << 5) | static_cast<std::uint32_t>(v);
    nbits += 5;
    if (nbits >= 8) {
      nbits -= 8;
      out.push_back(static_cast<std::uint8_t>((bits >> nbits) & 0xff));
    }
  }
  // Leftover bits must be zero padding only.
  if (nbits > 0 && (bits & ((1u << nbits) - 1)) != 0) return std::nullopt;
  return out;
}

std::string base64_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t v = (std::uint32_t{data[i]} << 16) |
                            (std::uint32_t{data[i + 1]} << 8) |
                            std::uint32_t{data[i + 2]};
    out.push_back(kBase64Digits[(v >> 18) & 0x3f]);
    out.push_back(kBase64Digits[(v >> 12) & 0x3f]);
    out.push_back(kBase64Digits[(v >> 6) & 0x3f]);
    out.push_back(kBase64Digits[v & 0x3f]);
  }
  const std::size_t rem = data.size() - i;
  if (rem == 1) {
    const std::uint32_t v = std::uint32_t{data[i]} << 16;
    out.push_back(kBase64Digits[(v >> 18) & 0x3f]);
    out.push_back(kBase64Digits[(v >> 12) & 0x3f]);
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    const std::uint32_t v =
        (std::uint32_t{data[i]} << 16) | (std::uint32_t{data[i + 1]} << 8);
    out.push_back(kBase64Digits[(v >> 18) & 0x3f]);
    out.push_back(kBase64Digits[(v >> 12) & 0x3f]);
    out.push_back(kBase64Digits[(v >> 6) & 0x3f]);
    out.push_back('=');
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> base64_decode(std::string_view text) {
  while (!text.empty() && text.back() == '=') text.remove_suffix(1);

  std::vector<std::uint8_t> out;
  out.reserve(text.size() * 3 / 4);
  std::uint32_t bits = 0;
  int nbits = 0;
  for (const char c : text) {
    const int v = base64_value(c);
    if (v < 0) return std::nullopt;
    bits = (bits << 6) | static_cast<std::uint32_t>(v);
    nbits += 6;
    if (nbits >= 8) {
      nbits -= 8;
      out.push_back(static_cast<std::uint8_t>((bits >> nbits) & 0xff));
    }
  }
  if (nbits > 0 && (bits & ((1u << nbits) - 1)) != 0) return std::nullopt;
  return out;
}

}  // namespace zh::dns
