// DNSSEC helpers shared by signer and validator:
//   - RFC 4034 §3.1.8.1 signed-data construction (canonical RRset form)
//   - DS digest construction (RFC 4034 §5.1.4)
//   - NSEC3 owner-name computation (RFC 5155 §3 / §5)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dns/name.hpp"
#include "dns/rdata.hpp"
#include "dns/rr.hpp"

namespace zh::dns {

/// Canonical rdata ordering (RFC 4034 §6.3): byte-wise, treating data as
/// left-justified unsigned octet sequences (absent octets sort first).
bool canonical_rdata_less(const RdataBytes& a, const RdataBytes& b) noexcept;

/// Builds the exact byte string an RRSIG covers (RFC 4034 §3.1.8.1):
/// RRSIG_RDATA (pre-signature fields) || canonical form of each RR, rdatas
/// sorted canonically, owner lowercased, TTL = original_ttl.
std::vector<std::uint8_t> build_signed_data(const RrsigRdata& presig,
                                            const RrSet& rrset);

/// DS record for a DNSKEY: digest over (canonical owner wire || rdata).
DsRdata make_ds(const Name& owner, const DnskeyRdata& key,
                std::uint8_t digest_type = DsRdata::kDigestSha256);

/// True if `ds` matches `key` at `owner` (digest + key tag + algorithm).
bool ds_matches_key(const DsRdata& ds, const Name& owner,
                    const DnskeyRdata& key);

/// NSEC3 hash of `name` under the given parameters. Ticks the cost meter.
std::vector<std::uint8_t> nsec3_hash_name(const Name& name,
                                          std::span<const std::uint8_t> salt,
                                          std::uint16_t iterations);

/// Batched nsec3_hash_name: hashes all `names` under one parameter set
/// through the multi-buffer SHA-1 kernel (crypto/sha1_mb.hpp), filling SIMD
/// lanes with independent names. Digest i belongs to names[i]; digests and
/// CostMeter *logical* accounting are identical to calling nsec3_hash_name
/// once per name. The zone signer uses this to hash whole NSEC3 chains
/// lane-parallel.
std::vector<std::vector<std::uint8_t>> nsec3_hash_names(
    std::span<const Name> names, std::span<const std::uint8_t> salt,
    std::uint16_t iterations);

/// The owner name of the NSEC3 record for `name` in `zone`:
/// base32hex(hash).zone.
Name nsec3_owner_name(const Name& name, const Name& zone,
                      std::span<const std::uint8_t> salt,
                      std::uint16_t iterations);

/// Extracts the hash encoded in an NSEC3 owner name's first label;
/// nullopt if the label is not valid base32hex or the name is not in zone.
std::optional<std::vector<std::uint8_t>> nsec3_owner_hash(const Name& owner,
                                                          const Name& zone);

/// RFC 4034 §3.1.3 label count for an owner name: labels excluding root,
/// and excluding a leftmost "*" for wildcard-expanded records.
std::uint8_t rrsig_label_count(const Name& owner) noexcept;

/// Hash ordering on the NSEC3 circle: true if `hash` falls strictly between
/// `owner_hash` and `next_hash`, handling the wrap-around at the chain end
/// (RFC 5155 §8.3 "covering" test).
bool nsec3_covers(std::span<const std::uint8_t> owner_hash,
                  std::span<const std::uint8_t> next_hash,
                  std::span<const std::uint8_t> hash) noexcept;

}  // namespace zh::dns
