// Monotonic bump arena for per-query scratch.
//
// The zero-copy wire layer (dns/wire_view.hpp) parses a message in place
// over the received buffer, but still needs somewhere to put the per-section
// view arrays — whose sizes are only known per message. A general-purpose
// heap allocation per section would put the allocator right back on the hot
// path; this arena instead bump-allocates from reusable slabs and is reset
// once per query, so steady-state parsing performs zero heap allocations:
// after warm-up the arena owns one slab big enough for the largest message
// seen, and reset() merely rewinds a cursor.
//
// Only trivially-destructible types may live in the arena (reset() never
// runs destructors); make_array() enforces this at compile time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace zh::dns {

class MonotonicArena {
 public:
  /// First-slab size; later slabs grow geometrically, and reset() coalesces
  /// them so steady state is a single slab and zero heap traffic.
  static constexpr std::size_t kDefaultSlabBytes = 4096;

  explicit MonotonicArena(std::size_t initial_bytes = kDefaultSlabBytes)
      : next_slab_bytes_(initial_bytes < 64 ? 64 : initial_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Raw bump allocation. `align` must be a power of two.
  void* allocate(std::size_t bytes, std::size_t align);

  /// Arena-backed array of `count` default-initialised Ts. Returns an empty
  /// span for count == 0 without touching the arena.
  template <typename T>
  std::span<T> make_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    if (count == 0) return {};
    T* data = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < count; ++i) new (data + i) T{};
    return {data, count};
  }

  /// Rewinds the cursor; slab memory is retained for reuse. If the last
  /// cycle spilled into more than one slab, the slabs are released and the
  /// next allocation grabs one combined slab — so any stable workload
  /// converges on a single slab and allocation-free resets.
  void reset() noexcept;

  struct Stats {
    std::uint64_t slab_allocations = 0;  // heap allocations ever made
    std::uint64_t resets = 0;
    std::size_t capacity = 0;    // bytes currently held in slabs
    std::size_t used = 0;        // bytes handed out since the last reset
    std::size_t high_water = 0;  // max used observed across resets
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  struct Slab {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void add_slab(std::size_t at_least);

  std::vector<Slab> slabs_;
  std::size_t current_ = 0;  // slab index the cursor is in
  std::size_t cursor_ = 0;   // offset within slabs_[current_]
  std::size_t next_slab_bytes_;
  Stats stats_;
};

}  // namespace zh::dns
