#include "dns/wire_view.hpp"

#include <vector>

namespace zh::dns {
namespace {

char ascii_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

/// Big-endian u16 at `pos`; caller guarantees bounds.
std::uint16_t read_u16(std::span<const std::uint8_t> wire, std::size_t pos) {
  return static_cast<std::uint16_t>((std::uint16_t{wire[pos]} << 8) |
                                    wire[pos + 1]);
}

std::uint32_t read_u32(std::span<const std::uint8_t> wire, std::size_t pos) {
  return (std::uint32_t{wire[pos]} << 24) | (std::uint32_t{wire[pos + 1]} << 16) |
         (std::uint32_t{wire[pos + 2]} << 8) | std::uint32_t{wire[pos + 3]};
}

/// Validated walk of one possibly-compressed name starting at `pos`:
/// read_compressed_name's exact checks and error taxonomy, recording the
/// view geometry instead of materialising labels. On success `resume` is
/// the position just past the name's in-place bytes.
struct NameScan {
  std::size_t resume = 0;
  std::uint16_t wire_length = 1;
  std::uint8_t label_count = 0;
};

std::optional<NameScan> scan_name(std::span<const std::uint8_t> wire,
                                  std::size_t pos, WireErrc& err) {
  NameScan scan;
  std::size_t total = 1;
  std::size_t labels = 0;
  std::optional<std::size_t> resume;
  std::size_t min_pointer_target = pos;

  const auto fail = [&](WireErrc errc) -> std::optional<NameScan> {
    err = errc;
    return std::nullopt;
  };
  for (;;) {
    if (pos >= wire.size()) return fail(WireErrc::kTruncated);
    const std::uint8_t len = wire[pos];
    if ((len & 0xc0) == 0xc0) {
      if (pos + 1 >= wire.size()) return fail(WireErrc::kTruncated);
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | wire[pos + 1];
      if (target >= min_pointer_target)
        return fail(WireErrc::kPointerLoop);  // forward/self pointer
      if (!resume) resume = pos + 2;
      min_pointer_target = target;
      pos = target;
      continue;
    }
    if (len & 0xc0) return fail(WireErrc::kBadLabelType);  // reserved types
    if (len == 0) {
      if (!resume) resume = pos + 1;
      break;
    }
    if (pos + 1 + len > wire.size()) return fail(WireErrc::kTruncated);
    ++labels;
    total += 1 + len;
    if (total > Name::kMaxWireLength) return fail(WireErrc::kNameTooLong);
    pos += 1 + len;
  }
  scan.resume = *resume;
  scan.wire_length = static_cast<std::uint16_t>(total);
  scan.label_count = static_cast<std::uint8_t>(labels);
  return scan;
}

}  // namespace

bool NameView::equals(const Name& other) const noexcept {
  if (label_count_ != other.label_count()) return false;
  std::size_t i = 0;
  bool equal = true;
  for_each_label([&](std::string_view label) {
    const std::string& expect = other.label(i++);
    if (label.size() != expect.size()) {
      equal = false;
      return;
    }
    for (std::size_t k = 0; k < label.size(); ++k) {
      if (ascii_lower(label[k]) != ascii_lower(expect[k])) {
        equal = false;
        return;
      }
    }
  });
  return equal;
}

Name NameView::to_name() const {
  std::vector<std::string> labels;
  labels.reserve(label_count_);
  for_each_label([&](std::string_view label) { labels.emplace_back(label); });
  auto name = Name::from_labels(std::move(labels));
  return name ? *std::move(name) : Name{};
}

std::string NameView::to_string() const {
  if (is_root()) return ".";
  std::string out;
  for_each_label([&](std::string_view label) {
    out.append(label);
    out.push_back('.');
  });
  return out;
}

std::optional<EdeInfo> EdnsView::ede() const {
  std::size_t pos = 0;
  while (pos + 4 <= options.size()) {
    const std::uint16_t code = read_u16(options, pos);
    const std::uint16_t len = read_u16(options, pos + 2);
    const std::span<const std::uint8_t> data = options.subspan(pos + 4, len);
    pos += 4 + len;
    if (code != EdnsOption::kCodeEde) continue;
    if (data.size() < 2) return std::nullopt;
    EdeInfo info;
    info.info_code =
        static_cast<EdeCode>((std::uint16_t{data[0]} << 8) | data[1]);
    info.extra_text.assign(data.begin() + 2, data.end());
    return info;
  }
  return std::nullopt;
}

/// The parser proper — a friend so it can fill the private view fields.
struct MessageViewParser {
  static ViewDecodeResult parse(std::span<const std::uint8_t> wire,
                                MonotonicArena& arena) {
    MessageView view;
    view.wire_ = wire;
    WireErrc err = WireErrc::kOk;
    const auto fail = [&](WireErrc errc) { return ViewDecodeResult{{}, errc}; };
    if (wire.size() < 12) return fail(WireErrc::kTruncated);

    const std::uint16_t flags = read_u16(wire, 2);
    view.header.id = read_u16(wire, 0);
    view.header.qr = flags & 0x8000;
    view.header.opcode = static_cast<Opcode>((flags >> 11) & 0xf);
    view.header.aa = flags & 0x0400;
    view.header.tc = flags & 0x0200;
    view.header.rd = flags & 0x0100;
    view.header.ra = flags & 0x0080;
    view.header.ad = flags & 0x0020;
    view.header.cd = flags & 0x0010;
    std::uint16_t rcode_value = flags & 0xf;
    const std::uint16_t qdcount = read_u16(wire, 4);
    const std::uint16_t ancount = read_u16(wire, 6);
    const std::uint16_t nscount = read_u16(wire, 8);
    const std::uint16_t arcount = read_u16(wire, 10);
    std::size_t pos = 12;

    const auto make_name = [&wire](const NameScan& scan, std::size_t at) {
      NameView name;
      name.wire_ = wire;
      name.offset_ = static_cast<std::uint32_t>(at);
      name.wire_length_ = scan.wire_length;
      name.label_count_ = scan.label_count;
      return name;
    };

    std::span<QuestionView> questions = arena.make_array<QuestionView>(qdcount);
    for (std::uint16_t i = 0; i < qdcount; ++i) {
      const auto scan = scan_name(wire, pos, err);
      if (!scan) return fail(err);
      questions[i].name = make_name(*scan, pos);
      pos = scan->resume;
      if (pos + 4 > wire.size()) return fail(WireErrc::kTruncated);
      questions[i].type = static_cast<RrType>(read_u16(wire, pos));
      questions[i].klass = static_cast<RrClass>(read_u16(wire, pos + 2));
      pos += 4;
    }
    view.questions = questions;

    const auto read_section =
        [&](std::uint16_t count,
            std::span<const RecordView>& section) -> bool {
      std::span<RecordView> records = arena.make_array<RecordView>(count);
      std::size_t written = 0;
      for (std::uint16_t i = 0; i < count; ++i) {
        const auto scan = scan_name(wire, pos, err);
        if (!scan) return false;
        const std::size_t name_at = pos;
        pos = scan->resume;
        if (pos + 10 > wire.size()) {
          err = WireErrc::kTruncated;
          return false;
        }
        const RrType type = static_cast<RrType>(read_u16(wire, pos));
        const RrClass klass = static_cast<RrClass>(read_u16(wire, pos + 2));
        const std::uint32_t ttl = read_u32(wire, pos + 4);
        const std::uint16_t rdlength = read_u16(wire, pos + 8);
        pos += 10;

        if (type == RrType::kOpt) {
          // Lift OPT into view.edns, validating the options in place.
          EdnsView edns;
          edns.udp_payload_size = static_cast<std::uint16_t>(klass);
          edns.version = static_cast<std::uint8_t>((ttl >> 16) & 0xff);
          edns.do_bit = ttl & 0x8000;
          rcode_value = static_cast<std::uint16_t>(
              rcode_value | (((ttl >> 24) & 0xff) << 4));
          const std::size_t end = pos + rdlength;
          if (end > wire.size()) {
            err = WireErrc::kTruncated;
            return false;
          }
          edns.options = wire.subspan(pos, rdlength);
          while (pos < end) {
            if (pos + 4 > wire.size()) {
              err = WireErrc::kBadOpt;
              return false;
            }
            const std::uint16_t len = read_u16(wire, pos + 2);
            if (pos + 4 + len > wire.size() || pos + 4 + len > end) {
              err = WireErrc::kBadOpt;
              return false;
            }
            pos += 4 + len;
          }
          view.edns = edns;
          continue;
        }

        // Message::decode's read_rdata checks, span-shaped: the whole-wire
        // bound first, then per-type embedded-name validation.
        const std::size_t end = pos + rdlength;
        if (end > wire.size()) {
          err = WireErrc::kTruncated;
          return false;
        }
        switch (type) {
          case RrType::kNs:
          case RrType::kCname: {
            const auto inner = scan_name(wire, pos, err);
            if (!inner) return false;
            if (inner->resume != end) {
              err = WireErrc::kBadRdata;
              return false;
            }
            break;
          }
          case RrType::kMx: {
            if (pos + 2 > wire.size()) {
              err = WireErrc::kTruncated;
              return false;
            }
            const auto inner = scan_name(wire, pos + 2, err);
            if (!inner) return false;
            if (inner->resume != end) {
              err = WireErrc::kBadRdata;
              return false;
            }
            break;
          }
          case RrType::kSoa: {
            const auto mname = scan_name(wire, pos, err);
            if (!mname) return false;
            const auto rname = scan_name(wire, mname->resume, err);
            if (!rname) return false;
            if (rname->resume + 20 != end) {
              err = WireErrc::kBadRdata;
              return false;
            }
            break;
          }
          default:
            break;  // opaque rdata: the end bound is the whole check
        }

        RecordView& record = records[written++];
        record.name = make_name(*scan, name_at);
        record.type = type;
        record.klass = klass;
        record.ttl = ttl;
        record.rdata = wire.subspan(pos, rdlength);
        pos = end;
      }
      section = records.subspan(0, written);
      return true;
    };

    if (!read_section(ancount, view.answers)) return fail(err);
    if (!read_section(nscount, view.authorities)) return fail(err);
    if (!read_section(arcount, view.additionals)) return fail(err);

    // Strict framing, as Message::decode: every byte must be accounted for.
    if (pos != wire.size()) return fail(WireErrc::kTrailingBytes);

    view.header.rcode = static_cast<Rcode>(rcode_value);
    return ViewDecodeResult{view, WireErrc::kOk};
  }
};

ViewDecodeResult MessageView::parse(std::span<const std::uint8_t> wire,
                                    MonotonicArena& arena) {
  return MessageViewParser::parse(wire, arena);
}

Message MessageView::to_message() const {
  auto decoded = Message::decode(wire_);
  return decoded.message ? *std::move(decoded.message) : Message{};
}

}  // namespace zh::dns
