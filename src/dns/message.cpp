#include "dns/message.hpp"

#include <algorithm>
#include <map>

#include "dns/io.hpp"

namespace zh::dns {
namespace {

/// Writes names with RFC 1035 §4.1.4 compression, remembering every suffix
/// it has emitted at a pointer-reachable offset.
class NameCompressor {
 public:
  void write(ByteWriter& w, const Name& name) {
    // Find the longest already-emitted suffix.
    std::size_t skip = 0;  // labels written literally before the pointer
    std::optional<std::uint16_t> pointer;
    for (; skip < name.label_count(); ++skip) {
      const std::string key = suffix_key(name, skip);
      const auto it = offsets_.find(key);
      if (it != offsets_.end()) {
        pointer = it->second;
        break;
      }
    }
    // Emit literal labels, registering each new suffix offset.
    for (std::size_t i = 0; i < skip; ++i) {
      if (w.size() < 0x4000) {
        offsets_.emplace(suffix_key(name, i),
                         static_cast<std::uint16_t>(w.size()));
      }
      const std::string& label = name.label(i);
      w.u8(static_cast<std::uint8_t>(label.size()));
      w.bytes(std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(label.data()), label.size()));
    }
    if (pointer) {
      w.u16(static_cast<std::uint16_t>(0xc000 | *pointer));
    } else {
      w.u8(0);
    }
  }

  /// Size-only twin of write(): registers the same suffixes at the same
  /// (virtual) offsets under the same 0x4000 cap, so a message measured
  /// name-by-name compresses identically to one actually serialised —
  /// wire_size() == to_wire().size() holds exactly.
  std::size_t measure(std::size_t at, const Name& name) {
    std::size_t skip = 0;
    bool pointer = false;
    for (; skip < name.label_count(); ++skip) {
      if (offsets_.find(suffix_key(name, skip)) != offsets_.end()) {
        pointer = true;
        break;
      }
    }
    std::size_t size = 0;
    for (std::size_t i = 0; i < skip; ++i) {
      if (at + size < 0x4000) {
        offsets_.emplace(suffix_key(name, i),
                         static_cast<std::uint16_t>(at + size));
      }
      size += 1 + name.label(i).size();
    }
    return size + (pointer ? 2 : 1);
  }

 private:
  static std::string suffix_key(const Name& name, std::size_t from_label) {
    std::string key;
    for (std::size_t i = from_label; i < name.label_count(); ++i) {
      const std::string& label = name.label(i);
      key.push_back(static_cast<char>(label.size()));
      for (const char c : label)
        key.push_back(
            (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c);
    }
    return key;
  }

  std::map<std::string, std::uint16_t> offsets_;
};

/// Reads a possibly-compressed name; `r` advances past the name's in-place
/// bytes only. Pointers must target strictly earlier offsets (loop-proof).
/// On failure `err` says why (left untouched on success).
std::optional<Name> read_compressed_name(ByteReader& r, WireErrc& err) {
  std::vector<std::string> labels;
  std::size_t total = 1;

  std::size_t pos = r.position();
  const std::span<const std::uint8_t> wire = r.whole();
  std::optional<std::size_t> resume;  // position after the in-place bytes
  std::size_t min_pointer_target = pos;

  const auto fail = [&](WireErrc errc) -> std::optional<Name> {
    err = errc;
    return std::nullopt;
  };
  for (;;) {
    if (pos >= wire.size()) return fail(WireErrc::kTruncated);
    const std::uint8_t len = wire[pos];
    if ((len & 0xc0) == 0xc0) {
      if (pos + 1 >= wire.size()) return fail(WireErrc::kTruncated);
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | wire[pos + 1];
      if (target >= min_pointer_target)
        return fail(WireErrc::kPointerLoop);  // forward/self pointer
      if (!resume) resume = pos + 2;
      min_pointer_target = target;
      pos = target;
      continue;
    }
    if (len & 0xc0) return fail(WireErrc::kBadLabelType);  // reserved types
    if (len == 0) {
      if (!resume) resume = pos + 1;
      break;
    }
    if (pos + 1 + len > wire.size()) return fail(WireErrc::kTruncated);
    labels.emplace_back(reinterpret_cast<const char*>(&wire[pos + 1]), len);
    total += 1 + len;
    if (total > Name::kMaxWireLength) return fail(WireErrc::kNameTooLong);
    pos += 1 + len;
  }
  if (!r.seek(*resume)) return fail(WireErrc::kTruncated);
  return Name::from_labels(std::move(labels));
}

/// Normalises rdata read from a message: types whose rdata embeds names
/// that may be compressed get their names decompressed and re-encoded.
/// On failure `err` says why (left untouched on success).
std::optional<RdataBytes> read_rdata(ByteReader& r, RrType type,
                                     std::size_t rdlength, WireErrc& err) {
  const std::size_t end = r.position() + rdlength;
  if (end > r.whole().size()) {
    err = WireErrc::kTruncated;
    return std::nullopt;
  }

  const auto fail = [&](WireErrc errc) -> std::optional<RdataBytes> {
    err = errc;
    return std::nullopt;
  };
  const auto finish = [&](RdataBytes bytes) -> std::optional<RdataBytes> {
    if (r.position() != end) return fail(WireErrc::kBadRdata);
    return bytes;
  };

  switch (type) {
    case RrType::kNs:
    case RrType::kCname: {
      auto name = read_compressed_name(r, err);
      if (!name) return std::nullopt;
      if (r.position() > end) return fail(WireErrc::kBadRdata);
      ByteWriter w;
      w.bytes(name->to_wire());
      return finish(w.take());
    }
    case RrType::kMx: {
      const auto pref = r.u16();
      if (!pref) return fail(WireErrc::kTruncated);
      auto name = read_compressed_name(r, err);
      if (!name) return std::nullopt;
      if (r.position() > end) return fail(WireErrc::kBadRdata);
      ByteWriter w;
      w.u16(*pref);
      w.bytes(name->to_wire());
      return finish(w.take());
    }
    case RrType::kSoa: {
      auto mname = read_compressed_name(r, err);
      if (!mname) return std::nullopt;
      auto rname = read_compressed_name(r, err);
      if (!rname) return std::nullopt;
      if (r.position() + 20 > end) return fail(WireErrc::kBadRdata);
      ByteWriter w;
      w.bytes(mname->to_wire());
      w.bytes(rname->to_wire());
      for (int i = 0; i < 5; ++i) {
        const auto v = r.u32();
        if (!v) return fail(WireErrc::kTruncated);
        w.u32(*v);
      }
      return finish(w.take());
    }
    default: {
      auto bytes = r.bytes(rdlength);
      if (!bytes) return fail(WireErrc::kTruncated);
      return *bytes;
    }
  }
}

}  // namespace

void Edns::add_ede(EdeCode code, std::string extra_text) {
  EdnsOption option;
  option.code = EdnsOption::kCodeEde;
  option.data.push_back(
      static_cast<std::uint8_t>(static_cast<std::uint16_t>(code) >> 8));
  option.data.push_back(
      static_cast<std::uint8_t>(static_cast<std::uint16_t>(code)));
  option.data.insert(option.data.end(), extra_text.begin(), extra_text.end());
  options.push_back(std::move(option));
}

std::optional<EdeInfo> Edns::ede() const {
  for (const auto& option : options) {
    if (option.code != EdnsOption::kCodeEde) continue;
    if (option.data.size() < 2) return std::nullopt;
    EdeInfo info;
    info.info_code = static_cast<EdeCode>(
        (std::uint16_t{option.data[0]} << 8) | option.data[1]);
    info.extra_text.assign(option.data.begin() + 2, option.data.end());
    return info;
  }
  return std::nullopt;
}

std::vector<std::uint8_t> Message::to_wire() const {
  ByteWriter w;
  NameCompressor compressor;

  const std::uint16_t rcode_value = static_cast<std::uint16_t>(header.rcode);
  std::uint16_t flags = 0;
  if (header.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(header.opcode) & 0xf) << 11);
  if (header.aa) flags |= 0x0400;
  if (header.tc) flags |= 0x0200;
  if (header.rd) flags |= 0x0100;
  if (header.ra) flags |= 0x0080;
  if (header.ad) flags |= 0x0020;
  if (header.cd) flags |= 0x0010;
  flags |= rcode_value & 0xf;

  w.u16(header.id);
  w.u16(flags);
  w.u16(static_cast<std::uint16_t>(questions.size()));
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authorities.size()));
  w.u16(static_cast<std::uint16_t>(additionals.size() + (edns ? 1 : 0)));

  for (const auto& q : questions) {
    compressor.write(w, q.name);
    w.u16(static_cast<std::uint16_t>(q.type));
    w.u16(static_cast<std::uint16_t>(q.klass));
  }

  const auto write_rr = [&](const ResourceRecord& rr) {
    compressor.write(w, rr.name);
    w.u16(static_cast<std::uint16_t>(rr.type));
    w.u16(static_cast<std::uint16_t>(rr.klass));
    w.u32(rr.ttl);
    w.u16(static_cast<std::uint16_t>(rr.rdata.size()));
    w.bytes(rr.rdata);
  };
  for (const auto& rr : answers) write_rr(rr);
  for (const auto& rr : authorities) write_rr(rr);
  for (const auto& rr : additionals) write_rr(rr);

  if (edns) {
    // OPT pseudo-record: root owner, class = payload size,
    // TTL = ext-rcode | version | DO | zeros.
    w.u8(0);  // root name
    w.u16(static_cast<std::uint16_t>(RrType::kOpt));
    w.u16(edns->udp_payload_size);
    std::uint32_t ttl = 0;
    ttl |= static_cast<std::uint32_t>((rcode_value >> 4) & 0xff) << 24;
    ttl |= static_cast<std::uint32_t>(edns->version) << 16;
    if (edns->do_bit) ttl |= 0x8000;
    w.u32(ttl);
    ByteWriter opts;
    for (const auto& option : edns->options) {
      opts.u16(option.code);
      opts.u16(static_cast<std::uint16_t>(option.data.size()));
      opts.bytes(option.data);
    }
    w.u16(static_cast<std::uint16_t>(opts.size()));
    w.bytes(opts.data());
  }
  return w.take();
}

std::size_t Message::wire_size() const {
  NameCompressor compressor;
  std::size_t size = 12;
  for (const auto& q : questions) size += compressor.measure(size, q.name) + 4;
  const auto measure_rr = [&](const ResourceRecord& rr) {
    size += compressor.measure(size, rr.name) + 10 + rr.rdata.size();
  };
  for (const auto& rr : answers) measure_rr(rr);
  for (const auto& rr : authorities) measure_rr(rr);
  for (const auto& rr : additionals) measure_rr(rr);
  if (edns) {
    size += 11;  // root owner + TYPE/CLASS/TTL/RDLENGTH
    for (const auto& option : edns->options) size += 4 + option.data.size();
  }
  return size;
}

const char* to_string(WireErrc errc) {
  switch (errc) {
    case WireErrc::kOk: return "ok";
    case WireErrc::kTruncated: return "truncated";
    case WireErrc::kBadLabelType: return "bad-label-type";
    case WireErrc::kPointerLoop: return "pointer-loop";
    case WireErrc::kNameTooLong: return "name-too-long";
    case WireErrc::kBadRdata: return "bad-rdata";
    case WireErrc::kBadOpt: return "bad-opt";
    case WireErrc::kTrailingBytes: return "trailing-bytes";
  }
  return "unknown";
}

std::optional<Message> Message::from_wire(std::span<const std::uint8_t> wire) {
  return decode(wire).message;
}

DecodeResult Message::decode(std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  Message msg;
  WireErrc err = WireErrc::kOk;
  const auto fail = [&](WireErrc errc) { return DecodeResult{{}, errc}; };

  const auto id = r.u16();
  const auto flags = r.u16();
  const auto qdcount = r.u16();
  const auto ancount = r.u16();
  const auto nscount = r.u16();
  const auto arcount = r.u16();
  if (!id || !flags || !qdcount || !ancount || !nscount || !arcount)
    return fail(WireErrc::kTruncated);

  msg.header.id = *id;
  msg.header.qr = *flags & 0x8000;
  msg.header.opcode = static_cast<Opcode>((*flags >> 11) & 0xf);
  msg.header.aa = *flags & 0x0400;
  msg.header.tc = *flags & 0x0200;
  msg.header.rd = *flags & 0x0100;
  msg.header.ra = *flags & 0x0080;
  msg.header.ad = *flags & 0x0020;
  msg.header.cd = *flags & 0x0010;
  std::uint16_t rcode_value = *flags & 0xf;

  for (std::uint16_t i = 0; i < *qdcount; ++i) {
    auto name = read_compressed_name(r, err);
    if (!name) return fail(err);
    const auto type = r.u16();
    const auto klass = r.u16();
    if (!type || !klass) return fail(WireErrc::kTruncated);
    msg.questions.push_back(Question{*std::move(name),
                                     static_cast<RrType>(*type),
                                     static_cast<RrClass>(*klass)});
  }

  const auto read_section =
      [&](std::uint16_t count,
          std::vector<ResourceRecord>& section) -> bool {
    for (std::uint16_t i = 0; i < count; ++i) {
      auto name = read_compressed_name(r, err);
      if (!name) return false;
      const auto type = r.u16();
      const auto klass = r.u16();
      const auto ttl = r.u32();
      const auto rdlength = r.u16();
      if (!type || !klass || !ttl || !rdlength) {
        err = WireErrc::kTruncated;
        return false;
      }

      if (static_cast<RrType>(*type) == RrType::kOpt) {
        // Lift OPT into msg.edns.
        Edns edns;
        edns.udp_payload_size = *klass;
        edns.version = static_cast<std::uint8_t>((*ttl >> 16) & 0xff);
        edns.do_bit = *ttl & 0x8000;
        rcode_value = static_cast<std::uint16_t>(
            rcode_value | (((*ttl >> 24) & 0xff) << 4));
        const std::size_t end = r.position() + *rdlength;
        if (end > r.whole().size()) {
          err = WireErrc::kTruncated;
          return false;
        }
        while (r.position() < end) {
          const auto code = r.u16();
          const auto len = r.u16();
          if (!code || !len) {
            err = WireErrc::kBadOpt;
            return false;
          }
          auto data = r.bytes(*len);
          if (!data || r.position() > end) {
            err = WireErrc::kBadOpt;
            return false;
          }
          edns.options.push_back(EdnsOption{*code, *std::move(data)});
        }
        if (r.position() != end) {
          err = WireErrc::kBadOpt;
          return false;
        }
        msg.edns = std::move(edns);
        continue;
      }

      auto rdata = read_rdata(r, static_cast<RrType>(*type), *rdlength, err);
      if (!rdata) return false;
      section.push_back(ResourceRecord{*std::move(name),
                                       static_cast<RrType>(*type),
                                       static_cast<RrClass>(*klass), *ttl,
                                       *std::move(rdata)});
    }
    return true;
  };

  if (!read_section(*ancount, msg.answers)) return fail(err);
  if (!read_section(*nscount, msg.authorities)) return fail(err);
  if (!read_section(*arcount, msg.additionals)) return fail(err);

  // Strict framing: a datagram (or TCP frame payload) is exactly one
  // message — anything after the counted sections is an attacker smuggling
  // bytes or a framing bug upstream, not padding.
  if (!r.at_end()) return fail(WireErrc::kTrailingBytes);

  msg.header.rcode = static_cast<Rcode>(rcode_value);
  return DecodeResult{std::move(msg), WireErrc::kOk};
}

Message Message::make_query(std::uint16_t id, const Name& qname, RrType qtype,
                            bool dnssec_ok, bool recursion_desired) {
  Message msg;
  msg.header.id = id;
  msg.header.rd = recursion_desired;
  msg.questions.push_back(Question{qname, qtype, RrClass::kIn});
  Edns edns;
  edns.do_bit = dnssec_ok;
  msg.edns = edns;
  return msg;
}

Message Message::make_response(const Message& query) {
  Message msg;
  msg.header.id = query.header.id;
  msg.header.qr = true;
  msg.header.opcode = query.header.opcode;
  msg.header.rd = query.header.rd;
  msg.questions = query.questions;
  if (query.edns) {
    Edns edns;
    edns.do_bit = query.edns->do_bit;
    msg.edns = edns;
  }
  return msg;
}

std::vector<ResourceRecord> Message::answers_of_type(RrType type) const {
  std::vector<ResourceRecord> out;
  std::copy_if(answers.begin(), answers.end(), std::back_inserter(out),
               [type](const ResourceRecord& rr) { return rr.type == type; });
  return out;
}

std::vector<ResourceRecord> Message::authorities_of_type(RrType type) const {
  std::vector<ResourceRecord> out;
  std::copy_if(authorities.begin(), authorities.end(), std::back_inserter(out),
               [type](const ResourceRecord& rr) { return rr.type == type; });
  return out;
}

std::string Message::summary() const {
  std::string out = to_string(header.rcode);
  if (const Question* q = question()) {
    out += " q=" + q->name.to_string() + " " + to_string(q->type);
  }
  out += " ans=" + std::to_string(answers.size());
  out += " auth=" + std::to_string(authorities.size());
  if (header.aa) out += " AA";
  if (header.ad) out += " AD";
  if (header.ra) out += " RA";
  if (edns && edns->ede()) {
    out += " EDE=" + std::to_string(
        static_cast<std::uint16_t>(edns->ede()->info_code));
  }
  return out;
}

}  // namespace zh::dns
