#include "dns/rr.hpp"

#include <algorithm>

#include "dns/encoding.hpp"

namespace zh::dns {

std::string ResourceRecord::to_string() const {
  std::string out = name.to_string() + " " + std::to_string(ttl) + " " +
                    zh::dns::to_string(klass) + " " + zh::dns::to_string(type);
  switch (type) {
    case RrType::kA:
      if (const auto a = as<ARdata>()) out += " " + a->to_string();
      break;
    case RrType::kAaaa:
      if (const auto a = as<AaaaRdata>()) out += " " + a->to_string();
      break;
    case RrType::kNs:
      if (const auto ns = as<NsRdata>()) out += " " + ns->nsdname.to_string();
      break;
    case RrType::kCname:
      if (const auto cn = as<CnameRdata>()) out += " " + cn->target.to_string();
      break;
    case RrType::kTxt:
      if (const auto txt = as<TxtRdata>())
        for (const auto& s : txt->strings) out += " \"" + s + "\"";
      break;
    case RrType::kDnskey:
      if (const auto key = as<DnskeyRdata>()) {
        out += " " + std::to_string(key->flags) + " " +
               std::to_string(key->protocol) + " " +
               std::to_string(key->algorithm) + " " +
               base64_encode(std::span<const std::uint8_t>(
                   key->public_key.data(), key->public_key.size()));
      }
      break;
    case RrType::kDs:
      if (const auto ds = as<DsRdata>()) {
        out += " " + std::to_string(ds->key_tag) + " " +
               std::to_string(ds->algorithm) + " " +
               std::to_string(ds->digest_type) + " " +
               base16_encode(std::span<const std::uint8_t>(
                   ds->digest.data(), ds->digest.size()));
      }
      break;
    case RrType::kRrsig:
      if (const auto sig = as<RrsigRdata>()) {
        out += " " + zh::dns::to_string(sig->covered()) + " " +
               std::to_string(sig->algorithm) + " " +
               std::to_string(sig->labels) + " " +
               std::to_string(sig->original_ttl) + " " +
               std::to_string(sig->expiration) + " " +
               std::to_string(sig->inception) + " " +
               std::to_string(sig->key_tag) + " " + sig->signer.to_string() +
               " " +
               base64_encode(std::span<const std::uint8_t>(
                   sig->signature.data(), sig->signature.size()));
      }
      break;
    case RrType::kNsec:
      if (const auto nsec = as<NsecRdata>()) {
        out += " " + nsec->next_domain.to_string() + " " +
               nsec->types.to_string();
      }
      break;
    case RrType::kMx:
      if (const auto mx = as<MxRdata>()) {
        out += " " + std::to_string(mx->preference) + " " +
               mx->exchange.to_string();
      }
      break;
    case RrType::kSoa:
      if (const auto soa = as<SoaRdata>()) {
        out += " " + soa->mname.to_string() + " " + soa->rname.to_string() +
               " " + std::to_string(soa->serial) + " " +
               std::to_string(soa->refresh) + " " +
               std::to_string(soa->retry) + " " +
               std::to_string(soa->expire) + " " +
               std::to_string(soa->minimum);
      }
      break;
    case RrType::kNsec3Param:
      if (const auto p = as<Nsec3ParamRdata>()) {
        out += " " + std::to_string(p->hash_algorithm) + " " +
               std::to_string(p->flags) + " " + std::to_string(p->iterations) +
               " " +
               (p->salt.empty() ? std::string("-") : base16_encode(p->salt));
      }
      break;
    case RrType::kNsec3:
      if (const auto n = as<Nsec3Rdata>()) {
        out += " " + std::to_string(n->hash_algorithm) + " " +
               std::to_string(n->flags) + " " + std::to_string(n->iterations) +
               " " +
               (n->salt.empty() ? std::string("-") : base16_encode(n->salt)) +
               " " + base32hex_encode(n->next_hash) + " " +
               n->types.to_string();
      }
      break;
    default:
      out += " \\# " + std::to_string(rdata.size()) + " " +
             base16_encode(rdata);
      break;
  }
  return out;
}

std::vector<ResourceRecord> RrSet::to_records() const {
  std::vector<ResourceRecord> out;
  out.reserve(rdatas.size());
  for (const auto& rd : rdatas)
    out.push_back(ResourceRecord{name, type, klass, ttl, rd});
  return out;
}

std::vector<RrSet> RrSet::group(const std::vector<ResourceRecord>& records) {
  std::vector<RrSet> sets;
  for (const auto& rr : records) {
    auto it = std::find_if(sets.begin(), sets.end(), [&](const RrSet& s) {
      return s.type == rr.type && s.klass == rr.klass && s.name.equals(rr.name);
    });
    if (it == sets.end()) {
      sets.push_back(RrSet{rr.name, rr.type, rr.klass, rr.ttl, {rr.rdata}});
    } else {
      it->ttl = std::min(it->ttl, rr.ttl);
      it->rdatas.push_back(rr.rdata);
    }
  }
  return sets;
}

ResourceRecord make_a(const Name& name, std::uint32_t ttl, std::uint8_t a,
                      std::uint8_t b, std::uint8_t c, std::uint8_t d) {
  ARdata rd;
  rd.address = {a, b, c, d};
  return ResourceRecord::make(name, RrType::kA, ttl, rd);
}

ResourceRecord make_ns(const Name& name, std::uint32_t ttl, const Name& nsd) {
  return ResourceRecord::make(name, RrType::kNs, ttl, NsRdata{nsd});
}

ResourceRecord make_txt(const Name& name, std::uint32_t ttl, std::string text) {
  TxtRdata rd;
  rd.strings.push_back(std::move(text));
  return ResourceRecord::make(name, RrType::kTxt, ttl, rd);
}

ResourceRecord make_soa(const Name& zone, std::uint32_t ttl,
                        const Name& primary_ns, std::uint32_t serial) {
  SoaRdata soa;
  soa.mname = primary_ns;
  if (const auto rname = zone.prepended("hostmaster")) soa.rname = *rname;
  soa.serial = serial;
  return ResourceRecord::make(zone, RrType::kSoa, ttl, soa);
}

}  // namespace zh::dns
