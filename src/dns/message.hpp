// DNS messages (RFC 1035 §4) with EDNS(0) (RFC 6891) and Extended DNS
// Errors (RFC 8914), plus the wire codec with name compression.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dns/name.hpp"
#include "dns/rr.hpp"
#include "dns/types.hpp"

namespace zh::dns {

/// A question-section entry.
struct Question {
  Name name;
  RrType type = RrType::kA;
  RrClass klass = RrClass::kIn;

  bool operator==(const Question& other) const {
    return name.equals(other.name) && type == other.type &&
           klass == other.klass;
  }
};

/// A raw EDNS option (code, opaque payload).
struct EdnsOption {
  static constexpr std::uint16_t kCodeEde = 15;  // RFC 8914

  std::uint16_t code = 0;
  std::vector<std::uint8_t> data;

  bool operator==(const EdnsOption&) const = default;
};

/// Decoded Extended DNS Error.
struct EdeInfo {
  EdeCode info_code = EdeCode::kOther;
  std::string extra_text;
};

/// EDNS(0) state carried by the OPT pseudo-record.
struct Edns {
  std::uint16_t udp_payload_size = 1232;
  std::uint8_t version = 0;
  bool do_bit = false;  // DNSSEC OK
  std::vector<EdnsOption> options;

  void add_ede(EdeCode code, std::string extra_text = {});
  /// First EDE option, decoded; nullopt if none present or malformed.
  std::optional<EdeInfo> ede() const;
};

/// Message header. `rcode` holds the *extended* 12-bit code; the codec
/// splits it between the fixed header and the OPT TTL field.
struct Header {
  std::uint16_t id = 0;
  bool qr = false;  // response flag
  Opcode opcode = Opcode::kQuery;
  bool aa = false;  // authoritative answer
  bool tc = false;  // truncated
  bool rd = false;  // recursion desired
  bool ra = false;  // recursion available
  bool ad = false;  // authentic data (DNSSEC validated)
  bool cd = false;  // checking disabled
  Rcode rcode = Rcode::kNoError;
};

/// Why a wire message failed to decode. The codec parses bytes from
/// untrusted peers (real sockets via the net frontend, simulated-but-
/// adversarial nodes in-sim), so failures are typed — never exceptions,
/// never out-of-bounds reads — and the frontend surfaces them as counters.
enum class WireErrc : std::uint8_t {
  kOk = 0,
  kTruncated,      // ran out of bytes mid-field
  kBadLabelType,   // reserved label type (0x40/0x80 prefix, RFC 1035 §4.1.4)
  kPointerLoop,    // compression pointer not strictly backward
  kNameTooLong,    // name exceeds the 255-byte wire limit
  kBadRdata,       // rdata malformed or inconsistent with RDLENGTH
  kBadOpt,         // OPT pseudo-record options malformed
  kTrailingBytes,  // bytes left over after all counted sections
};

const char* to_string(WireErrc errc);

struct DecodeResult;  // defined after Message (holds one)

/// Lazily-filtered, non-copying walk over one section's records of a given
/// type. Replaces the deep-copying answers_of_type/authorities_of_type on
/// hot paths: empty()/front()/iteration touch only the section in place.
/// Valid while the owning Message is alive and the section unmodified.
class TypedRecordRange {
 public:
  class iterator {
   public:
    using value_type = ResourceRecord;
    using reference = const ResourceRecord&;
    using pointer = const ResourceRecord*;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    iterator() = default;
    iterator(const ResourceRecord* at, const ResourceRecord* end, RrType type)
        : at_(at), end_(end), type_(type) {
      skip_mismatches();
    }
    reference operator*() const { return *at_; }
    pointer operator->() const { return at_; }
    iterator& operator++() {
      ++at_;
      skip_mismatches();
      return *this;
    }
    iterator operator++(int) {
      iterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const iterator& other) const { return at_ == other.at_; }

   private:
    void skip_mismatches() {
      while (at_ != end_ && at_->type != type_) ++at_;
    }
    const ResourceRecord* at_ = nullptr;
    const ResourceRecord* end_ = nullptr;
    RrType type_ = RrType::kA;
  };

  TypedRecordRange(const std::vector<ResourceRecord>& section, RrType type)
      : begin_(section.data()),
        end_(section.data() + section.size()),
        type_(type) {}

  iterator begin() const { return iterator(begin_, end_, type_); }
  iterator end() const { return iterator(end_, end_, type_); }
  bool empty() const { return begin() == end(); }
  /// First matching record; the range must not be empty.
  const ResourceRecord& front() const { return *begin(); }
  std::size_t size() const {
    std::size_t n = 0;
    for (auto it = begin(); it != end(); ++it) ++n;
    return n;
  }

 private:
  const ResourceRecord* begin_ = nullptr;
  const ResourceRecord* end_ = nullptr;
  RrType type_ = RrType::kA;
};

/// A full DNS message. The OPT pseudo-record is lifted into `edns` and never
/// appears in `additionals`.
struct Message {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;
  std::optional<Edns> edns;

  /// Serialises with RFC 1035 §4.1.4 name compression for owner names and
  /// question names (rdata is stored and written uncompressed).
  std::vector<std::uint8_t> to_wire() const;

  /// Exact encoded size — `wire_size() == to_wire().size()` always — without
  /// building the buffer. Shares the compressor's suffix registration
  /// (including the 0x4000 pointer-offset cap) so compression decisions are
  /// identical. Use for size-only decisions like UDP truncation.
  std::size_t wire_size() const;

  /// Parses a wire message; embedded compressed names inside NS/CNAME/SOA/
  /// MX rdata are normalised to uncompressed form. Returns nullopt on any
  /// malformation (truncation, pointer loops, bad counts, trailing bytes).
  /// Equivalent to decode(wire).message.
  static std::optional<Message> from_wire(std::span<const std::uint8_t> wire);

  /// Like from_wire, but says *why* parsing failed (WireErrc). The parse is
  /// strict: every byte of `wire` must belong to a counted section — pass
  /// exactly one datagram or one TCP frame payload.
  static DecodeResult decode(std::span<const std::uint8_t> wire);

  /// Standard recursive query with EDNS, DO bit and a 1232-byte buffer.
  static Message make_query(std::uint16_t id, const Name& qname, RrType qtype,
                            bool dnssec_ok = true, bool recursion_desired = true);

  /// Response skeleton echoing id/opcode/question/RD of `query`.
  static Message make_response(const Message& query);

  /// First question, if any.
  const Question* question() const {
    return questions.empty() ? nullptr : &questions.front();
  }

  /// All answer-section records of the given type (deep copies; prefer
  /// answers_with() on hot paths).
  std::vector<ResourceRecord> answers_of_type(RrType type) const;
  /// All authority-section records of the given type (deep copies; prefer
  /// authorities_with() on hot paths).
  std::vector<ResourceRecord> authorities_of_type(RrType type) const;

  /// Non-copying filtered walk over the answer section.
  TypedRecordRange answers_with(RrType type) const {
    return TypedRecordRange(answers, type);
  }
  /// Non-copying filtered walk over the authority section.
  TypedRecordRange authorities_with(RrType type) const {
    return TypedRecordRange(authorities, type);
  }

  /// One-line summary for logs: "NOERROR q=example.com. A ans=2 auth=0 AD".
  std::string summary() const;
};

/// Outcome of Message::decode: the message, or why there is none.
struct DecodeResult {
  std::optional<Message> message;
  WireErrc error = WireErrc::kOk;

  explicit operator bool() const noexcept { return message.has_value(); }
};

}  // namespace zh::dns
