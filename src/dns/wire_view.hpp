// Zero-copy wire parsing: views over a received DNS message buffer.
//
// Message::decode materialises an owned Message — every label becomes a
// std::string, every record an owned rdata vector. That is the right shape
// for zones, the signer and anything that outlives the buffer, but the scan
// hot path mostly *inspects* a response and throws it away; at wire speed
// the decode allocations dominate. MessageView::parse performs the same
// strict, typed-error validation as Message::decode (identical WireErrc on
// every input — pinned by tests/test_wire_view.cpp over the full bit-flip
// corpus) but leaves all bytes where they are: names are (buffer, offset)
// views that re-walk compression pointers on demand (validated once at
// parse time), rdata is a span into the buffer, and the per-section view
// arrays live in a caller-supplied MonotonicArena reset per query.
//
// The owned Message API remains the source of truth for serialization and
// for anything that must outlive the wire buffer; to_message() materialises
// a view into exactly the Message that Message::decode would have produced.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "dns/arena.hpp"
#include "dns/message.hpp"
#include "dns/name.hpp"
#include "dns/types.hpp"

namespace zh::dns {

/// A validated, possibly-compressed name inside a message buffer. Walking
/// is safe without re-validation: the parser only constructs views over
/// names it has fully checked (bounds, pointer monotonicity, length caps).
class NameView {
 public:
  NameView() = default;

  bool is_root() const noexcept { return label_count_ == 0; }
  std::size_t label_count() const noexcept { return label_count_; }
  /// Octets of the *uncompressed* wire form (≥ 1 for the root).
  std::size_t wire_length() const noexcept { return wire_length_; }

  /// Visits labels leftmost-first as string_views into the buffer.
  template <typename Fn>
  void for_each_label(Fn&& fn) const {
    std::size_t pos = offset_;
    for (;;) {
      const std::uint8_t len = wire_[pos];
      if ((len & 0xc0) == 0xc0) {
        pos = (static_cast<std::size_t>(len & 0x3f) << 8) | wire_[pos + 1];
        continue;
      }
      if (len == 0) return;
      fn(std::string_view(reinterpret_cast<const char*>(&wire_[pos + 1]),
                          len));
      pos += 1 + len;
    }
  }

  /// Case-insensitive equality with an owned name — no materialisation.
  bool equals(const Name& other) const noexcept;

  /// Materialises the owned Name (allocates).
  Name to_name() const;

  /// Presentation form with trailing dot (allocates; logs/tests only).
  std::string to_string() const;

 private:
  friend struct MessageViewParser;
  std::span<const std::uint8_t> wire_{};
  std::uint32_t offset_ = 0;
  std::uint16_t wire_length_ = 1;
  std::uint8_t label_count_ = 0;
};

/// A question-section entry, in place.
struct QuestionView {
  NameView name;
  RrType type = RrType::kA;
  RrClass klass = RrClass::kIn;
};

/// A resource record, in place. `rdata` is the raw on-wire bytes: for the
/// types whose rdata may embed compressed names (NS/CNAME/SOA/MX) it is NOT
/// the normalised form Message::decode stores — materialise via
/// MessageView::to_message() when owned, normalised records are needed.
struct RecordView {
  NameView name;
  RrType type = RrType::kA;
  RrClass klass = RrClass::kIn;
  std::uint32_t ttl = 0;
  std::span<const std::uint8_t> rdata{};
};

/// EDNS(0) state lifted from the OPT pseudo-record; options stay raw.
struct EdnsView {
  std::uint16_t udp_payload_size = 1232;
  std::uint8_t version = 0;
  bool do_bit = false;
  /// Raw concatenated {code u16, len u16, data} option bytes (validated).
  std::span<const std::uint8_t> options{};

  /// First EDE option, decoded; nullopt if none present or malformed.
  std::optional<EdeInfo> ede() const;
};

struct ViewDecodeResult;  // defined after MessageView (holds one)

/// A full message parsed in place. Views stay valid only while the wire
/// buffer and the arena passed to parse() are alive and untouched.
struct MessageView {
  Header header;
  std::span<const QuestionView> questions{};
  std::span<const RecordView> answers{};
  std::span<const RecordView> authorities{};
  std::span<const RecordView> additionals{};
  std::optional<EdnsView> edns;

  /// Parses one datagram / TCP frame payload with Message::decode's exact
  /// accept set and error taxonomy. Section arrays are bump-allocated from
  /// `arena`; the caller resets the arena between queries.
  static ViewDecodeResult parse(std::span<const std::uint8_t> wire,
                                MonotonicArena& arena);

  const QuestionView* question() const noexcept {
    return questions.empty() ? nullptr : &questions.front();
  }

  /// Materialises the owned message this view was parsed from — bytes are
  /// re-decoded so embedded compressed rdata names come out normalised,
  /// exactly as Message::decode produces. Cold path (the wire is known
  /// valid, so the decode cannot fail).
  Message to_message() const;

 private:
  friend struct MessageViewParser;
  std::span<const std::uint8_t> wire_{};
};

/// Outcome of MessageView::parse: the view, or why there is none.
struct ViewDecodeResult {
  std::optional<MessageView> view;
  WireErrc error = WireErrc::kOk;

  explicit operator bool() const noexcept { return view.has_value(); }
};

}  // namespace zh::dns
