#include "dns/name.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace zh::dns {
namespace {

char ascii_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

bool label_equal_ci(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  return true;
}

std::strong_ordering label_compare_ci(std::string_view a,
                                      std::string_view b) noexcept {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto ca = static_cast<unsigned char>(ascii_lower(a[i]));
    const auto cb = static_cast<unsigned char>(ascii_lower(b[i]));
    if (ca != cb) return ca <=> cb;
  }
  return a.size() <=> b.size();
}

}  // namespace

std::optional<Name> Name::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;
  if (text == ".") return Name{};

  if (text.back() == '.') text.remove_suffix(1);
  if (text.empty()) return std::nullopt;

  std::vector<std::string> labels;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t dot = text.find('.', start);
    const std::string_view label =
        text.substr(start, dot == std::string_view::npos ? std::string_view::npos
                                                         : dot - start);
    if (label.empty() || label.size() > kMaxLabelLength) return std::nullopt;
    labels.emplace_back(label);
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return from_labels(std::move(labels));
}

Name Name::must_parse(std::string_view text) {
  auto name = parse(text);
  if (!name) {
    std::fprintf(stderr, "Name::must_parse: invalid name '%.*s'\n",
                 static_cast<int>(text.size()), text.data());
    std::abort();
  }
  return *std::move(name);
}

std::optional<Name> Name::from_labels(std::vector<std::string> labels) {
  std::size_t wire = 1;  // root terminator
  for (const auto& label : labels) {
    if (label.empty() || label.size() > kMaxLabelLength) return std::nullopt;
    wire += 1 + label.size();
  }
  if (wire > kMaxWireLength) return std::nullopt;
  Name name;
  name.labels_ = std::move(labels);
  return name;
}

std::size_t Name::wire_length() const noexcept {
  std::size_t wire = 1;
  for (const auto& label : labels_) wire += 1 + label.size();
  return wire;
}

bool Name::equals(const Name& other) const noexcept {
  if (labels_.size() != other.labels_.size()) return false;
  for (std::size_t i = 0; i < labels_.size(); ++i)
    if (!label_equal_ci(labels_[i], other.labels_[i])) return false;
  return true;
}

bool Name::is_subdomain_of(const Name& ancestor) const noexcept {
  if (ancestor.labels_.size() > labels_.size()) return false;
  const std::size_t offset = labels_.size() - ancestor.labels_.size();
  for (std::size_t i = 0; i < ancestor.labels_.size(); ++i)
    if (!label_equal_ci(labels_[offset + i], ancestor.labels_[i]))
      return false;
  return true;
}

Name Name::parent() const {
  Name p;
  if (labels_.size() > 1)
    p.labels_.assign(labels_.begin() + 1, labels_.end());
  return p;
}

Name Name::ancestor_with_labels(std::size_t label_count) const {
  Name p;
  if (label_count >= labels_.size()) return *this;
  p.labels_.assign(labels_.end() - static_cast<std::ptrdiff_t>(label_count),
                   labels_.end());
  return p;
}

std::optional<Name> Name::prepended(std::string_view label) const {
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.emplace_back(label);
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  return from_labels(std::move(labels));
}

std::optional<Name> Name::appended(const Name& suffix) const {
  std::vector<std::string> labels = labels_;
  labels.insert(labels.end(), suffix.labels_.begin(), suffix.labels_.end());
  return from_labels(std::move(labels));
}

Name Name::wildcard_child() const {
  auto wc = prepended("*");
  // "*" is 1 octet; overflow only if this name is already ≥ 254 octets,
  // which callers avoid; fall back to self to keep noexcept-ish behaviour.
  return wc ? *wc : *this;
}

std::vector<std::uint8_t> Name::to_wire() const {
  std::vector<std::uint8_t> wire;
  wire.reserve(wire_length());
  for (const auto& label : labels_) {
    wire.push_back(static_cast<std::uint8_t>(label.size()));
    wire.insert(wire.end(), label.begin(), label.end());
  }
  wire.push_back(0);
  return wire;
}

std::vector<std::uint8_t> Name::to_canonical_wire() const {
  std::vector<std::uint8_t> wire;
  wire.reserve(wire_length());
  for (const auto& label : labels_) {
    wire.push_back(static_cast<std::uint8_t>(label.size()));
    for (const char c : label)
      wire.push_back(static_cast<std::uint8_t>(ascii_lower(c)));
  }
  wire.push_back(0);
  return wire;
}

void Name::append_canonical_to(std::string& out) const {
  for (const auto& label : labels_) {
    out.push_back(static_cast<char>(label.size()));
    for (const char c : label) out.push_back(ascii_lower(c));
  }
  out.push_back('\0');
}

Name Name::canonical() const {
  Name out;
  out.labels_.reserve(labels_.size());
  for (const auto& label : labels_) {
    std::string lower;
    lower.reserve(label.size());
    for (const char c : label) lower.push_back(ascii_lower(c));
    out.labels_.push_back(std::move(lower));
  }
  return out;
}

std::string Name::to_string() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (const auto& label : labels_) {
    out += label;
    out += '.';
  }
  return out;
}

std::strong_ordering Name::canonical_compare(const Name& a,
                                             const Name& b) noexcept {
  const std::size_t na = a.labels_.size();
  const std::size_t nb = b.labels_.size();
  const std::size_t n = std::min(na, nb);
  // Compare right to left (most significant label first).
  for (std::size_t i = 0; i < n; ++i) {
    const auto order =
        label_compare_ci(a.labels_[na - 1 - i], b.labels_[nb - 1 - i]);
    if (order != std::strong_ordering::equal) return order;
  }
  return na <=> nb;
}

std::strong_ordering Name::canonical_compare_suffix(
    const Name& a, const NameSuffix& b) noexcept {
  const std::size_t na = a.labels_.size();
  const std::size_t nb = b.label_count();
  const std::size_t n = std::min(na, nb);
  for (std::size_t i = 0; i < n; ++i) {
    const auto order =
        label_compare_ci(a.labels_[na - 1 - i], b.label(nb - 1 - i));
    if (order != std::strong_ordering::equal) return order;
  }
  return na <=> nb;
}

std::size_t Name::hash() const noexcept {
  // FNV-1a over the canonical wire form, label lengths included.
  std::size_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  for (const auto& label : labels_) {
    mix(static_cast<std::uint8_t>(label.size()));
    for (const char c : label)
      mix(static_cast<std::uint8_t>(ascii_lower(c)));
  }
  return h;
}

}  // namespace zh::dns
