#include "zone/chain_memo.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace zh::zone {
namespace {

/// Process-wide default-capacity state. `pinned` blocks reserve_default_for
/// once the user expressed an explicit choice (env var or setter).
struct DefaultState {
  std::atomic<std::size_t> capacity{Nsec3ChainMemo::kDefaultCapacity};
  std::atomic<bool> pinned{false};

  DefaultState() {
    const char* raw = std::getenv("ZH_CHAIN_MEMO");
    if (raw == nullptr) return;
    char* end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(raw, &end, 10);
    if (errno != 0 || end == raw || *end != '\0' || raw[0] == '-') {
      std::fprintf(stderr,
                   "# ZH_CHAIN_MEMO='%s' is not a non-negative integer; "
                   "using %llu\n",
                   raw,
                   static_cast<unsigned long long>(
                       Nsec3ChainMemo::kDefaultCapacity));
      return;
    }
    capacity.store(static_cast<std::size_t>(value),
                   std::memory_order_relaxed);
    pinned.store(true, std::memory_order_relaxed);
  }
};

DefaultState& default_state() {
  static DefaultState state;
  return state;
}

}  // namespace

Nsec3ChainMemo& Nsec3ChainMemo::instance() {
  thread_local Nsec3ChainMemo memo = [] {
    Nsec3ChainMemo m;
    m.set_capacity(default_capacity());
    return m;
  }();
  return memo;
}

std::size_t Nsec3ChainMemo::default_capacity() {
  return default_state().capacity.load(std::memory_order_relaxed);
}

void Nsec3ChainMemo::set_default_capacity(std::size_t capacity) {
  default_state().capacity.store(capacity, std::memory_order_relaxed);
  default_state().pinned.store(true, std::memory_order_relaxed);
  instance().set_capacity(capacity);
}

void Nsec3ChainMemo::reserve_default_for(std::size_t zones) {
  DefaultState& state = default_state();
  if (state.pinned.load(std::memory_order_relaxed)) return;
  const std::size_t want = std::min(zones, kMaxAutoCapacity);
  std::size_t current = state.capacity.load(std::memory_order_relaxed);
  while (current < want &&
         !state.capacity.compare_exchange_weak(current, want,
                                               std::memory_order_relaxed)) {
  }
  if (instance().capacity() < want && instance().capacity() > 0)
    instance().set_capacity(want);
}

void Nsec3ChainMemo::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void Nsec3ChainMemo::clear() {
  map_.clear();
  lru_.clear();
}

const Nsec3ChainMemo::CachedChain* Nsec3ChainMemo::lookup(
    const std::string& key) {
  if (!enabled()) return nullptr;
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  ++stats_.hits;
  return &it->second.chain;
}

void Nsec3ChainMemo::insert(std::string key,
                            std::vector<Nsec3ChainEntry> entries,
                            ChainCost cost) {
  if (!enabled()) return;
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // Same key re-inserted (capacity was toggled mid-run): refresh in place.
    it->second.chain = CachedChain{std::move(entries), cost};
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return;
  }
  lru_.push_front(key);
  map_.emplace(std::move(key),
               Slot{CachedChain{std::move(entries), cost}, lru_.begin()});
  ++stats_.insertions;
  if (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace zh::zone
