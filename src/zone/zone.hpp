// Zone model: an apex plus a canonically-ordered tree of nodes, each node
// holding the RRsets at one owner name. Empty non-terminals are materialised
// so NSEC/NSEC3 chain construction and denial proofs see them (RFC 5155 §7.1).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dns/name.hpp"
#include "dns/rdata.hpp"
#include "dns/rr.hpp"

namespace zh::zone {

/// Per-zone NSEC3 parameters — the paper's measured variables.
struct Nsec3Params {
  std::uint16_t iterations = 0;       // RFC 9276 Item 2: MUST be 0
  std::vector<std::uint8_t> salt;     // RFC 9276 Item 3: SHOULD be empty
  bool opt_out = false;               // RFC 9276 Items 4/5

  /// RFC 9276 compliance of the parameters themselves (Items 2 + 3).
  bool rfc9276_compliant() const noexcept {
    return iterations == 0 && salt.empty();
  }
};

/// How a zone proves non-existence.
enum class DenialMode {
  kUnsigned,  // no DNSSEC at all
  kNsec,      // plain NSEC (RFC 4034)
  kNsec3,     // hashed denial (RFC 5155)
};

/// One owner name's RRsets.
struct ZoneNode {
  std::map<dns::RrType, dns::RrSet> rrsets;

  bool empty() const noexcept { return rrsets.empty(); }  // empty non-terminal
  const dns::RrSet* find(dns::RrType type) const {
    const auto it = rrsets.find(type);
    return it == rrsets.end() ? nullptr : &it->second;
  }
  bool has(dns::RrType type) const { return rrsets.count(type) > 0; }
};

/// One link of a zone's NSEC3 chain.
///
/// NSEC3 records live outside the ordinary name tree (their owner names are
/// hash labels and must not participate in closest-encloser searches), so
/// the chain is stored as a parallel structure sorted by hash value.
struct Nsec3ChainEntry {
  std::vector<std::uint8_t> hash;  // hash of the original owner name
  dns::Name owner;                 // base32hex(hash).<apex>
  dns::Nsec3Rdata rdata;
  std::uint32_t ttl = 3600;
  std::vector<dns::ResourceRecord> rrsigs;  // signatures over this NSEC3

  /// The NSEC3 record itself as a resource record.
  dns::ResourceRecord to_record() const {
    return dns::ResourceRecord::make(owner, dns::RrType::kNsec3, ttl, rdata);
  }
};

/// A DNS zone under construction or service.
///
/// Mutating methods are used by builders/signers; servers hold the zone via
/// shared_ptr<const Zone> and use the const query surface.
class Zone {
 public:
  explicit Zone(dns::Name apex) : apex_(std::move(apex)) {}

  const dns::Name& apex() const noexcept { return apex_; }

  /// Adds a record; creates intermediate empty non-terminals up to the apex.
  /// Returns false (and ignores the record) if the owner is outside the zone.
  bool add(dns::ResourceRecord rr);

  /// Node lookup; nullptr if the exact name does not exist (ENTs *do* exist).
  const ZoneNode* node(const dns::Name& name) const;
  ZoneNode* mutable_node(const dns::Name& name);

  /// Exact (name, type) RRset; nullptr if absent.
  const dns::RrSet* find(const dns::Name& name, dns::RrType type) const;

  bool name_exists(const dns::Name& name) const { return node(name) != nullptr; }

  /// Node lookup by the `labels` rightmost labels of `name` — the ancestor
  /// node without materialising the ancestor Name (transparent find).
  const ZoneNode* node_for_suffix(const dns::Name& name,
                                  std::size_t labels) const {
    const auto it = nodes_.find(dns::NameSuffix{&name, labels});
    return it == nodes_.end() ? nullptr : &it->second;
  }

  /// The longest existing ancestor of `name` within the zone (the closest
  /// encloser, RFC 5155 §7.2.1). Always exists: at worst the apex.
  dns::Name closest_encloser(const dns::Name& name) const;

  /// True if `name` is at or below a delegation point (has an NS RRset at a
  /// non-apex ancestor), i.e. not authoritative data of this zone.
  std::optional<dns::Name> delegation_for(const dns::Name& name) const;

  /// All owner names in canonical order (ENTs included).
  std::vector<dns::Name> names_in_order() const;

  /// Total record count (for stats/dumps).
  std::size_t record_count() const;

  /// The zone's NSEC3PARAM, if published.
  std::optional<dns::Nsec3ParamRdata> nsec3param() const;

  /// SOA at the apex; zones under service always have one.
  const dns::RrSet* soa() const { return find(apex_, dns::RrType::kSoa); }

  /// Presentation-format dump (sorted), for logs and golden tests.
  std::string to_text() const;

  /// Iterates nodes in canonical order.
  template <typename Fn>
  void for_each_node(Fn&& fn) const {
    for (const auto& [name, node] : nodes_) fn(name, node);
  }

  // --- NSEC3 chain (populated by the signer for DenialMode::kNsec3) ---

  /// Installs the chain; `entries` must already be sorted by hash.
  void set_nsec3_chain(std::vector<Nsec3ChainEntry> entries,
                       Nsec3Params params);

  const std::vector<Nsec3ChainEntry>& nsec3_entries() const noexcept {
    return nsec3_chain_;
  }
  const std::optional<Nsec3Params>& nsec3_params_used() const noexcept {
    return nsec3_params_;
  }

  /// Entry whose hash equals `hash` exactly (proves existence of the name).
  const Nsec3ChainEntry* nsec3_matching(
      std::span<const std::uint8_t> hash) const;

  /// Entry whose (owner, next] interval covers `hash` (proves absence).
  const Nsec3ChainEntry* nsec3_covering(
      std::span<const std::uint8_t> hash) const;

  // --- NSEC chain support ---

  /// The existing name that sorts immediately at-or-before `name` in
  /// canonical order (for NSEC covering proofs); the chain wraps.
  const dns::Name* nsec_predecessor(const dns::Name& name) const;

 private:
  dns::Name apex_;
  std::map<dns::Name, ZoneNode, dns::NameCanonicalLess> nodes_;
  std::vector<Nsec3ChainEntry> nsec3_chain_;  // sorted by hash
  std::optional<Nsec3Params> nsec3_params_;
};

}  // namespace zh::zone
