// DNSSEC zone signer: installs DNSKEYs, builds the NSEC or NSEC3 chain, and
// signs every authoritative RRset (RFC 4035 §2, RFC 5155 §7.1).
//
// Key material is derived deterministically from the zone apex so that a
// rebuilt synthetic ecosystem is byte-identical; validity windows are
// explicit so the testbed can produce `expired` and `it-2501-expired` zones.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "dns/rdata.hpp"
#include "zone/zone.hpp"

namespace zh::zone {

/// The simulation's epoch: 2024-03-15 00:00:00 UTC — mid-measurement-window
/// of the paper (domains scanned March 2024, resolvers April 2024).
constexpr std::uint32_t kSimNow = 1710460800;

/// Signing configuration for one zone.
struct SignerConfig {
  DenialMode denial = DenialMode::kNsec3;
  Nsec3Params nsec3;

  std::uint32_t inception = kSimNow - 7 * 86400;
  std::uint32_t expiration = kSimNow + 23 * 86400;

  /// Overrides expiration for the RRSIGs covering NSEC3 records only —
  /// builds the paper's `it-2501-expired` probe zone (§4.2).
  std::optional<std::uint32_t> nsec3_rrsig_expiration;

  std::uint32_t dnskey_ttl = 3600;
  std::uint32_t nsec_ttl = 3600;

  /// Seed for deterministic key derivation; defaults to the apex name.
  std::string key_seed;
};

/// Keys and parent-side material produced by signing.
struct SigningResult {
  dns::DnskeyRdata ksk;
  dns::DnskeyRdata zsk;
  /// DS for the parent zone (digest of the KSK).
  dns::DsRdata ds;
};

/// Signs `zone` in place. Idempotence is not supported: call exactly once
/// on a fully built (but unsigned) zone.
///
/// Behaviour:
///  * apex gains DNSKEY (KSK+ZSK) and, for NSEC3, an NSEC3PARAM record;
///  * every authoritative RRset gains RRSIGs (delegation NS and glue are
///    not signed, per RFC 4035 §2.2);
///  * DenialMode::kNsec adds NSEC records into the name tree;
///    DenialMode::kNsec3 fills the zone's NSEC3 chain (opt-out honoured:
///    insecure delegations are omitted when params.opt_out is set);
///  * DenialMode::kUnsigned returns keys that are simply unused.
SigningResult sign_zone(Zone& zone, const SignerConfig& config);

/// Derives the DNSKEY a zone *would* publish without signing it (used by
/// trust-anchor setup and tests).
dns::DnskeyRdata derive_dnskey(const std::string& seed, bool ksk);

}  // namespace zh::zone
