#include "zone/zone.hpp"

#include <algorithm>
#include <span>

#include "dns/dnssec.hpp"

namespace zh::zone {

bool Zone::add(dns::ResourceRecord rr) {
  if (!rr.name.is_subdomain_of(apex_)) return false;

  // Materialise empty non-terminals between the apex and the owner.
  for (std::size_t labels = apex_.label_count() + 1;
       labels < rr.name.label_count(); ++labels) {
    const dns::Name ancestor = rr.name.ancestor_with_labels(labels);
    nodes_.try_emplace(ancestor);
  }

  ZoneNode& node = nodes_[rr.name];
  auto [it, inserted] =
      node.rrsets.try_emplace(rr.type, dns::RrSet{rr.name, rr.type, rr.klass,
                                                  rr.ttl, {}});
  dns::RrSet& set = it->second;
  set.ttl = std::min(set.ttl, rr.ttl);
  // Ignore exact duplicates (RFC 2181 §5).
  if (std::find(set.rdatas.begin(), set.rdatas.end(), rr.rdata) ==
      set.rdatas.end())
    set.rdatas.push_back(std::move(rr.rdata));
  return true;
}

const ZoneNode* Zone::node(const dns::Name& name) const {
  const auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : &it->second;
}

ZoneNode* Zone::mutable_node(const dns::Name& name) {
  const auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : &it->second;
}

const dns::RrSet* Zone::find(const dns::Name& name, dns::RrType type) const {
  const ZoneNode* n = node(name);
  return n ? n->find(type) : nullptr;
}

dns::Name Zone::closest_encloser(const dns::Name& name) const {
  // Transparent suffix lookups: only the winning ancestor is materialised,
  // not one Name per probed level.
  if (!name.is_subdomain_of(apex_)) return apex_;
  for (std::size_t labels = name.label_count();; --labels) {
    if (std::min(labels, name.label_count()) <= apex_.label_count())
      return apex_;
    if (node_for_suffix(name, labels) != nullptr)
      return name.ancestor_with_labels(labels);
    if (labels == 0) break;
  }
  return apex_;
}

std::optional<dns::Name> Zone::delegation_for(const dns::Name& name) const {
  // Walk from just below the apex towards `name`, stopping at the first NS.
  for (std::size_t labels = apex_.label_count() + 1;
       labels <= name.label_count(); ++labels) {
    const ZoneNode* n = node_for_suffix(name, labels);
    if (n && n->has(dns::RrType::kNs)) return name.ancestor_with_labels(labels);
  }
  return std::nullopt;
}

std::vector<dns::Name> Zone::names_in_order() const {
  std::vector<dns::Name> out;
  out.reserve(nodes_.size());
  for (const auto& [name, node] : nodes_) out.push_back(name);
  return out;
}

std::size_t Zone::record_count() const {
  std::size_t count = 0;
  for (const auto& [name, node] : nodes_)
    for (const auto& [type, set] : node.rrsets) count += set.size();
  return count;
}

std::optional<dns::Nsec3ParamRdata> Zone::nsec3param() const {
  const dns::RrSet* set = find(apex_, dns::RrType::kNsec3Param);
  if (!set || set->empty()) return std::nullopt;
  return dns::Nsec3ParamRdata::decode(std::span<const std::uint8_t>(
      set->rdatas.front().data(), set->rdatas.front().size()));
}

std::string Zone::to_text() const {
  std::string out;
  for (const auto& [name, node] : nodes_) {
    for (const auto& [type, set] : node.rrsets) {
      for (const auto& rr : set.to_records()) {
        out += rr.to_string();
        out += '\n';
      }
    }
  }
  // The NSEC3 chain lives outside the name tree; dump it too so a zone
  // round-trips through parse_zone_text completely.
  for (const auto& entry : nsec3_chain_) {
    out += entry.to_record().to_string();
    out += '\n';
    for (const auto& sig : entry.rrsigs) {
      out += sig.to_string();
      out += '\n';
    }
  }
  return out;
}

void Zone::set_nsec3_chain(std::vector<Nsec3ChainEntry> entries,
                           Nsec3Params params) {
  nsec3_chain_ = std::move(entries);
  nsec3_params_ = std::move(params);
}

const Nsec3ChainEntry* Zone::nsec3_matching(
    std::span<const std::uint8_t> hash) const {
  const auto it = std::lower_bound(
      nsec3_chain_.begin(), nsec3_chain_.end(), hash,
      [](const Nsec3ChainEntry& e, std::span<const std::uint8_t> h) {
        return std::lexicographical_compare(e.hash.begin(), e.hash.end(),
                                            h.begin(), h.end());
      });
  if (it == nsec3_chain_.end()) return nullptr;
  if (it->hash.size() == hash.size() &&
      std::equal(it->hash.begin(), it->hash.end(), hash.begin()))
    return &*it;
  return nullptr;
}

const Nsec3ChainEntry* Zone::nsec3_covering(
    std::span<const std::uint8_t> hash) const {
  if (nsec3_chain_.empty()) return nullptr;
  // Find the last entry with entry.hash < hash; if none, the chain's final
  // entry covers via wrap-around.
  const auto it = std::lower_bound(
      nsec3_chain_.begin(), nsec3_chain_.end(), hash,
      [](const Nsec3ChainEntry& e, std::span<const std::uint8_t> h) {
        return std::lexicographical_compare(e.hash.begin(), e.hash.end(),
                                            h.begin(), h.end());
      });
  const Nsec3ChainEntry* candidate =
      (it == nsec3_chain_.begin()) ? &nsec3_chain_.back() : &*(it - 1);
  const std::span<const std::uint8_t> owner(candidate->hash.data(),
                                            candidate->hash.size());
  const std::span<const std::uint8_t> next(candidate->rdata.next_hash.data(),
                                           candidate->rdata.next_hash.size());
  return dns::nsec3_covers(owner, next, hash) ? candidate : nullptr;
}

const dns::Name* Zone::nsec_predecessor(const dns::Name& name) const {
  if (nodes_.empty()) return nullptr;
  auto it = nodes_.upper_bound(name);
  if (it == nodes_.begin()) return &nodes_.rbegin()->first;  // wrap
  --it;
  return &it->first;
}

}  // namespace zh::zone
