#include "zone/zonefile.hpp"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "dns/dnssec.hpp"
#include "dns/encoding.hpp"

namespace zh::zone {
namespace {

using dns::Name;
using dns::RdataBytes;
using dns::ResourceRecord;
using dns::RrType;

/// Whitespace tokenizer with double-quote support (TXT strings).
std::optional<std::vector<std::string>> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size()) break;
    if (line[i] == '"') {
      const std::size_t end = line.find('"', i + 1);
      if (end == std::string_view::npos) return std::nullopt;
      tokens.push_back("\"" + std::string(line.substr(i + 1, end - i - 1)));
      i = end + 1;
    } else {
      std::size_t end = i;
      while (end < line.size() && line[end] != ' ' && line[end] != '\t')
        ++end;
      tokens.emplace_back(line.substr(i, end - i));
      i = end;
    }
  }
  return tokens;
}

bool fail(std::string* error, std::string message) {
  if (error) *error = std::move(message);
  return false;
}

std::optional<std::uint64_t> parse_number(const std::string& token) {
  if (token.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

/// Parses a type bitmap written as space-separated mnemonics.
std::optional<dns::TypeBitmap> parse_bitmap(
    const std::vector<std::string>& tokens, std::size_t from) {
  dns::TypeBitmap bitmap;
  for (std::size_t i = from; i < tokens.size(); ++i) {
    const auto type = dns::rr_type_from_string(tokens[i]);
    if (!type) return std::nullopt;
    bitmap.insert(*type);
  }
  return bitmap;
}

std::optional<std::vector<std::uint8_t>> parse_salt(const std::string& token) {
  if (token == "-") return std::vector<std::uint8_t>{};
  return dns::base16_decode(token);
}

std::optional<RdataBytes> parse_rdata(RrType type,
                                      const std::vector<std::string>& t,
                                      std::size_t i) {
  const auto need = [&](std::size_t n) { return t.size() >= i + n; };
  switch (type) {
    case RrType::kA: {
      if (!need(1)) return std::nullopt;
      dns::ARdata a;
      unsigned b0, b1, b2, b3;
      if (std::sscanf(t[i].c_str(), "%u.%u.%u.%u", &b0, &b1, &b2, &b3) != 4)
        return std::nullopt;
      if (b0 > 255 || b1 > 255 || b2 > 255 || b3 > 255) return std::nullopt;
      a.address = {static_cast<std::uint8_t>(b0),
                   static_cast<std::uint8_t>(b1),
                   static_cast<std::uint8_t>(b2),
                   static_cast<std::uint8_t>(b3)};
      return a.encode();
    }
    case RrType::kAaaa: {
      if (!need(1)) return std::nullopt;
      dns::AaaaRdata a;
      unsigned groups[8];
      if (std::sscanf(t[i].c_str(), "%x:%x:%x:%x:%x:%x:%x:%x", &groups[0],
                      &groups[1], &groups[2], &groups[3], &groups[4],
                      &groups[5], &groups[6], &groups[7]) != 8)
        return std::nullopt;
      for (int g = 0; g < 8; ++g) {
        if (groups[g] > 0xffff) return std::nullopt;
        a.address[static_cast<std::size_t>(2 * g)] =
            static_cast<std::uint8_t>(groups[g] >> 8);
        a.address[static_cast<std::size_t>(2 * g + 1)] =
            static_cast<std::uint8_t>(groups[g]);
      }
      return a.encode();
    }
    case RrType::kNs: {
      if (!need(1)) return std::nullopt;
      const auto name = Name::parse(t[i]);
      if (!name) return std::nullopt;
      return dns::NsRdata{*name}.encode();
    }
    case RrType::kCname: {
      if (!need(1)) return std::nullopt;
      const auto name = Name::parse(t[i]);
      if (!name) return std::nullopt;
      return dns::CnameRdata{*name}.encode();
    }
    case RrType::kMx: {
      if (!need(2)) return std::nullopt;
      const auto preference = parse_number(t[i]);
      const auto name = Name::parse(t[i + 1]);
      if (!preference || !name) return std::nullopt;
      return dns::MxRdata{static_cast<std::uint16_t>(*preference), *name}
          .encode();
    }
    case RrType::kTxt: {
      dns::TxtRdata txt;
      for (std::size_t k = i; k < t.size(); ++k) {
        if (t[k].empty() || t[k][0] != '"') return std::nullopt;
        txt.strings.push_back(t[k].substr(1));
      }
      if (txt.strings.empty()) return std::nullopt;
      return txt.encode();
    }
    case RrType::kSoa: {
      if (!need(7)) return std::nullopt;
      dns::SoaRdata soa;
      const auto mname = Name::parse(t[i]);
      const auto rname = Name::parse(t[i + 1]);
      if (!mname || !rname) return std::nullopt;
      soa.mname = *mname;
      soa.rname = *rname;
      const auto serial = parse_number(t[i + 2]);
      const auto refresh = parse_number(t[i + 3]);
      const auto retry = parse_number(t[i + 4]);
      const auto expire = parse_number(t[i + 5]);
      const auto minimum = parse_number(t[i + 6]);
      if (!serial || !refresh || !retry || !expire || !minimum)
        return std::nullopt;
      soa.serial = static_cast<std::uint32_t>(*serial);
      soa.refresh = static_cast<std::uint32_t>(*refresh);
      soa.retry = static_cast<std::uint32_t>(*retry);
      soa.expire = static_cast<std::uint32_t>(*expire);
      soa.minimum = static_cast<std::uint32_t>(*minimum);
      return soa.encode();
    }
    case RrType::kDnskey: {
      if (!need(4)) return std::nullopt;
      dns::DnskeyRdata key;
      const auto flags = parse_number(t[i]);
      const auto protocol = parse_number(t[i + 1]);
      const auto algorithm = parse_number(t[i + 2]);
      const auto blob = dns::base64_decode(t[i + 3]);
      if (!flags || !protocol || !algorithm || !blob) return std::nullopt;
      key.flags = static_cast<std::uint16_t>(*flags);
      key.protocol = static_cast<std::uint8_t>(*protocol);
      key.algorithm = static_cast<std::uint8_t>(*algorithm);
      key.public_key = *blob;
      return key.encode();
    }
    case RrType::kDs: {
      if (!need(4)) return std::nullopt;
      dns::DsRdata ds;
      const auto key_tag = parse_number(t[i]);
      const auto algorithm = parse_number(t[i + 1]);
      const auto digest_type = parse_number(t[i + 2]);
      const auto digest = dns::base16_decode(t[i + 3]);
      if (!key_tag || !algorithm || !digest_type || !digest)
        return std::nullopt;
      ds.key_tag = static_cast<std::uint16_t>(*key_tag);
      ds.algorithm = static_cast<std::uint8_t>(*algorithm);
      ds.digest_type = static_cast<std::uint8_t>(*digest_type);
      ds.digest = *digest;
      return ds.encode();
    }
    case RrType::kRrsig: {
      if (!need(9)) return std::nullopt;
      dns::RrsigRdata sig;
      const auto covered = dns::rr_type_from_string(t[i]);
      const auto algorithm = parse_number(t[i + 1]);
      const auto labels = parse_number(t[i + 2]);
      const auto original_ttl = parse_number(t[i + 3]);
      const auto expiration = parse_number(t[i + 4]);
      const auto inception = parse_number(t[i + 5]);
      const auto key_tag = parse_number(t[i + 6]);
      const auto signer = Name::parse(t[i + 7]);
      const auto signature = dns::base64_decode(t[i + 8]);
      if (!covered || !algorithm || !labels || !original_ttl || !expiration ||
          !inception || !key_tag || !signer || !signature)
        return std::nullopt;
      sig.type_covered = static_cast<std::uint16_t>(*covered);
      sig.algorithm = static_cast<std::uint8_t>(*algorithm);
      sig.labels = static_cast<std::uint8_t>(*labels);
      sig.original_ttl = static_cast<std::uint32_t>(*original_ttl);
      sig.expiration = static_cast<std::uint32_t>(*expiration);
      sig.inception = static_cast<std::uint32_t>(*inception);
      sig.key_tag = static_cast<std::uint16_t>(*key_tag);
      sig.signer = *signer;
      sig.signature = *signature;
      return sig.encode();
    }
    case RrType::kNsec: {
      if (!need(1)) return std::nullopt;
      dns::NsecRdata nsec;
      const auto next = Name::parse(t[i]);
      if (!next) return std::nullopt;
      nsec.next_domain = *next;
      const auto bitmap = parse_bitmap(t, i + 1);
      if (!bitmap) return std::nullopt;
      nsec.types = *bitmap;
      return nsec.encode();
    }
    case RrType::kNsec3: {
      if (!need(5)) return std::nullopt;
      dns::Nsec3Rdata nsec3;
      const auto algorithm = parse_number(t[i]);
      const auto flags = parse_number(t[i + 1]);
      const auto iterations = parse_number(t[i + 2]);
      const auto salt = parse_salt(t[i + 3]);
      const auto next_hash = dns::base32hex_decode(t[i + 4]);
      if (!algorithm || !flags || !iterations || !salt || !next_hash)
        return std::nullopt;
      nsec3.hash_algorithm = static_cast<std::uint8_t>(*algorithm);
      nsec3.flags = static_cast<std::uint8_t>(*flags);
      nsec3.iterations = static_cast<std::uint16_t>(*iterations);
      nsec3.salt = *salt;
      nsec3.next_hash = *next_hash;
      const auto bitmap = parse_bitmap(t, i + 5);
      if (!bitmap) return std::nullopt;
      nsec3.types = *bitmap;
      return nsec3.encode();
    }
    case RrType::kNsec3Param: {
      if (!need(4)) return std::nullopt;
      dns::Nsec3ParamRdata param;
      const auto algorithm = parse_number(t[i]);
      const auto flags = parse_number(t[i + 1]);
      const auto iterations = parse_number(t[i + 2]);
      const auto salt = parse_salt(t[i + 3]);
      if (!algorithm || !flags || !iterations || !salt) return std::nullopt;
      param.hash_algorithm = static_cast<std::uint8_t>(*algorithm);
      param.flags = static_cast<std::uint8_t>(*flags);
      param.iterations = static_cast<std::uint16_t>(*iterations);
      param.salt = *salt;
      return param.encode();
    }
    default: {
      // Generic form: \# <len> <hex>.
      if (!need(3) || t[i] != "\\#") return std::nullopt;
      const auto len = parse_number(t[i + 1]);
      const auto blob = dns::base16_decode(t[i + 2]);
      if (!len || !blob || blob->size() != *len) return std::nullopt;
      return *blob;
    }
  }
}

}  // namespace

std::optional<ResourceRecord> parse_record_line(std::string_view line,
                                                std::string* error) {
  const auto tokens = tokenize(line);
  if (!tokens || tokens->size() < 4) {
    fail(error, "expected: <owner> <ttl> IN <TYPE> <rdata...>");
    return std::nullopt;
  }
  const auto& t = *tokens;
  const auto owner = Name::parse(t[0]);
  if (!owner) {
    fail(error, "bad owner name: " + t[0]);
    return std::nullopt;
  }
  const auto ttl = parse_number(t[1]);
  if (!ttl || *ttl > 0xffffffffull) {
    fail(error, "bad TTL: " + t[1]);
    return std::nullopt;
  }
  if (t[2] != "IN") {
    fail(error, "only class IN is supported, got: " + t[2]);
    return std::nullopt;
  }
  const auto type = dns::rr_type_from_string(t[3]);
  if (!type) {
    fail(error, "unknown type: " + t[3]);
    return std::nullopt;
  }
  const auto rdata = parse_rdata(*type, t, 4);
  if (!rdata) {
    fail(error, "bad rdata for " + t[3] + ": " + std::string(line));
    return std::nullopt;
  }
  return ResourceRecord{*owner, *type, dns::RrClass::kIn,
                        static_cast<std::uint32_t>(*ttl), *rdata};
}

std::optional<Zone> parse_zone_text(std::string_view text, const Name& apex,
                                    std::string* error) {
  std::vector<ResourceRecord> records;
  std::size_t start = 0;
  std::size_t line_number = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    const std::string_view line =
        text.substr(start, end == std::string_view::npos ? std::string_view::npos
                                                         : end - start);
    ++line_number;
    if (!line.empty() && line[0] != ';') {
      auto record = parse_record_line(line, error);
      if (!record) {
        if (error)
          *error = "line " + std::to_string(line_number) + ": " + *error;
        return std::nullopt;
      }
      records.push_back(*std::move(record));
    }
    if (end == std::string_view::npos) break;
    start = end + 1;
  }

  Zone zone(apex);

  // Route NSEC3 records (and their RRSIGs) into the chain.
  std::vector<Nsec3ChainEntry> chain;
  std::vector<ResourceRecord> chain_sigs;
  std::optional<Nsec3Params> params;

  for (const auto& rr : records) {
    if (rr.type == RrType::kNsec3) {
      const auto hash = dns::nsec3_owner_hash(rr.name, apex);
      const auto rdata = rr.as<dns::Nsec3Rdata>();
      if (!hash || !rdata) {
        fail(error, "NSEC3 record with non-hash owner: " + rr.name.to_string());
        return std::nullopt;
      }
      Nsec3ChainEntry entry;
      entry.hash = *hash;
      entry.owner = rr.name;
      entry.rdata = *rdata;
      entry.ttl = rr.ttl;
      chain.push_back(std::move(entry));
      if (!params) {
        params = Nsec3Params{rdata->iterations, rdata->salt, rdata->opt_out()};
      }
      continue;
    }
    if (rr.type == RrType::kRrsig) {
      const auto sig = rr.as<dns::RrsigRdata>();
      if (sig && sig->covered() == RrType::kNsec3) {
        chain_sigs.push_back(rr);
        continue;
      }
    }
    if (!zone.add(rr)) {
      fail(error, "record outside zone: " + rr.name.to_string());
      return std::nullopt;
    }
  }

  if (!chain.empty()) {
    std::sort(chain.begin(), chain.end(),
              [](const Nsec3ChainEntry& a, const Nsec3ChainEntry& b) {
                return a.hash < b.hash;
              });
    for (auto& entry : chain) {
      for (const auto& sig : chain_sigs) {
        if (sig.name.equals(entry.owner)) entry.rrsigs.push_back(sig);
      }
    }
    zone.set_nsec3_chain(std::move(chain), *params);
  }
  return zone;
}

}  // namespace zh::zone
