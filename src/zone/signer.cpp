#include "zone/signer.hpp"

#include <algorithm>

#include "crypto/cost_meter.hpp"
#include "crypto/signing.hpp"
#include "dns/dnssec.hpp"
#include "dns/encoding.hpp"
#include "zone/chain_memo.hpp"

namespace zh::zone {
namespace {

using dns::DnskeyRdata;
using dns::Name;
using dns::ResourceRecord;
using dns::RrSet;
using dns::RrType;

/// Returns the private signing key for a DNSKEY derived from `seed`.
crypto::SimKey sim_key(const std::string& seed, bool ksk) {
  return crypto::SimKey::derive(seed + (ksk ? "/ksk" : "/zsk"));
}

/// True if `name` is an insecure delegation point (NS, no DS, non-apex).
bool is_insecure_delegation(const Zone& zone, const Name& name,
                            const ZoneNode& node) {
  return !name.equals(zone.apex()) && node.has(RrType::kNs) &&
         !node.has(RrType::kDs);
}

/// True if `name` is any delegation point.
bool is_delegation(const Zone& zone, const Name& name, const ZoneNode& node) {
  return !name.equals(zone.apex()) && node.has(RrType::kNs);
}

/// True if `name` is occluded: strictly below a delegation point (glue).
bool is_occluded(const Zone& zone, const Name& name) {
  const auto cut = zone.delegation_for(name);
  return cut && !cut->equals(name);
}

/// Builds and signs an RRSIG over `rrset` with the zone's ZSK (or KSK for
/// the DNSKEY RRset, per convention).
ResourceRecord make_rrsig(const Zone& zone, const RrSet& rrset,
                          const SignerConfig& config,
                          const crypto::SimKey& key,
                          const DnskeyRdata& key_record,
                          std::uint32_t expiration) {
  dns::RrsigRdata presig;
  presig.type_covered = static_cast<std::uint16_t>(rrset.type);
  presig.algorithm =
      static_cast<std::uint8_t>(crypto::DnssecAlgorithm::kSimHmacSha256);
  presig.labels = dns::rrsig_label_count(rrset.name);
  presig.original_ttl = rrset.ttl;
  presig.expiration = expiration;
  presig.inception = config.inception;
  presig.key_tag = key_record.key_tag();
  presig.signer = zone.apex();

  const auto data = dns::build_signed_data(presig, rrset);
  const auto signature =
      key.sign(std::span<const std::uint8_t>(data.data(), data.size()));
  presig.signature.assign(signature.begin(), signature.end());

  return ResourceRecord::make(rrset.name, RrType::kRrsig, rrset.ttl, presig);
}

/// Type bitmap for the NSEC/NSEC3 record at a node.
dns::TypeBitmap node_bitmap(const Zone& zone, const Name& name,
                            const ZoneNode& node, DenialMode denial,
                            bool will_be_signed) {
  dns::TypeBitmap bitmap;
  const bool delegation = is_delegation(zone, name, node);
  for (const auto& [type, set] : node.rrsets) {
    if (delegation && type != RrType::kNs && type != RrType::kDs) continue;
    bitmap.insert(type);
  }
  // RRSIG appears only where signed data lives: authoritative nodes with
  // records, or delegations that carry a (signed) DS.
  const bool has_signed_data =
      delegation ? node.has(RrType::kDs) : !node.empty();
  if (will_be_signed && has_signed_data) bitmap.insert(RrType::kRrsig);
  if (denial == DenialMode::kNsec && !node.empty())
    bitmap.insert(RrType::kNsec);
  return bitmap;
}

}  // namespace

dns::DnskeyRdata derive_dnskey(const std::string& seed, bool ksk) {
  const auto key = sim_key(seed, ksk);
  DnskeyRdata record;
  record.flags = DnskeyRdata::kFlagZoneKey;
  if (ksk) record.flags |= DnskeyRdata::kFlagSep;
  record.protocol = 3;
  record.algorithm =
      static_cast<std::uint8_t>(crypto::DnssecAlgorithm::kSimHmacSha256);
  record.public_key.assign(key.public_key().begin(), key.public_key().end());
  return record;
}

SigningResult sign_zone(Zone& zone, const SignerConfig& config) {
  const std::string seed =
      config.key_seed.empty() ? zone.apex().to_string() : config.key_seed;

  SigningResult result;
  result.ksk = derive_dnskey(seed, /*ksk=*/true);
  result.zsk = derive_dnskey(seed, /*ksk=*/false);
  result.ds = dns::make_ds(zone.apex(), result.ksk);

  if (config.denial == DenialMode::kUnsigned) return result;

  const crypto::SimKey ksk_key = sim_key(seed, true);
  const crypto::SimKey zsk_key = sim_key(seed, false);

  // 1. Publish the DNSKEY RRset (and NSEC3PARAM for NSEC3 zones).
  zone.add(ResourceRecord::make(zone.apex(), RrType::kDnskey,
                                config.dnskey_ttl, result.ksk));
  zone.add(ResourceRecord::make(zone.apex(), RrType::kDnskey,
                                config.dnskey_ttl, result.zsk));
  if (config.denial == DenialMode::kNsec3) {
    dns::Nsec3ParamRdata param;
    param.hash_algorithm = 1;
    param.flags = 0;  // flags are always 0 in NSEC3PARAM
    param.iterations = config.nsec3.iterations;
    param.salt = config.nsec3.salt;
    zone.add(ResourceRecord::make(zone.apex(), RrType::kNsec3Param, 0, param));
  }

  // 2. Collect chain candidates before NSEC records mutate the tree.
  struct Candidate {
    Name name;
    bool insecure_delegation = false;
  };
  std::vector<Candidate> candidates;
  zone.for_each_node([&](const Name& name, const ZoneNode& node) {
    if (is_occluded(zone, name)) return;  // glue below zone cuts
    candidates.push_back(
        Candidate{name, is_insecure_delegation(zone, name, node)});
  });

  // 3. Build the denial chain.
  if (config.denial == DenialMode::kNsec) {
    // NSEC at every name that owns data or is a delegation; empty
    // non-terminals own no NSEC (RFC 4035 — unlike NSEC3, where ENTs get
    // their own records). Linked in canonical order, wrapping to the apex.
    std::vector<Candidate> nsec_names;
    for (const Candidate& candidate : candidates)
      if (!zone.node(candidate.name)->empty()) nsec_names.push_back(candidate);
    for (std::size_t i = 0; i < nsec_names.size(); ++i) {
      const Name& name = nsec_names[i].name;
      const Name& next = nsec_names[(i + 1) % nsec_names.size()].name;
      const ZoneNode* node = zone.node(name);
      dns::NsecRdata nsec;
      nsec.next_domain = next;
      nsec.types = node_bitmap(zone, name, *node, DenialMode::kNsec,
                               /*will_be_signed=*/true);
      zone.add(ResourceRecord::make(name, RrType::kNsec, config.nsec_ttl,
                                    nsec));
    }
  } else {
    // NSEC3: hash every candidate (minus opted-out insecure delegations),
    // sort by hash, link circularly. The whole chain build — batch hashing
    // plus per-entry RRSIGs — is memoised (zone/chain_memo.hpp): a lazy
    // re-materialisation of an evicted zone replays the cached chain and
    // credits the same *logical* hash cost without redoing the work.
    const std::uint32_t nsec3_expiration =
        config.nsec3_rrsig_expiration.value_or(config.expiration);
    const std::span<const std::uint8_t> salt_span(config.nsec3.salt.data(),
                                                  config.nsec3.salt.size());

    std::vector<Name> chain_names;
    std::vector<dns::TypeBitmap> chain_bitmaps;
    chain_names.reserve(candidates.size());
    chain_bitmaps.reserve(candidates.size());
    for (const Candidate& candidate : candidates) {
      if (config.nsec3.opt_out && candidate.insecure_delegation) continue;
      const ZoneNode* node = zone.node(candidate.name);
      chain_names.push_back(candidate.name);
      chain_bitmaps.push_back(node_bitmap(zone, candidate.name, *node,
                                          DenialMode::kNsec3,
                                          /*will_be_signed=*/true));
    }

    // Exact (collision-free) memo key over every input the finished chain
    // depends on: identity + parameters + validity window + key seed, then
    // each member name with its type bitmap.
    Nsec3ChainMemo& memo = Nsec3ChainMemo::instance();
    std::string memo_key;
    bool chain_done = false;
    if (memo.enabled()) {
      ChainKeyBuilder kb;
      kb.add_name(zone.apex());
      kb.add_string(seed);
      kb.add_u16(config.nsec3.iterations);
      kb.add_bytes(salt_span);
      kb.add_bool(config.nsec3.opt_out);
      kb.add_u32(config.nsec_ttl);
      kb.add_u32(config.inception);
      kb.add_u32(nsec3_expiration);
      kb.add_u64(chain_names.size());
      for (std::size_t i = 0; i < chain_names.size(); ++i) {
        kb.add_name(chain_names[i]);
        const auto bitmap = chain_bitmaps[i].encode();
        kb.add_bytes(
            std::span<const std::uint8_t>(bitmap.data(), bitmap.size()));
      }
      memo_key = std::move(kb).take();
      if (const auto* cached = memo.lookup(memo_key)) {
        crypto::CostMeter::add_sha1_blocks(cached->cost.sha1_blocks);
        crypto::CostMeter::add_sha2_blocks(cached->cost.sha2_blocks);
        crypto::CostMeter::add_nsec3_hashes(cached->cost.nsec3_hashes);
        zone.set_nsec3_chain(std::vector<Nsec3ChainEntry>(cached->entries),
                             config.nsec3);
        chain_done = true;
      }
    }

    if (!chain_done) {
      const std::uint64_t sha1_before = crypto::CostMeter::sha1_blocks();
      const std::uint64_t sha2_before = crypto::CostMeter::sha2_blocks();
      const std::uint64_t nsec3_before = crypto::CostMeter::nsec3_hashes();

      // Batch-hash the whole chain: the multi-buffer kernel fills SIMD
      // lanes with independent names (dns::nsec3_hash_names).
      const auto hashes = dns::nsec3_hash_names(
          std::span<const Name>(chain_names.data(), chain_names.size()),
          salt_span, config.nsec3.iterations);

      std::vector<Nsec3ChainEntry> entries;
      entries.reserve(chain_names.size());
      for (std::size_t i = 0; i < chain_names.size(); ++i) {
        Nsec3ChainEntry entry;
        entry.hash = hashes[i];
        entry.owner =
            zone.apex().prepended(dns::base32hex_encode(std::span<const std::uint8_t>(
                entry.hash.data(), entry.hash.size()))).value_or(zone.apex());
        entry.ttl = config.nsec_ttl;
        entry.rdata.hash_algorithm = 1;
        entry.rdata.flags =
            config.nsec3.opt_out ? dns::Nsec3Rdata::kFlagOptOut : 0;
        entry.rdata.iterations = config.nsec3.iterations;
        entry.rdata.salt = config.nsec3.salt;
        entry.rdata.types = std::move(chain_bitmaps[i]);
        entries.push_back(std::move(entry));
      }
      std::sort(entries.begin(), entries.end(),
                [](const Nsec3ChainEntry& a, const Nsec3ChainEntry& b) {
                  return std::lexicographical_compare(a.hash.begin(),
                                                      a.hash.end(),
                                                      b.hash.begin(),
                                                      b.hash.end());
                });
      for (std::size_t i = 0; i < entries.size(); ++i)
        entries[i].rdata.next_hash = entries[(i + 1) % entries.size()].hash;

      // Sign each NSEC3 RRset.
      for (Nsec3ChainEntry& entry : entries) {
        RrSet set;
        set.name = entry.owner;
        set.type = RrType::kNsec3;
        set.ttl = entry.ttl;
        set.rdatas = {entry.rdata.encode()};
        entry.rrsigs.push_back(make_rrsig(zone, set, config, zsk_key,
                                          result.zsk, nsec3_expiration));
      }

      if (memo.enabled()) {
        const ChainCost cost{
            crypto::CostMeter::sha1_blocks() - sha1_before,
            crypto::CostMeter::sha2_blocks() - sha2_before,
            crypto::CostMeter::nsec3_hashes() - nsec3_before};
        memo.insert(std::move(memo_key),
                    std::vector<Nsec3ChainEntry>(entries), cost);
      }
      zone.set_nsec3_chain(std::move(entries), config.nsec3);
    }
  }

  // 4. Sign every authoritative RRset. DNSKEY is signed by the KSK,
  //    everything else by the ZSK; delegation NS/glue stay unsigned.
  std::vector<ResourceRecord> rrsigs;
  zone.for_each_node([&](const Name& name, const ZoneNode& node) {
    if (is_occluded(zone, name)) return;
    const bool delegation = is_delegation(zone, name, node);
    for (const auto& [type, set] : node.rrsets) {
      if (type == RrType::kRrsig) continue;
      if (delegation && type != RrType::kDs) continue;  // NS+glue unsigned
      if (type == RrType::kDnskey) {
        rrsigs.push_back(make_rrsig(zone, set, config, ksk_key, result.ksk,
                                    config.expiration));
      } else {
        rrsigs.push_back(make_rrsig(zone, set, config, zsk_key, result.zsk,
                                    config.expiration));
      }
    }
  });
  for (auto& rrsig : rrsigs) zone.add(std::move(rrsig));

  return result;
}

}  // namespace zh::zone
