// Presentation-format zone I/O: parses the record syntax Zone::to_text /
// ResourceRecord::to_string emit (one record per line, RFC 1035-style),
// reconstructing signed zones including their NSEC3 chains. Lets operators
// round-trip zones through text — and gives the tests golden-file checks.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "dns/rr.hpp"
#include "zone/zone.hpp"

namespace zh::zone {

/// Parses one record line ("owner ttl IN TYPE rdata..."). On failure
/// returns nullopt and, if given, fills `error`.
std::optional<dns::ResourceRecord> parse_record_line(
    std::string_view line, std::string* error = nullptr);

/// Parses a whole zone dump into a Zone anchored at `apex`. Lines that are
/// empty or start with ';' are skipped. NSEC3 records (hash-label owners)
/// and their RRSIGs are routed into the zone's NSEC3 chain rather than the
/// name tree, mirroring how the signer stores them.
std::optional<Zone> parse_zone_text(std::string_view text,
                                    const dns::Name& apex,
                                    std::string* error = nullptr);

}  // namespace zh::zone
