// Memoisation of signed NSEC3 chains.
//
// Operator-scale hosting re-materialises evicted zones through the lazy LRU
// (server/auth_server.hpp), and every re-materialisation used to re-hash and
// re-sign the whole NSEC3 chain from scratch. The deterministic testbed
// rebuilds *exactly* the same chain each time — same apex, same key seed,
// same NSEC3 parameters, same candidate names and type bitmaps — so the
// rebuild is pure recomputation. This cache keys a finished chain on every
// input it depends on and replays it on the next rebuild.
//
// The determinism contract (docs/DETERMINISM.md): a memo hit credits the
// *logical* hash cost the rebuild would have ticked (CostMeter sha1/sha2/
// nsec3 counters — the currency of amplification figures and simtime service
// costs) while skipping the physical work, so campaign artefacts are
// byte-identical with the memo on, off (ZH_CHAIN_MEMO=0), or at any
// capacity. Only CostMeter::sha1_physical_blocks() reveals the saving.
//
// The memo is thread-local: campaign workers are one-thread-one-Internet,
// so per-thread caches keep hit/miss sequences (and the server.chain_memo_hit
// metric) deterministic for a given (seed, jobs) pair.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "zone/zone.hpp"

namespace zh::zone {

/// Logical hash work a chain build performed — replayed into CostMeter on a
/// memo hit so accounting is invariant under memoisation.
struct ChainCost {
  std::uint64_t sha1_blocks = 0;
  std::uint64_t sha2_blocks = 0;
  std::uint64_t nsec3_hashes = 0;
};

/// Monotonic per-thread memo telemetry.
struct ChainMemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
};

/// Serialises memo-key fields as length-prefixed byte strings. Keys are the
/// *exact* inputs — no hashing — so distinct chains can never collide; a
/// wrong-chain replay is structurally impossible, not just improbable.
class ChainKeyBuilder {
 public:
  void add_bytes(std::span<const std::uint8_t> bytes) {
    add_length(bytes.size());
    buffer_.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  }
  void add_string(std::string_view s) {
    add_length(s.size());
    buffer_.append(s);
  }
  /// Same bytes as add_bytes(name.to_canonical_wire()) — the length prefix
  /// is the name's wire length — without the temporary vector.
  void add_name(const dns::Name& name) {
    add_length(name.wire_length());
    name.append_canonical_to(buffer_);
  }
  void add_u64(std::uint64_t v) {
    char field[8];
    for (int i = 7; i >= 0; --i) {
      field[i] = static_cast<char>(v & 0xff);
      v >>= 8;
    }
    buffer_.append(field, sizeof field);
  }
  void add_u32(std::uint32_t v) { add_u64(v); }
  void add_u16(std::uint16_t v) { add_u64(v); }
  void add_bool(bool v) { add_u64(v ? 1 : 0); }

  std::string take() && { return std::move(buffer_); }

 private:
  void add_length(std::size_t n) { add_u64(static_cast<std::uint64_t>(n)); }

  std::string buffer_;
};

/// Thread-local LRU cache of signed NSEC3 chains, keyed by the exact chain
/// inputs (see sign_zone). Capacity 0 disables the memo entirely.
class Nsec3ChainMemo {
 public:
  /// A finished chain plus the logical hash cost of building it.
  struct CachedChain {
    std::vector<Nsec3ChainEntry> entries;
    ChainCost cost;
  };

  /// Built-in default capacity when neither ZH_CHAIN_MEMO nor
  /// set_default_capacity() says otherwise.
  static constexpr std::size_t kDefaultCapacity = 4096;
  /// Ceiling for reserve_default_for() auto-sizing — keeps an accidental
  /// multi-million-domain spec from pinning every chain in memory.
  static constexpr std::size_t kMaxAutoCapacity = 65536;

  /// The calling thread's memo. First use sizes it to default_capacity().
  static Nsec3ChainMemo& instance();

  /// Process-wide default capacity for new per-thread memos. First call
  /// reads ZH_CHAIN_MEMO (0 disables; garbage gets a stderr diagnostic and
  /// falls back to kDefaultCapacity).
  static std::size_t default_capacity();
  /// Pins the default (bench --chain-memo flag); also resizes the calling
  /// thread's memo. Later reserve_default_for() calls become no-ops.
  static void set_default_capacity(std::size_t capacity);
  /// Raises the default towards `zones` (capped at kMaxAutoCapacity) so an
  /// ecosystem install can size the memo to its domain population. No-op if
  /// the capacity was pinned via ZH_CHAIN_MEMO or set_default_capacity().
  static void reserve_default_for(std::size_t zones);

  std::size_t capacity() const noexcept { return capacity_; }
  bool enabled() const noexcept { return capacity_ > 0; }
  std::size_t size() const noexcept { return map_.size(); }
  const ChainMemoStats& stats() const noexcept { return stats_; }

  /// Resizes this thread's memo, evicting LRU entries down to the new
  /// capacity; 0 drops everything and disables.
  void set_capacity(std::size_t capacity);

  /// Drops all cached chains (stats are monotonic and survive).
  void clear();

  /// Cache probe. A hit refreshes LRU order and returns a pointer valid
  /// until the next insert()/set_capacity()/clear() on this thread — callers
  /// copy out immediately. Returns nullptr (ticking the miss counter) on a
  /// miss, and nullptr without stats when disabled.
  const CachedChain* lookup(const std::string& key);

  /// Stores a freshly built chain; evicts the LRU entry beyond capacity.
  /// No-op when disabled.
  void insert(std::string key, std::vector<Nsec3ChainEntry> entries,
              ChainCost cost);

 private:
  struct Slot {
    CachedChain chain;
    std::list<std::string>::iterator lru;
  };

  std::size_t capacity_ = kDefaultCapacity;
  ChainMemoStats stats_;
  std::list<std::string> lru_;  // most-recently-used first
  std::unordered_map<std::string, Slot> map_;
};

}  // namespace zh::zone
