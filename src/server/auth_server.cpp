#include "server/auth_server.hpp"

#include <algorithm>

#include "crypto/sha1_mb.hpp"
#include "dns/dnssec.hpp"
#include "zone/chain_memo.hpp"

namespace zh::server {
namespace {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::ResourceRecord;
using dns::RrSet;
using dns::RrType;
using zone::Zone;
using zone::ZoneNode;

/// Appends the RRSIGs at `node` covering `type`, optionally rewriting the
/// owner (wildcard synthesis keeps the wildcard's signature but the query
/// name as owner, RFC 4035 §3.1.3.2).
void append_rrsigs(std::vector<ResourceRecord>& section, const ZoneNode& node,
                   const Name& owner, RrType covered,
                   const Name* owner_override = nullptr) {
  const RrSet* sigs = node.find(RrType::kRrsig);
  if (!sigs) return;
  for (const auto& rdata : sigs->rdatas) {
    const auto sig = dns::RrsigRdata::decode(
        std::span<const std::uint8_t>(rdata.data(), rdata.size()));
    if (!sig || sig->covered() != covered) continue;
    section.push_back(ResourceRecord{owner_override ? *owner_override : owner,
                                     RrType::kRrsig, dns::RrClass::kIn,
                                     sigs->ttl, rdata});
  }
}

/// Appends a full RRset (+signatures when dnssec).
void append_rrset(std::vector<ResourceRecord>& section, const ZoneNode& node,
                  const RrSet& set, bool dnssec) {
  for (const auto& rr : set.to_records()) section.push_back(rr);
  if (dnssec) append_rrsigs(section, node, set.name, set.type);
}

/// State for assembling NSEC3 proofs without duplicate records.
class Nsec3ProofWriter {
 public:
  Nsec3ProofWriter(const Zone& zone, Message& response)
      : zone_(zone), response_(response) {
    if (zone_.nsec3_params_used()) params_ = *zone_.nsec3_params_used();
  }

  bool enabled() const { return zone_.nsec3_params_used().has_value(); }

  /// Adds the NSEC3 matching `name` (existence proof); no-op if absent.
  void add_matching(const Name& name) {
    const auto hash = dns::nsec3_hash_name(
        name,
        std::span<const std::uint8_t>(params_.salt.data(),
                                      params_.salt.size()),
        params_.iterations);
    emit(zone_.nsec3_matching(
        std::span<const std::uint8_t>(hash.data(), hash.size())));
  }

  /// Adds the NSEC3 covering `name` (absence proof); no-op if none covers.
  void add_covering(const Name& name) {
    const auto hash = dns::nsec3_hash_name(
        name,
        std::span<const std::uint8_t>(params_.salt.data(),
                                      params_.salt.size()),
        params_.iterations);
    emit(zone_.nsec3_covering(
        std::span<const std::uint8_t>(hash.data(), hash.size())));
  }

 private:
  void emit(const zone::Nsec3ChainEntry* entry) {
    if (!entry) return;
    for (const auto& emitted : emitted_)
      if (emitted == entry) return;
    emitted_.push_back(entry);
    response_.authorities.push_back(entry->to_record());
    for (const auto& sig : entry->rrsigs) response_.authorities.push_back(sig);
  }

  const Zone& zone_;
  Message& response_;
  zone::Nsec3Params params_;
  std::vector<const zone::Nsec3ChainEntry*> emitted_;
};

/// Finds the nearest name at-or-before `name` (canonical order, wrapping)
/// that owns an NSEC record, and appends that NSEC + signature.
void append_covering_nsec(const Zone& zone, const Name& name,
                          Message& response) {
  const auto names = zone.names_in_order();
  if (names.empty()) return;
  // Index of last name <= `name`.
  std::size_t index = names.size() - 1;  // default: wrap to the end
  const auto it = std::upper_bound(
      names.begin(), names.end(), name,
      [](const Name& a, const Name& b) {
        return Name::canonical_compare(a, b) < 0;
      });
  if (it != names.begin())
    index = static_cast<std::size_t>(it - names.begin()) - 1;
  for (std::size_t step = 0; step < names.size(); ++step) {
    const std::size_t i = (index + names.size() - step) % names.size();
    const ZoneNode* node = zone.node(names[i]);
    const RrSet* nsec = node ? node->find(RrType::kNsec) : nullptr;
    if (nsec) {
      // Avoid duplicates.
      const auto rr = nsec->to_records().front();
      for (const auto& existing : response.authorities)
        if (existing == rr) return;
      append_rrset(response.authorities, *node, *nsec, /*dnssec=*/true);
      return;
    }
  }
}

/// Adds the SOA (+RRSIG) for negative answers.
void append_soa(const Zone& zone, bool dnssec, Message& response) {
  const ZoneNode* apex = zone.node(zone.apex());
  const RrSet* soa = apex ? apex->find(RrType::kSoa) : nullptr;
  if (soa) append_rrset(response.authorities, *apex, *soa, dnssec);
}

}  // namespace

void AuthoritativeServer::add_zone(std::shared_ptr<const Zone> zone) {
  zones_[zone->apex()] = std::move(zone);
}

void AuthoritativeServer::set_lazy_provider(ApexLocator locator,
                                            ZoneProvider provider,
                                            std::size_t cache_capacity) {
  locator_ = std::move(locator);
  provider_ = std::move(provider);
  cache_capacity_ = cache_capacity;
}

void AuthoritativeServer::set_lazy_cache_adaptive(
    std::size_t max_capacity, std::uint64_t resign_threshold) {
  max_cache_capacity_ = max_capacity;
  resign_threshold_ = resign_threshold > 0 ? resign_threshold : 1;
  resigns_at_last_growth_ = lazy_resigns_;
}

void AuthoritativeServer::set_tracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer != nullptr) {
    trace::Metrics& metrics = tracer->metrics();
    hit_metric_ = metrics.counter("server.zone_cache_hit");
    materialise_metric_ = metrics.counter("server.zone_materialise");
    evict_metric_ = metrics.counter("server.zone_evict");
    resign_metric_ = metrics.counter("server.zone_resign");
    grow_metric_ = metrics.counter("server.zone_cache_grow");
    chain_memo_metric_ = metrics.counter("server.chain_memo_hit");
    sha1_batch_metric_ = metrics.counter("crypto.sha1_batch");
  } else {
    hit_metric_ = nullptr;
    materialise_metric_ = nullptr;
    evict_metric_ = nullptr;
    resign_metric_ = nullptr;
    grow_metric_ = nullptr;
    chain_memo_metric_ = nullptr;
    sha1_batch_metric_ = nullptr;
  }
}

std::shared_ptr<const Zone> AuthoritativeServer::lazy_zone(
    const Name& apex) const {
  const auto hit = cache_.find(apex);
  if (hit != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, hit->second.second);
    ++lazy_hits_;
    if (hit_metric_ != nullptr) ++*hit_metric_;
    return hit->second.first;
  }
  trace::Span materialise_span;
  if (tracer_ != nullptr && tracer_->enabled())
    materialise_span = tracer_->span("server", "zone.materialise",
                                     apex.canonical().to_string());
  // The chain memo and the batch kernel meter are thread-local; deltas
  // around the provider call attribute their activity to this server.
  const std::uint64_t memo_hits_before =
      zone::Nsec3ChainMemo::instance().stats().hits;
  const std::uint64_t sha1_batches_before = crypto::Sha1BatchMeter::batches();
  auto zone = provider_(apex);
  if (chain_memo_metric_ != nullptr)
    *chain_memo_metric_ +=
        zone::Nsec3ChainMemo::instance().stats().hits - memo_hits_before;
  if (sha1_batch_metric_ != nullptr)
    *sha1_batch_metric_ +=
        crypto::Sha1BatchMeter::batches() - sha1_batches_before;
  if (!zone) return nullptr;
  ++lazy_materialisations_;
  if (materialise_metric_ != nullptr) ++*materialise_metric_;
  if (evicted_.count(apex) > 0) {
    // This zone was materialised before and evicted since: the provider
    // just re-signed it from scratch.
    ++lazy_resigns_;
    if (resign_metric_ != nullptr) ++*resign_metric_;
    // Adaptive sizing: re-signs mean the working set outgrew the cache, and
    // each one re-hashes the whole zone — far costlier than the memory a
    // doubling spends. Grow before the insert below so the revived zone is
    // not immediately re-evicted.
    if (max_cache_capacity_ > cache_capacity_ &&
        lazy_resigns_ - resigns_at_last_growth_ >= resign_threshold_) {
      cache_capacity_ = std::min(max_cache_capacity_, cache_capacity_ * 2);
      resigns_at_last_growth_ = lazy_resigns_;
      ++lazy_growths_;
      if (grow_metric_ != nullptr) ++*grow_metric_;
      if (tracer_ != nullptr && tracer_->enabled())
        tracer_->instant("server", "zone.cache_grow",
                         std::to_string(cache_capacity_));
    }
  }
  lru_.push_front(apex);
  cache_.emplace(apex, std::make_pair(zone, lru_.begin()));
  if (cache_.size() > cache_capacity_) {
    const Name victim = lru_.back();
    evicted_.insert(victim);
    cache_.erase(victim);
    lru_.pop_back();
    ++lazy_evictions_;
    if (evict_metric_ != nullptr) ++*evict_metric_;
    if (tracer_ != nullptr && tracer_->enabled())
      tracer_->instant("server", "zone.evict", victim.canonical().to_string());
  }
  return zone;
}

std::shared_ptr<const Zone> AuthoritativeServer::zone_for(
    const Name& qname, dns::RrType qtype) const {
  // Deepest explicitly hosted zone containing qname. For DS queries the
  // *parent* side of the cut is authoritative, so the search skips a zone
  // whose apex equals qname when a shallower zone is also hosted.
  std::shared_ptr<const Zone> best;
  for (std::size_t labels = qname.label_count() + 1; labels-- > 0;) {
    const Name candidate = qname.ancestor_with_labels(labels);
    if (qtype == RrType::kDs && candidate.equals(qname) && labels > 0) {
      // Prefer the parent for DS unless nothing shallower is hosted.
      const auto it = zones_.find(candidate);
      if (it != zones_.end() && !best) best = it->second;
      continue;
    }
    const auto it = zones_.find(candidate);
    if (it != zones_.end()) return it->second;
    if (locator_) {
      // Lazy zones are leaf zones (registered domains); the locator decides.
      const auto apex = locator_(qname);
      if (apex && apex->equals(candidate)) {
        auto zone = lazy_zone(*apex);
        if (zone) return zone;
      }
    }
  }
  return best;
}

Message AuthoritativeServer::handle(const Message& query,
                                    const simnet::IpAddress& /*source*/) const {
  Message response = Message::make_response(query);
  response.header.ra = false;

  if (query.questions.empty()) {
    response.header.rcode = Rcode::kFormErr;
    return response;
  }
  if (query.header.opcode != dns::Opcode::kQuery) {
    response.header.rcode = Rcode::kNotImp;
    return response;
  }

  const dns::Question& q = query.questions.front();
  const bool dnssec = query.edns && query.edns->do_bit;

  const auto zone = zone_for(q.name, q.type);
  if (!zone) {
    response.header.rcode = Rcode::kRefused;
    return response;
  }
  response.header.aa = true;

  // --- Referral? ---
  const auto cut = zone->delegation_for(q.name);
  if (cut && !(cut->equals(q.name) && q.type == RrType::kDs)) {
    response.header.aa = false;
    const ZoneNode* cut_node = zone->node(*cut);
    const RrSet* ns = cut_node->find(RrType::kNs);
    append_rrset(response.authorities, *cut_node, *ns, /*dnssec=*/false);
    if (dnssec) {
      if (const RrSet* ds = cut_node->find(RrType::kDs)) {
        append_rrset(response.authorities, *cut_node, *ds, true);
      } else if (zone->nsec3_params_used()) {
        // Proof of no DS: matching NSEC3 for the cut, or (opt-out) the
        // covering NSEC3 plus closest-provable-encloser match.
        Nsec3ProofWriter proof(*zone, response);
        proof.add_matching(*cut);
        proof.add_covering(*cut);
        proof.add_matching(zone->closest_encloser(*cut));
      } else if (const RrSet* nsec = cut_node->find(RrType::kNsec)) {
        append_rrset(response.authorities, *cut_node, *nsec, true);
      }
    }
    // Glue.
    for (const auto& rdata : ns->rdatas) {
      const auto nsd = dns::NsRdata::decode(
          std::span<const std::uint8_t>(rdata.data(), rdata.size()));
      if (!nsd || !nsd->nsdname.is_subdomain_of(zone->apex())) continue;
      const ZoneNode* glue = zone->node(nsd->nsdname);
      if (!glue) continue;
      if (const RrSet* a = glue->find(RrType::kA))
        append_rrset(response.additionals, *glue, *a, false);
      if (const RrSet* aaaa = glue->find(RrType::kAaaa))
        append_rrset(response.additionals, *glue, *aaaa, false);
    }
    return response;
  }

  const ZoneNode* node = zone->node(q.name);
  if (node) {
    // CNAME redirection (when not asking for the CNAME itself).
    if (q.type != RrType::kCname && node->has(RrType::kCname)) {
      append_rrset(response.answers, *node, *node->find(RrType::kCname),
                   dnssec);
      return response;
    }
    if (const RrSet* set = node->find(q.type)) {
      append_rrset(response.answers, *node, *set, dnssec);
      return response;
    }
    // NODATA.
    append_soa(*zone, dnssec, response);
    if (dnssec) {
      if (zone->nsec3_params_used()) {
        Nsec3ProofWriter proof(*zone, response);
        proof.add_matching(q.name);
      } else if (const RrSet* nsec = node->find(RrType::kNsec)) {
        append_rrset(response.authorities, *node, *nsec, true);
      } else {
        append_covering_nsec(*zone, q.name, response);  // NODATA at an ENT
      }
    }
    return response;
  }

  // Name does not exist: wildcard or NXDOMAIN.
  const Name ce = zone->closest_encloser(q.name);
  const Name next_closer = q.name.ancestor_with_labels(ce.label_count() + 1);
  const Name wildcard = ce.wildcard_child();
  const ZoneNode* wnode = zone->node(wildcard);

  if (wnode && wnode->find(q.type)) {
    // Wildcard expansion (RFC 4035 §3.1.3.3, RFC 5155 §7.2.6).
    const RrSet* set = wnode->find(q.type);
    for (auto rr : set->to_records()) {
      rr.name = q.name;
      response.answers.push_back(std::move(rr));
    }
    if (dnssec) {
      append_rrsigs(response.answers, *wnode, wildcard, q.type, &q.name);
      if (zone->nsec3_params_used()) {
        Nsec3ProofWriter proof(*zone, response);
        proof.add_covering(next_closer);
      } else {
        append_covering_nsec(*zone, q.name, response);
      }
    }
    return response;
  }

  if (wnode) {
    // Wildcard exists but lacks the type: wildcard NODATA (RFC 5155 §7.2.5).
    append_soa(*zone, dnssec, response);
    if (dnssec) {
      if (zone->nsec3_params_used()) {
        Nsec3ProofWriter proof(*zone, response);
        proof.add_matching(ce);
        proof.add_covering(next_closer);
        proof.add_matching(wildcard);
      } else {
        append_covering_nsec(*zone, q.name, response);
        if (const RrSet* nsec = wnode->find(RrType::kNsec))
          append_rrset(response.authorities, *wnode, *nsec, true);
      }
    }
    return response;
  }

  // NXDOMAIN with closest-encloser proof (RFC 5155 §7.2.2).
  response.header.rcode = Rcode::kNxDomain;
  append_soa(*zone, dnssec, response);
  if (dnssec) {
    if (zone->nsec3_params_used()) {
      Nsec3ProofWriter proof(*zone, response);
      proof.add_matching(ce);
      proof.add_covering(next_closer);
      proof.add_covering(wildcard);
    } else {
      append_covering_nsec(*zone, q.name, response);
      append_covering_nsec(*zone, wildcard, response);
    }
  }
  return response;
}

}  // namespace zh::server
