// Authoritative name server: answers queries over its hosted zones with
// full DNSSEC semantics — positive answers with RRSIGs, wildcard synthesis,
// referrals, and NSEC/NSEC3 denial proofs per RFC 4035 / RFC 5155 §7.2.
//
// Operator-scale hosting (Squarespace serving 6.1 M domains in Table 2) is
// supported through a lazy zone provider: zones are materialised on demand
// and LRU-cached, so the synthetic ecosystem never holds 300 K signed zones
// in memory at once.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "dns/message.hpp"
#include "simnet/address.hpp"
#include "trace/trace.hpp"
#include "zone/zone.hpp"

namespace zh::server {

/// Resolves an apex name to a (signed, ready-to-serve) zone; nullptr if this
/// provider does not host it.
using ZoneProvider =
    std::function<std::shared_ptr<const zone::Zone>(const dns::Name& apex)>;

/// Maps a query name to the apex of the deepest zone this provider hosts
/// containing it; nullopt if none.
using ApexLocator =
    std::function<std::optional<dns::Name>(const dns::Name& qname)>;

class AuthoritativeServer {
 public:
  explicit AuthoritativeServer(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  /// Hosts a fully built zone.
  void add_zone(std::shared_ptr<const zone::Zone> zone);

  /// Installs lazy hosting: `locator` decides which apex (if any) serves a
  /// qname, `provider` materialises the zone. Used for operator-scale
  /// hosting. Explicitly added zones take precedence.
  void set_lazy_provider(ApexLocator locator, ZoneProvider provider,
                         std::size_t cache_capacity = 1024);

  /// Lets the LRU size itself from its own pressure counters (the ROADMAP
  /// "measure, then size by spec" item): whenever `resign_threshold`
  /// re-signs accumulate since the last growth, the capacity doubles, up
  /// to `max_capacity` — each growth ticks the server.zone_cache_grow
  /// metric. A population larger than the initial capacity thus converges
  /// in O(log max/initial) doublings to a cache that stops re-signing,
  /// instead of thrashing forever on a hardcoded size. Pass max_capacity
  /// <= the current capacity to turn adaptation off.
  void set_lazy_cache_adaptive(std::size_t max_capacity,
                               std::uint64_t resign_threshold = 1);

  /// Answers one query (the simnet node handler body).
  dns::Message handle(const dns::Message& query,
                      const simnet::IpAddress& source) const;

  /// Number of zones materialised through the lazy provider (cache misses).
  std::uint64_t lazy_materialisations() const noexcept {
    return lazy_materialisations_;
  }
  /// Lazy-zone LRU hits (query served from an already-materialised zone).
  std::uint64_t lazy_hits() const noexcept { return lazy_hits_; }
  /// Zones evicted from the lazy LRU under capacity pressure.
  std::uint64_t lazy_evictions() const noexcept { return lazy_evictions_; }
  /// Re-materialisations of previously evicted zones. Each one re-signs the
  /// whole zone — the cost signal behind the ROADMAP "measure, then size by
  /// spec" LRU item.
  std::uint64_t lazy_resigns() const noexcept { return lazy_resigns_; }
  /// Current lazy-LRU capacity (grows under set_lazy_cache_adaptive).
  std::size_t lazy_cache_capacity() const noexcept { return cache_capacity_; }
  /// Capacity doublings performed by the adaptive policy.
  std::uint64_t lazy_cache_growths() const noexcept { return lazy_growths_; }

  /// Attaches a tracer (normally the owning Network's, wired by
  /// testbed::Internet::build): LRU activity ticks the server.zone_*
  /// metrics, and materialisations become spans carrying their signing
  /// cost when event tracing is enabled.
  void set_tracer(trace::Tracer* tracer);

 private:
  std::shared_ptr<const zone::Zone> zone_for(const dns::Name& qname,
                                             dns::RrType qtype) const;
  std::shared_ptr<const zone::Zone> lazy_zone(const dns::Name& apex) const;

  std::string name_;
  std::unordered_map<dns::Name, std::shared_ptr<const zone::Zone>,
                     dns::NameHash>
      zones_;
  ApexLocator locator_;
  ZoneProvider provider_;

  // LRU cache of lazily materialised zones. The capacity is mutable because
  // the adaptive policy grows it from inside the (const) query path.
  mutable std::size_t cache_capacity_ = 1024;
  std::size_t max_cache_capacity_ = 0;  // 0 = adaptation off
  std::uint64_t resign_threshold_ = 1;
  mutable std::uint64_t lazy_growths_ = 0;
  mutable std::uint64_t resigns_at_last_growth_ = 0;
  mutable std::list<dns::Name> lru_;
  mutable std::unordered_map<
      dns::Name,
      std::pair<std::shared_ptr<const zone::Zone>, std::list<dns::Name>::iterator>,
      dns::NameHash>
      cache_;
  mutable std::uint64_t lazy_materialisations_ = 0;
  mutable std::uint64_t lazy_hits_ = 0;
  mutable std::uint64_t lazy_evictions_ = 0;
  mutable std::uint64_t lazy_resigns_ = 0;
  /// Apexes evicted at least once — a later materialisation of one of these
  /// is a re-sign, not a first touch.
  mutable std::unordered_set<dns::Name, dns::NameHash> evicted_;

  trace::Tracer* tracer_ = nullptr;
  trace::Metrics::Counter hit_metric_ = nullptr;
  trace::Metrics::Counter materialise_metric_ = nullptr;
  trace::Metrics::Counter evict_metric_ = nullptr;
  trace::Metrics::Counter resign_metric_ = nullptr;
  trace::Metrics::Counter grow_metric_ = nullptr;
  /// Chain-memo hits and multi-buffer SHA-1 batches attributable to this
  /// server's materialisations (deltas of the thread-local meters around
  /// each provider call).
  trace::Metrics::Counter chain_memo_metric_ = nullptr;
  trace::Metrics::Counter sha1_batch_metric_ = nullptr;
};

}  // namespace zh::server
