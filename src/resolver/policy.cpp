#include "resolver/policy.hpp"

namespace zh::resolver {
namespace {

ResolverProfile software(std::string name, std::uint16_t insecure_limit,
                         bool emit_ede27) {
  ResolverProfile profile;
  profile.name = std::move(name);
  profile.policy.insecure_limit = insecure_limit;
  // EDE support arrived with the CVE-era releases; the 2021 versions
  // returned bare insecure responses — matching the paper's finding that
  // under 18 % of limited responses carry INFO-CODE 27.
  profile.policy.emit_ede27 = emit_ede27;
  // Self-hosted software defaults to a generous resolution budget
  // (BIND's resolver-query-timeout ballpark).
  profile.query_deadline = simtime::Duration::from_seconds(10);
  return profile;
}

/// Anycast services answer fast or not at all — a tight budget.
simtime::Duration public_deadline() { return simtime::Duration::from_seconds(4); }

}  // namespace

ResolverProfile ResolverProfile::bind9_2021() {
  return software("bind9-9.16.16", 150, /*emit_ede27=*/false);
}
ResolverProfile ResolverProfile::bind9_2023() {
  return software("bind9-9.19.19", 50, /*emit_ede27=*/true);
}
ResolverProfile ResolverProfile::unbound() {
  return software("unbound-1.13.2", 150, /*emit_ede27=*/false);
}
ResolverProfile ResolverProfile::unbound_aggressive() {
  // Unbound with `aggressive-nsec: yes` (on by default since 1.16) plus
  // RFC 9520 failure caching — same iteration policy as unbound(), the
  // caches are the only behavioural difference.
  ResolverProfile profile = software("unbound-1.19-aggressive", 150,
                                     /*emit_ede27=*/false);
  profile.aggressive_nsec = true;
  profile.failure_caching = true;
  return profile;
}
ResolverProfile ResolverProfile::knot_2021() {
  return software("knot-resolver-5.3.1", 150, /*emit_ede27=*/false);
}
ResolverProfile ResolverProfile::knot_2023() {
  return software("knot-resolver-5.7", 50, /*emit_ede27=*/true);
}
ResolverProfile ResolverProfile::powerdns_2021() {
  return software("powerdns-recursor-4.5", 150, /*emit_ede27=*/false);
}
ResolverProfile ResolverProfile::powerdns_2023() {
  return software("powerdns-recursor-5.0", 50, /*emit_ede27=*/true);
}

ResolverProfile ResolverProfile::google_public_dns() {
  ResolverProfile profile;
  profile.name = "google-public-dns";
  profile.policy.insecure_limit = 100;
  profile.policy.emit_ede27 = false;
  profile.policy.ede_override = dns::EdeCode::kDnssecIndeterminate;
  profile.query_deadline = public_deadline();
  return profile;
}

ResolverProfile ResolverProfile::cloudflare() {
  ResolverProfile profile;
  profile.name = "cloudflare-1.1.1.1";
  profile.policy.servfail_limit = 150;
  profile.policy.emit_ede27 = true;
  profile.query_deadline = public_deadline();
  return profile;
}

ResolverProfile ResolverProfile::quad9() {
  ResolverProfile profile;
  profile.name = "quad9";
  profile.policy.insecure_limit = 150;
  profile.policy.emit_ede27 = false;
  profile.query_deadline = public_deadline();
  return profile;
}

ResolverProfile ResolverProfile::opendns() {
  ResolverProfile profile;
  profile.name = "cisco-opendns";
  profile.policy.servfail_limit = 150;
  profile.policy.emit_ede27 = false;
  profile.policy.ede_override = dns::EdeCode::kNsecMissing;
  profile.query_deadline = public_deadline();
  return profile;
}

ResolverProfile ResolverProfile::technitium() {
  ResolverProfile profile;
  profile.name = "technitium";
  profile.policy.servfail_limit = 100;
  profile.policy.emit_ede27 = true;
  profile.policy.ede_extra_text = "NSEC3 iterations count exceeds limit";
  profile.query_deadline = public_deadline();
  return profile;
}

ResolverProfile ResolverProfile::strict_zero() {
  ResolverProfile profile;
  profile.name = "strict-zero";
  profile.policy.servfail_limit = 0;
  profile.ra_copies_rd = true;
  return profile;
}

ResolverProfile ResolverProfile::permissive() {
  ResolverProfile profile;
  profile.name = "permissive-validator";
  return profile;  // only the RFC 5155 ceiling applies
}

ResolverProfile ResolverProfile::item7_violator() {
  ResolverProfile profile;
  profile.name = "item7-violator";
  profile.policy.insecure_limit = 150;
  profile.policy.verify_rrsig_before_downgrade = false;
  return profile;
}

ResolverProfile ResolverProfile::item12_gap() {
  ResolverProfile profile;
  profile.name = "item12-gap";
  profile.policy.insecure_limit = 100;
  profile.policy.servfail_limit = 150;
  return profile;
}

ResolverProfile ResolverProfile::non_validating() {
  ResolverProfile profile;
  profile.name = "non-validating";
  profile.validating = false;
  return profile;
}

ResolverProfile ResolverProfile::limit_dropper() {
  ResolverProfile profile;
  profile.name = "limit-dropper";
  profile.policy.servfail_limit = 150;
  // The §5.2 "stop answering" cohort: over-limit queries are dropped,
  // so the prober sees a timeout instead of SERVFAIL.
  profile.drop_on_limit = true;
  profile.query_deadline = public_deadline();
  return profile;
}

}  // namespace zh::resolver
