// Aggressive negative caching (the resolver side of RFC 8198) and
// resolution-failure caching (RFC 9520).
//
// `AggressiveNegCache` keeps *validated* NSEC3 intervals — owner-hash →
// next-hash spans keyed by zone and pinned to that zone's NSEC3 parameters —
// and answers the RFC 8198 question: can NXDOMAIN/NODATA for (qname, qtype)
// be synthesized purely from cached denial evidence, without asking the
// authoritative again? The NSEC3 caveats of RFC 8198 §5.2 are honoured:
// spans whose Opt-Out flag is set never prove NXDOMAIN (an insecure
// delegation may exist inside them — the lookup reports the refusal so
// callers can count the breakage), and delegation-point owners (NS without
// SOA in the type bitmap) are never used to deny names below the cut.
//
// `FailureCache` is the RFC 9520 sibling: transient resolution failures
// (upstream timeouts, deadline expiries) are remembered per (qname, qtype)
// for a bounded TTL with exponential backoff, so repeated queries for a
// broken name are answered from the cache instead of re-running the whole
// failing resolution.
//
// Both are deterministic, capacity-bounded, pure data structures: no clocks
// of their own (callers pass virtual `now`), no randomness, no allocation
// ordering that escapes into results — the same insert/lookup sequence
// always produces the same hits, evictions and stats.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/dnssec.hpp"
#include "dns/message.hpp"
#include "simtime/simtime.hpp"

namespace zh::resolver {

/// The NSEC3 parameter binding of one cached zone (RFC 5155 §7.2: one
/// parameter set per zone snapshot). Pinned by the first validated insert;
/// later evidence with different parameters is rejected as malformed.
struct Nsec3CacheParams {
  std::uint8_t hash_algorithm = 1;  // SHA-1, the only assigned value
  std::uint16_t iterations = 0;
  std::vector<std::uint8_t> salt;

  bool operator==(const Nsec3CacheParams&) const = default;
};

/// One validated NSEC3 span: the owner/next hash pair plus everything a
/// synthesized response needs to carry the original proof records.
struct NegCacheInterval {
  std::vector<std::uint8_t> owner_hash;  // 20 bytes (SHA-1)
  std::vector<std::uint8_t> next_hash;   // 20 bytes
  bool opt_out = false;
  dns::TypeBitmap types;  // the owner's type bitmap (NODATA checks)
  /// The NSEC3 resource record itself and its covering RRSIGs, replayed
  /// into the authority section of synthesized answers.
  dns::ResourceRecord record;
  std::vector<dns::ResourceRecord> rrsigs;
};

struct NegCacheStats {
  std::uint64_t inserted = 0;           // intervals accepted
  std::uint64_t rejected_batches = 0;   // malformed-evidence batches refused
  std::uint64_t evicted = 0;            // intervals dropped by capacity
  std::uint64_t hits = 0;               // lookups that synthesized an answer
  std::uint64_t misses = 0;
  std::uint64_t optout_refusals = 0;    // only cover had Opt-Out set
};

/// Deterministic, capacity-bounded cache of validated NSEC3 intervals.
///
/// Capacity counts intervals across all zones. When an insert pushes the
/// total over capacity, whole zones are evicted in creation (FIFO) order
/// until it fits again — span-level LRU would make hit patterns depend on
/// lookup interleaving, which would break the jobs-invariance of synthesis
/// counters.
class AggressiveNegCache {
 public:
  explicit AggressiveNegCache(std::size_t capacity = 4096);

  /// Inserts one validated response's intervals for `zone`. All-or-nothing:
  /// when any interval is malformed — wrong hash length, parameters that
  /// contradict the zone's pinned binding, an Opt-Out flag disagreeing
  /// within the batch or with the zone, duplicate or mutually contradictory
  /// spans — the whole batch is refused and nothing is cached. Returns
  /// whether the batch was accepted.
  bool insert(const dns::Name& zone, const Nsec3CacheParams& params,
              const std::vector<NegCacheInterval>& intervals);

  /// Outcome of an RFC 8198 synthesis lookup.
  struct Synthesis {
    bool found = false;
    dns::Rcode rcode = dns::Rcode::kNxDomain;
    /// A full proof existed but its only cover carries Opt-Out — RFC 8198
    /// §5.2 forbids using it, so the query must go upstream. Counted so
    /// benches can report the opt-out breakage rate.
    bool opt_out_refusal = false;
    /// The NSEC3 records (+ RRSIGs) the synthesized proof replays.
    std::vector<dns::ResourceRecord> authorities;
  };

  /// Tries to synthesize a negative answer for (qname, qtype) from the
  /// deepest cached zone containing qname. Hashing rides the same
  /// SHA-1-metered `dns::nsec3_hash_name` path validation uses, so the CPU
  /// cost of synthesis is accounted exactly like a closest-encloser search.
  Synthesis lookup(const dns::Name& qname, dns::RrType qtype);

  std::size_t interval_count() const noexcept { return size_; }
  std::size_t zone_count() const noexcept { return zones_.size(); }
  const NegCacheStats& stats() const noexcept { return stats_; }
  void clear();

 private:
  struct ZoneEntry {
    Nsec3CacheParams params;
    bool opt_out = false;  // pinned with the first batch
    /// Sorted by owner hash — covering-span lookups are a map search.
    std::map<std::vector<std::uint8_t>, NegCacheInterval> intervals;
  };

  /// The cached interval covering hash `h` (owner < h < next, chain-wrap
  /// aware), or nullptr. Exact owner matches are not "covering".
  const NegCacheInterval* covering(const ZoneEntry& zone,
                                   const std::vector<std::uint8_t>& h) const;

  void evict_oldest_zone();

  std::size_t capacity_;
  std::size_t size_ = 0;
  std::unordered_map<dns::Name, ZoneEntry, dns::NameHash> zones_;
  std::list<dns::Name> creation_order_;  // front = oldest zone
  NegCacheStats stats_;
};

struct FailureCacheStats {
  std::uint64_t recorded = 0;
  std::uint64_t hits = 0;
  std::uint64_t clears = 0;  // wholesale capacity clears
};

/// RFC 9520 resolution-failure cache: transient failures are served from
/// cache for a bounded TTL, doubling per consecutive failure up to the
/// 5-minute ceiling (§3.2). Virtual time comes from the caller, so with no
/// active time model entries simply never expire — deterministically.
class FailureCache {
 public:
  struct Config {
    /// TTL of a first failure. RFC 9520 §3.2: at least 1 second, at most
    /// 5 minutes — the constructor clamps into that window.
    simtime::Duration base_ttl = simtime::Duration::from_seconds(5);
    simtime::Duration max_ttl = simtime::Duration::from_seconds(300);
    std::size_t capacity = 1024;
  };

  FailureCache();
  explicit FailureCache(Config config);

  /// Records a resolution failure for `key` observed at `now`. Repeated
  /// failures back off: each consecutive record doubles the TTL up to
  /// `max_ttl`. Returns the TTL applied.
  simtime::Duration record(const std::string& key, simtime::Duration now,
                           std::optional<dns::EdeCode> ede = std::nullopt,
                           std::string ede_text = {});

  /// The cached failure for `key` if it is still fresh at `now`.
  struct Hit {
    std::optional<dns::EdeCode> ede;
    std::string ede_text;
  };
  std::optional<Hit> lookup(const std::string& key, simtime::Duration now);

  std::size_t entry_count() const noexcept { return entries_.size(); }
  const FailureCacheStats& stats() const noexcept { return stats_; }
  void clear() { entries_.clear(); }

 private:
  struct Entry {
    simtime::Duration expires;
    simtime::Duration ttl;
    std::uint32_t consecutive = 0;
    std::optional<dns::EdeCode> ede;
    std::string ede_text;
  };

  Config config_;
  std::unordered_map<std::string, Entry> entries_;
  FailureCacheStats stats_;
};

}  // namespace zh::resolver
