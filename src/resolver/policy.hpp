// RFC 9276 resolver-side policy (Table 1, Items 6-12) and the vendor
// profiles the paper documents from changelogs and live probing (§4.2/§5.2):
//
//   BIND9 / Knot / PowerDNS Recursor / Unbound — insecure above 150 (2021),
//     all but Unbound lowered to 50 by end of 2023 (CVE-2023-50868 patches);
//   Google Public DNS — insecure above 100, EDE 5 instead of 27;
//   Quad9 — insecure above 150, no EDE;
//   Cloudflare — SERVFAIL above 150, EDE 27;
//   Cisco OpenDNS — SERVFAIL above 150, EDE 12 instead of 27;
//   Technitium — SERVFAIL above 100 with EDE 27 + EXTRA-TEXT;
//   strict-zero devices — SERVFAIL from 1 additional iteration, and an RA
//     bit simply copied from the query (§5.2 "copy the query content").
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "dns/types.hpp"
#include "simtime/queue.hpp"
#include "simtime/simtime.hpp"

namespace zh::resolver {

/// Iteration-limit policy of one validating resolver.
struct Rfc9276Policy {
  /// RFC 5155 §10.3 ceiling (for the largest key size): every validator
  /// treats anything above this as insecure, independent of RFC 9276.
  static constexpr std::uint16_t kRfc5155Ceiling = 2500;

  /// Item 6: iterations strictly above this yield an *insecure* response
  /// (rcode preserved, AD cleared, NSEC3 proof not required to validate).
  std::optional<std::uint16_t> insecure_limit;

  /// Item 8/9: iterations strictly above this yield SERVFAIL.
  std::optional<std::uint16_t> servfail_limit;

  /// Item 7: verify the RRSIGs over NSEC3 RRsets *before* acting on their
  /// iteration count. Resolvers with `false` exhibit the paper's 0.2 %
  /// non-compliant behaviour (NXDOMAIN for it-2501-expired).
  bool verify_rrsig_before_downgrade = true;

  /// Items 10/11: attach EDE INFO-CODE 27 to limit-triggered responses.
  bool emit_ede27 = false;

  /// Some public resolvers return a different EDE code instead of 27
  /// (Google: 5 DNSSEC Indeterminate; OpenDNS: 12 NSEC Missing).
  std::optional<dns::EdeCode> ede_override;

  /// Technitium-style EXTRA-TEXT accompanying the EDE option.
  std::string ede_extra_text;

  /// Effective thresholds (fall back to the RFC 5155 ceiling).
  std::uint16_t effective_insecure_limit() const noexcept {
    return insecure_limit.value_or(kRfc5155Ceiling);
  }

  bool exceeds_servfail(std::uint16_t iterations) const noexcept {
    return servfail_limit && iterations > *servfail_limit;
  }
  bool exceeds_insecure(std::uint16_t iterations) const noexcept {
    return iterations > effective_insecure_limit();
  }

  /// Item 12: SHOULD set both limits to the same value when both exist.
  /// A gap (insecure < servfail) opens a downgrade-attack window.
  bool has_item12_gap() const noexcept {
    return insecure_limit && servfail_limit &&
           *insecure_limit < *servfail_limit;
  }
};

/// A named resolver behaviour bundle used by the workload generator.
struct ResolverProfile {
  std::string name;
  bool validating = true;
  Rfc9276Policy policy;
  /// Broken-device quirk: RA bit mirrors the query's RD/RA instead of
  /// being asserted (observed on the 418 strict-zero resolvers, §5.2).
  bool ra_copies_rd = false;

  /// Retransmission behaviour for the resolver's own upstream queries.
  /// Only matters once the network injects loss; defaults match zdns.
  simtime::RetryPolicy upstream_retry{};

  /// Wall-clock (virtual) budget per client query: once the projected
  /// time — elapsed plus the service cost of hash work already done —
  /// exceeds it, resolution aborts. Inert while no time model is active,
  /// since the clock then never moves.
  std::optional<simtime::Duration> query_deadline;

  /// Timeout-vs-SERVFAIL vendor split (§5.2 "stop answering"): when set,
  /// an exceeded servfail_limit makes the resolver *drop* the query
  /// instead of answering SERVFAIL — clients observe a timeout.
  bool drop_on_limit = false;

  /// Same split for deadline expiry: drop instead of SERVFAIL.
  bool drop_on_timeout = false;

  /// Front-door service queue (worker pool + backlog bound) modelling the
  /// vendor's overload behaviour; installed as a per-address queue override
  /// by testbed::Internet::make_resolver. Unset (or inactive) leaves the
  /// resolver queueless — the default, which keeps goldens byte-identical.
  std::optional<simtime::QueueModel> queue;

  /// RFC 8198 aggressive use of the DNSSEC-validated cache: synthesize
  /// NXDOMAIN/NODATA from cached NSEC3 intervals instead of re-querying
  /// the authoritative. Off by default — synth-off behaviour (and output)
  /// is byte-identical to a build without the subsystem.
  bool aggressive_nsec = false;
  /// Interval capacity of the aggressive cache (see resolver/negcache.hpp).
  std::size_t neg_cache_capacity = 4096;

  /// RFC 9520 resolution-failure caching: transient failures (upstream
  /// timeouts, deadline expiries) are served from cache for a bounded,
  /// backing-off TTL. Off by default for the same golden-stability reason.
  bool failure_caching = false;
  /// First-failure TTL; clamped by FailureCache into RFC 9520's
  /// [1 s, 5 min] window, doubling per consecutive failure.
  simtime::Duration failure_cache_ttl = simtime::Duration::from_seconds(5);

  /// Turns both caches on with the given knobs (the bench-flag path).
  void enable_aggressive(std::size_t neg_cache_cap,
                         simtime::Duration failure_ttl) {
    aggressive_nsec = true;
    failure_caching = true;
    neg_cache_capacity = neg_cache_cap == 0 ? 1 : neg_cache_cap;
    failure_cache_ttl = failure_ttl;
  }

  // --- software profiles (changelog-documented) ---
  static ResolverProfile bind9_2021();      // insecure > 150
  static ResolverProfile bind9_2023();      // insecure > 50 (CVE patch)
  static ResolverProfile unbound();         // insecure > 150 (not lowered)
  /// Unbound with `aggressive-nsec: yes` + RFC 9520 failure caching — the
  /// synth-capable vendor archetype (ISSUE 9's new sweep axis).
  static ResolverProfile unbound_aggressive();
  static ResolverProfile knot_2021();       // insecure > 150
  static ResolverProfile knot_2023();       // insecure > 50
  static ResolverProfile powerdns_2021();   // insecure > 150
  static ResolverProfile powerdns_2023();   // insecure > 50

  // --- public resolver profiles (probed in the paper) ---
  static ResolverProfile google_public_dns();  // insecure > 100, EDE 5
  static ResolverProfile cloudflare();         // SERVFAIL > 150, EDE 27
  static ResolverProfile quad9();              // insecure > 150, no EDE
  static ResolverProfile opendns();            // SERVFAIL > 150, EDE 12
  static ResolverProfile technitium();         // SERVFAIL > 100, EDE 27+text

  // --- behavioural archetypes from §5.2 ---
  static ResolverProfile strict_zero();     // SERVFAIL from it-1, RA quirk
  static ResolverProfile permissive();      // validates, RFC 5155 ceiling only
  static ResolverProfile item7_violator();  // skips Item 7 verification
  static ResolverProfile item12_gap();      // insecure > 100, SERVFAIL > 150
  static ResolverProfile non_validating();  // plain recursive, no DNSSEC
  static ResolverProfile limit_dropper();   // drops (times out) above 150
};

}  // namespace zh::resolver
