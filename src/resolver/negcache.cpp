#include "resolver/negcache.hpp"

#include <algorithm>
#include <span>

namespace zh::resolver {
namespace {

constexpr std::size_t kSha1HashLen = 20;

bool hash_less(const std::vector<std::uint8_t>& a,
               const std::vector<std::uint8_t>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

bool covers(const NegCacheInterval& interval,
            const std::vector<std::uint8_t>& h) {
  return dns::nsec3_covers(
      std::span<const std::uint8_t>(interval.owner_hash.data(),
                                    interval.owner_hash.size()),
      std::span<const std::uint8_t>(interval.next_hash.data(),
                                    interval.next_hash.size()),
      std::span<const std::uint8_t>(h.data(), h.size()));
}

/// A delegation-point owner (NS without SOA) must not deny names below the
/// zone cut — the child zone is authoritative there (RFC 8198 §5.2 via
/// RFC 5155 §8.9). DS is the exception: it lives on the parent side.
bool is_delegation_bitmap(const dns::TypeBitmap& types) {
  return types.contains(dns::RrType::kNs) &&
         !types.contains(dns::RrType::kSoa);
}

}  // namespace

AggressiveNegCache::AggressiveNegCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void AggressiveNegCache::clear() {
  zones_.clear();
  creation_order_.clear();
  size_ = 0;
}

void AggressiveNegCache::evict_oldest_zone() {
  if (creation_order_.empty()) return;
  const dns::Name victim = creation_order_.front();
  creation_order_.pop_front();
  const auto it = zones_.find(victim);
  if (it == zones_.end()) return;
  stats_.evicted += it->second.intervals.size();
  size_ -= it->second.intervals.size();
  zones_.erase(it);
}

bool AggressiveNegCache::insert(const dns::Name& zone,
                                const Nsec3CacheParams& params,
                                const std::vector<NegCacheInterval>& intervals) {
  const auto reject = [this] {
    ++stats_.rejected_batches;
    return false;
  };
  if (intervals.empty() || intervals.size() > capacity_) return reject();
  if (params.hash_algorithm != 1) return reject();  // SHA-1 only (RFC 5155)

  // Per-interval shape, and batch-internal consistency: one Opt-Out flag,
  // no duplicate owners, at most one wrap-around span (a real chain
  // snapshot cannot contain two), single-record chains stand alone.
  const bool batch_opt_out = intervals.front().opt_out;
  std::size_t wrap_spans = 0;
  for (const auto& interval : intervals) {
    if (interval.owner_hash.size() != kSha1HashLen ||
        interval.next_hash.size() != kSha1HashLen)
      return reject();
    if (interval.opt_out != batch_opt_out) return reject();
    if (!hash_less(interval.owner_hash, interval.next_hash)) ++wrap_spans;
  }
  if (wrap_spans > 1) return reject();
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    for (std::size_t j = 0; j < intervals.size(); ++j) {
      if (i == j) continue;
      if (intervals[i].owner_hash == intervals[j].owner_hash) return reject();
      // One span claiming another's owner does not exist is a contradiction
      // (this also refuses a single-record chain next to anything else).
      if (covers(intervals[i], intervals[j].owner_hash)) return reject();
    }
  }

  // Zone binding: parameters and Opt-Out are pinned by the first batch;
  // evidence under a different binding is malformed for this zone.
  auto zone_it = zones_.find(zone);
  if (zone_it != zones_.end()) {
    const ZoneEntry& entry = zone_it->second;
    if (!(entry.params == params) || entry.opt_out != batch_opt_out)
      return reject();
    for (const auto& interval : intervals) {
      const auto existing = entry.intervals.find(interval.owner_hash);
      if (existing != entry.intervals.end()) {
        if (existing->second.next_hash != interval.next_hash) return reject();
        continue;  // identical span — refresh is fine
      }
      // Contradiction either way round: a cached span covering the new
      // owner, or the new span covering a cached owner.
      if (covering(entry, interval.owner_hash)) return reject();
      for (const auto& [owner, cached] : entry.intervals)
        if (covers(interval, owner)) return reject();
    }
  }

  if (zone_it == zones_.end()) {
    ZoneEntry entry;
    entry.params = params;
    entry.opt_out = batch_opt_out;
    zone_it = zones_.emplace(zone, std::move(entry)).first;
    creation_order_.push_back(zone);
  }
  for (const auto& interval : intervals) {
    const auto [it, fresh] =
        zone_it->second.intervals.emplace(interval.owner_hash, interval);
    if (fresh) {
      ++size_;
      ++stats_.inserted;
    }
  }
  while (size_ > capacity_) evict_oldest_zone();
  return true;
}

const NegCacheInterval* AggressiveNegCache::covering(
    const ZoneEntry& zone, const std::vector<std::uint8_t>& h) const {
  if (zone.intervals.empty()) return nullptr;
  // Candidate 1: the greatest owner ≤ h. Candidate 2: the greatest owner
  // overall — a wrap-around span's owner is its chain's maximum, so if we
  // hold the wrap span at all, it is the map's last entry.
  auto it = zone.intervals.upper_bound(h);
  if (it != zone.intervals.begin()) {
    const auto& candidate = std::prev(it)->second;
    if (candidate.owner_hash != h && covers(candidate, h)) return &candidate;
  }
  const auto& last = std::prev(zone.intervals.end())->second;
  if (last.owner_hash != h && covers(last, h)) return &last;
  return nullptr;
}

AggressiveNegCache::Synthesis AggressiveNegCache::lookup(const dns::Name& qname,
                                                         dns::RrType qtype) {
  Synthesis result;
  const auto miss = [&]() -> Synthesis& {
    ++stats_.misses;
    return result;
  };

  // Deepest cached zone containing qname (mirrors the zone-context walk).
  const ZoneEntry* zone = nullptr;
  dns::Name apex = dns::Name::root();
  for (std::size_t labels = qname.label_count() + 1; labels-- > 0;) {
    const dns::Name candidate = qname.ancestor_with_labels(labels);
    const auto it = zones_.find(candidate);
    if (it != zones_.end()) {
      zone = &it->second;
      apex = candidate;
      break;
    }
  }
  if (!zone) return miss();

  const auto hash_of = [&](const dns::Name& name) {
    return dns::nsec3_hash_name(
        name,
        std::span<const std::uint8_t>(zone->params.salt.data(),
                                      zone->params.salt.size()),
        zone->params.iterations);
  };
  const auto add_proof = [&](const NegCacheInterval& interval) {
    for (const auto& present : result.authorities)
      if (present.name.equals(interval.record.name) &&
          present.type == dns::RrType::kNsec3)
        return;
    result.authorities.push_back(interval.record);
    result.authorities.insert(result.authorities.end(),
                              interval.rrsigs.begin(), interval.rrsigs.end());
  };

  // Exact owner match → NODATA synthesis, unless the bitmap says the name
  // has the type (or a CNAME), or the owner is a delegation point.
  const auto qhash = hash_of(qname);
  const auto match = zone->intervals.find(qhash);
  if (match != zone->intervals.end()) {
    const NegCacheInterval& interval = match->second;
    if (interval.types.contains(qtype) ||
        interval.types.contains(dns::RrType::kCname))
      return miss();
    if (qtype != dns::RrType::kDs && is_delegation_bitmap(interval.types))
      return miss();
    result.found = true;
    result.rcode = dns::Rcode::kNoError;
    add_proof(interval);
    ++stats_.hits;
    return result;
  }

  // Closest-encloser walk against cached owners (RFC 5155 §8.3, served
  // from cache): the CE must match, the next closer must be covered, and
  // the CE's wildcard child must be covered too.
  const NegCacheInterval* ce = nullptr;
  dns::Name next_closer = qname;
  dns::Name closest_encloser = apex;
  for (std::size_t labels = qname.label_count();
       labels-- > apex.label_count();) {
    const dns::Name candidate = qname.ancestor_with_labels(labels);
    const auto it = zone->intervals.find(hash_of(candidate));
    if (it != zone->intervals.end()) {
      ce = &it->second;
      closest_encloser = candidate;
      next_closer = qname.ancestor_with_labels(labels + 1);
      break;
    }
  }
  if (!ce) {
    // The apex itself is the last candidate encloser.
    const auto it = zone->intervals.find(hash_of(apex));
    if (it == zone->intervals.end()) return miss();
    ce = &it->second;
    closest_encloser = apex;
    next_closer = qname.ancestor_with_labels(apex.label_count() + 1);
  }
  if (is_delegation_bitmap(ce->types)) return miss();  // below a zone cut

  const NegCacheInterval* nc_cover = covering(*zone, hash_of(next_closer));
  if (!nc_cover) return miss();

  const dns::Name wildcard = closest_encloser.wildcard_child();
  const auto whash = hash_of(wildcard);
  if (zone->intervals.find(whash) != zone->intervals.end())
    return miss();  // the wildcard exists — positive synthesis is upstream's job
  const NegCacheInterval* wc_cover = covering(*zone, whash);
  if (!wc_cover) return miss();

  // RFC 8198 §5.2: an Opt-Out span proves nothing about names inside it.
  if (nc_cover->opt_out || wc_cover->opt_out) {
    result.opt_out_refusal = true;
    ++stats_.optout_refusals;
    ++stats_.misses;
    return result;
  }

  result.found = true;
  result.rcode = dns::Rcode::kNxDomain;
  add_proof(*ce);
  add_proof(*nc_cover);
  add_proof(*wc_cover);
  ++stats_.hits;
  return result;
}

FailureCache::FailureCache() : FailureCache(Config{}) {}

FailureCache::FailureCache(Config config) : config_(config) {
  // RFC 9520 §3.2: cache for at least 1 second, at most 5 minutes.
  const simtime::Duration floor = simtime::Duration::from_seconds(1);
  const simtime::Duration ceiling = simtime::Duration::from_seconds(300);
  if (config_.max_ttl > ceiling) config_.max_ttl = ceiling;
  if (config_.max_ttl < floor) config_.max_ttl = floor;
  if (config_.base_ttl < floor) config_.base_ttl = floor;
  if (config_.base_ttl > config_.max_ttl) config_.base_ttl = config_.max_ttl;
  if (config_.capacity == 0) config_.capacity = 1;
}

simtime::Duration FailureCache::record(const std::string& key,
                                       simtime::Duration now,
                                       std::optional<dns::EdeCode> ede,
                                       std::string ede_text) {
  ++stats_.recorded;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (entries_.size() >= config_.capacity) {
      // Wholesale clear, like the resolver's answer cache: deterministic
      // and allocation-order-free, at the cost of losing backoff history.
      entries_.clear();
      ++stats_.clears;
    }
    it = entries_.emplace(key, Entry{}).first;
  }
  Entry& entry = it->second;
  ++entry.consecutive;
  simtime::Duration ttl = config_.base_ttl;
  for (std::uint32_t i = 1; i < entry.consecutive && ttl < config_.max_ttl;
       ++i)
    ttl = ttl + ttl;
  if (ttl > config_.max_ttl) ttl = config_.max_ttl;
  entry.ttl = ttl;
  entry.expires = now + ttl;
  entry.ede = ede;
  entry.ede_text = std::move(ede_text);
  return ttl;
}

std::optional<FailureCache::Hit> FailureCache::lookup(const std::string& key,
                                                      simtime::Duration now) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  // Expired entries stay resident for backoff history; they just stop
  // answering. now == expires is already stale (a TTL of 1s serves for 1s).
  if (!(now < it->second.expires)) return std::nullopt;
  ++stats_.hits;
  return Hit{it->second.ede, it->second.ede_text};
}

}  // namespace zh::resolver
