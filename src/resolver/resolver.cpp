#include "resolver/resolver.hpp"

#include <algorithm>

#include "crypto/cost_meter.hpp"
#include "crypto/signing.hpp"
#include "simnet/exchange.hpp"
#include "trace/trace.hpp"

namespace zh::resolver {
namespace {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::ResourceRecord;
using dns::RrSet;
using dns::RrType;

constexpr std::uint32_t kNow = zone::kSimNow;

/// Extracts typed NSEC3 rdatas + owner hashes from authority records.
struct Nsec3View {
  std::vector<RrSet> sets;  // one per owner (for signature checks)
  std::vector<dns::Nsec3Rdata> rdatas;
  std::vector<std::vector<std::uint8_t>> owner_hashes;
  bool consistent = true;
  std::uint16_t iterations = 0;
  std::vector<std::uint8_t> salt;
};

Nsec3View collect_nsec3(const std::vector<ResourceRecord>& authorities,
                        const Name& apex) {
  Nsec3View view;
  for (const auto& rr : authorities) {
    if (rr.type != RrType::kNsec3) continue;
    const auto rdata = rr.as<dns::Nsec3Rdata>();
    const auto hash = dns::nsec3_owner_hash(rr.name, apex);
    if (!rdata || !hash) {
      view.consistent = false;
      continue;
    }
    if (view.rdatas.empty()) {
      view.iterations = rdata->iterations;
      view.salt = rdata->salt;
    } else if (rdata->iterations != view.iterations ||
               rdata->salt != view.salt ||
               rdata->hash_algorithm != view.rdatas.front().hash_algorithm) {
      // RFC 5155 §7.2: all NSEC3 RRs in a response must share parameters.
      view.consistent = false;
    }
    RrSet set;
    set.name = rr.name;
    set.type = RrType::kNsec3;
    set.ttl = rr.ttl;
    set.rdatas = {rr.rdata};
    view.sets.push_back(std::move(set));
    view.rdatas.push_back(*rdata);
    view.owner_hashes.push_back(*hash);
  }
  return view;
}

bool hashes_equal(std::span<const std::uint8_t> a,
                  std::span<const std::uint8_t> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace

RecursiveResolver::RecursiveResolver(simnet::Network& network, Config config,
                                     std::vector<simnet::IpAddress> root_servers)
    : network_(network),
      config_(std::move(config)),
      root_servers_(std::move(root_servers)),
      cache_hit_metric_(
          network.tracer().metrics().counter("resolver.cache_hit")) {
  // The RFC 8198 / RFC 9520 caches — and their metrics — exist only when
  // the profile asks for them, so capability-off runs leave the metrics
  // registry (hence traced output) byte-identical to a build without them.
  if (config_.profile.aggressive_nsec) {
    neg_cache_ = std::make_unique<AggressiveNegCache>(
        config_.profile.neg_cache_capacity);
    neg_synth_hit_metric_ =
        network.tracer().metrics().counter("resolver.neg_synth_hit");
  }
  if (config_.profile.failure_caching) {
    FailureCache::Config failure_config;
    failure_config.base_ttl = config_.profile.failure_cache_ttl;
    failure_cache_ = std::make_unique<FailureCache>(failure_config);
    failure_cache_hit_metric_ =
        network.tracer().metrics().counter("resolver.failure_cache_hit");
  }
}

void RecursiveResolver::attach() {
  network_.attach(config_.address,
                  [this](const Message& query, const simnet::IpAddress& src) {
                    return handle_or_drop(query, src);
                  });
}

std::optional<Message> RecursiveResolver::handle_or_drop(
    const Message& query, const simnet::IpAddress& source) {
  Message response = handle(query, source);
  if (last_query_dropped_) return std::nullopt;
  return response;
}

void RecursiveResolver::flush_cache() {
  zone_cache_.clear();
  answer_cache_.clear();
  if (neg_cache_) neg_cache_->clear();
  if (failure_cache_) failure_cache_->clear();
}

Message RecursiveResolver::resolve(const Name& qname, RrType qtype,
                                   bool dnssec_ok) {
  Message query = Message::make_query(next_id_++, qname, qtype, dnssec_ok);
  return handle(query, config_.address);
}

Message RecursiveResolver::handle(const Message& query,
                                  const simnet::IpAddress& /*source*/) {
  ++stats_.queries_handled;
  const std::uint64_t sha1_before = crypto::CostMeter::sha1_blocks();
  const std::uint64_t nsec3_before = crypto::CostMeter::nsec3_hashes();
  const std::uint64_t served_before = network_.receiver_sha1_blocks();
  query_start_ = network_.clock().now();
  own_sha1_start_ = sha1_before;
  served_sha1_start_ = served_before;
  last_query_dropped_ = false;

  Message response = Message::make_response(query);
  if (query.questions.empty()) {
    response.header.rcode = Rcode::kFormErr;
    return response;
  }
  const dns::Question& q = query.questions.front();

  trace::Tracer& tracer = network_.tracer();
  trace::Span query_span;
  if (tracer.enabled())
    query_span = tracer.span("resolver", "resolve",
                             q.name.canonical().to_string());

  // CD (checking disabled): resolve without validating — the client takes
  // responsibility. Measurement tooling (zdns-style) relies on this to
  // retrieve records from bogus or limit-exceeding zones.
  cd_active_ = query.header.cd;

  Outcome out;
  const std::string cache_key =
      q.name.canonical().to_string() + "|" +
      std::to_string(static_cast<std::uint16_t>(q.type)) +
      (cd_active_ ? "|cd" : "");
  bool from_cache = false;
  if (config_.enable_cache) {
    const auto it = answer_cache_.find(cache_key);
    if (it != answer_cache_.end()) {
      out = it->second;
      from_cache = true;
      ++stats_.cache_hits;
      ++*cache_hit_metric_;
    }
  }
  if (!from_cache) {
    // RFC 8198: before going upstream, try to synthesize the denial from
    // validated NSEC3 intervals already in the aggressive cache. Only
    // meaningful when this query would validate (never under CD) and the
    // resolver iterates itself.
    std::optional<Outcome> served;
    if (neg_cache_ && validation_active() && !config_.forward)
      served = try_synthesize(q.name, q.type);
    // RFC 9520: a still-fresh cached resolution failure answers without
    // re-running the failing resolution. Keyed without the CD marker —
    // transport failures do not depend on validation.
    std::string failure_key;
    if (failure_cache_)
      failure_key = q.name.canonical().to_string() + "|" +
                    std::to_string(static_cast<std::uint16_t>(q.type));
    if (!served && failure_cache_) {
      if (const auto hit =
              failure_cache_->lookup(failure_key, network_.clock().now())) {
        Outcome cached = make_servfail(hit->ede, hit->ede_text);
        cached.transient = true;  // stays out of the answer cache
        served = std::move(cached);
        ++stats_.failure_cache_hits;
        ++*failure_cache_hit_metric_;
      }
    }
    if (served) {
      out = std::move(*served);
    } else {
      out = config_.forward ? forward_query(q.name, q.type)
                            : resolve_internal(q.name, q.type, 0);
      if (failure_cache_ && out.transient) {
        failure_cache_->record(failure_key, network_.clock().now(), out.ede,
                               out.ede_text);
        ++stats_.failure_cache_inserts;
      }
    }
    // Transient (transport-caused) failures stay out of the cache: caching
    // them would turn one lost packet into a permanently broken name.
    if (config_.enable_cache && !out.transient) {
      if (answer_cache_.size() >= config_.cache_capacity)
        answer_cache_.clear();
      answer_cache_.emplace(cache_key, out);
    }
  }
  last_query_dropped_ = out.drop;

  if (out.rcode == Rcode::kServFail) ++stats_.servfails;
  switch (out.security) {
    case Security::kSecure: ++stats_.validations_secure; break;
    case Security::kInsecure: ++stats_.validations_insecure; break;
    case Security::kBogus: ++stats_.validations_bogus; break;
  }
  // Own validation work only: subtract hash work performed inside the
  // handlers of nodes this resolver queried (authoritative proof building).
  const std::uint64_t served =
      network_.receiver_sha1_blocks() - served_before;
  const std::uint64_t total = crypto::CostMeter::sha1_blocks() - sha1_before;
  stats_.last_query_sha1_blocks = total > served ? total - served : 0;
  stats_.last_query_nsec3_hashes =
      crypto::CostMeter::nsec3_hashes() - nsec3_before;
  // Stage accounting: the whole query in virtual time, plus the service
  // conversion of our own hash work (which the network only applies after
  // this handler returns).
  tracer.add_stage(
      trace::Stage::kResolve,
      (network_.clock().now() - query_start_ +
       network_.service_model().cost(stats_.last_query_sha1_blocks))
          .nanos());

  Message shaped = shape_response(query, out);
  cd_active_ = false;
  return shaped;
}

Message RecursiveResolver::shape_response(const Message& query,
                                          const Outcome& out) {
  Message response = Message::make_response(query);
  response.header.rcode = out.rcode;
  // The broken-device quirk: RA mirrors the query instead of being asserted.
  response.header.ra = config_.profile.ra_copies_rd
                           ? (query.header.ra || !query.header.rd)
                           : true;
  if (out.rcode != Rcode::kServFail) {
    response.answers = out.answers;
    response.authorities = out.authorities;
  }
  const bool client_wants_dnssec =
      (query.edns && query.edns->do_bit) || query.header.ad;
  // AD is asserted by validators, and by forwarders that trust (and copy)
  // their upstream's validation result.
  const bool may_assert_ad =
      config_.profile.validating ||
      (config_.forward && config_.copy_ad_from_upstream);
  if (may_assert_ad && !query.header.cd &&
      out.security == Security::kSecure && client_wants_dnssec) {
    response.header.ad = true;
  }
  response.header.cd = query.header.cd;
  if (!client_wants_dnssec) {
    // Strip DNSSEC records for non-DO clients.
    const auto is_dnssec_type = [](const ResourceRecord& rr) {
      return rr.type == RrType::kRrsig || rr.type == RrType::kNsec ||
             rr.type == RrType::kNsec3;
    };
    std::erase_if(response.answers, is_dnssec_type);
    std::erase_if(response.authorities, is_dnssec_type);
  }
  if (out.ede && response.edns) {
    response.edns->add_ede(*out.ede, out.ede_text);
  }
  return response;
}

RecursiveResolver::Outcome RecursiveResolver::make_servfail(
    std::optional<dns::EdeCode> ede, std::string text) const {
  Outcome out;
  out.rcode = Rcode::kServFail;
  out.security = Security::kBogus;
  out.ede = ede;
  out.ede_text = std::move(text);
  return out;
}

RecursiveResolver::Outcome RecursiveResolver::make_deadline_servfail() const {
  // RFC 8914 EDE 22 is the deadline code; like every transport-caused
  // SERVFAIL it stays out of the answer cache, and the EDE lets clients
  // (scanner/prober) recognise it as retryable rather than a policy limit.
  Outcome out = make_servfail(dns::EdeCode::kNoReachableAuthority,
                              "query deadline exceeded");
  out.transient = true;
  out.drop = config_.profile.drop_on_timeout;
  return out;
}

RecursiveResolver::Outcome RecursiveResolver::make_transient_servfail(
    std::optional<dns::EdeCode> ede, std::string text) const {
  // Upstream retransmission exhausted: mark with RFC 8914 Network Error so
  // the failure is distinguishable from a deterministic validation
  // SERVFAIL; callers that did not time out keep their own EDE.
  Outcome out = upstream_timeout_
                    ? make_servfail(dns::EdeCode::kNetworkError,
                                    "upstream queries timed out")
                    : make_servfail(ede, std::move(text));
  out.transient = upstream_timeout_;
  return out;
}

bool RecursiveResolver::deadline_exceeded() const {
  const auto& deadline = config_.profile.query_deadline;
  if (!deadline || !network_.time_models_active()) return false;
  const simtime::Duration elapsed = network_.clock().now() - query_start_;
  // Hash work this resolver did itself has not yet been converted to
  // service delay (that happens in the owning Network::deliver frame when
  // handle() returns) — project it so the deadline sees the true cost.
  const std::uint64_t total =
      crypto::CostMeter::sha1_blocks() - own_sha1_start_;
  const std::uint64_t served =
      network_.receiver_sha1_blocks() - served_sha1_start_;
  const std::uint64_t own = total > served ? total - served : 0;
  return elapsed + network_.service_model().cost(own) > *deadline;
}

RecursiveResolver::Outcome RecursiveResolver::forward_query(const Name& qname,
                                                            RrType qtype) {
  Message query = Message::make_query(next_id_++, qname, qtype,
                                      /*dnssec_ok=*/true);
  const simnet::ExchangeOutcome ex =
      simnet::exchange(network_, config_.address, config_.forward_target,
                       query, config_.profile.upstream_retry);
  stats_.upstream_queries += ex.attempts - (ex.tcp_fallback ? 1 : 0);
  if (ex.tcp_fallback) ++stats_.tcp_retries;
  if (ex.timed_out) ++stats_.upstream_timeouts;
  if (!ex.response) {
    Outcome out = ex.timed_out
                      ? make_servfail(dns::EdeCode::kNetworkError,
                                      "upstream queries timed out")
                      : make_servfail();
    out.transient = ex.timed_out;
    return out;
  }
  const std::optional<Message>& response = ex.response;

  Outcome out;
  out.rcode = response->header.rcode;
  out.answers = response->answers;
  out.authorities = response->authorities;
  out.security = (response->header.ad && config_.copy_ad_from_upstream)
                     ? Security::kSecure
                     : Security::kInsecure;
  if (response->edns) {
    if (const auto ede = response->edns->ede()) {
      out.ede = ede->info_code;
      out.ede_text = ede->extra_text;
    }
  }
  return out;
}

std::optional<Message> RecursiveResolver::query_servers(
    const std::vector<simnet::IpAddress>& servers, const Name& qname,
    RrType qtype) {
  upstream_timeout_ = false;
  // Everything below is upstream traffic: waits, retransmission backoff and
  // nested deliveries all land in the recurse stage.
  const trace::StageTimer recurse_timer(network_.tracer(),
                                        trace::Stage::kRecurse);
  for (const auto& server : servers) {
    Message query = Message::make_query(next_id_++, qname, qtype,
                                        /*dnssec_ok=*/true,
                                        /*recursion_desired=*/false);
    // zdns-style retransmission with UDP→TCP fallback on truncation (RFC
    // 7766) — large NSEC3 proofs and DNSKEY RRsets routinely exceed UDP
    // budgets.
    const simnet::ExchangeOutcome ex = simnet::exchange(
        network_, config_.address, server, query,
        config_.profile.upstream_retry);
    stats_.upstream_queries += ex.attempts - (ex.tcp_fallback ? 1 : 0);
    if (ex.tcp_fallback) ++stats_.tcp_retries;
    if (ex.timed_out) {
      ++stats_.upstream_timeouts;
      upstream_timeout_ = true;
      continue;
    }
    if (!ex.response) continue;  // unreachable — try the next server
    const std::optional<Message>& response = ex.response;
    // Anti-spoofing hygiene (RFC 5452): the response must echo our
    // transaction ID and question, or it is discarded.
    if (response->header.id != query.header.id) continue;
    if (response->questions.empty() ||
        !(response->questions.front() == query.questions.front()))
      continue;
    if (response->header.rcode == Rcode::kRefused ||
        response->header.rcode == Rcode::kFormErr ||
        response->header.rcode == Rcode::kNotImp)
      continue;
    return response;
  }
  return std::nullopt;
}

std::vector<dns::RrsigRdata> RecursiveResolver::sigs_for(
    const std::vector<ResourceRecord>& records, const Name& owner,
    RrType covered) {
  std::vector<dns::RrsigRdata> out;
  for (const auto& rr : records) {
    if (rr.type != RrType::kRrsig || !rr.name.equals(owner)) continue;
    const auto sig = rr.as<dns::RrsigRdata>();
    if (sig && sig->covered() == covered) out.push_back(*sig);
  }
  return out;
}

bool RecursiveResolver::verify_rrset(const RrSet& rrset,
                                     const std::vector<dns::RrsigRdata>& sigs,
                                     const ZoneContext& ctx) const {
  for (const auto& sig : sigs) {
    if (sig.inception > kNow || sig.expiration < kNow) continue;
    if (!sig.signer.equals(ctx.apex)) continue;
    // Find the key the signature references.
    const dns::DnskeyRdata* key = nullptr;
    for (const auto& candidate : ctx.keys) {
      if (candidate.key_tag() == sig.key_tag &&
          candidate.algorithm == sig.algorithm) {
        key = &candidate;
        break;
      }
    }
    if (!key || key->public_key.size() != crypto::kSimPublicKeySize) continue;

    // Wildcard reconstruction (RFC 4035 §5.3.2): if the RRSIG's label count
    // is lower than the owner's, the signed owner was the wildcard.
    RrSet effective = rrset;
    const std::uint8_t owner_labels = dns::rrsig_label_count(rrset.name);
    if (sig.labels < owner_labels) {
      effective.name =
          rrset.name.ancestor_with_labels(sig.labels).wildcard_child();
    } else if (sig.labels > owner_labels) {
      continue;  // malformed
    }
    effective.ttl = sig.original_ttl;

    const auto data = dns::build_signed_data(sig, effective);
    crypto::SimPublicKey pk{};
    std::copy(key->public_key.begin(), key->public_key.end(), pk.begin());
    if (crypto::sim_verify(
            pk, std::span<const std::uint8_t>(data.data(), data.size()),
            std::span<const std::uint8_t>(sig.signature.data(),
                                          sig.signature.size())))
      return true;
  }
  return false;
}

bool RecursiveResolver::install_validated_keys(
    ZoneContext& ctx, const std::vector<dns::DsRdata>& ds_set) {
  const auto response = query_servers(ctx.servers, ctx.apex, RrType::kDnskey);
  if (!response) return false;

  const auto dnskey_records = response->answers_with(RrType::kDnskey);
  if (dnskey_records.empty()) return false;

  RrSet dnskey_set;
  dnskey_set.name = ctx.apex;
  dnskey_set.type = RrType::kDnskey;
  dnskey_set.ttl = dnskey_records.front().ttl;
  std::vector<dns::DnskeyRdata> keys;
  for (const auto& rr : dnskey_records) {
    dnskey_set.rdatas.push_back(rr.rdata);
    const auto key = rr.as<dns::DnskeyRdata>();
    if (key) keys.push_back(*key);
  }

  // One of the keys must match a DS from the parent.
  const dns::DnskeyRdata* anchor_key = nullptr;
  for (const auto& key : keys) {
    for (const auto& ds : ds_set) {
      if (dns::ds_matches_key(ds, ctx.apex, key)) {
        anchor_key = &key;
        break;
      }
    }
    if (anchor_key) break;
  }
  if (!anchor_key) return false;

  // The DNSKEY RRset must be self-signed by the anchored key.
  const auto sigs = sigs_for(response->answers, ctx.apex, RrType::kDnskey);
  ZoneContext probe = ctx;
  probe.keys = keys;
  bool verified = false;
  for (const auto& sig : sigs) {
    if (sig.key_tag != anchor_key->key_tag()) continue;
    if (verify_rrset(dnskey_set, {sig}, probe)) {
      verified = true;
      break;
    }
  }
  if (!verified) return false;

  ctx.keys = std::move(keys);
  ctx.security = Security::kSecure;
  return true;
}

RecursiveResolver::Outcome RecursiveResolver::resolve_internal(
    const Name& qname, RrType qtype, std::size_t depth) {
  if (depth > 8) return make_servfail();

  // Start from the deepest cached zone context containing qname.
  ZoneContext ctx;
  bool have_ctx = false;
  for (std::size_t labels = qname.label_count() + 1; labels-- > 0;) {
    const Name candidate = qname.ancestor_with_labels(labels);
    // For DS queries the parent is authoritative: skip the qname's own zone.
    if (qtype == RrType::kDs && candidate.equals(qname) && labels > 0)
      continue;
    const auto it = zone_cache_.find(candidate);
    if (it != zone_cache_.end()) {
      ctx = it->second;
      have_ctx = true;
      break;
    }
  }
  if (!have_ctx) {
    ctx.apex = Name::root();
    ctx.servers = root_servers_;
    ctx.security =
        validation_active() ? Security::kSecure : Security::kInsecure;
    if (validation_active()) {
      if (!config_.trust_anchor) return make_servfail();
      if (!install_validated_keys(ctx, {config_.trust_anchor->root_ds})) {
        return make_transient_servfail(dns::EdeCode::kDnssecBogus,
                                       "cannot validate root DNSKEY");
      }
    }
    zone_cache_.emplace(ctx.apex, ctx);
  }

  for (std::size_t step = 0; step < config_.max_depth; ++step) {
    if (deadline_exceeded()) return make_deadline_servfail();
    trace::Span step_span;
    if (network_.tracer().enabled())
      step_span = network_.tracer().span("resolver", "step",
                                         ctx.apex.canonical().to_string());
    const auto response = query_servers(ctx.servers, qname, qtype);
    if (!response) return make_transient_servfail();
    if (response->header.rcode != Rcode::kNoError &&
        response->header.rcode != Rcode::kNxDomain)
      return make_servfail();

    // --- Referral? ---
    if (!response->header.aa && response->answers.empty()) {
      const Name* child = nullptr;
      for (const auto& rr : response->authorities) {
        if (rr.type != RrType::kNs) continue;
        if (rr.name.label_count() > ctx.apex.label_count() &&
            qname.is_subdomain_of(rr.name)) {
          child = &rr.name;
          break;
        }
      }
      if (child) {
        ZoneContext next;
        next.apex = *child;
        next.security = ctx.security;

        // Gather name-server addresses: glue first.
        std::vector<Name> ns_targets;
        for (const auto& rr : response->authorities) {
          if (rr.type != RrType::kNs || !rr.name.equals(*child)) continue;
          if (const auto ns = rr.as<dns::NsRdata>())
            ns_targets.push_back(ns->nsdname);
        }
        for (const auto& rr : response->additionals) {
          const bool is_glue_owner =
              std::any_of(ns_targets.begin(), ns_targets.end(),
                          [&rr](const Name& t) { return t.equals(rr.name); });
          if (!is_glue_owner) continue;
          if (rr.type == RrType::kA && rr.rdata.size() == 4)
            next.servers.push_back(
                simnet::IpAddress::from_bytes(false, rr.rdata.data()));
          if (rr.type == RrType::kAaaa && rr.rdata.size() == 16)
            next.servers.push_back(
                simnet::IpAddress::from_bytes(true, rr.rdata.data()));
        }
        if (next.servers.empty()) {
          // Glueless delegation: resolve the NS names out of band.
          bool transient_sub = false;
          for (const auto& target : ns_targets) {
            if (next.servers.size() >= 3) break;
            const Outcome sub = resolve_internal(target, RrType::kA,
                                                 depth + 1);
            transient_sub = transient_sub || sub.transient;
            for (const auto& rr : sub.answers) {
              if (rr.type == RrType::kA && rr.rdata.size() == 4)
                next.servers.push_back(
                    simnet::IpAddress::from_bytes(false, rr.rdata.data()));
            }
          }
          if (next.servers.empty()) {
            Outcome out =
                transient_sub ? make_servfail(dns::EdeCode::kNetworkError,
                                              "NS address resolution timed out")
                              : make_servfail();
            out.transient = transient_sub;
            return out;
          }
        }
        if (next.servers.empty()) return make_servfail();

        // DNSSEC: descend the chain of trust.
        if (validation_active() && ctx.security == Security::kSecure) {
          std::vector<dns::DsRdata> ds_set;
          RrSet ds_rrset;
          ds_rrset.name = *child;
          ds_rrset.type = RrType::kDs;
          for (const auto& rr : response->authorities) {
            if (rr.type != RrType::kDs || !rr.name.equals(*child)) continue;
            if (const auto ds = rr.as<dns::DsRdata>()) {
              ds_set.push_back(*ds);
              ds_rrset.ttl = rr.ttl;
              ds_rrset.rdatas.push_back(rr.rdata);
            }
          }
          if (!ds_set.empty()) {
            const auto sigs =
                sigs_for(response->authorities, *child, RrType::kDs);
            if (!verify_rrset(ds_rrset, sigs, ctx))
              return make_servfail(dns::EdeCode::kDnssecBogus,
                                   "DS RRset validation failed");
            // RFC 4035 §5.2: if no DS uses an algorithm this validator
            // implements, the child zone is treated as insecure, not bogus.
            const bool any_supported = std::any_of(
                ds_set.begin(), ds_set.end(), [](const dns::DsRdata& ds) {
                  return ds.algorithm ==
                         static_cast<std::uint8_t>(
                             crypto::DnssecAlgorithm::kSimHmacSha256);
                });
            if (!any_supported) {
              next.security = Security::kInsecure;
            } else if (!install_validated_keys(next, ds_set)) {
              return make_transient_servfail(
                  dns::EdeCode::kDnssecBogus, "child DNSKEY validation failed");
            }
          } else {
            // Insecure delegation: the absence of DS must be proven.
            const Nsec3View view =
                collect_nsec3(response->authorities, ctx.apex);
            if (!view.rdatas.empty()) {
              if (!view.consistent)
                return make_servfail(dns::EdeCode::kDnssecBogus,
                                     "inconsistent NSEC3 parameters");
              if (const auto policy_outcome = apply_iteration_policy(
                      *response, view.iterations, view.sets, ctx)) {
                if (policy_outcome->rcode == Rcode::kServFail)
                  return *policy_outcome;
                next.security = Security::kInsecure;  // downgraded
              } else {
                for (const auto& set : view.sets) {
                  const auto sigs = sigs_for(response->authorities, set.name,
                                             RrType::kNsec3);
                  if (!verify_rrset(set, sigs, ctx))
                    return make_servfail(dns::EdeCode::kDnssecBogus,
                                         "no-DS proof validation failed");
                }
                next.security = Security::kInsecure;
              }
            } else if (!response->authorities_with(RrType::kNsec)
                            .empty()) {
              next.security = Security::kInsecure;
            } else {
              return make_servfail(dns::EdeCode::kDnssecBogus,
                                   "missing no-DS proof");
            }
          }
        }

        if (next.apex.equals(ctx.apex)) return make_servfail();  // no progress
        zone_cache_[next.apex] = next;
        ctx = std::move(next);
        continue;
      }
    }

    // --- Final response ---
    Outcome out;
    if (validation_active() && ctx.security == Security::kSecure) {
      trace::Tracer& tracer = network_.tracer();
      const bool negative = response->answers.empty();
      trace::Span validate_span;
      if (tracer.enabled())
        validate_span = tracer.span(
            "resolver", negative ? "validate.negative" : "validate.positive");
      // Validation is own hash work: it does not move the clock inside this
      // handler (the network converts the SHA-1 delta to delay only after
      // the handler returns), so the validate stage projects the cost the
      // same way deadline_exceeded() does.
      const std::uint64_t validate_sha1 = crypto::CostMeter::sha1_blocks();
      const simtime::Duration validate_start = network_.clock().now();
      out = negative ? validate_negative(*response, qname, qtype, ctx)
                     : validate_positive(*response, qname, qtype, ctx);
      tracer.add_stage(
          trace::Stage::kValidate,
          (network_.clock().now() - validate_start +
           network_.service_model().cost(crypto::CostMeter::sha1_blocks() -
                                         validate_sha1))
              .nanos());
    } else {
      out.rcode = response->header.rcode;
      out.answers = response->answers;
      out.authorities = response->authorities;
      out.security = Security::kInsecure;
    }

    // --- CNAME chase ---
    if (out.rcode == Rcode::kNoError && qtype != RrType::kCname) {
      const bool has_final = std::any_of(
          out.answers.begin(), out.answers.end(),
          [&](const ResourceRecord& rr) {
            return rr.type == qtype && rr.name.equals(qname);
          });
      if (!has_final) {
        for (const auto& rr : out.answers) {
          if (rr.type != RrType::kCname || !rr.name.equals(qname)) continue;
          const auto cname = rr.as<dns::CnameRdata>();
          if (!cname) break;
          Outcome sub = resolve_internal(cname->target, qtype, depth + 1);
          if (sub.rcode == Rcode::kServFail) return sub;
          out.rcode = sub.rcode;
          out.answers.insert(out.answers.end(), sub.answers.begin(),
                             sub.answers.end());
          out.authorities = sub.authorities;
          if (sub.security == Security::kInsecure ||
              out.security == Security::kInsecure)
            out.security = Security::kInsecure;
          break;
        }
      }
    }
    // Validation was the expensive part — re-check the budget before the
    // answer leaves, so over-deadline work yields a timeout, not an answer.
    if (deadline_exceeded()) return make_deadline_servfail();
    return out;
  }
  return make_servfail();
}

RecursiveResolver::Outcome RecursiveResolver::validate_positive(
    const Message& response, const Name& qname, RrType /*qtype*/,
    const ZoneContext& ctx) {
  Outcome out;
  out.rcode = response.header.rcode;
  out.answers = response.answers;
  out.authorities = response.authorities;
  out.security = Security::kSecure;

  std::vector<ResourceRecord> data;
  for (const auto& rr : response.answers)
    if (rr.type != RrType::kRrsig) data.push_back(rr);

  bool any_wildcard = false;
  std::uint8_t wildcard_ce_labels = 0;
  for (const auto& set : RrSet::group(data)) {
    const auto sigs = sigs_for(response.answers, set.name, set.type);
    if (sigs.empty() || !verify_rrset(set, sigs, ctx)) {
      const bool expired = std::any_of(
          sigs.begin(), sigs.end(),
          [](const dns::RrsigRdata& s) { return s.expiration < kNow; });
      return make_servfail(expired ? dns::EdeCode::kSignatureExpired
                                   : dns::EdeCode::kDnssecBogus,
                           "answer RRset validation failed");
    }
    for (const auto& sig : sigs) {
      if (sig.labels < dns::rrsig_label_count(set.name)) {
        any_wildcard = true;
        wildcard_ce_labels = sig.labels;
      }
    }
  }

  if (any_wildcard) {
    // Wildcard expansion requires proof that the next-closer name does not
    // exist (RFC 5155 §8.8) — NSEC3 iteration policy applies here too.
    const Nsec3View view = collect_nsec3(response.authorities, ctx.apex);
    if (!view.rdatas.empty()) {
      if (!view.consistent)
        return make_servfail(dns::EdeCode::kDnssecBogus,
                             "inconsistent NSEC3 parameters");
      if (const auto policy_outcome = apply_iteration_policy(
              response, view.iterations, view.sets, ctx)) {
        return *policy_outcome;
      }
      for (const auto& set : view.sets) {
        const auto sigs =
            sigs_for(response.authorities, set.name, RrType::kNsec3);
        if (!verify_rrset(set, sigs, ctx))
          return make_servfail(dns::EdeCode::kDnssecBogus,
                               "wildcard proof validation failed");
      }
      const Name next_closer = qname.ancestor_with_labels(
          static_cast<std::size_t>(wildcard_ce_labels) + 1);
      const auto nc_hash = dns::nsec3_hash_name(
          next_closer,
          std::span<const std::uint8_t>(view.salt.data(), view.salt.size()),
          view.iterations);
      bool covered = false;
      for (std::size_t i = 0; i < view.rdatas.size(); ++i) {
        if (dns::nsec3_covers(
                std::span<const std::uint8_t>(view.owner_hashes[i].data(),
                                              view.owner_hashes[i].size()),
                std::span<const std::uint8_t>(
                    view.rdatas[i].next_hash.data(),
                    view.rdatas[i].next_hash.size()),
                std::span<const std::uint8_t>(nc_hash.data(),
                                              nc_hash.size()))) {
          covered = true;
          break;
        }
      }
      if (!covered)
        return make_servfail(dns::EdeCode::kDnssecBogus,
                             "wildcard next-closer not covered");
    } else if (response.authorities_with(RrType::kNsec).empty()) {
      return make_servfail(dns::EdeCode::kDnssecBogus,
                           "wildcard expansion without denial proof");
    }
  }
  return out;
}

std::optional<RecursiveResolver::Outcome>
RecursiveResolver::apply_iteration_policy(const Message& response,
                                          std::uint16_t iterations,
                                          const std::vector<RrSet>& nsec3_sets,
                                          const ZoneContext& ctx) {
  const Rfc9276Policy& policy = config_.profile.policy;

  const auto attach_ede = [&](Outcome& out) {
    if (policy.ede_override) {
      out.ede = *policy.ede_override;
    } else if (policy.emit_ede27) {
      out.ede = dns::EdeCode::kUnsupportedNsec3Iterations;
      out.ede_text = policy.ede_extra_text;
    }
  };

  if (policy.exceeds_servfail(iterations)) {
    // Item 8: refuse outright — or, for the §5.2 "stop answering" cohort,
    // drop the query so the client observes a timeout.
    Outcome out = make_servfail();
    out.drop = config_.profile.drop_on_limit;
    attach_ede(out);
    return out;
  }

  if (policy.exceeds_insecure(iterations)) {
    // Item 7: the NSEC3 RRset's own integrity must be checked before its
    // iteration count is trusted. Non-compliant resolvers skip this.
    if (policy.verify_rrsig_before_downgrade) {
      for (const auto& set : nsec3_sets) {
        const auto sigs =
            sigs_for(response.authorities, set.name, RrType::kNsec3);
        if (!verify_rrset(set, sigs, ctx)) {
          const bool expired = std::any_of(
              sigs.begin(), sigs.end(),
              [](const dns::RrsigRdata& s) { return s.expiration < kNow; });
          return make_servfail(expired ? dns::EdeCode::kSignatureExpired
                                       : dns::EdeCode::kDnssecBogus,
                               "NSEC3 RRSIG validation failed (Item 7)");
        }
      }
    }
    // Item 6: answer stands, but as insecure (AD cleared).
    Outcome out;
    out.rcode = response.header.rcode;
    out.answers = response.answers;
    out.authorities = response.authorities;
    out.security = Security::kInsecure;
    attach_ede(out);
    return out;
  }

  return std::nullopt;
}

RecursiveResolver::CeProof RecursiveResolver::check_closest_encloser(
    const Name& qname, const Name& apex,
    const std::vector<dns::Nsec3Rdata>& nsec3s,
    const std::vector<std::vector<std::uint8_t>>& owner_hashes) const {
  CeProof proof;
  if (nsec3s.empty()) return proof;
  const std::uint16_t iterations = nsec3s.front().iterations;
  const std::vector<std::uint8_t>& salt = nsec3s.front().salt;

  const auto hash_of = [&](const Name& name) {
    return dns::nsec3_hash_name(
        name, std::span<const std::uint8_t>(salt.data(), salt.size()),
        iterations);
  };
  const auto matching =
      [&](std::span<const std::uint8_t> h) -> const dns::Nsec3Rdata* {
    for (std::size_t i = 0; i < owner_hashes.size(); ++i)
      if (hashes_equal(owner_hashes[i], h)) return &nsec3s[i];
    return nullptr;
  };
  const auto covered = [&](std::span<const std::uint8_t> h) {
    for (std::size_t i = 0; i < owner_hashes.size(); ++i) {
      if (dns::nsec3_covers(
              std::span<const std::uint8_t>(owner_hashes[i].data(),
                                            owner_hashes[i].size()),
              std::span<const std::uint8_t>(nsec3s[i].next_hash.data(),
                                            nsec3s[i].next_hash.size()),
              h))
        return true;
    }
    return false;
  };

  // Direct match → NODATA-style proof.
  const auto qhash = hash_of(qname);
  if (const auto* match = matching(qhash)) {
    proof.valid = true;
    proof.name_exists = true;
    proof.matched_bitmap = match->types;
    return proof;
  }

  // Closest-encloser search: hash every ancestor until one matches. This is
  // the loop CVE-2023-50868 exploits — each probe costs iterations+1 SHA-1
  // applications.
  std::optional<Name> closest_encloser;
  Name next_closer = qname;
  for (std::size_t labels = qname.label_count(); labels-- > apex.label_count();) {
    const Name candidate = qname.ancestor_with_labels(labels);
    const auto chash = hash_of(candidate);
    if (matching(chash)) {
      closest_encloser = candidate;
      next_closer = qname.ancestor_with_labels(labels + 1);
      break;
    }
  }
  if (!closest_encloser) {
    // The apex itself must exist; check it explicitly.
    const auto apex_hash = hash_of(apex);
    if (!matching(apex_hash)) return proof;
    closest_encloser = apex;
    next_closer = qname.ancestor_with_labels(apex.label_count() + 1);
  }

  if (!covered(hash_of(next_closer))) return proof;

  const Name wildcard = closest_encloser->wildcard_child();
  const auto whash = hash_of(wildcard);
  if (const auto* match = matching(whash)) {
    proof.valid = true;
    proof.wildcard_matched = true;
    proof.matched_bitmap = match->types;
    return proof;
  }
  if (covered(whash)) {
    proof.valid = true;  // full NXDOMAIN proof
    return proof;
  }
  return proof;
}

RecursiveResolver::Outcome RecursiveResolver::validate_negative(
    const Message& response, const Name& qname, RrType qtype,
    const ZoneContext& ctx) {
  const Nsec3View view = collect_nsec3(response.authorities, ctx.apex);

  if (view.rdatas.empty()) {
    // NSEC (or nothing). A secure zone must prove its denials.
    const auto nsecs = response.authorities_with(RrType::kNsec);
    if (nsecs.empty())
      return make_servfail(dns::EdeCode::kNsecMissing,
                           "negative response without denial proof");
    // Validate NSEC signatures and the covering/matching relation.
    bool covers_or_matches = false;
    for (const auto& rr : nsecs) {
      RrSet set;
      set.name = rr.name;
      set.type = RrType::kNsec;
      set.ttl = rr.ttl;
      set.rdatas = {rr.rdata};
      const auto sigs = sigs_for(response.authorities, rr.name, RrType::kNsec);
      if (!verify_rrset(set, sigs, ctx))
        return make_servfail(dns::EdeCode::kDnssecBogus,
                             "NSEC validation failed");
      const auto nsec = rr.as<dns::NsecRdata>();
      if (!nsec) continue;
      if (rr.name.equals(qname)) {
        if (!nsec->types.contains(qtype)) covers_or_matches = true;
      } else {
        // owner < qname < next (canonical order, wrapping chain).
        const bool owner_before =
            Name::canonical_compare(rr.name, qname) < 0;
        const bool next_after =
            Name::canonical_compare(qname, nsec->next_domain) < 0 ||
            Name::canonical_compare(nsec->next_domain, rr.name) <= 0;
        if (owner_before && next_after) covers_or_matches = true;
      }
    }
    if (!covers_or_matches)
      return make_servfail(dns::EdeCode::kDnssecBogus,
                           "NSEC proof does not cover the query name");
    Outcome out;
    out.rcode = response.header.rcode;
    out.authorities = response.authorities;
    out.security = Security::kSecure;
    return out;
  }

  if (!view.consistent)
    return make_servfail(dns::EdeCode::kDnssecBogus,
                         "inconsistent NSEC3 parameters");

  // RFC 9276 Items 6/8 fire on the advertised iteration count, *before* the
  // expensive proof verification.
  if (const auto policy_outcome =
          apply_iteration_policy(response, view.iterations, view.sets, ctx))
    return *policy_outcome;

  // Full validation: signatures first, then the closest-encloser proof.
  for (const auto& set : view.sets) {
    const auto sigs = sigs_for(response.authorities, set.name, RrType::kNsec3);
    if (!verify_rrset(set, sigs, ctx)) {
      const bool expired = std::any_of(
          sigs.begin(), sigs.end(),
          [](const dns::RrsigRdata& s) { return s.expiration < kNow; });
      return make_servfail(expired ? dns::EdeCode::kSignatureExpired
                                   : dns::EdeCode::kDnssecBogus,
                           "NSEC3 RRSIG validation failed");
    }
  }

  const CeProof proof =
      check_closest_encloser(qname, ctx.apex, view.rdatas, view.owner_hashes);
  if (!proof.valid)
    return make_servfail(dns::EdeCode::kDnssecBogus,
                         "NSEC3 closest-encloser proof invalid");

  Rcode expected;
  if (proof.name_exists) {
    if (proof.matched_bitmap.contains(qtype) ||
        proof.matched_bitmap.contains(RrType::kCname))
      return make_servfail(dns::EdeCode::kDnssecBogus,
                           "NODATA proof contradicts type bitmap");
    expected = Rcode::kNoError;
  } else if (proof.wildcard_matched) {
    expected = Rcode::kNoError;  // wildcard NODATA
  } else {
    expected = Rcode::kNxDomain;
  }
  if (response.header.rcode != expected)
    return make_servfail(dns::EdeCode::kDnssecBogus,
                         "RCODE contradicts NSEC3 proof");

  // The denial is fully validated (signatures + closest-encloser proof):
  // exactly the evidence RFC 8198 lets the aggressive cache reuse.
  if (neg_cache_) cache_nsec3_intervals(response, ctx);

  Outcome out;
  out.rcode = response.header.rcode;
  out.authorities = response.authorities;
  out.security = Security::kSecure;
  return out;
}

std::optional<RecursiveResolver::Outcome> RecursiveResolver::try_synthesize(
    const Name& qname, RrType qtype) {
  AggressiveNegCache::Synthesis synth = neg_cache_->lookup(qname, qtype);
  if (synth.opt_out_refusal) ++stats_.neg_synth_optout_refusals;
  if (!synth.found) return std::nullopt;
  ++stats_.neg_synth_hits;
  ++*neg_synth_hit_metric_;
  Outcome out;
  out.rcode = synth.rcode;
  out.security = Security::kSecure;
  out.authorities = std::move(synth.authorities);
  return out;
}

void RecursiveResolver::cache_nsec3_intervals(const Message& response,
                                              const ZoneContext& ctx) {
  Nsec3CacheParams params;
  std::vector<NegCacheInterval> intervals;
  for (const auto& rr : response.authorities) {
    if (rr.type != RrType::kNsec3) continue;
    const auto rdata = rr.as<dns::Nsec3Rdata>();
    const auto hash = dns::nsec3_owner_hash(rr.name, ctx.apex);
    if (!rdata || !hash) continue;  // validation already vouched; belt+braces
    if (intervals.empty()) {
      params.hash_algorithm = rdata->hash_algorithm;
      params.iterations = rdata->iterations;
      params.salt = rdata->salt;
    }
    NegCacheInterval interval;
    interval.owner_hash = *hash;
    interval.next_hash = rdata->next_hash;
    interval.opt_out = rdata->opt_out();
    interval.types = rdata->types;
    interval.record = rr;
    for (const auto& sig_rr : response.authorities) {
      if (sig_rr.type != RrType::kRrsig || !sig_rr.name.equals(rr.name))
        continue;
      const auto sig = sig_rr.as<dns::RrsigRdata>();
      if (sig && sig->covered() == RrType::kNsec3)
        interval.rrsigs.push_back(sig_rr);
    }
    intervals.push_back(std::move(interval));
  }
  if (intervals.empty()) return;
  if (neg_cache_->insert(ctx.apex, params, intervals))
    ++stats_.neg_cache_inserts;
  else
    ++stats_.neg_cache_rejects;
}

}  // namespace zh::resolver
