// Validating recursive resolver.
//
// Implements full iterative resolution over the simulated Internet (root →
// TLD → zone), DNSSEC chain-of-trust validation (trust anchor → DS → DNSKEY
// → RRSIG), NSEC/NSEC3 denial-of-existence verification including the
// closest-encloser search whose cost CVE-2023-50868 weaponises, and the
// RFC 9276 iteration-limit policy (Items 6-12) under study in the paper.
//
// Forwarding mode models the CPE devices the paper's server-side logs expose
// (queries arriving at Cloudflare/OpenDNS on behalf of open forwarders).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/dnssec.hpp"
#include "dns/message.hpp"
#include "resolver/negcache.hpp"
#include "resolver/policy.hpp"
#include "simnet/network.hpp"
#include "trace/trace.hpp"
#include "zone/signer.hpp"

namespace zh::resolver {

/// Chain-of-trust entry point: the root zone's DS (hash of the root KSK).
struct TrustAnchor {
  dns::DsRdata root_ds;
};

/// Validation state of a response.
enum class Security {
  kSecure,    // full chain validated — AD bit set
  kInsecure,  // provably unsigned (or downgraded by an iteration limit)
  kBogus,     // validation failed — SERVFAIL
};

/// Counters for one resolver instance.
struct ResolverStats {
  std::uint64_t queries_handled = 0;
  std::uint64_t upstream_queries = 0;
  std::uint64_t tcp_retries = 0;  // truncated UDP answers refetched over TCP
  std::uint64_t upstream_timeouts = 0;  // exchanges that exhausted all retries
  std::uint64_t cache_hits = 0;
  std::uint64_t servfails = 0;
  std::uint64_t validations_secure = 0;
  std::uint64_t validations_insecure = 0;
  std::uint64_t validations_bogus = 0;
  /// SHA-1 compression blocks spent validating the most recent query — the
  /// CVE-2023-50868 cost signal.
  std::uint64_t last_query_sha1_blocks = 0;
  std::uint64_t last_query_nsec3_hashes = 0;
  /// RFC 8198 aggressive-cache activity (zero unless the profile enables
  /// aggressive_nsec).
  std::uint64_t neg_synth_hits = 0;             // answers synthesized
  std::uint64_t neg_synth_optout_refusals = 0;  // cover was Opt-Out (§5.2)
  std::uint64_t neg_cache_inserts = 0;          // interval batches accepted
  std::uint64_t neg_cache_rejects = 0;          // malformed batches refused
  /// RFC 9520 failure-cache activity (zero unless failure_caching is on).
  std::uint64_t failure_cache_hits = 0;
  std::uint64_t failure_cache_inserts = 0;
};

class RecursiveResolver {
 public:
  struct Config {
    simnet::IpAddress address;
    ResolverProfile profile;
    std::optional<TrustAnchor> trust_anchor;  // required when validating

    /// Forwarding mode: relay to `forward_target` instead of iterating.
    bool forward = false;
    simnet::IpAddress forward_target;
    /// Forwarders that trust upstream AD copy it into their responses.
    bool copy_ad_from_upstream = true;

    std::size_t max_depth = 24;
    bool enable_cache = true;
    std::size_t cache_capacity = 4096;
  };

  RecursiveResolver(simnet::Network& network, Config config,
                    std::vector<simnet::IpAddress> root_servers);

  /// Registers this resolver as a node on the network.
  void attach();

  const simnet::IpAddress& address() const noexcept {
    return config_.address;
  }
  const Config& config() const noexcept { return config_; }
  const ResolverStats& stats() const noexcept { return stats_; }

  /// Handles a client query (the simnet node handler body).
  dns::Message handle(const dns::Message& query,
                      const simnet::IpAddress& source);

  /// handle(), except profile-mandated drops (drop_on_limit /
  /// drop_on_timeout) come back as nullopt — the client sees a timeout
  /// instead of an answer. This is what attach() registers.
  std::optional<dns::Message> handle_or_drop(const dns::Message& query,
                                             const simnet::IpAddress& source);

  /// Client-style convenience: build a query, handle it, return the reply.
  dns::Message resolve(const dns::Name& qname, dns::RrType qtype,
                       bool dnssec_ok = true);

  /// Drops cached answers and zone contexts (not the trust anchor).
  void flush_cache();

 private:
  struct ZoneContext {
    dns::Name apex;
    std::vector<simnet::IpAddress> servers;
    Security security = Security::kSecure;
    std::vector<dns::DnskeyRdata> keys;  // validated ZSKs+KSKs when secure
  };

  /// Internal resolution outcome before client-response shaping.
  struct Outcome {
    dns::Rcode rcode = dns::Rcode::kServFail;
    Security security = Security::kBogus;
    std::vector<dns::ResourceRecord> answers;
    std::vector<dns::ResourceRecord> authorities;
    std::optional<dns::EdeCode> ede;
    std::string ede_text;
    /// Transport-caused failure (upstream timeout, deadline expiry): must
    /// not enter the answer cache — a retry may well succeed.
    bool transient = false;
    /// Profile says to drop this response instead of sending it.
    bool drop = false;
  };

  Outcome resolve_internal(const dns::Name& qname, dns::RrType qtype,
                           std::size_t depth);
  Outcome forward_query(const dns::Name& qname, dns::RrType qtype);

  /// Sends (qname, qtype) to the context's servers, first responder wins.
  std::optional<dns::Message> query_servers(
      const std::vector<simnet::IpAddress>& servers, const dns::Name& qname,
      dns::RrType qtype);

  /// Fetches and validates a zone's DNSKEY RRset against `ds_set`.
  bool install_validated_keys(ZoneContext& ctx,
                              const std::vector<dns::DsRdata>& ds_set);

  /// Verifies an RRset's RRSIG(s) with the context's keys; handles wildcard
  /// label reconstruction. Returns true if any signature verifies.
  bool verify_rrset(const dns::RrSet& rrset,
                    const std::vector<dns::RrsigRdata>& sigs,
                    const ZoneContext& ctx) const;

  /// Collects the RRSIGs covering (owner, type) from a record list.
  static std::vector<dns::RrsigRdata> sigs_for(
      const std::vector<dns::ResourceRecord>& records, const dns::Name& owner,
      dns::RrType covered);

  Outcome validate_positive(const dns::Message& response,
                            const dns::Name& qname, dns::RrType qtype,
                            const ZoneContext& ctx);
  Outcome validate_negative(const dns::Message& response,
                            const dns::Name& qname, dns::RrType qtype,
                            const ZoneContext& ctx);

  /// Applies Items 6/8 to an NSEC3 iteration count. Returns an outcome when
  /// a limit fires (SERVFAIL or downgraded-insecure), nullopt when full
  /// validation should proceed.
  std::optional<Outcome> apply_iteration_policy(
      const dns::Message& response, std::uint16_t iterations,
      const std::vector<dns::RrSet>& nsec3_sets, const ZoneContext& ctx);

  /// The closest-encloser search (RFC 5155 §8.3) — the expensive path.
  struct CeProof {
    bool valid = false;
    bool name_exists = false;       // NSEC3 matched qname (NODATA case)
    bool wildcard_matched = false;  // *.CE exists (wildcard NODATA)
    dns::TypeBitmap matched_bitmap;
  };
  CeProof check_closest_encloser(
      const dns::Name& qname, const dns::Name& apex,
      const std::vector<dns::Nsec3Rdata>& nsec3s,
      const std::vector<std::vector<std::uint8_t>>& owner_hashes) const;

  Outcome make_servfail(std::optional<dns::EdeCode> ede = std::nullopt,
                        std::string text = {}) const;

  /// Transient SERVFAIL for an expired query deadline (dropped instead when
  /// the profile says so).
  Outcome make_deadline_servfail() const;

  /// SERVFAIL after an upstream exchange chain: transient with an RFC 8914
  /// Network Error marker when the cause was upstream timeouts, otherwise
  /// the caller-supplied (deterministic) EDE.
  Outcome make_transient_servfail(
      std::optional<dns::EdeCode> ede = std::nullopt,
      std::string text = {}) const;

  /// True once the in-flight query's virtual-time budget is spent. Projects
  /// forward: elapsed clock time plus the service cost of own hash work not
  /// yet converted to delay by the owning Network::deliver frame.
  bool deadline_exceeded() const;

  dns::Message shape_response(const dns::Message& query, const Outcome& out);

  /// True when DNSSEC validation applies to the in-flight query (profile
  /// validates and the client did not set CD).
  bool validation_active() const noexcept {
    return config_.profile.validating && !cd_active_;
  }

  simnet::Network& network_;
  Config config_;
  std::vector<simnet::IpAddress> root_servers_;
  ResolverStats stats_;
  std::uint16_t next_id_ = 1;
  bool cd_active_ = false;  // RFC 4035 §3.2.2 checking-disabled handling
  // Set by query_servers when its failure was a retry-exhausting timeout
  // (as opposed to an unreachable or misbehaving server).
  bool upstream_timeout_ = false;
  bool last_query_dropped_ = false;
  // Deadline accounting for the in-flight client query (set by handle()).
  simtime::Duration query_start_;
  std::uint64_t own_sha1_start_ = 0;
  std::uint64_t served_sha1_start_ = 0;
  // Handle into the network tracer's metrics registry (registered once at
  // construction; incrementing through it keeps the cache-hit path cheap).
  trace::Metrics::Counter cache_hit_metric_;
  // Registered only when the respective capability is on, so synth-off runs
  // leave the metrics registry (and traced output) untouched.
  trace::Metrics::Counter neg_synth_hit_metric_ = nullptr;
  trace::Metrics::Counter failure_cache_hit_metric_ = nullptr;

  /// Tries RFC 8198 synthesis for (qname, qtype); nullopt on a cache miss.
  std::optional<Outcome> try_synthesize(const dns::Name& qname,
                                        dns::RrType qtype);

  /// Feeds a fully validated NSEC3 denial into the aggressive cache.
  void cache_nsec3_intervals(const dns::Message& response,
                             const ZoneContext& ctx);

  // Infrastructure cache: apex → validated zone context.
  std::unordered_map<dns::Name, ZoneContext, dns::NameHash> zone_cache_;
  // Answer cache: "<qname>|<type>" → outcome.
  std::unordered_map<std::string, Outcome> answer_cache_;
  // RFC 8198 / RFC 9520 caches — allocated only when the profile turns the
  // capability on (nullptr otherwise, so the synth-off fast path costs one
  // branch).
  std::unique_ptr<AggressiveNegCache> neg_cache_;
  std::unique_ptr<FailureCache> failure_cache_;
};

}  // namespace zh::resolver
