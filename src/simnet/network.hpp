// The simulated Internet: a registry of addressable DNS nodes and a
// synchronous query transport with loss injection and server-side logging —
// the measurement infrastructure the paper runs on (their authoritative
// servers log source IPs to detect forwarders, §4.2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "crypto/cost_meter.hpp"
#include "dns/message.hpp"
#include "simnet/address.hpp"
#include "simtime/latency.hpp"
#include "simtime/queue.hpp"
#include "simtime/simtime.hpp"
#include "trace/trace.hpp"

// Debug-mode enforcement of the one-thread-per-Network contract (below).
// Enabled in non-NDEBUG builds and in sanitizer builds (ZH_THREAD_CHECKS is
// defined by -DZH_SANITIZE=...), where catching a cross-thread use early is
// worth the two relaxed atomic ops per delivery.
#if !defined(NDEBUG) || defined(ZH_THREAD_CHECKS)
#define ZH_SIMNET_THREAD_CHECKS 1
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#endif

namespace zh::simnet {

/// A node's query handler: query + source address → response (nullopt means
/// the node drops the query).
using MessageHandler = std::function<std::optional<dns::Message>(
    const dns::Message&, const IpAddress& source)>;

/// One server-side log line.
struct QueryLogEntry {
  IpAddress source;
  IpAddress destination;
  dns::Question question;
};

/// On-path tampering hook: may mutate a response in flight (returns true if
/// it touched the message). Models the downgrade attacker of RFC 9276
/// Item 12 / RFC 5155 §12.1.1.
using TamperHook = std::function<bool(dns::Message& response,
                                      const IpAddress& from,
                                      const IpAddress& to)>;

/// A flow's transport identity at one instant: the key plus how many
/// loss/jitter draws it has consumed. Saving and restoring this around a
/// task switch is what lets the async engine multiplex thousands of flows
/// over one Network without perturbing any flow's draw sequence — the
/// determinism contract set_flow() alone cannot offer, because set_flow()
/// restarts the sequence at zero.
struct FlowState {
  std::uint64_t key = 0;
  std::uint64_t seq = 0;
};

/// One finished asynchronous delivery (see Network::send_async). The
/// simulation serves deliveries synchronously, so the event is available
/// the moment send_async returns; queueing it decouples *issuing* a query
/// from *consuming* its outcome — the shape an event-driven engine needs.
struct CompletionEvent {
  /// Caller-chosen correlation token (the async engine uses its task id).
  std::uint64_t token = 0;
  std::optional<dns::Message> response;
  /// Virtual instant the delivery finished (= the clock after it ran).
  simtime::Duration completed_at;
  /// The delivery's virtual-time span (zero for a lost/unreachable send).
  simtime::Duration elapsed;
};

/// The network. Single-threaded and deterministic: queries are synchronous
/// calls, loss is a pure function of (seed, flow, sequence).
///
/// ## Virtual time
///
/// Each Network owns a simtime::Clock. A delivery advances it by one RTT
/// sample from the latency model (two for TCP — connection setup) plus the
/// service-time conversion of the receiving handler's own SHA-1 block
/// delta; nested deliveries advance it while the outer handler runs, so
/// last_elapsed() after a send() is the full client-observed wait. Both
/// models default to inactive: with zero latency and zero service cost the
/// clock never moves and behaviour is byte-identical to the untimed
/// network. A *lost* query advances nothing — the waiting is the client's
/// (see simnet/exchange.hpp), because only the client knows its timeout.
///
/// Callers label traffic with set_flow(key): loss and jitter draws are
/// keyed on (seed, link, flow key, per-flow sequence), so one item's
/// transport fate does not depend on how many queries *other* items sent
/// before it — the property that keeps sharded campaigns comparable across
/// worker counts.
///
/// ## Threading contract: one Network per worker thread
///
/// A Network instance (and everything attached to it — servers, resolvers,
/// the whole testbed::Internet it belongs to) must only ever be driven by
/// one thread. send()/send_tcp() mutate shared state through const-free
/// paths (`truncations_`, `queries_sent_`, the query log, the loss RNG, and
/// every node handler's own caches), none of which is synchronised —
/// synchronisation would serialise exactly the hot path that sharded
/// campaigns split across workers. Parallel engines therefore give each
/// worker its own Internet (see scanner/parallel.hpp) instead of sharing
/// one.
///
/// In debug and sanitizer builds the contract is enforced: the instance
/// binds to the first thread that attaches a node or sends a query, and any
/// use from a second thread aborts with a diagnostic. A deliberate handover
/// (build on one thread, drive from another after a happens-before edge,
/// e.g. std::thread creation) must call rebind_owner_thread() first.
class Network {
 public:
  /// Registers a node. Re-attaching an address replaces its handler.
  void attach(const IpAddress& address, MessageHandler handler) {
    assert_owner_thread();
    nodes_[address] = std::move(handler);
  }

  void detach(const IpAddress& address) { nodes_.erase(address); }

  bool is_attached(const IpAddress& address) const {
    return nodes_.count(address) > 0;
  }

  std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Sends a query over simulated UDP; returns the response or nullopt on
  /// unreachable destination / simulated loss. Responses larger than the
  /// client's advertised EDNS buffer (or 512 bytes without EDNS) come back
  /// truncated: empty sections with the TC bit set (RFC 1035 §4.2.1 /
  /// RFC 6891 §4.3) — the caller must retry over TCP via send_tcp().
  std::optional<dns::Message> send(const IpAddress& from, const IpAddress& to,
                                   const dns::Message& query) {
    auto response = deliver(from, to, query);
    if (!response) return std::nullopt;
    // RFC 6891 §6.2.3: advertised payload sizes below 512 are treated as
    // 512 — an attacker-chosen tiny buffer must not shrink the floor.
    const std::size_t buffer_size =
        query.edns ? std::max<std::size_t>(512, query.edns->udp_payload_size)
                   : 512;
    if (response->wire_size() > buffer_size) {
      dns::Message truncated = dns::Message::make_response(query);
      truncated.header.rcode = response->header.rcode;
      truncated.header.aa = response->header.aa;
      truncated.header.tc = true;
      ++truncations_;
      return truncated;
    }
    return response;
  }

  /// Sends over simulated TCP: no size limit, no truncation, and exempt
  /// from UDP loss (the simulation's TCP stands for a reliable stream).
  std::optional<dns::Message> send_tcp(const IpAddress& from,
                                       const IpAddress& to,
                                       const dns::Message& query) {
    ++tcp_queries_;
    return deliver(from, to, query, /*udp=*/false);
  }

  std::uint64_t truncations() const noexcept { return truncations_; }
  std::uint64_t tcp_queries() const noexcept { return tcp_queries_; }

  /// The network's virtual clock (advanced by deliveries; callers advance
  /// it themselves for client-side timeout waits).
  simtime::Clock& clock() noexcept { return clock_; }
  const simtime::Clock& clock() const noexcept { return clock_; }

  void set_latency_model(simtime::LatencyModel model) {
    latency_ = std::move(model);
  }
  const simtime::LatencyModel& latency_model() const noexcept {
    return latency_;
  }

  void set_service_model(simtime::ServiceModel model) { service_ = model; }
  const simtime::ServiceModel& service_model() const noexcept {
    return service_;
  }

  /// True when any virtual-time model can move the clock. Queueing alone
  /// is excluded deliberately: with zero latency and zero service cost
  /// every request arrives, starts and completes at the same instant, so a
  /// queue can never introduce a wait on its own.
  bool time_models_active() const noexcept {
    return latency_.active() || service_.active();
  }

  /// Installs the default service queue applied to every attached node
  /// (inactive by default — see simtime/queue.hpp). Discards live queue
  /// state: configuration changes start a fresh epoch.
  void set_queue_model(simtime::QueueModel model) {
    queue_model_ = model;
    end_queue_epoch();
  }
  const simtime::QueueModel& queue_model() const noexcept {
    return queue_model_;
  }

  /// Per-destination override (e.g. one resolver vendor profile's worker
  /// pool). An *inactive* override exempts the address from the default.
  void set_queue(const IpAddress& destination, simtime::QueueModel model) {
    queue_overrides_[destination] = model;
    end_queue_epoch();
  }

  /// True when any destination can currently queue or shed.
  bool queueing_active() const noexcept {
    if (queue_model_.active()) return true;
    for (const auto& [address, model] : queue_overrides_)
      if (model.active()) return true;
    return false;
  }

  /// Cumulative queueing counters over all destinations and epochs.
  const simtime::QueueCounters& queue_counters() const noexcept {
    return queue_counters_;
  }

  /// Discards all live queue state: subsequent arrivals find every worker
  /// slot idle. Called by set_flow(), so contention is scoped to one flow
  /// (campaign item) — the property that keeps queue-enabled campaigns
  /// bit-identical for any worker count. Batch drivers that *want* their
  /// clients to contend join one epoch instead (QueueEpoch::kJoin).
  void end_queue_epoch() noexcept { queues_.clear(); }

  /// Whether a flow change starts a fresh queue epoch (the default) or
  /// keeps the live queue state so deliberately concurrent flows contend.
  enum class QueueEpoch { kNew, kJoin };

  /// Labels subsequent traffic with a flow key and restarts its sequence
  /// counter. Campaigns key flows on item identity (domain index, probe
  /// token), making loss/jitter draws independent of scan order. By
  /// default this also starts a fresh queue epoch; pass QueueEpoch::kJoin
  /// to contend with the previous flows' queue state (see
  /// simnet::concurrent_exchange).
  void set_flow(std::uint64_t key,
                QueueEpoch epoch = QueueEpoch::kNew) noexcept {
    flow_key_ = key;
    flow_seq_ = 0;
    tracer_.set_flow(key);
    if (epoch == QueueEpoch::kNew) end_queue_epoch();
  }
  std::uint64_t flow() const noexcept { return flow_key_; }

  /// Snapshot of the current flow identity — key *and* consumed-draw
  /// count. Pair with resume_flow() around task switches.
  FlowState flow_state() const noexcept {
    return FlowState{flow_key_, flow_seq_};
  }

  /// Reinstalls a saved flow mid-sequence: unlike set_flow(), the draw
  /// sequence continues from where the flow left off, so a resumed task's
  /// loss/jitter fates are byte-identical to an uninterrupted run. Starts
  /// a fresh queue epoch by default (each resumed task sees the same idle
  /// queues a blocking run would at that point of its timeline); pass
  /// QueueEpoch::kJoin to contend with live queue state instead.
  void resume_flow(const FlowState& state,
                   QueueEpoch epoch = QueueEpoch::kNew) noexcept {
    flow_key_ = state.key;
    flow_seq_ = state.seq;
    tracer_.set_flow(state.key);
    if (epoch == QueueEpoch::kNew) end_queue_epoch();
  }

  /// Issues a UDP query whose outcome is posted to the completion queue
  /// instead of returned. The delivery itself runs synchronously at the
  /// current virtual clock (the simulated network is single-threaded);
  /// what "async" buys is the decoupling: the caller can park the logical
  /// query, serve other flows, and consume the completion — stamped with
  /// its virtual finish instant — in whatever order its event loop
  /// dictates. Truncation semantics match send(); the caller falls back
  /// to send_tcp() on a TC response exactly as in the blocking path.
  void send_async(const IpAddress& from, const IpAddress& to,
                  const dns::Message& query, std::uint64_t token) {
    auto response = send(from, to, query);
    completions_.push_back(CompletionEvent{token, std::move(response),
                                           clock_.now(), last_elapsed_});
  }

  bool has_completion() const noexcept { return !completions_.empty(); }

  /// Pops the oldest completion event. Precondition: has_completion().
  CompletionEvent pop_completion() {
    CompletionEvent event = std::move(completions_.front());
    completions_.pop_front();
    return event;
  }

  /// Virtual time consumed by the most recent send()/send_tcp() — zero for
  /// a lost or unreachable delivery.
  simtime::Duration last_elapsed() const noexcept { return last_elapsed_; }

  /// The network's tracer (see trace/trace.hpp): deliveries, queue events
  /// and the layers above (resolver, authoritative servers) all emit into
  /// it, stamped with this network's virtual clock. Disabled by default —
  /// configure via `tracer().configure(...)`; its Metrics registry and
  /// stage accumulators are always live.
  trace::Tracer& tracer() noexcept { return tracer_; }
  const trace::Tracer& tracer() const noexcept { return tracer_; }

  /// Installs (or clears, with nullptr) the on-path attacker.
  void set_tamper(TamperHook hook) { tamper_ = std::move(hook); }
  std::uint64_t tampered_responses() const noexcept { return tampered_; }

  /// Cumulative SHA-1 blocks spent inside node handlers during send().
  std::uint64_t receiver_sha1_blocks() const noexcept {
    return receiver_sha1_blocks_;
  }

  /// Enables the paper's server-side logging for one destination.
  void enable_logging_for(const IpAddress& destination) {
    logged_destinations_.insert({destination, true});
  }

  const std::vector<QueryLogEntry>& query_log() const noexcept { return log_; }
  void clear_query_log() { log_.clear(); }

  std::uint64_t queries_sent() const noexcept { return queries_sent_; }

  /// Uniform random loss on UDP sends (0 disables). Deterministic: each
  /// drop decision is mix64(seed, flow, sequence) — no sequential RNG
  /// state, so a flow's fate is independent of other flows' traffic. TCP
  /// is exempt (reliable stream).
  void set_loss(double probability, std::uint64_t seed = 1) {
    loss_probability_ = probability;
    loss_seed_ = seed;
  }

  /// Releases the debug-mode thread binding so another thread may take the
  /// instance over (see the threading contract above). The caller is
  /// responsible for the happens-before edge between the two threads.
  /// No-op in release builds.
  void rebind_owner_thread() noexcept {
#ifdef ZH_SIMNET_THREAD_CHECKS
    owner_thread_.store(std::thread::id{}, std::memory_order_relaxed);
#endif
  }

 private:
#ifdef ZH_SIMNET_THREAD_CHECKS
  void assert_owner_thread() const {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};  // unbound
    if (owner_thread_.compare_exchange_strong(expected, self,
                                              std::memory_order_relaxed))
      return;  // first use: this thread now owns the instance
    if (expected != self) {
      std::fprintf(stderr,
                   "zh::simnet::Network: instance driven from two threads — "
                   "the one-network-per-worker contract is violated (see "
                   "simnet/network.hpp). Use one Internet per worker, or "
                   "rebind_owner_thread() for a deliberate handover.\n");
      std::abort();
    }
  }
#else
  void assert_owner_thread() const noexcept {}
#endif

  std::optional<dns::Message> deliver(const IpAddress& from,
                                      const IpAddress& to,
                                      const dns::Message& query,
                                      bool udp = true) {
    assert_owner_thread();
    ++queries_sent_;
    const std::uint64_t seq = flow_seq_++;
    last_elapsed_ = {};
    if (udp && loss_probability_ > 0.0 &&
        simtime::unit_double(simtime::mix64(
            loss_seed_ + simtime::mix64(flow_key_ + simtime::mix64(seq)))) <
            loss_probability_) {
      tracer_.instant("net", "loss");
      return std::nullopt;
    }
    const auto it = nodes_.find(to);
    if (it == nodes_.end()) return std::nullopt;
    if (logged_destinations_.count(to) > 0 && !query.questions.empty()) {
      log_.push_back(QueryLogEntry{from, to, query.questions.front()});
    }
    // RTT first (twice for TCP — connection setup), so the clock reads
    // "query arrived" when the handler runs and issues nested sends.
    const simtime::Duration start = clock_.now();
    trace::Span delivery_span;
    if (tracer_.enabled())
      delivery_span = tracer_.span("net", udp ? "deliver.udp" : "deliver.tcp",
                                   to.to_string());
    const simtime::Duration rtt = latency_.sample(from, to, flow_key_, seq);
    clock_.advance(udp ? rtt : rtt * 2);
    // Service queueing: the destination's worker pool decides when service
    // starts, or sheds the request outright when the backlog is full.
    simtime::QueueAdmission admission;
    simtime::ServiceQueue* queue = nullptr;
    if (const simtime::QueueModel* model = queue_model_for(to)) {
      queue = &queue_state(to, *model);
      admission = queue->admit(clock_.now());
      if (!admission.admitted) {
        ++queue_counters_.dropped;
        if (model->shed == simtime::QueueModel::Shed::kDrop) {
          // Like a lost datagram: nothing was served, the waiting is the
          // client's (simnet/exchange.hpp). Nothing ran since `start`, so
          // rewinding cannot disturb any other delivery frame.
          clock_.set(start);
          return std::nullopt;
        }
        dns::Message shed = dns::Message::make_response(query);
        shed.header.rcode = dns::Rcode::kServFail;
        if (shed.edns) {
          shed.edns->add_ede(dns::EdeCode::kNetworkError, "server overloaded");
        }
        last_elapsed_ = clock_.now() - start;
        return shed;
      }
      clock_.advance(admission.wait);
      ++queue_counters_.admitted;
      if (!admission.wait.zero()) {
        ++queue_counters_.delayed;
        queue_counters_.wait_ns +=
            static_cast<std::uint64_t>(admission.wait.nanos());
        if (queue->counters().max_backlog > queue_counters_.max_backlog)
          queue_counters_.max_backlog = queue->counters().max_backlog;
      }
    }
    // Attribute hash work done inside the receiving node's handler to the
    // receiver, so callers can report their own validation cost net of the
    // (synchronous, same-thread) server-side proof construction.
    const std::uint64_t before = crypto::CostMeter::sha1_blocks();
    const std::uint64_t charged_before = service_charged_blocks_;
    auto response = it->second(query, from);
    const std::uint64_t delta = crypto::CostMeter::sha1_blocks() - before;
    receiver_sha1_blocks_ += delta;
    // Service time charges each handler's *own* blocks exactly once: the
    // delta includes work nested deliveries already converted to delay
    // while this handler ran, so subtract what was charged in between.
    const std::uint64_t nested = service_charged_blocks_ - charged_before;
    const std::uint64_t own = delta > nested ? delta - nested : 0;
    service_charged_blocks_ += own;
    clock_.advance(service_.cost(own));
    if (queue) {
      // The slot is occupied from service start to completion — including
      // nested upstream waits, exactly like a recursion-in-progress holds
      // a resolver worker context.
      queue->complete(admission, clock_.now());
      queue_counters_.busy_ns +=
          static_cast<std::uint64_t>((clock_.now() - admission.start).nanos());
    }
    last_elapsed_ = clock_.now() - start;
    if (response && tamper_ && tamper_(*response, to, from)) ++tampered_;
    return response;
  }

  /// The queue model governing `to`: a per-address override wins (an
  /// inactive override exempts the address), else the network default;
  /// nullptr when no active model applies.
  const simtime::QueueModel* queue_model_for(const IpAddress& to) const {
    const auto it = queue_overrides_.find(to);
    const simtime::QueueModel& model =
        it != queue_overrides_.end() ? it->second : queue_model_;
    return model.active() ? &model : nullptr;
  }

  /// Live queue state for `to` this epoch (created idle on first use).
  simtime::ServiceQueue& queue_state(const IpAddress& to,
                                     const simtime::QueueModel& model) {
    auto it = queues_.find(to);
    if (it == queues_.end()) {
      it = queues_.emplace(to, simtime::ServiceQueue(model)).first;
      it->second.set_tracer(&tracer_);
    }
    return it->second;
  }

  std::unordered_map<IpAddress, MessageHandler, IpAddressHash> nodes_;
  std::unordered_map<IpAddress, bool, IpAddressHash> logged_destinations_;
  std::vector<QueryLogEntry> log_;
  std::uint64_t queries_sent_ = 0;
  std::uint64_t receiver_sha1_blocks_ = 0;
  std::uint64_t truncations_ = 0;
  std::uint64_t tcp_queries_ = 0;
  TamperHook tamper_;
  std::uint64_t tampered_ = 0;
  double loss_probability_ = 0.0;
  std::uint64_t loss_seed_ = 1;
  std::uint64_t flow_key_ = 0;
  std::uint64_t flow_seq_ = 0;
  simtime::Clock clock_;
  simtime::LatencyModel latency_;
  simtime::ServiceModel service_;
  simtime::Duration last_elapsed_;
  std::uint64_t service_charged_blocks_ = 0;
  simtime::QueueModel queue_model_;
  std::unordered_map<IpAddress, simtime::QueueModel, IpAddressHash>
      queue_overrides_;
  /// Live per-destination queue state for the current epoch only;
  /// queue_counters_ accumulates across epochs.
  std::unordered_map<IpAddress, simtime::ServiceQueue, IpAddressHash> queues_;
  simtime::QueueCounters queue_counters_;
  /// Outcomes of send_async() deliveries awaiting consumption (FIFO).
  std::deque<CompletionEvent> completions_;
  /// Adapts the virtual clock to the trace::TimeSource interface, so trace
  /// timestamps are virtual time by construction. Declared after clock_.
  struct ClockTimeSource final : trace::TimeSource {
    explicit ClockTimeSource(const simtime::Clock* clock_in)
        : clock(clock_in) {}
    std::int64_t now_ns() const override { return clock->now().nanos(); }
    const simtime::Clock* clock;
  };
  ClockTimeSource clock_source_{&clock_};
  trace::Tracer tracer_{&clock_source_};
#ifdef ZH_SIMNET_THREAD_CHECKS
  mutable std::atomic<std::thread::id> owner_thread_{};
#endif
};

}  // namespace zh::simnet
