// The simulated Internet: a registry of addressable DNS nodes and a
// synchronous query transport with loss injection and server-side logging —
// the measurement infrastructure the paper runs on (their authoritative
// servers log source IPs to detect forwarders, §4.2).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <random>
#include <unordered_map>
#include <vector>

#include "crypto/cost_meter.hpp"
#include "dns/message.hpp"
#include "simnet/address.hpp"

namespace zh::simnet {

/// A node's query handler: query + source address → response (nullopt means
/// the node drops the query).
using MessageHandler = std::function<std::optional<dns::Message>(
    const dns::Message&, const IpAddress& source)>;

/// One server-side log line.
struct QueryLogEntry {
  IpAddress source;
  IpAddress destination;
  dns::Question question;
};

/// On-path tampering hook: may mutate a response in flight (returns true if
/// it touched the message). Models the downgrade attacker of RFC 9276
/// Item 12 / RFC 5155 §12.1.1.
using TamperHook = std::function<bool(dns::Message& response,
                                      const IpAddress& from,
                                      const IpAddress& to)>;

/// The network. Single-threaded and deterministic: queries are synchronous
/// calls, loss is driven by a seeded RNG.
class Network {
 public:
  /// Registers a node. Re-attaching an address replaces its handler.
  void attach(const IpAddress& address, MessageHandler handler) {
    nodes_[address] = std::move(handler);
  }

  void detach(const IpAddress& address) { nodes_.erase(address); }

  bool is_attached(const IpAddress& address) const {
    return nodes_.count(address) > 0;
  }

  std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Sends a query over simulated UDP; returns the response or nullopt on
  /// unreachable destination / simulated loss. Responses larger than the
  /// client's advertised EDNS buffer (or 512 bytes without EDNS) come back
  /// truncated: empty sections with the TC bit set (RFC 1035 §4.2.1 /
  /// RFC 6891 §4.3) — the caller must retry over TCP via send_tcp().
  std::optional<dns::Message> send(const IpAddress& from, const IpAddress& to,
                                   const dns::Message& query) {
    auto response = deliver(from, to, query);
    if (!response) return std::nullopt;
    const std::size_t buffer_size =
        query.edns ? query.edns->udp_payload_size : 512;
    if (response->to_wire().size() > buffer_size) {
      dns::Message truncated = dns::Message::make_response(query);
      truncated.header.rcode = response->header.rcode;
      truncated.header.aa = response->header.aa;
      truncated.header.tc = true;
      ++truncations_;
      return truncated;
    }
    return response;
  }

  /// Sends over simulated TCP: no size limit, no truncation.
  std::optional<dns::Message> send_tcp(const IpAddress& from,
                                       const IpAddress& to,
                                       const dns::Message& query) {
    ++tcp_queries_;
    return deliver(from, to, query);
  }

  std::uint64_t truncations() const noexcept { return truncations_; }
  std::uint64_t tcp_queries() const noexcept { return tcp_queries_; }

  /// Installs (or clears, with nullptr) the on-path attacker.
  void set_tamper(TamperHook hook) { tamper_ = std::move(hook); }
  std::uint64_t tampered_responses() const noexcept { return tampered_; }

  /// Cumulative SHA-1 blocks spent inside node handlers during send().
  std::uint64_t receiver_sha1_blocks() const noexcept {
    return receiver_sha1_blocks_;
  }

  /// Enables the paper's server-side logging for one destination.
  void enable_logging_for(const IpAddress& destination) {
    logged_destinations_.insert({destination, true});
  }

  const std::vector<QueryLogEntry>& query_log() const noexcept { return log_; }
  void clear_query_log() { log_.clear(); }

  std::uint64_t queries_sent() const noexcept { return queries_sent_; }

  /// Uniform random loss on every send (0 disables; deterministic by seed).
  void set_loss(double probability, std::uint64_t seed = 1) {
    loss_probability_ = probability;
    loss_rng_.seed(seed);
  }

 private:
  std::optional<dns::Message> deliver(const IpAddress& from,
                                      const IpAddress& to,
                                      const dns::Message& query) {
    ++queries_sent_;
    if (loss_probability_ > 0.0 &&
        loss_dist_(loss_rng_) < loss_probability_)
      return std::nullopt;
    const auto it = nodes_.find(to);
    if (it == nodes_.end()) return std::nullopt;
    if (logged_destinations_.count(to) > 0 && !query.questions.empty()) {
      log_.push_back(QueryLogEntry{from, to, query.questions.front()});
    }
    // Attribute hash work done inside the receiving node's handler to the
    // receiver, so callers can report their own validation cost net of the
    // (synchronous, same-thread) server-side proof construction.
    const std::uint64_t before = crypto::CostMeter::sha1_blocks();
    auto response = it->second(query, from);
    receiver_sha1_blocks_ += crypto::CostMeter::sha1_blocks() - before;
    if (response && tamper_ && tamper_(*response, to, from)) ++tampered_;
    return response;
  }

  std::unordered_map<IpAddress, MessageHandler, IpAddressHash> nodes_;
  std::unordered_map<IpAddress, bool, IpAddressHash> logged_destinations_;
  std::vector<QueryLogEntry> log_;
  std::uint64_t queries_sent_ = 0;
  std::uint64_t receiver_sha1_blocks_ = 0;
  std::uint64_t truncations_ = 0;
  std::uint64_t tcp_queries_ = 0;
  TamperHook tamper_;
  std::uint64_t tampered_ = 0;
  double loss_probability_ = 0.0;
  std::mt19937_64 loss_rng_{1};
  std::uniform_real_distribution<double> loss_dist_{0.0, 1.0};
};

}  // namespace zh::simnet
