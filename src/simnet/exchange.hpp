// zdns-style query exchange: retransmission with exponential per-attempt
// timeouts over the simulated network, plus UDP→TCP fallback on truncation.
// This is the client half of the virtual-time layer — the network decides a
// query's fate, the client decides how long to wait and whether to retry.
#pragma once

#include <algorithm>
#include <optional>
#include <utility>

#include "simnet/network.hpp"
#include "simtime/simtime.hpp"

namespace zh::simnet {

/// Outcome of one exchange (a logical query, however many wire attempts).
struct ExchangeOutcome {
  std::optional<dns::Message> response;
  /// Virtual time from the first transmission to the outcome: answered
  /// deliveries' RTT + service time, plus every exhausted attempt timeout.
  simtime::Duration elapsed;
  /// Wire sends spent, including the TCP fallback when it fired.
  unsigned attempts = 0;
  /// Every attempt was lost: the first-class Timeout outcome — the target
  /// exists but the client gave up waiting.
  bool timed_out = false;
  /// The destination is not attached at all; retransmitting cannot help,
  /// so only one attempt is spent and no timeout is accounted.
  bool unreachable = false;
  bool tcp_fallback = false;
};

/// True when a response is a transport-transient SERVFAIL — the resolver
/// marks upstream-timeout and own-deadline failures with RFC 8914 Network
/// Error / No Reachable Authority. Retrying such an exchange may succeed
/// (the resolver does not cache transient outcomes), unlike a deterministic
/// policy SERVFAIL (e.g. RFC 9276 Item 8 with EDE 27), which must be taken
/// at face value.
inline bool transient_servfail(const dns::Message& response) {
  if (response.header.rcode != dns::Rcode::kServFail || !response.edns)
    return false;
  const auto ede = response.edns->ede();
  return ede && (ede->info_code == dns::EdeCode::kNetworkError ||
                 ede->info_code == dns::EdeCode::kNoReachableAuthority);
}

/// Sends `query` with up to `policy.attempts` UDP transmissions. A lost
/// attempt advances the network clock by that attempt's timeout (the
/// client's wait); a truncated answer is refetched over TCP when the
/// policy allows. With zero loss and an attached destination this is
/// behaviourally identical to a single Network::send + TC fallback.
inline ExchangeOutcome exchange(Network& network, const IpAddress& from,
                                const IpAddress& to, const dns::Message& query,
                                const simtime::RetryPolicy& policy = {}) {
  ExchangeOutcome out;
  const simtime::Duration start = network.clock().now();
  const unsigned attempts = std::max(1u, policy.attempts);
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    ++out.attempts;
    // A retry is a retransmission — count it (cold path: only after loss).
    if (attempt > 0) network.tracer().count("client.retransmit");
    auto response = network.send(from, to, query);
    if (!response) {
      if (!network.is_attached(to)) {
        out.unreachable = true;
        out.elapsed = network.clock().now() - start;
        return out;
      }
      network.clock().advance(policy.attempt_timeout(attempt));
      continue;
    }
    if (response->header.tc && policy.tcp_on_truncation) {
      ++out.attempts;
      out.tcp_fallback = true;
      // TCP is loss-exempt in the simulation, so this cannot fail against
      // an attached destination; keep the truncated answer if it ever did.
      if (auto tcp = network.send_tcp(from, to, query)) {
        response = std::move(tcp);
      }
    }
    out.response = std::move(response);
    out.elapsed = network.clock().now() - start;
    return out;
  }
  out.timed_out = true;
  out.elapsed = network.clock().now() - start;
  return out;
}

}  // namespace zh::simnet
