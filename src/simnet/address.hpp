// IPv4/IPv6 addresses for the simulated Internet.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

namespace zh::simnet {

/// An IP address (either family), value type.
class IpAddress {
 public:
  IpAddress() = default;

  static IpAddress v4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                      std::uint8_t d) {
    IpAddress addr;
    addr.v6_ = false;
    addr.bytes_ = {a, b, c, d};
    return addr;
  }

  /// IPv6 from eight 16-bit groups.
  static IpAddress v6(std::array<std::uint16_t, 8> groups) {
    IpAddress addr;
    addr.v6_ = true;
    for (int i = 0; i < 8; ++i) {
      addr.bytes_[static_cast<std::size_t>(2 * i)] =
          static_cast<std::uint8_t>(groups[static_cast<std::size_t>(i)] >> 8);
      addr.bytes_[static_cast<std::size_t>(2 * i + 1)] =
          static_cast<std::uint8_t>(groups[static_cast<std::size_t>(i)]);
    }
    return addr;
  }

  /// From raw address bytes (4 for IPv4, 16 for IPv6) — e.g. A/AAAA rdata.
  static IpAddress from_bytes(bool v6, const std::uint8_t* data) {
    IpAddress addr;
    addr.v6_ = v6;
    for (std::size_t i = 0; i < (v6 ? 16u : 4u); ++i) addr.bytes_[i] = data[i];
    return addr;
  }

  /// Deterministic address allocator: index → unique address per family.
  /// IPv4 addresses land in 10.0.0.0/8-style space; IPv6 in 2001:db8::/32
  /// (the documentation prefix), so logs are visibly synthetic.
  static IpAddress from_index(bool v6, std::uint32_t index) {
    if (!v6) {
      return v4(10, static_cast<std::uint8_t>(index >> 16),
                static_cast<std::uint8_t>(index >> 8),
                static_cast<std::uint8_t>(index));
    }
    return IpAddress::v6({0x2001, 0x0db8,
                          static_cast<std::uint16_t>(index >> 16),
                          static_cast<std::uint16_t>(index), 0, 0, 0, 1});
  }

  bool is_v6() const noexcept { return v6_; }

  /// Raw bytes: first 4 meaningful for IPv4, all 16 for IPv6.
  const std::array<std::uint8_t, 16>& raw() const noexcept { return bytes_; }

  std::string to_string() const {
    char buf[48];
    if (!v6_) {
      std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", bytes_[0], bytes_[1],
                    bytes_[2], bytes_[3]);
    } else {
      std::snprintf(buf, sizeof buf, "%x:%x:%x:%x:%x:%x:%x:%x",
                    (bytes_[0] << 8) | bytes_[1], (bytes_[2] << 8) | bytes_[3],
                    (bytes_[4] << 8) | bytes_[5], (bytes_[6] << 8) | bytes_[7],
                    (bytes_[8] << 8) | bytes_[9],
                    (bytes_[10] << 8) | bytes_[11],
                    (bytes_[12] << 8) | bytes_[13],
                    (bytes_[14] << 8) | bytes_[15]);
    }
    return buf;
  }

  bool operator==(const IpAddress& other) const noexcept {
    return v6_ == other.v6_ && bytes_ == other.bytes_;
  }
  bool operator<(const IpAddress& other) const noexcept {
    if (v6_ != other.v6_) return !v6_;
    return bytes_ < other.bytes_;
  }

  std::size_t hash() const noexcept {
    std::size_t h = v6_ ? 0x9e3779b97f4a7c15ull : 0;
    for (const std::uint8_t b : bytes_) h = h * 1099511628211ull + b;
    return h;
  }

 private:
  bool v6_ = false;
  std::array<std::uint8_t, 16> bytes_{};
};

struct IpAddressHash {
  std::size_t operator()(const IpAddress& a) const noexcept {
    return a.hash();
  }
};

}  // namespace zh::simnet
