// Concurrent clients over the single-threaded simulated network.
//
// The network is strictly synchronous — one delivery at a time — but the
// DoS story (CVE-2023-50868, docs/ARCHITECTURE.md "Queueing & overload")
// needs K clients probing one destination *at the same virtual time* so
// their requests contend for its worker slots. concurrent_exchange gets
// there without threads: it multiplexes K logical client timelines over
// one Network by rewinding the clock to each client's staggered arrival
// instant before running its exchange, while the destination's queue state
// persists across clients (QueueEpoch::kJoin). Each client's waits are
// measured on its own timeline; the batch ends at the latest completion.
//
// Determinism: client order is the caller's vector order, arrival instants
// are explicit offsets, and every latency/loss draw is keyed on the
// client's flow — nothing depends on wall time or interleaving. Queue
// admissions happen in client order; pass nondecreasing offsets for a
// faithful arrival-ordered FIFO.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/exchange.hpp"
#include "simnet/network.hpp"
#include "simtime/simtime.hpp"

namespace zh::simnet {

/// One logical client in a concurrent batch.
struct BatchClient {
  IpAddress source;
  dns::Message query;
  /// Flow key for this client's latency/loss/jitter draws (jitter is
  /// deliberately client-address-free, so distinct flows are what gives
  /// clients independent transport fates — see docs/DETERMINISM.md).
  std::uint64_t flow = 0;
  /// Arrival instant relative to the batch epoch. Staggered arrivals are
  /// what make contention depend on service time: a backlog builds only
  /// when the per-request service time exceeds the arrival spacing times
  /// the worker count.
  simtime::Duration offset;
};

/// The batch outcome: per-client results (input order) plus the makespan.
struct BatchResult {
  std::vector<ExchangeOutcome> outcomes;
  /// Per-client service-queue waiting time (network counter delta across
  /// the client's exchange, so retransmitted attempts are included).
  std::vector<simtime::Duration> queue_waits;
  /// Per-client deliveries shed by a saturated queue.
  std::vector<std::uint64_t> queue_drops;
  /// Batch epoch to the last client's completion — the virtual wall-clock
  /// span the utilisation counters are measured against.
  simtime::Duration makespan;
};

/// Runs every client's exchange against `to` within one queue epoch. The
/// clock is rewound to (epoch + offset) per client, so clients overlap in
/// virtual time even though the simulation serves them sequentially; on
/// return the clock rests at the latest completion. The last client's flow
/// label remains installed — callers start their next item with set_flow()
/// as usual (which also ends the batch's queue epoch).
inline BatchResult concurrent_exchange(Network& network, const IpAddress& to,
                                       const std::vector<BatchClient>& clients,
                                       const simtime::RetryPolicy& policy = {}) {
  BatchResult result;
  result.outcomes.reserve(clients.size());
  result.queue_waits.reserve(clients.size());
  result.queue_drops.reserve(clients.size());
  const simtime::Duration epoch = network.clock().now();
  network.end_queue_epoch();
  simtime::Duration last_completion = epoch;
  for (const BatchClient& client : clients) {
    network.clock().set(epoch + client.offset);
    network.set_flow(client.flow, Network::QueueEpoch::kJoin);
    const simtime::QueueCounters before = network.queue_counters();
    result.outcomes.push_back(
        exchange(network, client.source, to, client.query, policy));
    const simtime::QueueCounters& after = network.queue_counters();
    result.queue_waits.push_back(simtime::Duration::from_ns(
        static_cast<std::int64_t>(after.wait_ns - before.wait_ns)));
    result.queue_drops.push_back(after.dropped - before.dropped);
    if (network.clock().now() > last_completion)
      last_completion = network.clock().now();
  }
  network.clock().set(last_completion);
  result.makespan = last_completion - epoch;
  return result;
}

}  // namespace zh::simnet
