// Tests for presentation-format zone I/O: per-type record parsing, error
// handling, and full round trips of signed zones (NSEC and NSEC3) through
// text — including that a reparsed zone answers queries identically.
#include <gtest/gtest.h>

#include <memory>

#include "dns/dnssec.hpp"
#include "server/auth_server.hpp"
#include "zone/signer.hpp"
#include "zone/zonefile.hpp"

namespace zh::zone {
namespace {

using dns::Name;
using dns::ResourceRecord;
using dns::RrType;

std::optional<ResourceRecord> parse(const std::string& line) {
  std::string error;
  auto record = parse_record_line(line, &error);
  EXPECT_TRUE(record) << error << " for: " << line;
  return record;
}

TEST(ZonefileRecord, ParsesA) {
  const auto rr = parse("www.example.com. 300 IN A 192.0.2.80");
  ASSERT_TRUE(rr);
  EXPECT_EQ(rr->type, RrType::kA);
  EXPECT_EQ(rr->ttl, 300u);
  EXPECT_EQ(rr->as<dns::ARdata>()->to_string(), "192.0.2.80");
}

TEST(ZonefileRecord, ParsesAaaa) {
  const auto rr = parse("host.example.com. 60 IN AAAA 2001:db8:0:0:0:0:0:1");
  ASSERT_TRUE(rr);
  EXPECT_EQ(rr->as<dns::AaaaRdata>()->to_string(), "2001:db8:0:0:0:0:0:1");
}

TEST(ZonefileRecord, ParsesSoa) {
  const auto rr = parse(
      "example.com. 3600 IN SOA ns1.example.com. hostmaster.example.com. "
      "2024031501 7200 3600 1209600 3600");
  ASSERT_TRUE(rr);
  const auto soa = rr->as<dns::SoaRdata>();
  ASSERT_TRUE(soa);
  EXPECT_EQ(soa->serial, 2024031501u);
  EXPECT_EQ(soa->minimum, 3600u);
}

TEST(ZonefileRecord, ParsesTxtWithSpaces) {
  const auto rr = parse("t.example.com. 60 IN TXT \"hello world\" \"x\"");
  ASSERT_TRUE(rr);
  const auto txt = rr->as<dns::TxtRdata>();
  ASSERT_TRUE(txt);
  ASSERT_EQ(txt->strings.size(), 2u);
  EXPECT_EQ(txt->strings[0], "hello world");
}

TEST(ZonefileRecord, ParsesNsec3WithAndWithoutSalt) {
  const auto salted = parse(
      "0p9mhaveqvm6t7vbl5lop2u3t2rp3tom.example.com. 3600 IN NSEC3 1 1 12 "
      "aabbccdd 35mthgpgcu1qg68fab165klnsnk3dpvl A RRSIG");
  ASSERT_TRUE(salted);
  const auto rdata = salted->as<dns::Nsec3Rdata>();
  ASSERT_TRUE(rdata);
  EXPECT_EQ(rdata->iterations, 12);
  EXPECT_TRUE(rdata->opt_out());
  EXPECT_EQ(rdata->salt.size(), 4u);
  EXPECT_TRUE(rdata->types.contains(RrType::kA));

  const auto saltless = parse(
      "0p9mhaveqvm6t7vbl5lop2u3t2rp3tom.example.com. 3600 IN NSEC3 1 0 0 "
      "- 35mthgpgcu1qg68fab165klnsnk3dpvl NS SOA");
  ASSERT_TRUE(saltless);
  EXPECT_TRUE(saltless->as<dns::Nsec3Rdata>()->salt.empty());
}

TEST(ZonefileRecord, ParsesNsec3Param) {
  const auto rr = parse("example.com. 0 IN NSEC3PARAM 1 0 5 abcd");
  ASSERT_TRUE(rr);
  EXPECT_EQ(rr->as<dns::Nsec3ParamRdata>()->iterations, 5);
}

TEST(ZonefileRecord, RejectsMalformedLines) {
  std::string error;
  EXPECT_FALSE(parse_record_line("", &error));
  EXPECT_FALSE(parse_record_line("www.example.com. 300 IN", &error));
  EXPECT_FALSE(parse_record_line("www.example.com. 300 CH A 1.2.3.4",
                                 &error));
  EXPECT_NE(error.find("class IN"), std::string::npos);
  EXPECT_FALSE(parse_record_line("www.example.com. x IN A 1.2.3.4", &error));
  EXPECT_FALSE(
      parse_record_line("www.example.com. 300 IN A 1.2.3.999", &error));
  EXPECT_FALSE(
      parse_record_line("www.example.com. 300 IN BOGUS foo", &error));
  EXPECT_FALSE(parse_record_line(
      "h.example.com. 60 IN TXT \"unterminated", &error));
}

TEST(ZonefileRecord, EveryToStringFormParses) {
  // Round-trip each typed record through to_string → parse_record_line.
  std::vector<ResourceRecord> records;
  records.push_back(dns::make_a(Name::must_parse("a.example"), 60, 1, 2, 3, 4));
  records.push_back(dns::make_ns(Name::must_parse("example"), 60,
                                 Name::must_parse("ns1.example")));
  records.push_back(dns::make_txt(Name::must_parse("t.example"), 60, "hi"));
  records.push_back(dns::make_soa(Name::must_parse("example"), 60,
                                  Name::must_parse("ns1.example"), 7));
  {
    dns::MxRdata mx;
    mx.preference = 10;
    mx.exchange = Name::must_parse("mail.example");
    records.push_back(ResourceRecord::make(Name::must_parse("example"),
                                           RrType::kMx, 60, mx));
  }
  {
    dns::CnameRdata cname;
    cname.target = Name::must_parse("target.example");
    records.push_back(ResourceRecord::make(Name::must_parse("al.example"),
                                           RrType::kCname, 60, cname));
  }
  {
    dns::DnskeyRdata key = derive_dnskey("example", true);
    records.push_back(ResourceRecord::make(Name::must_parse("example"),
                                           RrType::kDnskey, 60, key));
    records.push_back(ResourceRecord::make(
        Name::must_parse("example"), RrType::kDs, 60,
        dns::make_ds(Name::must_parse("example"), key)));
  }
  {
    dns::NsecRdata nsec;
    nsec.next_domain = Name::must_parse("b.example");
    nsec.types = dns::TypeBitmap({RrType::kA, RrType::kRrsig});
    records.push_back(ResourceRecord::make(Name::must_parse("a.example"),
                                           RrType::kNsec, 60, nsec));
  }
  for (const auto& rr : records) {
    std::string error;
    const auto parsed = parse_record_line(rr.to_string(), &error);
    ASSERT_TRUE(parsed) << error << " for " << rr.to_string();
    EXPECT_TRUE(*parsed == rr) << rr.to_string();
  }
}

Zone signed_zone(DenialMode denial) {
  Zone zone(Name::must_parse("roundtrip.example"));
  zone.add(dns::make_soa(zone.apex(), 3600,
                         Name::must_parse("ns1.roundtrip.example"), 5));
  zone.add(dns::make_ns(zone.apex(), 3600,
                        Name::must_parse("ns1.roundtrip.example")));
  zone.add(dns::make_a(Name::must_parse("ns1.roundtrip.example"), 3600, 192,
                       0, 2, 53));
  zone.add(dns::make_a(Name::must_parse("www.roundtrip.example"), 300, 192,
                       0, 2, 80));
  zone.add(dns::make_a(
      Name::must_parse("wc.roundtrip.example").wildcard_child(), 300, 192, 0,
      2, 90));
  SignerConfig config;
  config.denial = denial;
  config.nsec3.iterations = 3;
  config.nsec3.salt = {0xbe, 0xef};
  sign_zone(zone, config);
  return zone;
}

TEST(ZonefileZone, SignedNsec3ZoneRoundTripsExactly) {
  const Zone original = signed_zone(DenialMode::kNsec3);
  const std::string text = original.to_text();

  std::string error;
  const auto parsed =
      parse_zone_text(text, original.apex(), &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(parsed->to_text(), text) << "round trip must be lossless";
  ASSERT_EQ(parsed->nsec3_entries().size(), original.nsec3_entries().size());
  for (std::size_t i = 0; i < parsed->nsec3_entries().size(); ++i) {
    EXPECT_EQ(parsed->nsec3_entries()[i].hash,
              original.nsec3_entries()[i].hash);
    EXPECT_FALSE(parsed->nsec3_entries()[i].rrsigs.empty());
  }
  ASSERT_TRUE(parsed->nsec3_params_used());
  EXPECT_EQ(parsed->nsec3_params_used()->iterations, 3);
}

TEST(ZonefileZone, SignedNsecZoneRoundTripsExactly) {
  const Zone original = signed_zone(DenialMode::kNsec);
  const std::string text = original.to_text();
  std::string error;
  const auto parsed = parse_zone_text(text, original.apex(), &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(parsed->to_text(), text);
}

TEST(ZonefileZone, ReparsedZoneAnswersIdentically) {
  auto original = std::make_shared<Zone>(signed_zone(DenialMode::kNsec3));
  auto reparsed = std::make_shared<Zone>(
      *parse_zone_text(original->to_text(), original->apex()));

  server::AuthoritativeServer server_a("a");
  server_a.add_zone(original);
  server::AuthoritativeServer server_b("b");
  server_b.add_zone(reparsed);

  const auto source = simnet::IpAddress::v4(198, 51, 100, 1);
  for (const char* qname :
       {"www.roundtrip.example", "nope.roundtrip.example",
        "x.wc.roundtrip.example", "roundtrip.example"}) {
    for (const RrType qtype : {RrType::kA, RrType::kDnskey, RrType::kTxt}) {
      const auto query = dns::Message::make_query(
          1, Name::must_parse(qname), qtype, /*dnssec_ok=*/true);
      const auto ra = server_a.handle(query, source);
      const auto rb = server_b.handle(query, source);
      EXPECT_EQ(ra.to_wire(), rb.to_wire())
          << qname << " " << dns::to_string(qtype);
    }
  }
}

TEST(ZonefileZone, ParseErrorsCarryLineNumbers) {
  std::string error;
  const auto zone = parse_zone_text(
      "roundtrip.example. 60 IN A 192.0.2.1\nbroken line here\n",
      Name::must_parse("roundtrip.example"), &error);
  EXPECT_FALSE(zone);
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(ZonefileZone, RejectsOutOfZoneRecords) {
  std::string error;
  const auto zone = parse_zone_text(
      "other.example. 60 IN A 192.0.2.1\n",
      Name::must_parse("roundtrip.example"), &error);
  EXPECT_FALSE(zone);
  EXPECT_NE(error.find("outside zone"), std::string::npos);
}

TEST(ZonefileZone, SkipsCommentsAndBlankLines) {
  const auto zone = parse_zone_text(
      "; a comment\n"
      "\n"
      "roundtrip.example. 60 IN A 192.0.2.1\n",
      Name::must_parse("roundtrip.example"));
  ASSERT_TRUE(zone);
  EXPECT_EQ(zone->record_count(), 1u);
}

}  // namespace
}  // namespace zh::zone
