// Engine-equivalence suite for the async scan engine
// (scanner/async_engine.hpp): the tentpole promise is that --engine async
// produces BYTE-IDENTICAL campaign artefacts to the blocking engine — not
// merely equal aggregates — for every tested transport shape (clean, loss +
// jitter + service time, queueing, event tracing), every jobs value, and
// composed with process-level sub-sharding. The oracle is the canonical
// shard codec (scanner/serialize.hpp): two runs agree iff their encoded
// artefacts are the same bytes, which covers stats, ECDF histograms,
// per-domain records, query counts and the hash-work tally at once.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "scanner/parallel.hpp"
#include "scanner/process.hpp"
#include "scanner/serialize.hpp"
#include "workload/resolver_population.hpp"

namespace zh::scanner {
namespace {

/// Canonical bytes of a campaign result under a FIXED envelope header, so
/// two results compare payload-for-payload regardless of how they were
/// sharded. `with_cost` is dropped only where world-construction hashing
/// legitimately differs between the two runs being compared.
std::vector<std::uint8_t> campaign_bytes(const ParallelCampaignResult& result,
                                         bool with_cost = true) {
  DomainShardArtefact artefact;
  artefact.tag = "equiv";
  artefact.shard = 0;
  artefact.of = 1;
  artefact.jobs = 1;
  artefact.stats = result.stats;
  artefact.records = result.records;
  artefact.queries_issued = result.queries_issued;
  if (with_cost) artefact.cost = result.cost;
  return encode_artefact(artefact);
}

std::vector<std::uint8_t> sweep_bytes(const ParallelSweepResult& result) {
  SweepShardArtefact artefact;
  artefact.tag = "equiv";
  artefact.shard = 0;
  artefact.of = 1;
  artefact.jobs = 1;
  artefact.stats = result.stats;
  artefact.queries_issued = result.queries_issued;
  artefact.population = result.population;
  artefact.cost = result.cost;
  return encode_artefact(artefact);
}

/// Field-by-field diagnosis for when the byte oracle fails — a raw byte
/// mismatch says nothing about WHICH aggregate diverged.
void expect_same_stats(const DomainCampaignStats& a,
                       const DomainCampaignStats& b) {
  EXPECT_EQ(a.scanned, b.scanned);
  EXPECT_EQ(a.dnssec, b.dnssec);
  EXPECT_EQ(a.nsec3, b.nsec3);
  EXPECT_EQ(a.excluded, b.excluded);
  EXPECT_EQ(a.iterations.histogram(), b.iterations.histogram());
  EXPECT_EQ(a.salt_len.histogram(), b.salt_len.histogram());
  EXPECT_EQ(a.operators.raw(), b.operators.raw());
  EXPECT_EQ(a.scan_latency_us.histogram(), b.scan_latency_us.histogram());
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.queue_delay_us.histogram(), b.queue_delay_us.histogram());
  EXPECT_EQ(a.queue_drops, b.queue_drops);
  EXPECT_EQ(a.stage_resolve_us.histogram(), b.stage_resolve_us.histogram());
  EXPECT_EQ(a.stage_recurse_us.histogram(), b.stage_recurse_us.histogram());
  EXPECT_EQ(a.stage_validate_us.histogram(),
            b.stage_validate_us.histogram());
  EXPECT_EQ(a.stage_queue_wait_us.histogram(),
            b.stage_queue_wait_us.histogram());
}

void expect_same_sweep(const ResolverSweepStats& a,
                       const ResolverSweepStats& b) {
  EXPECT_EQ(a.probed, b.probed);
  EXPECT_EQ(a.validators, b.validators);
  ASSERT_EQ(a.by_iteration.size(), b.by_iteration.size());
  for (const auto& [iterations, shares] : a.by_iteration) {
    const auto it = b.by_iteration.find(iterations);
    ASSERT_NE(it, b.by_iteration.end()) << iterations;
    EXPECT_EQ(shares.nxdomain, it->second.nxdomain) << iterations;
    EXPECT_EQ(shares.servfail, it->second.servfail) << iterations;
    EXPECT_EQ(shares.timeouts, it->second.timeouts) << iterations;
    EXPECT_EQ(shares.total, it->second.total) << iterations;
  }
  EXPECT_EQ(a.item6, b.item6);
  EXPECT_EQ(a.item8, b.item8);
  EXPECT_EQ(a.item7_violations, b.item7_violations);
  EXPECT_EQ(a.insecure_limits, b.insecure_limits);
  EXPECT_EQ(a.servfail_limits, b.servfail_limits);
  EXPECT_EQ(a.probe_latency_us.histogram(), b.probe_latency_us.histogram());
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.stop_answering, b.stop_answering);
  EXPECT_EQ(a.queue_delay_us.histogram(), b.queue_delay_us.histogram());
  EXPECT_EQ(a.queue_drops, b.queue_drops);
}

/// The full virtual-time stack (loss + jitter + service cost), same shape
/// the parallel-campaign invariance tests use.
ParallelOptions time_shaped_options(unsigned jobs) {
  ParallelOptions options{.jobs = jobs, .base_seed = 42};
  options.loss_probability = 0.1;
  options.retry.attempts = 6;  // absorbs 10 % loss: P(miss) = 1e-6
  options.latency = simtime::LatencyModel(simtime::Duration::from_ms(20),
                                          simtime::Duration::from_ms(5),
                                          /*seed=*/42);
  options.service = {.per_sha1_block = simtime::Duration::from_us(1)};
  return options;
}

void expect_engines_byte_identical(const workload::EcosystemSpec& spec,
                                   const ShardWorldFactory& factory,
                                   ParallelOptions options) {
  options.engine = Engine::kBlocking;
  const ParallelCampaignResult blocking =
      run_domain_campaign_parallel(spec, factory, options);
  options.engine = Engine::kAsync;
  const ParallelCampaignResult async =
      run_domain_campaign_parallel(spec, factory, options);

  EXPECT_GT(blocking.stats.scanned, 0u);
  expect_same_stats(blocking.stats, async.stats);
  EXPECT_EQ(blocking.queries_issued, async.queries_issued);
  EXPECT_EQ(campaign_bytes(blocking), campaign_bytes(async));
}

// ISSUE acceptance: the async engine's campaign output is byte-identical
// to the blocking engine's on a clean network, at every jobs value.
TEST(AsyncEngineEquivalence, PlainCampaignBytesMatchBlocking) {
  const workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  const auto factory = default_world_factory(spec);
  for (const unsigned jobs : {1u, 2u, 4u}) {
    SCOPED_TRACE(jobs);
    expect_engines_byte_identical(spec, factory,
                                  {.jobs = jobs, .base_seed = 42});
  }
}

// The in-flight window size must not be observable: a window of 1 (fully
// serial), a tiny window of 3 (dense interleaving, constant slot churn)
// and the default 1024 all produce the same bytes.
TEST(AsyncEngineEquivalence, WindowSizeIsUnobservable) {
  const workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  const auto factory = default_world_factory(spec);

  ParallelOptions options = time_shaped_options(1);
  options.limit = 200;
  const ParallelCampaignResult blocking =
      run_domain_campaign_parallel(spec, factory, options);
  const std::vector<std::uint8_t> baseline = campaign_bytes(blocking);

  options.engine = Engine::kAsync;
  for (const std::size_t inflight : {std::size_t{1}, std::size_t{3},
                                     std::size_t{1024}}) {
    options.max_inflight = inflight;
    const ParallelCampaignResult async =
        run_domain_campaign_parallel(spec, factory, options);
    SCOPED_TRACE(inflight);
    expect_same_stats(blocking.stats, async.stats);
    EXPECT_EQ(baseline, campaign_bytes(async));
  }
}

// With loss, jitter and service cost all moving the clock, thousands of
// concurrent per-query timelines interleave on the wheel — and the latency
// ECDFs, timeout counts and retransmission totals must still match the
// blocking engine byte-for-byte.
TEST(AsyncEngineEquivalence, TimeShapedCampaignBytesMatch) {
  const workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  const auto factory = default_world_factory(spec);
  for (const unsigned jobs : {1u, 4u}) {
    ParallelOptions options = time_shaped_options(jobs);
    options.limit = 400;
    SCOPED_TRACE(jobs);
    expect_engines_byte_identical(spec, factory, options);
  }
}

// Service queueing on top of the time-shaped stack: per-item waits and
// drops are accrued from counter deltas around each resume, and must sum
// to exactly the blocking engine's whole-item deltas.
TEST(AsyncEngineEquivalence, QueueEnabledCampaignBytesMatch) {
  const workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  const auto factory = default_world_factory(spec);
  for (const unsigned jobs : {1u, 4u}) {
    ParallelOptions options = time_shaped_options(jobs);
    options.limit = 400;
    options.queue = {.workers = 2,
                     .backlog = 8,
                     .shed = simtime::QueueModel::Shed::kServfail};
    SCOPED_TRACE(jobs);
    expect_engines_byte_identical(spec, factory, options);
  }
}

// Event tracing enabled: the tracer's stage totals feed the per-scan stage
// ECDFs, so the delta accounting around resumes is load-bearing here. The
// raw event streams legitimately interleave differently; the aggregated
// artefact must not.
TEST(AsyncEngineEquivalence, TraceEnabledCampaignBytesMatch) {
  const workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  const auto factory = default_world_factory(spec);
  ParallelOptions options = time_shaped_options(2);
  options.limit = 300;
  options.trace.enabled = true;

  options.engine = Engine::kBlocking;
  const ParallelCampaignResult blocking =
      run_domain_campaign_parallel(spec, factory, options);
  options.engine = Engine::kAsync;
  const ParallelCampaignResult async =
      run_domain_campaign_parallel(spec, factory, options);

  EXPECT_GT(blocking.stats.stage_resolve_us.total(), 0u);
  expect_same_stats(blocking.stats, async.stats);
  EXPECT_EQ(campaign_bytes(blocking), campaign_bytes(async));
  // Both engines emitted real event streams (content may interleave).
  EXPECT_GT(blocking.trace.events_emitted(), 0u);
  EXPECT_GT(async.trace.events_emitted(), 0u);
}

// The §4.2 resolver sweep path: ProbeFlow (valid/expired/it-N sweep/Item 7)
// through the async engine, including the limit_dropper cohort whose
// probes time out by design — the hardest timing path to keep identical.
TEST(AsyncEngineEquivalence, TimeShapedSweepBytesMatch) {
  using resolver::ResolverProfile;
  workload::PanelSpec panel;
  panel.panel = workload::Panel::kOpenV4;
  panel.validator_count = 12;
  panel.non_validator_count = 2;
  panel.entries = {
      {ResolverProfile::bind9_2021(), 0.4, ""},
      {ResolverProfile::cloudflare(), 0.3, ""},
      {ResolverProfile::limit_dropper(), 0.3, ""},
  };

  const workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  const auto factory = default_world_factory(spec, /*with_domains=*/false);

  for (const unsigned jobs : {1u, 4u}) {
    ParallelOptions options = time_shaped_options(jobs);
    SCOPED_TRACE(jobs);

    options.engine = Engine::kBlocking;
    const ParallelSweepResult blocking = run_resolver_sweep_parallel(
        panel, factory, "tasync-", 1u << 22, options);
    options.engine = Engine::kAsync;
    const ParallelSweepResult async = run_resolver_sweep_parallel(
        panel, factory, "tasync-", 1u << 22, options);

    EXPECT_EQ(blocking.stats.validators, 12u);
    EXPECT_GT(blocking.stats.stop_answering, 0u);  // droppers really time out
    expect_same_sweep(blocking.stats, async.stats);
    EXPECT_EQ(blocking.queries_issued, async.queries_issued);
    EXPECT_EQ(sweep_bytes(blocking), sweep_bytes(async));
  }
}

// Composition with process-level sub-sharding (--procs): two async
// sub-shard runs, serialised through the real artefact files and merged by
// merge_domain_shards, reproduce the blocking single-process campaign
// byte-for-byte. Each sub-shard runs jobs=1 so the two runs build exactly
// as many worlds as the jobs=2 baseline and the hash-work tally matches
// too, keeping the comparison a FULL artefact byte-compare.
TEST(AsyncEngineEquivalence, ProcsComposedAsyncShardsMergeToBlocking) {
  const workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  const auto factory = default_world_factory(spec);

  ParallelOptions baseline_options = time_shaped_options(2);
  baseline_options.limit = 300;
  const ParallelCampaignResult baseline =
      run_domain_campaign_parallel(spec, factory, baseline_options);

  std::string error;
  const std::string dir = make_shard_dir(error);
  ASSERT_FALSE(dir.empty()) << error;

  std::vector<std::string> paths;
  for (unsigned shard = 0; shard < 2; ++shard) {
    ParallelOptions options = time_shaped_options(1);
    options.limit = 300;
    options.engine = Engine::kAsync;
    options.shard_index = shard;
    options.shard_count = 2;
    const ParallelCampaignResult piece =
        run_domain_campaign_parallel(spec, factory, options);

    DomainShardArtefact artefact;
    artefact.tag = "equiv";
    artefact.shard = shard;
    artefact.of = 2;
    artefact.jobs = 1;
    artefact.stats = piece.stats;
    artefact.records = piece.records;
    artefact.queries_issued = piece.queries_issued;
    artefact.cost = piece.cost;
    const std::vector<std::uint8_t> bytes = encode_artefact(artefact);

    const std::string path =
        dir + "/shard-" + std::to_string(shard) + ".zhsa";
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(file.good()) << path;
    file.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    file.close();
    paths.push_back(path);
  }

  ParallelCampaignResult merged;
  ASSERT_TRUE(merge_domain_shards(paths, "equiv", merged, error)) << error;
  EXPECT_EQ(merged.jobs, 2u);
  expect_same_stats(baseline.stats, merged.stats);
  EXPECT_EQ(baseline.queries_issued, merged.queries_issued);
  EXPECT_EQ(campaign_bytes(baseline), campaign_bytes(merged));
}

}  // namespace
}  // namespace zh::scanner
