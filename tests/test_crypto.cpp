// Unit tests for zh::crypto: FIPS/RFC test vectors for the hash primitives,
// HMAC vectors (RFC 4231/2202), the RFC 5155 Appendix A NSEC3 vectors, and
// the simulated signature scheme.
#include <gtest/gtest.h>

#include <string>

#include "crypto/cost_meter.hpp"
#include "crypto/hmac.hpp"
#include "crypto/nsec3_hash.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha2.hpp"
#include "crypto/signing.hpp"

namespace zh::crypto {
namespace {

template <typename Digest>
std::string hex(const Digest& digest) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (const std::uint8_t b : digest) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

std::vector<std::uint8_t> bytes(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(Sha1, EmptyInput) {
  EXPECT_EQ(hex(Sha1::hash(std::string_view{})),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(hex(Sha1::hash(std::string_view{"abc"})),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(hex(Sha1::hash(std::string_view{
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"})),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex(h.finalize()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const std::string data = "The quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Sha1 h;
    h.update(std::string_view(data).substr(0, split));
    h.update(std::string_view(data).substr(split));
    EXPECT_EQ(hex(h.finalize()),
              "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12")
        << "split at " << split;
  }
}

TEST(Sha1, ExactBlockBoundary) {
  // 64 bytes: padding must spill into a second block.
  const std::string data(64, 'x');
  Sha1 a;
  a.update(data);
  Sha1 b;
  b.update(std::string_view(data).substr(0, 32));
  b.update(std::string_view(data).substr(32));
  EXPECT_EQ(hex(a.finalize()), hex(b.finalize()));
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 h;
  h.update(std::string_view{"garbage"});
  (void)h.finalize();
  h.reset();
  h.update(std::string_view{"abc"});
  EXPECT_EQ(hex(h.finalize()), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha256, EmptyInput) {
  EXPECT_EQ(hex(Sha256::hash(std::string_view{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex(Sha256::hash(std::string_view{"abc"})),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex(Sha256::hash(std::string_view{
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"})),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha224, Abc) {
  const auto data = bytes("abc");
  EXPECT_EQ(hex(Sha224::hash(std::span<const std::uint8_t>(data))),
            "23097d223405d8228642a477bda255b32aadbce4bda0b3f7e36c9da7");
}

TEST(Sha512, Abc) {
  const auto data = bytes("abc");
  EXPECT_EQ(hex(Sha512::hash(std::span<const std::uint8_t>(data))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha384, Abc) {
  const auto data = bytes("abc");
  EXPECT_EQ(hex(Sha384::hash(std::span<const std::uint8_t>(data))),
            "cb00753f45a35e8bb5a03d699ac65007272c32ab0eded1631a8b605a43ff5bed"
            "8086072ba1e7cc2358baeca134c825a7");
}

TEST(Sha512, MillionAs) {
  Sha512 h;
  const auto chunk = bytes(std::string(1000, 'a'));
  for (int i = 0; i < 1000; ++i)
    h.update(std::span<const std::uint8_t>(chunk));
  EXPECT_EQ(hex(h.finalize()),
            "e718483d0ce769644e2e42c7bc15b4638e1f98b13b2044285632a803afa973eb"
            "de0ff244877ea60a4cb0432ce577c31beb009c5c2c49aa2e4eadb217ad8cc09b");
}

// RFC 2202 test case 1 for HMAC-SHA1.
TEST(Hmac, Sha1Rfc2202Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const auto data = bytes("Hi There");
  const auto mac =
      Hmac<Sha1>::mac(std::span<const std::uint8_t>(key),
                      std::span<const std::uint8_t>(data));
  EXPECT_EQ(hex(mac), "b617318655057264e28bc0b6fb378c8ef146be00");
}

// RFC 4231 test case 1 for HMAC-SHA256.
TEST(Hmac, Sha256Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const auto data = bytes("Hi There");
  const auto mac =
      Hmac<Sha256>::mac(std::span<const std::uint8_t>(key),
                        std::span<const std::uint8_t>(data));
  EXPECT_EQ(hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2: key shorter than block, "what do ya want for nothing?"
TEST(Hmac, Sha256Rfc4231Case2) {
  const auto key = bytes("Jefe");
  const auto data = bytes("what do ya want for nothing?");
  const auto mac =
      Hmac<Sha256>::mac(std::span<const std::uint8_t>(key),
                        std::span<const std::uint8_t>(data));
  EXPECT_EQ(hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20-byte 0xaa key, 50 bytes of 0xdd.
TEST(Hmac, Sha256Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> data(50, 0xdd);
  const auto mac =
      Hmac<Sha256>::mac(std::span<const std::uint8_t>(key),
                        std::span<const std::uint8_t>(data));
  EXPECT_EQ(hex(mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than the block size (131 bytes of 0xaa).
TEST(Hmac, Sha256LongKey) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const auto data = bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  const auto mac =
      Hmac<Sha256>::mac(std::span<const std::uint8_t>(key),
                        std::span<const std::uint8_t>(data));
  EXPECT_EQ(hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- NSEC3 hash ---

std::vector<std::uint8_t> wire_name(std::initializer_list<std::string> labels) {
  std::vector<std::uint8_t> out;
  for (const auto& label : labels) {
    out.push_back(static_cast<std::uint8_t>(label.size()));
    out.insert(out.end(), label.begin(), label.end());
  }
  out.push_back(0);
  return out;
}

std::string base32hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdefghijklmnopqrstuv";
  std::string out;
  std::uint32_t bits = 0;
  int nbits = 0;
  for (const std::uint8_t b : data) {
    bits = (bits << 8) | b;
    nbits += 8;
    while (nbits >= 5) {
      nbits -= 5;
      out.push_back(kDigits[(bits >> nbits) & 0x1f]);
    }
  }
  if (nbits > 0) out.push_back(kDigits[(bits << (5 - nbits)) & 0x1f]);
  return out;
}

// RFC 5155 Appendix A: zone "example", salt aabbccdd, 12 iterations.
TEST(Nsec3Hash, Rfc5155AppendixAExample) {
  const std::vector<std::uint8_t> salt = {0xaa, 0xbb, 0xcc, 0xdd};
  const auto owner = wire_name({"example"});
  const auto digest = nsec3_hash(std::span<const std::uint8_t>(owner),
                                 std::span<const std::uint8_t>(salt), 12);
  EXPECT_EQ(base32hex(std::span<const std::uint8_t>(digest.data(), 20)),
            "0p9mhaveqvm6t7vbl5lop2u3t2rp3tom");
}

TEST(Nsec3Hash, Rfc5155AppendixAAExample) {
  const std::vector<std::uint8_t> salt = {0xaa, 0xbb, 0xcc, 0xdd};
  const auto owner = wire_name({"a", "example"});
  const auto digest = nsec3_hash(std::span<const std::uint8_t>(owner),
                                 std::span<const std::uint8_t>(salt), 12);
  EXPECT_EQ(base32hex(std::span<const std::uint8_t>(digest.data(), 20)),
            "35mthgpgcu1qg68fab165klnsnk3dpvl");
}

TEST(Nsec3Hash, ZeroIterationsIsSingleHash) {
  CostMeter::reset();
  const auto owner = wire_name({"www", "example", "com"});
  (void)nsec3_hash(std::span<const std::uint8_t>(owner), {}, 0);
  // name+salt < 55 bytes: exactly one SHA-1 block.
  EXPECT_EQ(CostMeter::sha1_blocks(), 1u);
  EXPECT_EQ(CostMeter::nsec3_hashes(), 1u);
}

TEST(Nsec3Hash, IterationCountScalesWork) {
  const auto owner = wire_name({"www", "example", "com"});
  CostMeter::reset();
  (void)nsec3_hash(std::span<const std::uint8_t>(owner), {}, 0);
  const auto one = CostMeter::sha1_blocks();
  CostMeter::reset();
  (void)nsec3_hash(std::span<const std::uint8_t>(owner), {}, 150);
  const auto many = CostMeter::sha1_blocks();
  EXPECT_EQ(many, one + 150);  // each extra iteration hashes 20B+salt: 1 block
}

TEST(Nsec3Hash, SaltChangesDigest) {
  const auto owner = wire_name({"example", "com"});
  const std::vector<std::uint8_t> salt1 = {0x01};
  const auto d0 = nsec3_hash(std::span<const std::uint8_t>(owner), {}, 5);
  const auto d1 = nsec3_hash(std::span<const std::uint8_t>(owner),
                             std::span<const std::uint8_t>(salt1), 5);
  EXPECT_NE(d0, d1);
}

TEST(Nsec3Hash, IterationChangesDigest) {
  const auto owner = wire_name({"example", "com"});
  const auto d0 = nsec3_hash(std::span<const std::uint8_t>(owner), {}, 0);
  const auto d1 = nsec3_hash(std::span<const std::uint8_t>(owner), {}, 1);
  EXPECT_NE(d0, d1);
}

// --- Simulated signatures ---

TEST(SimSigning, DeterministicDerivation) {
  const SimKey a = SimKey::derive("example.com/zsk");
  const SimKey b = SimKey::derive("example.com/zsk");
  EXPECT_EQ(a.public_key(), b.public_key());
  const SimKey c = SimKey::derive("example.com/ksk");
  EXPECT_NE(a.public_key(), c.public_key());
}

TEST(SimSigning, SignVerifyRoundTrip) {
  const SimKey key = SimKey::derive("example.org/zsk");
  const auto data = bytes("signed rrset bytes");
  const auto sig = key.sign(std::span<const std::uint8_t>(data));
  EXPECT_TRUE(sim_verify(key.public_key(), std::span<const std::uint8_t>(data),
                         std::span<const std::uint8_t>(sig.data(), sig.size())));
}

TEST(SimSigning, TamperedDataFailsVerification) {
  const SimKey key = SimKey::derive("example.org/zsk");
  auto data = bytes("signed rrset bytes");
  const auto sig = key.sign(std::span<const std::uint8_t>(data));
  data[3] ^= 0x01;
  EXPECT_FALSE(sim_verify(key.public_key(), std::span<const std::uint8_t>(data),
                          std::span<const std::uint8_t>(sig.data(), sig.size())));
}

TEST(SimSigning, WrongKeyFailsVerification) {
  const SimKey key = SimKey::derive("example.org/zsk");
  const SimKey other = SimKey::derive("evil.example/zsk");
  const auto data = bytes("signed rrset bytes");
  const auto sig = key.sign(std::span<const std::uint8_t>(data));
  EXPECT_FALSE(
      sim_verify(other.public_key(), std::span<const std::uint8_t>(data),
                 std::span<const std::uint8_t>(sig.data(), sig.size())));
}

TEST(SimSigning, TruncatedSignatureRejected) {
  const SimKey key = SimKey::derive("example.org/zsk");
  const auto data = bytes("payload");
  const auto sig = key.sign(std::span<const std::uint8_t>(data));
  EXPECT_FALSE(sim_verify(key.public_key(), std::span<const std::uint8_t>(data),
                          std::span<const std::uint8_t>(sig.data(), 31)));
}

TEST(CostMeter, ScopedMeasurement) {
  CostMeter::reset();
  Sha1WorkScope scope;
  (void)Sha1::hash(std::string_view{"abc"});
  EXPECT_EQ(scope.elapsed(), 1u);
  (void)Sha1::hash(std::string_view(std::string(200, 'x')));
  EXPECT_GE(scope.elapsed(), 4u);
}

}  // namespace
}  // namespace zh::crypto
