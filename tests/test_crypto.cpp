// Unit tests for zh::crypto: FIPS/RFC test vectors for the hash primitives,
// HMAC vectors (RFC 4231/2202), the RFC 5155 Appendix A NSEC3 vectors, and
// the simulated signature scheme.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "crypto/cost_meter.hpp"
#include "crypto/hmac.hpp"
#include "crypto/nsec3_hash.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha1_mb.hpp"
#include "crypto/sha2.hpp"
#include "crypto/signing.hpp"

namespace zh::crypto {
namespace {

template <typename Digest>
std::string hex(const Digest& digest) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (const std::uint8_t b : digest) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

std::vector<std::uint8_t> bytes(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(Sha1, EmptyInput) {
  EXPECT_EQ(hex(Sha1::hash(std::string_view{})),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(hex(Sha1::hash(std::string_view{"abc"})),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(hex(Sha1::hash(std::string_view{
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"})),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex(h.finalize()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const std::string data = "The quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Sha1 h;
    h.update(std::string_view(data).substr(0, split));
    h.update(std::string_view(data).substr(split));
    EXPECT_EQ(hex(h.finalize()),
              "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12")
        << "split at " << split;
  }
}

TEST(Sha1, ExactBlockBoundary) {
  // 64 bytes: padding must spill into a second block.
  const std::string data(64, 'x');
  Sha1 a;
  a.update(data);
  Sha1 b;
  b.update(std::string_view(data).substr(0, 32));
  b.update(std::string_view(data).substr(32));
  EXPECT_EQ(hex(a.finalize()), hex(b.finalize()));
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 h;
  h.update(std::string_view{"garbage"});
  (void)h.finalize();
  h.reset();
  h.update(std::string_view{"abc"});
  EXPECT_EQ(hex(h.finalize()), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha256, EmptyInput) {
  EXPECT_EQ(hex(Sha256::hash(std::string_view{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex(Sha256::hash(std::string_view{"abc"})),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex(Sha256::hash(std::string_view{
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"})),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha224, Abc) {
  const auto data = bytes("abc");
  EXPECT_EQ(hex(Sha224::hash(std::span<const std::uint8_t>(data))),
            "23097d223405d8228642a477bda255b32aadbce4bda0b3f7e36c9da7");
}

TEST(Sha512, Abc) {
  const auto data = bytes("abc");
  EXPECT_EQ(hex(Sha512::hash(std::span<const std::uint8_t>(data))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha384, Abc) {
  const auto data = bytes("abc");
  EXPECT_EQ(hex(Sha384::hash(std::span<const std::uint8_t>(data))),
            "cb00753f45a35e8bb5a03d699ac65007272c32ab0eded1631a8b605a43ff5bed"
            "8086072ba1e7cc2358baeca134c825a7");
}

TEST(Sha512, MillionAs) {
  Sha512 h;
  const auto chunk = bytes(std::string(1000, 'a'));
  for (int i = 0; i < 1000; ++i)
    h.update(std::span<const std::uint8_t>(chunk));
  EXPECT_EQ(hex(h.finalize()),
            "e718483d0ce769644e2e42c7bc15b4638e1f98b13b2044285632a803afa973eb"
            "de0ff244877ea60a4cb0432ce577c31beb009c5c2c49aa2e4eadb217ad8cc09b");
}

// RFC 2202 test case 1 for HMAC-SHA1.
TEST(Hmac, Sha1Rfc2202Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const auto data = bytes("Hi There");
  const auto mac =
      Hmac<Sha1>::mac(std::span<const std::uint8_t>(key),
                      std::span<const std::uint8_t>(data));
  EXPECT_EQ(hex(mac), "b617318655057264e28bc0b6fb378c8ef146be00");
}

// RFC 4231 test case 1 for HMAC-SHA256.
TEST(Hmac, Sha256Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const auto data = bytes("Hi There");
  const auto mac =
      Hmac<Sha256>::mac(std::span<const std::uint8_t>(key),
                        std::span<const std::uint8_t>(data));
  EXPECT_EQ(hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2: key shorter than block, "what do ya want for nothing?"
TEST(Hmac, Sha256Rfc4231Case2) {
  const auto key = bytes("Jefe");
  const auto data = bytes("what do ya want for nothing?");
  const auto mac =
      Hmac<Sha256>::mac(std::span<const std::uint8_t>(key),
                        std::span<const std::uint8_t>(data));
  EXPECT_EQ(hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20-byte 0xaa key, 50 bytes of 0xdd.
TEST(Hmac, Sha256Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> data(50, 0xdd);
  const auto mac =
      Hmac<Sha256>::mac(std::span<const std::uint8_t>(key),
                        std::span<const std::uint8_t>(data));
  EXPECT_EQ(hex(mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than the block size (131 bytes of 0xaa).
TEST(Hmac, Sha256LongKey) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const auto data = bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  const auto mac =
      Hmac<Sha256>::mac(std::span<const std::uint8_t>(key),
                        std::span<const std::uint8_t>(data));
  EXPECT_EQ(hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- NSEC3 hash ---

std::vector<std::uint8_t> wire_name(std::initializer_list<std::string> labels) {
  std::vector<std::uint8_t> out;
  for (const auto& label : labels) {
    out.push_back(static_cast<std::uint8_t>(label.size()));
    out.insert(out.end(), label.begin(), label.end());
  }
  out.push_back(0);
  return out;
}

std::string base32hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdefghijklmnopqrstuv";
  std::string out;
  std::uint32_t bits = 0;
  int nbits = 0;
  for (const std::uint8_t b : data) {
    bits = (bits << 8) | b;
    nbits += 8;
    while (nbits >= 5) {
      nbits -= 5;
      out.push_back(kDigits[(bits >> nbits) & 0x1f]);
    }
  }
  if (nbits > 0) out.push_back(kDigits[(bits << (5 - nbits)) & 0x1f]);
  return out;
}

// RFC 5155 Appendix A: zone "example", salt aabbccdd, 12 iterations.
TEST(Nsec3Hash, Rfc5155AppendixAExample) {
  const std::vector<std::uint8_t> salt = {0xaa, 0xbb, 0xcc, 0xdd};
  const auto owner = wire_name({"example"});
  const auto digest = nsec3_hash(std::span<const std::uint8_t>(owner),
                                 std::span<const std::uint8_t>(salt), 12);
  EXPECT_EQ(base32hex(std::span<const std::uint8_t>(digest.data(), 20)),
            "0p9mhaveqvm6t7vbl5lop2u3t2rp3tom");
}

TEST(Nsec3Hash, Rfc5155AppendixAAExample) {
  const std::vector<std::uint8_t> salt = {0xaa, 0xbb, 0xcc, 0xdd};
  const auto owner = wire_name({"a", "example"});
  const auto digest = nsec3_hash(std::span<const std::uint8_t>(owner),
                                 std::span<const std::uint8_t>(salt), 12);
  EXPECT_EQ(base32hex(std::span<const std::uint8_t>(digest.data(), 20)),
            "35mthgpgcu1qg68fab165klnsnk3dpvl");
}

TEST(Nsec3Hash, ZeroIterationsIsSingleHash) {
  CostMeter::reset();
  const auto owner = wire_name({"www", "example", "com"});
  (void)nsec3_hash(std::span<const std::uint8_t>(owner), {}, 0);
  // name+salt < 55 bytes: exactly one SHA-1 block.
  EXPECT_EQ(CostMeter::sha1_blocks(), 1u);
  EXPECT_EQ(CostMeter::nsec3_hashes(), 1u);
}

TEST(Nsec3Hash, IterationCountScalesWork) {
  const auto owner = wire_name({"www", "example", "com"});
  CostMeter::reset();
  (void)nsec3_hash(std::span<const std::uint8_t>(owner), {}, 0);
  const auto one = CostMeter::sha1_blocks();
  CostMeter::reset();
  (void)nsec3_hash(std::span<const std::uint8_t>(owner), {}, 150);
  const auto many = CostMeter::sha1_blocks();
  EXPECT_EQ(many, one + 150);  // each extra iteration hashes 20B+salt: 1 block
}

TEST(Nsec3Hash, SaltChangesDigest) {
  const auto owner = wire_name({"example", "com"});
  const std::vector<std::uint8_t> salt1 = {0x01};
  const auto d0 = nsec3_hash(std::span<const std::uint8_t>(owner), {}, 5);
  const auto d1 = nsec3_hash(std::span<const std::uint8_t>(owner),
                             std::span<const std::uint8_t>(salt1), 5);
  EXPECT_NE(d0, d1);
}

TEST(Nsec3Hash, IterationChangesDigest) {
  const auto owner = wire_name({"example", "com"});
  const auto d0 = nsec3_hash(std::span<const std::uint8_t>(owner), {}, 0);
  const auto d1 = nsec3_hash(std::span<const std::uint8_t>(owner), {}, 1);
  EXPECT_NE(d0, d1);
}

// --- Simulated signatures ---

TEST(SimSigning, DeterministicDerivation) {
  const SimKey a = SimKey::derive("example.com/zsk");
  const SimKey b = SimKey::derive("example.com/zsk");
  EXPECT_EQ(a.public_key(), b.public_key());
  const SimKey c = SimKey::derive("example.com/ksk");
  EXPECT_NE(a.public_key(), c.public_key());
}

TEST(SimSigning, SignVerifyRoundTrip) {
  const SimKey key = SimKey::derive("example.org/zsk");
  const auto data = bytes("signed rrset bytes");
  const auto sig = key.sign(std::span<const std::uint8_t>(data));
  EXPECT_TRUE(sim_verify(key.public_key(), std::span<const std::uint8_t>(data),
                         std::span<const std::uint8_t>(sig.data(), sig.size())));
}

TEST(SimSigning, TamperedDataFailsVerification) {
  const SimKey key = SimKey::derive("example.org/zsk");
  auto data = bytes("signed rrset bytes");
  const auto sig = key.sign(std::span<const std::uint8_t>(data));
  data[3] ^= 0x01;
  EXPECT_FALSE(sim_verify(key.public_key(), std::span<const std::uint8_t>(data),
                          std::span<const std::uint8_t>(sig.data(), sig.size())));
}

TEST(SimSigning, WrongKeyFailsVerification) {
  const SimKey key = SimKey::derive("example.org/zsk");
  const SimKey other = SimKey::derive("evil.example/zsk");
  const auto data = bytes("signed rrset bytes");
  const auto sig = key.sign(std::span<const std::uint8_t>(data));
  EXPECT_FALSE(
      sim_verify(other.public_key(), std::span<const std::uint8_t>(data),
                 std::span<const std::uint8_t>(sig.data(), sig.size())));
}

TEST(SimSigning, TruncatedSignatureRejected) {
  const SimKey key = SimKey::derive("example.org/zsk");
  const auto data = bytes("payload");
  const auto sig = key.sign(std::span<const std::uint8_t>(data));
  EXPECT_FALSE(sim_verify(key.public_key(), std::span<const std::uint8_t>(data),
                          std::span<const std::uint8_t>(sig.data(), 31)));
}

// --- Multi-buffer SHA-1 (sha1_mb.hpp) ---

std::vector<Sha1Impl> supported_impls() {
  std::vector<Sha1Impl> impls;
  for (const Sha1Impl impl :
       {Sha1Impl::kScalar, Sha1Impl::kSsse3, Sha1Impl::kAvx2})
    if (sha1_impl_supported(impl)) impls.push_back(impl);
  return impls;
}

/// Forces an implementation for one scope, restoring the previous one.
class ScopedSha1Impl {
 public:
  explicit ScopedSha1Impl(Sha1Impl impl) : previous_(sha1_impl()) {
    set_sha1_impl(impl);
  }
  ~ScopedSha1Impl() { set_sha1_impl(previous_); }

 private:
  Sha1Impl previous_;
};

/// Deterministic messages for ragged-batch tests: a mix of lengths hitting
/// the padding edge cases (empty, 55/56 split, exact blocks, multi-block).
std::vector<std::vector<std::uint8_t>> ragged_messages() {
  std::vector<std::vector<std::uint8_t>> messages;
  std::uint32_t lcg = 0x5eed1234u;
  const std::size_t lengths[] = {0,  1,  55, 56,  63, 64,  65,  119,
                                 120, 127, 128, 129, 200, 256, 300, 3};
  for (const std::size_t len : lengths) {
    std::vector<std::uint8_t> message(len);
    for (auto& b : message) {
      lcg = lcg * 1664525u + 1013904223u;
      b = static_cast<std::uint8_t>(lcg >> 24);
    }
    messages.push_back(std::move(message));
  }
  return messages;
}

std::vector<std::span<const std::uint8_t>> as_spans(
    const std::vector<std::vector<std::uint8_t>>& messages) {
  std::vector<std::span<const std::uint8_t>> spans;
  spans.reserve(messages.size());
  for (const auto& m : messages) spans.emplace_back(m.data(), m.size());
  return spans;
}

TEST(Sha1Multi, RegistryRoundTrip) {
  EXPECT_STREQ(sha1_impl_name(Sha1Impl::kScalar), "scalar");
  EXPECT_STREQ(sha1_impl_name(Sha1Impl::kSsse3), "ssse3");
  EXPECT_STREQ(sha1_impl_name(Sha1Impl::kAvx2), "avx2");
  EXPECT_EQ(parse_sha1_impl("scalar"), Sha1Impl::kScalar);
  EXPECT_EQ(parse_sha1_impl("ssse3"), Sha1Impl::kSsse3);
  EXPECT_EQ(parse_sha1_impl("avx2"), Sha1Impl::kAvx2);
  EXPECT_FALSE(parse_sha1_impl("sse2").has_value());
  EXPECT_FALSE(parse_sha1_impl("").has_value());
  EXPECT_EQ(sha1_impl_lanes(Sha1Impl::kScalar), 1u);
  EXPECT_EQ(sha1_impl_lanes(Sha1Impl::kSsse3), 4u);
  EXPECT_EQ(sha1_impl_lanes(Sha1Impl::kAvx2), 8u);
}

TEST(Sha1Multi, ScalarAlwaysSupported) {
  EXPECT_TRUE(sha1_impl_supported(Sha1Impl::kScalar));
  EXPECT_TRUE(sha1_impl_supported(sha1_best_impl()));
}

TEST(Sha1Multi, UnsupportedRequestClampsToBest) {
  const Sha1Impl original = sha1_impl();
  for (const Sha1Impl impl :
       {Sha1Impl::kScalar, Sha1Impl::kSsse3, Sha1Impl::kAvx2}) {
    const Sha1Impl effective = set_sha1_impl(impl);
    EXPECT_TRUE(sha1_impl_supported(effective));
    if (sha1_impl_supported(impl)) {
      EXPECT_EQ(effective, impl);
    }
    EXPECT_EQ(sha1_impl(), effective);
  }
  set_sha1_impl(original);
}

TEST(Sha1Multi, Rfc3174VectorsOnEveryImplementation) {
  const std::vector<std::vector<std::uint8_t>> messages = {
      bytes("abc"),
      bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      bytes(""),
      bytes(std::string(64, 'x')),
  };
  const std::vector<std::string> expected = {
      "a9993e364706816aba3e25717850c26c9cd0d89d",
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
      "da39a3ee5e6b4b0d3255bfef95601890afd80709",
      hex(Sha1::hash(std::string_view(std::string(64, 'x')))),
  };
  for (const Sha1Impl impl : supported_impls()) {
    ScopedSha1Impl scoped(impl);
    const auto spans = as_spans(messages);
    std::vector<Sha1::Digest> digests(messages.size());
    sha1_multi_hash(std::span<const std::span<const std::uint8_t>>(
                        spans.data(), spans.size()),
                    digests.data());
    for (std::size_t i = 0; i < messages.size(); ++i)
      EXPECT_EQ(hex(digests[i]), expected[i])
          << sha1_impl_name(impl) << " message " << i;
  }
}

TEST(Sha1Multi, RaggedBatchesMatchSingleMessageHashing) {
  const auto messages = ragged_messages();
  const auto spans = as_spans(messages);

  // Reference digests and the logical block count of a scalar
  // message-at-a-time run.
  std::vector<std::string> expected;
  std::uint64_t expected_blocks = 0;
  for (const auto& message : messages) {
    expected.push_back(hex(
        Sha1::hash(std::span<const std::uint8_t>(message.data(),
                                                 message.size()))));
    expected_blocks += (message.size() + 8) / Sha1::kBlockSize + 1;
  }

  for (const Sha1Impl impl : supported_impls()) {
    ScopedSha1Impl scoped(impl);
    // Partial final batch: every sub-batch size from 1 to count exercises
    // lanes left idle at the tail.
    for (std::size_t batch = 1; batch <= spans.size(); batch += 5) {
      std::vector<Sha1::Digest> digests(spans.size());
      CostMeter::reset();
      for (std::size_t start = 0; start < spans.size(); start += batch) {
        const std::size_t n = std::min(batch, spans.size() - start);
        sha1_multi_hash(std::span<const std::span<const std::uint8_t>>(
                            spans.data() + start, n),
                        digests.data() + start);
      }
      for (std::size_t i = 0; i < spans.size(); ++i)
        EXPECT_EQ(hex(digests[i]), expected[i])
            << sha1_impl_name(impl) << " batch " << batch << " message " << i;
      // Logical cost is invariant across implementations and batch splits,
      // and batching never fakes physical work it did not do.
      EXPECT_EQ(CostMeter::sha1_blocks(), expected_blocks)
          << sha1_impl_name(impl) << " batch " << batch;
      EXPECT_EQ(CostMeter::sha1_physical_blocks(), expected_blocks)
          << sha1_impl_name(impl) << " batch " << batch;
    }
  }
}

TEST(Sha1Multi, IterateMatchesScalarLoop) {
  const std::vector<std::uint8_t> suffix = {0xaa, 0xbb, 0xcc, 0xdd};
  constexpr std::uint16_t kIterations = 17;
  // 5 digests: a partial final group on every implementation width.
  std::vector<Sha1::Digest> seed(5);
  for (std::size_t i = 0; i < seed.size(); ++i)
    seed[i] = Sha1::hash(std::string_view(std::string(i + 1, 'q')));

  // Scalar reference.
  std::vector<Sha1::Digest> expected = seed;
  for (auto& digest : expected) {
    for (std::uint16_t it = 0; it < kIterations; ++it) {
      Sha1 h;
      h.update(std::span<const std::uint8_t>(digest.data(), digest.size()));
      h.update(std::span<const std::uint8_t>(suffix.data(), suffix.size()));
      digest = h.finalize();
    }
  }

  for (const Sha1Impl impl : supported_impls()) {
    ScopedSha1Impl scoped(impl);
    std::vector<Sha1::Digest> digests = seed;
    CostMeter::reset();
    sha1_multi_iterate(std::span<Sha1::Digest>(digests.data(), digests.size()),
                       std::span<const std::uint8_t>(suffix.data(),
                                                     suffix.size()),
                       kIterations);
    for (std::size_t i = 0; i < digests.size(); ++i)
      EXPECT_EQ(hex(digests[i]), hex(expected[i]))
          << sha1_impl_name(impl) << " digest " << i;
    // 20B digest + 4B suffix + padding = 1 block per iteration per digest.
    EXPECT_EQ(CostMeter::sha1_blocks(), seed.size() * kIterations)
        << sha1_impl_name(impl);
    EXPECT_EQ(CostMeter::sha1_physical_blocks(), seed.size() * kIterations)
        << sha1_impl_name(impl);
  }
}

TEST(Sha1Multi, BatchMeterCountsBatchesAndMessages) {
  Sha1BatchMeter::reset();
  const auto messages = ragged_messages();
  const auto spans = as_spans(messages);
  std::vector<Sha1::Digest> digests(spans.size());
  sha1_multi_hash(std::span<const std::span<const std::uint8_t>>(
                      spans.data(), spans.size()),
                  digests.data());
  EXPECT_EQ(Sha1BatchMeter::batches(), 1u);
  EXPECT_EQ(Sha1BatchMeter::messages(), spans.size());
}

// --- Batched NSEC3 hashing ---

TEST(Nsec3Batch, Rfc5155VectorsViaBatch) {
  const std::vector<std::uint8_t> salt = {0xaa, 0xbb, 0xcc, 0xdd};
  const std::vector<std::vector<std::uint8_t>> owners = {
      wire_name({"example"}), wire_name({"a", "example"})};
  for (const Sha1Impl impl : supported_impls()) {
    ScopedSha1Impl scoped(impl);
    const auto spans = as_spans(owners);
    std::vector<Nsec3Digest> digests(owners.size());
    nsec3_hash_batch(std::span<const std::span<const std::uint8_t>>(
                         spans.data(), spans.size()),
                     std::span<const std::uint8_t>(salt.data(), salt.size()),
                     12, digests.data());
    EXPECT_EQ(base32hex(std::span<const std::uint8_t>(digests[0].data(), 20)),
              "0p9mhaveqvm6t7vbl5lop2u3t2rp3tom")
        << sha1_impl_name(impl);
    EXPECT_EQ(base32hex(std::span<const std::uint8_t>(digests[1].data(), 20)),
              "35mthgpgcu1qg68fab165klnsnk3dpvl")
        << sha1_impl_name(impl);
  }
}

TEST(Nsec3Batch, MatchesSingleHashingAcrossImplementations) {
  // Ragged owner names (1–60 byte wire forms) under a non-trivial salt and
  // iteration count; batch digests and logical accounting must match the
  // one-at-a-time path exactly on every implementation.
  std::vector<std::vector<std::uint8_t>> owners;
  for (std::size_t i = 0; i < 13; ++i)
    owners.push_back(wire_name(
        {std::string(1 + (i * 7) % 40, static_cast<char>('a' + (i % 26))),
         "example"}));
  const std::vector<std::uint8_t> salt = {0x5a, 0x5a, 0x5a};
  constexpr std::uint16_t kIterations = 10;

  std::vector<std::string> expected;
  CostMeter::reset();
  for (const auto& owner : owners)
    expected.push_back(hex(nsec3_hash(
        std::span<const std::uint8_t>(owner.data(), owner.size()),
        std::span<const std::uint8_t>(salt.data(), salt.size()),
        kIterations)));
  const std::uint64_t expected_sha1 = CostMeter::sha1_blocks();
  const std::uint64_t expected_nsec3 = CostMeter::nsec3_hashes();

  for (const Sha1Impl impl : supported_impls()) {
    ScopedSha1Impl scoped(impl);
    const auto spans = as_spans(owners);
    std::vector<Nsec3Digest> digests(owners.size());
    CostMeter::reset();
    nsec3_hash_batch(std::span<const std::span<const std::uint8_t>>(
                         spans.data(), spans.size()),
                     std::span<const std::uint8_t>(salt.data(), salt.size()),
                     kIterations, digests.data());
    for (std::size_t i = 0; i < owners.size(); ++i)
      EXPECT_EQ(hex(digests[i]), expected[i])
          << sha1_impl_name(impl) << " owner " << i;
    EXPECT_EQ(CostMeter::sha1_blocks(), expected_sha1) << sha1_impl_name(impl);
    EXPECT_EQ(CostMeter::nsec3_hashes(), expected_nsec3)
        << sha1_impl_name(impl);
    EXPECT_EQ(CostMeter::sha1_physical_blocks(), expected_sha1)
        << sha1_impl_name(impl);
  }
}

TEST(Nsec3Batch, EmptyBatchIsANoOp) {
  CostMeter::reset();
  nsec3_hash_batch({}, {}, 100, nullptr);
  EXPECT_EQ(CostMeter::sha1_blocks(), 0u);
  EXPECT_EQ(CostMeter::nsec3_hashes(), 0u);
}

TEST(CostMeter, ScopedMeasurement) {
  CostMeter::reset();
  Sha1WorkScope scope;
  (void)Sha1::hash(std::string_view{"abc"});
  EXPECT_EQ(scope.elapsed(), 1u);
  (void)Sha1::hash(std::string_view(std::string(200, 'x')));
  EXPECT_GE(scope.elapsed(), 4u);
}

}  // namespace
}  // namespace zh::crypto
