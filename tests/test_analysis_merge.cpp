// Property tests for the mergeable statistics primitives behind the
// sharded campaign engine: merging any partition of the observations, in
// any order, must reproduce the unsplit aggregate exactly — this is what
// makes parallel campaigns bit-identical for every shard count.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "analysis/stats.hpp"

namespace zh::analysis {
namespace {

/// Random observation stream with a heavy-ish tail (like iteration counts).
std::vector<std::int64_t> random_values(std::mt19937_64& rng,
                                        std::size_t count) {
  std::vector<std::int64_t> values;
  values.reserve(count);
  std::uniform_int_distribution<std::int64_t> body(0, 25);
  std::uniform_int_distribution<std::int64_t> tail(0, 500);
  std::bernoulli_distribution is_tail(0.05);
  for (std::size_t i = 0; i < count; ++i)
    values.push_back(is_tail(rng) ? tail(rng) : body(rng));
  return values;
}

/// Splits `values` into `parts` random (possibly empty) chunks.
std::vector<std::vector<std::int64_t>> random_partition(
    std::mt19937_64& rng, const std::vector<std::int64_t>& values,
    std::size_t parts) {
  std::vector<std::vector<std::int64_t>> chunks(parts);
  std::uniform_int_distribution<std::size_t> pick(0, parts - 1);
  for (const auto value : values) chunks[pick(rng)].push_back(value);
  return chunks;
}

void expect_same_ecdf(const Ecdf& a, const Ecdf& b) {
  EXPECT_EQ(a.total(), b.total());
  EXPECT_EQ(a.histogram(), b.histogram());
  // Derived quantities follow from the histogram, but spell the paper's
  // anchor queries out so a regression names the broken query directly.
  for (const std::int64_t x : {0ll, 1ll, 10ll, 25ll, 150ll, 500ll}) {
    EXPECT_DOUBLE_EQ(a.fraction_at_most(x), b.fraction_at_most(x)) << x;
    EXPECT_EQ(a.count_above(x), b.count_above(x)) << x;
  }
  for (const double p : {0.01, 0.122, 0.5, 0.9, 0.972, 0.999, 1.0})
    EXPECT_EQ(a.percentile(p), b.percentile(p)) << p;
}

TEST(EcdfMerge, MergeOfRandomPartitionsEqualsWhole) {
  std::mt19937_64 rng(20240315);
  for (int round = 0; round < 20; ++round) {
    const auto values = random_values(rng, 2000);
    Ecdf whole;
    for (const auto v : values) whole.add(v);

    std::uniform_int_distribution<std::size_t> parts_dist(1, 16);
    const auto chunks = random_partition(rng, values, parts_dist(rng));

    std::vector<Ecdf> shards(chunks.size());
    for (std::size_t i = 0; i < chunks.size(); ++i)
      for (const auto v : chunks[i]) shards[i].add(v);

    // Merge in a random order: the result must not depend on it.
    std::vector<std::size_t> order(chunks.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), rng);

    Ecdf merged;
    for (const auto i : order) merged.merge(shards[i]);
    expect_same_ecdf(whole, merged);
  }
}

TEST(EcdfMerge, EmptyIsIdentity) {
  Ecdf empty;
  Ecdf some;
  some.add(0, 122);
  some.add(500, 12);

  Ecdf left = some;
  left.merge(empty);
  expect_same_ecdf(left, some);

  Ecdf right;
  right.merge(some);
  expect_same_ecdf(right, some);

  Ecdf both;
  both.merge(empty);
  EXPECT_TRUE(both.empty());
  EXPECT_EQ(both.total(), 0u);
}

TEST(EcdfMerge, WeightedCountsAddUp) {
  Ecdf a, b;
  a.add(7, 10);
  b.add(7, 32);
  b.add(9, 1);
  a.merge(b);
  EXPECT_EQ(a.count_of(7), 42u);
  EXPECT_EQ(a.count_of(9), 1u);
  EXPECT_EQ(a.total(), 43u);
  EXPECT_EQ(a.min(), 7);
  EXPECT_EQ(a.max(), 9);
}

TEST(EcdfMerge, PercentileStabilityUnderResharding) {
  // The same population split 2, 3, 5 and 11 ways must answer every
  // percentile query identically.
  std::mt19937_64 rng(777);
  const auto values = random_values(rng, 5000);
  Ecdf whole;
  for (const auto v : values) whole.add(v);

  for (const std::size_t parts : {2u, 3u, 5u, 11u}) {
    Ecdf merged;
    std::vector<Ecdf> shards(parts);
    for (std::size_t i = 0; i < values.size(); ++i)
      shards[i % parts].add(values[i]);
    for (const auto& shard : shards) merged.merge(shard);
    for (int i = 0; i <= 100; ++i) {
      const double p = i / 100.0;
      EXPECT_EQ(whole.percentile(p), merged.percentile(p))
          << "p=" << p << " parts=" << parts;
    }
  }
}

TEST(FreqTableMerge, MergeOfRandomPartitionsEqualsWhole) {
  std::mt19937_64 rng(4242);
  const std::vector<std::string> keys = {"squarespace", "one.com",  "ovh",
                                         "wix",         "transip",  "loopia",
                                         "hostnet",     "register", "other"};
  std::uniform_int_distribution<std::size_t> key_dist(0, keys.size() - 1);

  for (int round = 0; round < 20; ++round) {
    std::vector<std::string> stream;
    for (int i = 0; i < 1500; ++i) stream.push_back(keys[key_dist(rng)]);

    FreqTable whole;
    for (const auto& key : stream) whole.add(key);

    std::uniform_int_distribution<std::size_t> parts_dist(1, 12);
    const std::size_t parts = parts_dist(rng);
    std::vector<FreqTable> shards(parts);
    std::uniform_int_distribution<std::size_t> pick(0, parts - 1);
    for (const auto& key : stream) shards[pick(rng)].add(key);

    std::vector<std::size_t> order(parts);
    for (std::size_t i = 0; i < parts; ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), rng);

    FreqTable merged;
    for (const auto i : order) merged.merge(shards[i]);

    EXPECT_EQ(merged.total(), whole.total());
    EXPECT_EQ(merged.raw(), whole.raw());
    EXPECT_EQ(merged.top(5), whole.top(5));
    for (const auto& key : keys)
      EXPECT_DOUBLE_EQ(merged.share(key), whole.share(key)) << key;
  }
}

TEST(FreqTableMerge, EmptyIsIdentity) {
  FreqTable empty;
  FreqTable some;
  some.add("squarespace", 394);

  FreqTable left = some;
  left.merge(empty);
  EXPECT_EQ(left.raw(), some.raw());
  EXPECT_EQ(left.total(), some.total());

  FreqTable right;
  right.merge(some);
  EXPECT_EQ(right.raw(), some.raw());
  EXPECT_EQ(right.total(), some.total());
}

TEST(FreqTableMerge, WeightedCountsAddUp) {
  FreqTable a, b;
  a.add("op", 3);
  b.add("op", 4);
  b.add("other", 1);
  a.merge(b);
  EXPECT_EQ(a.count_of("op"), 7u);
  EXPECT_EQ(a.count_of("other"), 1u);
  EXPECT_EQ(a.total(), 8u);
}

}  // namespace
}  // namespace zh::analysis
