#!/usr/bin/env bash
# Builds and runs the tier-1 test suite under ThreadSanitizer and
# AddressSanitizer (-DZH_SANITIZE=thread|address). Both flavours also
# define ZH_THREAD_CHECKS, so the simnet owner-thread contract is enforced
# even though the optimized build type strips asserts.
#
# The suite includes the shard-artefact codec property tests
# (test_serialize: every truncated prefix and single-bit flip of an
# artefact is decoded), so ASan/UBSan here is what substantiates the
# codec's "fails cleanly, never out-of-bounds" claim.
#
#   tests/run_sanitizers.sh [thread|address ...]
#
# With no arguments both sanitizers run. Build trees live next to the
# default one as build-tsan/ and build-asan/. Exits non-zero on the first
# build or test failure.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
sanitizers=("$@")
if [ ${#sanitizers[@]} -eq 0 ]; then
  sanitizers=(thread address)
fi

# halt_on_error makes CI fail loudly instead of logging and continuing.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1 halt_on_error=1}"

for sanitizer in "${sanitizers[@]}"; do
  case "$sanitizer" in
    thread)  build_dir="$repo_root/build-tsan" ;;
    address) build_dir="$repo_root/build-asan" ;;
    *) echo "unknown sanitizer '$sanitizer' (want thread|address)" >&2
       exit 2 ;;
  esac

  echo "==> [$sanitizer] configuring $build_dir"
  cmake -S "$repo_root" -B "$build_dir" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DZH_SANITIZE="$sanitizer" >/dev/null

  echo "==> [$sanitizer] building (-j$jobs)"
  cmake --build "$build_dir" -j"$jobs"

  echo "==> [$sanitizer] running tier-1 suite"
  ctest --test-dir "$build_dir" --output-on-failure -j"$jobs"
  echo "==> [$sanitizer] clean"
done

echo "All sanitizer suites passed: ${sanitizers[*]}"
