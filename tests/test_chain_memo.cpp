// Tests for NSEC3 chain memoisation (zone/chain_memo.hpp): a re-signed zone
// replays its cached chain byte-identically with zero new physical SHA-1
// work while the *logical* CostMeter accounting — the determinism contract's
// cost surface — stays exactly what a from-scratch rebuild would tick.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "crypto/cost_meter.hpp"
#include "dns/dnssec.hpp"
#include "server/auth_server.hpp"
#include "trace/trace.hpp"
#include "zone/chain_memo.hpp"
#include "zone/signer.hpp"
#include "zone/zone.hpp"

namespace zh::zone {
namespace {

using dns::Message;
using dns::Name;
using dns::RrType;

/// Pins the calling thread's memo to `capacity` for one test, starting and
/// leaving it empty so tests cannot see each other's chains.
class ScopedMemoCapacity {
 public:
  explicit ScopedMemoCapacity(std::size_t capacity)
      : previous_(Nsec3ChainMemo::instance().capacity()) {
    Nsec3ChainMemo::instance().clear();
    Nsec3ChainMemo::instance().set_capacity(capacity);
  }
  ~ScopedMemoCapacity() {
    Nsec3ChainMemo::instance().clear();
    Nsec3ChainMemo::instance().set_capacity(previous_);
  }

 private:
  std::size_t previous_;
};

/// A deterministic multi-name zone; `extra` adds one distinguishing record.
Zone build_zone(const std::string& apex_str, bool extra = false) {
  Zone zone(Name::must_parse(apex_str));
  const Name apex = zone.apex();
  zone.add(dns::make_soa(apex, 3600, *apex.prepended("ns1"), 1));
  zone.add(dns::make_ns(apex, 3600, *apex.prepended("ns1")));
  zone.add(dns::make_a(*apex.prepended("ns1"), 3600, 192, 0, 2, 53));
  zone.add(dns::make_a(*apex.prepended("www"), 300, 192, 0, 2, 80));
  zone.add(dns::make_txt(*apex.prepended("api"), 300, "v1"));
  if (extra) zone.add(dns::make_a(*apex.prepended("mail"), 300, 192, 0, 2, 25));
  return zone;
}

SignerConfig nsec3_config(std::uint16_t iterations = 5) {
  SignerConfig config;
  config.nsec3.iterations = iterations;
  config.nsec3.salt = {0xab, 0xcd};
  return config;
}

struct SignCost {
  std::uint64_t sha1 = 0;
  std::uint64_t sha1_physical = 0;
  std::uint64_t sha2 = 0;
  std::uint64_t nsec3 = 0;
};

/// Signs a fresh copy of the zone and returns the CostMeter deltas plus the
/// signed zone's full text.
SignCost sign_and_measure(Zone&& zone, const SignerConfig& config,
                          std::string* text = nullptr) {
  using crypto::CostMeter;
  const std::uint64_t sha1 = CostMeter::sha1_blocks();
  const std::uint64_t phys = CostMeter::sha1_physical_blocks();
  const std::uint64_t sha2 = CostMeter::sha2_blocks();
  const std::uint64_t nsec3 = CostMeter::nsec3_hashes();
  sign_zone(zone, config);
  if (text != nullptr) *text = zone.to_text();
  return SignCost{CostMeter::sha1_blocks() - sha1,
                  CostMeter::sha1_physical_blocks() - phys,
                  CostMeter::sha2_blocks() - sha2,
                  CostMeter::nsec3_hashes() - nsec3};
}

TEST(ChainMemo, ResignReplaysChainWithoutPhysicalHashing) {
  ScopedMemoCapacity scoped(16);
  const auto& stats = Nsec3ChainMemo::instance().stats();
  const std::uint64_t hits0 = stats.hits;

  std::string first_text;
  const SignCost first =
      sign_and_measure(build_zone("memo-a.test"), nsec3_config(), &first_text);
  EXPECT_EQ(stats.hits, hits0);
  EXPECT_GT(first.sha1, 0u);
  // Chain hashing is the only SHA-1 consumer in signing, and the memo was
  // cold: physical equals logical.
  EXPECT_EQ(first.sha1_physical, first.sha1);

  std::string second_text;
  const SignCost second =
      sign_and_measure(build_zone("memo-a.test"), nsec3_config(), &second_text);
  EXPECT_EQ(stats.hits, hits0 + 1);
  // Logical accounting is byte-identical to the from-scratch build...
  EXPECT_EQ(second.sha1, first.sha1);
  EXPECT_EQ(second.sha2, first.sha2);
  EXPECT_EQ(second.nsec3, first.nsec3);
  // ...but no SHA-1 block was physically recomputed.
  EXPECT_EQ(second.sha1_physical, 0u);
  // And the signed zone is the same bytes.
  EXPECT_EQ(second_text, first_text);
}

TEST(ChainMemo, CapacityOneEvictsLeastRecentChain) {
  ScopedMemoCapacity scoped(1);
  const auto& stats = Nsec3ChainMemo::instance().stats();
  const std::uint64_t evictions0 = stats.evictions;
  const std::uint64_t hits0 = stats.hits;

  std::string first_text;
  sign_and_measure(build_zone("memo-b.test"), nsec3_config(), &first_text);
  sign_and_measure(build_zone("memo-c.test"), nsec3_config());  // evicts b
  EXPECT_EQ(stats.evictions, evictions0 + 1);
  EXPECT_EQ(Nsec3ChainMemo::instance().size(), 1u);

  std::string retry_text;
  const SignCost retry =
      sign_and_measure(build_zone("memo-b.test"), nsec3_config(), &retry_text);
  // Evicted: full physical rebuild, yet byte-identical output.
  EXPECT_EQ(stats.hits, hits0);
  EXPECT_EQ(retry.sha1_physical, retry.sha1);
  EXPECT_EQ(retry_text, first_text);
}

TEST(ChainMemo, CapacityZeroDisablesTheMemo) {
  ScopedMemoCapacity scoped(0);
  const auto& stats = Nsec3ChainMemo::instance().stats();
  const ChainMemoStats before = stats;

  std::string first_text;
  const SignCost first =
      sign_and_measure(build_zone("memo-d.test"), nsec3_config(), &first_text);
  std::string second_text;
  const SignCost second =
      sign_and_measure(build_zone("memo-d.test"), nsec3_config(), &second_text);

  // Disabled: no stats movement, every block physically hashed, and the
  // output identical to what the memoised path would have produced.
  EXPECT_EQ(stats.hits, before.hits);
  EXPECT_EQ(stats.misses, before.misses);
  EXPECT_EQ(stats.insertions, before.insertions);
  EXPECT_EQ(first.sha1_physical, first.sha1);
  EXPECT_EQ(second.sha1_physical, second.sha1);
  EXPECT_EQ(second.sha1, first.sha1);
  EXPECT_EQ(second_text, first_text);
}

TEST(ChainMemo, LogicalCostsMatchBetweenMemoOnAndOff) {
  SignCost on;
  std::string on_text;
  {
    ScopedMemoCapacity scoped(16);
    sign_and_measure(build_zone("memo-e.test"), nsec3_config());
    on = sign_and_measure(build_zone("memo-e.test"), nsec3_config(), &on_text);
  }
  SignCost off;
  std::string off_text;
  {
    ScopedMemoCapacity scoped(0);
    sign_and_measure(build_zone("memo-e.test"), nsec3_config());
    off =
        sign_and_measure(build_zone("memo-e.test"), nsec3_config(), &off_text);
  }
  // The amplification currency (logical counters) and the signed bytes are
  // invariant under memoisation; only physical work differs.
  EXPECT_EQ(on.sha1, off.sha1);
  EXPECT_EQ(on.sha2, off.sha2);
  EXPECT_EQ(on.nsec3, off.nsec3);
  EXPECT_EQ(on_text, off_text);
  EXPECT_EQ(on.sha1_physical, 0u);
  EXPECT_EQ(off.sha1_physical, off.sha1);
}

TEST(ChainMemo, DifferentContentOrParametersMiss) {
  ScopedMemoCapacity scoped(16);
  const auto& stats = Nsec3ChainMemo::instance().stats();

  sign_and_measure(build_zone("memo-f.test"), nsec3_config());
  const std::uint64_t hits0 = stats.hits;

  // Extra record → different candidate set → different chain.
  const SignCost extra = sign_and_measure(build_zone("memo-f.test", true),
                                          nsec3_config());
  EXPECT_EQ(stats.hits, hits0);
  EXPECT_EQ(extra.sha1_physical, extra.sha1);

  // Different iteration count → different parameters → different chain.
  const SignCost iters =
      sign_and_measure(build_zone("memo-f.test"), nsec3_config(6));
  EXPECT_EQ(stats.hits, hits0);
  EXPECT_EQ(iters.sha1_physical, iters.sha1);

  // The original configuration is still cached.
  sign_and_measure(build_zone("memo-f.test"), nsec3_config());
  EXPECT_EQ(stats.hits, hits0 + 1);
}

TEST(ChainMemo, LazyServerResignIsAMemoHit) {
  ScopedMemoCapacity scoped(16);

  struct FakeTime final : trace::TimeSource {
    std::int64_t now_ns() const override { return 0; }
  } time;
  trace::Tracer tracer(&time);
  server::AuthoritativeServer server("bulk-ns");
  server.set_tracer(&tracer);
  int materialised = 0;
  server.set_lazy_provider(
      [](const Name& qname) -> std::optional<Name> {
        const Name suffix = Name::must_parse("lazy");
        if (!qname.is_subdomain_of(suffix) || qname.label_count() < 2)
          return std::nullopt;
        return qname.ancestor_with_labels(2);
      },
      [&materialised](const Name& apex) -> std::shared_ptr<const Zone> {
        ++materialised;
        auto zone = std::make_shared<Zone>(build_zone(apex.to_string()));
        sign_zone(*zone, nsec3_config());
        return zone;
      },
      /*cache_capacity=*/1);

  const auto ask = [&server](std::string_view qname) {
    return server.handle(
        Message::make_query(1, Name::must_parse(qname), RrType::kA,
                            /*dnssec=*/true),
        simnet::IpAddress::v4(198, 51, 100, 1));
  };

  const Message first = ask("www.alpha.lazy");
  ask("www.beta.lazy");  // evicts alpha (capacity 1)

  // Re-materialising alpha re-signs it — through the memo, with no new
  // physical SHA-1 work beyond the query-time proof hashing.
  const std::uint64_t hits_before = Nsec3ChainMemo::instance().stats().hits;
  const Message revived = ask("www.alpha.lazy");
  EXPECT_EQ(materialised, 3);
  EXPECT_EQ(server.lazy_resigns(), 1u);
  EXPECT_EQ(Nsec3ChainMemo::instance().stats().hits, hits_before + 1);
  EXPECT_EQ(tracer.metrics().value("server.chain_memo_hit"), 1u);
  EXPECT_GT(tracer.metrics().value("crypto.sha1_batch"), 0u);

  // The replayed chain answers byte-identically.
  EXPECT_EQ(revived.to_wire(), first.to_wire());
}

}  // namespace
}  // namespace zh::zone
