// Tests for the Internet assembly: delegation/glue consistency, DS-vs-key
// agreement across zone cuts, probe-zone construction, and lazy-vs-eager
// materialisation equivalence.
#include <gtest/gtest.h>

#include <memory>

#include "dns/dnssec.hpp"
#include "testbed/internet.hpp"
#include "workload/install.hpp"

namespace zh::testbed {
namespace {

using dns::Name;
using dns::RrType;
using simnet::IpAddress;

TEST(Testbed, RootDelegatesEveryTldWithConsistentDs) {
  Internet internet;
  internet.add_tld("com", TldConfig{});
  internet.add_tld("org", TldConfig{});
  TldConfig unsigned_tld;
  unsigned_tld.dnssec = false;
  internet.add_tld("xx", unsigned_tld);
  internet.build();

  const auto root = internet.zone(Name::root());
  ASSERT_NE(root, nullptr);
  for (const char* label : {"com", "org"}) {
    const Name apex = Name::must_parse(label);
    ASSERT_NE(root->find(apex, RrType::kNs), nullptr) << label;
    const auto* ds_set = root->find(apex, RrType::kDs);
    ASSERT_NE(ds_set, nullptr) << label;
    // The DS in the root must match the TLD's actual KSK.
    const auto ds = dns::DsRdata::decode(std::span<const std::uint8_t>(
        ds_set->rdatas.front().data(), ds_set->rdatas.front().size()));
    ASSERT_TRUE(ds);
    const auto ksk = zone::derive_dnskey(apex.to_string(), true);
    EXPECT_TRUE(dns::ds_matches_key(*ds, apex, ksk)) << label;
  }
  // Unsigned TLD: NS but no DS.
  EXPECT_NE(root->find(Name::must_parse("xx"), RrType::kNs), nullptr);
  EXPECT_EQ(root->find(Name::must_parse("xx"), RrType::kDs), nullptr);
}

TEST(Testbed, GlueMatchesHostAddresses) {
  Internet internet;
  internet.add_tld("com", TldConfig{});
  DomainConfig config;
  config.apex = Name::must_parse("glued.com");
  config.host = IpAddress::v4(192, 0, 2, 77);
  internet.add_domain(config);
  internet.build();

  const auto com = internet.zone(Name::must_parse("com"));
  ASSERT_NE(com, nullptr);
  const auto* glue = com->find(Name::must_parse("ns1.glued.com"), RrType::kA);
  ASSERT_NE(glue, nullptr);
  const auto a = dns::ARdata::decode(std::span<const std::uint8_t>(
      glue->rdatas.front().data(), glue->rdatas.front().size()));
  ASSERT_TRUE(a);
  EXPECT_EQ(a->to_string(), "192.0.2.77");
}

TEST(Testbed, ProbeZonesMatchSpecParameters) {
  Internet internet;
  const auto specs = add_probe_infrastructure(internet);
  internet.build();

  ASSERT_EQ(specs.size(), 50u);
  for (const auto& spec : specs) {
    const auto zone = internet.zone(spec.apex);
    ASSERT_NE(zone, nullptr) << spec.label;
    const auto param = zone->nsec3param();
    ASSERT_TRUE(param) << spec.label;
    EXPECT_EQ(param->iterations, spec.iterations) << spec.label;
    EXPECT_TRUE(param->salt.empty()) << spec.label << " (§4.2: no salt)";
    // Wildcard branch present for the cache-busting probes.
    EXPECT_TRUE(zone->name_exists(
        Name::must_parse("wc." + spec.apex.to_string())
            .wildcard_child()))
        << spec.label;
  }
}

TEST(Testbed, OperatorsServeTheirOwnZones) {
  Internet internet;
  const std::size_t op = internet.add_operator("hostco");
  internet.build();
  const OperatorHandle& handle = internet.hosting_operator(op);
  EXPECT_EQ(handle.ns_names.size(), 2u);
  EXPECT_TRUE(internet.network().is_attached(handle.address_v4));
  EXPECT_TRUE(internet.network().is_attached(handle.address_v6));
  // The operator's own zone resolves its NS names to its own address.
  const auto zone = internet.zone(Name::must_parse("hostco.net"));
  ASSERT_NE(zone, nullptr);
  const auto* a = zone->find(handle.ns_names[0], RrType::kA);
  ASSERT_NE(a, nullptr);
  const auto rdata = dns::ARdata::decode(std::span<const std::uint8_t>(
      a->rdatas.front().data(), a->rdatas.front().size()));
  ASSERT_TRUE(rdata);
  EXPECT_EQ(rdata->to_string(), handle.address_v4.to_string());
}

TEST(Testbed, LazyMaterialisationMatchesEagerConstruction) {
  // The same DomainConfig must yield byte-identical zones whether built
  // eagerly at build() or on demand by a provider.
  workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  std::optional<workload::DomainProfile> nsec3_profile;
  for (std::size_t i = 0; i < spec.domain_count(); ++i) {
    const auto profile = spec.domain(i);
    if (profile.denial == zone::DenialMode::kNsec3) {
      nsec3_profile = profile;
      break;
    }
  }
  ASSERT_TRUE(nsec3_profile);

  const auto config = workload::domain_config_for(*nsec3_profile, spec);
  const auto host = IpAddress::v4(10, 1, 2, 3);
  const auto once = Internet::materialise_zone(config, host);
  const auto twice = Internet::materialise_zone(config, host);
  EXPECT_EQ(once->to_text(), twice->to_text());
  EXPECT_EQ(once->nsec3_entries().size(), twice->nsec3_entries().size());
}

TEST(Testbed, EndToEndResolutionThroughEveryLayer) {
  // One assertion that touches root, TLD, operator glue resolution, lazy
  // materialisation and validation all at once.
  workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  Internet internet;
  workload::install_ecosystem(internet, spec);
  internet.build();
  auto r = internet.make_resolver(resolver::ResolverProfile::bind9_2021(),
                                  IpAddress::v4(203, 0, 113, 1));
  for (std::size_t i = 0; i < spec.domain_count(); ++i) {
    const auto profile = spec.domain(i);
    if (profile.denial != zone::DenialMode::kNsec3 ||
        profile.nsec3.iterations > 150)
      continue;
    const auto resp =
        r->resolve(*profile.apex.prepended("www"), dns::RrType::kA);
    EXPECT_EQ(resp.header.rcode, dns::Rcode::kNoError)
        << profile.apex.to_string();
    // AD unless the domain landed under an unsigned TLD (insecure chain).
    break;
  }
}

}  // namespace
}  // namespace zh::testbed
