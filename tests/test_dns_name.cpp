// Unit tests for zh::dns::Name: parsing, wire forms, ancestry, and the
// RFC 4034 §6.1 canonical ordering that NSEC chains depend on.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dns/name.hpp"

namespace zh::dns {
namespace {

TEST(Name, ParseSimple) {
  const auto name = Name::parse("www.example.com");
  ASSERT_TRUE(name);
  EXPECT_EQ(name->label_count(), 3u);
  EXPECT_EQ(name->label(0), "www");
  EXPECT_EQ(name->label(2), "com");
  EXPECT_EQ(name->to_string(), "www.example.com.");
}

TEST(Name, ParseTrailingDot) {
  const auto a = Name::parse("example.com.");
  const auto b = Name::parse("example.com");
  ASSERT_TRUE(a && b);
  EXPECT_TRUE(a->equals(*b));
}

TEST(Name, ParseRoot) {
  const auto root = Name::parse(".");
  ASSERT_TRUE(root);
  EXPECT_TRUE(root->is_root());
  EXPECT_EQ(root->to_string(), ".");
  EXPECT_EQ(root->wire_length(), 1u);
}

TEST(Name, RejectEmpty) { EXPECT_FALSE(Name::parse("")); }

TEST(Name, RejectEmptyLabel) {
  EXPECT_FALSE(Name::parse("a..b"));
  EXPECT_FALSE(Name::parse(".example.com"));
}

TEST(Name, RejectOversizeLabel) {
  EXPECT_FALSE(Name::parse(std::string(64, 'a') + ".com"));
  EXPECT_TRUE(Name::parse(std::string(63, 'a') + ".com"));
}

TEST(Name, RejectOversizeName) {
  // 4 labels of 63 bytes = 4*64+1 = 257 > 255.
  const std::string label(63, 'a');
  EXPECT_FALSE(
      Name::parse(label + "." + label + "." + label + "." + label));
}

TEST(Name, CaseInsensitiveEquality) {
  const auto a = Name::must_parse("WWW.Example.COM");
  const auto b = Name::must_parse("www.example.com");
  EXPECT_TRUE(a.equals(b));
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(Name, SubdomainChecks) {
  const auto zone = Name::must_parse("example.com");
  EXPECT_TRUE(Name::must_parse("www.example.com").is_subdomain_of(zone));
  EXPECT_TRUE(Name::must_parse("a.b.example.com").is_subdomain_of(zone));
  EXPECT_TRUE(zone.is_subdomain_of(zone));
  EXPECT_FALSE(Name::must_parse("example.org").is_subdomain_of(zone));
  EXPECT_FALSE(Name::must_parse("notexample.com").is_subdomain_of(zone));
  EXPECT_TRUE(zone.is_subdomain_of(Name::root()));
}

TEST(Name, Parent) {
  const auto name = Name::must_parse("a.b.c");
  EXPECT_EQ(name.parent().to_string(), "b.c.");
  EXPECT_EQ(name.parent().parent().to_string(), "c.");
  EXPECT_TRUE(name.parent().parent().parent().is_root());
  EXPECT_TRUE(Name::root().parent().is_root());
}

TEST(Name, AncestorWithLabels) {
  const auto name = Name::must_parse("a.b.c.d");
  EXPECT_EQ(name.ancestor_with_labels(2).to_string(), "c.d.");
  EXPECT_EQ(name.ancestor_with_labels(0).to_string(), ".");
  EXPECT_EQ(name.ancestor_with_labels(4).to_string(), "a.b.c.d.");
  EXPECT_EQ(name.ancestor_with_labels(9).to_string(), "a.b.c.d.");
}

TEST(Name, Prepended) {
  const auto zone = Name::must_parse("example.com");
  const auto child = zone.prepended("www");
  ASSERT_TRUE(child);
  EXPECT_EQ(child->to_string(), "www.example.com.");
}

TEST(Name, Appended) {
  const auto left = Name::must_parse("www");
  const auto right = Name::must_parse("example.com");
  const auto joined = left.appended(right);
  ASSERT_TRUE(joined);
  EXPECT_EQ(joined->to_string(), "www.example.com.");
}

TEST(Name, Wildcard) {
  const auto zone = Name::must_parse("example.com");
  const auto wc = zone.wildcard_child();
  EXPECT_TRUE(wc.is_wildcard());
  EXPECT_EQ(wc.to_string(), "*.example.com.");
  EXPECT_FALSE(zone.is_wildcard());
}

TEST(Name, WireRoundTrip) {
  const auto name = Name::must_parse("www.example.com");
  const auto wire = name.to_wire();
  const std::vector<std::uint8_t> expected = {3, 'w', 'w', 'w', 7, 'e', 'x',
                                              'a', 'm', 'p', 'l', 'e', 3, 'c',
                                              'o', 'm', 0};
  EXPECT_EQ(wire, expected);
  EXPECT_EQ(name.wire_length(), wire.size());
}

TEST(Name, CanonicalWireLowercases) {
  const auto name = Name::must_parse("WWW.Example.COM");
  const auto wire = name.to_canonical_wire();
  const auto lower = Name::must_parse("www.example.com").to_wire();
  EXPECT_EQ(wire, lower);
}

TEST(Name, CanonicalCompareRfc4034Order) {
  // The ordering example from RFC 4034 §6.1 (escaped labels omitted).
  std::vector<Name> names;
  names.push_back(Name::must_parse("example"));
  names.push_back(Name::must_parse("a.example"));
  names.push_back(Name::must_parse("yljkjljk.a.example"));
  names.push_back(Name::must_parse("Z.a.example"));
  names.push_back(Name::must_parse("zABC.a.EXAMPLE"));
  names.push_back(Name::must_parse("z.example"));
  names.push_back(Name::must_parse("zz.example"));

  auto shuffled = names;
  std::reverse(shuffled.begin(), shuffled.end());
  std::sort(shuffled.begin(), shuffled.end(), NameCanonicalLess{});
  for (std::size_t i = 0; i < names.size(); ++i)
    EXPECT_TRUE(shuffled[i].equals(names[i]))
        << i << ": " << shuffled[i].to_string();
}

TEST(Name, CanonicalCompareRootFirst) {
  EXPECT_TRUE(Name::canonical_compare(Name::root(), Name::must_parse("com")) <
              0);
  EXPECT_EQ(Name::canonical_compare(Name::must_parse("com"),
                                    Name::must_parse("COM")),
            std::strong_ordering::equal);
}

TEST(Name, CanonicalCompareParentBeforeChild) {
  EXPECT_TRUE(Name::canonical_compare(Name::must_parse("example.com"),
                                      Name::must_parse("a.example.com")) < 0);
}

TEST(Name, CanonicalCompareShorterLabelFirst) {
  EXPECT_TRUE(Name::canonical_compare(Name::must_parse("ab.example"),
                                      Name::must_parse("abc.example")) < 0);
}

TEST(Name, AppendCanonicalMatchesCanonicalWire) {
  // append_canonical_to is the allocation-free twin of to_canonical_wire:
  // the memo-key builder (zone/chain_memo.hpp) depends on the bytes being
  // identical, length for length.
  for (const char* text : {"Example.COM", "a.b.c.d.example", "xn--e1afmkfd"}) {
    const Name name = Name::must_parse(text);
    std::string appended;
    name.append_canonical_to(appended);
    const std::vector<std::uint8_t> wire = name.to_canonical_wire();
    ASSERT_EQ(appended.size(), wire.size());
    ASSERT_EQ(appended.size(), name.wire_length());
    EXPECT_TRUE(std::equal(wire.begin(), wire.end(),
                           reinterpret_cast<const std::uint8_t*>(
                               appended.data())));
  }
  std::string root;
  Name::root().append_canonical_to(root);
  EXPECT_EQ(root, std::string(1, '\0'));
}

TEST(Name, SuffixCompareMatchesMaterialisedAncestor) {
  // NameSuffix ordering (the transparent zone-map lookup) must agree with
  // comparing against the materialised ancestor for every label count,
  // including counts past the name's depth (clamped, like
  // ancestor_with_labels' callers guarantee).
  const Name names[] = {
      Name::root(), Name::must_parse("com"), Name::must_parse("example.com"),
      Name::must_parse("A.exAmple.Com"), Name::must_parse("z.a.example.com"),
      Name::must_parse("aa.example.org")};
  for (const Name& a : names) {
    for (const Name& b : names) {
      for (std::size_t labels = 0; labels <= b.label_count(); ++labels) {
        const Name ancestor = b.ancestor_with_labels(labels);
        const NameSuffix suffix{&b, labels};
        EXPECT_EQ(Name::canonical_compare_suffix(a, suffix),
                  Name::canonical_compare(a, ancestor))
            << a.to_string() << " vs " << b.to_string() << "/" << labels;
        // The comparator overloads order identically to two owned names.
        const NameCanonicalLess less;
        EXPECT_EQ(less(a, suffix), less(a, ancestor));
        EXPECT_EQ(less(suffix, a), less(ancestor, a));
      }
    }
  }
}

TEST(Name, HashDistinguishesNames) {
  EXPECT_NE(Name::must_parse("a.example").hash(),
            Name::must_parse("b.example").hash());
  // Label boundaries matter: "ab.c" != "a.bc".
  EXPECT_NE(Name::must_parse("ab.c").hash(), Name::must_parse("a.bc").hash());
}

}  // namespace
}  // namespace zh::dns
