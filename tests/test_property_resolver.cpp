// Property sweep over (resolver profile × probe zone): cross-cutting
// invariants of the RFC 9276 policy engine that must hold for every
// combination — AD implies within-limit, SERVFAIL implies over-limit,
// responses are deterministic, and packet loss degrades to SERVFAIL
// rather than wrong answers (failure injection).
#include <gtest/gtest.h>

#include <memory>

#include "testbed/internet.hpp"

namespace zh::resolver {
namespace {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::RrType;
using simnet::IpAddress;

struct ProfileCase {
  const char* name;
  ResolverProfile (*factory)();
};

const ProfileCase kProfiles[] = {
    {"bind9_2021", &ResolverProfile::bind9_2021},
    {"bind9_2023", &ResolverProfile::bind9_2023},
    {"unbound", &ResolverProfile::unbound},
    {"knot_2021", &ResolverProfile::knot_2021},
    {"knot_2023", &ResolverProfile::knot_2023},
    {"powerdns_2021", &ResolverProfile::powerdns_2021},
    {"powerdns_2023", &ResolverProfile::powerdns_2023},
    {"google", &ResolverProfile::google_public_dns},
    {"cloudflare", &ResolverProfile::cloudflare},
    {"quad9", &ResolverProfile::quad9},
    {"opendns", &ResolverProfile::opendns},
    {"technitium", &ResolverProfile::technitium},
    {"strict_zero", &ResolverProfile::strict_zero},
    {"permissive", &ResolverProfile::permissive},
    {"item7_violator", &ResolverProfile::item7_violator},
    {"item12_gap", &ResolverProfile::item12_gap},
};

class PolicySweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  static void SetUpTestSuite() {
    internet_ = new testbed::Internet();
    zones_ = testbed::add_probe_infrastructure(*internet_);
    internet_->build();
  }
  static void TearDownTestSuite() {
    delete internet_;
    internet_ = nullptr;
  }

  static testbed::Internet* internet_;
  static std::vector<testbed::ProbeZone> zones_;
};

testbed::Internet* PolicySweep::internet_ = nullptr;
std::vector<testbed::ProbeZone> PolicySweep::zones_;

TEST_P(PolicySweep, InvariantsHoldForEveryProbeZone) {
  const ProfileCase& profile_case = kProfiles[GetParam()];
  const ResolverProfile profile = profile_case.factory();
  auto r = internet_->make_resolver(
      profile, IpAddress::v4(203, 0, 113,
                             static_cast<std::uint8_t>(40 + GetParam())));

  int token = 0;
  for (const auto& zone : zones_) {
    if (zone.label == "valid" || zone.label == "expired" ||
        zone.nsec3_expired)
      continue;
    const Name qname = *zone.apex.prepended("nx")->prepended(
        "p" + std::to_string(token++));
    const Message response = r->resolve(qname, RrType::kA);
    const auto& policy = profile.policy;
    const std::uint16_t n = zone.iterations;

    // 1. RCODE is always NXDOMAIN or SERVFAIL for these probes.
    EXPECT_TRUE(response.header.rcode == Rcode::kNxDomain ||
                response.header.rcode == Rcode::kServFail)
        << profile.name << " @ " << zone.label;

    // 2. Item 8: SERVFAIL exactly above the servfail limit.
    if (policy.servfail_limit) {
      EXPECT_EQ(response.header.rcode == Rcode::kServFail,
                n > *policy.servfail_limit)
          << profile.name << " @ " << zone.label;
    } else {
      EXPECT_EQ(response.header.rcode, Rcode::kNxDomain)
          << profile.name << " @ " << zone.label;
    }

    // 3. Item 6 + RFC 5155 ceiling: AD iff validating and within limits.
    const bool within_limits =
        !policy.exceeds_insecure(n) &&
        !(policy.servfail_limit && n > *policy.servfail_limit);
    if (response.header.rcode == Rcode::kNxDomain) {
      EXPECT_EQ(response.header.ad, within_limits)
          << profile.name << " @ " << zone.label;
    }

    // 4. AD never appears on SERVFAIL.
    if (response.header.rcode == Rcode::kServFail) {
      EXPECT_FALSE(response.header.ad);
    }
  }
}

TEST_P(PolicySweep, ResponsesAreDeterministic) {
  const ProfileCase& profile_case = kProfiles[GetParam()];
  auto a = internet_->make_resolver(
      profile_case.factory(),
      IpAddress::v4(203, 0, 114, static_cast<std::uint8_t>(GetParam() + 1)));
  auto b = internet_->make_resolver(
      profile_case.factory(),
      IpAddress::v4(203, 0, 115, static_cast<std::uint8_t>(GetParam() + 1)));

  for (const char* label : {"it-5", "it-101", "it-250"}) {
    const Name qname = Name::must_parse(
        std::string("det.nx.") + label + ".rfc9276-in-the-wild.com");
    const Message first = a->resolve(qname, RrType::kA);
    const Message second = b->resolve(qname, RrType::kA);
    EXPECT_EQ(first.header.rcode, second.header.rcode) << label;
    EXPECT_EQ(first.header.ad, second.header.ad) << label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, PolicySweep,
    ::testing::Range<std::size_t>(0, std::size(kProfiles)),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return kProfiles[info.param].name;
    });

// --- Failure injection: the network loses packets ---

TEST(ResolverFailureInjection, TotalLossYieldsServfailNotWrongAnswers) {
  testbed::Internet internet;
  testbed::add_probe_infrastructure(internet);
  internet.build();
  auto r = internet.make_resolver(ResolverProfile::bind9_2021(),
                                  IpAddress::v4(203, 0, 113, 99));
  internet.network().set_loss(1.0, 7);
  const Message response = r->resolve(
      Name::must_parse("x.nx.it-5.rfc9276-in-the-wild.com"), RrType::kA);
  EXPECT_EQ(response.header.rcode, Rcode::kServFail);
  internet.network().set_loss(0.0);
}

TEST(ResolverFailureInjection, ModerateLossNeverProducesBogusAd) {
  testbed::Internet internet;
  testbed::add_probe_infrastructure(internet);
  internet.build();
  // Single-shot upstream queries: with retransmission enabled (the
  // default) moderate loss is absorbed by retries and never surfaces.
  auto profile = ResolverProfile::bind9_2021();
  profile.upstream_retry.attempts = 1;
  auto r = internet.make_resolver(profile,
                                  IpAddress::v4(203, 0, 113, 98));
  internet.network().set_loss(0.25, 99);

  int servfails = 0, nxdomains = 0;
  for (int i = 0; i < 60; ++i) {
    const Message response = r->resolve(
        Name::must_parse("l" + std::to_string(i) +
                         ".nx.it-300.rfc9276-in-the-wild.com"),
        RrType::kA);
    if (response.header.rcode == Rcode::kServFail) {
      ++servfails;
      EXPECT_FALSE(response.header.ad);
    } else {
      ASSERT_EQ(response.header.rcode, Rcode::kNxDomain);
      ++nxdomains;
      // it-300 exceeds bind9_2021's limit of 150: never AD, loss or not.
      EXPECT_FALSE(response.header.ad);
    }
  }
  EXPECT_GT(servfails, 0) << "25% loss must cause some failures";
  EXPECT_GT(nxdomains, 0) << "but many queries still succeed";
  internet.network().set_loss(0.0);
}

TEST(ResolverFailureInjection, RecoversAfterLossEnds) {
  testbed::Internet internet;
  testbed::add_probe_infrastructure(internet);
  internet.build();
  auto r = internet.make_resolver(ResolverProfile::bind9_2021(),
                                  IpAddress::v4(203, 0, 113, 97));
  internet.network().set_loss(1.0, 3);
  (void)r->resolve(Name::must_parse("a.nx.it-5.rfc9276-in-the-wild.com"),
                   RrType::kA);
  internet.network().set_loss(0.0);
  r->flush_cache();  // drop the cached SERVFAIL and poisoned contexts
  const Message response = r->resolve(
      Name::must_parse("b.nx.it-5.rfc9276-in-the-wild.com"), RrType::kA);
  EXPECT_EQ(response.header.rcode, Rcode::kNxDomain);
  EXPECT_TRUE(response.header.ad);
}

}  // namespace
}  // namespace zh::resolver
