// simtime::TimerWheel: the deterministic scheduler under the async scan
// engine. Exercises the ordering contract (deadline, then arm sequence),
// lazy cancellation, cascading across wheel levels, and — the load-bearing
// one — a 10k-operation randomized oracle run against a sorted-multimap
// reference scheduler.
#include "simtime/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

namespace zh::simtime {
namespace {

using Expiry = TimerWheel::Expiry;
using TimerId = TimerWheel::TimerId;

std::vector<std::uint64_t> payloads(const std::vector<Expiry>& fired) {
  std::vector<std::uint64_t> out;
  out.reserve(fired.size());
  for (const Expiry& e : fired) out.push_back(e.payload);
  return out;
}

TEST(TimerWheel, FiresAtExactDeadlinesInOrder) {
  TimerWheel wheel;
  wheel.arm(Duration::from_ms(30), 3);
  wheel.arm(Duration::from_ms(10), 1);
  wheel.arm(Duration::from_ms(20), 2);
  EXPECT_EQ(wheel.armed(), 3u);
  ASSERT_TRUE(wheel.next_deadline().has_value());
  EXPECT_EQ(wheel.next_deadline()->millis(), 10);

  const auto first = wheel.advance(Duration::from_ms(10));
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].payload, 1u);
  EXPECT_EQ(first[0].deadline.millis(), 10);

  const auto rest = wheel.advance(Duration::from_ms(100));
  EXPECT_EQ(payloads(rest), (std::vector<std::uint64_t>{2, 3}));
  EXPECT_TRUE(wheel.empty());
  EXPECT_FALSE(wheel.next_deadline().has_value());
}

TEST(TimerWheel, SameDeadlineFiresInArmOrder) {
  TimerWheel wheel;
  // Arm in shuffled payload order; same deadline throughout — delivery
  // must follow arm order (the id), not payload or slot internals.
  const Duration deadline = Duration::from_ms(5);
  for (std::uint64_t payload : {7u, 3u, 9u, 1u, 4u})
    wheel.arm(deadline, payload);
  const auto fired = wheel.advance(Duration::from_ms(5));
  EXPECT_EQ(payloads(fired), (std::vector<std::uint64_t>{7, 3, 9, 1, 4}));
}

TEST(TimerWheel, SubTickDeadlinesFireExactlyNotByTick) {
  TimerWheel wheel(Duration::from_ms(1));
  wheel.arm(Duration::from_us(1500), 15);  // mid-tick
  wheel.arm(Duration::from_us(1200), 12);
  // Advancing to 1.3 ms must fire only the 1.2 ms timer even though both
  // share the 1 ms tick slot.
  const auto first = wheel.advance(Duration::from_us(1300));
  EXPECT_EQ(payloads(first), (std::vector<std::uint64_t>{12}));
  ASSERT_TRUE(wheel.next_deadline().has_value());
  EXPECT_EQ(wheel.next_deadline()->micros(), 1500);
  const auto second = wheel.advance(Duration::from_us(1500));
  EXPECT_EQ(payloads(second), (std::vector<std::uint64_t>{15}));
}

TEST(TimerWheel, CancelSuppressesExpiryAndIsIdempotent) {
  TimerWheel wheel;
  const TimerId keep = wheel.arm(Duration::from_ms(10), 1);
  const TimerId drop = wheel.arm(Duration::from_ms(10), 2);
  EXPECT_TRUE(wheel.cancel(drop));
  EXPECT_FALSE(wheel.cancel(drop));  // already cancelled
  EXPECT_EQ(wheel.armed(), 1u);
  const auto fired = wheel.advance(Duration::from_ms(20));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].id, keep);
  EXPECT_FALSE(wheel.cancel(keep));  // already fired
}

TEST(TimerWheel, PastDeadlineFiresOnNextAdvance) {
  TimerWheel wheel;
  wheel.advance(Duration::from_ms(500));
  wheel.arm(Duration::from_ms(100), 42);  // already overdue
  ASSERT_TRUE(wheel.next_deadline().has_value());
  EXPECT_EQ(wheel.next_deadline()->millis(), 100);
  const auto fired = wheel.advance(Duration::from_ms(500));
  EXPECT_EQ(payloads(fired), (std::vector<std::uint64_t>{42}));
}

TEST(TimerWheel, CascadesAcrossLevels) {
  TimerWheel wheel(Duration::from_ms(1));
  // Level 0 spans 64 ticks, level 1 spans 4096, level 2 spans 262144.
  // One timer per level, plus one far enough out to need level 3.
  wheel.arm(Duration::from_ms(40), 0);           // level 0
  wheel.arm(Duration::from_ms(1000), 1);         // level 1
  wheel.arm(Duration::from_ms(100000), 2);       // level 2
  wheel.arm(Duration::from_ms(10000000), 3);     // level 3
  EXPECT_EQ(wheel.armed(), 4u);

  EXPECT_EQ(payloads(wheel.advance(Duration::from_ms(40))),
            (std::vector<std::uint64_t>{0}));
  EXPECT_EQ(wheel.next_deadline()->millis(), 1000);
  EXPECT_EQ(payloads(wheel.advance(Duration::from_ms(1000))),
            (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(wheel.next_deadline()->millis(), 100000);
  // Jump straight across many cascade boundaries in one advance.
  EXPECT_EQ(payloads(wheel.advance(Duration::from_ms(20000000))),
            (std::vector<std::uint64_t>{2, 3}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, CancelledTimerSurvivesCascadeWithoutFiring) {
  TimerWheel wheel(Duration::from_ms(1));
  const TimerId id = wheel.arm(Duration::from_ms(5000), 1);  // level 1
  wheel.arm(Duration::from_ms(6000), 2);
  EXPECT_TRUE(wheel.cancel(id));
  // The cascade at the 4096-tick boundary must lazily drop the cancelled
  // entry instead of re-filing or firing it.
  const auto fired = wheel.advance(Duration::from_ms(7000));
  EXPECT_EQ(payloads(fired), (std::vector<std::uint64_t>{2}));
  EXPECT_TRUE(wheel.empty());
}

/// Reference scheduler: a sorted multimap keyed by (deadline, arm id) —
/// trivially correct ordering, O(log n) everything.
class ReferenceScheduler {
 public:
  TimerId arm(Duration deadline, std::uint64_t payload) {
    const TimerId id = next_id_++;
    timers_.emplace(std::make_pair(deadline.nanos(), id), payload);
    return id;
  }
  bool cancel(TimerId id) {
    for (auto it = timers_.begin(); it != timers_.end(); ++it) {
      if (it->first.second == id) {
        timers_.erase(it);
        return true;
      }
    }
    return false;
  }
  std::vector<Expiry> advance(Duration now) {
    std::vector<Expiry> fired;
    auto it = timers_.begin();
    while (it != timers_.end() && it->first.first <= now.nanos()) {
      fired.push_back(Expiry{it->first.second, it->second,
                             Duration::from_ns(it->first.first)});
      it = timers_.erase(it);
    }
    return fired;
  }
  std::size_t armed() const { return timers_.size(); }

 private:
  TimerId next_id_ = 1;
  std::map<std::pair<std::int64_t, TimerId>, std::uint64_t> timers_;
};

TEST(TimerWheel, OracleAgainstSortedMultimapUnder10kRandomOps) {
  TimerWheel wheel(Duration::from_ms(1));
  ReferenceScheduler reference;
  // Deterministic splitmix64 stream — no platform-dependent RNG.
  std::uint64_t state = 0x5eed;
  const auto rng = [&state] { return mix64(state++); };

  Duration now;
  std::vector<TimerId> live;  // both schedulers assign identical ids
  for (int op = 0; op < 10000; ++op) {
    const std::uint64_t roll = rng() % 100;
    if (roll < 55) {
      // Arm at a delay spanning every wheel level: sub-tick to ~272 s.
      const std::int64_t delay_ns = static_cast<std::int64_t>(
          rng() % (rng() % 2 ? 2'000'000ull : 272'000'000'000ull));
      const Duration deadline = now + Duration::from_ns(delay_ns);
      const std::uint64_t payload = rng();
      const TimerId a = wheel.arm(deadline, payload);
      const TimerId b = reference.arm(deadline, payload);
      ASSERT_EQ(a, b);
      live.push_back(a);
    } else if (roll < 75 && !live.empty()) {
      const std::size_t pick = rng() % live.size();
      const TimerId id = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      EXPECT_EQ(wheel.cancel(id), reference.cancel(id)) << "op " << op;
    } else {
      now += Duration::from_ns(
          static_cast<std::int64_t>(rng() % 5'000'000'000ull));
      const auto fired = wheel.advance(now);
      const auto expected = reference.advance(now);
      ASSERT_EQ(fired.size(), expected.size()) << "op " << op;
      for (std::size_t i = 0; i < fired.size(); ++i) {
        EXPECT_EQ(fired[i].id, expected[i].id) << "op " << op << " #" << i;
        EXPECT_EQ(fired[i].payload, expected[i].payload);
        EXPECT_EQ(fired[i].deadline.nanos(), expected[i].deadline.nanos());
      }
      for (const Expiry& e : fired)
        live.erase(std::remove(live.begin(), live.end(), e.id), live.end());
    }
    ASSERT_EQ(wheel.armed(), reference.armed()) << "op " << op;
  }
  // Drain: everything still armed must fire, in identical order.
  now += Duration::from_seconds(600);
  const auto fired = wheel.advance(now);
  const auto expected = reference.advance(now);
  ASSERT_EQ(fired.size(), expected.size());
  for (std::size_t i = 0; i < fired.size(); ++i)
    EXPECT_EQ(fired[i].id, expected[i].id) << "#" << i;
  EXPECT_TRUE(wheel.empty());
}

}  // namespace
}  // namespace zh::simtime
