// Property tests for the shard-artefact codec (analysis/serialize.hpp +
// scanner/serialize.hpp): canonical round-trips are byte-identical, and
// every corrupted buffer — truncated, bit-flipped, version-bumped,
// foreign-magic, trailing-garbage — fails with a typed error instead of
// reading out of bounds. run_sanitizers.sh runs this suite under ASan/
// UBSan, which is what turns "fails cleanly" into a checked claim.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <span>
#include <vector>

#include "analysis/serialize.hpp"
#include "scanner/serialize.hpp"

namespace zh::scanner {
namespace {

DomainShardArtefact sample_domain_artefact() {
  DomainShardArtefact artefact;
  artefact.tag = "domain#0";
  artefact.shard = 1;
  artefact.of = 4;
  artefact.jobs = 2;
  artefact.queries_issued = 12345;
  artefact.cost = {.sha1_blocks = 777, .sha2_blocks = 88, .nsec3_hashes = 9};

  DomainCampaignStats& s = artefact.stats;
  s.scanned = 1000;
  s.dnssec = 88;
  s.nsec3 = 52;
  s.excluded = 3;
  s.iterations.add(0, 12);
  s.iterations.add(10, 30);
  s.iterations.add(500, 10);
  s.salt_len.add(0, 5);
  s.salt_len.add(8, 40);
  s.salt_len.add(160, 7);
  s.zero_iterations = 12;
  s.no_salt = 5;
  s.fully_compliant = 4;
  s.opt_out = 6;
  s.over_150_iterations = 10;
  s.at_500_iterations = 10;
  s.salt_over_10 = 7;
  s.salt_over_45 = 7;
  s.salt_at_160 = 7;
  s.operators.add("cloudflare", 20);
  s.operators.add("godaddy", 12);
  s.operator_params["cloudflare"].add("0/0", 20);
  s.operator_params["godaddy"].add("1/8", 10);
  s.operator_params["godaddy"].add("5/8", 2);
  s.scan_latency_us.add(1500, 3);
  s.timeouts = 2;
  s.queue_delay_us.add(10, 1);
  s.queue_drops = 1;
  s.stage_resolve_us.add(1400, 3);
  s.stage_recurse_us.add(700, 3);
  s.stage_validate_us.add(300, 2);
  s.stage_queue_wait_us.add(9, 1);

  for (std::uint32_t i = 0; i < 40; ++i) {
    CompactDomainRecord record;
    record.index = i * 4 + 1;
    record.classification = DomainScanResult::Class::kNsec3Enabled;
    record.iterations = static_cast<std::uint16_t>(i);
    record.salt_len = static_cast<std::uint8_t>(i % 16);
    record.opt_out = (i % 3) == 0;
    artefact.records.push_back(record);
  }
  return artefact;
}

SweepShardArtefact sample_sweep_artefact() {
  SweepShardArtefact artefact;
  artefact.tag = "sweep#2";
  artefact.shard = 0;
  artefact.of = 2;
  artefact.jobs = 3;
  artefact.queries_issued = 99991;
  artefact.population = 512;
  artefact.cost = {.sha1_blocks = 11, .sha2_blocks = 22, .nsec3_hashes = 33};

  ResolverSweepStats& s = artefact.stats;
  s.probed = 512;
  s.validators = 301;
  s.by_iteration[0] = {.nxdomain = 300, .nxdomain_ad = 250, .servfail = 1,
                       .timeouts = 0, .total = 301};
  s.by_iteration[151] = {.nxdomain = 240, .nxdomain_ad = 60, .servfail = 55,
                         .timeouts = 6, .total = 301};
  s.item6 = 180;
  s.item8 = 55;
  s.item7_violations = 1;
  s.item12_gaps = 13;
  s.ede_on_limit = 40;
  s.insecure_limits[50] = 12;
  s.insecure_limits[150] = 150;
  s.servfail_limits[0] = 4;
  s.servfail_limits[100] = 9;
  s.probe_latency_us.add(2500, 301);
  s.timeouts = 6;
  s.queue_delay_us.add(1, 2);
  s.queue_drops = 0;
  s.stop_answering = 3;
  s.stage_resolve_us.add(2400, 301);
  s.stage_recurse_us.add(1200, 301);
  s.stage_validate_us.add(500, 120);
  s.stage_queue_wait_us.add(2, 2);
  return artefact;
}

TEST(ShardCodec, DomainRoundTripIsByteIdentical) {
  const DomainShardArtefact artefact = sample_domain_artefact();
  const std::vector<std::uint8_t> bytes = encode_artefact(artefact);

  DomainShardArtefact decoded;
  analysis::DecodeError error;
  ASSERT_TRUE(decode_artefact(bytes, decoded, error)) << error.to_string();
  EXPECT_EQ(decoded.tag, artefact.tag);
  EXPECT_EQ(decoded.shard, artefact.shard);
  EXPECT_EQ(decoded.of, artefact.of);
  EXPECT_EQ(decoded.jobs, artefact.jobs);
  EXPECT_EQ(decoded.queries_issued, artefact.queries_issued);
  EXPECT_EQ(decoded.records.size(), artefact.records.size());
  EXPECT_EQ(decoded.stats.scanned, artefact.stats.scanned);
  EXPECT_EQ(decoded.stats.operator_params.size(),
            artefact.stats.operator_params.size());
  // Canonical form: re-encoding the decoded artefact reproduces the exact
  // bytes (map iteration is sorted; nothing depends on insertion order).
  EXPECT_EQ(encode_artefact(decoded), bytes);
}

TEST(ShardCodec, SweepRoundTripIsByteIdentical) {
  const SweepShardArtefact artefact = sample_sweep_artefact();
  const std::vector<std::uint8_t> bytes = encode_artefact(artefact);

  SweepShardArtefact decoded;
  analysis::DecodeError error;
  ASSERT_TRUE(decode_artefact(bytes, decoded, error)) << error.to_string();
  EXPECT_EQ(decoded.tag, artefact.tag);
  EXPECT_EQ(decoded.population, artefact.population);
  EXPECT_EQ(decoded.stats.by_iteration.size(),
            artefact.stats.by_iteration.size());
  EXPECT_EQ(decoded.stats.by_iteration.at(151).servfail,
            artefact.stats.by_iteration.at(151).servfail);
  EXPECT_EQ(encode_artefact(decoded), bytes);
}

TEST(ShardCodec, PeekRoutesByKindAndTag) {
  const auto domain_bytes = encode_artefact(sample_domain_artefact());
  const auto sweep_bytes = encode_artefact(sample_sweep_artefact());
  ArtefactKind kind;
  std::string tag;
  analysis::DecodeError error;
  ASSERT_TRUE(peek_artefact(domain_bytes, kind, tag, error));
  EXPECT_EQ(kind, ArtefactKind::kDomainCampaign);
  EXPECT_EQ(tag, "domain#0");
  ASSERT_TRUE(peek_artefact(sweep_bytes, kind, tag, error));
  EXPECT_EQ(kind, ArtefactKind::kResolverSweep);
  EXPECT_EQ(tag, "sweep#2");
}

TEST(ShardCodec, EveryTruncatedPrefixFailsCleanly) {
  const auto bytes = encode_artefact(sample_domain_artefact());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const std::uint8_t> prefix(bytes.data(), len);
    DomainShardArtefact out;
    analysis::DecodeError error;
    EXPECT_FALSE(decode_artefact(prefix, out, error)) << "prefix " << len;
    EXPECT_TRUE(error) << "prefix " << len;
  }
}

TEST(ShardCodec, EverySingleBitFlipIsDetected) {
  const auto bytes = encode_artefact(sample_sweep_artefact());
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> corrupt = bytes;
      corrupt[byte] ^= static_cast<std::uint8_t>(1u << bit);
      SweepShardArtefact out;
      analysis::DecodeError error;
      // The trailing FNV-1a checksum is a bijection per input byte, so any
      // flip either trips a structural check first or lands on kChecksum.
      EXPECT_FALSE(decode_artefact(corrupt, out, error))
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(ShardCodec, VersionBumpIsRejected) {
  auto bytes = encode_artefact(sample_domain_artefact());
  bytes[4] = static_cast<std::uint8_t>(kShardFormatVersion + 1);  // LE u16
  DomainShardArtefact out;
  analysis::DecodeError error;
  EXPECT_FALSE(decode_artefact(bytes, out, error));
  EXPECT_EQ(error.code, analysis::DecodeErrc::kBadVersion);
  // peek refuses too: a future layout must not be half-parsed.
  ArtefactKind kind;
  std::string tag;
  EXPECT_FALSE(peek_artefact(bytes, kind, tag, error));
}

TEST(ShardCodec, ForeignMagicIsRejected) {
  auto bytes = encode_artefact(sample_domain_artefact());
  bytes[0] = 'X';
  DomainShardArtefact out;
  analysis::DecodeError error;
  EXPECT_FALSE(decode_artefact(bytes, out, error));
  EXPECT_EQ(error.code, analysis::DecodeErrc::kBadMagic);
}

TEST(ShardCodec, TrailingBytesAreRejected) {
  auto bytes = encode_artefact(sample_domain_artefact());
  bytes.push_back(0);
  DomainShardArtefact out;
  analysis::DecodeError error;
  EXPECT_FALSE(decode_artefact(bytes, out, error));
}

TEST(ShardCodec, WrongKindIsRejected) {
  const auto sweep_bytes = encode_artefact(sample_sweep_artefact());
  DomainShardArtefact out;
  analysis::DecodeError error;
  EXPECT_FALSE(decode_artefact(sweep_bytes, out, error));
  EXPECT_EQ(error.code, analysis::DecodeErrc::kBadValue);
}

TEST(ShardCodec, NonCanonicalPayloadIsRejected) {
  // Handcraft an Ecdf with duplicate keys: canonical decoders must refuse
  // (duplicates would make re-encode ≠ original and merges ambiguous).
  analysis::Encoder enc;
  enc.u64(2);
  enc.i64(5);
  enc.u64(1);
  enc.i64(5);  // duplicate key
  enc.u64(1);
  const auto bytes = enc.take();
  analysis::Decoder dec(bytes);
  analysis::Ecdf out;
  EXPECT_FALSE(analysis::decode(dec, out));
  EXPECT_EQ(dec.error().code, analysis::DecodeErrc::kBadValue);

  // Zero counts are equally non-canonical (merge algebra never emits them).
  analysis::Encoder enc2;
  enc2.u64(1);
  enc2.i64(5);
  enc2.u64(0);
  const auto bytes2 = enc2.take();
  analysis::Decoder dec2(bytes2);
  analysis::Ecdf out2;
  EXPECT_FALSE(analysis::decode(dec2, out2));
}

TEST(ShardCodec, EcdfAndFreqTableRoundTrip) {
  analysis::Ecdf ecdf;
  ecdf.add(-3, 2);
  ecdf.add(0, 100);
  ecdf.add(1 << 20, 1);
  analysis::FreqTable table;
  table.add("alpha", 3);
  table.add("beta", 44);

  analysis::Encoder enc;
  analysis::encode(enc, ecdf);
  analysis::encode(enc, table);
  const auto bytes = enc.take();

  analysis::Decoder dec(bytes);
  analysis::Ecdf ecdf2;
  analysis::FreqTable table2;
  ASSERT_TRUE(analysis::decode(dec, ecdf2));
  ASSERT_TRUE(analysis::decode(dec, table2));
  ASSERT_TRUE(dec.expect_end());
  EXPECT_EQ(ecdf2.histogram(), ecdf.histogram());
  EXPECT_EQ(table2.raw(), table.raw());

  analysis::Encoder enc2;
  analysis::encode(enc2, ecdf2);
  analysis::encode(enc2, table2);
  EXPECT_EQ(enc2.take(), bytes);
}

TEST(ShardCodec, FileRoundTrip) {
  const auto bytes = encode_artefact(sample_domain_artefact());
  const std::string path =
      ::testing::TempDir() + "/zh_shard_artefact_test.bin";
  ASSERT_TRUE(analysis::write_bytes_file(path, bytes));
  const auto back = analysis::read_bytes_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes);
  std::remove(path.c_str());
  EXPECT_FALSE(analysis::read_bytes_file(path).has_value());
}

}  // namespace
}  // namespace zh::scanner
