// Unit tests for the message model and wire codec: header flags, sections,
// name compression (write + read), EDNS/EDE, and malformed-input rejection.
#include <gtest/gtest.h>

#include "dns/message.hpp"

namespace zh::dns {
namespace {

Message sample_response() {
  Message query = Message::make_query(0x1234, Name::must_parse("www.example.com"),
                                      RrType::kA);
  Message response = Message::make_response(query);
  response.header.rcode = Rcode::kNoError;
  response.header.aa = true;
  response.header.ra = true;
  response.answers.push_back(
      make_a(Name::must_parse("www.example.com"), 300, 192, 0, 2, 1));
  response.authorities.push_back(make_ns(Name::must_parse("example.com"), 3600,
                                         Name::must_parse("ns1.example.com")));
  response.additionals.push_back(
      make_a(Name::must_parse("ns1.example.com"), 3600, 192, 0, 2, 53));
  return response;
}

TEST(Message, QueryRoundTrip) {
  const Message query =
      Message::make_query(42, Name::must_parse("example.com"), RrType::kDnskey);
  const auto wire = query.to_wire();
  const auto back = Message::from_wire(
      std::span<const std::uint8_t>(wire.data(), wire.size()));
  ASSERT_TRUE(back);
  EXPECT_EQ(back->header.id, 42);
  EXPECT_FALSE(back->header.qr);
  EXPECT_TRUE(back->header.rd);
  ASSERT_EQ(back->questions.size(), 1u);
  EXPECT_TRUE(back->questions[0].name.equals(Name::must_parse("example.com")));
  EXPECT_EQ(back->questions[0].type, RrType::kDnskey);
  ASSERT_TRUE(back->edns);
  EXPECT_TRUE(back->edns->do_bit);
}

TEST(Message, ResponseRoundTripAllSections) {
  const Message response = sample_response();
  const auto wire = response.to_wire();
  const auto back = Message::from_wire(
      std::span<const std::uint8_t>(wire.data(), wire.size()));
  ASSERT_TRUE(back);
  EXPECT_TRUE(back->header.qr);
  EXPECT_TRUE(back->header.aa);
  ASSERT_EQ(back->answers.size(), 1u);
  ASSERT_EQ(back->authorities.size(), 1u);
  ASSERT_EQ(back->additionals.size(), 1u);
  EXPECT_EQ(back->answers[0].as<ARdata>()->to_string(), "192.0.2.1");
  EXPECT_TRUE(back->authorities[0].as<NsRdata>()->nsdname.equals(
      Name::must_parse("ns1.example.com")));
}

TEST(Message, CompressionShrinksRepeatedNames) {
  const Message response = sample_response();
  const auto wire = response.to_wire();
  // Sum of uncompressed name lengths greatly exceeds the wire when
  // "example.com" suffixes share pointers; check a conservative bound.
  std::size_t uncompressed = 12;  // header
  const auto name_len = [](const Name& name) { return name.wire_length(); };
  uncompressed += name_len(response.questions[0].name) + 4;
  for (const auto& rr : {response.answers[0], response.authorities[0],
                         response.additionals[0]})
    uncompressed += name_len(rr.name) + 10 + rr.rdata.size();
  EXPECT_LT(wire.size(), uncompressed);
}

TEST(Message, CompressedNamesDecodeCaseInsensitively) {
  Message msg = Message::make_query(7, Name::must_parse("WWW.EXAMPLE.COM"),
                                    RrType::kA);
  msg.answers.push_back(
      make_a(Name::must_parse("www.example.com"), 60, 1, 2, 3, 4));
  const auto wire = msg.to_wire();
  const auto back = Message::from_wire(
      std::span<const std::uint8_t>(wire.data(), wire.size()));
  ASSERT_TRUE(back);
  EXPECT_TRUE(back->answers[0].name.equals(back->questions[0].name));
}

TEST(Message, RdataNameCompressionIsNormalised) {
  // Hand-craft a message whose NS rdata uses a compression pointer into the
  // question name; the parser must decompress it.
  Message msg = Message::make_query(9, Name::must_parse("example.com"),
                                    RrType::kNs);
  msg.edns.reset();
  auto wire = msg.to_wire();
  // Append an answer record manually: name = pointer to offset 12
  // (question name), type NS, class IN, ttl 60, rdata = pointer to offset 12.
  const std::vector<std::uint8_t> rr = {
      0xc0, 12,              // owner: pointer to "example.com"
      0x00, 0x02,            // NS
      0x00, 0x01,            // IN
      0x00, 0x00, 0x00, 60,  // TTL
      0x00, 0x02,            // rdlength = 2
      0xc0, 12,              // nsdname: pointer to "example.com"
  };
  wire.insert(wire.end(), rr.begin(), rr.end());
  wire[7] = 1;  // ancount = 1
  const auto back = Message::from_wire(
      std::span<const std::uint8_t>(wire.data(), wire.size()));
  ASSERT_TRUE(back);
  ASSERT_EQ(back->answers.size(), 1u);
  const auto ns = back->answers[0].as<NsRdata>();
  ASSERT_TRUE(ns);
  EXPECT_TRUE(ns->nsdname.equals(Name::must_parse("example.com")));
  // And the stored rdata is the uncompressed form.
  EXPECT_EQ(back->answers[0].rdata.size(),
            Name::must_parse("example.com").wire_length());
}

TEST(Message, RejectsPointerLoops) {
  // A name that is a pointer to itself.
  std::vector<std::uint8_t> wire = {
      0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0xc0, 12,    // question name: pointer to offset 12 (itself)
      0x00, 0x01,  // A
      0x00, 0x01,  // IN
  };
  EXPECT_FALSE(Message::from_wire(
      std::span<const std::uint8_t>(wire.data(), wire.size())));
}

TEST(Message, RejectsForwardPointers) {
  std::vector<std::uint8_t> wire = {
      0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0xc0, 200,   // question name: forward/out-of-range pointer
      0x00, 0x01, 0x00, 0x01,
  };
  EXPECT_FALSE(Message::from_wire(
      std::span<const std::uint8_t>(wire.data(), wire.size())));
}

TEST(Message, RejectsTruncatedHeader) {
  const std::vector<std::uint8_t> wire = {0x00, 0x01, 0x00};
  EXPECT_FALSE(Message::from_wire(
      std::span<const std::uint8_t>(wire.data(), wire.size())));
}

TEST(Message, RejectsCountMismatch) {
  Message msg = Message::make_query(1, Name::must_parse("example.com"),
                                    RrType::kA);
  auto wire = msg.to_wire();
  wire[5] = 9;  // claim 9 questions
  EXPECT_FALSE(Message::from_wire(
      std::span<const std::uint8_t>(wire.data(), wire.size())));
}

TEST(Message, EdnsRoundTripWithEde) {
  Message msg = Message::make_query(5, Name::must_parse("it-500.test"),
                                    RrType::kA);
  msg.header.qr = true;
  msg.header.rcode = Rcode::kServFail;
  msg.edns->add_ede(EdeCode::kUnsupportedNsec3Iterations,
                    "NSEC3 iterations 500 > 150");
  const auto wire = msg.to_wire();
  const auto back = Message::from_wire(
      std::span<const std::uint8_t>(wire.data(), wire.size()));
  ASSERT_TRUE(back);
  ASSERT_TRUE(back->edns);
  const auto ede = back->edns->ede();
  ASSERT_TRUE(ede);
  EXPECT_EQ(ede->info_code, EdeCode::kUnsupportedNsec3Iterations);
  EXPECT_EQ(ede->extra_text, "NSEC3 iterations 500 > 150");
  EXPECT_EQ(back->header.rcode, Rcode::kServFail);
}

TEST(Message, OptRecordLiftedOutOfAdditionals) {
  const Message msg = Message::make_query(5, Name::must_parse("example.com"),
                                          RrType::kA);
  const auto wire = msg.to_wire();
  const auto back = Message::from_wire(
      std::span<const std::uint8_t>(wire.data(), wire.size()));
  ASSERT_TRUE(back);
  EXPECT_TRUE(back->additionals.empty());
  EXPECT_TRUE(back->edns);
}

TEST(Message, AdBitSurvivesRoundTrip) {
  Message msg = Message::make_query(6, Name::must_parse("example.com"),
                                    RrType::kA);
  msg.header.qr = true;
  msg.header.ad = true;
  msg.header.rcode = Rcode::kNxDomain;
  const auto wire = msg.to_wire();
  const auto back = Message::from_wire(
      std::span<const std::uint8_t>(wire.data(), wire.size()));
  ASSERT_TRUE(back);
  EXPECT_TRUE(back->header.ad);
  EXPECT_EQ(back->header.rcode, Rcode::kNxDomain);
}

TEST(Message, NoEdnsMeansNoOptRecord) {
  Message msg = Message::make_query(8, Name::must_parse("example.com"),
                                    RrType::kA);
  msg.edns.reset();
  const auto wire = msg.to_wire();
  const auto back = Message::from_wire(
      std::span<const std::uint8_t>(wire.data(), wire.size()));
  ASSERT_TRUE(back);
  EXPECT_FALSE(back->edns);
}

TEST(Message, AnswersOfTypeFilters) {
  Message msg = sample_response();
  msg.answers.push_back(make_txt(Name::must_parse("www.example.com"), 60,
                                 "hello"));
  EXPECT_EQ(msg.answers_of_type(RrType::kA).size(), 1u);
  EXPECT_EQ(msg.answers_of_type(RrType::kTxt).size(), 1u);
  EXPECT_EQ(msg.answers_of_type(RrType::kNsec3).size(), 0u);
  EXPECT_EQ(msg.authorities_of_type(RrType::kNs).size(), 1u);
}

TEST(Message, TypedRangesMatchDeepCopyingFilters) {
  // answers_with/authorities_with are the lazy, non-copying twins of
  // answers_of_type/authorities_of_type: same records, same order.
  Message msg = sample_response();
  msg.answers.push_back(make_txt(Name::must_parse("www.example.com"), 60,
                                 "hello"));
  for (const RrType type :
       {RrType::kA, RrType::kTxt, RrType::kNs, RrType::kNsec3}) {
    const auto copied = msg.answers_of_type(type);
    const auto range = msg.answers_with(type);
    EXPECT_EQ(range.size(), copied.size());
    EXPECT_EQ(range.empty(), copied.empty());
    std::size_t i = 0;
    for (const ResourceRecord& rr : range) {
      ASSERT_LT(i, copied.size());
      EXPECT_EQ(rr.type, copied[i].type);
      EXPECT_EQ(rr.rdata, copied[i].rdata);
      EXPECT_TRUE(rr.name.equals(copied[i].name));
      ++i;
    }
    EXPECT_EQ(i, copied.size());
    if (!copied.empty()) EXPECT_EQ(range.front().rdata, copied.front().rdata);
  }
  EXPECT_EQ(msg.authorities_with(RrType::kNs).size(),
            msg.authorities_of_type(RrType::kNs).size());
  EXPECT_TRUE(msg.authorities_with(RrType::kNsec3).empty());
}

TEST(Message, WireSizeMatchesEncodingWithCompression) {
  // wire_size() must replicate the compressor's pointer decisions exactly —
  // sample_response() compresses aggressively (shared example.com suffixes).
  const Message response = sample_response();
  EXPECT_EQ(response.wire_size(), response.to_wire().size());

  // A query (no compression opportunities, EDNS present).
  const Message query =
      Message::make_query(7, Name::must_parse("a.b.example.com"), RrType::kA);
  EXPECT_EQ(query.wire_size(), query.to_wire().size());

  // Names landing past the 0x3fff pointer-offset ceiling must not be
  // registered as compression targets; pad a message past 16 KiB and append
  // repeated owners to force that branch in both encoder and sizer.
  Message big = sample_response();
  for (int i = 0; i < 500; ++i) {
    big.answers.push_back(make_txt(Name::must_parse("pad.example.com"), 60,
                                   std::string(30, 'p')));
  }
  big.answers.push_back(make_txt(
      Name::must_parse("tail.far.example.org"), 60, "x"));
  big.answers.push_back(make_txt(
      Name::must_parse("tail.far.example.org"), 60, "y"));
  ASSERT_GT(big.to_wire().size(), 0x4000u);
  EXPECT_EQ(big.wire_size(), big.to_wire().size());
}

TEST(Message, SummaryMentionsRcodeAndQuestion) {
  const Message msg = sample_response();
  const std::string summary = msg.summary();
  EXPECT_NE(summary.find("NOERROR"), std::string::npos);
  EXPECT_NE(summary.find("www.example.com."), std::string::npos);
  EXPECT_NE(summary.find("AA"), std::string::npos);
}

TEST(Message, FuzzedTruncationNeverCrashes) {
  const Message msg = sample_response();
  const auto wire = msg.to_wire();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    // Must either parse (short prefixes can't) or return nullopt — no UB.
    (void)Message::from_wire(std::span<const std::uint8_t>(wire.data(), len));
  }
  SUCCEED();
}

}  // namespace
}  // namespace zh::dns
