// Tests for the shared bench flag vocabulary (bench/bench_common.hpp):
// every parsed flag must land in BenchFlags AND survive the apply()
// hand-off into scanner::ParallelOptions (--trace-format once fell
// through that gap), and environment parsing must reject garbage instead
// of atoll-ing it into surprising numbers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"

namespace zh::bench {
namespace {

/// Builds a mutable argv (parse_flags takes char**, as main does).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (auto& arg : storage_) pointers_.push_back(arg.data());
    pointers_.push_back(nullptr);
  }
  int argc() const { return static_cast<int>(storage_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

/// Scoped environment override (unset on destruction).
class EnvVar {
 public:
  EnvVar(const char* name, const char* value) : name_(name) {
    setenv(name, value, 1);
  }
  ~EnvVar() { unsetenv(name_); }

 private:
  const char* name_;
};

TEST(BenchFlags, EveryFlagLandsInFlagsAndOptions) {
  Argv argv({"bench", "--jobs", "3", "--loss", "0.25", "--retries", "5",
             "--timeout", "1500", "--latency", "20", "--jitter", "4",
             "--trace", "/tmp/t.jsonl", "--trace-format", "chrome"});
  const BenchFlags flags = parse_flags(argv.argc(), argv.argv());
  EXPECT_EQ(flags.jobs, 3u);
  EXPECT_DOUBLE_EQ(flags.loss, 0.25);
  EXPECT_EQ(flags.retry.attempts, 5u);
  EXPECT_EQ(flags.retry.timeout.millis(), 1500);
  EXPECT_DOUBLE_EQ(flags.latency_ms, 20.0);
  EXPECT_DOUBLE_EQ(flags.jitter_ms, 4.0);
  EXPECT_EQ(flags.trace_path, "/tmp/t.jsonl");
  EXPECT_EQ(flags.trace_format, trace::Format::kChrome);
  EXPECT_EQ(flags.exe, "bench");

  // The apply() hand-off: nothing parsed may stop short of the engine.
  scanner::ParallelOptions options{.base_seed = 7};
  flags.apply(options);
  EXPECT_EQ(options.jobs, 3u);
  EXPECT_DOUBLE_EQ(options.loss_probability, 0.25);
  EXPECT_EQ(options.retry.attempts, 5u);
  EXPECT_EQ(options.retry.timeout.millis(), 1500);
  EXPECT_TRUE(options.trace.enabled);
  EXPECT_EQ(options.trace.format, trace::Format::kChrome);  // the regression
  EXPECT_EQ(options.shard_index, 0u);
  EXPECT_EQ(options.shard_count, 1u);
}

TEST(BenchFlags, EngineSelectionLandsInFlagsAndOptions) {
  Argv argv({"bench", "--engine", "async", "--max-inflight", "256"});
  const BenchFlags flags = parse_flags(argv.argc(), argv.argv());
  EXPECT_EQ(flags.engine, scanner::Engine::kAsync);
  EXPECT_EQ(flags.max_inflight, 256u);

  scanner::ParallelOptions options;
  flags.apply(options);
  EXPECT_EQ(options.engine, scanner::Engine::kAsync);
  EXPECT_EQ(options.max_inflight, 256u);

  // Workers inherit the engine choice (it applies per worker process).
  EXPECT_EQ(flags.worker_args,
            (std::vector<std::string>{"--engine", "async", "--max-inflight",
                                      "256"}));

  // Default stays the historical blocking engine; garbage is rejected.
  Argv argv2({"bench", "--engine", "turbo"});
  const BenchFlags defaults = parse_flags(argv2.argc(), argv2.argv());
  EXPECT_EQ(defaults.engine, scanner::Engine::kBlocking);
  EXPECT_EQ(defaults.max_inflight, 1024u);
}

TEST(BenchEnv, EngineAndInflightComeFromEnvironment) {
  EnvVar engine("ZH_ENGINE", "async");
  EnvVar inflight("ZH_MAX_INFLIGHT", "64");
  Argv argv({"bench"});
  const BenchFlags flags = parse_flags(argv.argc(), argv.argv());
  EXPECT_EQ(flags.engine, scanner::Engine::kAsync);
  EXPECT_EQ(flags.max_inflight, 64u);

  // The command line overrides the environment.
  Argv argv2({"bench", "--engine=blocking", "--max-inflight=8"});
  const BenchFlags overridden = parse_flags(argv2.argc(), argv2.argv());
  EXPECT_EQ(overridden.engine, scanner::Engine::kBlocking);
  EXPECT_EQ(overridden.max_inflight, 8u);
}

TEST(BenchFlags, EqualsFormAndShortJobsWork) {
  Argv argv({"bench", "--jobs=4", "--loss=0.5", "--trace-format=chrome"});
  const BenchFlags flags = parse_flags(argv.argc(), argv.argv());
  EXPECT_EQ(flags.jobs, 4u);
  EXPECT_DOUBLE_EQ(flags.loss, 0.5);
  EXPECT_EQ(flags.trace_format, trace::Format::kChrome);

  Argv argv2({"bench", "-j6"});
  EXPECT_EQ(parse_flags(argv2.argc(), argv2.argv()).jobs, 6u);
}

TEST(BenchFlags, WorkerModeFlagsApplyAsSubShard) {
  Argv argv({"bench", "--jobs", "2", "--shard", "1", "--of", "3",
             "--emit-shard", "/tmp/base"});
  const BenchFlags flags = parse_flags(argv.argc(), argv.argv());
  EXPECT_TRUE(flags.worker_mode());
  EXPECT_EQ(flags.shard, 1u);
  EXPECT_EQ(flags.of, 3u);
  EXPECT_EQ(flags.emit_shard, "/tmp/base");

  scanner::ParallelOptions options;
  flags.apply(options);
  EXPECT_EQ(options.jobs, 2u);
  EXPECT_EQ(options.shard_index, 1u);
  EXPECT_EQ(options.shard_count, 3u);
}

TEST(BenchFlags, MergeShardsConsumesRemainingArguments) {
  Argv argv({"bench", "--jobs", "2", "--merge-shards", "a.bin", "b.bin",
             "c.bin"});
  const BenchFlags flags = parse_flags(argv.argc(), argv.argv());
  EXPECT_TRUE(flags.merge_mode());
  EXPECT_EQ(flags.merge_shards,
            (std::vector<std::string>{"a.bin", "b.bin", "c.bin"}));
}

TEST(BenchFlags, WorkerArgsExcludeOrchestrationAndTraceFlags) {
  Argv argv({"bench", "--jobs", "2", "--procs", "4", "--loss", "0.1",
             "--trace", "/tmp/t", "--trace-format", "chrome", "--retries=7"});
  const BenchFlags flags = parse_flags(argv.argc(), argv.argv());
  EXPECT_EQ(flags.procs, 4u);
  // Workers inherit workload flags, never fan-out or trace flags.
  EXPECT_EQ(flags.worker_args, (std::vector<std::string>{
                                   "--jobs", "2", "--loss", "0.1",
                                   "--retries=7"}));
}

TEST(BenchFlags, ProcsZeroMeansAllHardwareThreads) {
  Argv argv({"bench", "--procs", "0"});
  const BenchFlags flags = parse_flags(argv.argc(), argv.argv());
  EXPECT_EQ(flags.procs, scanner::default_jobs());
  Argv argv2({"bench", "--procs", "-3"});
  EXPECT_EQ(parse_flags(argv2.argc(), argv2.argv()).procs, 1u);
}

TEST(BenchEnv, RejectsNegativeAndGarbageIntegers) {
  {
    EnvVar env("ZH_TEST_U64", "-3");
    EXPECT_EQ(env_u64("ZH_TEST_U64", 42), 42u);
  }
  {
    EnvVar env("ZH_TEST_U64", "banana");
    EXPECT_EQ(env_u64("ZH_TEST_U64", 7), 7u);
  }
  {
    EnvVar env("ZH_TEST_U64", "12abc");
    EXPECT_EQ(env_u64("ZH_TEST_U64", 7), 7u);
  }
  {
    EnvVar env("ZH_TEST_U64", "99");
    EXPECT_EQ(env_u64("ZH_TEST_U64", 7), 99u);
  }
  EXPECT_EQ(env_u64("ZH_TEST_U64_UNSET", 5), 5u);
}

TEST(BenchEnv, BadRetriesAndProcsFallBackToDefaults) {
  {
    EnvVar retries("ZH_RETRIES", "-2");
    EnvVar procs("ZH_PROCS", "nope");
    Argv argv({"bench"});
    const BenchFlags flags = parse_flags(argv.argc(), argv.argv());
    EXPECT_EQ(flags.retry.attempts, simtime::RetryPolicy{}.attempts);
    EXPECT_EQ(flags.procs, 1u);
  }
  {
    EnvVar procs("ZH_PROCS", "3");
    Argv argv({"bench"});
    EXPECT_EQ(parse_flags(argv.argc(), argv.argv()).procs, 3u);
  }
}

TEST(BenchFlags, FrontendFlagsParseBothForms) {
  Argv argv({"bench", "--listen", "0.0.0.0", "--port=5353",
             "--tcp-idle-ms", "2500", "--pending-budget=64"});
  const BenchFlags flags = parse_flags(argv.argc(), argv.argv());
  EXPECT_EQ(flags.listen, "0.0.0.0");
  EXPECT_EQ(flags.port, 5353u);
  EXPECT_EQ(flags.tcp_idle_ms, 2500);
  EXPECT_EQ(flags.pending_budget, 64u);
}

TEST(BenchFlags, FrontendFlagsDefaultToLoopbackEphemeral) {
  Argv argv({"bench"});
  const BenchFlags flags = parse_flags(argv.argc(), argv.argv());
  EXPECT_EQ(flags.listen, "127.0.0.1");
  EXPECT_EQ(flags.port, 0u);
  EXPECT_EQ(flags.tcp_idle_ms, 10000);
  EXPECT_EQ(flags.pending_budget, 512u);
}

TEST(BenchEnv, FrontendKnobsComeFromEnvironmentAndFlagsWin) {
  EnvVar listen("ZH_LISTEN", "10.0.0.1");
  EnvVar port("ZH_PORT", "8053");
  EnvVar idle("ZH_TCP_IDLE_MS", "1234");
  EnvVar budget("ZH_PENDING_BUDGET", "32");
  {
    Argv argv({"bench"});
    const BenchFlags flags = parse_flags(argv.argc(), argv.argv());
    EXPECT_EQ(flags.listen, "10.0.0.1");
    EXPECT_EQ(flags.port, 8053u);
    EXPECT_EQ(flags.tcp_idle_ms, 1234);
    EXPECT_EQ(flags.pending_budget, 32u);
  }
  {
    // Command-line overrides the environment, as for every other knob.
    Argv argv({"bench", "--listen", "127.0.0.1", "--port", "0"});
    const BenchFlags flags = parse_flags(argv.argc(), argv.argv());
    EXPECT_EQ(flags.listen, "127.0.0.1");
    EXPECT_EQ(flags.port, 0u);
    EXPECT_EQ(flags.tcp_idle_ms, 1234);  // env still supplies the rest
  }
}

TEST(BenchFlags, FrontendPortRejectsOutOfRange) {
  Argv argv({"bench", "--port", "70000", "--pending-budget", "0"});
  const BenchFlags flags = parse_flags(argv.argc(), argv.argv());
  EXPECT_EQ(flags.port, 0u);             // out-of-range port ignored
  EXPECT_EQ(flags.pending_budget, 512u);  // zero budget would shed everything
}

TEST(BenchFlags, Sha1ImplParsesAndForwardsToWorkers) {
  const crypto::Sha1Impl previous = crypto::sha1_impl();

  Argv argv({"bench", "--sha1-impl", "scalar"});
  const BenchFlags flags = parse_flags(argv.argc(), argv.argv());
  ASSERT_TRUE(flags.sha1_impl.has_value());
  EXPECT_EQ(*flags.sha1_impl, crypto::Sha1Impl::kScalar);
  EXPECT_EQ(crypto::sha1_impl(), crypto::Sha1Impl::kScalar);
  // Worker processes must hash through the same kernel.
  EXPECT_EQ(flags.worker_args,
            (std::vector<std::string>{"--sha1-impl", "scalar"}));

  // Garbage is diagnosed and ignored: the active kernel stays put.
  Argv argv2({"bench", "--sha1-impl", "turbo"});
  const BenchFlags garbage = parse_flags(argv2.argc(), argv2.argv());
  EXPECT_FALSE(garbage.sha1_impl.has_value());
  EXPECT_EQ(crypto::sha1_impl(), crypto::Sha1Impl::kScalar);

  crypto::set_sha1_impl(previous);
}

TEST(BenchFlags, ChainMemoParsesAndForwardsToWorkers) {
  const std::size_t previous = zone::Nsec3ChainMemo::default_capacity();

  Argv argv({"bench", "--chain-memo", "0"});
  const BenchFlags flags = parse_flags(argv.argc(), argv.argv());
  ASSERT_TRUE(flags.chain_memo.has_value());
  EXPECT_EQ(*flags.chain_memo, 0u);
  EXPECT_EQ(zone::Nsec3ChainMemo::default_capacity(), 0u);
  EXPECT_EQ(flags.worker_args,
            (std::vector<std::string>{"--chain-memo", "0"}));

  // Negative and non-numeric values keep the previous default.
  Argv argv2({"bench", "--chain-memo", "-4"});
  const BenchFlags negative = parse_flags(argv2.argc(), argv2.argv());
  EXPECT_FALSE(negative.chain_memo.has_value());
  EXPECT_EQ(zone::Nsec3ChainMemo::default_capacity(), 0u);

  Argv argv3({"bench", "--chain-memo", "many"});
  const BenchFlags garbage = parse_flags(argv3.argc(), argv3.argv());
  EXPECT_FALSE(garbage.chain_memo.has_value());
  EXPECT_EQ(zone::Nsec3ChainMemo::default_capacity(), 0u);

  // A valid value lands even in equals form.
  Argv argv4({"bench", "--chain-memo=128"});
  const BenchFlags large = parse_flags(argv4.argc(), argv4.argv());
  ASSERT_TRUE(large.chain_memo.has_value());
  EXPECT_EQ(*large.chain_memo, 128u);
  EXPECT_EQ(zone::Nsec3ChainMemo::default_capacity(), 128u);

  zone::Nsec3ChainMemo::set_default_capacity(previous);
}

TEST(BenchFlags, AggressiveNsecParsesAndForwardsToWorkers) {
  Argv argv({"bench", "--aggressive-nsec", "on", "--neg-cache-cap", "512",
             "--failure-cache-ttl", "2000"});
  const BenchFlags flags = parse_flags(argv.argc(), argv.argv());
  ASSERT_TRUE(flags.aggressive_nsec.has_value());
  EXPECT_TRUE(flags.aggressive());
  EXPECT_EQ(flags.neg_cache_cap, 512u);
  EXPECT_EQ(flags.failure_cache_ttl_ms, 2000);
  // Worker processes must run the same cache configuration.
  EXPECT_EQ(flags.worker_args,
            (std::vector<std::string>{"--aggressive-nsec", "on",
                                      "--neg-cache-cap", "512",
                                      "--failure-cache-ttl", "2000"}));

  // The profile hook installs the capability only when the flag is on.
  resolver::ResolverProfile on = resolver::ResolverProfile::cloudflare();
  flags.apply_aggressive(on);
  EXPECT_TRUE(on.aggressive_nsec);
  EXPECT_TRUE(on.failure_caching);
  EXPECT_EQ(on.neg_cache_capacity, 512u);
  EXPECT_EQ(on.failure_cache_ttl.millis(), 2000);

  // "off" (and the default) leave the profile byte-identical — the
  // synth-off golden contract.
  Argv argv2({"bench", "--aggressive-nsec=off"});
  const BenchFlags off = parse_flags(argv2.argc(), argv2.argv());
  ASSERT_TRUE(off.aggressive_nsec.has_value());
  EXPECT_FALSE(off.aggressive());
  resolver::ResolverProfile untouched =
      resolver::ResolverProfile::cloudflare();
  off.apply_aggressive(untouched);
  EXPECT_FALSE(untouched.aggressive_nsec);
  EXPECT_FALSE(untouched.failure_caching);

  Argv argv3({"bench"});
  EXPECT_FALSE(parse_flags(argv3.argc(), argv3.argv()).aggressive());
}

TEST(BenchFlags, AggressiveNsecRejectsGarbage) {
  // Unknown mode: the flag stays unset (off), defaults preserved.
  Argv argv({"bench", "--aggressive-nsec", "maybe", "--neg-cache-cap",
             "banana", "--failure-cache-ttl", "-5"});
  const BenchFlags flags = parse_flags(argv.argc(), argv.argv());
  EXPECT_FALSE(flags.aggressive_nsec.has_value());
  EXPECT_EQ(flags.neg_cache_cap, 4096u);
  EXPECT_EQ(flags.failure_cache_ttl_ms, 5000);

  // Zero capacity and zero TTL are rejected too (a zero-interval cache or
  // zero-length failure TTL is never what the caller meant).
  Argv argv2({"bench", "--neg-cache-cap=0", "--failure-cache-ttl=0"});
  const BenchFlags zeros = parse_flags(argv2.argc(), argv2.argv());
  EXPECT_EQ(zeros.neg_cache_cap, 4096u);
  EXPECT_EQ(zeros.failure_cache_ttl_ms, 5000);
}

TEST(BenchEnv, AggressiveNsecComesFromEnvironmentAndFlagsWin) {
  EnvVar aggressive("ZH_AGGRESSIVE_NSEC", "on");
  EnvVar cap("ZH_NEG_CACHE_CAP", "64");
  EnvVar ttl("ZH_FAILURE_CACHE_TTL", "1500");
  {
    Argv argv({"bench"});
    const BenchFlags flags = parse_flags(argv.argc(), argv.argv());
    EXPECT_TRUE(flags.aggressive());
    EXPECT_EQ(flags.neg_cache_cap, 64u);
    EXPECT_EQ(flags.failure_cache_ttl_ms, 1500);
  }
  {
    // The command line overrides the environment, knob by knob.
    Argv argv({"bench", "--aggressive-nsec", "off", "--neg-cache-cap=128"});
    const BenchFlags flags = parse_flags(argv.argc(), argv.argv());
    EXPECT_FALSE(flags.aggressive());
    EXPECT_EQ(flags.neg_cache_cap, 128u);
    EXPECT_EQ(flags.failure_cache_ttl_ms, 1500);  // env still supplies this
  }
}

TEST(BenchEnv, AggressiveNsecGarbageEnvironmentStaysOff) {
  EnvVar aggressive("ZH_AGGRESSIVE_NSEC", "sometimes");
  Argv argv({"bench"});
  const BenchFlags flags = parse_flags(argv.argc(), argv.argv());
  EXPECT_FALSE(flags.aggressive_nsec.has_value());
  EXPECT_FALSE(flags.aggressive());
}

}  // namespace
}  // namespace zh::bench
