// Regression test pinning the Figure 3 / §5.2 resolver-probe conformance
// surface: for EVERY vendor profile in resolver/policy.cpp, the exact
// (RCODE, AD, EDE) the §4.2 prober observes at each anchor iteration
// count, plus the inferred Item 6/7/8/12 flags and limits. Any change to a
// profile's limit, EDE emission or downgrade behaviour fails here with the
// offending (profile, it-N) pair named — the pdns assertRcodeEqual idiom.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "scanner/resolver_prober.hpp"
#include "workload/install.hpp"

namespace zh::scanner {
namespace {

using dns::EdeCode;
using dns::Rcode;
using resolver::ResolverProfile;
using simnet::IpAddress;

/// Anchor points of the it-N probe grid: both sides of every limit the
/// policy layer implements (0, 50, 100, 150) plus the sweep extremes.
constexpr std::uint16_t kAnchors[] = {1,   25,  50,  51,  100,
                                      101, 150, 151, 200, 500};

/// Expected observation for one (profile, it-N) cell.
struct GoldenRow {
  std::uint16_t iterations;
  Rcode rcode;
  bool ad;
  std::optional<EdeCode> ede;
};

enum class LimitMode { kNone, kInsecure, kServfail };

/// Expands a profile's golden rows from its pinned limit behaviour:
/// below/at the limit the probe resolves NXDOMAIN+AD; above it, either
/// NXDOMAIN without AD (Item 6) or SERVFAIL (Item 8), carrying `ede`.
std::vector<GoldenRow> golden_rows(LimitMode mode, std::uint16_t limit,
                                   std::optional<EdeCode> ede) {
  std::vector<GoldenRow> rows;
  for (const std::uint16_t n : kAnchors) {
    if (mode == LimitMode::kNone || n <= limit) {
      rows.push_back({n, Rcode::kNxDomain, true, std::nullopt});
    } else if (mode == LimitMode::kInsecure) {
      rows.push_back({n, Rcode::kNxDomain, false, ede});
    } else {
      rows.push_back({n, Rcode::kServFail, false, ede});
    }
  }
  return rows;
}

struct GoldenProfile {
  std::string label;
  ResolverProfile profile;
  std::vector<GoldenRow> rows;
  // Inferred-behaviour pins (§4.2 classification).
  bool item6 = false;
  bool item8 = false;
  std::optional<std::uint16_t> insecure_limit;
  std::optional<std::uint16_t> servfail_limit;
  bool item7_violation = false;
  bool item12_gap = false;
  std::optional<EdeCode> limit_ede;
};

std::vector<GoldenProfile> golden_table() {
  constexpr auto kNone = LimitMode::kNone;
  constexpr auto kIns = LimitMode::kInsecure;
  constexpr auto kSf = LimitMode::kServfail;
  constexpr auto kEde27 = EdeCode::kUnsupportedNsec3Iterations;
  std::vector<GoldenProfile> table;

  // 2021-era software: insecure above 150, no EDE (Item 6 only). The
  // aggressive-cache variant (ISSUE 9) must probe identically to stock
  // unbound: the prober's unique names touch each probe zone once, so
  // RFC 8198 synthesis never fires on this surface and the Fig.3 rows are
  // unchanged by the capability.
  for (auto [label, profile] :
       {std::pair{"bind9_2021", ResolverProfile::bind9_2021()},
        std::pair{"unbound", ResolverProfile::unbound()},
        std::pair{"unbound_aggressive", ResolverProfile::unbound_aggressive()},
        std::pair{"knot_2021", ResolverProfile::knot_2021()},
        std::pair{"powerdns_2021", ResolverProfile::powerdns_2021()},
        std::pair{"quad9", ResolverProfile::quad9()}}) {
    table.push_back({label, profile, golden_rows(kIns, 150, std::nullopt),
                     /*item6=*/true, /*item8=*/false, 150, std::nullopt,
                     false, false, std::nullopt});
  }

  // CVE-era releases: limit dropped to 50, EDE 27 attached.
  for (auto [label, profile] :
       {std::pair{"bind9_2023", ResolverProfile::bind9_2023()},
        std::pair{"knot_2023", ResolverProfile::knot_2023()},
        std::pair{"powerdns_2023", ResolverProfile::powerdns_2023()}}) {
    table.push_back({label, profile, golden_rows(kIns, 50, kEde27),
                     /*item6=*/true, /*item8=*/false, 50, std::nullopt,
                     false, false, kEde27});
  }

  // Google: insecure above 100 with EDE 5 (DNSSEC Indeterminate).
  table.push_back({"google", ResolverProfile::google_public_dns(),
                   golden_rows(kIns, 100, EdeCode::kDnssecIndeterminate),
                   /*item6=*/true, /*item8=*/false, 100, std::nullopt, false,
                   false, EdeCode::kDnssecIndeterminate});

  // Cloudflare: SERVFAIL above 150 with EDE 27 (Item 8).
  table.push_back({"cloudflare", ResolverProfile::cloudflare(),
                   golden_rows(kSf, 150, kEde27), /*item6=*/false,
                   /*item8=*/true, std::nullopt, 150, false, false, kEde27});

  // OpenDNS: SERVFAIL above 150 with EDE 12 (NSEC Missing).
  table.push_back({"opendns", ResolverProfile::opendns(),
                   golden_rows(kSf, 150, EdeCode::kNsecMissing),
                   /*item6=*/false, /*item8=*/true, std::nullopt, 150, false,
                   false, EdeCode::kNsecMissing});

  // Technitium: SERVFAIL above 100, EDE 27 plus EXTRA-TEXT (checked below).
  table.push_back({"technitium", ResolverProfile::technitium(),
                   golden_rows(kSf, 100, kEde27), /*item6=*/false,
                   /*item8=*/true, std::nullopt, 100, false, false, kEde27});

  // Strict-zero devices: SERVFAIL from it-1 (limit 0), no EDE.
  table.push_back({"strict_zero", ResolverProfile::strict_zero(),
                   golden_rows(kSf, 0, std::nullopt), /*item6=*/false,
                   /*item8=*/true, std::nullopt, 0, false, false,
                   std::nullopt});

  // Permissive validator: NXDOMAIN+AD across the whole probed grid.
  table.push_back({"permissive", ResolverProfile::permissive(),
                   golden_rows(kNone, 0, std::nullopt), /*item6=*/false,
                   /*item8=*/false, std::nullopt, std::nullopt, false, false,
                   std::nullopt});

  // Item 7 violator: same sweep as bind9_2021 but downgrades it-2501-expired
  // to NXDOMAIN instead of SERVFAIL.
  table.push_back({"item7_violator", ResolverProfile::item7_violator(),
                   golden_rows(kIns, 150, std::nullopt), /*item6=*/true,
                   /*item8=*/false, 150, std::nullopt,
                   /*item7_violation=*/true, false, std::nullopt});

  // Item 12 gap: insecure above 100 but SERVFAIL only above 150 — a window
  // where the downgrade defeats the (higher) SERVFAIL ceiling.
  {
    GoldenProfile gap{"item12_gap", ResolverProfile::item12_gap(),
                      {}, /*item6=*/true, /*item8=*/true, 100, 150, false,
                      /*item12_gap=*/true, std::nullopt};
    for (const std::uint16_t n : kAnchors) {
      if (n <= 100)
        gap.rows.push_back({n, Rcode::kNxDomain, true, std::nullopt});
      else if (n <= 150)
        gap.rows.push_back({n, Rcode::kNxDomain, false, std::nullopt});
      else
        gap.rows.push_back({n, Rcode::kServFail, false, std::nullopt});
    }
    table.push_back(std::move(gap));
  }

  return table;
}

class ResolverConformanceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    internet_ = new testbed::Internet();
    probe_specs_ = testbed::add_probe_infrastructure(*internet_);
    internet_->build();
  }
  static void TearDownTestSuite() {
    delete internet_;
    probe_specs_.clear();
  }

  static testbed::Internet* internet_;
  static std::vector<testbed::ProbeZone> probe_specs_;
};

testbed::Internet* ResolverConformanceTest::internet_ = nullptr;
std::vector<testbed::ProbeZone> ResolverConformanceTest::probe_specs_;

TEST_F(ResolverConformanceTest, EveryVendorProfileMatchesGoldenTable) {
  ResolverProber prober(internet_->network(), IpAddress::v4(203, 0, 113, 77),
                        probe_specs_);

  std::uint8_t next_host = 1;
  for (const GoldenProfile& golden : golden_table()) {
    SCOPED_TRACE(golden.label);
    const auto resolver = internet_->make_resolver(
        golden.profile, IpAddress::v4(10, 99, 0, next_host++));
    const ResolverProbeResult result =
        prober.probe(resolver->address(), "conf-" + golden.label);

    // Every profile in the table validates: the §4.2 filter must keep it.
    ASSERT_TRUE(result.responsive);
    EXPECT_TRUE(result.validator);
    EXPECT_EQ(result.valid_zone.rcode, Rcode::kNoError);
    EXPECT_TRUE(result.valid_zone.ad);
    EXPECT_EQ(result.expired_zone.rcode, Rcode::kServFail);

    for (const GoldenRow& row : golden.rows) {
      SCOPED_TRACE("it-" + std::to_string(row.iterations));
      const auto it = result.sweep.find(row.iterations);
      ASSERT_NE(it, result.sweep.end());
      const ZoneObservation& seen = it->second;
      ASSERT_TRUE(seen.responsive);
      EXPECT_EQ(seen.rcode, row.rcode);
      EXPECT_EQ(seen.ad, row.ad);
      EXPECT_EQ(seen.ede, row.ede);
    }

    EXPECT_EQ(result.implements_item6, golden.item6);
    EXPECT_EQ(result.implements_item8, golden.item8);
    EXPECT_EQ(result.insecure_limit, golden.insecure_limit);
    EXPECT_EQ(result.servfail_limit, golden.servfail_limit);
    EXPECT_EQ(result.item7_violation, golden.item7_violation);
    EXPECT_EQ(result.item12_gap, golden.item12_gap);
    EXPECT_EQ(result.limit_ede, golden.limit_ede);
  }
}

TEST(ResolverProfiles, UnboundAggressiveCarriesTheCacheCapabilities) {
  const ResolverProfile profile = ResolverProfile::unbound_aggressive();
  EXPECT_TRUE(profile.aggressive_nsec);
  EXPECT_TRUE(profile.failure_caching);
  EXPECT_EQ(profile.policy.insecure_limit,
            ResolverProfile::unbound().policy.insecure_limit);
  // The stock profiles stay capability-off: synth-off campaign goldens
  // depend on it.
  EXPECT_FALSE(ResolverProfile::unbound().aggressive_nsec);
  EXPECT_FALSE(ResolverProfile::cloudflare().aggressive_nsec);
  EXPECT_FALSE(ResolverProfile::cloudflare().failure_caching);
}

TEST_F(ResolverConformanceTest, TechnitiumAttachesExtraText) {
  ResolverProber prober(internet_->network(), IpAddress::v4(203, 0, 113, 78),
                        probe_specs_);
  const auto resolver = internet_->make_resolver(
      ResolverProfile::technitium(), IpAddress::v4(10, 99, 1, 1));
  const auto result = prober.probe(resolver->address(), "conf-tech-text");
  const auto it = result.sweep.find(101);
  ASSERT_NE(it, result.sweep.end());
  EXPECT_EQ(it->second.ede, EdeCode::kUnsupportedNsec3Iterations);
  EXPECT_EQ(it->second.ede_text, "NSEC3 iterations count exceeds limit");
}

TEST_F(ResolverConformanceTest, NonValidatorIsFilteredOut) {
  ResolverProber prober(internet_->network(), IpAddress::v4(203, 0, 113, 79),
                        probe_specs_);
  const auto resolver = internet_->make_resolver(
      ResolverProfile::non_validating(), IpAddress::v4(10, 99, 1, 2));
  const auto result = prober.probe(resolver->address(), "conf-nonval");
  ASSERT_TRUE(result.responsive);
  EXPECT_FALSE(result.validator);
  // The filter rejects before the sweep: no it-N probes are spent on it.
  EXPECT_TRUE(result.sweep.empty());
}

}  // namespace
}  // namespace zh::scanner
