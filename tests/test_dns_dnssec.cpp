// Unit tests for DNSSEC helpers: signed-data construction, DS matching,
// NSEC3 owner names and the hash-circle covering test.
#include <gtest/gtest.h>

#include "crypto/signing.hpp"
#include "dns/dnssec.hpp"
#include "dns/encoding.hpp"

namespace zh::dns {
namespace {

DnskeyRdata test_key(std::string_view seed, bool ksk = false) {
  const auto sim = crypto::SimKey::derive(seed);
  DnskeyRdata key;
  key.flags = DnskeyRdata::kFlagZoneKey;
  if (ksk) key.flags |= DnskeyRdata::kFlagSep;
  key.algorithm =
      static_cast<std::uint8_t>(crypto::DnssecAlgorithm::kSimHmacSha256);
  key.public_key.assign(sim.public_key().begin(), sim.public_key().end());
  return key;
}

TEST(SignedData, ChangesWithRdataOrderButNotInputOrder) {
  RrSet set;
  set.name = Name::must_parse("example.com");
  set.type = RrType::kA;
  set.ttl = 300;
  const RdataBytes a = ARdata{{192, 0, 2, 1}}.encode();
  const RdataBytes b = ARdata{{192, 0, 2, 2}}.encode();

  RrsigRdata presig;
  presig.type_covered = static_cast<std::uint16_t>(RrType::kA);
  presig.original_ttl = 300;
  presig.signer = Name::must_parse("example.com");

  set.rdatas = {a, b};
  const auto data1 = build_signed_data(presig, set);
  set.rdatas = {b, a};
  const auto data2 = build_signed_data(presig, set);
  EXPECT_EQ(data1, data2) << "rdata must be canonically sorted before signing";
}

TEST(SignedData, OwnerNameLowercased) {
  RrSet upper;
  upper.name = Name::must_parse("WWW.EXAMPLE.COM");
  upper.type = RrType::kA;
  upper.rdatas = {ARdata{{1, 2, 3, 4}}.encode()};
  RrSet lower = upper;
  lower.name = Name::must_parse("www.example.com");

  RrsigRdata presig;
  presig.signer = Name::must_parse("example.com");
  EXPECT_EQ(build_signed_data(presig, upper), build_signed_data(presig, lower));
}

TEST(SignedData, UsesOriginalTtlNotCurrentTtl) {
  RrSet set;
  set.name = Name::must_parse("example.com");
  set.type = RrType::kA;
  set.ttl = 17;  // e.g. decremented by a cache
  set.rdatas = {ARdata{{1, 2, 3, 4}}.encode()};

  RrsigRdata presig;
  presig.original_ttl = 300;
  presig.signer = Name::must_parse("example.com");
  RrSet fresh = set;
  fresh.ttl = 300;
  EXPECT_EQ(build_signed_data(presig, set), build_signed_data(presig, fresh));
}

TEST(SignedData, DuplicateRdatasCollapse) {
  RrSet set;
  set.name = Name::must_parse("example.com");
  set.type = RrType::kA;
  const RdataBytes a = ARdata{{1, 2, 3, 4}}.encode();
  set.rdatas = {a, a};
  RrSet single = set;
  single.rdatas = {a};
  RrsigRdata presig;
  presig.signer = Name::must_parse("example.com");
  EXPECT_EQ(build_signed_data(presig, set), build_signed_data(presig, single));
}

TEST(Ds, MatchesOwnKey) {
  const auto key = test_key("example.com/ksk", /*ksk=*/true);
  const auto owner = Name::must_parse("example.com");
  const DsRdata ds = make_ds(owner, key);
  EXPECT_TRUE(ds_matches_key(ds, owner, key));
  EXPECT_EQ(ds.key_tag, key.key_tag());
  EXPECT_EQ(ds.digest.size(), 32u);
}

TEST(Ds, Sha1DigestType) {
  const auto key = test_key("example.com/ksk", true);
  const auto owner = Name::must_parse("example.com");
  const DsRdata ds = make_ds(owner, key, DsRdata::kDigestSha1);
  EXPECT_EQ(ds.digest.size(), 20u);
  EXPECT_TRUE(ds_matches_key(ds, owner, key));
}

TEST(Ds, RejectsDifferentKey) {
  const auto key = test_key("example.com/ksk", true);
  const auto other = test_key("evil.example/ksk", true);
  const auto owner = Name::must_parse("example.com");
  const DsRdata ds = make_ds(owner, key);
  EXPECT_FALSE(ds_matches_key(ds, owner, other));
}

TEST(Ds, RejectsDifferentOwner) {
  const auto key = test_key("example.com/ksk", true);
  const DsRdata ds = make_ds(Name::must_parse("example.com"), key);
  EXPECT_FALSE(ds_matches_key(ds, Name::must_parse("examp1e.com"), key));
}

TEST(Nsec3OwnerName, MatchesRfc5155Vector) {
  // RFC 5155 Appendix A: "example" with salt aabbccdd, 12 iterations.
  const auto salt = *base16_decode("aabbccdd");
  const Name owner = nsec3_owner_name(
      Name::must_parse("example"), Name::must_parse("example"),
      std::span<const std::uint8_t>(salt.data(), salt.size()), 12);
  EXPECT_EQ(owner.to_string(),
            "0p9mhaveqvm6t7vbl5lop2u3t2rp3tom.example.");
}

TEST(Nsec3OwnerName, CaseInsensitiveInput) {
  const auto zone = Name::must_parse("example.com");
  const auto a = nsec3_owner_name(Name::must_parse("WWW.example.COM"), zone,
                                  {}, 1);
  const auto b = nsec3_owner_name(Name::must_parse("www.example.com"), zone,
                                  {}, 1);
  EXPECT_TRUE(a.equals(b));
}

TEST(Nsec3OwnerName, HashExtractRoundTrip) {
  const auto zone = Name::must_parse("example.com");
  const auto name = Name::must_parse("api.example.com");
  const Name owner = nsec3_owner_name(name, zone, {}, 3);
  const auto hash = nsec3_owner_hash(owner, zone);
  ASSERT_TRUE(hash);
  EXPECT_EQ(*hash, nsec3_hash_name(name, {}, 3));
}

TEST(Nsec3OwnerName, HashExtractRejectsForeignZone) {
  const auto zone = Name::must_parse("example.com");
  const Name owner =
      nsec3_owner_name(Name::must_parse("api.example.com"), zone, {}, 0);
  EXPECT_FALSE(nsec3_owner_hash(owner, Name::must_parse("example.org")));
  // Two levels below the zone is not an NSEC3 owner either.
  const auto deep = owner.prepended("x");
  ASSERT_TRUE(deep);
  EXPECT_FALSE(nsec3_owner_hash(*deep, zone));
}

TEST(RrsigLabels, CountsExcludeRootAndWildcard) {
  EXPECT_EQ(rrsig_label_count(Name::must_parse("www.example.com")), 3);
  EXPECT_EQ(rrsig_label_count(Name::must_parse("*.example.com")), 2);
  EXPECT_EQ(rrsig_label_count(Name::root()), 0);
}

TEST(Nsec3Covers, NormalInterval) {
  const std::vector<std::uint8_t> low(20, 0x10);
  const std::vector<std::uint8_t> high(20, 0x50);
  const std::vector<std::uint8_t> inside(20, 0x30);
  const std::vector<std::uint8_t> outside(20, 0x60);
  EXPECT_TRUE(nsec3_covers(low, high, inside));
  EXPECT_FALSE(nsec3_covers(low, high, outside));
  EXPECT_FALSE(nsec3_covers(low, high, low));
  EXPECT_FALSE(nsec3_covers(low, high, high));
}

TEST(Nsec3Covers, WrapAroundInterval) {
  const std::vector<std::uint8_t> low(20, 0x10);
  const std::vector<std::uint8_t> high(20, 0x50);
  const std::vector<std::uint8_t> above(20, 0x99);
  const std::vector<std::uint8_t> below(20, 0x05);
  // Last NSEC3 in the chain: owner=high wraps to next=low.
  EXPECT_TRUE(nsec3_covers(high, low, above));
  EXPECT_TRUE(nsec3_covers(high, low, below));
  const std::vector<std::uint8_t> between(20, 0x30);
  EXPECT_FALSE(nsec3_covers(high, low, between));
}

TEST(Nsec3Covers, SingleRecordChainCoversAllButSelf) {
  const std::vector<std::uint8_t> only(20, 0x42);
  const std::vector<std::uint8_t> other(20, 0x43);
  EXPECT_TRUE(nsec3_covers(only, only, other));
  EXPECT_FALSE(nsec3_covers(only, only, only));
}

}  // namespace
}  // namespace zh::dns
