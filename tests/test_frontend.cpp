// Loopback interop for the real-socket frontend (src/net): a Frontend on
// an ephemeral port must serve byte-identical answers to what the in-sim
// transport (simnet::exchange) produces for the same world, query set and
// query order — over UDP, over TCP, and across the UDP→TC→TCP retry. Also
// covers the event loop itself, overload shedding, idle reaping, and the
// malformed-input corpus fired at a live socket (ASan/UBSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "net/frontend.hpp"
#include "net/wire_client.hpp"
#include "simnet/exchange.hpp"
#include "testbed/internet.hpp"

namespace zh::net {
namespace {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::RrType;
using simnet::IpAddress;

/// Runs an EventLoop + Frontend on a worker thread; the test thread plays
/// wire client. Counters are read only after stop() joins the worker.
class ServerHarness {
 public:
  bool start(Dispatch dispatch, FrontendConfig config = {}) {
    frontend_ = std::make_unique<Frontend>(std::move(dispatch), config);
    if (!loop_.valid() || !frontend_->start(loop_)) return false;
    thread_ = std::thread([this] { loop_.run(); });
    return true;
  }

  std::uint16_t port() const { return frontend_->port(); }

  const FrontendCounters& stop() {
    if (thread_.joinable()) {
      loop_.stop();
      thread_.join();
    }
    static const FrontendCounters kNone{};
    return frontend_ ? frontend_->counters() : kNone;
  }

  ~ServerHarness() { stop(); }

 private:
  EventLoop loop_;
  std::unique_ptr<Frontend> frontend_;
  std::thread thread_;
};

// ---------------------------------------------------------------- EventLoop

TEST(EventLoop, TimersFireInDeadlineOrder) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  std::vector<int> order;
  loop.add_timer(30, [&] { order.push_back(2); });
  loop.add_timer(5, [&] { order.push_back(1); });
  loop.add_timer(60, [&] {
    order.push_back(3);
    loop.stop();
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, CancelledTimerNeverFires) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  bool fired = false;
  const std::uint64_t id = loop.add_timer(5, [&] { fired = true; });
  loop.cancel_timer(id);
  loop.add_timer(30, [&] { loop.stop(); });
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, StopFromAnotherThreadWakesRun) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    loop.stop();
  });
  loop.run();  // would block forever without the cross-thread wake
  stopper.join();
  EXPECT_TRUE(loop.stopped());
}

// ------------------------------------------------- frontend transport basics

Message echo_query(std::uint16_t id, const std::string& name) {
  return Message::make_query(id, Name::must_parse(name), RrType::kA);
}

/// Dispatch used by the transport-level tests: a fixed-size TXT answer.
/// TXT character-strings cap at 255 bytes each, so large payloads are
/// spread across as many full chunks as needed (make_txt would silently
/// clamp a single long string to 255).
Dispatch txt_dispatch(std::size_t text_bytes) {
  return [text_bytes](const Message& query) -> std::optional<Message> {
    Message response = Message::make_response(query);
    response.header.aa = true;
    if (const dns::Question* q = query.question()) {
      dns::TxtRdata rd;
      for (std::size_t left = text_bytes; left > 0;) {
        const std::size_t chunk = std::min<std::size_t>(left, 255);
        rd.strings.emplace_back(chunk, 'x');
        left -= chunk;
      }
      response.answers.push_back(
          dns::ResourceRecord::make(q->name, RrType::kTxt, 60, rd));
    }
    return response;
  };
}

TEST(Frontend, EphemeralPortsAreDistinctAndReported) {
  ServerHarness a, b;
  ASSERT_TRUE(a.start(txt_dispatch(16)));
  ASSERT_TRUE(b.start(txt_dispatch(16)));
  EXPECT_GT(a.port(), 0);
  EXPECT_GT(b.port(), 0);
  EXPECT_NE(a.port(), b.port());
}

TEST(Frontend, FixedPortConflictFailsWithError) {
  ServerHarness first;
  ASSERT_TRUE(first.start(txt_dispatch(16)));
  EventLoop loop;
  Frontend second(txt_dispatch(16), FrontendConfig{.port = first.port()});
  EXPECT_FALSE(second.start(loop));
  EXPECT_FALSE(second.error().empty());
}

TEST(Frontend, UdpTruncatesToAdvertisedPayloadAndTcpDoesNot) {
  // ~900-byte answer: above the 512 floor, below the 1232 default.
  ServerHarness server;
  ASSERT_TRUE(server.start(txt_dispatch(900)));
  WireClient client("127.0.0.1", server.port());

  // Default advertisement (1232) fits: full answer over UDP.
  ClientResult fits = client.query_udp(echo_query(1, "txt.example"));
  ASSERT_TRUE(fits.message);
  EXPECT_FALSE(fits.message->header.tc);
  EXPECT_EQ(fits.message->answers.size(), 1u);

  // A 600-byte advertisement forces TC...
  Message small = echo_query(2, "txt.example");
  small.edns->udp_payload_size = 600;
  ClientResult tc = client.query_udp(small);
  ASSERT_TRUE(tc.message);
  EXPECT_TRUE(tc.message->header.tc);
  EXPECT_TRUE(tc.message->answers.empty());

  // ...and an advertisement below 512 is clamped *up* to 512 (RFC 6891):
  // a small answer still fits even though the client asked for 16 bytes.
  ServerHarness tiny;
  ASSERT_TRUE(tiny.start(txt_dispatch(100)));
  Message clamped = echo_query(3, "txt.example");
  clamped.edns->udp_payload_size = 16;
  ClientResult ok = WireClient("127.0.0.1", tiny.port()).query_udp(clamped);
  ASSERT_TRUE(ok.message);
  EXPECT_FALSE(ok.message->header.tc);
  EXPECT_EQ(ok.message->answers.size(), 1u);

  // The client-side retry glues it together: query() lands the full answer.
  ClientResult full = client.query(small);
  ASSERT_TRUE(full.message);
  EXPECT_TRUE(full.tcp_fallback);
  EXPECT_EQ(full.message->answers.size(), 1u);

  const FrontendCounters& counters = server.stop();
  EXPECT_GE(counters.truncated, 1u);
  EXPECT_GE(counters.udp_queries, 3u);
  EXPECT_GE(counters.tcp_queries, 1u);
}

TEST(Frontend, TcpPipeliningAnswersInOrder) {
  ServerHarness server;
  ASSERT_TRUE(server.start(txt_dispatch(32)));
  TcpSession session("127.0.0.1", server.port());
  ASSERT_TRUE(session.connected());
  constexpr int kQueries = 16;
  for (int i = 0; i < kQueries; ++i)
    ASSERT_TRUE(session.send(echo_query(static_cast<std::uint16_t>(i),
                                        "pipeline.example")));
  for (int i = 0; i < kQueries; ++i) {
    const auto frame = session.read_frame();
    ASSERT_TRUE(frame) << "frame " << i;
    const auto response = Message::from_wire(
        std::span<const std::uint8_t>(frame->data(), frame->size()));
    ASSERT_TRUE(response);
    // RFC 7766 §6.2.1.1: responses come back in query order.
    EXPECT_EQ(response->header.id, static_cast<std::uint16_t>(i));
  }
}

TEST(Frontend, DroppedDispatchMeansNoAnswer) {
  ServerHarness server;
  ASSERT_TRUE(server.start([](const Message&) -> std::optional<Message> {
    return std::nullopt;  // the simulated node drops the query
  }));
  WireClient client("127.0.0.1", server.port());
  ClientResult result = client.query_udp(echo_query(9, "drop.example"), 300);
  EXPECT_FALSE(result.message);
  EXPECT_TRUE(result.timed_out);
  const FrontendCounters& counters = server.stop();
  EXPECT_EQ(counters.dropped, 1u);
  EXPECT_EQ(counters.responses, 0u);
}

// ----------------------------------------------------- overload + lifecycle

TEST(Frontend, PendingBudgetShedsWithServfailEde23) {
  // Deterministic backpressure: a 1-deep budget, a ~32 KiB answer, and
  // tiny kernel buffers on both ends. The first response jams the stream
  // unflushed, so every pipelined query after it is shed while the client
  // has read nothing yet.
  FrontendConfig config;
  config.pending_budget = 1;
  config.tcp_sndbuf = 1;  // kernel clamps up to its minimum (a few KiB)
  ServerHarness server;
  ASSERT_TRUE(server.start(txt_dispatch(32 * 1024), config));
  TcpSession session("127.0.0.1", server.port(), 5000, /*rcvbuf=*/1);
  ASSERT_TRUE(session.connected());
  constexpr int kQueries = 5;
  for (int i = 0; i < kQueries; ++i)
    ASSERT_TRUE(session.send(echo_query(static_cast<std::uint16_t>(i),
                                        "shed.example")));
  // Let the server process the whole pipeline while we read nothing: the
  // first 32 KiB answer cannot fit the few-KiB kernel pipe, so the budget
  // stays exhausted for every query behind it.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  int full = 0, shed = 0;
  for (int i = 0; i < kQueries; ++i) {
    const auto frame = session.read_frame(5000);
    ASSERT_TRUE(frame) << "frame " << i;
    const auto response = Message::from_wire(
        std::span<const std::uint8_t>(frame->data(), frame->size()));
    ASSERT_TRUE(response);
    if (response->header.rcode == Rcode::kServFail) {
      ++shed;
      ASSERT_TRUE(response->edns);
      const auto ede = response->edns->ede();
      ASSERT_TRUE(ede);
      EXPECT_EQ(ede->info_code, dns::EdeCode::kNetworkError);
      EXPECT_EQ(ede->extra_text, "server overloaded");
    } else {
      ++full;
      EXPECT_EQ(response->answers.size(), 1u);
    }
  }
  EXPECT_GE(full, 1);
  EXPECT_GE(shed, 1);
  const FrontendCounters& counters = server.stop();
  EXPECT_EQ(counters.shed, static_cast<std::uint64_t>(shed));
}

TEST(Frontend, IdleConnectionsAreReaped) {
  FrontendConfig config;
  config.tcp_idle_ms = 50;
  ServerHarness server;
  ASSERT_TRUE(server.start(txt_dispatch(16), config));
  TcpSession session("127.0.0.1", server.port());
  ASSERT_TRUE(session.connected());
  // Never send anything; the reaper should close us within a few periods.
  const auto frame = session.read_frame(2000);
  EXPECT_FALSE(frame);
  EXPECT_TRUE(session.closed_by_peer());
  const FrontendCounters& counters = server.stop();
  EXPECT_GE(counters.tcp_reaped, 1u);
}

// ------------------------------------------------------- malformed corpus

TEST(Frontend, MalformedCorpusNeverKillsTheServer) {
  ServerHarness server;
  ASSERT_TRUE(server.start(txt_dispatch(64)));
  WireClient client("127.0.0.1", server.port());

  // The crafted shapes from test_wire_hardening, plus bit flips of a valid
  // query, all as real datagrams.
  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.push_back({});                                      // empty payload
  corpus.push_back({0x00});                                  // 1 byte
  corpus.push_back({0x12, 0x34, 0x01});                      // partial header
  corpus.push_back({0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0, 0, 0, 0, 0, 0,
                    0xc0, 0x0c, 0x00, 0x01, 0x00, 0x01});    // self-pointer
  corpus.push_back({0x12, 0x34, 0x01, 0x00, 0x00, 0x05, 0, 0, 0, 0, 0, 0});
  const std::vector<std::uint8_t> valid =
      echo_query(77, "alive.example").to_wire();
  for (std::size_t byte = 0; byte < valid.size(); ++byte) {
    auto flipped = valid;
    flipped[byte] ^= 0x80;
    corpus.push_back(std::move(flipped));
  }
  for (const auto& bytes : corpus)
    ASSERT_TRUE(client.send_raw_udp({bytes.data(), bytes.size()}));

  // Same corpus down a TCP stream, as framed payloads...
  {
    TcpSession session("127.0.0.1", server.port());
    ASSERT_TRUE(session.connected());
    for (const auto& bytes : corpus) {
      if (bytes.empty() || bytes.size() > 65535) continue;
      std::vector<std::uint8_t> framed;
      framed.push_back(static_cast<std::uint8_t>(bytes.size() >> 8));
      framed.push_back(static_cast<std::uint8_t>(bytes.size()));
      framed.insert(framed.end(), bytes.begin(), bytes.end());
      if (!session.send_raw({framed.data(), framed.size()})) break;
    }
  }
  // ...and a zero-length frame, which must close the stream.
  {
    TcpSession session("127.0.0.1", server.port());
    ASSERT_TRUE(session.connected());
    const std::vector<std::uint8_t> zero = {0x00, 0x00};
    ASSERT_TRUE(session.send_raw({zero.data(), zero.size()}));
    EXPECT_FALSE(session.read_frame(2000));
    EXPECT_TRUE(session.closed_by_peer());
  }

  // The server is still alive and still correct.
  ClientResult result = client.query(echo_query(78, "alive.example"));
  ASSERT_TRUE(result.message);
  EXPECT_EQ(result.message->header.id, 78);
  const FrontendCounters& counters = server.stop();
  EXPECT_GE(counters.malformed, 3u);
}

// --------------------------------------------- byte-identity vs simulation

/// Two identical probe-infrastructure worlds: one served over real sockets,
/// one driven in-sim for goldens. Build is deterministic, so same-order
/// queries see identical handler state on both sides.
class FrontendInteropTest : public ::testing::Test {
 protected:
  struct World {
    testbed::Internet internet;
    std::vector<testbed::ProbeZone> probes;
    std::unique_ptr<resolver::RecursiveResolver> resolver;

    World() {
      probes = testbed::add_probe_infrastructure(internet);
      internet.build();
      resolver = internet.make_resolver(resolver::ResolverProfile::cloudflare(),
                                        IpAddress::v4(1, 1, 1, 1));
    }
  };

  /// The same source identity zh_serve uses for real-socket clients.
  static IpAddress kClient() { return IpAddress::v4(203, 0, 113, 53); }
  static IpAddress kResolver() { return IpAddress::v4(1, 1, 1, 1); }

  /// Golden query sequence: positive, NXDOMAIN (NSEC3-heavy, truncates),
  /// DNSKEY, a high-iteration probe zone, and a repeat (cache-hit path).
  static std::vector<Message> golden_queries() {
    std::vector<Message> queries;
    std::uint16_t id = 1;
    const auto add = [&](const std::string& name, RrType type) {
      queries.push_back(Message::make_query(id++, Name::must_parse(name), type));
    };
    add("valid.rfc9276-in-the-wild.com", RrType::kA);
    add("www.valid.rfc9276-in-the-wild.com", RrType::kA);
    add("nx.valid.rfc9276-in-the-wild.com", RrType::kA);
    add("valid.rfc9276-in-the-wild.com", RrType::kDnskey);
    add("nx.it-150.rfc9276-in-the-wild.com", RrType::kA);
    add("nx.it-500.rfc9276-in-the-wild.com", RrType::kA);
    add("valid.rfc9276-in-the-wild.com", RrType::kA);  // repeat: cache hit
    // A constrained 512-byte advertisement the NSEC3-heavy NXDOMAIN answer
    // cannot fit: deterministically exercises the TC→TCP retry on both
    // transports (the default 1232 advertisement holds every probe answer).
    add("nx.valid.rfc9276-in-the-wild.com", RrType::kA);
    queries.back().edns->udp_payload_size = 512;
    return queries;
  }
};

TEST_F(FrontendInteropTest, AnswersMatchSimulationByteForByte) {
  World sim_world;  // golden side, driven by this thread
  auto served_world = std::make_unique<World>();
  simnet::Network& served_net = served_world->internet.network();
  // Hand the served world to the loop thread (the dispatch below runs
  // there); this thread must not touch it again until after stop().
  served_net.rebind_owner_thread();
  ServerHarness server;
  ASSERT_TRUE(server.start([&served_net](const Message& query) {
    return served_net.send_tcp(kClient(), kResolver(), query);
  }));
  WireClient client("127.0.0.1", server.port());

  const std::vector<Message> queries = golden_queries();
  std::size_t fallbacks = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const simnet::ExchangeOutcome golden = simnet::exchange(
        sim_world.internet.network(), kClient(), kResolver(), queries[i]);
    ASSERT_TRUE(golden.response) << "golden query " << i;

    const ClientResult real = client.query(queries[i]);
    ASSERT_TRUE(real.message) << "wire query " << i << ": " << real.error;
    EXPECT_EQ(real.tcp_fallback, golden.tcp_fallback) << "query " << i;
    if (real.tcp_fallback) ++fallbacks;
    // The acceptance bar: final answer bytes identical to the in-sim
    // transport, UDP→TCP retry included (ids match by construction).
    EXPECT_EQ(real.wire, golden.response->to_wire()) << "query " << i;
  }
  // The constrained-advertisement golden truncates: the TC path must
  // actually have been exercised, not vacuously skipped.
  EXPECT_GE(fallbacks, 1u);

  // TCP-first asks the same question the retry path just did (a cache hit
  // on the served side): bytes must again be identical.
  const Message nxd = queries[2];
  const ClientResult tcp_first = client.query_tcp(nxd);
  const ClientResult retried = client.query(nxd);
  ASSERT_TRUE(tcp_first.message);
  ASSERT_TRUE(retried.message);
  EXPECT_EQ(tcp_first.wire, retried.wire);

  const FrontendCounters& counters = server.stop();
  EXPECT_EQ(counters.malformed, 0u);
  EXPECT_GE(counters.udp_queries, queries.size());
  EXPECT_GE(counters.truncated, fallbacks);
}

TEST_F(FrontendInteropTest, TinyAdvertisedBufferClampsTo512BothWays) {
  World sim_world;
  auto served_world = std::make_unique<World>();
  simnet::Network& served_net = served_world->internet.network();
  served_net.rebind_owner_thread();
  ServerHarness server;
  ASSERT_TRUE(server.start([&served_net](const Message& query) {
    return served_net.send_tcp(kClient(), kResolver(), query);
  }));
  WireClient client("127.0.0.1", server.port());

  // An advertised 16-byte buffer is clamped to 512 on both transports, so
  // the truncated UDP answer and the TCP retry behave identically.
  Message query = Message::make_query(
      41, Name::must_parse("nx.valid.rfc9276-in-the-wild.com"), RrType::kA);
  query.edns->udp_payload_size = 16;

  const simnet::ExchangeOutcome golden =
      simnet::exchange(sim_world.internet.network(), kClient(), kResolver(),
                       query);
  ASSERT_TRUE(golden.response);
  EXPECT_TRUE(golden.tcp_fallback);

  const ClientResult real = client.query(query);
  ASSERT_TRUE(real.message);
  EXPECT_TRUE(real.tcp_fallback);
  EXPECT_EQ(real.wire, golden.response->to_wire());
  server.stop();
}

}  // namespace
}  // namespace zh::net
