// Unit tests for the analysis primitives: ECDF, frequency table, formatting.
#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/export.hpp"
#include "analysis/stats.hpp"

namespace zh::analysis {
namespace {

TEST(Ecdf, BasicFractions) {
  Ecdf ecdf;
  ecdf.add(0, 122);  // the paper's 12.2 % zero-iteration shape
  ecdf.add(1, 500);
  ecdf.add(8, 300);
  ecdf.add(100, 70);
  ecdf.add(500, 8);
  EXPECT_EQ(ecdf.total(), 1000u);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_most(0), 0.122);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_most(1), 0.622);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_most(499), 0.992);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_most(500), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_most(-1), 0.0);
}

TEST(Ecdf, EmptyBehaviour) {
  Ecdf ecdf;
  EXPECT_TRUE(ecdf.empty());
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_most(10), 0.0);
  EXPECT_EQ(ecdf.max(), 0);
}

TEST(Ecdf, Percentiles) {
  Ecdf ecdf;
  for (int v = 1; v <= 100; ++v) ecdf.add(v);
  EXPECT_EQ(ecdf.percentile(0.5), 50);
  EXPECT_EQ(ecdf.percentile(0.999), 100);
  EXPECT_EQ(ecdf.percentile(0.01), 1);
}

// Regression: nearest-rank must agree with the integer oracle at every
// whole-percent p. The double product p·n is not always exact (0.07·100 =
// 7.000000000000001), and a raw ceil turned those into an off-by-one rank.
TEST(Ecdf, PercentileMatchesIntegerOracleAtEveryWholePercent) {
  Ecdf ecdf;
  for (int v = 1; v <= 100; ++v) ecdf.add(v);  // value v == rank v
  for (int percent = 1; percent <= 100; ++percent) {
    const double p = static_cast<double>(percent) / 100.0;
    // ceil(percent·100 / 100) == percent exactly, in integers.
    EXPECT_EQ(ecdf.percentile(p), percent) << "p = " << p;
  }
}

TEST(Ecdf, PercentileFractionalRanksStillRoundUp) {
  Ecdf ecdf;
  for (int v = 1; v <= 10; ++v) ecdf.add(v);
  EXPECT_EQ(ecdf.percentile(0.05), 1);   // rank ceil(0.5) = 1
  EXPECT_EQ(ecdf.percentile(0.11), 2);   // rank ceil(1.1) = 2
  EXPECT_EQ(ecdf.percentile(0.95), 10);  // rank ceil(9.5) = 10
  EXPECT_EQ(ecdf.percentile(1.0), 10);
}

TEST(Ecdf, CountsAboveAndOf) {
  Ecdf ecdf;
  ecdf.add(150, 10);
  ecdf.add(151, 3);
  ecdf.add(500, 12);
  EXPECT_EQ(ecdf.count_above(150), 15u);
  EXPECT_EQ(ecdf.count_of(500), 12u);
  EXPECT_EQ(ecdf.count_above(500), 0u);
}

TEST(Ecdf, CurveIsMonotone) {
  Ecdf ecdf;
  ecdf.add(3, 5);
  ecdf.add(1, 2);
  ecdf.add(7, 3);
  const auto curve = ecdf.curve();
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_EQ(curve.front().first, 1);
  double previous = 0;
  for (const auto& [value, fraction] : curve) {
    EXPECT_GT(fraction, previous);
    previous = fraction;
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(FreqTable, SharesAndTop) {
  FreqTable table;
  table.add("squarespace", 394);
  table.add("one.com", 95);
  table.add("ovh", 84);
  EXPECT_EQ(table.total(), 573u);
  EXPECT_NEAR(table.share("squarespace"), 394.0 / 573.0, 1e-9);
  EXPECT_EQ(table.count_of("missing"), 0u);
  const auto top = table.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "squarespace");
  EXPECT_EQ(top[1].first, "one.com");
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.878), "87.8 %");
  EXPECT_EQ(format_percent(0.0035, 2), "0.35 %");
}

TEST(Format, Count) {
  EXPECT_EQ(format_count(302000000), "302.0 M");
  EXPECT_EQ(format_count(15500000), "15.5 M");
  EXPECT_EQ(format_count(994000), "994.0 K");
  EXPECT_EQ(format_count(447), "447");
  EXPECT_EQ(format_count(1900000000), "1.9 B");
}


TEST(Export, EcdfCsv) {
  Ecdf ecdf;
  ecdf.add(0, 3);
  ecdf.add(5, 1);
  const std::string csv = ecdf_to_csv(ecdf, "iterations");
  EXPECT_EQ(csv, "iterations,cumulative_fraction\n0,0.750000\n5,1.000000\n");
}

TEST(Export, FreqCsvEscapesAndOrders) {
  FreqTable table;
  table.add("plain", 10);
  table.add("with,comma", 20);
  const std::string csv = freq_to_csv(table, "operator");
  EXPECT_NE(csv.find("\"with,comma\",20,"), std::string::npos);
  // Descending by count: the comma entry first.
  EXPECT_LT(csv.find("with,comma"), csv.find("plain"));
}

// RFC 4180: a bare carriage return inside a cell must be quoted just like
// a line feed, or \r\n-aware CSV readers split the record.
TEST(Export, CsvQuotesCarriageReturns) {
  Table table({"k"});
  table.add_row({"line\rbreak"});
  EXPECT_NE(table.to_csv().find("\"line\rbreak\""), std::string::npos);
}

TEST(Export, AddRowRejectsWrongArity) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), std::invalid_argument);
  table.add_row({"1", "2"});
  EXPECT_NE(table.to_csv().find("1,2"), std::string::npos);
}

TEST(Export, TableCsvAndJson) {
  Table table({"metric", "paper", "measured"});
  table.add_row({"zero iterations", "12.2 %", "12.2 %"});
  table.add_row({"quote\"d", "a", "b"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("metric,paper,measured"), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"d\""), std::string::npos);
  const std::string json = table.to_json();
  EXPECT_NE(json.find("\"metric\": \"zero iterations\""),
            std::string::npos);
  EXPECT_NE(json.find("\\\""), std::string::npos) << json;
}

TEST(Export, WriteFileRoundTrip) {
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(write_file(dir, "zh_export_test.csv", "a,b\n1,2\n"));
  std::FILE* f = std::fopen((dir + "/zh_export_test.csv").c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[32] = {};
  const size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "a,b\n1,2\n");
  EXPECT_FALSE(write_file("/nonexistent-dir-zh", "x.csv", "y"));
}

}  // namespace
}  // namespace zh::analysis
