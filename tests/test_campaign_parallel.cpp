// Tests for the sharded parallel campaign engine (scanner/parallel.hpp):
// the engine's central promise is that §5.1/§5.2 aggregates are
// bit-identical for every --jobs value, and that per-shard statistics
// merged in any order reproduce the unsharded campaign.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "scanner/parallel.hpp"
#include "workload/install.hpp"
#include "workload/resolver_population.hpp"

namespace zh::scanner {
namespace {

/// The transport-independent aggregates: everything that must survive
/// loss + retransmission unchanged (the latency/timeout fields are checked
/// separately — they legitimately differ between a lossy and a clean run).
void expect_same_classification(const DomainCampaignStats& a,
                                const DomainCampaignStats& b) {
  EXPECT_EQ(a.scanned, b.scanned);
  EXPECT_EQ(a.dnssec, b.dnssec);
  EXPECT_EQ(a.nsec3, b.nsec3);
  EXPECT_EQ(a.excluded, b.excluded);
  EXPECT_EQ(a.iterations.histogram(), b.iterations.histogram());
  EXPECT_EQ(a.salt_len.histogram(), b.salt_len.histogram());
  EXPECT_EQ(a.zero_iterations, b.zero_iterations);
  EXPECT_EQ(a.no_salt, b.no_salt);
  EXPECT_EQ(a.fully_compliant, b.fully_compliant);
  EXPECT_EQ(a.opt_out, b.opt_out);
  EXPECT_EQ(a.over_150_iterations, b.over_150_iterations);
  EXPECT_EQ(a.at_500_iterations, b.at_500_iterations);
  EXPECT_EQ(a.salt_over_10, b.salt_over_10);
  EXPECT_EQ(a.salt_over_45, b.salt_over_45);
  EXPECT_EQ(a.salt_at_160, b.salt_at_160);
  EXPECT_EQ(a.operators.raw(), b.operators.raw());
  ASSERT_EQ(a.operator_params.size(), b.operator_params.size());
  for (const auto& [op, params] : a.operator_params) {
    const auto it = b.operator_params.find(op);
    ASSERT_NE(it, b.operator_params.end()) << op;
    EXPECT_EQ(params.raw(), it->second.raw()) << op;
  }
}

void expect_same_stats(const DomainCampaignStats& a,
                       const DomainCampaignStats& b) {
  expect_same_classification(a, b);
  EXPECT_EQ(a.scan_latency_us.histogram(), b.scan_latency_us.histogram());
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.queue_delay_us.histogram(), b.queue_delay_us.histogram());
  EXPECT_EQ(a.queue_drops, b.queue_drops);
}

void expect_same_sweep(const ResolverSweepStats& a,
                       const ResolverSweepStats& b) {
  EXPECT_EQ(a.probed, b.probed);
  EXPECT_EQ(a.validators, b.validators);
  ASSERT_EQ(a.by_iteration.size(), b.by_iteration.size());
  for (const auto& [iterations, shares] : a.by_iteration) {
    const auto it = b.by_iteration.find(iterations);
    ASSERT_NE(it, b.by_iteration.end()) << iterations;
    EXPECT_EQ(shares.nxdomain, it->second.nxdomain) << iterations;
    EXPECT_EQ(shares.nxdomain_ad, it->second.nxdomain_ad) << iterations;
    EXPECT_EQ(shares.servfail, it->second.servfail) << iterations;
    EXPECT_EQ(shares.timeouts, it->second.timeouts) << iterations;
    EXPECT_EQ(shares.total, it->second.total) << iterations;
  }
  EXPECT_EQ(a.item6, b.item6);
  EXPECT_EQ(a.item8, b.item8);
  EXPECT_EQ(a.item7_violations, b.item7_violations);
  EXPECT_EQ(a.item12_gaps, b.item12_gaps);
  EXPECT_EQ(a.ede_on_limit, b.ede_on_limit);
  EXPECT_EQ(a.insecure_limits, b.insecure_limits);
  EXPECT_EQ(a.servfail_limits, b.servfail_limits);
  EXPECT_EQ(a.probe_latency_us.histogram(), b.probe_latency_us.histogram());
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.stop_answering, b.stop_answering);
  EXPECT_EQ(a.queue_delay_us.histogram(), b.queue_delay_us.histogram());
  EXPECT_EQ(a.queue_drops, b.queue_drops);
}

// ISSUE acceptance: --jobs 1 and --jobs 8 produce identical
// DomainCampaignStats on a 1:10000-scale population.
TEST(ParallelCampaign, JobsOneAndEightBitIdentical) {
  const workload::EcosystemSpec spec({.scale = 0.0001, .seed = 42});
  const auto factory = default_world_factory(spec);

  const ParallelCampaignResult serial = run_domain_campaign_parallel(
      spec, factory, {.jobs = 1, .base_seed = 42});
  const ParallelCampaignResult sharded = run_domain_campaign_parallel(
      spec, factory, {.jobs = 8, .base_seed = 42});

  EXPECT_EQ(serial.jobs, 1u);
  EXPECT_EQ(sharded.jobs, 8u);
  EXPECT_GT(serial.stats.scanned, 0u);
  expect_same_stats(serial.stats, sharded.stats);
  EXPECT_EQ(serial.queries_issued, sharded.queries_issued);

  // Per-domain records must agree too, not just the aggregates.
  ASSERT_EQ(serial.records.size(), sharded.records.size());
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    const auto& r1 = serial.records[i];
    const auto& r8 = sharded.records[i];
    EXPECT_EQ(r1.index, r8.index);
    EXPECT_EQ(r1.classification, r8.classification) << r1.index;
    EXPECT_EQ(r1.iterations, r8.iterations) << r1.index;
    EXPECT_EQ(r1.salt_len, r8.salt_len) << r1.index;
    EXPECT_EQ(r1.opt_out, r8.opt_out) << r1.index;
  }

  // The cost tally is credited back to the calling thread's meter, but it
  // is NOT jobs-invariant: every worker builds (and signs) its own private
  // world, so construction hashing scales with the worker count while the
  // scan-side work stays the same. Pin the direction, not equality.
  EXPECT_GT(serial.cost.sha1_blocks, 0u);
  EXPECT_GE(sharded.cost.sha1_blocks, serial.cost.sha1_blocks);
  EXPECT_GE(sharded.cost.nsec3_hashes, serial.cost.nsec3_hashes);
}

// jobs values that do not divide the population exercise the ragged tail.
TEST(ParallelCampaign, RaggedShardCountsStayIdentical) {
  const workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  const auto factory = default_world_factory(spec);

  const ParallelCampaignResult baseline = run_domain_campaign_parallel(
      spec, factory, {.jobs = 1, .base_seed = 42});
  for (const unsigned jobs : {2u, 3u, 7u}) {
    const ParallelCampaignResult run = run_domain_campaign_parallel(
        spec, factory, {.jobs = jobs, .base_seed = 42});
    SCOPED_TRACE(jobs);
    expect_same_stats(baseline.stats, run.stats);
    EXPECT_EQ(baseline.queries_issued, run.queries_issued);
    EXPECT_EQ(baseline.records.size(), run.records.size());
  }
}

// limit/stride shard exactly like the serial driver honours them.
TEST(ParallelCampaign, LimitAndStrideAreShardInvariant) {
  const workload::EcosystemSpec spec({.scale = 0.0001, .seed = 42});
  const auto factory = default_world_factory(spec);
  const ParallelOptions serial = {
      .jobs = 1, .limit = 120, .stride = 3, .base_seed = 42};
  ParallelOptions sharded = serial;
  sharded.jobs = 5;

  const auto a = run_domain_campaign_parallel(spec, factory, serial);
  const auto b = run_domain_campaign_parallel(spec, factory, sharded);
  // `limit` bounds the index range, `stride` subsamples it: 120 / 3 scans.
  EXPECT_EQ(a.stats.scanned, 40u);
  expect_same_stats(a.stats, b.stats);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i)
    EXPECT_EQ(a.records[i].index, b.records[i].index);
}

// Merging per-shard statistics in ANY permutation reproduces the unsharded
// campaign — the algebraic property the engine's merge step relies on.
TEST(ParallelCampaign, ShardMergeIsPermutationInvariant) {
  const workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  testbed::Internet internet;
  testbed::add_probe_infrastructure(internet);
  workload::install_ecosystem(internet, spec);
  internet.build();
  const auto resolver = internet.make_resolver(
      resolver::ResolverProfile::cloudflare(), simnet::IpAddress::v4(1, 1, 1, 1));

  DomainCampaign whole(internet, spec, resolver->address());
  whole.run();

  constexpr std::size_t kShards = 6;
  std::vector<DomainCampaignStats> shard_stats;
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    DomainCampaign piece(
        internet, spec, resolver->address(),
        simnet::IpAddress::v4(203, 0, 113,
                              static_cast<std::uint8_t>(10 + shard)));
    piece.run_shard(shard, kShards);
    shard_stats.push_back(piece.stats());
  }

  std::vector<std::size_t> order(kShards);
  for (std::size_t i = 0; i < kShards; ++i) order[i] = i;
  std::mt19937_64 rng(99);  // seeded shuffle: the property test is repeatable
  for (int round = 0; round < 10; ++round) {
    std::shuffle(order.begin(), order.end(), rng);
    DomainCampaignStats merged;
    for (const auto i : order) merged.merge(shard_stats[i]);
    expect_same_stats(whole.stats(), merged);
  }
}

// The §4.2 resolver sweep engine: a small mixed panel probed with different
// jobs values yields identical ResolverSweepStats.
TEST(ParallelSweep, JobsInvariantOnMixedPanel) {
  using resolver::ResolverProfile;
  workload::PanelSpec panel;
  panel.panel = workload::Panel::kOpenV4;
  panel.validator_count = 18;
  panel.non_validator_count = 4;
  panel.entries = {
      {ResolverProfile::bind9_2021(), 0.4, ""},
      {ResolverProfile::google_public_dns(), 0.25, ""},
      {ResolverProfile::cloudflare(), 0.2, ""},
      {ResolverProfile::strict_zero(), 0.1, ""},
      {ResolverProfile::item12_gap(), 0.05, ""},
  };

  const workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  const auto factory = default_world_factory(spec, /*with_domains=*/false);

  const ParallelSweepResult serial = run_resolver_sweep_parallel(
      panel, factory, "tpar-", 1u << 21, {.jobs = 1, .base_seed = 42});
  EXPECT_EQ(serial.stats.probed, 22u);
  EXPECT_EQ(serial.stats.validators, 18u);

  for (const unsigned jobs : {3u, 8u}) {
    const ParallelSweepResult sharded = run_resolver_sweep_parallel(
        panel, factory, "tpar-", 1u << 21, {.jobs = jobs, .base_seed = 42});
    SCOPED_TRACE(jobs);
    expect_same_sweep(serial.stats, sharded.stats);
    EXPECT_EQ(serial.queries_issued, sharded.queries_issued);
    EXPECT_EQ(serial.population, sharded.population);
  }
}

/// The virtual-time options the time-shaped invariance tests share: loss,
/// jitter and service cost all active, so the clock genuinely moves.
ParallelOptions time_shaped_options(unsigned jobs) {
  ParallelOptions options{.jobs = jobs, .base_seed = 42};
  options.loss_probability = 0.1;
  options.retry.attempts = 6;  // absorbs 10 % loss: P(miss) = 1e-6
  options.latency = simtime::LatencyModel(simtime::Duration::from_ms(20),
                                          simtime::Duration::from_ms(5),
                                          /*seed=*/42);
  options.service = {.per_sha1_block = simtime::Duration::from_us(1)};
  return options;
}

// ISSUE acceptance: latency ECDFs and timeout counts — not just the
// classification aggregates — are bit-identical across --jobs 1/4/16 when
// loss, jitter and service time are all switched on.
TEST(ParallelCampaign, TimeShapedCampaignIsJobsInvariant) {
  const workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  const auto factory = default_world_factory(spec);

  ParallelOptions serial = time_shaped_options(1);
  serial.limit = 400;
  const ParallelCampaignResult baseline =
      run_domain_campaign_parallel(spec, factory, serial);
  EXPECT_GT(baseline.stats.scan_latency_us.total(), 0u);
  EXPECT_GT(baseline.stats.scan_latency_us.max(), 0);

  for (const unsigned jobs : {4u, 16u}) {
    ParallelOptions sharded = time_shaped_options(jobs);
    sharded.limit = 400;
    const ParallelCampaignResult run =
        run_domain_campaign_parallel(spec, factory, sharded);
    SCOPED_TRACE(jobs);
    expect_same_stats(baseline.stats, run.stats);
    EXPECT_EQ(baseline.queries_issued, run.queries_issued);
  }
}

// Queueing on top of the full time-shaped stack must not break jobs-
// invariance: queue epochs are flow-scoped (Network::set_flow starts a
// fresh epoch), so per-item waits are a pure function of the item and the
// queue statistics merge like every other aggregate.
TEST(ParallelCampaign, QueueEnabledCampaignIsJobsInvariant) {
  const workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  const auto factory = default_world_factory(spec);

  const auto queued_options = [](unsigned jobs) {
    ParallelOptions options = time_shaped_options(jobs);
    options.limit = 400;
    options.queue = {.workers = 2,
                     .backlog = 8,
                     .shed = simtime::QueueModel::Shed::kServfail};
    return options;
  };
  const ParallelCampaignResult baseline =
      run_domain_campaign_parallel(spec, factory, queued_options(1));
  EXPECT_GT(baseline.stats.scan_latency_us.total(), 0u);
  EXPECT_GT(baseline.stats.queue_delay_us.total(), 0u);

  for (const unsigned jobs : {4u, 16u}) {
    const ParallelCampaignResult run =
        run_domain_campaign_parallel(spec, factory, queued_options(jobs));
    SCOPED_TRACE(jobs);
    expect_same_stats(baseline.stats, run.stats);
    EXPECT_EQ(baseline.queries_issued, run.queries_issued);
  }
}

// The resolver sweep's latency/timeout aggregates are jobs-invariant too —
// including the drop-above-limit cohort, whose probes time out by design.
TEST(ParallelSweep, TimeShapedSweepIsJobsInvariant) {
  using resolver::ResolverProfile;
  workload::PanelSpec panel;
  panel.panel = workload::Panel::kOpenV4;
  panel.validator_count = 12;
  panel.non_validator_count = 2;
  panel.entries = {
      {ResolverProfile::bind9_2021(), 0.4, ""},
      {ResolverProfile::cloudflare(), 0.3, ""},
      {ResolverProfile::limit_dropper(), 0.3, ""},
  };

  const workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  const auto factory = default_world_factory(spec, /*with_domains=*/false);

  const ParallelSweepResult baseline = run_resolver_sweep_parallel(
      panel, factory, "ttime-", 1u << 22, time_shaped_options(1));
  EXPECT_EQ(baseline.stats.validators, 12u);
  // The dropper cohort must actually exercise the timeout path.
  EXPECT_GT(baseline.stats.stop_answering, 0u);
  EXPECT_GT(baseline.stats.timeouts, 0u);
  EXPECT_GT(baseline.stats.probe_latency_us.max(), 0);

  for (const unsigned jobs : {4u, 16u}) {
    const ParallelSweepResult run = run_resolver_sweep_parallel(
        panel, factory, "ttime-", 1u << 22, time_shaped_options(jobs));
    SCOPED_TRACE(jobs);
    expect_same_sweep(baseline.stats, run.stats);
    EXPECT_EQ(baseline.queries_issued, run.queries_issued);
  }
}

// ISSUE regression for the silent-loss bug: with retransmission in place,
// moderate loss must not change a single campaign statistic — before the
// fix, one dropped UDP query marked a domain permanently unresponsive.
TEST(ParallelCampaign, ModerateLossLeavesStatisticsInvariant) {
  const workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  const auto factory = default_world_factory(spec);

  ParallelOptions clean{.jobs = 2, .limit = 300, .base_seed = 42};
  const ParallelCampaignResult baseline =
      run_domain_campaign_parallel(spec, factory, clean);

  for (const double loss : {0.05, 0.2}) {
    ParallelOptions lossy = clean;
    lossy.loss_probability = loss;
    lossy.retry.attempts = 8;  // 0.2^8 ≈ 2.6e-6 per exchange: never exhausts
    const ParallelCampaignResult run =
        run_domain_campaign_parallel(spec, factory, lossy);
    SCOPED_TRACE(loss);
    expect_same_classification(baseline.stats, run.stats);
    EXPECT_EQ(run.stats.timeouts, 0u);
    // Retransmissions are real queries: the lossy run must issue more.
    EXPECT_GT(run.queries_issued, baseline.queries_issued);
  }
}

}  // namespace
}  // namespace zh::scanner
