// Answer-cache semantics of the recursive resolver: repeat hits, explicit
// flushes, the wholesale capacity eviction, and the transient-SERVFAIL
// exclusion (a transport-caused failure must never be cached — a retry may
// well succeed; a *validation* failure is deterministic and is cached).
#include <gtest/gtest.h>

#include <memory>

#include "testbed/internet.hpp"

namespace zh::resolver {
namespace {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::RrType;
using simnet::IpAddress;

/// A fresh world per test: loss settings and cache contents must not leak
/// between cases.
class ResolverCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    specs_ = testbed::add_probe_infrastructure(internet_);
    internet_.build();
  }

  std::unique_ptr<RecursiveResolver> resolver(
      RecursiveResolver::Config config) {
    config.address = IpAddress::v4(203, 0, 113, 1);
    config.profile = ResolverProfile::bind9_2021();
    config.trust_anchor = internet_.trust_anchor();
    auto r = std::make_unique<RecursiveResolver>(
        internet_.network(), std::move(config), internet_.root_servers());
    r->attach();
    return r;
  }

  static Name nx(const std::string& token) {
    return Name::must_parse(token + ".nx.valid.rfc9276-in-the-wild.com");
  }

  testbed::Internet internet_;
  std::vector<testbed::ProbeZone> specs_;
};

TEST_F(ResolverCacheTest, RepeatHitAndFlush) {
  auto r = resolver({});

  const Message first = r->resolve(nx("repeat"), RrType::kA);
  EXPECT_EQ(first.header.rcode, Rcode::kNxDomain);
  EXPECT_EQ(r->stats().cache_hits, 0u);
  const std::uint64_t upstream_cold = r->stats().upstream_queries;

  // Same question again: answered from the cache, no upstream traffic.
  const Message second = r->resolve(nx("repeat"), RrType::kA);
  EXPECT_EQ(second.header.rcode, Rcode::kNxDomain);
  EXPECT_EQ(r->stats().cache_hits, 1u);
  EXPECT_EQ(r->stats().upstream_queries, upstream_cold);
  // The registry's mirror of the same counter (docs/TRACING.md).
  EXPECT_EQ(internet_.network().tracer().metrics().value("resolver.cache_hit"),
            1u);

  // flush_cache() drops answers *and* zone contexts: the next resolve goes
  // back upstream (from the root) instead of hitting the cache.
  r->flush_cache();
  const Message third = r->resolve(nx("repeat"), RrType::kA);
  EXPECT_EQ(third.header.rcode, Rcode::kNxDomain);
  EXPECT_EQ(r->stats().cache_hits, 1u);
  EXPECT_GT(r->stats().upstream_queries, upstream_cold);
}

TEST_F(ResolverCacheTest, DisabledCacheNeverHits) {
  RecursiveResolver::Config config;
  config.enable_cache = false;
  auto r = resolver(std::move(config));
  (void)r->resolve(nx("off"), RrType::kA);
  const std::uint64_t upstream_cold = r->stats().upstream_queries;
  (void)r->resolve(nx("off"), RrType::kA);
  EXPECT_EQ(r->stats().cache_hits, 0u);
  // Zone contexts are kept (they are not the answer cache), so the repeat
  // query is cheaper — but it must reach the authoritative server again.
  EXPECT_GT(r->stats().upstream_queries, upstream_cold);
}

TEST_F(ResolverCacheTest, CapacityEvictionIsWholesale) {
  // Capacity 2, three distinct names: inserting the third finds the cache
  // full and clears it wholesale (resolver.cpp), so only the third answer
  // survives.
  RecursiveResolver::Config config;
  config.cache_capacity = 2;
  auto r = resolver(std::move(config));
  (void)r->resolve(nx("a"), RrType::kA);
  (void)r->resolve(nx("b"), RrType::kA);
  (void)r->resolve(nx("c"), RrType::kA);  // size 2 >= capacity → clear, insert
  EXPECT_EQ(r->stats().cache_hits, 0u);

  (void)r->resolve(nx("c"), RrType::kA);  // survivor
  EXPECT_EQ(r->stats().cache_hits, 1u);
  (void)r->resolve(nx("a"), RrType::kA);  // evicted → re-resolved, re-cached
  EXPECT_EQ(r->stats().cache_hits, 1u);
  (void)r->resolve(nx("a"), RrType::kA);
  EXPECT_EQ(r->stats().cache_hits, 2u);
}

TEST_F(ResolverCacheTest, TransientServfailNotCached) {
  auto r = resolver({});
  // Total loss: every upstream exchange exhausts its retries, so the
  // resolver answers a *transient* SERVFAIL (EDE network error).
  internet_.network().set_loss(1.0, /*seed=*/1);
  const Message failed = r->resolve(nx("flaky"), RrType::kA);
  EXPECT_EQ(failed.header.rcode, Rcode::kServFail);
  EXPECT_GT(r->stats().upstream_timeouts, 0u);

  // The network heals; the same question must be retried upstream — if the
  // transient failure had been cached this would still SERVFAIL.
  internet_.network().set_loss(0.0);
  const Message healed = r->resolve(nx("flaky"), RrType::kA);
  EXPECT_EQ(healed.header.rcode, Rcode::kNxDomain);
  EXPECT_EQ(r->stats().cache_hits, 0u);

  // And the healed answer is cached like any other.
  (void)r->resolve(nx("flaky"), RrType::kA);
  EXPECT_EQ(r->stats().cache_hits, 1u);
}

TEST_F(ResolverCacheTest, DeterministicServfailIsCached) {
  // A validation failure (expired signatures) is a pure function of the
  // zone, not of transport luck — it is cached.
  auto r = resolver({});
  const Name name =
      Name::must_parse("probe.wc.expired.rfc9276-in-the-wild.com");
  const Message first = r->resolve(name, RrType::kA);
  EXPECT_EQ(first.header.rcode, Rcode::kServFail);
  const std::uint64_t upstream_cold = r->stats().upstream_queries;

  const Message second = r->resolve(name, RrType::kA);
  EXPECT_EQ(second.header.rcode, Rcode::kServFail);
  EXPECT_EQ(r->stats().cache_hits, 1u);
  EXPECT_EQ(r->stats().upstream_queries, upstream_cold);
}

}  // namespace
}  // namespace zh::resolver
