// Integration tests for the validating recursive resolver against the
// simulated Internet and the paper's probe infrastructure: chain-of-trust
// validation, NSEC3 proof checking, RFC 9276 Items 6-12 behaviour, EDE,
// forwarding, caching and the CVE-2023-50868 cost signal.
#include <gtest/gtest.h>

#include <memory>

#include "testbed/internet.hpp"

namespace zh::resolver {
namespace {

using dns::EdeCode;
using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::RrType;
using simnet::IpAddress;

class ResolverTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    internet_ = new testbed::Internet();
    specs_ = testbed::add_probe_infrastructure(*internet_);
    internet_->build();
  }
  static void TearDownTestSuite() {
    delete internet_;
    internet_ = nullptr;
  }

  std::unique_ptr<RecursiveResolver> resolver(const ResolverProfile& profile,
                                              std::uint8_t index = 1) {
    return internet_->make_resolver(profile,
                                    IpAddress::v4(203, 0, 113, index));
  }

  /// A unique nonexistent name under the probe zone (NXDOMAIN-eliciting).
  Name nx_name(const std::string& label, const std::string& token) {
    return Name::must_parse(token + ".nx." + label +
                            ".rfc9276-in-the-wild.com");
  }
  /// A wildcard-matched name under the probe zone (NOERROR-eliciting).
  Name wc_name(const std::string& label, const std::string& token) {
    return Name::must_parse(token + ".wc." + label +
                            ".rfc9276-in-the-wild.com");
  }

  static testbed::Internet* internet_;
  static std::vector<testbed::ProbeZone> specs_;
};

testbed::Internet* ResolverTest::internet_ = nullptr;
std::vector<testbed::ProbeZone> ResolverTest::specs_;

TEST_F(ResolverTest, ProbeSetMatchesPaper) {
  // 49 subdomains + it-2501-expired (§4.2 / DESIGN.md §4).
  EXPECT_EQ(specs_.size(), 50u);
}

TEST_F(ResolverTest, ValidZoneWildcardGetsAd) {
  auto r = resolver(ResolverProfile::bind9_2021());
  const Message resp = r->resolve(wc_name("valid", "probe1"), RrType::kA);
  EXPECT_EQ(resp.header.rcode, Rcode::kNoError);
  EXPECT_TRUE(resp.header.ad);
  EXPECT_EQ(resp.answers_of_type(RrType::kA).size(), 1u);
}

TEST_F(ResolverTest, ValidZoneNxdomainGetsAd) {
  auto r = resolver(ResolverProfile::bind9_2021());
  const Message resp = r->resolve(nx_name("valid", "probe2"), RrType::kA);
  EXPECT_EQ(resp.header.rcode, Rcode::kNxDomain);
  EXPECT_TRUE(resp.header.ad);
}

TEST_F(ResolverTest, ExpiredZoneServfails) {
  auto r = resolver(ResolverProfile::bind9_2021());
  const Message resp = r->resolve(wc_name("expired", "probe3"), RrType::kA);
  EXPECT_EQ(resp.header.rcode, Rcode::kServFail);
}

TEST_F(ResolverTest, IterationsWithinLimitStaySecure) {
  auto r = resolver(ResolverProfile::bind9_2021());  // insecure above 150
  for (const std::string label : {"it-1", "it-25", "it-150"}) {
    const Message resp = r->resolve(nx_name(label, "probe4"), RrType::kA);
    EXPECT_EQ(resp.header.rcode, Rcode::kNxDomain) << label;
    EXPECT_TRUE(resp.header.ad) << label;
  }
}

TEST_F(ResolverTest, IterationsAboveLimitGoInsecure) {
  auto r = resolver(ResolverProfile::bind9_2021());
  for (const std::string label : {"it-151", "it-200", "it-500"}) {
    const Message resp = r->resolve(nx_name(label, "probe5"), RrType::kA);
    EXPECT_EQ(resp.header.rcode, Rcode::kNxDomain) << label;
    EXPECT_FALSE(resp.header.ad) << label;
    // 2021-era software returned bare insecure responses without EDE.
    ASSERT_TRUE(resp.edns) << label;
    EXPECT_FALSE(resp.edns->ede()) << label;
  }
}

TEST_F(ResolverTest, CveEraSoftwareEmitsEde27OnInsecure) {
  auto r = resolver(ResolverProfile::knot_2023());  // insecure above 50
  const Message resp = r->resolve(nx_name("it-75", "probe5b"), RrType::kA);
  EXPECT_EQ(resp.header.rcode, Rcode::kNxDomain);
  EXPECT_FALSE(resp.header.ad);
  ASSERT_TRUE(resp.edns);
  const auto ede = resp.edns->ede();
  ASSERT_TRUE(ede);
  EXPECT_EQ(ede->info_code, EdeCode::kUnsupportedNsec3Iterations);
}

TEST_F(ResolverTest, CvePatchedResolverLowersLimitTo50) {
  auto r = resolver(ResolverProfile::bind9_2023());
  EXPECT_TRUE(r->resolve(nx_name("it-50", "p"), RrType::kA).header.ad);
  EXPECT_FALSE(r->resolve(nx_name("it-51", "p"), RrType::kA).header.ad);
}

TEST_F(ResolverTest, GoogleBoundaryAt100WithEde5) {
  auto r = resolver(ResolverProfile::google_public_dns());
  const Message at_limit = r->resolve(nx_name("it-100", "g1"), RrType::kA);
  EXPECT_TRUE(at_limit.header.ad);
  const Message above = r->resolve(nx_name("it-101", "g2"), RrType::kA);
  EXPECT_EQ(above.header.rcode, Rcode::kNxDomain);
  EXPECT_FALSE(above.header.ad);
  ASSERT_TRUE(above.edns);
  const auto ede = above.edns->ede();
  ASSERT_TRUE(ede);
  EXPECT_EQ(ede->info_code, EdeCode::kDnssecIndeterminate);
}

TEST_F(ResolverTest, CloudflareServfailsAbove150WithEde27) {
  auto r = resolver(ResolverProfile::cloudflare());
  EXPECT_EQ(r->resolve(nx_name("it-150", "c1"), RrType::kA).header.rcode,
            Rcode::kNxDomain);
  const Message resp = r->resolve(nx_name("it-151", "c2"), RrType::kA);
  EXPECT_EQ(resp.header.rcode, Rcode::kServFail);
  ASSERT_TRUE(resp.edns);
  const auto ede = resp.edns->ede();
  ASSERT_TRUE(ede);
  EXPECT_EQ(ede->info_code, EdeCode::kUnsupportedNsec3Iterations);
}

TEST_F(ResolverTest, OpenDnsServfailsWithEde12) {
  auto r = resolver(ResolverProfile::opendns());
  const Message resp = r->resolve(nx_name("it-175", "o1"), RrType::kA);
  EXPECT_EQ(resp.header.rcode, Rcode::kServFail);
  ASSERT_TRUE(resp.edns);
  const auto ede = resp.edns->ede();
  ASSERT_TRUE(ede);
  EXPECT_EQ(ede->info_code, EdeCode::kNsecMissing);
}

TEST_F(ResolverTest, Quad9InsecureWithoutEde) {
  auto r = resolver(ResolverProfile::quad9());
  const Message resp = r->resolve(nx_name("it-200", "q1"), RrType::kA);
  EXPECT_EQ(resp.header.rcode, Rcode::kNxDomain);
  EXPECT_FALSE(resp.header.ad);
  ASSERT_TRUE(resp.edns);
  EXPECT_FALSE(resp.edns->ede());
}

TEST_F(ResolverTest, TechnitiumServfailsAt101WithExtraText) {
  auto r = resolver(ResolverProfile::technitium());
  EXPECT_EQ(r->resolve(nx_name("it-100", "t1"), RrType::kA).header.rcode,
            Rcode::kNxDomain);
  const Message resp = r->resolve(nx_name("it-101", "t2"), RrType::kA);
  EXPECT_EQ(resp.header.rcode, Rcode::kServFail);
  const auto ede = resp.edns->ede();
  ASSERT_TRUE(ede);
  EXPECT_EQ(ede->info_code, EdeCode::kUnsupportedNsec3Iterations);
  EXPECT_FALSE(ede->extra_text.empty());
}

TEST_F(ResolverTest, StrictZeroServfailsFromOneIteration) {
  auto r = resolver(ResolverProfile::strict_zero());
  EXPECT_EQ(r->resolve(nx_name("valid", "s1"), RrType::kA).header.rcode,
            Rcode::kNxDomain);
  EXPECT_EQ(r->resolve(nx_name("it-1", "s2"), RrType::kA).header.rcode,
            Rcode::kServFail);
}

TEST_F(ResolverTest, StrictZeroCopiesRaBit) {
  auto r = resolver(ResolverProfile::strict_zero());
  Message query = Message::make_query(7, nx_name("it-1", "s3"), RrType::kA);
  query.header.rd = true;
  query.header.ra = false;
  const Message resp = r->handle(query, IpAddress::v4(203, 0, 113, 99));
  EXPECT_FALSE(resp.header.ra) << "quirk: RA mirrors the query";

  auto normal = resolver(ResolverProfile::bind9_2021(), 41);
  const Message resp2 = normal->handle(query, IpAddress::v4(203, 0, 113, 99));
  EXPECT_TRUE(resp2.header.ra);
}

TEST_F(ResolverTest, PermissiveValidatorValidatesEvenIt500) {
  auto r = resolver(ResolverProfile::permissive());
  const Message resp = r->resolve(nx_name("it-500", "p1"), RrType::kA);
  EXPECT_EQ(resp.header.rcode, Rcode::kNxDomain);
  EXPECT_TRUE(resp.header.ad) << "no RFC 9276 limit below the 2500 ceiling";
}

TEST_F(ResolverTest, Item7CompliantServfailsOnExpiredNsec3) {
  // it-2501-expired: above every insecure limit, NSEC3 RRSIGs expired.
  auto r = resolver(ResolverProfile::bind9_2021());
  const Message resp =
      r->resolve(nx_name("it-2501-expired", "i7a"), RrType::kA);
  EXPECT_EQ(resp.header.rcode, Rcode::kServFail)
      << "Item 7: verify NSEC3 RRSIG before trusting the iteration count";
}

TEST_F(ResolverTest, Item7ViolatorReturnsInsecureNxdomain) {
  auto r = resolver(ResolverProfile::item7_violator());
  const Message resp =
      r->resolve(nx_name("it-2501-expired", "i7b"), RrType::kA);
  EXPECT_EQ(resp.header.rcode, Rcode::kNxDomain)
      << "the 0.2% non-compliant behaviour of §5.2";
  EXPECT_FALSE(resp.header.ad);
}

TEST_F(ResolverTest, Item12GapProfileHasWindow) {
  auto r = resolver(ResolverProfile::item12_gap());
  EXPECT_TRUE(r->config().profile.policy.has_item12_gap());
  // Below 100: secure. 101-150: insecure (downgrade window!). >150: SERVFAIL.
  EXPECT_TRUE(r->resolve(nx_name("it-100", "g12a"), RrType::kA).header.ad);
  const Message mid = r->resolve(nx_name("it-125", "g12b"), RrType::kA);
  EXPECT_EQ(mid.header.rcode, Rcode::kNxDomain);
  EXPECT_FALSE(mid.header.ad);
  EXPECT_EQ(r->resolve(nx_name("it-175", "g12c"), RrType::kA).header.rcode,
            Rcode::kServFail);
}

TEST_F(ResolverTest, NonValidatingResolverNeverSetsAd) {
  auto r = resolver(ResolverProfile::non_validating());
  const Message nx = r->resolve(nx_name("it-500", "nv1"), RrType::kA);
  EXPECT_EQ(nx.header.rcode, Rcode::kNxDomain);
  EXPECT_FALSE(nx.header.ad);
  const Message ok = r->resolve(wc_name("expired", "nv2"), RrType::kA);
  EXPECT_EQ(ok.header.rcode, Rcode::kNoError)
      << "no validation → expired signatures do not matter";
}

TEST_F(ResolverTest, ForwarderRelaysUpstreamVerdict) {
  auto upstream = resolver(ResolverProfile::cloudflare(), 50);
  RecursiveResolver::Config config;
  config.address = IpAddress::v4(203, 0, 113, 51);
  config.profile = ResolverProfile::non_validating();
  config.forward = true;
  config.forward_target = upstream->address();
  RecursiveResolver forwarder(internet_->network(), config,
                              internet_->root_servers());
  forwarder.attach();

  Message query =
      Message::make_query(11, nx_name("it-151", "f1"), RrType::kA);
  const Message resp = forwarder.handle(query, IpAddress::v4(9, 9, 9, 9));
  EXPECT_EQ(resp.header.rcode, Rcode::kServFail)
      << "forwarders surface the upstream Cloudflare SERVFAIL";
}

TEST_F(ResolverTest, ForwarderCopiesAdWhenConfigured) {
  auto upstream = resolver(ResolverProfile::bind9_2021(), 52);
  RecursiveResolver::Config config;
  config.address = IpAddress::v4(203, 0, 113, 53);
  config.profile = ResolverProfile::bind9_2021();
  config.forward = true;
  config.forward_target = upstream->address();
  RecursiveResolver forwarder(internet_->network(), config,
                              internet_->root_servers());
  forwarder.attach();
  const Message resp = forwarder.resolve(nx_name("it-5", "f2"), RrType::kA);
  EXPECT_TRUE(resp.header.ad);
}

TEST_F(ResolverTest, AnswerCacheAvoidsUpstreamQueries) {
  auto r = resolver(ResolverProfile::bind9_2021(), 54);
  const Name name = wc_name("valid", "cache1");
  (void)r->resolve(name, RrType::kA);
  const auto upstream_before = r->stats().upstream_queries;
  (void)r->resolve(name, RrType::kA);
  EXPECT_EQ(r->stats().upstream_queries, upstream_before);
  EXPECT_GE(r->stats().cache_hits, 1u);
}

TEST_F(ResolverTest, ZoneContextCacheShortensSecondResolution) {
  auto r = resolver(ResolverProfile::bind9_2021(), 55);
  (void)r->resolve(nx_name("it-3", "z1"), RrType::kA);
  const auto first = r->stats().upstream_queries;
  (void)r->resolve(nx_name("it-3", "z2"), RrType::kA);
  const auto second = r->stats().upstream_queries - first;
  EXPECT_LT(second, first) << "root/TLD/zone contexts are reused";
}

TEST_F(ResolverTest, ValidationCostScalesWithIterations) {
  auto r = resolver(ResolverProfile::permissive(), 56);
  (void)r->resolve(nx_name("it-1", "cost1"), RrType::kA);
  const auto low = r->stats().last_query_sha1_blocks;
  (void)r->resolve(nx_name("it-500", "cost2"), RrType::kA);
  const auto high = r->stats().last_query_sha1_blocks;
  EXPECT_GT(high, low * 20)
      << "CVE-2023-50868: validation cost explodes with iteration count";
}

TEST_F(ResolverTest, LimitedResolverDoesNotPayHashCost) {
  auto r = resolver(ResolverProfile::cloudflare(), 57);
  (void)r->resolve(nx_name("it-500", "cost3"), RrType::kA);
  const auto servfail_cost = r->stats().last_query_sha1_blocks;
  auto p = resolver(ResolverProfile::permissive(), 58);
  (void)p->resolve(nx_name("it-500", "cost4"), RrType::kA);
  const auto full_cost = p->stats().last_query_sha1_blocks;
  EXPECT_LT(servfail_cost * 10, full_cost)
      << "Item 8 protects the resolver from the iteration cost";
}

TEST_F(ResolverTest, NoDoBitStripsDnssecRecords) {
  auto r = resolver(ResolverProfile::bind9_2021(), 59);
  const Message resp =
      r->resolve(nx_name("it-5", "nodo"), RrType::kA, /*dnssec_ok=*/false);
  EXPECT_EQ(resp.header.rcode, Rcode::kNxDomain);
  EXPECT_TRUE(resp.authorities_of_type(RrType::kNsec3).empty());
  EXPECT_FALSE(resp.header.ad);
}

TEST_F(ResolverTest, DnskeyQueryReturnsSecureAnswer) {
  auto r = resolver(ResolverProfile::bind9_2021(), 60);
  const Message resp = r->resolve(
      Name::must_parse("rfc9276-in-the-wild.com"), RrType::kDnskey);
  EXPECT_EQ(resp.header.rcode, Rcode::kNoError);
  EXPECT_EQ(resp.answers_of_type(RrType::kDnskey).size(), 2u);
  EXPECT_TRUE(resp.header.ad);
}

TEST_F(ResolverTest, Nsec3ParamQueryReturnsZoneParameters) {
  auto r = resolver(ResolverProfile::bind9_2021(), 61);
  const Message resp = r->resolve(
      Name::must_parse("it-17.rfc9276-in-the-wild.com"), RrType::kNsec3Param);
  ASSERT_EQ(resp.answers_of_type(RrType::kNsec3Param).size(), 1u);
  const auto param = resp.answers_of_type(RrType::kNsec3Param)[0]
                         .as<dns::Nsec3ParamRdata>();
  ASSERT_TRUE(param);
  EXPECT_EQ(param->iterations, 17);
  EXPECT_TRUE(param->salt.empty());
}


TEST(ResolverCname, ChasesAcrossZonesAndValidates) {
  testbed::Internet internet;
  internet.add_tld("com", testbed::TldConfig{});
  internet.add_tld("net", testbed::TldConfig{});

  // alias.source.com CNAME -> target.dest.net (cross-zone, both signed).
  testbed::DomainConfig source;
  source.apex = Name::must_parse("source.com");
  dns::CnameRdata cname;
  cname.target = Name::must_parse("target.dest.net");
  source.extra_records.push_back(dns::ResourceRecord::make(
      Name::must_parse("alias.source.com"), RrType::kCname, 300, cname));
  internet.add_domain(source);

  testbed::DomainConfig dest;
  dest.apex = Name::must_parse("dest.net");
  dest.extra_records.push_back(
      dns::make_a(Name::must_parse("target.dest.net"), 300, 192, 0, 2, 33));
  internet.add_domain(dest);
  internet.build();

  auto r = internet.make_resolver(ResolverProfile::bind9_2021(),
                                  IpAddress::v4(203, 0, 113, 80));
  const Message resp =
      r->resolve(Name::must_parse("alias.source.com"), RrType::kA);
  EXPECT_EQ(resp.header.rcode, Rcode::kNoError);
  EXPECT_EQ(resp.answers_of_type(RrType::kCname).size(), 1u);
  ASSERT_EQ(resp.answers_of_type(RrType::kA).size(), 1u);
  EXPECT_TRUE(resp.answers_of_type(RrType::kA)[0].name.equals(
      Name::must_parse("target.dest.net")));
  EXPECT_TRUE(resp.header.ad) << "both links of the chain validated";
}

TEST(ResolverCname, DanglingCnameYieldsTargetNxdomain) {
  testbed::Internet internet;
  internet.add_tld("com", testbed::TldConfig{});
  testbed::DomainConfig zone_config;
  zone_config.apex = Name::must_parse("dangling.com");
  dns::CnameRdata cname;
  cname.target = Name::must_parse("void.dangling.com");
  zone_config.extra_records.push_back(dns::ResourceRecord::make(
      Name::must_parse("alias.dangling.com"), RrType::kCname, 300, cname));
  internet.add_domain(zone_config);
  internet.build();

  auto r = internet.make_resolver(ResolverProfile::bind9_2021(),
                                  IpAddress::v4(203, 0, 113, 81));
  const Message resp =
      r->resolve(Name::must_parse("alias.dangling.com"), RrType::kA);
  EXPECT_EQ(resp.header.rcode, Rcode::kNxDomain);
  EXPECT_EQ(resp.answers_of_type(RrType::kCname).size(), 1u);
}

}  // namespace
}  // namespace zh::resolver
