// Unit tests for the zone model and the DNSSEC signer: empty non-terminals,
// closest enclosers, delegations, NSEC/NSEC3 chain construction, opt-out,
// signature validity and the expired-signature overrides.
#include <gtest/gtest.h>

#include <set>

#include "crypto/signing.hpp"
#include "dns/dnssec.hpp"
#include "zone/signer.hpp"
#include "zone/zone.hpp"

namespace zh::zone {
namespace {

using dns::Name;
using dns::RrType;

Zone example_zone() {
  Zone zone(Name::must_parse("example.com"));
  zone.add(dns::make_soa(zone.apex(), 3600,
                         Name::must_parse("ns1.example.com"), 1));
  zone.add(dns::make_ns(zone.apex(), 3600, Name::must_parse("ns1.example.com")));
  zone.add(dns::make_a(Name::must_parse("ns1.example.com"), 3600, 192, 0, 2, 53));
  zone.add(dns::make_a(Name::must_parse("www.example.com"), 300, 192, 0, 2, 80));
  zone.add(dns::make_txt(Name::must_parse("api.example.com"), 300, "v1"));
  // Deep name creates empty non-terminal "deep.example.com".
  zone.add(dns::make_a(Name::must_parse("host.deep.example.com"), 300, 192, 0,
                       2, 99));
  return zone;
}

TEST(Zone, AddRejectsOutOfZoneNames) {
  Zone zone(Name::must_parse("example.com"));
  EXPECT_FALSE(zone.add(dns::make_a(Name::must_parse("example.org"), 60, 1, 2,
                                    3, 4)));
  EXPECT_TRUE(zone.add(dns::make_a(Name::must_parse("example.com"), 60, 1, 2,
                                   3, 4)));
}

TEST(Zone, EmptyNonTerminalsMaterialised) {
  const Zone zone = example_zone();
  const ZoneNode* ent = zone.node(Name::must_parse("deep.example.com"));
  ASSERT_NE(ent, nullptr);
  EXPECT_TRUE(ent->empty());
  EXPECT_TRUE(zone.name_exists(Name::must_parse("deep.example.com")));
}

TEST(Zone, DuplicateRecordsCollapse) {
  Zone zone(Name::must_parse("example.com"));
  const auto rr = dns::make_a(zone.apex(), 60, 1, 2, 3, 4);
  zone.add(rr);
  zone.add(rr);
  EXPECT_EQ(zone.find(zone.apex(), RrType::kA)->size(), 1u);
}

TEST(Zone, MinTtlWins) {
  Zone zone(Name::must_parse("example.com"));
  zone.add(dns::make_a(zone.apex(), 600, 1, 2, 3, 4));
  zone.add(dns::make_a(zone.apex(), 60, 5, 6, 7, 8));
  EXPECT_EQ(zone.find(zone.apex(), RrType::kA)->ttl, 60u);
}

TEST(Zone, ClosestEncloser) {
  const Zone zone = example_zone();
  EXPECT_TRUE(zone.closest_encloser(Name::must_parse("nope.example.com"))
                  .equals(zone.apex()));
  EXPECT_TRUE(zone.closest_encloser(Name::must_parse("a.b.www.example.com"))
                  .equals(Name::must_parse("www.example.com")));
  EXPECT_TRUE(zone.closest_encloser(Name::must_parse("x.deep.example.com"))
                  .equals(Name::must_parse("deep.example.com")));
  EXPECT_TRUE(zone.closest_encloser(Name::must_parse("www.example.com"))
                  .equals(Name::must_parse("www.example.com")));
}

TEST(Zone, DelegationDetection) {
  Zone zone = example_zone();
  zone.add(dns::make_ns(Name::must_parse("child.example.com"), 3600,
                        Name::must_parse("ns1.child.example.com")));
  zone.add(dns::make_a(Name::must_parse("ns1.child.example.com"), 3600, 192,
                       0, 2, 10));  // glue

  EXPECT_FALSE(zone.delegation_for(Name::must_parse("www.example.com")));
  const auto cut = zone.delegation_for(Name::must_parse("child.example.com"));
  ASSERT_TRUE(cut);
  EXPECT_TRUE(cut->equals(Name::must_parse("child.example.com")));
  const auto below =
      zone.delegation_for(Name::must_parse("a.b.child.example.com"));
  ASSERT_TRUE(below);
  EXPECT_TRUE(below->equals(Name::must_parse("child.example.com")));
  // Apex NS is not a delegation.
  EXPECT_FALSE(zone.delegation_for(zone.apex()));
}

TEST(Zone, NamesInCanonicalOrder) {
  const Zone zone = example_zone();
  const auto names = zone.names_in_order();
  ASSERT_GE(names.size(), 2u);
  for (std::size_t i = 1; i < names.size(); ++i)
    EXPECT_TRUE(Name::canonical_compare(names[i - 1], names[i]) < 0);
  EXPECT_TRUE(names.front().equals(zone.apex()));
}

TEST(Signer, PublishesDnskeysAndNsec3Param) {
  Zone zone = example_zone();
  SignerConfig config;
  config.nsec3.iterations = 5;
  config.nsec3.salt = {0xab, 0xcd};
  const SigningResult result = sign_zone(zone, config);

  const auto* dnskeys = zone.find(zone.apex(), RrType::kDnskey);
  ASSERT_NE(dnskeys, nullptr);
  EXPECT_EQ(dnskeys->size(), 2u);

  const auto param = zone.nsec3param();
  ASSERT_TRUE(param);
  EXPECT_EQ(param->iterations, 5);
  EXPECT_EQ(param->salt.size(), 2u);

  EXPECT_TRUE(result.ksk.is_sep());
  EXPECT_FALSE(result.zsk.is_sep());
  EXPECT_TRUE(dns::ds_matches_key(result.ds, zone.apex(), result.ksk));
}

TEST(Signer, Nsec3ChainIsSortedAndCircular) {
  Zone zone = example_zone();
  SignerConfig config;
  sign_zone(zone, config);

  const auto& entries = zone.nsec3_entries();
  ASSERT_GE(entries.size(), 5u);  // apex, ns1, www, api, deep, host.deep
  std::set<std::vector<std::uint8_t>> hashes;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    hashes.insert(entries[i].hash);
    if (i > 0) {
      EXPECT_LT(entries[i - 1].hash, entries[i].hash);
    }
    EXPECT_EQ(entries[i].rdata.next_hash,
              entries[(i + 1) % entries.size()].hash);
  }
  EXPECT_EQ(hashes.size(), entries.size());
}

TEST(Signer, Nsec3ChainIncludesEmptyNonTerminals) {
  Zone zone = example_zone();
  SignerConfig config;
  sign_zone(zone, config);

  const auto hash = dns::nsec3_hash_name(
      Name::must_parse("deep.example.com"), {}, 0);
  const auto* entry = zone.nsec3_matching(
      std::span<const std::uint8_t>(hash.data(), hash.size()));
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->rdata.types.empty());  // ENT owns no types
}

TEST(Signer, Nsec3MatchingAndCovering) {
  Zone zone = example_zone();
  SignerConfig config;
  config.nsec3.iterations = 3;
  sign_zone(zone, config);

  const auto www_hash = dns::nsec3_hash_name(
      Name::must_parse("www.example.com"), {}, 3);
  EXPECT_NE(zone.nsec3_matching(std::span<const std::uint8_t>(
                www_hash.data(), www_hash.size())),
            nullptr);

  const auto absent_hash = dns::nsec3_hash_name(
      Name::must_parse("nonexistent.example.com"), {}, 3);
  EXPECT_EQ(zone.nsec3_matching(std::span<const std::uint8_t>(
                absent_hash.data(), absent_hash.size())),
            nullptr);
  const auto* covering = zone.nsec3_covering(std::span<const std::uint8_t>(
      absent_hash.data(), absent_hash.size()));
  ASSERT_NE(covering, nullptr);
  EXPECT_TRUE(dns::nsec3_covers(
      std::span<const std::uint8_t>(covering->hash.data(),
                                    covering->hash.size()),
      std::span<const std::uint8_t>(covering->rdata.next_hash.data(),
                                    covering->rdata.next_hash.size()),
      std::span<const std::uint8_t>(absent_hash.data(), absent_hash.size())));
}

TEST(Signer, OptOutSkipsInsecureDelegations) {
  Zone zone = example_zone();
  zone.add(dns::make_ns(Name::must_parse("insecure.example.com"), 3600,
                        Name::must_parse("ns.elsewhere.net")));
  zone.add(dns::make_ns(Name::must_parse("secure.example.com"), 3600,
                        Name::must_parse("ns.elsewhere.net")));
  dns::DsRdata ds;
  ds.key_tag = 1;
  ds.algorithm = 253;
  ds.digest.assign(32, 0x11);
  zone.add(dns::ResourceRecord::make(Name::must_parse("secure.example.com"),
                                     RrType::kDs, 3600, ds));

  SignerConfig config;
  config.nsec3.opt_out = true;
  sign_zone(zone, config);

  const auto insecure_hash = dns::nsec3_hash_name(
      Name::must_parse("insecure.example.com"), {}, 0);
  const auto secure_hash = dns::nsec3_hash_name(
      Name::must_parse("secure.example.com"), {}, 0);
  EXPECT_EQ(zone.nsec3_matching(std::span<const std::uint8_t>(
                insecure_hash.data(), insecure_hash.size())),
            nullptr)
      << "opt-out zones omit insecure delegations from the chain";
  EXPECT_NE(zone.nsec3_matching(std::span<const std::uint8_t>(
                secure_hash.data(), secure_hash.size())),
            nullptr);
  for (const auto& entry : zone.nsec3_entries())
    EXPECT_TRUE(entry.rdata.opt_out());
}

TEST(Signer, WithoutOptOutInsecureDelegationsInChain) {
  Zone zone = example_zone();
  zone.add(dns::make_ns(Name::must_parse("insecure.example.com"), 3600,
                        Name::must_parse("ns.elsewhere.net")));
  SignerConfig config;  // opt_out = false
  sign_zone(zone, config);

  const auto hash = dns::nsec3_hash_name(
      Name::must_parse("insecure.example.com"), {}, 0);
  const auto* entry = zone.nsec3_matching(
      std::span<const std::uint8_t>(hash.data(), hash.size()));
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->rdata.types.contains(RrType::kNs));
  EXPECT_FALSE(entry->rdata.types.contains(RrType::kRrsig))
      << "insecure delegations carry no signed data";
  EXPECT_FALSE(entry->rdata.opt_out());
}

TEST(Signer, GlueIsNeitherSignedNorChained) {
  Zone zone = example_zone();
  zone.add(dns::make_ns(Name::must_parse("child.example.com"), 3600,
                        Name::must_parse("ns1.child.example.com")));
  zone.add(dns::make_a(Name::must_parse("ns1.child.example.com"), 3600, 192,
                       0, 2, 10));
  SignerConfig config;
  sign_zone(zone, config);

  const auto glue_hash = dns::nsec3_hash_name(
      Name::must_parse("ns1.child.example.com"), {}, 0);
  EXPECT_EQ(zone.nsec3_matching(std::span<const std::uint8_t>(
                glue_hash.data(), glue_hash.size())),
            nullptr);
  EXPECT_EQ(zone.find(Name::must_parse("ns1.child.example.com"),
                      RrType::kRrsig),
            nullptr);
  // Delegation NS itself is unsigned too.
  const auto* rrsigs =
      zone.find(Name::must_parse("child.example.com"), RrType::kRrsig);
  EXPECT_EQ(rrsigs, nullptr);
}

TEST(Signer, SignaturesVerify) {
  Zone zone = example_zone();
  SignerConfig config;
  const SigningResult result = sign_zone(zone, config);

  const auto* a_set = zone.find(Name::must_parse("www.example.com"),
                                RrType::kA);
  const auto* rrsig_set = zone.find(Name::must_parse("www.example.com"),
                                    RrType::kRrsig);
  ASSERT_NE(a_set, nullptr);
  ASSERT_NE(rrsig_set, nullptr);

  bool verified = false;
  for (const auto& rdata : rrsig_set->rdatas) {
    const auto sig = dns::RrsigRdata::decode(
        std::span<const std::uint8_t>(rdata.data(), rdata.size()));
    ASSERT_TRUE(sig);
    if (sig->covered() != RrType::kA) continue;
    EXPECT_EQ(sig->key_tag, result.zsk.key_tag());
    const auto data = dns::build_signed_data(*sig, *a_set);
    crypto::SimPublicKey pk{};
    std::copy(result.zsk.public_key.begin(), result.zsk.public_key.end(),
              pk.begin());
    EXPECT_TRUE(crypto::sim_verify(
        pk, std::span<const std::uint8_t>(data.data(), data.size()),
        std::span<const std::uint8_t>(sig->signature.data(),
                                      sig->signature.size())));
    verified = true;
  }
  EXPECT_TRUE(verified);
}

TEST(Signer, DnskeySignedByKsk) {
  Zone zone = example_zone();
  SignerConfig config;
  const SigningResult result = sign_zone(zone, config);

  const auto* rrsig_set = zone.find(zone.apex(), RrType::kRrsig);
  ASSERT_NE(rrsig_set, nullptr);
  bool found = false;
  for (const auto& rdata : rrsig_set->rdatas) {
    const auto sig = dns::RrsigRdata::decode(
        std::span<const std::uint8_t>(rdata.data(), rdata.size()));
    if (sig && sig->covered() == RrType::kDnskey) {
      EXPECT_EQ(sig->key_tag, result.ksk.key_tag());
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Signer, ExpiredZoneHasPastExpiration) {
  Zone zone = example_zone();
  SignerConfig config;
  config.expiration = kSimNow - 86400;
  sign_zone(zone, config);

  const auto* rrsig_set = zone.find(zone.apex(), RrType::kRrsig);
  ASSERT_NE(rrsig_set, nullptr);
  for (const auto& rdata : rrsig_set->rdatas) {
    const auto sig = dns::RrsigRdata::decode(
        std::span<const std::uint8_t>(rdata.data(), rdata.size()));
    ASSERT_TRUE(sig);
    EXPECT_LT(sig->expiration, kSimNow);
  }
}

TEST(Signer, Nsec3RrsigExpirationOverrideOnlyHitsNsec3) {
  // The it-2501-expired construction: NSEC3 signatures expired, the rest valid.
  Zone zone = example_zone();
  SignerConfig config;
  config.nsec3.iterations = 2501;
  config.nsec3_rrsig_expiration = kSimNow - 3600;
  sign_zone(zone, config);

  for (const auto& entry : zone.nsec3_entries()) {
    ASSERT_FALSE(entry.rrsigs.empty());
    const auto sig = entry.rrsigs.front().as<dns::RrsigRdata>();
    ASSERT_TRUE(sig);
    EXPECT_LT(sig->expiration, kSimNow);
  }
  const auto* apex_sigs = zone.find(zone.apex(), RrType::kRrsig);
  ASSERT_NE(apex_sigs, nullptr);
  for (const auto& rdata : apex_sigs->rdatas) {
    const auto sig = dns::RrsigRdata::decode(
        std::span<const std::uint8_t>(rdata.data(), rdata.size()));
    ASSERT_TRUE(sig);
    EXPECT_GT(sig->expiration, kSimNow);
  }
}

TEST(Signer, NsecModeBuildsNsecChain) {
  Zone zone = example_zone();
  SignerConfig config;
  config.denial = DenialMode::kNsec;
  sign_zone(zone, config);

  EXPECT_TRUE(zone.nsec3_entries().empty());
  EXPECT_FALSE(zone.nsec3param());
  const auto* apex_nsec = zone.find(zone.apex(), RrType::kNsec);
  ASSERT_NE(apex_nsec, nullptr);
  const auto nsec = dns::NsecRdata::decode(std::span<const std::uint8_t>(
      apex_nsec->rdatas.front().data(), apex_nsec->rdatas.front().size()));
  ASSERT_TRUE(nsec);
  EXPECT_TRUE(nsec->types.contains(RrType::kSoa));
  EXPECT_TRUE(nsec->types.contains(RrType::kNsec));
  // ENTs own no NSEC record.
  EXPECT_EQ(zone.find(Name::must_parse("deep.example.com"), RrType::kNsec),
            nullptr);
}

TEST(Signer, UnsignedZoneStaysUnsigned) {
  Zone zone = example_zone();
  SignerConfig config;
  config.denial = DenialMode::kUnsigned;
  sign_zone(zone, config);
  EXPECT_EQ(zone.find(zone.apex(), RrType::kDnskey), nullptr);
  EXPECT_EQ(zone.find(zone.apex(), RrType::kRrsig), nullptr);
  EXPECT_TRUE(zone.nsec3_entries().empty());
}

TEST(Signer, DeterministicAcrossRuns) {
  Zone zone1 = example_zone();
  Zone zone2 = example_zone();
  SignerConfig config;
  config.nsec3.iterations = 1;
  config.nsec3.salt = {0x42};
  sign_zone(zone1, config);
  sign_zone(zone2, config);
  EXPECT_EQ(zone1.to_text(), zone2.to_text());
  ASSERT_EQ(zone1.nsec3_entries().size(), zone2.nsec3_entries().size());
  for (std::size_t i = 0; i < zone1.nsec3_entries().size(); ++i)
    EXPECT_EQ(zone1.nsec3_entries()[i].hash, zone2.nsec3_entries()[i].hash);
}

}  // namespace
}  // namespace zh::zone
