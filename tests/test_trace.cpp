// zh::trace subsystem tests: ring-buffer bounds, span timestamps from a
// virtual TimeSource, the metrics registry, deterministic export — and the
// ISSUE acceptance criteria: with tracing enabled the merged JSONL stream
// is byte-identical for the same (seed, jobs); campaign aggregates stay
// bit-identical for ANY jobs value, traced or not; and the zone-LRU
// metrics expose the eviction pressure behind the ROADMAP sizing item.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "scanner/parallel.hpp"
#include "testbed/internet.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace zh::trace {
namespace {

/// Hand-cranked virtual clock for unit-level tracer tests.
struct FakeTime final : TimeSource {
  std::int64_t t = 0;
  std::int64_t now_ns() const override { return t; }
};

TEST(Tracer, RingBoundKeepsNewestEvents) {
  FakeTime time;
  Tracer tracer(&time);
  tracer.configure({.enabled = true, .buffer_capacity = 4});

  for (int i = 0; i < 10; ++i) {
    time.t = i;
    tracer.instant("test", "tick");
  }
  EXPECT_EQ(tracer.events_emitted(), 10u);
  EXPECT_EQ(tracer.events_lost(), 6u);

  const ShardTrace shard = tracer.take();
  ASSERT_EQ(shard.events.size(), 4u);
  EXPECT_EQ(shard.emitted, 10u);
  EXPECT_EQ(shard.lost, 6u);
  // Oldest → newest: the ring kept the most recent window.
  for (std::size_t i = 0; i < shard.events.size(); ++i)
    EXPECT_EQ(shard.events[i].ts_ns, static_cast<std::int64_t>(6 + i));
}

TEST(Tracer, SpanStampsVirtualTimeAndNesting) {
  FakeTime time;
  Tracer tracer(&time);
  tracer.configure({.enabled = true});

  time.t = 100;
  {
    Span outer = tracer.span("resolver", "resolve", "example.com.");
    time.t = 150;
    {
      Span inner = tracer.span("net", "deliver.udp");
      time.t = 250;
    }
    time.t = 400;
  }

  const ShardTrace shard = tracer.take();
  ASSERT_EQ(shard.events.size(), 2u);
  // Spans close inner-first.
  EXPECT_STREQ(shard.events[0].name, "deliver.udp");
  EXPECT_EQ(shard.events[0].ts_ns, 150);
  EXPECT_EQ(shard.events[0].dur_ns, 100);
  EXPECT_EQ(shard.events[0].depth, 1u);
  EXPECT_STREQ(shard.events[1].name, "resolve");
  EXPECT_EQ(shard.events[1].ts_ns, 100);
  EXPECT_EQ(shard.events[1].dur_ns, 300);
  EXPECT_EQ(shard.events[1].depth, 0u);
  EXPECT_EQ(shard.events[1].detail, "example.com.");
}

TEST(Tracer, DisabledTracerEmitsNothingButCountsMetrics) {
  FakeTime time;
  Tracer tracer(&time);  // default config: disabled

  {
    Span s = tracer.span("resolver", "resolve");
    EXPECT_FALSE(s.active());
  }
  tracer.instant("test", "tick");
  tracer.count("some.counter");
  tracer.add_stage(Stage::kRecurse, 42);

  EXPECT_EQ(tracer.events_emitted(), 0u);
  EXPECT_TRUE(tracer.take().events.empty());
  // Metrics and stage totals are always on (they produce no output unless
  // printed) — the cost contract in trace/trace.hpp.
  EXPECT_EQ(tracer.metrics().value("some.counter"), 1u);
  EXPECT_EQ(tracer.stage_ns(Stage::kRecurse), 42);
}

TEST(Metrics, RegistryHandlesAndMerge) {
  Metrics a;
  Metrics::Counter slot = a.counter("resolver.cache_hit");
  ++*slot;
  ++*slot;
  a.add("queue.shed", 3);
  // counter() returns the same stable slot on re-registration.
  EXPECT_EQ(a.counter("resolver.cache_hit"), slot);
  EXPECT_EQ(a.value("resolver.cache_hit"), 2u);
  EXPECT_EQ(a.value("never.registered"), 0u);

  Metrics b;
  b.add("resolver.cache_hit", 5);
  b.add("client.retransmit", 1);
  a.merge(b);
  EXPECT_EQ(a.value("resolver.cache_hit"), 7u);
  EXPECT_EQ(a.value("client.retransmit"), 1u);

  const auto snapshot = a.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);  // sorted by name
  EXPECT_EQ(snapshot[0].first, "client.retransmit");
  EXPECT_EQ(snapshot[1].first, "queue.shed");
  EXPECT_EQ(snapshot[2].first, "resolver.cache_hit");
}

TEST(Export, JsonlAndChromeShape) {
  FakeTime time;
  Tracer tracer(&time);
  tracer.configure({.enabled = true});
  tracer.set_flow(7);
  time.t = 1000;
  {
    Span s = tracer.span("net", "deliver.udp", "1.1.1.1");
    time.t = 3500;
  }
  tracer.instant("queue", "shed");
  tracer.count("queue.shed");

  Collector collector;
  collector.add_shard(0, tracer.take());
  EXPECT_EQ(collector.shard_count(), 1u);
  EXPECT_EQ(collector.event_count(), 2u);
  EXPECT_EQ(collector.metric("queue.shed"), 1u);

  const std::string jsonl = collector.to_jsonl();
  EXPECT_NE(jsonl.find("{\"shard\":0,\"ph\":\"X\",\"cat\":\"net\","
                       "\"name\":\"deliver.udp\",\"ts\":1000,\"dur\":2500"),
            std::string::npos)
      << jsonl;
  EXPECT_NE(jsonl.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"shard_summary\""), std::string::npos);

  const std::string chrome = collector.to_chrome();
  EXPECT_NE(chrome.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  // ns → µs: 1000 ns = 1.000 µs, 2500 ns = 2.500 µs.
  EXPECT_NE(chrome.find("\"ts\":1.000"), std::string::npos) << chrome;
  EXPECT_NE(chrome.find("\"dur\":2.500"), std::string::npos) << chrome;
}

// --- Campaign-level acceptance criteria ---------------------------------

scanner::ParallelOptions traced_options(unsigned jobs, bool enabled) {
  scanner::ParallelOptions options;
  options.jobs = jobs;
  options.base_seed = 42;
  options.limit = 120;  // keep the worlds' scan portion cheap
  // A latency + service model so virtual time (and with it every span
  // timestamp and stage total) actually moves.
  options.latency = simtime::LatencyModel(simtime::Duration::from_us(2000),
                                          simtime::Duration::from_us(500),
                                          options.base_seed);
  options.service = {.per_sha1_block = simtime::Duration::from_us(1)};
  options.trace.enabled = enabled;
  return options;
}

TEST(TraceDeterminism, JsonlByteIdenticalForSameSeedAndJobs) {
  const workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  const auto factory = scanner::default_world_factory(spec);

  const auto first = scanner::run_domain_campaign_parallel(
      spec, factory, traced_options(/*jobs=*/2, /*enabled=*/true));
  const auto second = scanner::run_domain_campaign_parallel(
      spec, factory, traced_options(/*jobs=*/2, /*enabled=*/true));

  EXPECT_GT(first.trace.event_count(), 0u);
  EXPECT_EQ(first.trace.to_jsonl(), second.trace.to_jsonl());
  EXPECT_EQ(first.trace.to_chrome(), second.trace.to_chrome());
}

TEST(TraceDeterminism, AggregatesJobsInvariantWhileTraced) {
  const workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  const auto factory = scanner::default_world_factory(spec);

  const auto serial = scanner::run_domain_campaign_parallel(
      spec, factory, traced_options(/*jobs=*/1, /*enabled=*/true));
  const auto sharded = scanner::run_domain_campaign_parallel(
      spec, factory, traced_options(/*jobs=*/3, /*enabled=*/true));

  // The raw event streams differ across jobs (per-worker warm passes and
  // shard interleaving are worker-count artefacts) — but every aggregated
  // quantity, including the per-item stage breakdown, must not.
  EXPECT_GT(serial.stats.scanned, 0u);
  EXPECT_EQ(serial.stats.scanned, sharded.stats.scanned);
  EXPECT_EQ(serial.stats.nsec3, sharded.stats.nsec3);
  EXPECT_EQ(serial.queries_issued, sharded.queries_issued);
  EXPECT_EQ(serial.stats.scan_latency_us.histogram(),
            sharded.stats.scan_latency_us.histogram());
  EXPECT_EQ(serial.stats.stage_resolve_us.histogram(),
            sharded.stats.stage_resolve_us.histogram());
  EXPECT_EQ(serial.stats.stage_recurse_us.histogram(),
            sharded.stats.stage_recurse_us.histogram());
  EXPECT_EQ(serial.stats.stage_validate_us.histogram(),
            sharded.stats.stage_validate_us.histogram());
  EXPECT_EQ(serial.stats.stage_queue_wait_us.histogram(),
            sharded.stats.stage_queue_wait_us.histogram());
  // Time actually moved, so the breakdown is non-trivial.
  EXPECT_GT(serial.stats.stage_resolve_us.max(), 0);
  EXPECT_GT(serial.stats.stage_recurse_us.max(), 0);
}

TEST(TraceDeterminism, TracingLeavesCampaignUntouched) {
  const workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  const auto factory = scanner::default_world_factory(spec);

  const auto off = scanner::run_domain_campaign_parallel(
      spec, factory, traced_options(/*jobs=*/2, /*enabled=*/false));
  const auto on = scanner::run_domain_campaign_parallel(
      spec, factory, traced_options(/*jobs=*/2, /*enabled=*/true));

  // Goldens contract: enabling tracing must not perturb a single statistic.
  EXPECT_EQ(off.trace.event_count(), 0u);
  EXPECT_GT(on.trace.event_count(), 0u);
  EXPECT_EQ(off.stats.scanned, on.stats.scanned);
  EXPECT_EQ(off.stats.dnssec, on.stats.dnssec);
  EXPECT_EQ(off.stats.nsec3, on.stats.nsec3);
  EXPECT_EQ(off.queries_issued, on.queries_issued);
  EXPECT_EQ(off.stats.scan_latency_us.histogram(),
            on.stats.scan_latency_us.histogram());
  EXPECT_EQ(off.stats.stage_resolve_us.histogram(),
            on.stats.stage_resolve_us.histogram());
  // Metrics are collected either way — and merge identically.
  EXPECT_EQ(off.trace.metrics(), on.trace.metrics());

  ASSERT_EQ(off.records.size(), on.records.size());
  for (std::size_t i = 0; i < off.records.size(); ++i) {
    EXPECT_EQ(off.records[i].classification, on.records[i].classification)
        << off.records[i].index;
  }
}

// --- ROADMAP LRU sizing item (satellite: eviction pressure) -------------

// A single operator hosting far more lazy zones than its LRU holds — the
// shape a ZH_SCALE=0.01 single-operator campaign produces (Squarespace in
// Table 2 serves millions of zones through one PoP). The zone-LRU metrics
// expose the materialise/evict/re-sign pressure that the ROADMAP
// "measure, then size by spec" item needs.
TEST(TraceMetrics, LazyZoneEvictionPressureUnderScan) {
  using dns::Name;
  using dns::RrType;

  constexpr int kDomains = 40;
  constexpr std::size_t kCapacity = 8;

  testbed::Internet internet;
  internet.add_tld("com", testbed::TldConfig{});
  const std::size_t op = internet.add_operator("bulk");
  testbed::OperatorHandle& handle = internet.hosting_operator(op);
  const simnet::IpAddress host = handle.address_v4;

  const auto apex_of = [](int i) {
    return Name::must_parse("lazy" + std::to_string(i) + ".com");
  };
  handle.server->set_lazy_provider(
      [](const Name& qname) -> std::optional<Name> {
        if (qname.label_count() < 2) return std::nullopt;
        const Name apex = qname.ancestor_with_labels(2);
        return apex.to_string().rfind("lazy", 0) == 0
                   ? std::optional<Name>(apex)
                   : std::nullopt;
      },
      [host](const Name& apex) -> std::shared_ptr<const zone::Zone> {
        testbed::DomainConfig config;
        config.apex = apex;
        config.nsec3 = {.iterations = 10, .salt = {0xab}, .opt_out = false};
        return testbed::Internet::materialise_zone(config, host);
      },
      kCapacity);
  for (int i = 0; i < kDomains; ++i)
    internet.add_lazy_delegation({apex_of(i), /*dnssec=*/true, op});
  internet.build();

  // Event tracing on: materialisations should show up as spans too.
  internet.network().tracer().configure({.enabled = true});

  auto resolver = internet.make_resolver(
      resolver::ResolverProfile::bind9_2021(),
      simnet::IpAddress::v4(203, 0, 113, 9));
  for (int i = 0; i < kDomains; ++i) {
    const auto reply =
        resolver->resolve(*apex_of(i).prepended("www"), RrType::kA);
    ASSERT_EQ(reply.header.rcode, dns::Rcode::kNoError) << i;
  }

  const server::AuthoritativeServer& srv = *handle.server;
  const Metrics& metrics = internet.network().tracer().metrics();

  // First pass: every zone materialises once; the LRU can hold 8 of 40, so
  // eviction pressure is massive — but nothing is ever revisited, so no
  // zone is re-signed yet.
  EXPECT_EQ(srv.lazy_materialisations(), static_cast<std::uint64_t>(kDomains));
  EXPECT_GE(srv.lazy_evictions(), static_cast<std::uint64_t>(kDomains) -
                                      static_cast<std::uint64_t>(kCapacity));
  EXPECT_EQ(srv.lazy_resigns(), 0u);
  // DNSKEY/DS chasing revisits a just-materialised zone: LRU hits.
  EXPECT_GT(srv.lazy_hits(), 0u);

  // The registry mirrors the counters one-for-one (docs/TRACING.md names).
  EXPECT_EQ(metrics.value("server.zone_materialise"),
            srv.lazy_materialisations());
  EXPECT_EQ(metrics.value("server.zone_evict"), srv.lazy_evictions());
  EXPECT_EQ(metrics.value("server.zone_cache_hit"), srv.lazy_hits());
  EXPECT_EQ(metrics.value("server.zone_resign"), 0u);

  // Second pass over the same population (resolver cache flushed): every
  // previously evicted zone must be materialised — and therefore signed —
  // again. This is the re-sign cost the LRU has to be sized against.
  resolver->flush_cache();
  for (int i = 0; i < kDomains; ++i)
    (void)resolver->resolve(*apex_of(i).prepended("www"), RrType::kA);
  EXPECT_GT(srv.lazy_resigns(), 0u);
  EXPECT_EQ(metrics.value("server.zone_resign"), srv.lazy_resigns());
  EXPECT_EQ(metrics.value("server.zone_evict"), srv.lazy_evictions());

  // And the span stream saw the materialisations + evictions.
  const ShardTrace shard = internet.network().tracer().take();
  std::uint64_t materialise_spans = 0;
  std::uint64_t evict_instants = 0;
  for (const Event& event : shard.events) {
    if (std::string_view(event.name) == "zone.materialise")
      ++materialise_spans;
    if (std::string_view(event.name) == "zone.evict") ++evict_instants;
  }
  EXPECT_EQ(materialise_spans, srv.lazy_materialisations());
  EXPECT_EQ(evict_instants, srv.lazy_evictions());
}

// The sizing half of the ROADMAP item: with set_lazy_cache_adaptive the
// LRU reads its own server.zone_* pressure counters — each re-sign doubles
// the capacity (ticking server.zone_cache_grow) until the working set
// fits, so repeat scan passes stop re-signing instead of thrashing on the
// hardcoded capacity forever.
TEST(TraceMetrics, LazyZoneCacheGrowsUnderResignPressure) {
  using dns::Name;
  using dns::RrType;

  constexpr int kDomains = 40;
  constexpr std::size_t kCapacity = 8;
  constexpr std::size_t kMaxCapacity = 64;

  testbed::Internet internet;
  internet.add_tld("com", testbed::TldConfig{});
  const std::size_t op = internet.add_operator("bulk");
  testbed::OperatorHandle& handle = internet.hosting_operator(op);
  const simnet::IpAddress host = handle.address_v4;

  const auto apex_of = [](int i) {
    return Name::must_parse("grow" + std::to_string(i) + ".com");
  };
  handle.server->set_lazy_provider(
      [](const Name& qname) -> std::optional<Name> {
        if (qname.label_count() < 2) return std::nullopt;
        const Name apex = qname.ancestor_with_labels(2);
        return apex.to_string().rfind("grow", 0) == 0
                   ? std::optional<Name>(apex)
                   : std::nullopt;
      },
      [host](const Name& apex) -> std::shared_ptr<const zone::Zone> {
        testbed::DomainConfig config;
        config.apex = apex;
        config.nsec3 = {.iterations = 10, .salt = {0xab}, .opt_out = false};
        return testbed::Internet::materialise_zone(config, host);
      },
      kCapacity);
  handle.server->set_lazy_cache_adaptive(kMaxCapacity);
  for (int i = 0; i < kDomains; ++i)
    internet.add_lazy_delegation({apex_of(i), /*dnssec=*/true, op});
  internet.build();
  internet.network().tracer().configure({.enabled = true});

  auto resolver = internet.make_resolver(
      resolver::ResolverProfile::bind9_2021(),
      simnet::IpAddress::v4(203, 0, 113, 10));
  const auto scan_all = [&] {
    for (int i = 0; i < kDomains; ++i) {
      const auto reply =
          resolver->resolve(*apex_of(i).prepended("www"), RrType::kA);
      ASSERT_EQ(reply.header.rcode, dns::Rcode::kNoError) << i;
    }
  };

  const server::AuthoritativeServer& srv = *handle.server;
  const Metrics& metrics = internet.network().tracer().metrics();

  // First pass: nothing is revisited, so no resign pressure yet — the
  // adaptive policy must not fire and eviction churn matches the
  // non-adaptive scenario above.
  scan_all();
  EXPECT_EQ(srv.lazy_materialisations(), static_cast<std::uint64_t>(kDomains));
  EXPECT_EQ(srv.lazy_resigns(), 0u);
  EXPECT_EQ(srv.lazy_cache_growths(), 0u);
  EXPECT_EQ(srv.lazy_cache_capacity(), kCapacity);
  const std::uint64_t pass1_evictions = srv.lazy_evictions();
  EXPECT_GE(pass1_evictions, static_cast<std::uint64_t>(kDomains) -
                                 static_cast<std::uint64_t>(kCapacity));

  // Second pass: the first re-signs prove the working set outgrew the
  // cache, and each doubles the capacity — 8 -> 16 -> 32 -> 64 — until the
  // whole population fits. Every zone evicted in pass one still re-signs
  // exactly once, but nothing is evicted any more.
  resolver->flush_cache();
  scan_all();
  EXPECT_EQ(srv.lazy_resigns(), static_cast<std::uint64_t>(kDomains) -
                                    static_cast<std::uint64_t>(kCapacity));
  EXPECT_EQ(srv.lazy_cache_growths(), 3u);
  EXPECT_EQ(srv.lazy_cache_capacity(), kMaxCapacity);
  EXPECT_EQ(srv.lazy_evictions(), pass1_evictions);
  EXPECT_EQ(metrics.value("server.zone_cache_grow"),
            srv.lazy_cache_growths());

  // Third pass: the grown cache holds the whole population — pure hits,
  // zero new materialisations or re-signs. The thrash is gone.
  const std::uint64_t settled_materialisations = srv.lazy_materialisations();
  const std::uint64_t settled_resigns = srv.lazy_resigns();
  resolver->flush_cache();
  scan_all();
  EXPECT_EQ(srv.lazy_materialisations(), settled_materialisations);
  EXPECT_EQ(srv.lazy_resigns(), settled_resigns);
  EXPECT_EQ(srv.lazy_evictions(), pass1_evictions);

  // Each growth is visible in the event stream as a zone.cache_grow
  // instant carrying the new capacity.
  const ShardTrace shard = internet.network().tracer().take();
  std::uint64_t grow_instants = 0;
  for (const Event& event : shard.events)
    if (std::string_view(event.name) == "zone.cache_grow") ++grow_instants;
  EXPECT_EQ(grow_instants, srv.lazy_cache_growths());
}

}  // namespace
}  // namespace zh::trace
