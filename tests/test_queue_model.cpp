// Unit tests for the service-queue layer (simtime/queue.hpp): FIFO
// ordering under virtual time, the backlog bound and shedding policies,
// utilisation accounting, and the Network integration — including the two
// invariants the determinism contract rests on (an inactive model changes
// nothing; a single sequential client never waits).
#include <gtest/gtest.h>

#include "resolver/policy.hpp"
#include "simnet/batch.hpp"
#include "simnet/exchange.hpp"
#include "simnet/network.hpp"
#include "simtime/queue.hpp"
#include "simtime/simtime.hpp"
#include "testbed/internet.hpp"

namespace zh::simtime {
namespace {

using dns::Message;
using dns::Name;
using dns::RrType;
using simnet::IpAddress;

Duration ms(std::int64_t v) { return Duration::from_ms(v); }

TEST(ServiceQueue, SingleWorkerServesFifo) {
  ServiceQueue queue({.workers = 1, .backlog = 64});
  // Three requests arrive at the same instant; each takes 10 ms to serve.
  const QueueAdmission first = queue.admit(ms(0));
  EXPECT_TRUE(first.admitted);
  EXPECT_TRUE(first.wait.zero());
  queue.complete(first, ms(10));

  const QueueAdmission second = queue.admit(ms(0));
  EXPECT_TRUE(second.admitted);
  EXPECT_EQ(second.wait, ms(10));
  EXPECT_EQ(second.start, ms(10));
  queue.complete(second, ms(20));

  const QueueAdmission third = queue.admit(ms(0));
  EXPECT_TRUE(third.admitted);
  EXPECT_EQ(third.wait, ms(20));
  queue.complete(third, ms(30));

  EXPECT_EQ(queue.counters().admitted, 3u);
  EXPECT_EQ(queue.counters().delayed, 2u);
  EXPECT_EQ(queue.counters().dropped, 0u);
  EXPECT_EQ(queue.counters().wait_ns,
            static_cast<std::uint64_t>((ms(10) + ms(20)).nanos()));
  EXPECT_EQ(queue.counters().max_backlog, 2u);
}

TEST(ServiceQueue, SecondWorkerAbsorbsTheOverlap) {
  ServiceQueue queue({.workers = 2, .backlog = 64});
  const QueueAdmission first = queue.admit(ms(0));
  queue.complete(first, ms(10));
  const QueueAdmission second = queue.admit(ms(0));
  EXPECT_TRUE(second.admitted);
  EXPECT_TRUE(second.wait.zero());
  EXPECT_NE(second.slot, first.slot);
  queue.complete(second, ms(10));
  EXPECT_EQ(queue.counters().delayed, 0u);
}

TEST(ServiceQueue, LateArrivalFindsTheQueueDrained) {
  ServiceQueue queue({.workers = 1, .backlog = 64});
  queue.complete(queue.admit(ms(0)), ms(10));
  const QueueAdmission late = queue.admit(ms(25));
  EXPECT_TRUE(late.admitted);
  EXPECT_TRUE(late.wait.zero());
  EXPECT_EQ(late.start, ms(25));
}

TEST(ServiceQueue, BacklogBoundSheds) {
  ServiceQueue queue({.workers = 1, .backlog = 2});
  queue.complete(queue.admit(ms(0)), ms(10));
  queue.complete(queue.admit(ms(0)), ms(20));  // waiting: 1
  queue.complete(queue.admit(ms(0)), ms(30));  // waiting: 2 — at the bound
  const QueueAdmission shed = queue.admit(ms(0));
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(queue.counters().admitted, 3u);
  EXPECT_EQ(queue.counters().dropped, 1u);
  // A zero-backlog queue sheds as soon as a request would wait at all.
  ServiceQueue strict({.workers = 1, .backlog = 0});
  strict.complete(strict.admit(ms(0)), ms(10));
  EXPECT_FALSE(strict.admit(ms(5)).admitted);
  EXPECT_TRUE(strict.admit(ms(10)).admitted);
}

TEST(ServiceQueue, UtilisationAccounting) {
  ServiceQueue queue({.workers = 2, .backlog = 64});
  queue.complete(queue.admit(ms(0)), ms(10));
  queue.complete(queue.admit(ms(0)), ms(30));
  // 10 + 30 ms of busy slot time over a 40 ms span with 2 workers = 50 %.
  EXPECT_EQ(queue.counters().busy_ns,
            static_cast<std::uint64_t>(ms(40).nanos()));
  EXPECT_DOUBLE_EQ(queue.counters().utilisation(ms(40), 2), 0.5);
  EXPECT_DOUBLE_EQ(QueueCounters{}.utilisation(ms(0), 2), 0.0);
  EXPECT_DOUBLE_EQ(QueueCounters{}.utilisation(ms(40), 0), 0.0);
}

TEST(ServiceQueue, CountersMerge) {
  QueueCounters a{.admitted = 2, .delayed = 1, .dropped = 3,
                  .wait_ns = 100, .busy_ns = 200, .max_backlog = 4};
  const QueueCounters b{.admitted = 5, .delayed = 2, .dropped = 1,
                        .wait_ns = 50, .busy_ns = 25, .max_backlog = 2};
  a.merge(b);
  EXPECT_EQ(a.admitted, 7u);
  EXPECT_EQ(a.delayed, 3u);
  EXPECT_EQ(a.dropped, 4u);
  EXPECT_EQ(a.wait_ns, 150u);
  EXPECT_EQ(a.busy_ns, 225u);
  EXPECT_EQ(a.max_backlog, 4u);
}

// --- Network integration -------------------------------------------------

const IpAddress kServer = IpAddress::v4(192, 0, 2, 1);
const IpAddress kClient = IpAddress::v4(203, 0, 113, 9);

Message query_for(std::uint16_t id) {
  return Message::make_query(id, Name::must_parse("example.com"), RrType::kA);
}

/// A server whose handler occupies the node for `service` of virtual time
/// (the clock-advance stands in for hash work — only occupancy matters to
/// the queue).
void attach_slow_server(simnet::Network& network, Duration service) {
  network.attach(kServer, [&network, service](const Message& q,
                                              const IpAddress&) {
    network.clock().advance(service);
    return std::make_optional(Message::make_response(q));
  });
}

TEST(NetworkQueue, InactiveModelKeepsEverythingUntouched) {
  simnet::Network plain;
  simnet::Network configured;
  attach_slow_server(plain, ms(10));
  attach_slow_server(configured, ms(10));
  configured.set_queue_model({});  // explicit no-op
  EXPECT_FALSE(plain.queueing_active());
  EXPECT_FALSE(configured.queueing_active());

  for (std::uint16_t id = 1; id <= 5; ++id) {
    const auto a = plain.send(kClient, kServer, query_for(id));
    const auto b = configured.send(kClient, kServer, query_for(id));
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->to_wire(), b->to_wire());
    EXPECT_EQ(plain.last_elapsed(), configured.last_elapsed());
  }
  EXPECT_EQ(configured.queue_counters().admitted, 0u);
  EXPECT_EQ(configured.queue_counters().dropped, 0u);
  EXPECT_EQ(plain.clock().now(), configured.clock().now());
}

TEST(NetworkQueue, SequentialClientNeverWaits) {
  simnet::Network network;
  attach_slow_server(network, ms(10));
  network.set_queue_model({.workers = 1, .backlog = 0});
  // One timeline: each send starts after the previous completed, so even a
  // one-worker zero-backlog queue never delays or sheds anything. This is
  // the golden-equivalence property: campaigns that never rewind the clock
  // observe identical behaviour with queueing on.
  for (std::uint16_t id = 1; id <= 4; ++id) {
    network.set_flow(fnv1a("item-" + std::to_string(id)));
    const auto response = network.send(kClient, kServer, query_for(id));
    ASSERT_TRUE(response);
    EXPECT_EQ(network.last_elapsed(), ms(10));
  }
  EXPECT_EQ(network.queue_counters().admitted, 4u);
  EXPECT_EQ(network.queue_counters().delayed, 0u);
  EXPECT_EQ(network.queue_counters().dropped, 0u);
  EXPECT_EQ(network.queue_counters().wait_ns, 0u);
}

TEST(NetworkQueue, ConcurrentClientsContendAndWaitsGrowMonotonically) {
  simnet::Network network;
  attach_slow_server(network, ms(10));
  network.set_queue_model({.workers = 1, .backlog = 64});

  std::vector<simnet::BatchClient> clients;
  for (unsigned i = 0; i < 4; ++i) {
    simnet::BatchClient client;
    client.source = kClient;
    client.query = query_for(static_cast<std::uint16_t>(1 + i));
    client.flow = fnv1a("batch-" + std::to_string(i));
    client.offset = Duration{};  // simultaneous arrivals
    clients.push_back(std::move(client));
  }
  const simnet::BatchResult batch =
      simnet::concurrent_exchange(network, kServer, clients);
  ASSERT_EQ(batch.outcomes.size(), 4u);
  for (unsigned i = 0; i < 4; ++i) {
    ASSERT_TRUE(batch.outcomes[i].response) << i;
    EXPECT_EQ(batch.queue_waits[i], ms(10) * static_cast<std::int64_t>(i));
    EXPECT_EQ(batch.outcomes[i].elapsed, ms(10) * (1 + i));
  }
  EXPECT_EQ(batch.makespan, ms(40));
  EXPECT_EQ(network.clock().now(), ms(40));
  EXPECT_EQ(network.queue_counters().delayed, 3u);
  EXPECT_DOUBLE_EQ(network.queue_counters().utilisation(batch.makespan, 1),
                   1.0);
}

TEST(NetworkQueue, ServfailShedIsTransientWithEde23) {
  simnet::Network network;
  attach_slow_server(network, ms(10));
  network.set_queue_model({.workers = 1,
                           .backlog = 0,
                           .shed = QueueModel::Shed::kServfail});
  std::vector<simnet::BatchClient> clients(2);
  for (unsigned i = 0; i < 2; ++i) {
    clients[i].source = kClient;
    clients[i].query = query_for(static_cast<std::uint16_t>(1 + i));
    clients[i].flow = fnv1a("sf-" + std::to_string(i));
  }
  // No retries: surface the shed answer instead of re-asking past it.
  const RetryPolicy no_retry{.attempts = 1};
  const simnet::BatchResult batch =
      simnet::concurrent_exchange(network, kServer, clients, no_retry);
  ASSERT_TRUE(batch.outcomes[0].response);
  EXPECT_EQ(batch.outcomes[0].response->header.rcode, dns::Rcode::kNoError);
  ASSERT_TRUE(batch.outcomes[1].response);
  EXPECT_EQ(batch.outcomes[1].response->header.rcode, dns::Rcode::kServFail);
  EXPECT_TRUE(simnet::transient_servfail(*batch.outcomes[1].response));
  EXPECT_EQ(batch.queue_drops[1], 1u);
  EXPECT_EQ(network.queue_counters().dropped, 1u);
}

TEST(NetworkQueue, DropShedLooksLikeLossAndRetransmissionRecovers) {
  simnet::Network network;
  attach_slow_server(network, ms(10));
  network.set_queue_model(
      {.workers = 1, .backlog = 0, .shed = QueueModel::Shed::kDrop});
  std::vector<simnet::BatchClient> clients(2);
  for (unsigned i = 0; i < 2; ++i) {
    clients[i].source = kClient;
    clients[i].query = query_for(static_cast<std::uint16_t>(1 + i));
    clients[i].flow = fnv1a("drop-" + std::to_string(i));
  }
  const RetryPolicy retry{.attempts = 2, .timeout = ms(50)};
  const simnet::BatchResult batch =
      simnet::concurrent_exchange(network, kServer, clients, retry);
  // The second client's first attempt is shed; its retransmission 50 ms
  // later finds the queue drained and succeeds.
  ASSERT_TRUE(batch.outcomes[1].response);
  EXPECT_EQ(batch.outcomes[1].attempts, 2u);
  EXPECT_EQ(batch.outcomes[1].elapsed, ms(50) + ms(10));
  EXPECT_EQ(batch.queue_drops[1], 1u);
  // Without the retry budget the shed becomes a first-class timeout.
  network.set_flow(fnv1a("drop-timeout"));
  simnet::BatchClient lone;
  lone.source = kClient;
  lone.query = query_for(9);
  lone.flow = fnv1a("drop-t-0");
  simnet::BatchClient blocked = lone;
  blocked.query = query_for(10);
  blocked.flow = fnv1a("drop-t-1");
  const simnet::BatchResult strict = simnet::concurrent_exchange(
      network, kServer, {lone, blocked}, RetryPolicy{.attempts = 1});
  EXPECT_FALSE(strict.outcomes[1].response);
  EXPECT_TRUE(strict.outcomes[1].timed_out);
}

TEST(NetworkQueue, SetFlowStartsAFreshEpochUnlessJoined) {
  simnet::Network network;
  attach_slow_server(network, ms(10));
  network.set_queue_model({.workers = 1, .backlog = 64});
  network.set_flow(fnv1a("first"));
  ASSERT_TRUE(network.send(kClient, kServer, query_for(1)));
  // Same epoch, rewound clock: the second send contends with the first.
  network.clock().set(Duration{});
  network.set_flow(fnv1a("second"), simnet::Network::QueueEpoch::kJoin);
  ASSERT_TRUE(network.send(kClient, kServer, query_for(2)));
  EXPECT_EQ(network.queue_counters().delayed, 1u);
  // A default set_flow ends the epoch: the same rewind no longer waits.
  network.clock().set(Duration{});
  network.set_flow(fnv1a("third"));
  ASSERT_TRUE(network.send(kClient, kServer, query_for(3)));
  EXPECT_EQ(network.queue_counters().delayed, 1u);
}

TEST(NetworkQueue, PerDestinationOverrideWinsAndCanExempt) {
  simnet::Network network;
  attach_slow_server(network, ms(10));
  const IpAddress other = IpAddress::v4(192, 0, 2, 2);
  network.attach(other, [](const Message& q, const IpAddress&) {
    return std::make_optional(Message::make_response(q));
  });
  // Default active everywhere; `other` exempted by an inactive override.
  network.set_queue_model({.workers = 1, .backlog = 64});
  network.set_queue(other, {});
  EXPECT_TRUE(network.queueing_active());
  ASSERT_TRUE(network.send(kClient, kServer, query_for(1)));
  ASSERT_TRUE(network.send(kClient, other, query_for(2)));
  EXPECT_EQ(network.queue_counters().admitted, 1u);
}

TEST(NetworkQueue, ResolverProfileInstallsItsQueue) {
  testbed::Internet internet;
  (void)testbed::add_probe_infrastructure(internet);
  internet.build();
  resolver::ResolverProfile profile = resolver::ResolverProfile::permissive();
  profile.queue = QueueModel{.workers = 4, .backlog = 32};
  const auto victim =
      internet.make_resolver(profile, IpAddress::v4(10, 66, 0, 1));
  EXPECT_TRUE(internet.network().queueing_active());
  EXPECT_EQ(internet.network().queue_model().workers, 0u);  // only override
  // A queueless profile must leave the network queue-free.
  testbed::Internet plain;
  (void)testbed::add_probe_infrastructure(plain);
  plain.build();
  const auto queueless = plain.make_resolver(
      resolver::ResolverProfile::permissive(), IpAddress::v4(10, 66, 0, 2));
  EXPECT_FALSE(plain.network().queueing_active());
}

}  // namespace
}  // namespace zh::simtime
