// Unit tests for the virtual-time layer: Duration/Clock algebra, the
// splitmix mixer, RetryPolicy backoff, the latency and service models, the
// client-side exchange() retransmission loop, and the resolver's per-query
// deadline / drop-above-limit behaviour end to end.
#include <gtest/gtest.h>

#include "crypto/cost_meter.hpp"
#include "resolver/policy.hpp"
#include "scanner/resolver_prober.hpp"
#include "simnet/exchange.hpp"
#include "simnet/network.hpp"
#include "simtime/latency.hpp"
#include "simtime/simtime.hpp"
#include "testbed/internet.hpp"

namespace zh::simtime {
namespace {

using dns::Message;
using dns::Name;
using dns::RrType;
using simnet::IpAddress;

TEST(Duration, Algebra) {
  EXPECT_EQ(Duration::from_seconds(2).nanos(), 2000000000ll);
  EXPECT_EQ(Duration::from_ms(3).micros(), 3000);
  EXPECT_EQ(Duration::from_us(5).nanos(), 5000);
  EXPECT_EQ((Duration::from_ms(2) + Duration::from_ms(3)).millis(), 5);
  EXPECT_EQ((Duration::from_ms(5) - Duration::from_ms(2)).millis(), 3);
  EXPECT_EQ((Duration::from_ms(2) * 8).millis(), 16);
  EXPECT_LT(Duration::from_ms(1), Duration::from_ms(2));
  EXPECT_TRUE(Duration{}.zero());
  Duration d = Duration::from_ms(1);
  d += Duration::from_ms(1);
  EXPECT_EQ(d.millis(), 2);
}

TEST(Clock, AdvanceAndReset) {
  Clock clock;
  EXPECT_TRUE(clock.now().zero());
  clock.advance(Duration::from_ms(7));
  clock.advance(Duration::from_ms(3));
  EXPECT_EQ(clock.now().millis(), 10);
  clock.reset();
  EXPECT_TRUE(clock.now().zero());
}

TEST(Mix64, KnownVector) {
  // splitmix64's published first output for seed 0.
  EXPECT_EQ(mix64(0), 0xE220A8397B1DCDAFull);
  EXPECT_NE(mix64(1), mix64(2));
  const double u = unit_double(mix64(123));
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
}

TEST(Fnv1a, StableAndSensitive) {
  EXPECT_EQ(fnv1a(""), 1469598103934665603ull);
  EXPECT_EQ(fnv1a("probe-7"), fnv1a("probe-7"));
  EXPECT_NE(fnv1a("probe-7"), fnv1a("probe-8"));
}

TEST(RetryPolicy, ExponentialBackoffWithCap) {
  const RetryPolicy policy;  // zdns defaults: 3 attempts, 2 s, x2, 16 s cap
  EXPECT_EQ(policy.attempt_timeout(0).millis(), 2000);
  EXPECT_EQ(policy.attempt_timeout(1).millis(), 4000);
  EXPECT_EQ(policy.attempt_timeout(2).millis(), 8000);
  EXPECT_EQ(policy.attempt_timeout(3).millis(), 16000);
  EXPECT_EQ(policy.attempt_timeout(10).millis(), 16000);  // capped
}

TEST(LatencyModel, InactiveByDefault) {
  const LatencyModel model;
  EXPECT_FALSE(model.active());
  EXPECT_TRUE(model
                  .sample(IpAddress::v4(1, 1, 1, 1), IpAddress::v4(2, 2, 2, 2),
                          0, 0)
                  .zero());
}

TEST(LatencyModel, DeterministicAndBounded) {
  const LatencyModel model(Duration::from_ms(20), Duration::from_ms(5),
                           /*seed=*/7);
  const auto a = IpAddress::v4(10, 0, 0, 1);
  const auto b = IpAddress::v4(10, 0, 0, 2);
  const Duration first = model.sample(a, b, 3, 0);
  EXPECT_EQ(first, model.sample(a, b, 3, 0));  // pure function
  EXPECT_GE(first, Duration::from_ms(20));
  EXPECT_LE(first, Duration::from_ms(25));
  // Different sequence / flow / link draw different jitter (with a 5 ms
  // range the chance of a coincidental triple collision is negligible).
  EXPECT_TRUE(model.sample(a, b, 3, 1) != first ||
              model.sample(a, b, 4, 0) != first ||
              model.sample(b, a, 3, 0) != first);
}

TEST(LatencyModel, ZeroJitterIsExactBase) {
  const LatencyModel model(Duration::from_ms(30), Duration{}, 7);
  EXPECT_EQ(model
                .sample(IpAddress::v4(10, 0, 0, 1), IpAddress::v4(10, 0, 0, 2),
                        1, 1)
                .millis(),
            30);
}

TEST(LatencyModel, LongestPrefixRuleWins) {
  LatencyModel model(Duration::from_ms(100), Duration{}, 7);
  model.add_rule(IpAddress::v4(10, 0, 0, 0), 8, Duration::from_ms(50),
                 Duration{});
  model.add_address(IpAddress::v4(10, 0, 0, 9), Duration::from_ms(5),
                    Duration{});
  const auto from = IpAddress::v4(192, 0, 2, 1);
  EXPECT_EQ(model.sample(from, IpAddress::v4(8, 8, 8, 8), 0, 0).millis(),
            100);  // default
  EXPECT_EQ(model.sample(from, IpAddress::v4(10, 1, 2, 3), 0, 0).millis(),
            50);  // /8 rule
  EXPECT_EQ(model.sample(from, IpAddress::v4(10, 0, 0, 9), 0, 0).millis(),
            5);  // host route beats /8
}

TEST(ServiceModel, ConvertsBlocksToDelay) {
  const ServiceModel off{};
  EXPECT_FALSE(off.active());
  EXPECT_TRUE(off.cost(1000).zero());
  const ServiceModel model{.per_sha1_block = Duration::from_us(2)};
  EXPECT_TRUE(model.active());
  EXPECT_EQ(model.cost(500).millis(), 1);
}

// --- Network integration: clock movement on deliveries -------------------

simnet::MessageHandler echo_handler(std::uint64_t sha1_blocks = 0) {
  return [sha1_blocks](const Message& q, const IpAddress&) {
    if (sha1_blocks > 0) crypto::CostMeter::add_sha1_blocks(sha1_blocks);
    return std::optional<Message>(Message::make_response(q));
  };
}

TEST(NetworkTime, DeliveryAdvancesRttPlusServiceCost) {
  simnet::Network network;
  const auto server = IpAddress::v4(192, 0, 2, 1);
  const auto client = IpAddress::v4(203, 0, 113, 1);
  network.attach(server, echo_handler(/*sha1_blocks=*/100));
  network.set_latency_model(
      LatencyModel(Duration::from_ms(10), Duration{}, 7));
  network.set_service_model({.per_sha1_block = Duration::from_us(1)});

  const Message query =
      Message::make_query(1, Name::must_parse("example.com"), RrType::kA);
  ASSERT_TRUE(network.send(client, server, query));
  // 10 ms RTT + 100 blocks x 1 µs = 10.1 ms.
  EXPECT_EQ(network.clock().now().micros(), 10100);
  EXPECT_EQ(network.last_elapsed().micros(), 10100);

  // TCP pays the RTT twice (connection setup).
  ASSERT_TRUE(network.send_tcp(client, server, query));
  EXPECT_EQ(network.last_elapsed().micros(), 20100);
}

TEST(NetworkTime, NestedDeliveriesChargeEachHandlerOnce) {
  simnet::Network network;
  const auto a = IpAddress::v4(192, 0, 2, 1);  // outer server
  const auto b = IpAddress::v4(192, 0, 2, 2);  // inner server
  const auto client = IpAddress::v4(203, 0, 113, 1);
  network.attach(b, echo_handler(/*sha1_blocks=*/40));
  network.attach(a, [&network, b](const Message& q, const IpAddress&) {
    // The outer handler does 100 blocks of its own work and forwards to b;
    // b's 40 blocks are converted to delay during the nested delivery and
    // must not be double-charged to a.
    crypto::CostMeter::add_sha1_blocks(100);
    (void)network.send(IpAddress::v4(192, 0, 2, 1), b, q);
    return std::optional<Message>(Message::make_response(q));
  });
  network.set_service_model({.per_sha1_block = Duration::from_us(1)});

  const Message query =
      Message::make_query(1, Name::must_parse("example.com"), RrType::kA);
  ASSERT_TRUE(network.send(client, a, query));
  // 100 (a's own) + 40 (b's own) µs, each exactly once; no RTT model.
  EXPECT_EQ(network.clock().now().micros(), 140);
}

TEST(NetworkTime, InactiveModelsNeverMoveTheClock) {
  simnet::Network network;
  const auto server = IpAddress::v4(192, 0, 2, 1);
  network.attach(server, echo_handler(/*sha1_blocks=*/1000));
  EXPECT_FALSE(network.time_models_active());
  const Message query =
      Message::make_query(1, Name::must_parse("example.com"), RrType::kA);
  ASSERT_TRUE(network.send(IpAddress::v4(9, 9, 9, 9), server, query));
  EXPECT_TRUE(network.clock().now().zero());
  EXPECT_TRUE(network.last_elapsed().zero());
}

// --- exchange(): the zdns-style client loop ------------------------------

TEST(Exchange, TotalLossTimesOutAfterBackoffLadder) {
  simnet::Network network;
  const auto server = IpAddress::v4(192, 0, 2, 1);
  network.attach(server, echo_handler());
  network.set_loss(1.0, /*seed=*/3);
  const Message query =
      Message::make_query(1, Name::must_parse("example.com"), RrType::kA);
  const simnet::ExchangeOutcome outcome =
      simnet::exchange(network, IpAddress::v4(9, 9, 9, 9), server, query);
  EXPECT_FALSE(outcome.response);
  EXPECT_TRUE(outcome.timed_out);
  EXPECT_FALSE(outcome.unreachable);
  EXPECT_EQ(outcome.attempts, 3u);
  // The client waited out the full ladder: 2 + 4 + 8 s.
  EXPECT_EQ(outcome.elapsed.millis(), 14000);
  EXPECT_EQ(network.clock().now().millis(), 14000);
}

TEST(Exchange, UnreachableFailsFastWithoutWaiting) {
  simnet::Network network;
  const Message query =
      Message::make_query(1, Name::must_parse("example.com"), RrType::kA);
  const simnet::ExchangeOutcome outcome = simnet::exchange(
      network, IpAddress::v4(9, 9, 9, 9), IpAddress::v4(1, 2, 3, 4), query);
  EXPECT_FALSE(outcome.response);
  EXPECT_TRUE(outcome.unreachable);
  EXPECT_FALSE(outcome.timed_out);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_TRUE(outcome.elapsed.zero());
}

TEST(Exchange, RetransmissionAbsorbsPartialLoss) {
  simnet::Network network;
  const auto server = IpAddress::v4(192, 0, 2, 1);
  network.attach(server, echo_handler());
  network.set_loss(0.5, /*seed=*/42);
  const Message query =
      Message::make_query(1, Name::must_parse("example.com"), RrType::kA);
  int answered = 0;
  for (int i = 0; i < 200; ++i) {
    network.set_flow(static_cast<std::uint64_t>(i));
    if (simnet::exchange(network, IpAddress::v4(9, 9, 9, 9), server, query)
            .response)
      ++answered;
  }
  // P(3 consecutive drops) = 1/8: the vast majority must get through.
  EXPECT_GT(answered, 150);
}

TEST(Exchange, TruncationFallsBackToTcp) {
  simnet::Network network;
  const auto server = IpAddress::v4(192, 0, 2, 1);
  network.attach(server, [](const Message& q, const IpAddress&) {
    Message response = Message::make_response(q);
    for (int i = 0; i < 60; ++i) {
      response.answers.push_back(dns::make_txt(q.questions.front().name, 60,
                                               std::string(100, 'x')));
    }
    return std::optional<Message>(response);
  });
  Message query =
      Message::make_query(5, Name::must_parse("big.example"), RrType::kTxt);
  query.edns->udp_payload_size = 1232;
  const simnet::ExchangeOutcome outcome =
      simnet::exchange(network, IpAddress::v4(9, 9, 9, 9), server, query);
  ASSERT_TRUE(outcome.response);
  EXPECT_TRUE(outcome.tcp_fallback);
  EXPECT_FALSE(outcome.response->header.tc);
  EXPECT_EQ(outcome.response->answers.size(), 60u);
  EXPECT_EQ(outcome.attempts, 2u);  // the UDP try + the TCP retry
}

// --- Resolver deadlines and the drop-above-limit cohort ------------------

/// Probe infrastructure plus one resolver of the given profile.
struct TimedWorld {
  std::unique_ptr<testbed::Internet> internet;
  std::vector<testbed::ProbeZone> probe_zones;
  std::unique_ptr<resolver::RecursiveResolver> resolver;
};

TimedWorld make_timed_world(const resolver::ResolverProfile& profile) {
  TimedWorld world;
  world.internet = std::make_unique<testbed::Internet>();
  world.probe_zones = testbed::add_probe_infrastructure(*world.internet);
  world.internet->build();
  world.resolver = world.internet->make_resolver(
      profile, IpAddress::v4(203, 0, 113, 53));
  return world;
}

TEST(ResolverDeadline, BlownDeadlineProducesServfail) {
  auto profile = resolver::ResolverProfile::cloudflare();
  profile.query_deadline = Duration::from_ms(1);
  profile.drop_on_timeout = false;
  TimedWorld world = make_timed_world(profile);
  // 10 ms per hop: any upstream round trip blows the 1 ms budget.
  world.internet->network().set_latency_model(
      LatencyModel(Duration::from_ms(10), Duration{}, 7));

  const Message query = Message::make_query(
      1, Name::must_parse("a.wc.valid.rfc9276-in-the-wild.com"), RrType::kA,
      /*dnssec_ok=*/true);
  const auto response = world.internet->network().send(
      IpAddress::v4(203, 0, 113, 9), world.resolver->address(), query);
  ASSERT_TRUE(response);
  EXPECT_EQ(response->header.rcode, dns::Rcode::kServFail);
  EXPECT_GE(world.resolver->stats().servfails, 1u);
}

TEST(ResolverDeadline, DropOnTimeoutLooksLikeSilence) {
  auto profile = resolver::ResolverProfile::cloudflare();
  profile.query_deadline = Duration::from_ms(1);
  profile.drop_on_timeout = true;
  TimedWorld world = make_timed_world(profile);
  world.internet->network().set_latency_model(
      LatencyModel(Duration::from_ms(10), Duration{}, 7));

  const Message query = Message::make_query(
      1, Name::must_parse("a.wc.valid.rfc9276-in-the-wild.com"), RrType::kA,
      /*dnssec_ok=*/true);
  RetryPolicy fast;
  fast.attempts = 2;
  fast.timeout = Duration::from_ms(100);
  const simnet::ExchangeOutcome outcome =
      simnet::exchange(world.internet->network(), IpAddress::v4(203, 0, 113, 9),
                       world.resolver->address(), query, fast);
  EXPECT_FALSE(outcome.response);
  EXPECT_TRUE(outcome.timed_out);
}

TEST(ResolverDeadline, LimitDropperObservedAsStopAnswering) {
  TimedWorld world =
      make_timed_world(resolver::ResolverProfile::limit_dropper());
  RetryPolicy fast;
  fast.attempts = 2;
  fast.timeout = Duration::from_ms(100);
  scanner::ResolverProber prober(world.internet->network(),
                                 IpAddress::v4(203, 0, 113, 9),
                                 world.probe_zones, fast);
  const scanner::ResolverProbeResult result =
      prober.probe(world.resolver->address(), "dropper");
  EXPECT_TRUE(result.validator);
  // Below the 150-iteration limit the dropper answers NXDOMAIN with AD...
  const auto at150 = result.sweep.find(150);
  ASSERT_NE(at150, result.sweep.end());
  EXPECT_TRUE(at150->second.responsive);
  EXPECT_EQ(at150->second.rcode, dns::Rcode::kNxDomain);
  EXPECT_TRUE(at150->second.ad);
  // ... and above it, it stops answering: a client-side timeout, not an
  // RCODE — the prober must record the onset, not infer a SERVFAIL limit.
  ASSERT_TRUE(result.first_timeout);
  EXPECT_EQ(*result.first_timeout, 151);
  EXPECT_FALSE(result.implements_item8);
  const auto at151 = result.sweep.find(151);
  ASSERT_NE(at151, result.sweep.end());
  EXPECT_FALSE(at151->second.responsive);
  EXPECT_TRUE(at151->second.timed_out);
  EXPECT_GT(result.timeouts, 0u);
}

}  // namespace
}  // namespace zh::simtime
